package dpals

import "testing"

// The full verification story: synthesise under an average-case (MED)
// budget, then formally certify the worst case by SAT.
func TestFormalCertificationPipeline(t *testing.T) {
	orig := NewMultiplier(5, 4, false)
	R := ReferenceError(orig)
	res, err := Approximate(orig, Options{
		Flow: DPSA, Metric: MED, Threshold: R, Exhaustive: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Applied == 0 {
		t.Skip("nothing applied at this budget")
	}
	// The approximate circuit must not be equivalent (LACs were applied
	// with nonzero error) …
	eq, cex, err := ProveEquivalent(orig, res.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	if res.Error > 0 && eq {
		t.Error("nonzero-error circuit proven equivalent")
	}
	if !eq && cex == nil {
		t.Error("missing counterexample")
	}
	// … and its exact worst-case error must be certifiable.
	wce, err := WorstCaseError(orig, res.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	ok, _, err := CertifyWorstCaseError(orig, res.Circuit, wce)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("certification failed at the computed WCE %d", wce)
	}
	if wce > 0 {
		ok, viol, err := CertifyWorstCaseError(orig, res.Circuit, wce-1)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Error("certified below the exact WCE")
		}
		if viol == nil {
			t.Error("missing violation witness")
		}
	}
	// The worst case always dominates the mean (MED ≤ WCE).
	if float64(wce) < res.Error {
		t.Errorf("WCE %d below mean error %v", wce, res.Error)
	}
	t.Logf("sm5x4: MED %.2f (budget %.2f), exact WCE %d", res.Error, R, wce)
}

func TestProveEquivalentArchitecturesPublic(t *testing.T) {
	eq, _, err := ProveEquivalent(NewAdder(10), NewKoggeStoneAdder(10))
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("adder architectures must be equivalent")
	}
	eq, _, err = ProveEquivalent(NewMultiplier(5, 5, false), NewWallaceMultiplier(5, 5))
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("multiplier architectures must be equivalent")
	}
}
