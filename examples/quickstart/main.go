// Quickstart: approximate an 8×8 unsigned multiplier under an MSE budget
// with the dual-phase self-adaptive flow, then verify the result
// independently.
package main

import (
	"fmt"
	"log"

	"dpals"
)

func main() {
	// 1. Build (or load) a circuit. Generators for the paper's benchmark
	//    families are built in; ReadBLIF/ReadAIGER load external circuits.
	mult := dpals.NewMultiplier(8, 8, false)
	fmt.Printf("original : %d gates, depth %d, area %.1f, delay %.2f\n",
		mult.NumGates(), mult.Depth(), mult.Area(), mult.Delay())

	// 2. Pick an error budget. The paper's reference error for a circuit
	//    with K outputs is R = 2^(K/3); R² is its median MSE threshold.
	R := dpals.ReferenceError(mult)
	budget := R * R
	fmt.Printf("budget   : MSE ≤ %.0f (R = %.1f)\n", budget, R)

	// 3. Run the dual-phase self-adaptive flow.
	res, err := dpals.Approximate(mult, dpals.Options{
		Flow:      dpals.DPSA,
		Metric:    dpals.MSE,
		Threshold: budget,
		Patterns:  8192,
		Threads:   4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("approx   : %d gates (%.1f%%), ADP ratio %.1f%%, error %.1f\n",
		res.Circuit.NumGates(),
		100*float64(res.Circuit.NumGates())/float64(mult.NumGates()),
		100*res.ADPRatio, res.Error)
	fmt.Printf("synthesis: %d LACs in %v (%d comprehensive + %d incremental analyses)\n",
		res.Stats.Applied, res.Stats.Runtime.Round(1e6),
		res.Stats.Comprehensive, res.Stats.Incremental)

	// 4. Never trust a synthesis tool: measure the error independently on
	//    fresh patterns.
	check, err := dpals.MeasureError(mult, res.Circuit, dpals.MSE, nil, 65536, 12345)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("validate : MSE %.1f on 65536 unseen patterns (budget %.0f)\n", check, budget)
}
