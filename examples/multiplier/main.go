// Approximate-multiplier design-space exploration: sweep MED budgets on a
// signed multiplier with SASIMI substitution LACs — the classic use case
// motivating approximate logic synthesis (image processing and ML kernels
// dominated by signed MACs) — and export the Pareto designs as BLIF.
package main

import (
	"fmt"
	"log"
	"os"

	"dpals"
)

func main() {
	mult := dpals.NewMultiplier(9, 8, true) // the paper's sm9x8
	fmt.Printf("sm9x8: %d gates, area %.1f, delay %.2f\n", mult.NumGates(), mult.Area(), mult.Delay())
	R := dpals.ReferenceError(mult)

	fmt.Printf("\n%-12s %10s %10s %10s %12s\n", "MED budget", "gates", "ADP", "achieved", "LACs/runtime")
	for _, factor := range []float64{0.25, 0.5, 1, 2, 4} {
		budget := factor * R
		res, err := dpals.Approximate(mult, dpals.Options{
			Flow:          dpals.DPSA,
			Metric:        dpals.MED,
			Threshold:     budget,
			Patterns:      8192,
			Threads:       4,
			UseConstLACs:  true,
			UseSASIMILACs: true, // substitute similar internal signals (SASIMI)
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12.2f %10d %9.1f%% %10.2f %6d %v\n",
			budget, res.Circuit.NumGates(), 100*res.ADPRatio, res.Error,
			res.Stats.Applied, res.Stats.Runtime.Round(1e6))

		// Export each Pareto point.
		name := fmt.Sprintf("sm9x8_med%.2g.blif", budget)
		f, err := os.Create(name)
		if err != nil {
			log.Fatal(err)
		}
		if err := res.Circuit.WriteBLIF(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
	}
	fmt.Println("\nwrote one BLIF per budget (sm9x8_med*.blif)")
}
