// Formal verification of an approximate design: synthesise a multiplier
// under an average-case (MED) budget, then use the built-in SAT engine to
// (a) confirm it is not accidentally equivalent, (b) compute its exact
// worst-case error, and (c) certify a worst-case bound — the guarantees an
// average-case Monte-Carlo metric cannot give.
package main

import (
	"fmt"
	"log"

	"dpals"
)

func main() {
	orig := dpals.NewMultiplier(6, 6, false)
	R := dpals.ReferenceError(orig)
	fmt.Printf("original: %d gates; MED budget %.2f\n", orig.NumGates(), R)

	res, err := dpals.Approximate(orig, dpals.Options{
		Flow:      dpals.DPSA,
		Metric:    dpals.MED,
		Threshold: R,
		Patterns:  8192,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("approx  : %d gates (ADP %.1f%%), mean error %.2f on samples\n",
		res.Circuit.NumGates(), 100*res.ADPRatio, res.Error)

	eq, _, err := dpals.ProveEquivalent(orig, res.Circuit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("formal  : equivalent = %v (expected false for a lossy design)\n", eq)

	wce, err := dpals.WorstCaseError(orig, res.Circuit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("formal  : exact worst-case error = %d (mean was %.2f)\n", wce, res.Error)

	ok, _, err := dpals.CertifyWorstCaseError(orig, res.Circuit, wce)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("formal  : certified WCE ≤ %d for every input: %v\n", wce, ok)
	if wce > 0 {
		ok, cex, err := dpals.CertifyWorstCaseError(orig, res.Circuit, wce-1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("formal  : WCE ≤ %d rejected (%v), witness input %v\n", wce-1, ok, cex)
	}
}
