// Timeout: bound a synthesis run by wall-clock time and still get a valid
// circuit. ApproximateContext stops cooperatively — within one analysis
// wave — when the context is done or Options.TimeLimit expires, and
// returns the best-so-far result instead of an error; Stats.StopReason
// tells a completed run from an interrupted one.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"dpals"
)

func main() {
	// 1. A deliberately large circuit: four 10×10 multipliers feeding an
	//    adder tree (the paper's 4730-AND benchmark scale).
	c := dpals.NewVecMul(4, 10)
	R := dpals.ReferenceError(c)

	// 2. Give the run two seconds. Options.TimeLimit would work the same;
	//    an explicit context additionally composes with servers, signal
	//    handlers, or request scopes.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()

	res, err := dpals.ApproximateContext(ctx, c, dpals.Options{
		Flow:      dpals.DPSA,
		Metric:    dpals.MSE,
		Threshold: R * R,
	})
	if err != nil {
		log.Fatal(err) // only invalid configurations error — not timeouts
	}

	// 3. The result is always a valid circuit: swept, within the error
	//    budget, with its genuine sampled error. StopReason says whether
	//    the budget was exhausted or the clock ran out first.
	fmt.Printf("stop     : %s\n", res.Stats.StopReason)
	fmt.Printf("approx   : %d gates (of %d), error %.1f ≤ %.0f\n",
		res.Circuit.NumGates(), c.NumGates(), res.Error, R*R)
	fmt.Printf("synthesis: %d LACs in %v\n", res.Stats.Applied, res.Stats.Runtime.Round(time.Millisecond))

	switch res.Stats.StopReason {
	case dpals.StopDeadline, dpals.StopCancelled:
		fmt.Println("interrupted — the circuit above is the best found so far")
	default:
		fmt.Println("completed — no further change fits the budget")
	}
}
