// Flow comparison on a larger circuit: run the conventional single-LAC
// flow, the dual-phase flow (DP) and its self-adaptive variant (DP-SA) on
// the same budget, and show where the dual-phase framework wins — far
// fewer comprehensive analyses at equal circuit quality — together with
// the per-step runtime profile the self-adaption reasons about.
package main

import (
	"fmt"
	"log"
	"time"

	"dpals"
)

func main() {
	// A scaled EPFL-style arithmetic block: 4-dimensional dot product.
	ckt := dpals.NewVecMul(4, 8)
	fmt.Printf("vecmul: %d gates, depth %d\n\n", ckt.NumGates(), ckt.Depth())
	R := dpals.ReferenceError(ckt)
	budget := R * R

	fmt.Printf("%-14s %8s %8s %8s %7s %7s %10s   %s\n",
		"flow", "gates", "ADP", "error", "compr", "incr", "runtime", "step profile (cuts/CPM/eval)")
	var convTime time.Duration
	for _, flow := range []dpals.Flow{dpals.Conventional, dpals.DP, dpals.DPSA} {
		res, err := dpals.Approximate(ckt, dpals.Options{
			Flow:      flow,
			Metric:    dpals.MSE,
			Threshold: budget,
			Patterns:  4096,
			Threads:   4,
		})
		if err != nil {
			log.Fatal(err)
		}
		total := res.Stats.CutTime + res.Stats.CPMTime + res.Stats.EvalTime
		prof := "-"
		if total > 0 {
			prof = fmt.Sprintf("%2.0f%% / %2.0f%% / %2.0f%%",
				100*float64(res.Stats.CutTime)/float64(total),
				100*float64(res.Stats.CPMTime)/float64(total),
				100*float64(res.Stats.EvalTime)/float64(total))
		}
		fmt.Printf("%-14v %8d %7.1f%% %8.3g %7d %7d %10v   %s\n",
			flow, res.Circuit.NumGates(), 100*res.ADPRatio, res.Error,
			res.Stats.Comprehensive, res.Stats.Incremental,
			res.Stats.Runtime.Round(time.Millisecond), prof)
		if flow == dpals.Conventional {
			convTime = res.Stats.Runtime
		} else if convTime > 0 {
			fmt.Printf("%-14s ↳ %.1f× faster than the conventional flow\n", "",
				float64(convTime)/float64(res.Stats.Runtime))
		}
	}
}
