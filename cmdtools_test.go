package dpals

// End-to-end coverage of the I/O paths that back the command-line tools:
// every write format reads back (where readable) functionally identical.

import (
	"bytes"
	"strings"
	"testing"
)

func TestAllFormatsRoundTrip(t *testing.T) {
	c := NewALU(5)
	// BLIF.
	var blifBuf bytes.Buffer
	if err := c.WriteBLIF(&blifBuf); err != nil {
		t.Fatal(err)
	}
	fromBlif, err := ReadBLIF(&blifBuf)
	if err != nil {
		t.Fatal(err)
	}
	// ASCII AIGER.
	var aagBuf bytes.Buffer
	if err := c.WriteAIGER(&aagBuf); err != nil {
		t.Fatal(err)
	}
	fromAag, err := ReadAIGER(&aagBuf)
	if err != nil {
		t.Fatal(err)
	}
	// Binary AIGER.
	var aigBuf bytes.Buffer
	if err := c.WriteAIGERBinary(&aigBuf); err != nil {
		t.Fatal(err)
	}
	fromAig, err := ReadAIGER(&aigBuf)
	if err != nil {
		t.Fatal(err)
	}
	for name, back := range map[string]*Circuit{"blif": fromBlif, "aag": fromAag, "aig": fromAig} {
		e, err := MeasureError(c, back, ER, nil, 4096, 7)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if e != 0 {
			t.Errorf("%s roundtrip changed the function (ER %v)", name, e)
		}
	}
	// Verilog (write-only): structural sanity.
	var vBuf bytes.Buffer
	if err := c.WriteVerilog(&vBuf); err != nil {
		t.Fatal(err)
	}
	v := vBuf.String()
	if !strings.Contains(v, "module ") || !strings.Contains(v, "endmodule") {
		t.Error("verilog output malformed")
	}
	if strings.Count(v, "input  wire") != c.NumInputs() {
		t.Errorf("verilog input count mismatch")
	}
}

func TestApproximateThenExportPipeline(t *testing.T) {
	// The full alsrun pipeline: approximate, export, re-import, re-measure.
	c := NewMultiplier(6, 5, false)
	R := ReferenceError(c)
	res, err := Approximate(c, Options{Flow: DP, Metric: MED, Threshold: R, Patterns: 1024})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Circuit.WriteBLIF(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBLIF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	e, err := MeasureError(c, back, MED, nil, 1024, 1)
	if err != nil {
		t.Fatal(err)
	}
	if e > R {
		t.Errorf("re-imported approximate circuit violates bound: %v > %v", e, R)
	}
}
