package dpals

import (
	"bytes"
	"math"
	"testing"
)

func TestQuickstartPath(t *testing.T) {
	c := NewMultiplier(6, 6, false)
	if c.NumInputs() != 12 || c.NumOutputs() != 12 {
		t.Fatalf("multiplier interface %d/%d", c.NumInputs(), c.NumOutputs())
	}
	R := ReferenceError(c)
	res, err := Approximate(c, Options{
		Flow:      DPSA,
		Metric:    MSE,
		Threshold: R * R,
		Patterns:  1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Error > R*R {
		t.Errorf("error %v exceeds budget %v", res.Error, R*R)
	}
	if res.ADPRatio >= 1 || res.ADPRatio <= 0 {
		t.Errorf("ADP ratio %v not in (0,1)", res.ADPRatio)
	}
	if res.Stats.Applied == 0 {
		t.Error("nothing applied")
	}
	// Independent verification.
	real, err := MeasureError(c, res.Circuit, MSE, nil, 1024, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(real-res.Error) > 1e-9*(1+real) {
		t.Errorf("reported %v, measured %v", res.Error, real)
	}
}

func TestAllPublicFlows(t *testing.T) {
	c := NewAdder(12)
	for _, f := range []Flow{Conventional, VECBEE, AccALS, DP, DPSA} {
		res, err := Approximate(c, Options{
			Flow: f, Metric: MED, Threshold: 2 * ReferenceError(c),
			Patterns: 512, UseConstLACs: true, UseSASIMILACs: true, MaxLACsPerNode: 4,
		})
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		if res.Error > 2*ReferenceError(c) {
			t.Errorf("%v: over budget", f)
		}
	}
}

func TestBLIFRoundTripPublic(t *testing.T) {
	c := NewALU(4)
	var buf bytes.Buffer
	if err := c.WriteBLIF(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBLIF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	e, err := MeasureError(c, back, ER, nil, 2048, 3)
	if err != nil {
		t.Fatal(err)
	}
	if e != 0 {
		t.Errorf("roundtrip changed function: ER=%v", e)
	}
}

func TestAIGERRoundTripPublic(t *testing.T) {
	c := NewSqrt(8)
	var buf bytes.Buffer
	if err := c.WriteAIGER(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadAIGER(&buf)
	if err != nil {
		t.Fatal(err)
	}
	e, err := MeasureError(c, back, ER, nil, 2048, 3)
	if err != nil {
		t.Fatal(err)
	}
	if e != 0 {
		t.Errorf("roundtrip changed function: ER=%v", e)
	}
}

func TestBenchmarkSuitePublic(t *testing.T) {
	suite := BenchmarkSuite(true)
	if len(suite) != 13 {
		t.Fatalf("suite has %d circuits, want 13", len(suite))
	}
	smalls := 0
	for _, b := range suite {
		if b.Circuit.NumGates() == 0 {
			t.Errorf("%s: empty", b.Name)
		}
		if b.Small {
			smalls++
			if b.Circuit.NumGates() >= 4000 {
				t.Errorf("%s: small group but %d gates", b.Name, b.Circuit.NumGates())
			}
		} else if b.Circuit.NumGates() < 4000 {
			t.Errorf("%s: large group but only %d gates", b.Name, b.Circuit.NumGates())
		}
	}
	if smalls != 7 {
		t.Errorf("%d small circuits, want 7", smalls)
	}
}

func TestMeasureErrorInterfaceMismatch(t *testing.T) {
	a := NewAdder(4)
	b := NewAdder(5)
	if _, err := MeasureError(a, b, ER, nil, 64, 1); err == nil {
		t.Error("interface mismatch accepted")
	}
}

func TestCircuitAccessors(t *testing.T) {
	c := NewButterfly(4)
	if c.Area() <= 0 || c.Delay() <= 0 || c.ADP() <= 0 {
		t.Error("mapping metrics must be positive")
	}
	if c.Weights() == nil {
		t.Error("butterfly should carry signed weights")
	}
	if c.Depth() <= 0 || c.NumGates() <= 0 {
		t.Error("structure accessors wrong")
	}
	if got := len(c.Weights()); got != c.NumOutputs() {
		t.Errorf("weights %d vs POs %d", got, c.NumOutputs())
	}
}

func TestNilCircuit(t *testing.T) {
	if _, err := Approximate(nil, Options{}); err == nil {
		t.Error("nil circuit accepted")
	}
}

// Approximation must reduce the FPGA-style LUT count too, not just the
// cell-based area model.
func TestLUTCountShrinks(t *testing.T) {
	c := NewMultiplier(7, 7, false)
	before := c.LUTs(6)
	if before <= 0 {
		t.Fatalf("LUT count %d", before)
	}
	R := ReferenceError(c)
	res, err := Approximate(c, Options{Flow: DPSA, Metric: MSE, Threshold: R * R, Patterns: 1024})
	if err != nil {
		t.Fatal(err)
	}
	after := res.Circuit.LUTs(6)
	if after >= before {
		t.Errorf("LUTs %d → %d: no reduction", before, after)
	}
	t.Logf("6-LUTs %d → %d (gates %d → %d)", before, after, c.NumGates(), res.Circuit.NumGates())
}
