package dpals_test

import (
	"fmt"
	"log"
	"os"

	"dpals"
)

// The basic synthesis loop: build, approximate, inspect, export.
func ExampleApproximate() {
	mult := dpals.NewMultiplier(8, 8, false)
	R := dpals.ReferenceError(mult)

	res, err := dpals.Approximate(mult, dpals.Options{
		Flow:      dpals.DPSA,
		Metric:    dpals.MSE,
		Threshold: R * R,
		Patterns:  8192,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gates %d→%d, ADP ratio %.1f%%\n",
		mult.NumGates(), res.Circuit.NumGates(), 100*res.ADPRatio)
	_ = res.Circuit.WriteBLIF(os.Stdout)
}

// Loading an external circuit and running the one-cut VECBEE baseline.
func ExampleReadBLIF() {
	f, err := os.Open("circuit.blif")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	c, err := dpals.ReadBLIF(f)
	if err != nil {
		log.Fatal(err)
	}
	res, err := dpals.Approximate(c, dpals.Options{
		Flow:       dpals.VECBEE,
		DepthLimit: 1, // the fast, approximate variant
		Metric:     dpals.ER,
		Threshold:  0.01,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Error)
}

// Formal certification of a synthesis result.
func ExampleWorstCaseError() {
	orig := dpals.NewMultiplier(6, 6, false)
	res, err := dpals.Approximate(orig, dpals.Options{
		Flow: dpals.DP, Metric: dpals.MED, Threshold: dpals.ReferenceError(orig),
	})
	if err != nil {
		log.Fatal(err)
	}
	wce, err := dpals.WorstCaseError(orig, res.Circuit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("worst-case deviation over all inputs: %d\n", wce)
}
