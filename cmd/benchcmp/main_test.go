package main

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// readBench loads the committed phase-2 baseline from the repository's
// results directory.
func readBench(t *testing.T) *benchFile {
	t.Helper()
	b, err := load(filepath.Join("..", "..", "results", "BENCH_phase2.json"))
	if err != nil {
		t.Fatalf("loading committed baseline: %v", err)
	}
	return b
}

func regressions(rows []row) int {
	n := 0
	for _, r := range rows {
		if r.regressed {
			n++
		}
	}
	return n
}

func find(rows []row, mode, metric string) *row {
	for i := range rows {
		if rows[i].mode == mode && rows[i].metric == metric {
			return &rows[i]
		}
	}
	return nil
}

// TestBaselineVsItself is the CI-gate identity property: comparing the
// committed baseline against itself must flag nothing.
func TestBaselineVsItself(t *testing.T) {
	b := readBench(t)
	rows, vanished, added := compare(b, b, 0.15, 5e6)
	if len(vanished) != 0 || len(added) != 0 {
		t.Fatalf("modes differ against itself: vanished=%v added=%v", vanished, added)
	}
	if len(rows) == 0 {
		t.Fatal("no comparison rows for the committed baseline")
	}
	if n := regressions(rows); n != 0 {
		t.Fatalf("%d regressions comparing the baseline against itself", n)
	}
}

// TestInjectedSlowdownFlagged: doubling one mode's time must be flagged as
// a regression, and only that metric.
func TestInjectedSlowdownFlagged(t *testing.T) {
	old := readBench(t)
	slow := &benchFile{Circuit: old.Circuit, Modes: map[string]benchMode{}}
	for name, m := range old.Modes {
		slow.Modes[name] = m
	}
	m := slow.Modes["cache"]
	m.NsPerOp *= 2
	slow.Modes["cache"] = m

	rows, _, _ := compare(old, slow, 0.15, 5e6)
	if n := regressions(rows); n != 1 {
		t.Fatalf("injected 2x cache slowdown: %d regressions flagged, want exactly 1", n)
	}
	for _, r := range rows {
		if r.regressed && (r.mode != "cache" || r.metric != "ns/op") {
			t.Fatalf("wrong metric flagged: %s %s", r.mode, r.metric)
		}
	}
}

// TestNoiseGates: a big relative jump on a microscopic time must pass (the
// absolute min-delta gate), and a small relative jump on a big time must
// pass (the relative gate). The improvement marker honours the same gates.
func TestNoiseGates(t *testing.T) {
	old := &benchFile{Modes: map[string]benchMode{
		"tiny": {NsPerOp: 1e6, AllocsPerOp: 100, BytesPerOp: 1000},
		"big":  {NsPerOp: 3e8, AllocsPerOp: 100, BytesPerOp: 1000},
	}}
	newB := &benchFile{Modes: map[string]benchMode{
		"tiny": {NsPerOp: 2e6, AllocsPerOp: 100, BytesPerOp: 1000},  // +100% but +1ms only
		"big":  {NsPerOp: 33e7, AllocsPerOp: 100, BytesPerOp: 1000}, // +10%, below threshold
	}}
	rows, _, _ := compare(old, newB, 0.15, 5e6)
	if n := regressions(rows); n != 0 {
		t.Fatalf("noise flagged as regression (%d rows)", n)
	}
	// -1ms on the tiny mode must not count as an improvement either.
	rows, _, _ = compare(newB, old, 0.15, 5e6)
	if r := find(rows, "tiny", "ns/op"); r.improved {
		t.Fatalf("-1ms flagged as improvement: %+v", r)
	}
	// Push the big mode past the threshold: now it must flag.
	m := newB.Modes["big"]
	m.NsPerOp = 4e8
	newB.Modes["big"] = m
	rows, _, _ = compare(old, newB, 0.15, 5e6)
	if n := regressions(rows); n != 1 {
		t.Fatalf("+33%% on 300ms: %d regressions, want 1", n)
	}
}

// TestImprovementReported: a genuine speedup and alloc reduction must be
// marked improved, not merely "not regressed".
func TestImprovementReported(t *testing.T) {
	old := &benchFile{Modes: map[string]benchMode{
		"cache": {NsPerOp: 342402900, AllocsPerOp: 291861, BytesPerOp: 5e7},
	}}
	newB := &benchFile{Modes: map[string]benchMode{
		"cache": {NsPerOp: 238075048, AllocsPerOp: 41987, BytesPerOp: 5e7},
	}}
	rows, _, _ := compare(old, newB, 0.15, 5e6)
	if r := find(rows, "cache", "ns/op"); !r.improved || r.regressed {
		t.Errorf("ns/op -30%% must be improved: %+v", r)
	}
	if r := find(rows, "cache", "allocs/op"); !r.improved || r.regressed {
		t.Errorf("allocs/op -85%% must be improved: %+v", r)
	}
	if r := find(rows, "cache", "bytes/op"); r.improved || r.regressed {
		t.Errorf("unchanged bytes must be neutral: %+v", r)
	}
}

// TestZeroAllocBaseline: a zero alloc baseline is legitimate (the goal
// state), and any count appearing on top of it is a regression the relative
// threshold cannot express.
func TestZeroAllocBaseline(t *testing.T) {
	old := &benchFile{Modes: map[string]benchMode{
		"m": {NsPerOp: 1e8, AllocsPerOp: 0, BytesPerOp: 0},
	}}
	newB := &benchFile{Modes: map[string]benchMode{
		"m": {NsPerOp: 1e8, AllocsPerOp: 3, BytesPerOp: 0},
	}}
	rows, _, _ := compare(old, newB, 0.15, 5e6)
	if r := find(rows, "m", "allocs/op"); !r.regressed {
		t.Errorf("0 -> 3 allocs must regress: %+v", r)
	}
	if r := find(rows, "m", "bytes/op"); r.regressed || r.improved {
		t.Errorf("0 -> 0 bytes must be neutral: %+v", r)
	}
}

// TestVanishedAndAddedModes: a mode disappearing from the new file is lost
// coverage (the caller fails on it); a mode appearing is added coverage.
func TestVanishedAndAddedModes(t *testing.T) {
	old := &benchFile{Modes: map[string]benchMode{
		"a": {NsPerOp: 1e6}, "b": {NsPerOp: 1e6},
	}}
	newB := &benchFile{Modes: map[string]benchMode{
		"a": {NsPerOp: 1e6}, "c": {NsPerOp: 1e6},
	}}
	rows, vanished, added := compare(old, newB, 0.15, 5e6)
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3 (mode a only)", len(rows))
	}
	if len(vanished) != 1 || vanished[0] != "b" {
		t.Fatalf("vanished = %v, want [b]", vanished)
	}
	if len(added) != 1 || added[0] != "c" {
		t.Fatalf("added = %v, want [c]", added)
	}
}

// TestPhase1MetricsGated: the phase-1 reuse metrics gate in both
// directions — time up is a regression, while reuse rate or incremental
// cut updates DOWN is the regression (the reuse machinery stopped firing).
func TestPhase1MetricsGated(t *testing.T) {
	base := benchMode{
		NsPerOp: 7e8, AllocsPerOp: 42000, BytesPerOp: 2.3e7,
		Phase1Ns: 6.7e8, Phase1ReuseRate: 0.72, CutUpdates: 24,
	}
	old := &benchFile{Modes: map[string]benchMode{"cache": base}}

	self, _, _ := compare(old, old, 0.15, 5e6)
	if n := regressions(self); n != 0 {
		t.Fatalf("self-comparison with phase-1 metrics: %d regressions", n)
	}
	if find(self, "cache", "phase1 ns") == nil ||
		find(self, "cache", "p1 reuse %") == nil ||
		find(self, "cache", "cut updates") == nil {
		t.Fatal("phase-1 metric rows missing from the comparison")
	}

	slow := base
	slow.Phase1Ns *= 2
	rows, _, _ := compare(old, &benchFile{Modes: map[string]benchMode{"cache": slow}}, 0.15, 5e6)
	if r := find(rows, "cache", "phase1 ns"); !r.regressed {
		t.Errorf("2x phase1_ns not flagged: %+v", r)
	}

	lost := base
	lost.Phase1ReuseRate = 0.3 // warm start half-broken
	lost.CutUpdates = 2        // incremental repair stopped firing
	rows, _, _ = compare(old, &benchFile{Modes: map[string]benchMode{"cache": lost}}, 0.15, 5e6)
	if r := find(rows, "cache", "p1 reuse %"); !r.regressed {
		t.Errorf("reuse rate 0.72 -> 0.3 not flagged: %+v", r)
	}
	if r := find(rows, "cache", "cut updates"); !r.regressed {
		t.Errorf("cut updates 24 -> 2 not flagged: %+v", r)
	}

	more := base
	more.Phase1ReuseRate = 0.9
	rows, _, _ = compare(old, &benchFile{Modes: map[string]benchMode{"cache": more}}, 0.15, 5e6)
	if r := find(rows, "cache", "p1 reuse %"); r.regressed || !r.improved {
		t.Errorf("reuse rate 0.72 -> 0.9 must improve, not regress: %+v", r)
	}
}

// TestPhase1MetricsSkipWithoutBaseline: an old file predating the phase-1
// schema (or a mode with reuse disabled by design) must not gate the new
// metrics — growth of coverage is not a regression.
func TestPhase1MetricsSkipWithoutBaseline(t *testing.T) {
	old := &benchFile{Modes: map[string]benchMode{
		"rebuild": {NsPerOp: 8e8, AllocsPerOp: 120000, BytesPerOp: 8e7},
	}}
	newB := &benchFile{Modes: map[string]benchMode{
		"rebuild": {NsPerOp: 8e8, AllocsPerOp: 120000, BytesPerOp: 8e7,
			Phase1Ns: 8.2e8, Phase1ReuseRate: 0, CutUpdates: 24},
	}}
	rows, _, _ := compare(old, newB, 0.15, 5e6)
	if n := regressions(rows); n != 0 {
		t.Fatalf("new-only phase-1 metrics flagged: %d regressions", n)
	}
	for _, metric := range []string{"phase1 ns", "p1 reuse %", "cut updates"} {
		if r := find(rows, "rebuild", metric); r != nil {
			t.Errorf("zero-baseline metric %q produced a gated row: %+v", metric, r)
		}
	}
}

// TestPhase1NsNoiseGate: phase1_ns honours the same absolute min-delta as
// ns/op — a big relative jump that is absolutely tiny is noise.
func TestPhase1NsNoiseGate(t *testing.T) {
	old := &benchFile{Modes: map[string]benchMode{
		"m": {NsPerOp: 1e8, Phase1Ns: 1e6},
	}}
	newB := &benchFile{Modes: map[string]benchMode{
		"m": {NsPerOp: 1e8, Phase1Ns: 2e6}, // +100% but +1ms only
	}}
	rows, _, _ := compare(old, newB, 0.15, 5e6)
	if r := find(rows, "m", "phase1 ns"); r.regressed {
		t.Errorf("+1ms phase-1 jump flagged: %+v", r)
	}
}

func TestRel(t *testing.T) {
	if got := rel(100, 125); got != 0.25 {
		t.Errorf("rel(100,125) = %v, want 0.25", got)
	}
	if got := rel(0, 0); got != 0 {
		t.Errorf("rel(0,0) = %v, want 0", got)
	}
	if got := rel(0, 5); !math.IsInf(got, 1) {
		t.Errorf("rel(0,5) = %v, want +Inf", got)
	}
	if got := relString(0, 5); got != "+inf%" {
		t.Errorf("relString(0,5) = %q", got)
	}
	if got := relString(200, 100); got != "-50.0%" {
		t.Errorf("relString(200,100) = %q", got)
	}
}

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "b.json")
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestLoadRejectsBogusBaselines: zero or negative numbers are truncated or
// hand-edited files; comparing against them would gate nothing.
func TestLoadRejectsBogusBaselines(t *testing.T) {
	cases := []struct {
		name, json, wantErr string
	}{
		{"no-modes", `{"circuit":"x"}`, `no "modes"`},
		{"zero-ns", `{"modes":{"cache":{"ns_per_op":0,"allocs_per_op":5}}}`, "zero baseline"},
		{"negative-ns", `{"modes":{"cache":{"ns_per_op":-1}}}`, "zero baseline"},
		{"negative-allocs", `{"modes":{"cache":{"ns_per_op":1e6,"allocs_per_op":-2}}}`, "negative counts"},
		{"negative-phase1", `{"modes":{"cache":{"ns_per_op":1e6,"phase1_ns":-5}}}`, "negative phase-1 metrics"},
		{"not-json", `garbage`, "invalid character"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := load(writeTemp(t, c.json))
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("load(%s) err = %v, want containing %q", c.name, err, c.wantErr)
			}
		})
	}
}

// TestLoadRoundTrip proves the struct tags match what bench_test.go writes,
// and that unknown fields (speedup_x, ...) are ignored so the schema can
// grow.
func TestLoadRoundTrip(t *testing.T) {
	v := benchFile{Circuit: "c", Modes: map[string]benchMode{"m": {NsPerOp: 1, AllocsPerOp: 2, BytesPerOp: 3}}}
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	got, err := load(writeTemp(t, string(data)))
	if err != nil {
		t.Fatal(err)
	}
	if got.Modes["m"].BytesPerOp != 3 {
		t.Fatalf("round-trip lost data: %+v", got.Modes["m"])
	}

	b, err := load(writeTemp(t, `{
		"circuit": "vecmul4x10",
		"speedup_x": 1.4,
		"modes": {
			"cache":   {"ns_per_op": 238075048, "allocs_per_op": 41987, "bytes_per_op": 22020626},
			"rebuild": {"ns_per_op": 338000000, "allocs_per_op": 290000, "bytes_per_op": 30000000}
		}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if b.Circuit != "vecmul4x10" || len(b.Modes) != 2 || b.Modes["cache"].AllocsPerOp != 41987 {
		t.Errorf("schema parse wrong: %+v", b)
	}
}
