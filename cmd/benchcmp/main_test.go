package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// readBench loads the committed phase-2 baseline from the repository's
// results directory.
func readBench(t *testing.T) *benchFile {
	t.Helper()
	b, err := load(filepath.Join("..", "..", "results", "BENCH_phase2.json"))
	if err != nil {
		t.Fatalf("loading committed baseline: %v", err)
	}
	return b
}

func regressions(rows []row) int {
	n := 0
	for _, r := range rows {
		if r.regressed {
			n++
		}
	}
	return n
}

// TestBaselineVsItself is the CI-gate identity property: comparing the
// committed baseline against itself must flag nothing.
func TestBaselineVsItself(t *testing.T) {
	b := readBench(t)
	rows, missing := compare(b, b, 0.15, 5e6)
	if len(missing) != 0 {
		t.Fatalf("modes missing against itself: %v", missing)
	}
	if len(rows) == 0 {
		t.Fatal("no comparison rows for the committed baseline")
	}
	if n := regressions(rows); n != 0 {
		t.Fatalf("%d regressions comparing the baseline against itself", n)
	}
}

// TestInjectedSlowdownFlagged: doubling one mode's time must be flagged as
// a regression, and only that metric.
func TestInjectedSlowdownFlagged(t *testing.T) {
	old := readBench(t)
	slow := &benchFile{Circuit: old.Circuit, Modes: map[string]benchMode{}}
	for name, m := range old.Modes {
		slow.Modes[name] = m
	}
	m := slow.Modes["cache"]
	m.NsPerOp *= 2
	slow.Modes["cache"] = m

	rows, _ := compare(old, slow, 0.15, 5e6)
	if n := regressions(rows); n != 1 {
		t.Fatalf("injected 2x cache slowdown: %d regressions flagged, want exactly 1", n)
	}
	for _, r := range rows {
		if r.regressed && (r.mode != "cache" || r.metric != "ns/op") {
			t.Fatalf("wrong metric flagged: %s %s", r.mode, r.metric)
		}
	}
}

// TestNoiseGates: a big relative jump on a microscopic time must pass (the
// absolute min-delta gate), and a small relative jump on a big time must
// pass (the relative gate).
func TestNoiseGates(t *testing.T) {
	old := &benchFile{Modes: map[string]benchMode{
		"tiny": {NsPerOp: 1e6, AllocsPerOp: 100, BytesPerOp: 1000},
		"big":  {NsPerOp: 3e8, AllocsPerOp: 100, BytesPerOp: 1000},
	}}
	newB := &benchFile{Modes: map[string]benchMode{
		"tiny": {NsPerOp: 2e6, AllocsPerOp: 100, BytesPerOp: 1000},  // +100% but +1ms only
		"big":  {NsPerOp: 33e7, AllocsPerOp: 100, BytesPerOp: 1000}, // +10%, below threshold
	}}
	rows, _ := compare(old, newB, 0.15, 5e6)
	if n := regressions(rows); n != 0 {
		t.Fatalf("noise flagged as regression (%d rows)", n)
	}
	// Push the big mode past the threshold: now it must flag.
	m := newB.Modes["big"]
	m.NsPerOp = 4e8
	newB.Modes["big"] = m
	rows, _ = compare(old, newB, 0.15, 5e6)
	if n := regressions(rows); n != 1 {
		t.Fatalf("+33%% on 300ms: %d regressions, want 1", n)
	}
}

// TestMissingMode: a mode present in only one file is reported, not
// silently dropped.
func TestMissingMode(t *testing.T) {
	old := &benchFile{Modes: map[string]benchMode{
		"a": {NsPerOp: 1}, "b": {NsPerOp: 1},
	}}
	newB := &benchFile{Modes: map[string]benchMode{
		"a": {NsPerOp: 1}, "c": {NsPerOp: 1},
	}}
	rows, missing := compare(old, newB, 0.15, 5e6)
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3 (mode a only)", len(rows))
	}
	if len(missing) != 2 || missing[0] != "b" || missing[1] != "c" {
		t.Fatalf("missing = %v, want [b c]", missing)
	}
}

// TestLoadRejectsGarbage: files without a modes object are a usage error,
// not a silent zero-comparison pass.
func TestLoadRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "x.json")
	if err := os.WriteFile(p, []byte(`{"circuit":"x"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := load(p); err == nil {
		t.Fatal("file without modes accepted")
	}
	if err := os.WriteFile(p, []byte(`not json`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := load(p); err == nil {
		t.Fatal("unparseable file accepted")
	}
	// Round-trip a valid file through the schema to prove the struct tags
	// match what bench_test.go writes.
	v := benchFile{Circuit: "c", Modes: map[string]benchMode{"m": {NsPerOp: 1, AllocsPerOp: 2, BytesPerOp: 3}}}
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := load(p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Modes["m"].BytesPerOp != 3 {
		t.Fatalf("round-trip lost data: %+v", got.Modes["m"])
	}
}
