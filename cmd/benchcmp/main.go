// Command benchcmp compares two benchmark result files of the
// results/BENCH_*.json schema and fails when the new run regressed, with a
// noise-aware threshold so routine CI jitter does not flag.
//
// Usage:
//
//	benchcmp [-threshold 0.15] [-min-delta 5ms] old.json new.json
//
// For every mode present in both files it compares ns_per_op,
// allocs_per_op and bytes_per_op. A time regression is flagged only when
// the new time exceeds the old by BOTH the relative threshold and the
// absolute minimum delta — a 20% jump on a 1ms benchmark is noise, on a
// 300ms benchmark it is real. Allocation counts are deterministic, so they
// use the relative threshold alone. Improvements beyond the same gates are
// reported explicitly, so a PR that moves a number can cite the table.
//
// Modes may additionally carry the phase-1 reuse metrics: phase1_ns is
// gated like ns_per_op (both gates), while phase1_reuse_rate and
// cut_updates_incremental are deterministic floor metrics — LOWER is the
// regression (reuse that stops happening), gated by the relative
// threshold alone. All three are skipped when the old file reports them
// as zero or omits them: an older baseline predating the schema, or a
// mode where reuse is disabled by design ("rebuild"), gates nothing.
//
// Bogus inputs fail loudly rather than passing vacuously: a mode with a
// zero (or negative) ns_per_op is rejected at load time — a real benchmark
// cannot run in 0ns, so such a baseline would gate nothing — and a mode
// present in the old file but missing from the new one is a regression in
// coverage, not a skip. Modes only in the NEW file are reported as added
// coverage and do not fail.
//
// Exit status: 0 when no metric regressed, 1 on any regression (including
// a vanished mode), 2 on usage, parse or validation errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"time"
)

// benchFile is the subset of the results/BENCH_*.json schema benchcmp
// reads; unknown fields are ignored so the schema can grow.
type benchFile struct {
	Circuit string               `json:"circuit"`
	Modes   map[string]benchMode `json:"modes"`
}

type benchMode struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`

	// Phase-1 reuse metrics (zero when absent from an older baseline or
	// disabled in the mode).
	Phase1Ns        float64 `json:"phase1_ns"`
	Phase1ReuseRate float64 `json:"phase1_reuse_rate"`
	CutUpdates      float64 `json:"cut_updates_incremental"`
}

// row is one metric comparison of the report table.
type row struct {
	mode, metric string
	old, new_    float64
	regressed    bool
	improved     bool
}

func main() {
	threshold := flag.Float64("threshold", 0.15, "relative regression threshold (0.15 = fail beyond +15%)")
	minDelta := flag.Duration("min-delta", 5*time.Millisecond, "absolute time increase below which a relative regression is considered noise")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcmp [flags] old.json new.json")
		flag.Usage()
		os.Exit(2)
	}

	oldB, err := load(flag.Arg(0))
	check(err)
	newB, err := load(flag.Arg(1))
	check(err)

	rows, vanished, added := compare(oldB, newB, *threshold, float64(minDelta.Nanoseconds()))
	for _, m := range added {
		fmt.Fprintf(os.Stderr, "benchcmp: note: mode %q only in new file — added coverage, not compared\n", m)
	}

	bad, better := 0, 0
	fmt.Printf("%-10s %-13s %15s %15s %8s\n", "mode", "metric", "old", "new", "delta")
	for _, r := range rows {
		mark := ""
		switch {
		case r.regressed:
			mark = "  REGRESSED"
			bad++
		case r.improved:
			mark = "  improved"
			better++
		}
		fmt.Printf("%-10s %-13s %15.0f %15.0f %8s%s\n",
			r.mode, r.metric, r.old, r.new_, relString(r.old, r.new_), mark)
	}
	for _, m := range vanished {
		fmt.Printf("%-10s %-13s %15s %15s %8s  REGRESSED (mode vanished)\n", m, "-", "-", "-", "-")
		bad++
	}
	if better > 0 {
		fmt.Printf("\n%d metric(s) improved beyond %.0f%%\n", better, 100**threshold)
	}
	if bad > 0 {
		fmt.Printf("\n%d metric(s) regressed beyond +%.0f%% (old: %s, new: %s)\n",
			bad, 100**threshold, flag.Arg(0), flag.Arg(1))
		os.Exit(1)
	}
	fmt.Printf("\nno regressions beyond +%.0f%%\n", 100**threshold)
}

// compare builds the comparison rows for the modes common to both files, in
// sorted mode order. vanished lists modes present only in the old file
// (lost coverage — the caller must fail on these); added lists modes present
// only in the new file (informational).
func compare(oldB, newB *benchFile, threshold, minDeltaNs float64) (rows []row, vanished, added []string) {
	var modes []string
	for name := range oldB.Modes {
		if _, ok := newB.Modes[name]; ok {
			modes = append(modes, name)
		} else {
			vanished = append(vanished, name)
		}
	}
	for name := range newB.Modes {
		if _, ok := oldB.Modes[name]; !ok {
			added = append(added, name)
		}
	}
	sort.Strings(modes)
	sort.Strings(vanished)
	sort.Strings(added)

	for _, name := range modes {
		o, n := oldB.Modes[name], newB.Modes[name]
		// Time needs both gates: a relative jump that is absolutely tiny is
		// scheduler noise, not a regression. The improvement marker mirrors
		// the regression gates so it is equally noise-proof.
		timeRegressed := n.NsPerOp > o.NsPerOp*(1+threshold) && n.NsPerOp-o.NsPerOp > minDeltaNs
		timeImproved := n.NsPerOp < o.NsPerOp*(1-threshold) && o.NsPerOp-n.NsPerOp > minDeltaNs
		rows = append(rows,
			row{name, "ns/op", o.NsPerOp, n.NsPerOp, timeRegressed, timeImproved},
			countRow(name, "allocs/op", o.AllocsPerOp, n.AllocsPerOp, threshold),
			countRow(name, "bytes/op", o.BytesPerOp, n.BytesPerOp, threshold),
		)
		// Phase-1 reuse metrics gate only against a baseline that has them:
		// a zero old value means an older schema or a mode with reuse
		// disabled by design, and comparing against it would flag noise.
		if o.Phase1Ns > 0 {
			p1Regressed := n.Phase1Ns > o.Phase1Ns*(1+threshold) && n.Phase1Ns-o.Phase1Ns > minDeltaNs
			p1Improved := n.Phase1Ns < o.Phase1Ns*(1-threshold) && o.Phase1Ns-n.Phase1Ns > minDeltaNs
			rows = append(rows, row{name, "phase1 ns", o.Phase1Ns, n.Phase1Ns, p1Regressed, p1Improved})
		}
		if o.Phase1ReuseRate > 0 {
			// As a percentage so the %.0f report column stays readable.
			rows = append(rows, floorRow(name, "p1 reuse %", 100*o.Phase1ReuseRate, 100*n.Phase1ReuseRate, threshold))
		}
		if o.CutUpdates > 0 {
			rows = append(rows, floorRow(name, "cut updates", o.CutUpdates, n.CutUpdates, threshold))
		}
	}
	return rows, vanished, added
}

// floorRow compares a deterministic metric where LOWER is the regression:
// reuse rates and incremental-update counts dropping means the reuse
// machinery stopped firing, even though a conventional count gate would
// call the smaller number an improvement.
func floorRow(mode, metric string, old, new_, threshold float64) row {
	return row{mode, metric, old, new_, new_ < old*(1-threshold), new_ > old*(1+threshold)}
}

// countRow compares a deterministic count metric. A zero old value is a
// legitimate baseline here (a zero-alloc benchmark is the goal state, not
// bad data), and any count appearing on top of it is a regression — the
// relative threshold cannot express that, so it is gated explicitly.
func countRow(mode, metric string, old, new_, threshold float64) row {
	regressed := new_ > old*(1+threshold)
	if old == 0 {
		regressed = new_ > 0
	}
	return row{mode, metric, old, new_, regressed, new_ < old*(1-threshold)}
}

// rel returns the relative change from old to new. +Inf when climbing off a
// zero baseline; 0 when both are zero.
func rel(old, new_ float64) float64 {
	if old == 0 {
		if new_ == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (new_ - old) / old
}

// relString formats rel for the report table, avoiding a misleading
// "+0.0%" on zero-baseline climbs.
func relString(old, new_ float64) string {
	r := rel(old, new_)
	if math.IsInf(r, 1) {
		return "+inf%"
	}
	return fmt.Sprintf("%+.1f%%", 100*r)
}

func load(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b benchFile
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(b.Modes) == 0 {
		return nil, fmt.Errorf("%s: no \"modes\" in file (not a BENCH_*.json?)", path)
	}
	// A benchmark cannot take zero time; a mode with ns_per_op <= 0 is a
	// truncated or hand-edited file, and comparing against it would gate
	// nothing. Counts may legitimately be zero.
	for name, m := range b.Modes {
		if m.NsPerOp <= 0 {
			return nil, fmt.Errorf("%s: mode %q has ns_per_op %v — corrupt or zero baseline", path, name, m.NsPerOp)
		}
		if m.AllocsPerOp < 0 || m.BytesPerOp < 0 {
			return nil, fmt.Errorf("%s: mode %q has negative counts — corrupt baseline", path, name)
		}
		if m.Phase1Ns < 0 || m.Phase1ReuseRate < 0 || m.CutUpdates < 0 {
			return nil, fmt.Errorf("%s: mode %q has negative phase-1 metrics — corrupt baseline", path, name)
		}
	}
	return &b, nil
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
}
