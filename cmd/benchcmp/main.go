// Command benchcmp compares two benchmark result files of the
// results/BENCH_*.json schema and fails when the new run regressed, with a
// noise-aware threshold so routine CI jitter does not flag.
//
// Usage:
//
//	benchcmp [-threshold 0.15] [-min-delta 5ms] old.json new.json
//
// For every mode present in both files it compares ns_per_op,
// allocs_per_op and bytes_per_op. A time regression is flagged only when
// the new time exceeds the old by BOTH the relative threshold and the
// absolute minimum delta — a 20% jump on a 1ms benchmark is noise, on a
// 300ms benchmark it is real. Allocation counts are deterministic, so they
// use the relative threshold alone. Exit status: 0 when no metric
// regressed, 1 on any regression, 2 on usage or parse errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"
)

// benchFile is the subset of the results/BENCH_*.json schema benchcmp
// reads; unknown fields are ignored so the schema can grow.
type benchFile struct {
	Circuit string               `json:"circuit"`
	Modes   map[string]benchMode `json:"modes"`
}

type benchMode struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// row is one metric comparison of the report table.
type row struct {
	mode, metric string
	old, new_    float64
	regressed    bool
}

func main() {
	threshold := flag.Float64("threshold", 0.15, "relative regression threshold (0.15 = fail beyond +15%)")
	minDelta := flag.Duration("min-delta", 5*time.Millisecond, "absolute time increase below which a relative regression is considered noise")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcmp [flags] old.json new.json")
		flag.Usage()
		os.Exit(2)
	}

	oldB, err := load(flag.Arg(0))
	check(err)
	newB, err := load(flag.Arg(1))
	check(err)

	rows, missing := compare(oldB, newB, *threshold, float64(minDelta.Nanoseconds()))
	for _, m := range missing {
		fmt.Fprintf(os.Stderr, "benchcmp: warning: mode %q only in one file — skipped\n", m)
	}

	bad := 0
	fmt.Printf("%-10s %-13s %15s %15s %8s\n", "mode", "metric", "old", "new", "delta")
	for _, r := range rows {
		mark := ""
		if r.regressed {
			mark = "  REGRESSED"
			bad++
		}
		fmt.Printf("%-10s %-13s %15.0f %15.0f %+7.1f%%%s\n",
			r.mode, r.metric, r.old, r.new_, 100*rel(r.old, r.new_), mark)
	}
	if bad > 0 {
		fmt.Printf("\n%d metric(s) regressed beyond +%.0f%% (old: %s, new: %s)\n",
			bad, 100**threshold, flag.Arg(0), flag.Arg(1))
		os.Exit(1)
	}
	fmt.Printf("\nno regressions beyond +%.0f%%\n", 100**threshold)
}

// compare builds the comparison rows for the modes common to both files,
// in sorted mode order, and returns the names of modes present in only one
// of them.
func compare(oldB, newB *benchFile, threshold, minDeltaNs float64) (rows []row, missing []string) {
	var modes []string
	for name := range oldB.Modes {
		if _, ok := newB.Modes[name]; ok {
			modes = append(modes, name)
		} else {
			missing = append(missing, name)
		}
	}
	for name := range newB.Modes {
		if _, ok := oldB.Modes[name]; !ok {
			missing = append(missing, name)
		}
	}
	sort.Strings(modes)
	sort.Strings(missing)

	for _, name := range modes {
		o, n := oldB.Modes[name], newB.Modes[name]
		// Time needs both gates: a relative jump that is absolutely tiny is
		// scheduler noise, not a regression.
		timeRegressed := n.NsPerOp > o.NsPerOp*(1+threshold) && n.NsPerOp-o.NsPerOp > minDeltaNs
		rows = append(rows,
			row{name, "ns/op", o.NsPerOp, n.NsPerOp, timeRegressed},
			row{name, "allocs/op", o.AllocsPerOp, n.AllocsPerOp, n.AllocsPerOp > o.AllocsPerOp*(1+threshold)},
			row{name, "bytes/op", o.BytesPerOp, n.BytesPerOp, n.BytesPerOp > o.BytesPerOp*(1+threshold)},
		)
	}
	return rows, missing
}

// rel returns the relative change from old to new (0 when old is 0).
func rel(old, new_ float64) float64 {
	if old == 0 {
		return 0
	}
	return (new_ - old) / old
}

func load(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b benchFile
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(b.Modes) == 0 {
		return nil, fmt.Errorf("%s: no \"modes\" in file (not a BENCH_*.json?)", path)
	}
	return &b, nil
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
}
