// Command repro regenerates the paper's evaluation tables and figures.
//
//	repro -all                # Table I, Fig. 4, Table II (both), Table III
//	repro -table2small -quick # fast smoke run of the small-circuit table
//	repro -scaled=false ...   # paper-size circuits (hours of runtime)
package main

import (
	"flag"
	"fmt"
	"os"

	"dpals/internal/repro"
)

func main() {
	table1 := flag.Bool("table1", false, "print benchmark information (Table I)")
	fig4 := flag.Bool("fig4", false, "run the candidate-set experiment (Fig. 4)")
	t2s := flag.Bool("table2small", false, "run Table II, small circuits (MSE)")
	t2l := flag.Bool("table2large", false, "run Table II, large circuits (MSE)")
	t3 := flag.Bool("table3", false, "run Table III (AccALS vs DP-SA, ER and MED)")
	all := flag.Bool("all", false, "run everything")
	quick := flag.Bool("quick", false, "subset of circuits, single thresholds")
	median := flag.Bool("median", false, "median threshold only (all circuits)")
	scaled := flag.Bool("scaled", true, "scaled-down circuit sizes (false: paper sizes)")
	patterns := flag.Int("patterns", 0, "Monte-Carlo patterns (0: 8192, quick: 2048)")
	threads := flag.Int("threads", 0, "threads for Table II (0: GOMAXPROCS)")
	seed := flag.Int64("seed", 1, "simulation seed")
	cap := flag.Int("cap", 0, "cap applied LACs per run on large circuits (0: unlimited)")
	flag.Parse()

	cfg := repro.Config{
		Out: os.Stdout, Scaled: *scaled, Quick: *quick, MedianOnly: *median,
		Patterns: *patterns, Threads: *threads, Seed: *seed, CapIters: *cap,
	}
	ran := false
	if *table1 || *all {
		repro.TableI(cfg)
		fmt.Println()
		ran = true
	}
	if *fig4 || *all {
		repro.Fig4(cfg)
		fmt.Println()
		ran = true
	}
	if *t2s || *all {
		repro.TableII(cfg, true)
		fmt.Println()
		ran = true
	}
	if *t2l || *all {
		repro.TableII(cfg, false)
		fmt.Println()
		ran = true
	}
	if *t3 || *all {
		repro.TableIII(cfg)
		fmt.Println()
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}
