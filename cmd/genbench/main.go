// Command genbench generates the built-in benchmark suite as BLIF and
// ASCII-AIGER files, so the circuits can be inspected or fed to external
// tools.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"dpals"
)

func main() {
	dir := flag.String("o", "bench", "output directory")
	scaled := flag.Bool("scaled", true, "scaled-down circuit sizes")
	format := flag.String("format", "both", "output format: blif, aag, or both")
	flag.Parse()

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fatal(err)
	}
	for _, b := range dpals.BenchmarkSuite(*scaled) {
		if *format == "blif" || *format == "both" {
			write(filepath.Join(*dir, b.Name+".blif"), b.Circuit.WriteBLIF)
		}
		if *format == "aag" || *format == "both" {
			write(filepath.Join(*dir, b.Name+".aag"), b.Circuit.WriteAIGER)
		}
		fmt.Printf("%-10s %5d gates  (%s)\n", b.Name, b.Circuit.NumGates(), b.Function)
	}
}

func write(path string, fn func(w io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := fn(f); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "genbench:", err)
	os.Exit(1)
}
