// Command alscheck is the randomized differential-verification campaign
// for the synthesis engine. It generates reproducible random circuits,
// runs every selected flow on them, and cross-checks each run against
// independent oracles:
//
//   - the reported error vs a from-scratch recompute on the run's own
//     training patterns (catches bookkeeping desyncs),
//   - the error budget, including for mid-run-cancelled best-so-far
//     results,
//   - the exhaustively enumerated exact error (circuits ≤ 20 inputs):
//     equality in exhaustive mode, a Hoeffding bound for Monte-Carlo,
//   - SAT-certified worst-case error vs enumerated worst-case error,
//   - bit-identical results across thread counts and with the CPM cache
//     on/off, and validity of cancelled runs,
//   - budget monotonicity of the conventional flow.
//
// With -faults it additionally seeds every engine fault kind
// (internal/fault) and requires each to be caught by some cross-check —
// the harness's own self-test. Failing circuits are shrunk to minimal
// repros and written to -out as .aag + .json pairs that the regression
// suite replays.
//
// Usage:
//
//	alscheck -seeds 1:50 -flows dpsa,conventional -v
//	alscheck -seeds 1:200 -faults=false          # pure differential sweep
//	alscheck -emit-fault-repros -out testdata/shrunk
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dpals/internal/aig"
	"dpals/internal/core"
	"dpals/internal/fault"
	"dpals/internal/gen"
	"dpals/internal/metric"
	"dpals/internal/oracle"
)

var verbose bool

func logf(format string, args ...any) {
	if verbose {
		fmt.Printf(format+"\n", args...)
	}
}

func main() {
	seeds := flag.String("seeds", "1:20", "seed range a:b (inclusive) for random circuits")
	flows := flag.String("flows", "conventional,vecbee,dp,dpsa", "comma-separated flows to exercise")
	metrics := flag.String("metrics", "er,med,mse", "comma-separated error metrics")
	patterns := flag.Int("patterns", 1024, "Monte-Carlo patterns per run")
	maxPIs := flag.Int("max-pis", 12, "largest random-circuit input count (exact checks need ≤ 20)")
	maxIters := flag.Int("max-iters", 30, "applied-LAC cap per run")
	faults := flag.Bool("faults", true, "seed every fault kind and require detection")
	shrink := flag.Bool("shrink", true, "shrink failing cases to minimal repros")
	shrinkTrials := flag.Int("shrink-trials", 300, "predicate-evaluation budget per shrink")
	out := flag.String("out", "testdata/shrunk", "directory for shrunk repro fixtures")
	emitFaultRepros := flag.Bool("emit-fault-repros", false,
		"also shrink+save one repro per detected fault kind (fixture generation)")
	certStats := flag.String("cert-stats", "",
		"write campaign-wide WCE certification accounting (runs, SAT calls, cex hits, rollbacks, time) as JSON to this file")
	flag.BoolVar(&verbose, "v", false, "log every campaign step")
	flag.Parse()

	lo, hi, err := parseRange(*seeds)
	if err != nil {
		fmt.Fprintln(os.Stderr, "alscheck:", err)
		os.Exit(2)
	}
	flowList, err := parseFlows(*flows)
	if err != nil {
		fmt.Fprintln(os.Stderr, "alscheck:", err)
		os.Exit(2)
	}
	metricList, err := parseMetrics(*metrics)
	if err != nil {
		fmt.Fprintln(os.Stderr, "alscheck:", err)
		os.Exit(2)
	}

	c := &campaign{
		flows: flowList, metrics: metricList,
		patterns: *patterns, maxIters: *maxIters,
		shrink: *shrink, shrinkTrials: *shrinkTrials, outDir: *out,
		detectedKinds: map[fault.Kind]bool{},
	}
	for seed := lo; seed <= hi; seed++ {
		c.runSeed(seed, *maxPIs, *faults, *emitFaultRepros)
	}

	fmt.Printf("alscheck: %d runs, %d checks, %d failures\n", c.runs, c.checks, c.failures)
	if c.cert.Runs > 0 {
		fmt.Printf("  WCE cert: %d runs, %d SAT calls, %d cex-cache hits, %d rollbacks\n",
			c.cert.Runs, c.cert.Calls, c.cert.CexHits, c.cert.Rollbacks)
	}
	if *certStats != "" {
		data, err := json.MarshalIndent(c.cert, "", "  ")
		if err == nil {
			err = os.WriteFile(*certStats, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "alscheck: cert stats:", err)
			c.failures++
		}
	}
	if *faults {
		for _, k := range fault.Kinds() {
			if c.detectedKinds[k] {
				fmt.Printf("  fault %-20s detected\n", k)
			} else {
				fmt.Printf("  fault %-20s NEVER DETECTED\n", k)
				c.failures++
			}
		}
	}
	if c.failures > 0 {
		os.Exit(1)
	}
}

type campaign struct {
	flows   []core.Flow
	metrics []metric.Kind

	patterns, maxIters int
	shrink             bool
	shrinkTrials       int
	outDir             string
	runs, checks       int

	failures      int
	detectedKinds map[fault.Kind]bool
	cert          certSummary
}

// certSummary is the campaign-wide WCE certification accounting exported
// by -cert-stats (a CI artifact: trends in SAT-call counts and rollbacks
// across nightly sweeps).
type certSummary struct {
	Runs      int   `json:"wce_runs"`
	Calls     int   `json:"cert_calls"`
	CexHits   int   `json:"cert_cex_hits"`
	Rollbacks int   `json:"cert_rollbacks"`
	TimeNS    int64 `json:"cert_time_ns"`
}

// noteCert folds one WCE run's certification stats into the summary.
func (c *campaign) noteCert(spec oracle.RunSpec, res *core.Result) {
	if spec.Metric != metric.WCE || res == nil {
		return
	}
	c.cert.Runs++
	c.cert.Calls += res.Stats.CertCalls
	c.cert.CexHits += res.Stats.CertCexHits
	c.cert.Rollbacks += res.Stats.CertRollbacks
	c.cert.TimeNS += res.Stats.CertTime.Nanoseconds()
}

// circuitFor derives a varied but reproducible random circuit from the
// seed: sizes cycle through a few shapes so one sweep covers narrow-deep
// and wide-shallow graphs.
func circuitFor(seed int64, maxPIs int) *aig.Graph {
	shapes := []struct{ pis, pos, ands int }{
		{6, 4, 40}, {8, 6, 60}, {10, 8, 90}, {12, 6, 120}, {7, 7, 50},
	}
	s := shapes[int(seed)%len(shapes)]
	if s.pis > maxPIs {
		s.pis = maxPIs
	}
	return gen.Random(seed, s.pis, s.pos, s.ands)
}

// thresholdFor picks a mid-range budget so runs neither finish instantly
// nor exhaust the circuit.
func thresholdFor(k metric.Kind, g *aig.Graph) float64 {
	r := metric.ReferenceError(g.NumPOs())
	switch k {
	case metric.ER:
		return 0.15
	case metric.MSE:
		return r * r
	case metric.MHD:
		return 0.5
	case metric.WCE:
		return float64(wceBoundFor(g))
	default: // MED
		return r
	}
}

// wceBoundFor picks a deliberately tight worst-case budget: candidates that
// squeeze under the SAMPLED estimate near the bound are the ones whose true
// worst case is most likely to exceed it, which is exactly the traffic the
// certification step — and the skip-wce-cert fault detection — needs.
func wceBoundFor(g *aig.Graph) uint64 {
	b := uint64(metric.ReferenceError(g.NumPOs()))
	if b == 0 {
		b = 1
	}
	return b
}

// wceSpec upgrades a spec to the WCE-constrained flow on g.
func wceSpec(spec oracle.RunSpec, g *aig.Graph) oracle.RunSpec {
	spec.Metric = metric.WCE
	spec.WCEBound = wceBoundFor(g)
	spec.Threshold = float64(spec.WCEBound)
	return spec
}

func (c *campaign) runSeed(seed int64, maxPIs int, faults, emitFaultRepros bool) {
	g := circuitFor(seed, maxPIs)
	logf("seed %d: %s (%d PIs, %d POs, %d ANDs)", seed, g.Name, g.NumPIs(), g.NumPOs(), g.NumAnds())
	for _, flow := range c.flows {
		for _, mk := range c.metrics {
			spec := oracle.RunSpec{
				Flow: flow, Metric: mk, Threshold: thresholdFor(mk, g),
				Patterns: c.patterns, Seed: seed, Threads: 1, MaxIters: c.maxIters,
			}
			if mk == metric.WCE {
				spec = wceSpec(spec, g)
			}
			c.differential(g, spec)
		}
	}
	// Metamorphic extras rotate across seeds to keep a sweep affordable.
	base := oracle.RunSpec{
		Flow: core.FlowDPSA, Metric: metric.MED, Threshold: thresholdFor(metric.MED, g),
		Patterns: c.patterns, Seed: seed, Threads: 1, MaxIters: c.maxIters,
	}
	switch seed % 3 {
	case 0:
		c.exhaustiveCheck(g, base)
	case 1:
		c.wceCheck(g, base)
	case 2:
		spec := base
		spec.Flow = core.FlowConventional
		t := spec.Threshold
		c.report(g, spec, oracle.CheckBudgetMonotonic(g, spec, []float64{t / 4, t, t * 4}), "budget-monotonic ladder")
		// Same metamorphic idea under the WCE-constrained flow: loosening the
		// certified bound must be monotone in applied LACs and gate count.
		ws := wceSpec(spec, g)
		b := ws.WCEBound
		c.report(g, ws, oracle.CheckWCEBoundMonotonic(g, ws, []uint64{max1(b / 2), b, 2 * b}), "wce-bound-monotonic ladder")
	}
	if faults {
		c.faultSweep(g, base, emitFaultRepros)
	}
}

// differential runs one spec plus its metamorphic variants: thread-count
// and cache-switch determinism (compared down to the per-iteration
// evaluation traces), and a mid-run cancellation.
func (c *campaign) differential(g *aig.Graph, spec oracle.RunSpec) {
	ref := oracle.ExecuteTraced(g, spec)
	c.runs++
	if ref.Err != nil {
		c.fail(g, spec, "panic", ref.Err.Error())
		return
	}
	c.report(g, spec, oracle.Verify(g, spec, ref.Result), "clean run")
	c.noteCert(spec, ref.Result)

	variants := []struct {
		name string
		mut  func(*oracle.RunSpec)
	}{
		{"threads-all", func(s *oracle.RunSpec) { s.Threads = 0 }},
	}
	if spec.Flow == core.FlowDP || spec.Flow == core.FlowDPSA {
		variants = append(variants,
			struct {
				name string
				mut  func(*oracle.RunSpec)
			}{"no-cpm-cache", func(s *oracle.RunSpec) { s.NoCPMCache = true }},
			// Warm cross-round phase-1 reuse must be bit-identical to cold
			// rebuilds, down to the evaluation traces DPSA self-adaption
			// feeds on; this is the campaign's differential check on the
			// whole reuse layer (incremental cuts, CPM refresh, eval memo).
			struct {
				name string
				mut  func(*oracle.RunSpec)
			}{"cold-phase1", func(s *oracle.RunSpec) { s.NoWarmStart = true }})
	}
	for _, v := range variants {
		vs := spec
		v.mut(&vs)
		vout := oracle.ExecuteTraced(g, vs)
		c.runs++
		c.checks++
		if vout.Err != nil {
			c.fail(g, vs, "panic", vout.Err.Error())
			continue
		}
		if d := oracle.DivergesOutcome(ref, vout); d != "" {
			c.fail(g, vs, "determinism-"+v.name, d)
		}
	}

	cancel := spec
	cancel.CancelAfter = 2
	cres, _, err := oracle.Execute(g, cancel)
	c.runs++
	if err != nil {
		c.fail(g, cancel, "panic", err.Error())
		return
	}
	c.report(g, cancel, oracle.Verify(g, cancel, cres), "cancelled run")
	c.noteCert(cancel, cres)
}

func (c *campaign) exhaustiveCheck(g *aig.Graph, base oracle.RunSpec) {
	if g.NumPIs() > oracle.MaxPIs {
		return
	}
	spec := base
	spec.Exhaustive = true
	res, _, err := oracle.Execute(g, spec)
	c.runs++
	if err != nil {
		c.fail(g, spec, "panic", err.Error())
		return
	}
	c.report(g, spec, oracle.Verify(g, spec, res), "exhaustive run")
}

func (c *campaign) wceCheck(g *aig.Graph, base oracle.RunSpec) {
	res, _, err := oracle.Execute(g, base)
	c.runs++
	if err != nil {
		c.fail(g, base, "panic", err.Error())
		return
	}
	c.checks++
	if v := oracle.CrossCheckWCE(g, res.Graph); v != nil {
		c.fail(g, base, v.Check, v.Detail)
	}
}

// faultSweep seeds each not-yet-detected fault kind on this circuit. A
// kind can be an unobservable "equivalent mutant" under one configuration
// yet plainly detectable under another, so each kind is scanned across
// several flow/metric combinations before giving up on the circuit.
func (c *campaign) faultSweep(g *aig.Graph, base oracle.RunSpec, emit bool) {
	specs := []oracle.RunSpec{base}
	// SASIMI wire substitutions grow a node's fanout, which is what makes a
	// skipped incremental cut repair observable (constant LACs only shrink
	// fanout, leaving stale cuts score-equivalent).
	sasimi := base
	sasimi.SASIMI = true
	specs = append(specs, sasimi)
	for _, v := range []struct {
		flow core.Flow
		mk   metric.Kind
	}{
		{core.FlowDP, metric.ER},
		{core.FlowConventional, metric.MED},
		{core.FlowVECBEE, metric.ER},
	} {
		s := base
		s.Flow = v.flow
		s.Metric = v.mk
		s.Threshold = thresholdFor(v.mk, g)
		specs = append(specs, s)
	}
	// The WCE-constrained flow is where skip-wce-cert lives: a skipped
	// certification is observable exactly when the SAMPLED worst case of the
	// emitted circuit understates the true one — then the genuine SAT calls
	// would have refused (or tightened past) what the skipped ones claimed,
	// and the exhaustive oracle flags wce-cert-unsound. A 1024-pattern
	// sample on a ≤ 12-PI circuit rarely misses the worst-case input, which
	// would make the fault an equivalent mutant everywhere; a deliberately
	// thin sample restores the gap between sampled and true that the
	// certification step exists to close.
	wdp := wceSpec(base, g)
	wdp.Flow = core.FlowDP
	wdp.Patterns = 64
	wconv := wceSpec(base, g)
	wconv.Flow = core.FlowConventional
	wconv.Patterns = 64
	specs = append(specs, wdp, wconv)
	for _, kind := range fault.Kinds() {
		if c.detectedKinds[kind] && !emit {
			continue
		}
		c.checks++
		detected := false
		for _, spec := range specs {
			det, nth := oracle.ScanFault(g, spec, kind, 25)
			if !det.Detected {
				continue
			}
			detected = true
			first := !c.detectedKinds[kind]
			c.detectedKinds[kind] = true
			logf("  fault %s: detected at site %d of %s/%s via %s", kind, nth, spec.Flow, spec.Metric, det.How)
			if emit && first {
				s := spec
				s.Fault = kind
				s.FaultNth = nth
				c.saveShrunk(g, s, det)
			}
			break
		}
		if !detected {
			logf("  fault %s: no detectable site on this circuit", kind)
		}
	}
}

// report counts violations of one verified run and shrinks on failure.
func (c *campaign) report(g *aig.Graph, spec oracle.RunSpec, vs []oracle.Violation, what string) {
	c.checks++
	if len(vs) == 0 {
		logf("  %s %s/%s: ok (%s)", spec.Flow, spec.Metric, seedTag(spec), what)
		return
	}
	for _, v := range vs {
		c.fail(g, spec, v.Check, v.Detail)
	}
}

func (c *campaign) fail(g *aig.Graph, spec oracle.RunSpec, check, detail string) {
	c.failures++
	fmt.Fprintf(os.Stderr, "FAIL %s %s/%s [%s]: %s\n", g.Name, spec.Flow, spec.Metric, check, detail)
	if c.shrink {
		c.saveShrunk(g, spec, oracle.Detection{Detected: true, How: check, Detail: detail})
	}
}

// saveShrunk minimises g under "the spec still fails on it" and writes
// the fixture pair.
func (c *campaign) saveShrunk(g *aig.Graph, spec oracle.RunSpec, det oracle.Detection) {
	pred := func(cand *aig.Graph) bool {
		clean := oracle.CleanOutcome(cand, spec)
		if clean.Err != nil {
			return false
		}
		return oracle.DetectFault(cand, spec, &clean).Detected
	}
	if spec.Fault == fault.None {
		// Unseeded failure: the predicate is "Verify still flags the run".
		pred = func(cand *aig.Graph) bool {
			res, _, err := oracle.Execute(cand, spec)
			if err != nil {
				return true // a panic is certainly still a failure
			}
			return len(oracle.Verify(cand, spec, res)) > 0
		}
	}
	if !pred(g) {
		logf("  shrink: failure does not reproduce standalone; keeping full circuit")
	}
	small, trials := oracle.Shrink(g, pred, oracle.ShrinkOptions{MaxTrials: c.shrinkTrials})
	name := reproName(spec, g)
	rs := oracle.ReproSpec{Run: spec, Check: det.How, Detail: det.Detail}
	if err := oracle.SaveRepro(c.outDir, name, rs, small); err != nil {
		fmt.Fprintf(os.Stderr, "alscheck: saving repro %s: %v\n", name, err)
		return
	}
	fmt.Printf("  shrunk %s: %d → %d ANDs in %d trials → %s/%s.aag\n",
		name, g.NumAnds(), small.NumAnds(), trials, c.outDir, name)
}

func reproName(spec oracle.RunSpec, g *aig.Graph) string {
	kind := string(spec.Fault)
	if kind == "" {
		kind = "genuine"
	}
	return fmt.Sprintf("%s-%s-%s-s%d", kind, strings.ToLower(spec.Flow.String()), strings.ToLower(spec.Metric.String()), spec.Seed)
}

func seedTag(spec oracle.RunSpec) string { return "s" + strconv.FormatInt(spec.Seed, 10) }

func max1(v uint64) uint64 {
	if v == 0 {
		return 1
	}
	return v
}

func parseRange(s string) (int64, int64, error) {
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("bad seed range %q (want a:b)", s)
	}
	lo, err := strconv.ParseInt(parts[0], 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad seed %q", parts[0])
	}
	hi, err := strconv.ParseInt(parts[1], 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad seed %q", parts[1])
	}
	if hi < lo {
		return 0, 0, fmt.Errorf("empty seed range %q", s)
	}
	return lo, hi, nil
}

func parseFlows(s string) ([]core.Flow, error) {
	m := map[string]core.Flow{
		"conventional": core.FlowConventional, "vecbee": core.FlowVECBEE,
		"accals": core.FlowAccALS, "dp": core.FlowDP, "dpsa": core.FlowDPSA,
	}
	var out []core.Flow
	for _, name := range strings.Split(s, ",") {
		f, ok := m[strings.TrimSpace(strings.ToLower(name))]
		if !ok {
			return nil, fmt.Errorf("unknown flow %q", name)
		}
		out = append(out, f)
	}
	return out, nil
}

func parseMetrics(s string) ([]metric.Kind, error) {
	m := map[string]metric.Kind{
		"er": metric.ER, "mse": metric.MSE, "med": metric.MED, "mhd": metric.MHD,
		"wce": metric.WCE,
	}
	var out []metric.Kind
	for _, name := range strings.Split(s, ",") {
		k, ok := m[strings.TrimSpace(strings.ToLower(name))]
		if !ok {
			return nil, fmt.Errorf("unknown metric %q", name)
		}
		out = append(out, k)
	}
	return out, nil
}
