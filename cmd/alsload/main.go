// Command alsload exercises a running alsd daemon and reports latency
// percentiles and cache hit rates — the load-test harness behind the
// EXPERIMENTS.md serving table.
//
// The workload cycles through -seeds distinct seeds; with fewer seeds
// than requests, repeat submissions exercise the result cache, so the
// hit/miss split reported at the end reflects steady-state serving.
//
//	alsload -addr localhost:8337 -n 64 -c 4 -circuit mult:4x4 -seeds 8
//
// -check-cache runs the CI smoke protocol instead: submit one job twice
// sequentially, require the second response to be a cache hit with a
// byte-identical circuit, and exit non-zero otherwise.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"dpals"
)

type result struct {
	latency time.Duration
	cache   string
	err     error
}

func main() {
	var (
		addr      = flag.String("addr", "localhost:8337", "alsd address (host:port)")
		n         = flag.Int("n", 64, "total requests")
		c         = flag.Int("c", 4, "concurrent clients")
		circuit   = flag.String("circuit", "mult:4x4", "workload circuit: mult:NxM, adder:N, or an AIGER/BLIF file path")
		flow      = flag.String("flow", "dpsa", "synthesis flow")
		metric    = flag.String("metric", "er", "error metric")
		threshold = flag.Float64("threshold", 0.05, "error budget")
		patterns  = flag.Int("patterns", 1024, "simulation patterns")
		seeds     = flag.Int("seeds", 8, "distinct seeds cycled through the workload")
		timeout   = flag.Duration("timeout", 2*time.Minute, "per-request timeout")
		tenant    = flag.String("tenant", "alsload", "X-Tenant header value")
		printReq  = flag.Bool("print-request", false, "print one request body as JSON and exit")
		check     = flag.Bool("check-cache", false, "submit one job twice; require hit + byte-identical circuit")
	)
	flag.Parse()

	text, format, err := loadCircuit(*circuit)
	if err != nil {
		fatalf("circuit: %v", err)
	}
	makeBody := func(seed int64) []byte {
		body, err := json.Marshal(map[string]any{
			"circuit": text, "format": format,
			"flow": *flow, "metric": *metric, "threshold": *threshold,
			"patterns": *patterns, "seed": seed,
		})
		if err != nil {
			fatalf("marshal: %v", err)
		}
		return body
	}

	if *printReq {
		os.Stdout.Write(makeBody(1))
		fmt.Println()
		return
	}

	url := "http://" + *addr + "/v1/jobs"
	client := &http.Client{Timeout: *timeout}
	submit := func(body []byte) (*jobReply, time.Duration, error) {
		req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return nil, 0, err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Tenant", *tenant)
		start := time.Now()
		resp, err := client.Do(req)
		lat := time.Since(start)
		if err != nil {
			return nil, lat, err
		}
		defer resp.Body.Close()
		var jr jobReply
		if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
			return nil, lat, fmt.Errorf("decode: %w", err)
		}
		if resp.StatusCode != http.StatusOK {
			return nil, lat, fmt.Errorf("status %d: %s", resp.StatusCode, jr.Error)
		}
		return &jr, lat, nil
	}

	if *check {
		first, _, err := submit(makeBody(1))
		if err != nil {
			fatalf("first submission: %v", err)
		}
		second, lat, err := submit(makeBody(1))
		if err != nil {
			fatalf("second submission: %v", err)
		}
		if second.Cache != "hit" {
			fatalf("second submission was %q, want cache hit", second.Cache)
		}
		if second.Circuit != first.Circuit {
			fatalf("cache hit returned a different circuit than the original run")
		}
		fmt.Printf("cache check ok: hit in %v, %d gates, stop_reason %s\n",
			lat.Round(time.Microsecond), second.Gates, second.StopReason)
		return
	}

	jobs := make(chan int64, *n)
	for i := 0; i < *n; i++ {
		jobs <- int64(1 + i%max(1, *seeds))
	}
	close(jobs)
	results := make([]result, 0, *n)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seed := range jobs {
				jr, lat, err := submit(makeBody(seed))
				r := result{latency: lat, err: err}
				if jr != nil {
					r.cache = jr.Cache
				}
				mu.Lock()
				results = append(results, r)
				mu.Unlock()
			}
		}()
	}
	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start)
	report(results, elapsed)
}

type jobReply struct {
	Cache      string `json:"cache"`
	Circuit    string `json:"circuit"`
	Gates      int    `json:"gates"`
	StopReason string `json:"stop_reason"`
	Error      string `json:"error"` // set on failure responses
}

func report(results []result, elapsed time.Duration) {
	var hits, misses, other []time.Duration
	errs := 0
	for _, r := range results {
		switch {
		case r.err != nil:
			errs++
			fmt.Fprintf(os.Stderr, "alsload: request failed: %v\n", r.err)
		case r.cache == "hit":
			hits = append(hits, r.latency)
		case r.cache == "miss":
			misses = append(misses, r.latency)
		default:
			other = append(other, r.latency)
		}
	}
	total := len(results)
	fmt.Printf("requests %d  errors %d  elapsed %v  throughput %.1f req/s\n",
		total, errs, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds())
	if total > 0 {
		fmt.Printf("cache hit rate %.1f%% (%d hits, %d misses, %d other)\n",
			100*float64(len(hits))/float64(total), len(hits), len(misses), len(other))
	}
	fmt.Println("| class | count | p50 | p90 | p99 | max |")
	fmt.Println("|-------|------:|----:|----:|----:|----:|")
	printRow("miss (synthesis)", misses)
	printRow("hit (cache)", hits)
	if errs > 0 {
		os.Exit(1)
	}
}

func printRow(name string, d []time.Duration) {
	if len(d) == 0 {
		fmt.Printf("| %s | 0 | – | – | – | – |\n", name)
		return
	}
	sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
	fmt.Printf("| %s | %d | %v | %v | %v | %v |\n", name, len(d),
		pct(d, 0.50), pct(d, 0.90), pct(d, 0.99), d[len(d)-1].Round(time.Microsecond))
}

func pct(sorted []time.Duration, q float64) time.Duration {
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx].Round(time.Microsecond)
}

// loadCircuit materialises the workload circuit as (text, format).
func loadCircuit(spec string) (string, string, error) {
	var ckt *dpals.Circuit
	switch {
	case strings.HasPrefix(spec, "mult:"):
		dims := strings.SplitN(strings.TrimPrefix(spec, "mult:"), "x", 2)
		if len(dims) != 2 {
			return "", "", fmt.Errorf("want mult:NxM, got %q", spec)
		}
		n, err1 := strconv.Atoi(dims[0])
		m, err2 := strconv.Atoi(dims[1])
		if err1 != nil || err2 != nil || n < 1 || m < 1 {
			return "", "", fmt.Errorf("bad multiplier dims %q", spec)
		}
		ckt = dpals.NewMultiplier(n, m, false)
	case strings.HasPrefix(spec, "adder:"):
		n, err := strconv.Atoi(strings.TrimPrefix(spec, "adder:"))
		if err != nil || n < 1 {
			return "", "", fmt.Errorf("bad adder width %q", spec)
		}
		ckt = dpals.NewAdder(n)
	default:
		data, err := os.ReadFile(spec)
		if err != nil {
			return "", "", err
		}
		format := "blif"
		if strings.HasPrefix(strings.TrimSpace(string(data)), "aag ") {
			format = "aiger"
		}
		return string(data), format, nil
	}
	var buf bytes.Buffer
	if err := ckt.WriteAIGER(&buf); err != nil {
		return "", "", err
	}
	return buf.String(), "aiger", nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "alsload: "+format+"\n", args...)
	os.Exit(1)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
