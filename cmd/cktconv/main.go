// Command cktconv converts circuits between the supported formats:
// BLIF (.blif), ASCII AIGER (.aag), binary AIGER (.aig) and structural
// Verilog (.v, write-only).
//
//	cktconv in.blif out.aag
//	cktconv in.aig out.v
package main

import (
	"fmt"
	"os"
	"strings"

	"dpals"
)

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: cktconv <in.blif|in.aag|in.aig> <out.blif|out.aag|out.aig|out.v>")
		os.Exit(2)
	}
	in, out := os.Args[1], os.Args[2]

	f, err := os.Open(in)
	check(err)
	var c *dpals.Circuit
	switch {
	case strings.HasSuffix(in, ".aag"), strings.HasSuffix(in, ".aig"):
		c, err = dpals.ReadAIGER(f)
	default:
		c, err = dpals.ReadBLIF(f)
	}
	f.Close()
	check(err)

	g, err := os.Create(out)
	check(err)
	defer g.Close()
	switch {
	case strings.HasSuffix(out, ".aag"):
		err = c.WriteAIGER(g)
	case strings.HasSuffix(out, ".aig"):
		err = c.WriteAIGERBinary(g)
	case strings.HasSuffix(out, ".v"):
		err = c.WriteVerilog(g)
	default:
		err = c.WriteBLIF(g)
	}
	check(err)
	fmt.Printf("%s → %s (%d inputs, %d outputs, %d gates)\n", in, out, c.NumInputs(), c.NumOutputs(), c.NumGates())
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "cktconv:", err)
		os.Exit(1)
	}
}
