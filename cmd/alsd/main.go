// Command alsd is the approximate-logic-synthesis daemon: it serves
// circuit+constraint jobs over HTTP/JSON on a bounded worker pool with a
// content-addressed result cache, per-tenant rate limiting, SSE progress
// streaming, /debug/obs + pprof, and graceful drain on SIGTERM.
//
// Quickstart:
//
//	alsd -addr :8337 &
//	curl -s localhost:8337/v1/jobs -d '{
//	  "circuit": "'"$(sed -e 's/$/\\n/' mult.aag | tr -d '\n')"'",
//	  "flow": "dpsa", "metric": "er", "threshold": 0.05
//	}'
//
// A second identical submission answers from the cache with a
// byte-identical circuit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dpals/internal/server"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("alsd: ")

	var (
		addr         = flag.String("addr", ":8337", "listen address")
		workers      = flag.Int("workers", 0, "synthesis workers (0 = all CPUs)")
		queueDepth   = flag.Int("queue", 64, "max queued jobs before 503")
		cacheEntries = flag.Int("cache-entries", 1024, "result cache entry cap")
		cacheBytes   = flag.Int64("cache-bytes", 256<<20, "result cache byte cap")
		rate         = flag.Float64("rate", 0, "per-tenant submissions/second (0 = unlimited)")
		burst        = flag.Int("burst", 8, "per-tenant burst allowance")
		maxTime      = flag.Duration("max-time-limit", 5*time.Minute, "hard per-job wall-clock cap")
		threads      = flag.Int("threads-per-job", 0, "engine threads per job (0 = CPUs/workers)")
		drainWait    = flag.Duration("drain-timeout", 30*time.Second, "graceful drain deadline on SIGTERM")
	)
	flag.Parse()

	srv := server.New(server.Config{
		Workers:       *workers,
		QueueDepth:    *queueDepth,
		CacheEntries:  *cacheEntries,
		CacheBytes:    *cacheBytes,
		RatePerSec:    *rate,
		Burst:         *burst,
		MaxTimeLimit:  *maxTime,
		ThreadsPerJob: *threads,
	})
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	drained := make(chan struct{})
	go func() {
		s := <-sig
		log.Printf("received %v, draining (in-flight jobs return best-so-far)", s)
		go func() {
			<-sig
			log.Print("second signal, exiting now")
			os.Exit(1)
		}()
		// Drain first so every accepted job has answered with its
		// best-so-far circuit, then close the listener and let Shutdown
		// flush the open responses. ListenAndServe returns the moment the
		// listener closes — main must wait on this channel, not exit, or
		// in-flight responses are cut off mid-write.
		srv.Drain()
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		close(drained)
	}()

	log.Printf("listening on %s", *addr)
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintf(os.Stderr, "alsd: %v\n", err)
		os.Exit(1)
	}
	<-drained
	log.Print("drained, bye")
}
