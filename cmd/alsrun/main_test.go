package main

import (
	"bufio"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"dpals"
)

// The exec tests drive the built alsrun binary end to end: flag wiring,
// artifact writing, and the SIGINT flush path, which cannot be exercised
// in-process.
var (
	binPath string
	aagPath string
)

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "alsrun-test")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	binPath = filepath.Join(dir, "alsrun")
	build := exec.Command("go", "build", "-o", binPath, ".")
	if out, err := build.CombinedOutput(); err != nil {
		panic("building alsrun: " + err.Error() + "\n" + string(out))
	}

	aagPath = filepath.Join(dir, "vecmul.aag")
	f, err := os.Create(aagPath)
	if err != nil {
		panic(err)
	}
	if err := dpals.NewVecMul(4, 10).WriteAIGER(f); err != nil {
		panic(err)
	}
	f.Close()

	os.Exit(m.Run())
}

// parseTrace decodes a trace.json and returns its events.
func parseTrace(t *testing.T, path string) []map[string]any {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("trace file: %v", err)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &trace); err != nil {
		t.Fatalf("trace does not parse: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	return trace.TraceEvents
}

// TestRunWritesObservabilityArtifacts: a traced, metered, progress-enabled
// run must exit zero and leave parseable artifacts whose phase spans cover
// the run.
func TestRunWritesObservabilityArtifacts(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.json")
	mets := filepath.Join(dir, "metrics.jsonl")
	stats := filepath.Join(dir, "stats.json")

	cmd := exec.Command(binPath,
		"-flow", "dpsa", "-metric", "mse", "-max-iters", "12", "-threads", "2",
		"-trace", trace, "-metrics", mets, "-stats", stats, "-progress",
		aagPath)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("alsrun failed: %v\n%s", err, out)
	}

	events := parseTrace(t, trace)
	names := map[string]int{}
	for _, e := range events {
		if e["ph"] == "X" {
			names[e["name"].(string)]++
		}
	}
	for _, want := range []string{"run", "phase1", "cuts", "cpm", "eval", "apply"} {
		if names[want] == 0 {
			t.Errorf("trace has no %q span (got %v)", want, names)
		}
	}

	mf, err := os.Open(mets)
	if err != nil {
		t.Fatal(err)
	}
	defer mf.Close()
	sc := bufio.NewScanner(mf)
	lines := 0
	for sc.Scan() {
		var s map[string]any
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatalf("metrics line %d: %v", lines, err)
		}
		lines++
	}
	if lines == 0 {
		t.Fatal("metrics log is empty")
	}

	data, err := os.ReadFile(stats)
	if err != nil {
		t.Fatal(err)
	}
	var s map[string]any
	if err := json.Unmarshal(data, &s); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"phase1_time_ns", "phase2_time_ns", "cut_time_ns", "stop_reason", "pool_gets"} {
		if _, ok := s[key]; !ok {
			t.Errorf("stats JSON missing %q", key)
		}
	}
	if s["phase1_time_ns"].(float64) <= 0 {
		t.Error("phase1_time_ns not positive")
	}
}

// TestSIGINTWritesTruncatedTrace: one SIGINT stops the run cooperatively —
// exit 0, best-so-far result, stop_reason cancelled — and the trace and
// metrics artifacts must still be written and parseable.
func TestSIGINTWritesTruncatedTrace(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.json")
	mets := filepath.Join(dir, "metrics.jsonl")
	stats := filepath.Join(dir, "stats.json")

	cmd := exec.Command(binPath,
		"-flow", "dp", "-metric", "mse",
		"-trace", trace, "-metrics", mets, "-stats", stats,
		aagPath)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Let the run get under way, then interrupt it mid-flight.
	time.Sleep(400 * time.Millisecond)
	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("alsrun after SIGINT: %v", err)
	}

	parseTrace(t, trace)

	data, err := os.ReadFile(stats)
	if err != nil {
		t.Fatal(err)
	}
	var s struct {
		StopReason string `json:"stop_reason"`
	}
	if err := json.Unmarshal(data, &s); err != nil {
		t.Fatal(err)
	}
	// A fast machine may finish before the signal lands; only then is
	// "budget" acceptable.
	if s.StopReason != "cancelled" && s.StopReason != "budget" {
		t.Fatalf("stop_reason %q, want cancelled", s.StopReason)
	}
}

// TestDoubleSIGINTAbortStillFlushes: the hard-abort path (second SIGINT)
// must exit 130 and still leave a parseable, truncated trace. Timing makes
// the abort race the cooperative stop, so the test tolerates either exit —
// but whenever the trace file exists it must parse.
func TestDoubleSIGINTAbortStillFlushes(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.json")

	cmd := exec.Command(binPath,
		"-flow", "dp", "-metric", "mse",
		"-trace", trace,
		aagPath)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(400 * time.Millisecond)
	cmd.Process.Signal(syscall.SIGINT)
	time.Sleep(50 * time.Millisecond)
	cmd.Process.Signal(syscall.SIGINT)
	err := cmd.Wait()

	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatal(err)
	}
	if code != 0 && code != 130 {
		t.Fatalf("exit code %d, want 0 (cooperative) or 130 (abort)", code)
	}
	if _, err := os.Stat(trace); err != nil {
		t.Fatalf("trace not flushed on abort: %v", err)
	}
	events := parseTrace(t, trace)
	// On the abort path the run span is still open; open spans must carry
	// the open marker rather than bogus durations.
	if code == 130 {
		sawOpen := false
		for _, e := range events {
			if args, ok := e["args"].(map[string]any); ok && args["open"] == true {
				sawOpen = true
			}
		}
		if !sawOpen {
			t.Error("aborted trace has no open-marked span")
		}
	}
}
