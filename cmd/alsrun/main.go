// Command alsrun runs one approximate-logic-synthesis flow on a circuit.
//
// Usage:
//
//	alsrun -flow dpsa -metric mse -threshold 1e4 -o out.blif in.blif
//	alsrun -flow dp -metric er -threshold 0.01 -sasimi in.aag
//
// Input format is chosen by extension (.aag = ASCII AIGER, anything else =
// BLIF). When -threshold is not given, the paper's median threshold for
// the metric is used (R = 2^(POs/3): MED→R, MSE→R², ER→1%).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // -pprof-http serves the standard profiling endpoints
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"syscall"
	"time"

	"dpals"
	"dpals/internal/obs"
	"dpals/internal/par"
)

func main() {
	flowName := flag.String("flow", "dpsa", "flow: conventional, vecbee, accals, dp, dpsa")
	metricName := flag.String("metric", "mse", "error metric: er, mse, med, mhd, wce")
	threshold := flag.Float64("threshold", -1, "error budget (ER: fraction; MSE/MED: absolute; <0: paper median)")
	wceBound := flag.Uint64("wce-bound", 0, "worst-case error budget for -metric wce (SAT-certified on the result)")
	certEvery := flag.Int("cert-every", 0, "WCE: accepted LACs per SAT certification call (0 = default 8)")
	certConflicts := flag.Int64("cert-conflict-limit", 0, "WCE: SAT conflict cap per certification call (0 = unlimited)")
	patterns := flag.Int("patterns", 8192, "Monte-Carlo patterns")
	seed := flag.Int64("seed", 1, "simulation seed")
	threads := flag.Int("threads", 0, "analysis worker threads (<=0 = all CPUs, 1 = serial)")
	sasimi := flag.Bool("sasimi", false, "enable SASIMI signal-substitution LACs")
	depth := flag.Int("l", 0, "VECBEE depth limit (0 = exact)")
	out := flag.String("o", "", "output file (.blif or .aag); empty: no output written")
	maxIters := flag.Int("max-iters", 0, "cap on applied LACs (0 = unlimited)")
	timeLimit := flag.Duration("time-limit", 0, "wall-clock budget; on expiry the best-so-far circuit is written (0 = unlimited)")
	noCache := flag.Bool("no-cpm-cache", false, "disable the incremental CPM cache (A/B baseline)")
	noWarm := flag.Bool("no-warm-start", false, "disable the cross-round phase-1 reuse (A/B baseline)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file (taken after the run)")
	statsOut := flag.String("stats", "", "write run statistics (step times, work counters, MTrace, reuse rate) as JSON to this file")
	traceOut := flag.String("trace", "", "record a span trace of the run and write it to this file (Chrome/Perfetto trace.json; .jsonl extension selects the flat JSONL event log)")
	metricsOut := flag.String("metrics", "", "sample engine and runtime metrics each iteration and write them as JSONL to this file")
	progress := flag.Bool("progress", false, "render a live progress line (iteration, gates, error, ETA) on stderr")
	pprofHTTP := flag.String("pprof-http", "", "serve net/http/pprof and /debug/obs (live span stack + metrics) on this address, e.g. :6060")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: alsrun [flags] <circuit.blif|circuit.aag>")
		flag.Usage()
		os.Exit(2)
	}

	c, err := load(flag.Arg(0))
	check(err)

	flows := map[string]dpals.Flow{
		"conventional": dpals.Conventional, "vecbee": dpals.VECBEE,
		"accals": dpals.AccALS, "dp": dpals.DP, "dpsa": dpals.DPSA,
	}
	flow, ok := flows[strings.ToLower(*flowName)]
	if !ok {
		check(fmt.Errorf("unknown flow %q", *flowName))
	}
	metrics := map[string]dpals.Metric{"er": dpals.ER, "mse": dpals.MSE, "med": dpals.MED, "mhd": dpals.MHD, "wce": dpals.WCE}
	m, ok := metrics[strings.ToLower(*metricName)]
	if !ok {
		check(fmt.Errorf("unknown metric %q", *metricName))
	}
	thr := *threshold
	bound := *wceBound
	if m == dpals.WCE {
		if bound == 0 {
			// Default budget: the paper's reference error R = 2^(POs/3),
			// rounded down, at least 1 — the same median MED would use.
			bound = uint64(dpals.ReferenceError(c))
			if bound == 0 {
				bound = 1
			}
		}
		thr = float64(bound)
	} else if thr < 0 {
		R := dpals.ReferenceError(c)
		switch m {
		case dpals.ER:
			thr = 0.01
		case dpals.MSE:
			thr = R * R
		default:
			thr = R
		}
	}

	fmt.Printf("input : %s (%d PIs, %d POs, %d gates, depth %d)\n",
		flag.Arg(0), c.NumInputs(), c.NumOutputs(), c.NumGates(), c.Depth())
	fmt.Printf("flow  : %v  metric %v ≤ %g  patterns %d  threads %d\n", flow, m, thr, *patterns, par.Workers(*threads))

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		check(err)
		defer f.Close()
		check(pprof.StartCPUProfile(f))
		defer pprof.StopCPUProfile()
	}

	// Observability: a recording tracer when -trace or -pprof-http asks for
	// one, a metrics registry for -metrics/-pprof-http, a live progress line
	// for -progress. All hooks are nil-safe in the engine, so leaving them
	// out keeps the default run on the exact same code path.
	ctx := context.Background()
	var tracer *obs.Tracer
	if *traceOut != "" || *pprofHTTP != "" {
		tracer = obs.New()
		ctx = obs.WithTracer(ctx, tracer)
	}
	var mets *obs.Metrics
	if *metricsOut != "" || *pprofHTTP != "" {
		mets = obs.NewMetrics()
		ctx = obs.WithMetrics(ctx, mets)
	}
	var prog *obs.Progress
	if *progress {
		prog = obs.NewProgress(os.Stderr, 100*time.Millisecond)
		ctx = obs.WithProgress(ctx, prog)
	}
	if *pprofHTTP != "" {
		http.Handle("/debug/obs", obs.Handler(tracer, mets))
		go func() {
			if err := http.ListenAndServe(*pprofHTTP, nil); err != nil {
				fmt.Fprintln(os.Stderr, "alsrun: pprof server:", err)
			}
		}()
		fmt.Printf("pprof : http://%s/debug/pprof/ (+ /debug/obs)\n", *pprofHTTP)
	}

	// flushObs writes the trace and metrics files. It runs once, on whichever
	// exit path comes first — the normal end of the run or the hard-abort
	// signal path — so even an aborted run leaves truncated-but-parseable
	// artifacts (still-open spans are exported with their current duration).
	var flushOnce sync.Once
	flushObs := func() {
		flushOnce.Do(func() {
			prog.Done()
			if tracer != nil && *traceOut != "" {
				if err := writeTo(*traceOut, func(f io.Writer) error {
					if strings.HasSuffix(*traceOut, ".jsonl") {
						return tracer.WriteJSONL(f)
					}
					return tracer.WritePerfetto(f)
				}); err != nil {
					fmt.Fprintln(os.Stderr, "alsrun: trace:", err)
				}
			}
			if mets != nil && *metricsOut != "" {
				if err := writeTo(*metricsOut, mets.WriteJSONL); err != nil {
					fmt.Fprintln(os.Stderr, "alsrun: metrics:", err)
				}
			}
		})
	}

	// SIGINT/SIGTERM cancel the run cooperatively: the synthesis stops
	// within one analysis wave and the best-so-far circuit and stats are
	// still written below. A second signal aborts immediately — but still
	// flushes the observability artifacts first.
	ctx, cancel := context.WithCancel(ctx)
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "alsrun: interrupted — stopping at the next checkpoint (press again to abort)")
		cancel()
		<-sigc
		fmt.Fprintln(os.Stderr, "alsrun: aborted")
		flushObs()
		os.Exit(130)
	}()

	opt := dpals.Options{
		Flow: flow, Metric: m, Threshold: thr,
		Patterns: *patterns, Seed: *seed, Threads: *threads,
		UseConstLACs: true, UseSASIMILACs: *sasimi,
		DepthLimit: *depth, MaxIters: *maxIters,
		TimeLimit:   *timeLimit,
		NoCPMCache:  *noCache,
		NoWarmStart: *noWarm,
	}
	if m == dpals.WCE {
		opt.WCEBound = bound
		opt.CertEvery = *certEvery
		opt.CertConflictLimit = *certConflicts
	} else if *wceBound != 0 {
		check(fmt.Errorf("-wce-bound requires -metric wce"))
	}
	res, err := dpals.ApproximateContext(ctx, c, opt)
	check(err)
	signal.Stop(sigc)
	cancel()
	flushObs()

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		check(err)
		runtime.GC() // materialize the retained heap before the snapshot
		check(pprof.WriteHeapProfile(f))
		f.Close()
	}
	if *statsOut != "" {
		check(writeStats(*statsOut, flow, m, thr, res))
	}

	fmt.Printf("result: %d gates (%.1f%% of original), error %g\n",
		res.Circuit.NumGates(), 100*float64(res.Circuit.NumGates())/float64(c.NumGates()), res.Error)
	fmt.Printf("        area ratio %.1f%%  delay ratio %.1f%%  ADP ratio %.1f%%\n",
		100*res.AreaRatio, 100*res.DelayRatio, 100*res.ADPRatio)
	fmt.Printf("        %d LACs applied (%d comprehensive + %d incremental analyses, %d rollbacks) in %v\n",
		res.Stats.Applied, res.Stats.Comprehensive, res.Stats.Incremental, res.Stats.Rollbacks, res.Stats.Runtime)
	if m == dpals.WCE {
		fmt.Printf("        certified WCE ≤ %d (budget %d): %d SAT calls, %d cex-cache hits, %d rollbacks, %v certifying\n",
			res.Stats.CertifiedWCE, bound, res.Stats.CertCalls, res.Stats.CertCexHits,
			res.Stats.CertRollbacks, res.Stats.CertTime)
	}
	if res.Stats.StopReason == dpals.StopCancelled || res.Stats.StopReason == dpals.StopDeadline {
		fmt.Printf("        stopped early (%s): result is the valid best-so-far circuit\n", res.Stats.StopReason)
	}
	fmt.Printf("        step times: cuts %v, CPM %v, evaluation %v\n",
		res.Stats.CutTime, res.Stats.CPMTime, res.Stats.EvalTime)
	if res.Stats.Phase1Time+res.Stats.Phase2Time > 0 {
		fmt.Printf("        phase times: phase 1 %v, phase 2 %v\n",
			res.Stats.Phase1Time, res.Stats.Phase2Time)
	}
	if res.Stats.CPMRowsReused+res.Stats.CPMRowsRecomputed > 0 {
		fmt.Printf("        CPM rows: %d reused, %d recomputed (%.1f%% reuse)\n",
			res.Stats.CPMRowsReused, res.Stats.CPMRowsRecomputed, 100*res.Stats.ReuseRate())
	}
	if res.Stats.WarmComprehensive > 0 {
		fmt.Printf("        warm start: %d/%d comprehensive passes warm (%.1f%% phase-1 row reuse, %d memo hits)\n",
			res.Stats.WarmComprehensive, res.Stats.Comprehensive,
			100*res.Stats.Phase1ReuseRate(), res.Stats.EvalMemoHits)
	}
	if res.Stats.Pool.Gets > 0 {
		fmt.Printf("        CPM pool: %d gets, %d reused (%.1f%% hit rate), high water %d\n",
			res.Stats.Pool.Gets, res.Stats.Pool.Reuses, 100*res.Stats.Pool.HitRate(), res.Stats.Pool.HighWater)
	}
	if tracer != nil && *traceOut != "" {
		fmt.Printf("trace : %s\n", *traceOut)
		if err := tracer.WriteSummary(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "alsrun: trace summary:", err)
		}
	}
	if mets != nil && *metricsOut != "" {
		fmt.Printf("metrics: %s\n", *metricsOut)
		if err := mets.WriteSummary(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "alsrun: metrics summary:", err)
		}
	}

	if *out != "" {
		f, err := os.Create(*out)
		check(err)
		defer f.Close()
		switch {
		case strings.HasSuffix(*out, ".aag"):
			check(res.Circuit.WriteAIGER(f))
		case strings.HasSuffix(*out, ".aig"):
			check(res.Circuit.WriteAIGERBinary(f))
		case strings.HasSuffix(*out, ".v"):
			check(res.Circuit.WriteVerilog(f))
		default:
			check(res.Circuit.WriteBLIF(f))
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

// runStats is the JSON schema written by -stats: run configuration, final
// quality, step-time and deterministic step-work profiles, CPM cache reuse,
// and the DP-SA MTrace.
type runStats struct {
	Flow      string  `json:"flow"`
	Metric    string  `json:"metric"`
	Threshold float64 `json:"threshold"`
	Error     float64 `json:"error"`
	Gates     int     `json:"gates"`
	AreaRatio float64 `json:"area_ratio"`
	ADPRatio  float64 `json:"adp_ratio"`

	Applied       int   `json:"applied"`
	Comprehensive int   `json:"comprehensive"`
	Incremental   int   `json:"incremental"`
	Rollbacks     int   `json:"rollbacks"`
	RuntimeNS     int64 `json:"runtime_ns"`
	CutTimeNS     int64 `json:"cut_time_ns"`
	CPMTimeNS     int64 `json:"cpm_time_ns"`
	EvalTimeNS    int64 `json:"eval_time_ns"`
	Phase1TimeNS  int64 `json:"phase1_time_ns"`
	Phase2TimeNS  int64 `json:"phase2_time_ns"`

	CutWork  int64 `json:"cut_work"`
	CPMWork  int64 `json:"cpm_work"`
	EvalWork int64 `json:"eval_work"`

	CPMRowsReused     int64   `json:"cpm_rows_reused"`
	CPMRowsRecomputed int64   `json:"cpm_rows_recomputed"`
	ReuseRate         float64 `json:"reuse_rate"`

	// Cross-round phase-1 reuse (dual-phase flows; zero with
	// -no-warm-start or for flows without warm starts).
	WarmComprehensive int     `json:"warm_comprehensive,omitempty"`
	Phase1WarmTimeNS  int64   `json:"phase1_warm_time_ns,omitempty"`
	Phase1ReuseRate   float64 `json:"phase1_reuse_rate,omitempty"`
	CutUpdates        int     `json:"cut_updates_incremental,omitempty"`
	EvalMemoHits      int64   `json:"eval_memo_hits,omitempty"`
	SkippedWork       int64   `json:"skipped_work,omitempty"`

	PoolGets    int64   `json:"pool_gets,omitempty"`
	PoolReuses  int64   `json:"pool_reuses,omitempty"`
	PoolHitRate float64 `json:"pool_hit_rate,omitempty"`

	MTrace []int `json:"m_trace,omitempty"`

	// WCE certification accounting (metric wce only).
	CertifiedWCE  uint64 `json:"certified_wce,omitempty"`
	CertCalls     int    `json:"cert_calls,omitempty"`
	CertCexHits   int    `json:"cert_cex_hits,omitempty"`
	CertRollbacks int    `json:"cert_rollbacks,omitempty"`
	CertTimeNS    int64  `json:"cert_time_ns,omitempty"`

	StopReason string `json:"stop_reason"`
}

func writeStats(path string, flow dpals.Flow, m dpals.Metric, thr float64, res *dpals.Result) error {
	s := runStats{
		Flow:      flow.String(),
		Metric:    m.String(),
		Threshold: thr,
		Error:     res.Error,
		Gates:     res.Circuit.NumGates(),
		AreaRatio: res.AreaRatio,
		ADPRatio:  res.ADPRatio,

		Applied:       res.Stats.Applied,
		Comprehensive: res.Stats.Comprehensive,
		Incremental:   res.Stats.Incremental,
		Rollbacks:     res.Stats.Rollbacks,
		RuntimeNS:     res.Stats.Runtime.Nanoseconds(),
		CutTimeNS:     res.Stats.CutTime.Nanoseconds(),
		CPMTimeNS:     res.Stats.CPMTime.Nanoseconds(),
		EvalTimeNS:    res.Stats.EvalTime.Nanoseconds(),
		Phase1TimeNS:  res.Stats.Phase1Time.Nanoseconds(),
		Phase2TimeNS:  res.Stats.Phase2Time.Nanoseconds(),

		CutWork:  res.Stats.CutWork,
		CPMWork:  res.Stats.CPMWork,
		EvalWork: res.Stats.EvalWork,

		CPMRowsReused:     res.Stats.CPMRowsReused,
		CPMRowsRecomputed: res.Stats.CPMRowsRecomputed,
		ReuseRate:         res.Stats.ReuseRate(),

		WarmComprehensive: res.Stats.WarmComprehensive,
		Phase1WarmTimeNS:  res.Stats.Phase1WarmTime.Nanoseconds(),
		Phase1ReuseRate:   res.Stats.Phase1ReuseRate(),
		CutUpdates:        res.Stats.CutUpdates,
		EvalMemoHits:      res.Stats.EvalMemoHits,
		SkippedWork:       res.Stats.SkippedWork,

		PoolGets:    res.Stats.Pool.Gets,
		PoolReuses:  res.Stats.Pool.Reuses,
		PoolHitRate: res.Stats.Pool.HitRate(),

		MTrace: res.Stats.MTrace,

		CertifiedWCE:  res.Stats.CertifiedWCE,
		CertCalls:     res.Stats.CertCalls,
		CertCexHits:   res.Stats.CertCexHits,
		CertRollbacks: res.Stats.CertRollbacks,
		CertTimeNS:    res.Stats.CertTime.Nanoseconds(),

		StopReason: string(res.Stats.StopReason),
	}
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// writeTo creates path, runs write against it, and closes it, reporting the
// first error. Used by the observability flush so the artifact is complete
// on disk before the process exits.
func writeTo(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func load(path string) (*dpals.Circuit, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".aag") {
		return dpals.ReadAIGER(f)
	}
	return dpals.ReadBLIF(f)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "alsrun:", err)
		os.Exit(1)
	}
}
