// Command cktinfo prints the benchmark circuit information table
// (paper Table I) for the built-in suite, or for circuits supplied as
// BLIF/AIGER files.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dpals"
	"dpals/internal/repro"
)

func main() {
	scaled := flag.Bool("scaled", true, "use scaled-down circuit sizes (false: paper sizes; slow to build)")
	flag.Parse()

	if flag.NArg() == 0 {
		repro.TableI(repro.Config{Out: os.Stdout, Scaled: *scaled})
		return
	}
	fmt.Printf("%-24s %9s %6s %10s %9s\n", "Circuit", "#I/O", "#Nd", "Area", "Delay")
	for _, path := range flag.Args() {
		c, err := load(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cktinfo: %s: %v\n", path, err)
			os.Exit(1)
		}
		fmt.Printf("%-24s %4d/%-4d %6d %10.2f %9.2f\n",
			filepath.Base(path), c.NumInputs(), c.NumOutputs(), c.NumGates(), c.Area(), c.Delay())
	}
}

func load(path string) (*dpals.Circuit, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".aag") {
		return dpals.ReadAIGER(f)
	}
	return dpals.ReadBLIF(f)
}
