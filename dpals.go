// Package dpals is an approximate logic synthesis (ALS) library built
// around the dual-phase iterative framework of "Efficient Approximate
// Logic Synthesis with Dual-Phase Iterative Framework" (DATE 2025).
//
// Given a combinational circuit and a statistical error budget (error
// rate, mean squared error, or mean error distance), dpals iteratively
// applies local approximate changes — constant replacements and SASIMI
// signal substitutions — to shrink the circuit while keeping the error
// under the budget. The dual-phase engine (flows DP and DPSA) performs one
// comprehensive error analysis per round and then cheap incremental
// analyses restricted to a candidate node set, which is what makes large
// circuits tractable; the conventional, VECBEE and AccALS flows are
// provided as baselines.
//
// Quick start:
//
//	c := dpals.NewMultiplier(8, 8, false)
//	res, err := dpals.Approximate(c, dpals.Options{
//	    Flow:      dpals.DPSA,
//	    Metric:    dpals.MSE,
//	    Threshold: 1e4,
//	})
//	// res.Circuit is the approximate circuit; res.ADPRatio its
//	// area-delay product relative to the original.
package dpals

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"dpals/internal/aig"
	"dpals/internal/aiger"
	"dpals/internal/bitvec"
	"dpals/internal/blif"
	"dpals/internal/core"
	"dpals/internal/equiv"
	"dpals/internal/gen"
	"dpals/internal/lac"
	"dpals/internal/lutmap"
	"dpals/internal/metric"
	"dpals/internal/sim"
	"dpals/internal/techmap"
	"dpals/internal/verilog"
)

// Metric selects the statistical error metric.
type Metric int

// Supported error metrics.
const (
	// ER is the error rate: the fraction of input patterns for which any
	// output bit differs from the exact circuit.
	ER Metric = iota
	// MSE is the mean squared error of the numeric output value.
	MSE
	// MED is the mean error distance (mean absolute numeric deviation).
	MED
	// MHD is the mean Hamming distance: the average number of output bits
	// that differ from the exact circuit per pattern.
	MHD
	// WCE is the worst-case error: the maximum absolute numeric deviation
	// over ALL inputs, with outputs read as unsigned LSB-first integers
	// (Weights must be nil, ≤ 62 outputs). Unlike the statistical metrics
	// above, WCE runs are SAT-certified: every returned circuit carries a
	// formally proven bound in Stats.CertifiedWCE ≤ Options.WCEBound.
	WCE
)

func (m Metric) String() string { return metric.Kind(m).String() }

// Flow selects the synthesis algorithm.
type Flow int

// Supported flows.
const (
	// Conventional: one LAC per iteration, full (comprehensive) error
	// analysis every iteration — the enhanced-VECBEE baseline.
	Conventional Flow = iota
	// VECBEE: the original one-cut VECBEE baseline; see Options.DepthLimit.
	VECBEE
	// AccALS: multiple LACs per iteration with validation and rollback.
	AccALS
	// DP: the dual-phase framework (the paper's contribution).
	DP
	// DPSA: DP plus the two self-adaption techniques.
	DPSA
)

func (f Flow) String() string { return core.Flow(f).String() }

// ParseFlow parses a flow name as accepted by the command-line tools and
// the alsd server: "conventional", "vecbee", "accals", "dp", "dpsa" (or
// "dp-sa"), case-insensitive. The empty string selects DPSA.
func ParseFlow(name string) (Flow, error) {
	switch strings.ToLower(name) {
	case "conventional":
		return Conventional, nil
	case "vecbee":
		return VECBEE, nil
	case "accals":
		return AccALS, nil
	case "dp":
		return DP, nil
	case "dpsa", "dp-sa", "":
		return DPSA, nil
	}
	return 0, fmt.Errorf("dpals: unknown flow %q", name)
}

// ParseMetric parses a metric name: "er", "mse", "med", "mhd", "wce",
// case-insensitive. The empty string selects ER.
func ParseMetric(name string) (Metric, error) {
	switch strings.ToLower(name) {
	case "er", "":
		return ER, nil
	case "mse":
		return MSE, nil
	case "med":
		return MED, nil
	case "mhd":
		return MHD, nil
	case "wce":
		return WCE, nil
	}
	return 0, fmt.Errorf("dpals: unknown metric %q", name)
}

// Circuit is an immutable combinational circuit handle.
//
// A Circuit is safe for concurrent use once built: Approximate, the
// Measure* helpers, the structural accessors and the Write* exporters all
// operate on a private snapshot of the graph, so any number of goroutines
// may share one Circuit — the steady state of a synthesis server running
// many jobs against one uploaded circuit. Only SetWeights mutates the
// handle and must not race with readers.
type Circuit struct {
	g       *aig.Graph
	weights []float64 // recommended PO weights (nil: unsigned)
}

// snap returns a private clone of the underlying graph. Graph traversals
// (Topo, Levels, mark-based walks) memoise state inside the graph they run
// on, so every read path that triggers one — mapping, depth, export,
// simulation, synthesis — works on a snapshot instead of the shared graph;
// Clone itself only reads the receiver.
func (c *Circuit) snap() *aig.Graph { return c.g.Clone() }

// Name returns the circuit's name.
func (c *Circuit) Name() string { return c.g.Name }

// NumInputs returns the number of primary inputs.
func (c *Circuit) NumInputs() int { return c.g.NumPIs() }

// NumOutputs returns the number of primary outputs.
func (c *Circuit) NumOutputs() int { return c.g.NumPOs() }

// NumGates returns the number of AND gates in the AIG (the paper's #Nd).
func (c *Circuit) NumGates() int { return c.g.NumAnds() }

// Depth returns the logic depth in AND levels.
func (c *Circuit) Depth() int { return int(c.snap().Depth()) }

// Weights returns the recommended numeric PO weights, or nil for plain
// unsigned LSB-first interpretation.
func (c *Circuit) Weights() []float64 { return c.weights }

// SetWeights overrides the numeric PO weights used by MSE/MED. A non-nil
// w must have exactly one weight per primary output; nil restores the
// plain unsigned LSB-first interpretation. The slice is copied, so the
// caller may reuse it.
func (c *Circuit) SetWeights(w []float64) error {
	if w == nil {
		c.weights = nil
		return nil
	}
	if len(w) != c.NumOutputs() {
		return fmt.Errorf("dpals: %d weights for %d outputs", len(w), c.NumOutputs())
	}
	c.weights = append([]float64(nil), w...)
	return nil
}

// Area returns the mapped cell area under the built-in generic library.
func (c *Circuit) Area() float64 { return techmap.Map(c.snap(), techmap.GenericLibrary()).Area }

// Delay returns the mapped critical-path delay under the built-in library.
func (c *Circuit) Delay() float64 { return techmap.Map(c.snap(), techmap.GenericLibrary()).Delay }

// ADP returns the area-delay product under the built-in library.
func (c *Circuit) ADP() float64 { return techmap.Map(c.snap(), techmap.GenericLibrary()).ADP() }

// LUTs returns the k-input LUT count of the circuit under the built-in
// FPGA-style mapper — an alternative area model for ALS results.
func (c *Circuit) LUTs(k int) int { return lutmap.Map(c.snap(), lutmap.Options{K: k}).LUTs }

// WriteBLIF writes the circuit in BLIF format.
func (c *Circuit) WriteBLIF(w io.Writer) error { return blif.Write(w, c.snap()) }

// WriteAIGER writes the circuit in ASCII AIGER format.
func (c *Circuit) WriteAIGER(w io.Writer) error { return aiger.Write(w, c.snap()) }

// WriteAIGERBinary writes the circuit in binary AIGER format.
func (c *Circuit) WriteAIGERBinary(w io.Writer) error { return aiger.WriteBinary(w, c.snap()) }

// WriteVerilog writes the circuit as a gate-level structural Verilog
// module.
func (c *Circuit) WriteVerilog(w io.Writer) error { return verilog.Write(w, c.snap()) }

// String summarises the circuit.
func (c *Circuit) String() string { return c.g.String() }

// Graph exposes the underlying AIG for advanced use within this module.
func (c *Circuit) Graph() *aig.Graph { return c.g }

// FromGraph wraps an existing AIG as a Circuit.
func FromGraph(g *aig.Graph) *Circuit { return &Circuit{g: g} }

// ReadBLIF parses a combinational BLIF model.
func ReadBLIF(r io.Reader) (*Circuit, error) {
	g, err := blif.Read(r)
	if err != nil {
		return nil, err
	}
	return &Circuit{g: g}, nil
}

// ReadAIGER parses an ASCII AIGER (aag) model.
func ReadAIGER(r io.Reader) (*Circuit, error) {
	g, err := aiger.Read(r)
	if err != nil {
		return nil, err
	}
	return &Circuit{g: g}, nil
}

// Generators ----------------------------------------------------------------

// NewAdder returns an n-bit ripple adder (2n inputs, n+1 outputs).
func NewAdder(n int) *Circuit { return &Circuit{g: gen.Adder(n)} }

// NewMultiplier returns an n×m multiplier; signed selects two's-complement
// semantics and sets matching output weights.
func NewMultiplier(n, m int, signed bool) *Circuit {
	if signed {
		g := gen.MultS(n, m)
		return &Circuit{g: g, weights: metric.TwosComplementWeights(g.NumPOs())}
	}
	return &Circuit{g: gen.MultU(n, m)}
}

// NewALU returns a w-bit ALU with flags.
func NewALU(w int) *Circuit { return &Circuit{g: gen.ALU(w)} }

// NewSqrt returns an n-bit integer square-root unit.
func NewSqrt(n int) *Circuit { return &Circuit{g: gen.Sqrt(n)} }

// NewSquare returns an n-bit squaring unit.
func NewSquare(n int) *Circuit { return &Circuit{g: gen.Square(n)} }

// NewSin returns a w-bit fixed-point sine unit (CORDIC).
func NewSin(w int) *Circuit { return &Circuit{g: gen.Sin(w)} }

// NewLog2 returns a log2 unit with n input bits and f fraction bits.
func NewLog2(n, f int) *Circuit { return &Circuit{g: gen.Log2(n, f)} }

// NewButterfly returns a radix-2 FFT butterfly on w-bit complex operands.
func NewButterfly(w int) *Circuit {
	g := gen.Butterfly(w)
	c := &Circuit{g: g}
	word := metric.TwosComplementWeights((g.NumPOs()) / 4)
	var ws []float64
	for i := 0; i < 4; i++ {
		ws = append(ws, word...)
	}
	c.weights = ws
	return c
}

// NewVecMul returns a d-dimensional dot-product unit on w-bit operands.
func NewVecMul(d, w int) *Circuit { return &Circuit{g: gen.VecMul(d, w)} }

// NewKoggeStoneAdder returns an n-bit parallel-prefix adder (same function
// as NewAdder, logarithmic depth).
func NewKoggeStoneAdder(n int) *Circuit { return &Circuit{g: gen.KoggeStoneAdder(n)} }

// NewWallaceMultiplier returns an n×m unsigned multiplier with Wallace-tree
// reduction (same function as NewMultiplier(n, m, false)).
func NewWallaceMultiplier(n, m int) *Circuit { return &Circuit{g: gen.WallaceMultiplier(n, m)} }

// NewDivider returns an n-by-n unsigned restoring divider (quotient and
// remainder outputs).
func NewDivider(n int) *Circuit { return &Circuit{g: gen.Divider(n)} }

// NewMinMax returns an n-bit two-input sorter (min and max outputs).
func NewMinMax(n int) *Circuit { return &Circuit{g: gen.MinMax(n)} }

// NewFIR returns a FIR filter over `taps` w-bit samples with constant
// coefficients 1..taps.
func NewFIR(taps, w int) *Circuit { return &Circuit{g: gen.FIR(taps, w)} }

// Benchmark is one circuit of the paper's Table I (or its stand-in).
type Benchmark struct {
	Name     string // paper row name
	Function string
	Circuit  *Circuit
	Small    bool
}

// BenchmarkSuite returns the paper's benchmark set. scaled=true reduces
// bit-widths so the full experiment suite runs in minutes (see
// EXPERIMENTS.md for the mapping).
func BenchmarkSuite(scaled bool) []Benchmark {
	var out []Benchmark
	for _, b := range gen.Suite(scaled) {
		out = append(out, Benchmark{
			Name:     b.PaperName,
			Function: b.Function,
			Circuit:  &Circuit{g: b.Graph, weights: b.Weights},
			Small:    b.Small,
		})
	}
	return out
}

// Seed handling. Options.Seed = 0 is the zero value and therefore cannot
// mean "seed the RNG with 0": it is a documented alias for DefaultSeed,
// normalised exactly once at the API boundary (see Options.Resolved). Two
// runs whose resolved options agree — in particular, Seed: 0 and
// Seed: DefaultSeed — draw identical patterns and return bit-identical
// results; any two distinct resolved seeds are independent runs.
const (
	// UseDefaultSeed is the zero value of Options.Seed: an alias for
	// DefaultSeed, not a seed of its own.
	UseDefaultSeed int64 = 0
	// DefaultSeed is the simulation seed an unset (zero) Options.Seed
	// resolves to.
	DefaultSeed int64 = 1
)

// Options configures Approximate. Zero values select sensible defaults
// (8192 patterns, seed DefaultSeed, constant LACs, all CPUs).
type Options struct {
	Flow      Flow
	Metric    Metric
	Threshold float64   // error budget: ER fraction, or absolute MSE/MED
	Weights   []float64 // numeric PO weights; nil uses the circuit's recommendation

	Patterns int // Monte-Carlo patterns (default 8192)
	// Seed is the simulation RNG seed. The zero value (UseDefaultSeed) is
	// an alias for DefaultSeed — see the constants above. Every non-zero
	// seed is its own independent run.
	Seed int64
	// Threads is the worker count for the whole analysis pipeline
	// (simulation, cuts, CPM, LAC evaluation): ≤0 uses all CPUs, 1 runs
	// serially. Results are bit-identical for every value.
	Threads int

	// Exhaustive enumerates all 2^inputs patterns instead of sampling,
	// making every error figure exact. Limited to ≤ 24 inputs.
	Exhaustive bool

	// InputProbabilities biases the input distribution: entry i is the
	// probability that input i is 1 (missing entries default to 0.5).
	// Error metrics are then measured under that workload distribution.
	InputProbabilities []float64

	UseConstLACs   bool // constant-0/1 replacements (default true if neither set)
	UseSASIMILACs  bool // SASIMI signal substitution
	MaxLACsPerNode int  // SASIMI candidates per node (default 8)

	// WCEBound is the worst-case error budget for Metric == WCE: the run
	// only emits circuits whose maximum absolute numeric deviation is
	// SAT-certified ≤ WCEBound on every input. Ignored (and rejected when
	// non-zero) for other metrics, which use Threshold instead.
	WCEBound uint64
	// CertEvery amortises SAT certification on the WCE path: a
	// certification call covers up to CertEvery accepted LACs (plus one
	// final call before emit). ≤ 0 selects the default of 8.
	CertEvery int
	// CertConflictLimit caps each SAT certification call at that many
	// solver conflicts (0 = unlimited). A call that exhausts its budget
	// counts as a failed certification and triggers rollback, keeping the
	// emitted bound sound; the run then stops deterministically.
	CertConflictLimit int64

	DepthLimit int // VECBEE depth limit l (0 = ∞)
	M, N       int // dual-phase parameters (0 = paper defaults)
	MaxIters   int // cap on applied LACs (0 = unlimited)

	// TimeLimit bounds the wall-clock time of the run (0 = unlimited).
	// When it expires the run stops cooperatively — within one analysis
	// wave — and returns the valid best-so-far circuit with
	// Stats.StopReason = StopDeadline. Composes with ApproximateContext:
	// whichever of the context and the limit fires first stops the run.
	TimeLimit time.Duration

	// NoCPMCache disables the persistent incremental CPM cache of the
	// dual-phase flows, rebuilding the phase-2 CPM from scratch every
	// iteration. Results are bit-identical either way; for A/B
	// benchmarking only.
	NoCPMCache bool

	// NoWarmStart disables the cross-round phase-1 reuse of the dual-phase
	// flows: every comprehensive analysis rebuilds the cut set, the CPM and
	// the LAC evaluations from scratch instead of carrying the
	// incrementally maintained state across round boundaries. Results are
	// bit-identical either way; for A/B benchmarking only.
	NoWarmStart bool
}

// Resolved returns o with every defaulted knob replaced by the value the
// run will actually use: Patterns 8192 when unset, Seed DefaultSeed when
// UseDefaultSeed, Threads all CPUs when ≤ 0, constant LACs when no LAC
// kind is enabled, negative structural knobs (DepthLimit, M, N,
// MaxIters, MaxLACsPerNode) clamped to their 0 "default" sentinel, and
// the WCE certification knobs normalised (CertEvery defaults to 8 on the
// WCE path; all three are inert — zeroed — for other metrics).
// Approximate(c, o) ≡ Approximate(c, o.Resolved()) bit-identically — the
// boundary normalises through this method — so resolved options are the
// right identity for memoising results: two calls with equal resolved
// options (and equal circuits and weights) return identical results,
// Threads aside, which never changes results. The alsd server keys its
// result cache on exactly this.
func (o Options) Resolved() Options {
	if o.Patterns <= 0 {
		o.Patterns = 8192
	}
	if o.Seed == UseDefaultSeed {
		o.Seed = DefaultSeed
	}
	if o.Threads <= 0 {
		o.Threads = runtime.GOMAXPROCS(0)
	}
	if !o.UseConstLACs && !o.UseSASIMILACs {
		o.UseConstLACs = true
	}
	if o.MaxLACsPerNode < 0 {
		o.MaxLACsPerNode = 0
	}
	if o.DepthLimit < 0 {
		o.DepthLimit = 0
	}
	if o.M < 0 {
		o.M = 0
	}
	if o.N < 0 {
		o.N = 0
	}
	if o.MaxIters < 0 {
		o.MaxIters = 0
	}
	if o.Metric == WCE {
		if o.CertEvery <= 0 {
			o.CertEvery = 8
		}
		if o.CertConflictLimit < 0 {
			o.CertConflictLimit = 0
		}
	} else {
		// The certification knobs only exist on the WCE path; zeroing them
		// here keeps resolved options a sound cache identity for the other
		// metrics (WCEBound ≠ 0 is rejected at the boundary anyway).
		o.CertEvery = 0
		o.CertConflictLimit = 0
	}
	return o
}

// StopReason tells why a synthesis run ended. Runs stopped by a context
// or deadline still return a valid best-so-far result; StopReason is how
// callers tell such a result from a completed one.
type StopReason = core.StopReason

// Stop reasons.
const (
	// StopBudget: natural completion — no remaining change fits the error
	// budget.
	StopBudget = core.StopBudget
	// StopMaxIters: the Options.MaxIters cap was reached.
	StopMaxIters = core.StopMaxIters
	// StopCancelled: the ApproximateContext context was cancelled.
	StopCancelled = core.StopCancelled
	// StopDeadline: Options.TimeLimit or the context deadline expired.
	StopDeadline = core.StopDeadline
)

// Stats reports what a run did.
type Stats struct {
	Applied       int // LACs applied
	Comprehensive int // comprehensive (phase-1) analyses
	Incremental   int // incremental (phase-2) iterations
	Rollbacks     int
	Runtime       time.Duration
	CutTime       time.Duration // step 1: disjoint cuts
	CPMTime       time.Duration // step 2: change propagation matrix
	EvalTime      time.Duration // step 3: LAC error evaluation

	// Phase1Time/Phase2Time are the cumulated wall-clock times of the two
	// phases, derived from the engine's span tree (the same durations a
	// -trace export shows): Phase1Time covers every comprehensive analysis,
	// Phase2Time the incremental phase-2 loops of the dual-phase flows,
	// applies included. Phase1WarmTime is the slice of Phase1Time spent in
	// warm-started comprehensive passes (see WarmComprehensive).
	Phase1Time     time.Duration
	Phase2Time     time.Duration
	Phase1WarmTime time.Duration

	// Deterministic per-step work estimates in bit-vector word operations
	// — the profile DP-SA's self-adaption tunes from. Unlike the *Time
	// fields they are identical between runs for every Threads value.
	CutWork  int64
	CPMWork  int64
	EvalWork int64

	// CPM cache accounting (dual-phase flows): rows served from the
	// persistent incremental cache versus recomputed, across all analyses
	// of the run. Zero when the cache is disabled or unused by the flow.
	CPMRowsReused     int64
	CPMRowsRecomputed int64

	// Cross-round warm-start accounting (dual-phase flows, zero with
	// Options.NoWarmStart): WarmComprehensive counts the comprehensive
	// passes that reused the incrementally maintained analysis state
	// instead of rebuilding cold; Phase1RowsReused / Phase1RowsRecomputed
	// split the CPM rows of those phase-1 analyses; SkippedWork is the
	// total charged-but-not-performed work (word operations) across cuts,
	// CPM and evaluation — it is included in CutWork/CPMWork/EvalWork so
	// those stay identical to a cold run; EvalMemoHits counts target
	// evaluations served from the cross-round memo.
	WarmComprehensive    int
	Phase1RowsReused     int64
	Phase1RowsRecomputed int64
	SkippedWork          int64
	EvalMemoHits         int64

	// CutUpdates counts the incremental cut-set repairs performed after
	// applied LACs (dual-phase flows): each applied LAC in those flows
	// patches the affected cut cones in place instead of rebuilding the
	// set, and this is how often that happened. Deterministic.
	CutUpdates int

	// Pool is the final snapshot of the CPM cache's bit-vector free list
	// (dual-phase flows with the cache enabled; zero otherwise):
	// allocation-avoidance accounting, deterministic across thread counts.
	Pool bitvec.PoolStats

	// MTrace is the DP-SA self-adaption trajectory: the candidate-set size
	// M after each dual-phase round. Nil for other flows.
	MTrace []int

	// WCE certification accounting (Metric == WCE only; zero otherwise).
	// CertifiedWCE is the SAT-proven worst-case error bound of the returned
	// circuit: the solver certified that NO input deviates by more than
	// this, so it holds on all 2^PIs inputs, not just the training
	// patterns, and never exceeds Options.WCEBound. CertCalls counts SAT
	// certification calls, CertCexHits the candidate batches refuted by a
	// cached counterexample without touching the solver, CertRollbacks the
	// certification failures that rolled the circuit back to its last
	// certified state, and CertTime the wall clock spent certifying.
	CertifiedWCE  uint64
	CertCalls     int
	CertCexHits   int
	CertRollbacks int
	CertTime      time.Duration

	// StopReason tells why the run ended (StopBudget, StopMaxIters,
	// StopCancelled, StopDeadline). Always set.
	StopReason StopReason
}

// ReuseRate returns the fraction of needed CPM rows that were served from
// the incremental cache (0 when the cache saw no rows).
func (s Stats) ReuseRate() float64 {
	total := s.CPMRowsReused + s.CPMRowsRecomputed
	if total == 0 {
		return 0
	}
	return float64(s.CPMRowsReused) / float64(total)
}

// Phase1ReuseRate returns the fraction of phase-1 CPM rows served from the
// cross-round warm start (0 when no comprehensive pass used the cache).
func (s Stats) Phase1ReuseRate() float64 {
	total := s.Phase1RowsReused + s.Phase1RowsRecomputed
	if total == 0 {
		return 0
	}
	return float64(s.Phase1RowsReused) / float64(total)
}

// Result of Approximate.
type Result struct {
	Circuit *Circuit // the approximate circuit
	Error   float64  // achieved error on the training patterns

	AreaRatio  float64 // mapped area, approx / original
	DelayRatio float64
	ADPRatio   float64 // the paper's quality measure

	Stats Stats
}

// Approximate synthesises an approximate version of c under the given
// error budget. c is not modified, and concurrent Approximate calls may
// share one Circuit: the graph is snapshotted at the boundary, so the
// lazily cached traversal state of the shared graph is never touched —
// the steady state of a synthesis server running many jobs against one
// uploaded circuit.
func Approximate(c *Circuit, opt Options) (*Result, error) {
	return ApproximateContext(context.Background(), c, opt)
}

// ApproximateContext is Approximate with cooperative cancellation: when
// ctx is cancelled (or opt.TimeLimit expires) the run stops at the next
// checkpoint — within one analysis wave — and returns the valid
// best-so-far circuit instead of an error. Result.Error is the genuine
// sampled error of the returned circuit and never exceeds the budget;
// Stats.StopReason distinguishes a completed run (StopBudget,
// StopMaxIters) from a stopped one (StopCancelled, StopDeadline). An
// uncancelled run is bit-identical to Approximate for every thread
// count. Errors are returned only for invalid configurations, never for
// cancellation.
func ApproximateContext(ctx context.Context, c *Circuit, opt Options) (*Result, error) {
	if c == nil || c.g == nil {
		return nil, errors.New("dpals: nil circuit")
	}
	if opt.Weights != nil && len(opt.Weights) != c.NumOutputs() {
		return nil, fmt.Errorf("dpals: %d weights for %d outputs", len(opt.Weights), c.NumOutputs())
	}
	// Normalise every defaulted knob exactly once, at the boundary: below
	// here opt.Seed, opt.Patterns etc. are the values the run uses, with
	// no second defaulting site that could disagree (the old code mapped
	// Seed != 0 only, silently aliasing an explicit Seed: 0 to 1 without
	// anything a caller — or a result cache — could observe).
	opt = opt.Resolved()
	// Snapshot the shared graph before any analysis touches it: Clone
	// reads but never writes the receiver, whereas Sweep and techmap.Map
	// warm the graph's lazily cached traversal state (topo order, levels,
	// mark scratch) — a data race when concurrent calls share one Circuit.
	// Everything below runs against the private clone, which maps and
	// sweeps bit-identically to the original.
	g := c.g.Clone()
	iopt := core.DefaultOptions(core.Flow(opt.Flow), metric.Kind(opt.Metric), opt.Threshold)
	iopt.Patterns = opt.Patterns
	iopt.Seed = opt.Seed
	iopt.Threads = opt.Threads
	iopt.Exhaustive = opt.Exhaustive
	iopt.InputProbabilities = opt.InputProbabilities
	iopt.DepthLimit = opt.DepthLimit
	iopt.M, iopt.N = opt.M, opt.N
	iopt.MaxIters = opt.MaxIters
	iopt.WCEBound = opt.WCEBound
	iopt.CertEvery = opt.CertEvery
	iopt.CertConflictLimit = opt.CertConflictLimit
	iopt.TimeLimit = opt.TimeLimit
	iopt.NoCPMCache = opt.NoCPMCache
	iopt.NoWarmStart = opt.NoWarmStart
	iopt.LACs = lac.Options{
		Constants:  opt.UseConstLACs,
		SASIMI:     opt.UseSASIMILACs,
		MaxPerNode: opt.MaxLACsPerNode,
	}
	weights := opt.Weights
	if weights == nil {
		weights = c.weights
	}
	if opt.Metric == WCE {
		// WCE is defined over the unsigned LSB-first interpretation only:
		// the SAT certifier proves bounds on that reading, so a weighted
		// reading would certify the wrong quantity. Reject explicit weights
		// and ignore the circuit's recommendation rather than silently
		// certifying something other than what was measured.
		if opt.Weights != nil {
			return nil, errors.New("dpals: Metric WCE uses the unsigned LSB-first output interpretation; Weights must be nil")
		}
		weights = nil
	}
	iopt.Weights = weights

	res, err := core.RunContext(ctx, g, iopt)
	if err != nil {
		return nil, err
	}
	lib := techmap.GenericLibrary()
	mo := techmap.Map(g, lib)
	ma := techmap.Map(res.Graph, lib)
	out := &Result{
		Circuit:  &Circuit{g: res.Graph, weights: weights},
		Error:    res.Error,
		ADPRatio: techmap.ADPRatio(ma, mo),
		Stats: Stats{
			Applied:              res.Stats.Applied,
			Comprehensive:        res.Stats.Phase1,
			Incremental:          res.Stats.Phase2,
			Rollbacks:            res.Stats.Rollbacks,
			Runtime:              res.Stats.Runtime,
			CutTime:              res.Stats.Step.Cuts,
			CPMTime:              res.Stats.Step.CPM,
			EvalTime:             res.Stats.Step.Eval,
			Phase1Time:           res.Stats.PhaseTime.Phase1,
			Phase2Time:           res.Stats.PhaseTime.Phase2,
			Phase1WarmTime:       res.Stats.PhaseTime.Phase1Warm,
			Pool:                 res.Stats.Pool,
			CutWork:              res.Stats.Work.Cuts,
			CPMWork:              res.Stats.Work.CPM,
			EvalWork:             res.Stats.Work.Eval,
			CPMRowsReused:        res.Stats.Work.CPMRowsReused,
			CPMRowsRecomputed:    res.Stats.Work.CPMRowsRecomputed,
			WarmComprehensive:    res.Stats.Phase1Warm,
			Phase1RowsReused:     res.Stats.Work.CPMRowsReusedPhase1,
			Phase1RowsRecomputed: res.Stats.Work.CPMRowsRecomputedPhase1,
			SkippedWork:          res.Stats.Work.CutsSkipped + res.Stats.Work.CPMSkipped + res.Stats.Work.EvalSkipped,
			EvalMemoHits:         res.Stats.Work.EvalMemoHits,
			CutUpdates:           res.Stats.CutUpdates,
			MTrace:               res.Stats.MTrace,
			CertifiedWCE:         res.Stats.CertifiedWCE,
			CertCalls:            res.Stats.CertCalls,
			CertCexHits:          res.Stats.CertCexHits,
			CertRollbacks:        res.Stats.CertRollbacks,
			CertTime:             res.Stats.CertTime,
			StopReason:           res.Stats.StopReason,
		},
	}
	if mo.Area > 0 {
		out.AreaRatio = ma.Area / mo.Area
	}
	if mo.Delay > 0 {
		out.DelayRatio = ma.Delay / mo.Delay
	}
	return out, nil
}

// MeasureErrorBiased is MeasureError under a biased input distribution
// (entry i = probability input i is 1); pass the same probabilities that
// were used for synthesis.
func MeasureErrorBiased(orig, approx *Circuit, m Metric, weights []float64, patterns int, seed int64, probs []float64) (float64, error) {
	if orig.NumInputs() != approx.NumInputs() || orig.NumOutputs() != approx.NumOutputs() {
		return 0, fmt.Errorf("dpals: interface mismatch")
	}
	if patterns <= 0 {
		patterns = 8192
	}
	dist := sim.Biased{P: probs}
	so := sim.New(orig.snap(), sim.Options{Patterns: patterns, Seed: seed, Dist: dist})
	sa := sim.New(approx.snap(), sim.Options{Patterns: patterns, Seed: seed, Dist: dist})
	eo := make([]bitvec.Vec, orig.NumOutputs())
	ea := make([]bitvec.Vec, orig.NumOutputs())
	for o := range eo {
		eo[o] = bitvec.NewWords(so.Words())
		so.POVal(o, eo[o])
		ea[o] = bitvec.NewWords(sa.Words())
		sa.POVal(o, ea[o])
	}
	weights = pickWeights(weights, orig, m)
	return metric.Compute(metric.Kind(m), weights, eo, ea, so.Patterns()), nil
}

func pickWeights(weights []float64, orig *Circuit, m Metric) []float64 {
	if weights == nil {
		weights = orig.weights
	}
	if weights == nil && metric.Kind(m).Numeric() {
		weights = metric.UnsignedWeights(orig.NumOutputs())
	}
	return weights
}

// MeasureError computes the error of approx against orig from scratch by
// simulating both circuits on the same patterns — an independent check of
// a synthesis result. The circuits must have identical PI/PO interfaces.
func MeasureError(orig, approx *Circuit, m Metric, weights []float64, patterns int, seed int64) (float64, error) {
	if orig.NumInputs() != approx.NumInputs() || orig.NumOutputs() != approx.NumOutputs() {
		return 0, fmt.Errorf("dpals: interface mismatch (%d/%d inputs, %d/%d outputs)",
			orig.NumInputs(), approx.NumInputs(), orig.NumOutputs(), approx.NumOutputs())
	}
	if patterns <= 0 {
		patterns = 8192
	}
	so := sim.New(orig.snap(), sim.Options{Patterns: patterns, Seed: seed})
	sa := sim.New(approx.snap(), sim.Options{Patterns: patterns, Seed: seed})
	eo := make([]bitvec.Vec, orig.NumOutputs())
	ea := make([]bitvec.Vec, orig.NumOutputs())
	for o := range eo {
		eo[o] = bitvec.NewWords(so.Words())
		so.POVal(o, eo[o])
		ea[o] = bitvec.NewWords(sa.Words())
		sa.POVal(o, ea[o])
	}
	if weights == nil {
		weights = orig.weights
	}
	if weights == nil && metric.Kind(m).Numeric() {
		weights = metric.UnsignedWeights(orig.NumOutputs())
	}
	return metric.Compute(metric.Kind(m), weights, eo, ea, so.Patterns()), nil
}

// ReferenceError returns the paper's reference error R = 2^(K/3) for a
// circuit with K outputs. The paper's MED thresholds are {R/2, R, 2R} and
// MSE thresholds {R²/2, R², 2R²}.
func ReferenceError(c *Circuit) float64 { return metric.ReferenceError(c.NumOutputs()) }

// ProveEquivalent formally checks (by SAT) that a and b compute the same
// function on every input. On inequivalence the returned counterexample
// holds one bit per input.
func ProveEquivalent(a, b *Circuit) (bool, []bool, error) {
	return equiv.Equivalent(a.g, b.g)
}

// CertifyWorstCaseError formally checks (by SAT) that the numeric output
// deviation of approx from orig is at most t for EVERY input, with outputs
// read as unsigned LSB-first integers. Monte-Carlo metrics bound the
// average case; this bounds the worst case. On failure the returned
// counterexample is a violating input assignment.
func CertifyWorstCaseError(orig, approx *Circuit, t uint64) (bool, []bool, error) {
	return equiv.WCEAtMost(orig.g, approx.g, t)
}

// WorstCaseError computes the exact worst-case numeric deviation of approx
// from orig by binary search over SAT certifications (≤ 62 outputs).
func WorstCaseError(orig, approx *Circuit) (uint64, error) {
	return equiv.WorstCaseError(orig.g, approx.g)
}

// MeasureErrorExact computes the exact error of approx against orig by
// enumerating every input combination (≤ 24 inputs).
func MeasureErrorExact(orig, approx *Circuit, m Metric, weights []float64) (float64, error) {
	if orig.NumInputs() > 24 {
		return 0, fmt.Errorf("dpals: exhaustive measurement infeasible for %d inputs (max 24)", orig.NumInputs())
	}
	if orig.NumInputs() != approx.NumInputs() || orig.NumOutputs() != approx.NumOutputs() {
		return 0, fmt.Errorf("dpals: interface mismatch")
	}
	patterns := 1 << orig.NumInputs()
	so := sim.New(orig.snap(), sim.Options{Patterns: patterns, Dist: sim.Exhaustive{}})
	sa := sim.New(approx.snap(), sim.Options{Patterns: patterns, Dist: sim.Exhaustive{}})
	eo := make([]bitvec.Vec, orig.NumOutputs())
	ea := make([]bitvec.Vec, orig.NumOutputs())
	for o := range eo {
		eo[o] = bitvec.NewWords(so.Words())
		so.POVal(o, eo[o])
		ea[o] = bitvec.NewWords(sa.Words())
		sa.POVal(o, ea[o])
	}
	if weights == nil {
		weights = orig.weights
	}
	if weights == nil && metric.Kind(m).Numeric() {
		weights = metric.UnsignedWeights(orig.NumOutputs())
	}
	return metric.Compute(metric.Kind(m), weights, eo, ea, patterns), nil
}
