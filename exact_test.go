package dpals

import (
	"math"
	"testing"
)

// Exhaustive mode: the reported error is exact — validate against the
// exhaustive measurement.
func TestExhaustiveModeExactness(t *testing.T) {
	c := NewMultiplier(5, 5, false)
	R := ReferenceError(c)
	res, err := Approximate(c, Options{
		Flow: DPSA, Metric: MED, Threshold: R,
		Exhaustive:    true,
		UseConstLACs:  true,
		UseSASIMILACs: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := MeasureErrorExact(c, res.Circuit, MED, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exact-res.Error) > 1e-9*(1+exact) {
		t.Fatalf("reported %v but exact %v", res.Error, exact)
	}
	if exact > R {
		t.Fatalf("exact error %v exceeds budget %v", exact, R)
	}
	if res.Stats.Applied == 0 {
		t.Error("nothing applied in exhaustive mode")
	}
}

func TestExhaustiveRejectsWideCircuits(t *testing.T) {
	c := NewAdder(16) // 32 inputs
	if _, err := Approximate(c, Options{Flow: DP, Metric: ER, Threshold: 0.01, Exhaustive: true}); err == nil {
		t.Error("exhaustive mode accepted 32 inputs")
	}
	if _, err := MeasureErrorExact(c, c, ER, nil); err == nil {
		t.Error("exact measurement accepted 32 inputs")
	}
}

func TestMHDFlowPublic(t *testing.T) {
	c := NewMultiplier(6, 6, false)
	res, err := Approximate(c, Options{
		Flow: DPSA, Metric: MHD, Threshold: 0.5, Patterns: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Error > 0.5 {
		t.Fatalf("MHD %v exceeds budget", res.Error)
	}
	real, err := MeasureError(c, res.Circuit, MHD, nil, 1024, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(real-res.Error) > 1e-9 {
		t.Fatalf("MHD reported %v, measured %v", res.Error, real)
	}
	if res.Stats.Applied == 0 {
		t.Error("MHD flow applied nothing")
	}
}
