package bitvec

import (
	"sync"
	"testing"
)

func TestArenaAllocRowHandles(t *testing.T) {
	a := NewArena(3)
	if a.Words() != 3 {
		t.Fatalf("Words = %d, want 3", a.Words())
	}
	type rowRec struct {
		h Handle
		v Vec
	}
	var rows []rowRec
	// Cross several slab boundaries (defaultSlabRows per slab).
	n := defaultSlabRows*2 + 10
	for i := 0; i < n; i++ {
		h, v := a.AllocRow()
		if len(v) != 3 {
			t.Fatalf("row %d has %d words, want 3", i, len(v))
		}
		v[0], v[1], v[2] = uint64(i), uint64(i)*3, uint64(i)*7
		rows = append(rows, rowRec{h, v})
	}
	// Handles resolve to the same memory, and no row clobbered another.
	for i, r := range rows {
		got := a.Row(r.h)
		if &got[0] != &r.v[0] {
			t.Fatalf("Row(handle %d) resolved to different memory", i)
		}
		if got[0] != uint64(i) || got[1] != uint64(i)*3 || got[2] != uint64(i)*7 {
			t.Fatalf("row %d content clobbered: %v", i, got)
		}
	}
	st := a.Stats()
	if st.Rows != int64(n) {
		t.Errorf("Stats.Rows = %d, want %d", st.Rows, n)
	}
	if st.SlabAllocs != 3 {
		t.Errorf("Stats.SlabAllocs = %d, want 3 for %d rows", st.SlabAllocs, n)
	}
}

func TestArenaResetRecyclesSlabs(t *testing.T) {
	a := NewArena(2)
	for i := 0; i < defaultSlabRows+5; i++ {
		a.Alloc()
	}
	if a.Live() == 0 {
		t.Fatal("Live must be non-zero with outstanding rows")
	}
	before := a.Stats()

	a.Reset()
	if got := a.Live(); got != 0 {
		t.Fatalf("Live after Reset = %d, want 0 (leak)", got)
	}
	// Re-allocating the same number of rows must reuse the retained slabs:
	// no new slab allocations.
	for i := 0; i < defaultSlabRows+5; i++ {
		a.Alloc()
	}
	after := a.Stats()
	if after.SlabAllocs != before.SlabAllocs {
		t.Errorf("Reset did not recycle slabs: SlabAllocs %d -> %d",
			before.SlabAllocs, after.SlabAllocs)
	}
	if after.Resets != before.Resets+1 {
		t.Errorf("Stats.Resets = %d, want %d", after.Resets, before.Resets+1)
	}
}

func TestArenaRowsDoNotOverlap(t *testing.T) {
	a := NewArena(4)
	v1 := a.Alloc()
	v2 := a.Alloc()
	for i := range v1 {
		v1[i] = ^uint64(0)
	}
	for i := range v2 {
		v2[i] = 0
	}
	for i := range v1 {
		if v1[i] != ^uint64(0) {
			t.Fatal("writing one arena row corrupted its neighbour")
		}
	}
	// Full-slice-expression cap: appending to a row must not spill into
	// the next row's slab words.
	_ = append(v1, 123)
	if v2[0] != 0 {
		t.Fatal("append on an arena row spilled into the next row")
	}
}

func TestNewArenaPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewArena(0) must panic")
		}
	}()
	NewArena(0)
}

func TestNewArenaPoolPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewArenaPool with mismatched word length must panic")
		}
	}()
	NewArenaPool(5, NewArena(4))
}

// TestPoolStatsInvariant checks Gets = Reuses + Misses for a plain pool and
// an arena-backed one, and that the arena serves exactly the miss rows.
func TestPoolStatsInvariant(t *testing.T) {
	for _, tc := range []struct {
		name string
		pool *Pool
	}{
		{"plain", NewPool(4)},
		{"arena", NewArenaPool(4, NewArena(4))},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := tc.pool
			var held []Vec
			for i := 0; i < 10; i++ {
				held = append(held, p.Get())
			}
			for _, v := range held {
				p.Put(v)
			}
			for i := 0; i < 25; i++ {
				p.Put(p.Get())
			}
			st := p.Stats()
			if st.Gets != st.Reuses+st.Misses {
				t.Errorf("Gets(%d) != Reuses(%d)+Misses(%d)", st.Gets, st.Reuses, st.Misses)
			}
			if st.Gets != 35 || st.Misses != 10 {
				t.Errorf("Gets=%d Misses=%d, want 35/10", st.Gets, st.Misses)
			}
			if a := p.Arena(); a != nil {
				ast := a.Stats()
				if ast.Rows != st.Misses {
					t.Errorf("arena Rows = %d, want Misses = %d", ast.Rows, st.Misses)
				}
			}
		})
	}
}

// TestPoolArenaConcurrent hammers an arena-backed pool from many
// goroutines; run under -race this checks the locking of both layers.
// Afterwards the stats invariant must still hold and the arena must have
// carved exactly one row per miss.
func TestPoolArenaConcurrent(t *testing.T) {
	arena := NewArena(8)
	p := NewArenaPool(8, arena)
	const workers = 8
	const iters = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			var local []Vec
			for i := 0; i < iters; i++ {
				v := p.Get()
				v[0] = seed // touch the row so -race sees row writes too
				if i%3 == 0 {
					local = append(local, v)
				} else {
					p.Put(v)
				}
				if len(local) > 4 {
					p.Put(local[0])
					local = local[1:]
				}
			}
			for _, v := range local {
				p.Put(v)
			}
		}(uint64(w))
	}
	wg.Wait()

	st := p.Stats()
	if st.Gets != st.Reuses+st.Misses {
		t.Errorf("Gets(%d) != Reuses(%d)+Misses(%d)", st.Gets, st.Reuses, st.Misses)
	}
	if st.Gets != workers*iters {
		t.Errorf("Gets = %d, want %d", st.Gets, workers*iters)
	}
	if st.Puts != st.Gets {
		t.Errorf("Puts = %d, want %d (all rows returned)", st.Puts, st.Gets)
	}
	ast := arena.Stats()
	if ast.Rows != st.Misses {
		t.Errorf("arena Rows = %d, want pool Misses = %d", ast.Rows, st.Misses)
	}
	// Every word the arena ever carved is accounted for by a miss.
	if live, want := arena.Live(), int(st.Misses)*8; live != want {
		t.Errorf("arena Live = %d words, want %d", live, want)
	}
}

// TestArenaConcurrentAlloc allocates from one arena on many goroutines and
// verifies every row is disjoint (distinct backing memory, no torn carves).
func TestArenaConcurrentAlloc(t *testing.T) {
	a := NewArena(2)
	const workers = 8
	const perWorker = 300 // crosses slab boundaries concurrently
	rows := make([][]Vec, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				v := a.Alloc()
				v[0] = uint64(w)<<32 | uint64(i)
				v[1] = ^v[0]
				rows[w] = append(rows[w], v)
			}
		}(w)
	}
	wg.Wait()
	for w := range rows {
		for i, v := range rows[w] {
			want := uint64(w)<<32 | uint64(i)
			if v[0] != want || v[1] != ^want {
				t.Fatalf("row (%d,%d) clobbered: got %#x", w, i, v[0])
			}
		}
	}
	if st := a.Stats(); st.Rows != workers*perWorker {
		t.Errorf("Rows = %d, want %d", st.Rows, workers*perWorker)
	}
}
