package bitvec

import "math/bits"

// This file holds the fused word-loop kernels of the phase-2 hot path.
// Each kernel replaces a sequence of whole-vector passes (compute a
// temporary, then scan it) with a single pass that never materialises the
// intermediate — the resimulate→diff→popcount pipeline of the dual-phase
// framework runs entirely on these. All kernels are exact: they compute
// the same words and counts as the unfused sequences they replace, so
// fused and unfused builds are bit-identical.

// MaskWord returns the final-word mask of an n-bit vector: all-ones when
// n is a multiple of 64, otherwise the low n%64 bits. ANDing the last word
// with it enforces the "bits past the logical length are zero" invariant
// without the separate Mask pass.
func MaskWord(n int) uint64 {
	if r := uint(n) & 63; r != 0 {
		return (1 << r) - 1
	}
	return ^uint64(0)
}

// XorCountInto stores a⊕b into dst and returns its popcount — the Hamming
// distance — in the same pass (fusion of dst.Xor(a, b) + dst.Count()).
func XorCountInto(dst, a, b Vec) int {
	n := 0
	for i := range dst {
		w := a[i] ^ b[i]
		dst[i] = w
		n += bits.OnesCount64(w)
	}
	return n
}

// AndXorCount returns popcount(a ∧ (b⊕c)) without materialising either
// intermediate. With a = a CPM propagation row and (b, c) = the current
// and candidate values of a target node, this is the number of (pattern)
// flips the candidate propagates to the row's PO.
func AndXorCount(a, b, c Vec) int {
	n := 0
	for i := range a {
		n += bits.OnesCount64(a[i] & (b[i] ^ c[i]))
	}
	return n
}

// AndXorMaybeNotCount is AndXorCount with a word-level complement mask on
// c: popcount(a ∧ (b ⊕ c ⊕ inv)). inv applies an AIG edge complement
// (all-ones) or not (zero) without branching; a must be masked to the
// logical length, so the padding bits inv flips on never count.
func AndXorMaybeNotCount(a, b, c Vec, inv uint64) int {
	n := 0
	for i := range a {
		n += bits.OnesCount64(a[i] & (b[i] ^ c[i] ^ inv))
	}
	return n
}

// AndMaybeNotDiff stores (a ⊕ inv0) ∧ (b ⊕ inv1) into v — one AIG node
// evaluation with branch-free edge complements — masking the final word
// with lastMask, and returns the OR of all changed bits: zero iff v
// already held exactly that value. It fuses the three passes of an
// incremental resimulation step (save the old value, evaluate, compare)
// into one, with no scratch vector.
func (v Vec) AndMaybeNotDiff(a, b Vec, inv0, inv1, lastMask uint64) uint64 {
	var diff uint64
	last := len(v) - 1
	for i := 0; i < last; i++ {
		nw := (a[i] ^ inv0) & (b[i] ^ inv1)
		diff |= v[i] ^ nw
		v[i] = nw
	}
	if last >= 0 {
		nw := (a[last] ^ inv0) & (b[last] ^ inv1) & lastMask
		diff |= v[last] ^ nw
		v[last] = nw
	}
	return diff
}
