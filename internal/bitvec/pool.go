package bitvec

import "sync"

// Pool is a free list of equally-sized vectors. The CPM cache recycles the
// diff vectors of invalidated rows through a Pool instead of releasing them
// to the garbage collector, so steady-state phase-2 iterations of the
// dual-phase flows allocate near zero.
//
// Get returns a vector with ARBITRARY content — callers must fully
// overwrite it (every consumer in package cpm writes all words of a diff
// vector before publishing it). Put hands a vector back; the caller must
// not retain any reference to it afterwards.
//
// A Pool is safe for concurrent use. Whether a vector comes from the free
// list or from a fresh allocation never changes computed results, so
// pooled builds stay bit-identical to unpooled ones.
type Pool struct {
	words int
	arena *Arena // optional slab backing for misses; nil: plain allocation

	mu   sync.Mutex
	free []Vec

	stats PoolStats
}

// PoolStats is a snapshot of a Pool's free-list behaviour, the raw
// material of the pool-effectiveness metrics: every Get is either a reuse
// (served from the free list) or a miss (a fresh allocation), so
// Gets = Reuses + Misses always holds. The counts depend only on the
// deterministic row-recompute/invalidate schedule, not on worker
// interleaving, so they are identical between runs for every thread
// count.
type PoolStats struct {
	Gets      int64 // vectors handed out
	Puts      int64 // vectors recycled back into the free list
	Misses    int64 // Gets served by a fresh allocation (free list empty)
	Reuses    int64 // Gets served from the free list
	HighWater int64 // maximum free-list length ever observed
}

// HitRate returns Reuses/Gets — the fraction of handed-out vectors that
// avoided an allocation (0 before the first Get).
func (s PoolStats) HitRate() float64 {
	if s.Gets == 0 {
		return 0
	}
	return float64(s.Reuses) / float64(s.Gets)
}

// NewPool returns a pool of vectors of w words each.
func NewPool(w int) *Pool { return &Pool{words: w} }

// NewArenaPool returns a pool of vectors of w words each whose misses are
// served by carving rows from a, instead of individual heap allocations:
// the free list keeps recycling vectors exactly as before (Stats and the
// Gets = Reuses + Misses invariant are unchanged), but a miss costs one
// slab carve, and a heap allocation only once per defaultSlabRows misses.
//
// The arena must outlive the pool, and must not be Reset while any vector
// handed out by the pool — free-listed or in use — is still reachable:
// after a Reset, previously pooled vectors alias recycled slab memory. The
// only safe reset pattern is to drop the pool together with the arena (or
// to drain and rebuild it).
func NewArenaPool(w int, a *Arena) *Pool {
	if a.Words() != w {
		panic("bitvec: NewArenaPool word length does not match the arena's")
	}
	return &Pool{words: w, arena: a}
}

// Words returns the word length of the pool's vectors.
func (p *Pool) Words() int { return p.words }

// Get returns a vector of the pool's word length. Its content is
// unspecified; the caller must overwrite every word it reads back.
func (p *Pool) Get() Vec {
	p.mu.Lock()
	p.stats.Gets++
	if n := len(p.free); n > 0 {
		v := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.stats.Reuses++
		p.mu.Unlock()
		return v
	}
	p.stats.Misses++
	p.mu.Unlock()
	if p.arena != nil {
		return p.arena.Alloc()
	}
	return NewWords(p.words)
}

// Arena returns the arena backing this pool's misses, or nil.
func (p *Pool) Arena() *Arena { return p.arena }

// Put recycles v into the free list. v must have the pool's word length and
// must not be used by the caller afterwards. Put(nil) is a no-op.
func (p *Pool) Put(v Vec) {
	if v == nil {
		return
	}
	if len(v) != p.words {
		panic("bitvec: Pool.Put of a vector with the wrong word length")
	}
	p.mu.Lock()
	p.free = append(p.free, v)
	p.stats.Puts++
	if n := int64(len(p.free)); n > p.stats.HighWater {
		p.stats.HighWater = n
	}
	p.mu.Unlock()
}

// Stats returns a snapshot of the pool's counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}
