package bitvec

import "sync"

// Pool is a free list of equally-sized vectors. The CPM cache recycles the
// diff vectors of invalidated rows through a Pool instead of releasing them
// to the garbage collector, so steady-state phase-2 iterations of the
// dual-phase flows allocate near zero.
//
// Get returns a vector with ARBITRARY content — callers must fully
// overwrite it (every consumer in package cpm writes all words of a diff
// vector before publishing it). Put hands a vector back; the caller must
// not retain any reference to it afterwards.
//
// A Pool is safe for concurrent use. Whether a vector comes from the free
// list or from a fresh allocation never changes computed results, so
// pooled builds stay bit-identical to unpooled ones.
type Pool struct {
	words int

	mu   sync.Mutex
	free []Vec

	gets   int64 // vectors handed out
	reuses int64 // … of which came from the free list
}

// NewPool returns a pool of vectors of w words each.
func NewPool(w int) *Pool { return &Pool{words: w} }

// Words returns the word length of the pool's vectors.
func (p *Pool) Words() int { return p.words }

// Get returns a vector of the pool's word length. Its content is
// unspecified; the caller must overwrite every word it reads back.
func (p *Pool) Get() Vec {
	p.mu.Lock()
	p.gets++
	if n := len(p.free); n > 0 {
		v := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.reuses++
		p.mu.Unlock()
		return v
	}
	p.mu.Unlock()
	return NewWords(p.words)
}

// Put recycles v into the free list. v must have the pool's word length and
// must not be used by the caller afterwards. Put(nil) is a no-op.
func (p *Pool) Put(v Vec) {
	if v == nil {
		return
	}
	if len(v) != p.words {
		panic("bitvec: Pool.Put of a vector with the wrong word length")
	}
	p.mu.Lock()
	p.free = append(p.free, v)
	p.mu.Unlock()
}

// Stats reports how many vectors Get handed out and how many of those were
// recycled from the free list (the rest were fresh allocations).
func (p *Pool) Stats() (gets, reuses int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.gets, p.reuses
}
