package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWords(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {1, 1}, {63, 1}, {64, 1}, {65, 2}, {128, 2}, {129, 3},
	}
	for _, c := range cases {
		if got := Words(c.n); got != c.want {
			t.Errorf("Words(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestSetGet(t *testing.T) {
	v := New(130)
	idx := []int{0, 1, 63, 64, 65, 127, 128, 129}
	for _, i := range idx {
		v.Set(i, true)
	}
	for _, i := range idx {
		if !v.Get(i) {
			t.Errorf("bit %d should be set", i)
		}
	}
	if got := v.Count(); got != len(idx) {
		t.Errorf("Count = %d, want %d", got, len(idx))
	}
	v.Set(64, false)
	if v.Get(64) {
		t.Error("bit 64 should be clear after Set(false)")
	}
}

func TestSetAllMask(t *testing.T) {
	v := New(70)
	v.SetAll()
	v.Mask(70)
	if got := v.Count(); got != 70 {
		t.Errorf("Count after SetAll+Mask(70) = %d, want 70", got)
	}
	if v.Get(70) || v.Get(127) {
		t.Error("bits past logical length must be zero")
	}
	// Mask with multiple of 64 must be a no-op.
	w := New(128)
	w.SetAll()
	w.Mask(128)
	if got := w.Count(); got != 128 {
		t.Errorf("Mask(128) clobbered bits: %d", got)
	}
}

func TestLogicOps(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a, b := New(200), New(200)
	for i := 0; i < 200; i++ {
		a.Set(i, rng.Intn(2) == 1)
		b.Set(i, rng.Intn(2) == 1)
	}
	and, or, xor, andnot, not := New(200), New(200), New(200), New(200), New(200)
	and.And(a, b)
	or.Or(a, b)
	xor.Xor(a, b)
	andnot.AndNot(a, b)
	not.Not(a)
	not.Mask(200)
	for i := 0; i < 200; i++ {
		ai, bi := a.Get(i), b.Get(i)
		if and.Get(i) != (ai && bi) {
			t.Fatalf("And bit %d wrong", i)
		}
		if or.Get(i) != (ai || bi) {
			t.Fatalf("Or bit %d wrong", i)
		}
		if xor.Get(i) != (ai != bi) {
			t.Fatalf("Xor bit %d wrong", i)
		}
		if andnot.Get(i) != (ai && !bi) {
			t.Fatalf("AndNot bit %d wrong", i)
		}
		if not.Get(i) != !ai {
			t.Fatalf("Not bit %d wrong", i)
		}
	}
	if got, want := AndCount(a, b), and.Count(); got != want {
		t.Errorf("AndCount = %d, want %d", got, want)
	}
	if got, want := XorCount(a, b), xor.Count(); got != want {
		t.Errorf("XorCount = %d, want %d", got, want)
	}
}

func TestAndMaybeNot(t *testing.T) {
	a := Vec{0b1100, 0}
	b := Vec{0b1010, 0}
	v := NewWords(2)
	v.AndMaybeNot(a, b, 0)
	if v[0] != 0b1000 {
		t.Errorf("AndMaybeNot(inv=0) = %b", v[0])
	}
	v.AndMaybeNot(a, b, ^uint64(0))
	if v[0] != 0b0100 {
		t.Errorf("AndMaybeNot(inv=~0) = %b", v[0])
	}
}

func TestInPlaceOps(t *testing.T) {
	a := Vec{0b0011}
	b := Vec{0b0101}
	v := a.Clone()
	v.OrWith(b)
	if v[0] != 0b0111 {
		t.Errorf("OrWith = %b", v[0])
	}
	v = a.Clone()
	v.AndWith(b)
	if v[0] != 0b0001 {
		t.Errorf("AndWith = %b", v[0])
	}
	v = a.Clone()
	v.XorWith(b)
	if v[0] != 0b0110 {
		t.Errorf("XorWith = %b", v[0])
	}
}

func TestForEachNextSet(t *testing.T) {
	v := New(300)
	want := []int{0, 5, 63, 64, 100, 255, 299}
	for _, i := range want {
		v.Set(i, true)
	}
	var got []int
	v.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach visited %v, want %v", got, want)
		}
	}
	pos := -1
	var scan []int
	for {
		pos = v.NextSet(pos + 1)
		if pos < 0 {
			break
		}
		scan = append(scan, pos)
	}
	for i := range want {
		if scan[i] != want[i] {
			t.Fatalf("NextSet scan %v, want %v", scan, want)
		}
	}
	if v.NextSet(300) != -1 {
		t.Error("NextSet past end should be -1")
	}
}

func TestZeroEqualIntersect(t *testing.T) {
	a, b := New(128), New(128)
	if !a.IsZero() || !a.Equal(b) {
		t.Fatal("fresh vectors must be zero and equal")
	}
	a.Set(77, true)
	if a.IsZero() || a.Equal(b) || a.Intersects(b) {
		t.Fatal("after Set: IsZero/Equal/Intersects wrong")
	}
	b.Set(77, true)
	if !a.Intersects(b) || !a.Equal(b) {
		t.Fatal("overlapping vectors must intersect and be equal")
	}
	if a.Equal(New(64)) {
		t.Fatal("different lengths must not compare equal")
	}
}

// Property: ForEach visits exactly the bits that Get reports, and Count
// agrees with the number of visits.
func TestQuickForEachMatchesGet(t *testing.T) {
	f := func(words []uint64) bool {
		if len(words) > 8 {
			words = words[:8]
		}
		v := Vec(words)
		seen := map[int]bool{}
		v.ForEach(func(i int) { seen[i] = true })
		if len(seen) != v.Count() {
			return false
		}
		for i := 0; i < len(v)<<6; i++ {
			if seen[i] != v.Get(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: De Morgan holds on the word level: ¬(a∧b) == ¬a ∨ ¬b.
func TestQuickDeMorgan(t *testing.T) {
	f := func(aw, bw [4]uint64) bool {
		a, b := Vec(aw[:]), Vec(bw[:])
		lhs, na, nb, rhs := NewWords(4), NewWords(4), NewWords(4), NewWords(4)
		lhs.And(a, b)
		lhs.Not(lhs)
		na.Not(a)
		nb.Not(b)
		rhs.Or(na, nb)
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkAnd1024Words(b *testing.B) {
	x, y, z := NewWords(1024), NewWords(1024), NewWords(1024)
	for i := range x {
		x[i] = uint64(i) * 0x9e3779b97f4a7c15
		y[i] = uint64(i) * 0xbf58476d1ce4e5b9
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		z.And(x, y)
	}
}

func BenchmarkCount1024Words(b *testing.B) {
	x := NewWords(1024)
	for i := range x {
		x[i] = uint64(i) * 0x9e3779b97f4a7c15
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.Count()
	}
}
