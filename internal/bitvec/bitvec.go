// Package bitvec provides packed bit vectors used throughout the ALS engine
// for 64-way bit-parallel circuit simulation and for the change propagation
// matrix. A Vec of n bits is stored LSB-first in ⌈n/64⌉ uint64 words; bit i
// of the vector corresponds to Monte-Carlo input pattern i.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

// Vec is a packed bit vector. The bit count is carried by the caller:
// all vectors participating in an operation must have the same word length,
// and bits past the logical length must be kept zero by the producer of the
// vector (Mask enforces this).
type Vec []uint64

// Words returns the number of 64-bit words needed to hold n bits.
func Words(n int) int { return (n + 63) >> 6 }

// New returns a zeroed vector holding n bits.
func New(n int) Vec { return make(Vec, Words(n)) }

// NewWords returns a zeroed vector of w words.
func NewWords(w int) Vec { return make(Vec, w) }

// Clone returns a copy of v.
func (v Vec) Clone() Vec {
	c := make(Vec, len(v))
	copy(c, v)
	return c
}

// CopyFrom copies src into v. The vectors must have equal length.
func (v Vec) CopyFrom(src Vec) { copy(v, src) }

// Get reports bit i.
func (v Vec) Get(i int) bool { return v[i>>6]>>(uint(i)&63)&1 != 0 }

// Set sets bit i to b.
func (v Vec) Set(i int, b bool) {
	if b {
		v[i>>6] |= 1 << (uint(i) & 63)
	} else {
		v[i>>6] &^= 1 << (uint(i) & 63)
	}
}

// SetAll sets every word to all-ones. Call Mask afterwards if the logical
// bit count is not a multiple of 64.
func (v Vec) SetAll() {
	for i := range v {
		v[i] = ^uint64(0)
	}
}

// Clear zeroes the vector.
func (v Vec) Clear() {
	for i := range v {
		v[i] = 0
	}
}

// Mask clears the bits at positions ≥ n so that exactly the first n bits can
// be set. It must be called after SetAll or Not when n%64 != 0.
func (v Vec) Mask(n int) {
	if r := uint(n) & 63; r != 0 && len(v) > 0 {
		v[len(v)-1] &= (1 << r) - 1
	}
}

// And stores a∧b into v.
func (v Vec) And(a, b Vec) {
	for i := range v {
		v[i] = a[i] & b[i]
	}
}

// AndNot stores a∧¬b into v.
func (v Vec) AndNot(a, b Vec) {
	for i := range v {
		v[i] = a[i] &^ b[i]
	}
}

// Or stores a∨b into v.
func (v Vec) Or(a, b Vec) {
	for i := range v {
		v[i] = a[i] | b[i]
	}
}

// OrWith ors a into v in place.
func (v Vec) OrWith(a Vec) {
	for i := range v {
		v[i] |= a[i]
	}
}

// AndWith ands a into v in place.
func (v Vec) AndWith(a Vec) {
	for i := range v {
		v[i] &= a[i]
	}
}

// Xor stores a⊕b into v.
func (v Vec) Xor(a, b Vec) {
	for i := range v {
		v[i] = a[i] ^ b[i]
	}
}

// XorWith xors a into v in place.
func (v Vec) XorWith(a Vec) {
	for i := range v {
		v[i] ^= a[i]
	}
}

// Not stores ¬a into v. Call Mask afterwards when the logical bit count is
// not a multiple of 64.
func (v Vec) Not(a Vec) {
	for i := range v {
		v[i] = ^a[i]
	}
}

// AndMaybeNot stores a ∧ (b ⊕ inv) into v, i.e. a∧b when inv is zero and
// a∧¬b when inv is all-ones. inv is a word-level complement mask used to
// apply AIG edge complements without branching.
func (v Vec) AndMaybeNot(a, b Vec, inv uint64) {
	for i := range v {
		v[i] = a[i] & (b[i] ^ inv)
	}
}

// Count returns the number of set bits.
func (v Vec) Count() int {
	n := 0
	for _, w := range v {
		n += bits.OnesCount64(w)
	}
	return n
}

// AndCount returns popcount(a∧b) without materialising the intermediate.
func AndCount(a, b Vec) int {
	n := 0
	for i := range a {
		n += bits.OnesCount64(a[i] & b[i])
	}
	return n
}

// XorCount returns popcount(a⊕b), the Hamming distance between a and b.
func XorCount(a, b Vec) int {
	n := 0
	for i := range a {
		n += bits.OnesCount64(a[i] ^ b[i])
	}
	return n
}

// IsZero reports whether no bit is set.
func (v Vec) IsZero() bool {
	for _, w := range v {
		if w != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether v and a hold identical words.
func (v Vec) Equal(a Vec) bool {
	if len(v) != len(a) {
		return false
	}
	for i := range v {
		if v[i] != a[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether v∧a has any set bit.
func (v Vec) Intersects(a Vec) bool {
	for i := range v {
		if v[i]&a[i] != 0 {
			return true
		}
	}
	return false
}

// ForEach calls fn with the index of every set bit, in increasing order.
func (v Vec) ForEach(fn func(i int)) {
	for wi, w := range v {
		base := wi << 6
		for w != 0 {
			fn(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// NextSet returns the index of the first set bit at position ≥ from,
// or -1 when there is none.
func (v Vec) NextSet(from int) int {
	if from < 0 {
		from = 0
	}
	wi := from >> 6
	if wi >= len(v) {
		return -1
	}
	w := v[wi] >> (uint(from) & 63) << (uint(from) & 63)
	for {
		if w != 0 {
			return wi<<6 + bits.TrailingZeros64(w)
		}
		wi++
		if wi >= len(v) {
			return -1
		}
		w = v[wi]
	}
}

// String renders the vector's full physical capacity (len(v)*64 bits,
// truncated at 256) MSB-last for debugging. A Vec does not know its
// logical bit length, so padding bits past it — and stale garbage in
// pooled or arena rows — show up here; use StringN with the logical
// length to render only live bits.
func (v Vec) String() string { return v.StringN(len(v) << 6) }

// StringN renders the first min(n, 256) logical bits MSB-last for
// debugging, appending a "…(+k bits)" marker for whatever it truncates.
// Bits past the vector's physical capacity render as 0.
func (v Vec) StringN(n int) string {
	var sb strings.Builder
	shown := n
	if shown > 256 {
		shown = 256
	}
	for i := 0; i < shown; i++ {
		if i < len(v)<<6 && v.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	if n > shown {
		fmt.Fprintf(&sb, "…(+%d bits)", n-shown)
	}
	return sb.String()
}
