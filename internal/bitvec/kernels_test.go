package bitvec

import (
	"math/rand"
	"strings"
	"testing"
)

// biasedPatterns is a pattern count that is NOT a multiple of 64
// (1000 = 15 full words + 40 bits), so every kernel test below exercises
// the partially-filled final word where missing masking shows up.
const biasedPatterns = 1000

func randVec(rng *rand.Rand, words int) Vec {
	v := NewWords(words)
	for i := range v {
		v[i] = rng.Uint64()
	}
	return v
}

func TestMaskWord(t *testing.T) {
	cases := []struct {
		n    int
		want uint64
	}{
		{1, 1},
		{40, (1 << 40) - 1},
		{63, (1 << 63) - 1},
		{64, ^uint64(0)},
		{128, ^uint64(0)},
		{biasedPatterns, (1 << (biasedPatterns % 64)) - 1},
	}
	for _, c := range cases {
		if got := MaskWord(c.n); got != c.want {
			t.Errorf("MaskWord(%d) = %#x, want %#x", c.n, got, c.want)
		}
	}
	// MaskWord(n) must agree with what Mask(n) leaves in the final word.
	for _, n := range []int{1, 40, 63, 64, 65, biasedPatterns} {
		v := NewWords(Words(n))
		v.SetAll()
		v.Mask(n)
		if got, want := v[len(v)-1], MaskWord(n); got != want {
			t.Errorf("Mask(%d) final word = %#x, MaskWord = %#x", n, got, want)
		}
	}
}

// TestXorCountIntoMatchesUnfused checks the fused kernel against the
// two-pass sequence it replaces (Xor then Count) at a biased pattern count.
func TestXorCountIntoMatchesUnfused(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	words := Words(biasedPatterns)
	for trial := 0; trial < 50; trial++ {
		a, b := randVec(rng, words), randVec(rng, words)
		a.Mask(biasedPatterns)
		b.Mask(biasedPatterns)
		want := NewWords(words)
		want.Xor(a, b)
		dst := randVec(rng, words) // arbitrary prior content, like an arena row
		n := XorCountInto(dst, a, b)
		if !dst.Equal(want) {
			t.Fatal("XorCountInto produced a different vector than Xor")
		}
		if n != want.Count() {
			t.Fatalf("XorCountInto count = %d, want %d", n, want.Count())
		}
	}
}

func TestAndXorCountMatchesUnfused(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	words := Words(biasedPatterns)
	for trial := 0; trial < 50; trial++ {
		a, b, c := randVec(rng, words), randVec(rng, words), randVec(rng, words)
		a.Mask(biasedPatterns)
		tmp, res := NewWords(words), NewWords(words)
		tmp.Xor(b, c)
		res.And(a, tmp)
		if got, want := AndXorCount(a, b, c), res.Count(); got != want {
			t.Fatalf("AndXorCount = %d, want %d", got, want)
		}
	}
}

// TestAndXorMaybeNotCountMatchesUnfused checks both complement polarities;
// inv flips the padding bits of b⊕c too, so a masked `a` must keep them
// out of the count.
func TestAndXorMaybeNotCountMatchesUnfused(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	words := Words(biasedPatterns)
	for trial := 0; trial < 50; trial++ {
		a, b, c := randVec(rng, words), randVec(rng, words), randVec(rng, words)
		a.Mask(biasedPatterns)
		for _, inv := range []uint64{0, ^uint64(0)} {
			tmp, res := NewWords(words), NewWords(words)
			tmp.Xor(b, c)
			if inv != 0 {
				tmp.Not(tmp)
			}
			res.And(a, tmp)
			if got, want := AndXorMaybeNotCount(a, b, c, inv), res.Count(); got != want {
				t.Fatalf("AndXorMaybeNotCount(inv=%#x) = %d, want %d", inv, got, want)
			}
		}
	}
}

// TestAndMaybeNotDiffMatchesUnfused checks the fused resimulation step
// against the three-pass sequence it replaces: save the old value,
// AndMaybeNot + Mask, compare.
func TestAndMaybeNotDiffMatchesUnfused(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	words := Words(biasedPatterns)
	lastMask := MaskWord(biasedPatterns)
	for trial := 0; trial < 50; trial++ {
		a, b := randVec(rng, words), randVec(rng, words)
		for _, inv0 := range []uint64{0, ^uint64(0)} {
			for _, inv1 := range []uint64{0, ^uint64(0)} {
				// Reference: evaluate with the unfused ops.
				ta, tb := a.Clone(), b.Clone()
				if inv0 != 0 {
					ta.Not(ta)
				}
				if inv1 != 0 {
					tb.Not(tb)
				}
				want := NewWords(words)
				want.And(ta, tb)
				want.Mask(biasedPatterns)

				v := randVec(rng, words)
				v.Mask(biasedPatterns)
				old := v.Clone()
				diff := v.AndMaybeNotDiff(a, b, inv0, inv1, lastMask)
				if !v.Equal(want) {
					t.Fatalf("AndMaybeNotDiff(inv0=%#x inv1=%#x) wrong value", inv0, inv1)
				}
				if (diff != 0) != !old.Equal(want) {
					t.Fatalf("AndMaybeNotDiff change flag = %v, want %v",
						diff != 0, !old.Equal(want))
				}
			}
		}
	}
	// A second evaluation with identical inputs must report no change.
	a, b := randVec(rng, words), randVec(rng, words)
	v := NewWords(words)
	v.AndMaybeNotDiff(a, b, 0, ^uint64(0), lastMask)
	if d := v.AndMaybeNotDiff(a, b, 0, ^uint64(0), lastMask); d != 0 {
		t.Errorf("idempotent re-evaluation reported diff %#x", d)
	}
}

// TestNotSetAllBiasedMask is the regression net for the complement-mask
// audit: at a biased pattern count, Not and SetAll raise padding bits, and
// every counting path must see them cleared again after Mask.
func TestNotSetAllBiasedMask(t *testing.T) {
	words := Words(biasedPatterns)

	v := NewWords(words)
	v.SetAll()
	v.Mask(biasedPatterns)
	if got := v.Count(); got != biasedPatterns {
		t.Errorf("SetAll+Mask Count = %d, want %d", got, biasedPatterns)
	}

	rng := rand.New(rand.NewSource(3))
	a := randVec(rng, words)
	a.Mask(biasedPatterns)
	n := NewWords(words)
	n.Not(a)
	n.Mask(biasedPatterns)
	if got, want := n.Count(), biasedPatterns-a.Count(); got != want {
		t.Errorf("Not+Mask Count = %d, want %d", got, want)
	}
	// A masked vector and its masked complement partition the patterns.
	if a.Intersects(n) {
		t.Error("masked vector intersects its masked complement")
	}
	both := NewWords(words)
	both.Or(a, n)
	if got := both.Count(); got != biasedPatterns {
		t.Errorf("a ∪ ¬a Count = %d, want %d", got, biasedPatterns)
	}
}

// BenchmarkKernels is the microbench family behind the fused-kernel claim:
// each fused kernel is benchmarked next to the unfused multi-pass sequence
// it replaces, at the dual-phase benchmark's vector size (1024 patterns =
// 16 words). CI runs this family in the bench smoke and uploads the output
// as results/BENCH_kernels.txt; EXPERIMENTS.md records the methodology.
func BenchmarkKernels(b *testing.B) {
	const words = 16 // 1024 patterns, as in BenchmarkDualPhase
	rng := rand.New(rand.NewSource(1))
	a, bv, c := randVec(rng, words), randVec(rng, words), randVec(rng, words)
	a.Mask(biasedPatterns)
	dst, tmp := NewWords(words), NewWords(words)
	lastMask := MaskWord(biasedPatterns)
	sink := 0

	b.Run("XorCountInto", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink += XorCountInto(dst, a, bv)
		}
	})
	b.Run("XorThenCount-unfused", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst.Xor(a, bv)
			sink += dst.Count()
		}
	})
	b.Run("AndXorCount", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink += AndXorCount(a, bv, c)
		}
	})
	b.Run("AndXorCount-unfused", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tmp.Xor(bv, c)
			dst.And(a, tmp)
			sink += dst.Count()
		}
	})
	b.Run("AndXorMaybeNotCount", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink += AndXorMaybeNotCount(a, bv, c, ^uint64(0))
		}
	})
	b.Run("AndMaybeNotDiff", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink += int(dst.AndMaybeNotDiff(a, bv, 0, ^uint64(0), lastMask))
		}
	})
	b.Run("AndMaybeNotDiff-unfused", func(b *testing.B) {
		// The three passes the fused kernel replaces: save, evaluate+mask,
		// compare. The save pass allocates nothing here (reused scratch) so
		// the delta is pure pass fusion.
		old := NewWords(words)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			copy(old, dst)
			dst.AndMaybeNot(a, bv, ^uint64(0))
			dst.Mask(biasedPatterns)
			if !old.Equal(dst) {
				sink++
			}
		}
	})
	if sink == 42 {
		b.Log(sink) // defeat dead-code elimination
	}
}

// TestStringLogicalLength is the regression test for the String fix:
// String renders physical capacity, StringN renders the logical length
// without the padding bits.
func TestStringLogicalLength(t *testing.T) {
	v := New(70)
	v.Set(0, true)
	v.Set(69, true)
	// Padding garbage as a pooled/arena row would carry.
	v[1] |= 0xFFFF_FFFF_FFFF_0000

	s := v.StringN(70)
	if len(s) != 70 {
		t.Fatalf("StringN(70) rendered %d chars, want 70", len(s))
	}
	if s[0] != '1' || s[69] != '1' {
		t.Errorf("StringN lost live bits: %q", s)
	}
	if strings.Count(s, "1") != 2 {
		t.Errorf("StringN rendered padding garbage: %q", s)
	}

	// String (no logical length) renders all 128 physical bits, garbage
	// included — documented behaviour, asserted so a change is deliberate.
	if got := len(v.String()); got != 128 {
		t.Errorf("String rendered %d chars, want 128 (physical capacity)", got)
	}

	// Truncation marker and zero-fill past physical capacity.
	long := v.StringN(300)
	if !strings.HasSuffix(long, "…(+44 bits)") {
		t.Errorf("StringN(300) missing truncation marker: %q", long)
	}
	if long[200] != '0' {
		t.Error("bits past physical capacity must render as 0")
	}
}
