package bitvec

import "sync"

// Arena is a slab allocator for equally-sized vectors: rows are carved out
// of large contiguous word slabs instead of being individually heap
// allocated, and the whole arena is reclaimed wholesale with Reset. It is
// the backing store of the phase-2 hot path — CPM diff vectors, simulator
// value matrices and region-simulation scratch all live on arenas — so a
// steady-state phase-2 iteration performs no per-row heap allocation: a
// fresh row is a slice of an existing slab, and a slab allocation happens
// only when every previously carved slab is full (amortised over hundreds
// of rows).
//
// Ownership rules (see DESIGN.md §9):
//
//   - A row handed out by Alloc/AllocRow is owned by the caller until the
//     next Reset. The arena never reads or writes rows.
//   - Rows come back with ARBITRARY content — like Pool.Get, callers must
//     fully overwrite every word they later read.
//   - Reset invalidates every outstanding row at once (the memory is
//     retained and recycled by subsequent Allocs). It is only legal when
//     the owner of every outstanding row has dropped it — the typical
//     pattern is one arena per analysis round, reset at the round boundary.
//   - Rows are plain Vec slices aliasing slab memory: two rows never
//     overlap, so writing one row cannot corrupt another. Whether a Vec
//     came from an arena, a pool or make() never changes computed results.
//
// An Arena is safe for concurrent Alloc from multiple goroutines (one
// short critical section per row); Reset must not race with Alloc or with
// any use of outstanding rows.
type Arena struct {
	words     int // row length in words
	slabWords int // slab capacity in words (multiple of words)

	mu    sync.Mutex
	slabs [][]uint64
	slab  int // index of the slab currently being carved
	off   int // carve offset into slabs[slab], in words

	stats ArenaStats
}

// ArenaStats is a snapshot of an arena's behaviour: every Alloc either
// carves an existing slab (Carves) or first grows the arena by one slab
// (SlabAllocs counts those heap allocations). Rows = Carves, so the
// per-row allocation rate of arena-backed code is SlabAllocs/Rows.
type ArenaStats struct {
	Rows       int64 // rows handed out since construction
	SlabAllocs int64 // slabs heap-allocated (the only allocations made)
	Resets     int64 // wholesale reclaims
}

// defaultSlabRows is the number of rows a slab holds. Large enough to
// amortise the slab allocation over many rows, small enough that a tiny
// arena does not pin megabytes.
const defaultSlabRows = 256

// NewArena returns an arena handing out rows of w words each.
func NewArena(w int) *Arena {
	if w <= 0 {
		panic("bitvec: NewArena with non-positive word length")
	}
	return &Arena{words: w, slabWords: w * defaultSlabRows}
}

// Words returns the row length in words.
func (a *Arena) Words() int { return a.words }

// Handle is a stable offset-based identifier of one arena row: slab index
// and carve offset packed into one value, valid until the next Reset.
// Handles let index-addressed structures reference rows without holding
// slice headers (3 words each); Row resolves a handle back to its Vec.
type Handle struct {
	slab int32
	off  int32 // in words
}

// Alloc returns one row of the arena's word length with arbitrary content.
func (a *Arena) Alloc() Vec {
	_, v := a.AllocRow()
	return v
}

// AllocRow returns a fresh row together with its handle.
func (a *Arena) AllocRow() (Handle, Vec) {
	a.mu.Lock()
	if a.slab >= len(a.slabs) || a.off+a.words > a.slabWords {
		if a.slab+1 < len(a.slabs) {
			a.slab++ // recycle a slab retained across a Reset
		} else {
			a.slabs = append(a.slabs, make([]uint64, a.slabWords))
			a.slab = len(a.slabs) - 1
			a.stats.SlabAllocs++
		}
		a.off = 0
	}
	h := Handle{slab: int32(a.slab), off: int32(a.off)}
	v := Vec(a.slabs[a.slab][a.off : a.off+a.words : a.off+a.words])
	a.off += a.words
	a.stats.Rows++
	a.mu.Unlock()
	return h, v
}

// Row resolves a handle returned by AllocRow. The mapping is stable until
// the next Reset.
func (a *Arena) Row(h Handle) Vec {
	return Vec(a.slabs[h.slab][h.off : int(h.off)+a.words : int(h.off)+a.words])
}

// Reset reclaims every outstanding row at once: all handles and Vecs
// handed out so far become invalid, the slab memory is retained, and
// subsequent Allocs recycle it from the start. See the ownership rules in
// the type comment for when a reset is legal.
func (a *Arena) Reset() {
	a.mu.Lock()
	a.slab = 0
	a.off = 0
	a.stats.Resets++
	a.mu.Unlock()
}

// Stats returns a snapshot of the arena's counters.
func (a *Arena) Stats() ArenaStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// Live returns the number of words currently carved out (the high-water
// mark since the last Reset). Intended for leak checks in tests: after a
// Reset, Live is 0 until the next Alloc.
func (a *Arena) Live() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.slabs) == 0 {
		return 0
	}
	return a.slab*a.slabWords + a.off
}
