package repro

import (
	"io"
	"testing"

	"dpals/internal/gen"
)

func TestAblationCutUpdateFasterThanFresh(t *testing.T) {
	g := gen.MultU(10, 10)
	inc, fresh, avgSv := AblationCutUpdate(g, 20, 1)
	t.Logf("incremental %v vs fresh %v (avg |S_v| = %.0f of %d nodes)", inc, fresh, avgSv, g.NumAnds())
	if inc >= fresh {
		t.Errorf("incremental cut update (%v) not faster than fresh recomputation (%v)", inc, fresh)
	}
	if avgSv <= 0 || avgSv >= float64(g.NumAnds()) {
		t.Errorf("avg |S_v| = %v out of range", avgSv)
	}
}

func TestAblationPartialCPMFasterThanFull(t *testing.T) {
	g := gen.MultU(10, 10)
	partial, full, closure := AblationPartialCPM(g, 60, 2048, 1)
	t.Logf("partial (M=60, |N(S)|=%d) %v vs full %v", closure, partial, full)
	if partial >= full {
		t.Errorf("partial CPM (%v) not faster than full CPM (%v)", partial, full)
	}
	if closure < 60 {
		t.Errorf("closure %d smaller than the target set", closure)
	}
}

func TestAblationMSweepRuns(t *testing.T) {
	b := gen.SmallSuite(true)[3] // sm9x8
	rows := AblationMSweep(b, []int{15, 60}, Config{Out: io.Discard, Patterns: 512, CapIters: 40})
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Applied == 0 || r.ADP <= 0 || r.ADP > 1.01 {
			t.Errorf("M=%d: applied=%d ADP=%v", r.M, r.Applied, r.ADP)
		}
	}
}

func TestAblationPatternsSweepRuns(t *testing.T) {
	b := gen.SmallSuite(true)[0] // c880
	rows := AblationPatternsSweep(b, []int{256, 1024}, Config{Out: io.Discard, CapIters: 40})
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.TrainErr > r.Threshold {
			t.Errorf("patterns=%d: training error %v exceeds budget %v", r.Patterns, r.TrainErr, r.Threshold)
		}
		if r.ValidErr <= 0 {
			t.Errorf("patterns=%d: validation error %v", r.Patterns, r.ValidErr)
		}
	}
}
