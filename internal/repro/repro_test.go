package repro

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableI(t *testing.T) {
	var buf bytes.Buffer
	TableI(Config{Out: &buf, Scaled: true})
	out := buf.String()
	for _, name := range []string{"c880", "c1908", "c3540", "sm9x8", "mult16", "adder", "sin", "square", "sqrt", "log2", "butterfly", "vecmul8"} {
		if !strings.Contains(out, name) {
			t.Errorf("Table I missing %s", name)
		}
	}
}

func TestFig4Quick(t *testing.T) {
	var buf bytes.Buffer
	rows := Fig4(Config{Out: &buf, Scaled: true, Quick: true, Patterns: 512})
	if len(rows) == 0 {
		t.Fatal("no Fig. 4 rows")
	}
	for _, r := range rows {
		if r.Ran == 0 {
			t.Errorf("%s: no iterations observed", r.Circuit)
		}
		for i, rate := range r.Rate {
			if rate < 0 || rate > 1 {
				t.Errorf("%s k=%d: rate %v out of range", r.Circuit, 10*(i+1), rate)
			}
		}
	}
	t.Log("\n" + buf.String())
}

func TestTableIISmallQuick(t *testing.T) {
	var buf bytes.Buffer
	rows := TableII(Config{Out: &buf, Scaled: true, Quick: true, Patterns: 512, Threads: 4}, true)
	if len(rows) != 3 {
		t.Fatalf("quick small subset: %d rows", len(rows))
	}
	for _, r := range rows {
		for i, adp := range r.ADP {
			if adp <= 0 || adp > 1.01 {
				t.Errorf("%s %s: ADP ratio %v out of range", r.Circuit, tableIIMethods[i], adp)
			}
		}
	}
	t.Log("\n" + buf.String())
}

func TestTableIILargeQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("large circuits take minutes")
	}
	var buf bytes.Buffer
	rows := TableII(Config{Out: &buf, Scaled: true, Quick: true, Patterns: 512, CapIters: 30, Threads: 4}, false)
	if len(rows) != 2 {
		t.Fatalf("quick large subset: %d rows", len(rows))
	}
	// The headline claim: DP must beat the exact VECBEE baseline clearly on
	// large circuits.
	for _, r := range rows {
		if r.Runtime[2] >= r.Runtime[0] {
			t.Errorf("%s: DP (%v) not faster than VECBEE l=∞ (%v)", r.Circuit, r.Runtime[2], r.Runtime[0])
		}
	}
	t.Log("\n" + buf.String())
}

func TestTableIIIQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("single-threaded AccALS comparison takes a while")
	}
	var buf bytes.Buffer
	rows := TableIII(Config{Out: &buf, Scaled: true, Quick: true, Patterns: 512, CapIters: 30})
	if len(rows) != 5 {
		t.Fatalf("quick subset: %d rows", len(rows))
	}
	t.Log("\n" + buf.String())
}
