package repro

import (
	"dpals/internal/core"
	"dpals/internal/gen"
	"dpals/internal/lac"
	"dpals/internal/metric"
)

// Fig4Row holds the candidate-set hit rates T_k/k of one circuit for
// k = 10, 20, …, 60 (paper Fig. 4).
type Fig4Row struct {
	Circuit string
	Rate    [6]float64 // index i: k = 10(i+1)
	Ran     int        // iterations actually observed (flow may stop early)
}

// Fig4 reruns the paper's motivating experiment: run the conventional flow,
// form the candidate set S from the top-60 nodes (by smallest error
// increase) at the end of iteration 1, then measure how many of the next k
// optimal choices fall inside S.
func Fig4(cfg Config) []Fig4Row {
	suite := gen.SmallSuite(cfg.Scaled)
	if cfg.Quick {
		suite = quickSubset(suite)
	}
	const setSize = 60
	cfg.printf("FIG. 4 — fraction of the next k optimal choices contained in the top-%d candidate set (MSE, patterns=%d)\n",
		setSize, cfg.patterns())
	cfg.printf("%-10s |", "Circuit")
	for k := 10; k <= 60; k += 10 {
		cfg.printf(" k=%-4d", k)
	}
	cfg.printf("\n")

	var rows []Fig4Row
	for _, b := range suite {
		thr := thresholds(metric.MSE, b.Graph.NumPOs())[2] // generous: need 61 iterations
		opt := core.DefaultOptions(core.FlowConventional, metric.MSE, thr)
		opt.Patterns = cfg.patterns()
		opt.Seed = cfg.seed()
		opt.Threads = cfg.threads()
		opt.LACs = lac.Options{Constants: true, SASIMI: true}
		opt.MaxIters = 61

		inSet := map[int32]bool{}
		hits := 0
		row := Fig4Row{Circuit: b.PaperName}
		opt.OnIteration = func(iter int, chosen lac.NodeBest, bests []lac.NodeBest) {
			if iter == 1 {
				for _, nb := range bests {
					if nb.Node == chosen.Node {
						continue
					}
					inSet[nb.Node] = true
					if len(inSet) == setSize {
						break
					}
				}
				return
			}
			k := iter - 1 // 1-based count of post-selection iterations
			if inSet[chosen.Node] {
				hits++
			}
			row.Ran = k
			if k%10 == 0 && k/10 <= 6 {
				row.Rate[k/10-1] = float64(hits) / float64(k)
			}
		}
		if _, err := core.Run(b.Graph, opt); err != nil {
			panic("repro fig4: " + err.Error())
		}
		// Fill trailing entries when the flow stopped early: carry the
		// final observed rate.
		last := 0.0
		if row.Ran > 0 {
			last = float64(hits) / float64(row.Ran)
		}
		for i := range row.Rate {
			if 10*(i+1) > row.Ran {
				row.Rate[i] = last
			}
		}
		rows = append(rows, row)
		cfg.printf("%-10s |", row.Circuit)
		for _, r := range row.Rate {
			cfg.printf(" %5.1f%%", 100*r)
		}
		cfg.printf("   (observed %d iters)\n", row.Ran)
	}
	return rows
}
