package repro

import (
	"time"

	"dpals/internal/core"
	"dpals/internal/gen"
	"dpals/internal/lac"
	"dpals/internal/metric"
	"dpals/internal/techmap"
)

// TableI prints the benchmark information table (paper Table I): name,
// I/O counts, function, AIG node count, mapped area and delay.
func TableI(cfg Config) {
	cfg.printf("TABLE I — BENCHMARK CIRCUIT INFORMATION (scaled=%v)\n", cfg.Scaled)
	cfg.printf("%-10s %9s  %-38s %6s %10s %9s\n", "Circuit", "#I/O", "Function", "#Nd", "Area", "Delay")
	for _, b := range gen.Suite(cfg.Scaled) {
		r := techmap.Summarise(b.Graph)
		cfg.printf("%-10s %4d/%-4d  %-38s %6d %10.2f %9.2f\n",
			b.PaperName, b.Graph.NumPIs(), b.Graph.NumPOs(), b.Function, r.Ands, r.Area, r.Delay)
	}
}

// TableIIRow is one circuit's result in the Table II comparison.
type TableIIRow struct {
	Circuit string
	ADP     [4]float64       // VECBEE l=∞, VECBEE l=1, DP, DP-SA
	Runtime [4]time.Duration // same order
}

var tableIIMethods = [4]string{"l=inf", "l=1", "DP", "DP-SA"}

// TableII runs the paper's Table II comparison under the MSE constraint:
// small circuits with SASIMI LACs averaged over three thresholds, large
// circuits with constant LACs at the median threshold. It returns the rows
// (small first) and prints them.
func TableII(cfg Config, small bool) []TableIIRow {
	var suite []gen.Benchmark
	if small {
		suite = gen.SmallSuite(cfg.Scaled)
	} else {
		suite = gen.LargeSuite(cfg.Scaled)
	}
	if cfg.Quick {
		suite = quickSubset(suite)
	}
	group := "LARGE"
	if small {
		group = "SMALL"
	}
	cfg.printf("TABLE II (%s) — VECBEE(l=∞), VECBEE(l=1), DP, DP-SA under MSE (patterns=%d threads=%d scaled=%v)\n",
		group, cfg.patterns(), cfg.threads(), cfg.Scaled)
	cfg.printf("%-10s | %8s %8s %8s %8s | %10s %10s %10s %10s\n", "Circuit",
		"ADP:inf", "ADP:l=1", "ADP:DP", "ADP:DPSA", "t:inf", "t:l=1", "t:DP", "t:DPSA")

	var rows []TableIIRow
	var sumADP [4]float64
	var sumRT [4]time.Duration
	for _, b := range suite {
		lacs := lac.Options{Constants: true}
		var thrs []float64
		if small {
			lacs.SASIMI = true
			thrs = thresholds(metric.MSE, b.Graph.NumPOs())
		} else {
			thrs = thresholds(metric.MSE, b.Graph.NumPOs())[1:2] // median
			thrs[0] = adjustLarge(b.PaperName, thrs[0])
		}
		if cfg.Quick || cfg.MedianOnly {
			thrs = thrs[len(thrs)/2 : len(thrs)/2+1]
		}
		row := TableIIRow{Circuit: b.PaperName}
		runs := []struct {
			flow  core.Flow
			depth int
		}{
			{core.FlowVECBEE, 0},
			{core.FlowVECBEE, 1},
			{core.FlowDP, 0},
			{core.FlowDPSA, 0},
		}
		for i, r := range runs {
			row.ADP[i], row.Runtime[i] = avgOver(b, r.flow, metric.MSE, thrs, lacs, cfg, r.depth)
			sumADP[i] += row.ADP[i]
			sumRT[i] += row.Runtime[i]
		}
		rows = append(rows, row)
		cfg.printf("%-10s | %7.1f%% %7.1f%% %7.1f%% %7.1f%% | %10s %10s %10s %10s\n",
			row.Circuit, 100*row.ADP[0], 100*row.ADP[1], 100*row.ADP[2], 100*row.ADP[3],
			rnd(row.Runtime[0]), rnd(row.Runtime[1]), rnd(row.Runtime[2]), rnd(row.Runtime[3]))
	}
	n := float64(len(rows))
	if n > 0 {
		cfg.printf("%-10s | %7.1f%% %7.1f%% %7.1f%% %7.1f%% | %10s %10s %10s %10s\n", "Avg",
			100*sumADP[0]/n, 100*sumADP[1]/n, 100*sumADP[2]/n, 100*sumADP[3]/n,
			rnd(sumRT[0]/time.Duration(len(rows))), rnd(sumRT[1]/time.Duration(len(rows))),
			rnd(sumRT[2]/time.Duration(len(rows))), rnd(sumRT[3]/time.Duration(len(rows))))
		if sumRT[2] > 0 {
			cfg.printf("speedup DP vs VECBEE(l=∞): %.1f×;  DP vs VECBEE(l=1): %.1f×\n",
				float64(sumRT[0])/float64(sumRT[2]), float64(sumRT[1])/float64(sumRT[2]))
		}
	}
	return rows
}

// TableIIIRow is one circuit's result in the AccALS vs DP-SA comparison.
type TableIIIRow struct {
	Circuit string
	// Indices: 0 = AccALS, 1 = DP-SA.
	ADPER  [2]float64
	RTER   [2]time.Duration
	ADPMED [2]float64
	RTMED  [2]time.Duration
}

// TableIII runs the paper's Table III: AccALS vs DP-SA under ER and MED,
// single-threaded (AccALS does not support multi-threading in the paper).
func TableIII(cfg Config) []TableIIIRow {
	cfg.Threads = 1
	suite := gen.Suite(cfg.Scaled)
	if cfg.Quick {
		suite = quickSubset(suite)
	}
	cfg.printf("TABLE III — AccALS vs DP-SA under ER and MED (single thread, patterns=%d scaled=%v)\n",
		cfg.patterns(), cfg.Scaled)
	cfg.printf("%-10s | %9s %9s %10s %10s | %9s %9s %10s %10s\n", "Circuit",
		"ER:Acc", "ER:DPSA", "t:Acc", "t:DPSA", "MED:Acc", "MED:DPSA", "t:Acc", "t:DPSA")

	var rows []TableIIIRow
	var sum TableIIIRow
	for _, b := range suite {
		lacs := lac.Options{Constants: true}
		if b.Small {
			lacs.SASIMI = true
		}
		row := TableIIIRow{Circuit: b.PaperName}
		for mi, kind := range []metric.Kind{metric.ER, metric.MED} {
			thrs := thresholds(kind, b.Graph.NumPOs())
			if !b.Small {
				thrs = thrs[1:2]
				thrs[0] = adjustLarge(b.PaperName, thrs[0])
			}
			if cfg.Quick || cfg.MedianOnly {
				thrs = thrs[len(thrs)/2 : len(thrs)/2+1]
			}
			for fi, flow := range []core.Flow{core.FlowAccALS, core.FlowDPSA} {
				adp, rt := avgOver(b, flow, kind, thrs, lacs, cfg, 0)
				if mi == 0 {
					row.ADPER[fi], row.RTER[fi] = adp, rt
				} else {
					row.ADPMED[fi], row.RTMED[fi] = adp, rt
				}
			}
		}
		rows = append(rows, row)
		for i := 0; i < 2; i++ {
			sum.ADPER[i] += row.ADPER[i]
			sum.RTER[i] += row.RTER[i]
			sum.ADPMED[i] += row.ADPMED[i]
			sum.RTMED[i] += row.RTMED[i]
		}
		cfg.printf("%-10s | %8.1f%% %8.1f%% %10s %10s | %8.1f%% %8.1f%% %10s %10s\n",
			row.Circuit, 100*row.ADPER[0], 100*row.ADPER[1], rnd(row.RTER[0]), rnd(row.RTER[1]),
			100*row.ADPMED[0], 100*row.ADPMED[1], rnd(row.RTMED[0]), rnd(row.RTMED[1]))
	}
	if n := len(rows); n > 0 {
		cfg.printf("%-10s | %8.1f%% %8.1f%% %10s %10s | %8.1f%% %8.1f%% %10s %10s\n", "Avg",
			100*sum.ADPER[0]/float64(n), 100*sum.ADPER[1]/float64(n),
			rnd(sum.RTER[0]/time.Duration(n)), rnd(sum.RTER[1]/time.Duration(n)),
			100*sum.ADPMED[0]/float64(n), 100*sum.ADPMED[1]/float64(n),
			rnd(sum.RTMED[0]/time.Duration(n)), rnd(sum.RTMED[1]/time.Duration(n)))
		if sum.RTER[1] > 0 && sum.RTMED[1] > 0 {
			cfg.printf("speedup DP-SA vs AccALS: ER %.1f×, MED %.1f×\n",
				float64(sum.RTER[0])/float64(sum.RTER[1]), float64(sum.RTMED[0])/float64(sum.RTMED[1]))
		}
	}
	return rows
}

func quickSubset(suite []gen.Benchmark) []gen.Benchmark {
	keep := map[string]bool{"c880": true, "sm9x8": true, "adder": true, "vecmul8": true, "butterfly": true}
	var out []gen.Benchmark
	for _, b := range suite {
		if keep[b.PaperName] {
			out = append(out, b)
		}
	}
	return out
}

func rnd(d time.Duration) time.Duration { return d.Round(time.Millisecond) }
