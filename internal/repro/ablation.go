package repro

import (
	"time"

	"dpals/internal/aig"
	"dpals/internal/bitvec"
	"dpals/internal/core"
	"dpals/internal/cpm"
	"dpals/internal/cut"
	"dpals/internal/gen"
	"dpals/internal/lac"
	"dpals/internal/metric"
	"dpals/internal/sim"
	"dpals/internal/techmap"
)

// AblationCutUpdate measures the paper's §III-B claim in isolation: the
// cost of repairing disjoint cuts incrementally after a LAC versus
// recomputing them from scratch, averaged over a sequence of constant-LAC
// replacements on the given circuit. It returns (incremental, fresh) total
// times and the average |S_v| (nodes actually recomputed).
func AblationCutUpdate(g *aig.Graph, steps int, seed int64) (inc, fresh time.Duration, avgSv float64) {
	work := g.Sweep()
	cuts := cut.NewSet(work, 1)
	svSum := 0
	done := 0
	for i := 0; i < steps; i++ {
		// Replace a deterministic pseudo-random live AND node by constant 0
		// (seed-stirred stride over the live node list).
		var live []int32
		for w := int32(1); w <= work.MaxVar(); w++ {
			if work.IsAnd(w) {
				live = append(live, w)
			}
		}
		if len(live) == 0 {
			break
		}
		v := live[int(uint64(i)*2654435761+uint64(seed))%len(live)]
		cs := work.ReplaceWithLit(v, aig.False)

		t0 := time.Now()
		sv := cuts.UpdateAfter(cs)
		inc += time.Since(t0)
		svSum += len(sv)

		t1 := time.Now()
		cut.NewSet(work, 1)
		fresh += time.Since(t1)
		done++
	}
	if done > 0 {
		avgSv = float64(svSum) / float64(done)
	}
	return inc, fresh, avgSv
}

// AblationPartialCPM measures §III-C in isolation: building the CPM
// restricted to N(S_cand) for a candidate set of size m versus building
// the full CPM, on one analysis of the given circuit. It returns the two
// times and the closure size |N(S_cand)|.
func AblationPartialCPM(g *aig.Graph, m int, patterns int, seed int64) (partial, full time.Duration, closure int) {
	work := g.Sweep()
	s := sim.New(work, sim.Options{Patterns: patterns, Seed: seed})
	cuts := cut.NewSet(work, 1)

	// Candidate set: the m live AND nodes closest to the inputs (low ids),
	// a deterministic stand-in for the top-M error ranking.
	var targets []int32
	for _, v := range work.Topo() {
		if work.IsAnd(v) {
			targets = append(targets, v)
			if len(targets) == m {
				break
			}
		}
	}
	closure = len(cpm.Closure(cuts, targets))

	t0 := time.Now()
	cpm.BuildDisjoint(work, s, cuts, targets, 1)
	partial = time.Since(t0)

	t1 := time.Now()
	cpm.BuildDisjoint(work, s, cuts, nil, 1)
	full = time.Since(t1)
	return partial, full, closure
}

// AblationMRow is one data point of the candidate-set-size sweep.
type AblationMRow struct {
	M       int
	Runtime time.Duration
	ADP     float64
	Applied int
}

// AblationMSweep runs the DP flow at several fixed M values (N = M/3) on
// one circuit, quantifying the M/runtime/quality trade-off behind §III-D's
// first self-adaption technique.
func AblationMSweep(b gen.Benchmark, ms []int, cfg Config) []AblationMRow {
	thr := thresholds(metric.MSE, b.Graph.NumPOs())[1]
	var rows []AblationMRow
	for _, m := range ms {
		opt := core.DefaultOptions(core.FlowDP, metric.MSE, thr)
		opt.Patterns = cfg.patterns()
		opt.Seed = cfg.seed()
		opt.Threads = cfg.threads()
		opt.LACs = lac.Options{Constants: true}
		opt.M = m
		opt.MaxIters = cfg.CapIters
		res, err := core.Run(b.Graph, opt)
		if err != nil {
			panic("ablation: " + err.Error())
		}
		rows = append(rows, AblationMRow{
			M: m, Runtime: res.Stats.Runtime, Applied: res.Stats.Applied,
			ADP: adpRatio(b.Graph, res.Graph),
		})
		cfg.printf("M=%-4d runtime=%-12v applied=%-4d ADP=%.1f%%\n", m, rnd(res.Stats.Runtime), res.Stats.Applied, 100*rows[len(rows)-1].ADP)
	}
	return rows
}

// AblationPatterns sweeps the Monte-Carlo pattern count for one circuit
// and reports the achieved training error versus an independent
// high-sample validation error, quantifying the sampling accuracy
// trade-off.
type AblationPatternsRow struct {
	Patterns   int
	TrainErr   float64
	ValidErr   float64
	Runtime    time.Duration
	Violated   bool // validation error exceeded the budget
	Threshold  float64
	ADP        float64
	AppliedLAC int
}

// AblationPatternsSweep runs DP-SA at several pattern counts under the
// median MSE threshold and validates each result on 1<<16 fresh samples.
func AblationPatternsSweep(b gen.Benchmark, counts []int, cfg Config) []AblationPatternsRow {
	thr := thresholds(metric.MSE, b.Graph.NumPOs())[1]
	var rows []AblationPatternsRow
	for _, p := range counts {
		opt := core.DefaultOptions(core.FlowDPSA, metric.MSE, thr)
		opt.Patterns = p
		opt.Seed = cfg.seed()
		opt.Threads = cfg.threads()
		opt.LACs = lac.Options{Constants: true}
		opt.MaxIters = cfg.CapIters
		res, err := core.Run(b.Graph, opt)
		if err != nil {
			panic("ablation: " + err.Error())
		}
		valid := measureMSE(b.Graph, res.Graph, 1<<16, cfg.seed()+12345)
		rows = append(rows, AblationPatternsRow{
			Patterns: p, TrainErr: res.Error, ValidErr: valid,
			Runtime: res.Stats.Runtime, Violated: valid > thr,
			Threshold: thr, ADP: adpRatio(b.Graph, res.Graph), AppliedLAC: res.Stats.Applied,
		})
		cfg.printf("patterns=%-6d train=%-10.4g valid=%-10.4g (budget %.4g) runtime=%v\n",
			p, res.Error, valid, thr, rnd(res.Stats.Runtime))
	}
	return rows
}

func measureMSE(orig, approx *aig.Graph, patterns int, seed int64) float64 {
	so := sim.New(orig, sim.Options{Patterns: patterns, Seed: seed})
	sa := sim.New(approx, sim.Options{Patterns: patterns, Seed: seed})
	eo := make([]bitvec.Vec, orig.NumPOs())
	ea := make([]bitvec.Vec, orig.NumPOs())
	for o := range eo {
		eo[o] = bitvec.NewWords(so.Words())
		so.POVal(o, eo[o])
		ea[o] = bitvec.NewWords(sa.Words())
		sa.POVal(o, ea[o])
	}
	return metric.Compute(metric.MSE, metric.UnsignedWeights(orig.NumPOs()), eo, ea, so.Patterns())
}

func adpRatio(orig, approx *aig.Graph) float64 {
	lib := techmap.GenericLibrary()
	return techmap.ADPRatio(techmap.Map(approx, lib), techmap.Map(orig, lib))
}
