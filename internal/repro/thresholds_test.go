package repro

import (
	"math"
	"testing"

	"dpals/internal/metric"
)

func TestThresholds(t *testing.T) {
	// K = 6 outputs → R = 4.
	er := thresholds(metric.ER, 6)
	if er[0] != 0.001 || er[1] != 0.01 || er[2] != 0.02 {
		t.Errorf("ER thresholds %v", er)
	}
	med := thresholds(metric.MED, 6)
	if math.Abs(med[0]-2) > 1e-9 || math.Abs(med[1]-4) > 1e-9 || math.Abs(med[2]-8) > 1e-9 {
		t.Errorf("MED thresholds %v, want {2,4,8}", med)
	}
	mse := thresholds(metric.MSE, 6)
	if math.Abs(mse[1]-16) > 1e-9 {
		t.Errorf("MSE median %v, want 16", mse[1])
	}
	if mse[0] >= mse[1] || mse[1] >= mse[2] {
		t.Errorf("MSE thresholds not increasing: %v", mse)
	}
}

func TestAdjustLarge(t *testing.T) {
	if got := adjustLarge("sqrt", 16); got != 1 {
		t.Errorf("sqrt adjustment: %v", got)
	}
	if got := adjustLarge("log2", 32); got != 2 {
		t.Errorf("log2 adjustment: %v", got)
	}
	if got := adjustLarge("butterfly", 7); got != 7 {
		t.Errorf("butterfly must be unadjusted: %v", got)
	}
}

func TestQuickSubsetStable(t *testing.T) {
	// The quick subset must pick a fixed, documented set of circuits.
	small := 0
	for _, b := range quickSubset(nil) {
		_ = b
		small++
	}
	if small != 0 {
		t.Error("empty input must give empty subset")
	}
}
