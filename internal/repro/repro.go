// Package repro regenerates every table and figure of the paper's
// evaluation section (§IV): Table I (benchmark information), Fig. 4 (the
// candidate-node-set hit-rate experiment motivating the dual phase),
// Table II (VECBEE l=∞ / l=1 vs DP / DP-SA under MSE) and Table III
// (AccALS vs DP-SA under ER and MED). The same entry points back the
// cmd/repro binary and the root-level Go benchmarks.
//
// Absolute numbers differ from the paper (different machine, cell library,
// pattern count and default circuit scale); the comparisons the paper
// makes — who wins, by roughly what factor, and how the gap grows with
// circuit size — are what these harnesses reproduce. EXPERIMENTS.md
// records paper-vs-measured values.
package repro

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"dpals/internal/core"
	"dpals/internal/gen"
	"dpals/internal/lac"
	"dpals/internal/metric"
	"dpals/internal/techmap"
)

// Config controls an experiment run.
type Config struct {
	Out      io.Writer
	Scaled   bool  // scaled-down circuit sizes (default true in benches)
	Quick    bool  // subset of circuits and single thresholds, for smoke runs
	Patterns int   // Monte-Carlo patterns (0: 8192, quick: 2048)
	Threads  int   // 0: GOMAXPROCS (Table II; Table III is single-threaded per the paper)
	Seed     int64 // 0: 1
	// CapIters caps the LACs applied per run on LARGE circuits only
	// (0: unlimited). The paper itself truncates the expensive baselines
	// on its largest circuits (reduced thresholds for sqrt and log2); a
	// symmetric per-method cap keeps runtime ratios and equal-progress ADP
	// comparisons meaningful on a small time budget.
	CapIters int
	// MedianOnly restricts every circuit to the median threshold instead
	// of averaging three thresholds on the small group.
	MedianOnly bool
}

func (c Config) patterns() int {
	if c.Patterns > 0 {
		return c.Patterns
	}
	if c.Quick {
		return 2048
	}
	return 8192
}

func (c Config) threads() int {
	if c.Threads > 0 {
		return c.Threads
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) seed() int64 {
	if c.Seed != 0 {
		return c.Seed
	}
	return 1
}

func (c Config) printf(format string, args ...any) {
	if c.Out != nil {
		fmt.Fprintf(c.Out, format, args...)
	}
}

// thresholds returns the paper's three thresholds for a metric on a
// circuit with K POs: MED {R/2, R, 2R}, MSE {R²/2, R², 2R²},
// ER {0.1%, 1%, 2%}, with R = 2^(K/3).
func thresholds(kind metric.Kind, numPOs int) []float64 {
	R := metric.ReferenceError(numPOs)
	switch kind {
	case metric.ER:
		return []float64{0.001, 0.01, 0.02}
	case metric.MSE:
		return []float64{0.5 * R * R, R * R, 2 * R * R}
	default:
		return []float64{0.5 * R, R, 2 * R}
	}
}

// adjustLarge scales down a large circuit's threshold the way the paper
// adjusts sqrt and log2 ("the baseline method requires an extremely long
// runtime").
func adjustLarge(name string, thr float64) float64 {
	switch name {
	case "sqrt", "log2":
		return thr / 16
	}
	return thr
}

// runOne synthesises one circuit with one flow and returns the ADP ratio
// and runtime.
func runOne(b gen.Benchmark, flow core.Flow, kind metric.Kind, thr float64, lacs lac.Options, cfg Config, depth int) (adp float64, rt time.Duration, applied int) {
	opt := core.DefaultOptions(flow, kind, thr)
	opt.Patterns = cfg.patterns()
	opt.Seed = cfg.seed()
	opt.Threads = cfg.threads()
	opt.LACs = lacs
	opt.DepthLimit = depth
	// The paper's reference error R = 2^(K/3) reads the K outputs as one
	// unsigned binary number; the harness therefore always uses unsigned
	// LSB-first weights (per-circuit signed weights remain available
	// through the public API).
	opt.Weights = nil
	if !b.Small {
		opt.MaxIters = cfg.CapIters
	}
	res, err := core.Run(b.Graph, opt)
	if err != nil {
		panic(fmt.Sprintf("repro: %s/%v: %v", b.PaperName, flow, err))
	}
	lib := techmap.GenericLibrary()
	mo := techmap.Map(b.Graph, lib)
	ma := techmap.Map(res.Graph, lib)
	return techmap.ADPRatio(ma, mo), res.Stats.Runtime, res.Stats.Applied
}

// avgOver runs one flow over several thresholds and averages ADP ratio and
// sums... the paper averages both ADP and runtime over the thresholds.
func avgOver(b gen.Benchmark, flow core.Flow, kind metric.Kind, thrs []float64, lacs lac.Options, cfg Config, depth int) (adp float64, rt time.Duration) {
	for _, thr := range thrs {
		a, r, _ := runOne(b, flow, kind, thr, lacs, cfg, depth)
		adp += a
		rt += r
	}
	return adp / float64(len(thrs)), rt / time.Duration(len(thrs))
}
