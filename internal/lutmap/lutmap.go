// Package lutmap implements K-feasible cut enumeration and LUT covering —
// an FPGA-style alternative quality model to the standard-cell mapper in
// package techmap. ALS results are often reported in LUT counts; this
// mapper provides that view with a classic depth-then-area-flow heuristic
// (priority cuts).
package lutmap

import (
	"fmt"
	"sort"

	"dpals/internal/aig"
)

// Options configures the mapper.
type Options struct {
	K       int // LUT input count (default 6)
	MaxCuts int // priority cuts kept per node (default 8)
}

func (o Options) withDefaults() Options {
	if o.K <= 1 {
		o.K = 6
	}
	if o.MaxCuts <= 0 {
		o.MaxCuts = 8
	}
	return o
}

// Result summarises a covering.
type Result struct {
	LUTs  int
	Depth int
	// Roots lists the nodes implemented as LUT outputs, each with its
	// chosen leaf set.
	Roots map[int32][]int32
}

func (r Result) String() string {
	return fmt.Sprintf("luts=%d depth=%d", r.LUTs, r.Depth)
}

type cut struct {
	leaves []int32 // sorted variable ids
	arr    int32   // arrival time (LUT levels)
	flow   float64 // area flow
}

// dominates reports whether c's leaves are a subset of d's.
func dominates(c, d *cut) bool {
	if len(c.leaves) > len(d.leaves) {
		return false
	}
	i := 0
	for _, l := range d.leaves {
		if i < len(c.leaves) && c.leaves[i] == l {
			i++
		}
	}
	return i == len(c.leaves)
}

// mergeLeaves unions two sorted leaf sets, failing when the result exceeds k.
func mergeLeaves(a, b []int32, k int) ([]int32, bool) {
	out := make([]int32, 0, k)
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		var next int32
		switch {
		case i == len(a):
			next = b[j]
			j++
		case j == len(b):
			next = a[i]
			i++
		case a[i] == b[j]:
			next = a[i]
			i++
			j++
		case a[i] < b[j]:
			next = a[i]
			i++
		default:
			next = b[j]
			j++
		}
		if len(out) == k {
			return nil, false
		}
		out = append(out, next)
	}
	return out, true
}

// Map covers g (swept) with K-input LUTs and returns the covering.
func Map(g *aig.Graph, opt Options) Result {
	opt = opt.withDefaults()
	g = g.Sweep()

	cuts := make([][]cut, g.NumVars())
	bestArr := make([]int32, g.NumVars())
	bestFlow := make([]float64, g.NumVars())
	refs := make([]float64, g.NumVars()) // fanout estimate for area flow

	for _, v := range g.Topo() {
		n := float64(g.NumFanouts(v))
		for _, po := range g.POs() {
			if po.Var() == v {
				n++
			}
		}
		if n < 1 {
			n = 1
		}
		refs[v] = n
	}

	for _, v := range g.Topo() {
		if g.Type(v) != aig.TypeAnd {
			cuts[v] = []cut{{leaves: []int32{v}}}
			continue
		}
		f0, f1 := g.Fanins(v)
		var cand []cut
		for _, c0 := range cuts[f0.Var()] {
			for _, c1 := range cuts[f1.Var()] {
				leaves, ok := mergeLeaves(c0.leaves, c1.leaves, opt.K)
				if !ok {
					continue
				}
				var arr int32
				var flow float64
				for _, l := range leaves {
					if bestArr[l] > arr {
						arr = bestArr[l]
					}
					flow += bestFlow[l]
				}
				cand = append(cand, cut{leaves: leaves, arr: arr + 1, flow: (flow + 1) / refs[v]})
			}
		}
		// Prune: sort by (arrival, flow, size), drop dominated, keep MaxCuts.
		sort.Slice(cand, func(i, j int) bool {
			if cand[i].arr != cand[j].arr {
				return cand[i].arr < cand[j].arr
			}
			if cand[i].flow != cand[j].flow {
				return cand[i].flow < cand[j].flow
			}
			return len(cand[i].leaves) < len(cand[j].leaves)
		})
		var kept []cut
		for i := range cand {
			dom := false
			for k := range kept {
				if dominates(&kept[k], &cand[i]) {
					dom = true
					break
				}
			}
			if !dom {
				kept = append(kept, cand[i])
				if len(kept) == opt.MaxCuts {
					break
				}
			}
		}
		// The fanin cut keeps deep structures coverable.
		kept = append(kept, cut{leaves: sortedPair(f0.Var(), f1.Var()), arr: maxArr(bestArr, f0.Var(), f1.Var()) + 1,
			flow: (bestFlow[f0.Var()] + bestFlow[f1.Var()] + 1) / refs[v]})
		bestArr[v] = kept[0].arr
		bestFlow[v] = kept[0].flow
		// The trivial self-cut lets parents use v as a leaf. It is placed
		// last so the covering (which takes cuts[v][0]) never selects it.
		kept = append(kept, cut{leaves: []int32{v}, arr: bestArr[v], flow: bestFlow[v]})
		cuts[v] = kept
	}

	// Backward covering from the POs.
	res := Result{Roots: map[int32][]int32{}}
	var need []int32
	seen := map[int32]bool{}
	for _, po := range g.POs() {
		v := po.Var()
		if g.Type(v) == aig.TypeAnd && !seen[v] {
			seen[v] = true
			need = append(need, v)
		}
	}
	for len(need) > 0 {
		v := need[len(need)-1]
		need = need[:len(need)-1]
		best := cuts[v][0]
		res.Roots[v] = best.leaves
		for _, l := range best.leaves {
			if g.Type(l) == aig.TypeAnd && !seen[l] {
				seen[l] = true
				need = append(need, l)
			}
		}
	}
	res.LUTs = len(res.Roots)
	// Depth of the cover: LUT levels along chosen cuts.
	depth := map[int32]int{}
	var depthOf func(v int32) int
	depthOf = func(v int32) int {
		if g.Type(v) != aig.TypeAnd {
			return 0
		}
		if d, ok := depth[v]; ok {
			return d
		}
		d := 0
		for _, l := range res.Roots[v] {
			if dl := depthOf(l); dl > d {
				d = dl
			}
		}
		depth[v] = d + 1
		return d + 1
	}
	for _, po := range g.POs() {
		if d := depthOf(po.Var()); d > res.Depth {
			res.Depth = d
		}
	}
	return res
}

func sortedPair(a, b int32) []int32 {
	if a == b {
		return []int32{a}
	}
	if a > b {
		a, b = b, a
	}
	return []int32{a, b}
}

func maxArr(arr []int32, a, b int32) int32 {
	if arr[a] > arr[b] {
		return arr[a]
	}
	return arr[b]
}
