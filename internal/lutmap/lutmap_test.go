package lutmap

import (
	"testing"

	"dpals/internal/aig"
	"dpals/internal/gen"
)

func TestSingleAndIsOneLUT(t *testing.T) {
	g := aig.New("and")
	a, b := g.AddPI("a"), g.AddPI("b")
	g.AddPO(g.And(a, b), "y")
	r := Map(g, Options{K: 4})
	if r.LUTs != 1 || r.Depth != 1 {
		t.Errorf("single AND: %v", r)
	}
}

func TestXorMuxFitOneLUT(t *testing.T) {
	g := aig.New("xm")
	a, b, c := g.AddPI("a"), g.AddPI("b"), g.AddPI("c")
	g.AddPO(g.Xor(a, b), "x")
	g.AddPO(g.Mux(a, b, c), "m")
	r := Map(g, Options{K: 4})
	// XOR (2 inputs) and MUX (3 inputs) each fit one 4-LUT, but they share
	// structure after strashing — allow 2..3 LUTs, depth must be 1.
	if r.Depth != 1 {
		t.Errorf("depth %d, want 1", r.Depth)
	}
	if r.LUTs < 2 || r.LUTs > 3 {
		t.Errorf("LUTs = %d", r.LUTs)
	}
}

func TestCoverIsValid(t *testing.T) {
	for _, g := range []*aig.Graph{gen.Adder(16), gen.MultU(6, 6), gen.ALU(6), gen.Sqrt(12)} {
		for _, k := range []int{3, 4, 6} {
			r := Map(g, Options{K: k})
			if r.LUTs <= 0 || r.LUTs > g.NumAnds() {
				t.Errorf("%s K=%d: %d LUTs vs %d ANDs", g.Name, k, r.LUTs, g.NumAnds())
			}
			sw := g.Sweep()
			// Every root's leaves must be within bound and alive; every PO
			// driver must be a root.
			for v, leaves := range r.Roots {
				if len(leaves) > k {
					t.Errorf("%s K=%d: root %d has %d leaves", g.Name, k, v, len(leaves))
				}
			}
			_ = sw
			if int32(r.Depth) > g.Depth() {
				t.Errorf("%s K=%d: LUT depth %d exceeds AIG depth %d", g.Name, k, r.Depth, g.Depth())
			}
		}
	}
}

func TestLargerKNeverWorse(t *testing.T) {
	g := gen.MultU(8, 8)
	prev := 1 << 30
	for _, k := range []int{2, 3, 4, 5, 6} {
		r := Map(g, Options{K: k})
		if r.LUTs > prev+prev/10 {
			t.Errorf("K=%d: %d LUTs much worse than K-1's %d", k, r.LUTs, prev)
		}
		prev = r.LUTs
	}
}

func TestK2AbsorbsXors(t *testing.T) {
	// A 2-LUT implements any 2-input function, so each 3-AND XOR cone
	// collapses into one LUT: parity(8) = 7 XOR2s = exactly 7 2-LUTs.
	g := gen.Parity(8)
	r := Map(g, Options{K: 2})
	if r.LUTs != 7 {
		t.Errorf("K=2: %d LUTs, want 7", r.LUTs)
	}
}

func TestParityK4(t *testing.T) {
	// A 2-input XOR costs 3 ANDs; a 4-LUT absorbs a 3-input XOR (2 XOR2s,
	// 6 ANDs). Parity(8) = 7 XOR2s = 21 ANDs; a good 4-LUT cover needs
	// about 3 LUTs. Allow some slack for the heuristic.
	g := gen.Parity(8)
	r := Map(g, Options{K: 4})
	if r.LUTs > 5 {
		t.Errorf("parity(8) K=4: %d LUTs, expected ≤ 5", r.LUTs)
	}
	if r.Depth > 3 {
		t.Errorf("parity(8) K=4 depth %d", r.Depth)
	}
}
