package fault

import "testing"

func TestNilPlanNeverFires(t *testing.T) {
	var p *Plan
	for i := 0; i < 3; i++ {
		if p.Fire(SkipResim) {
			t.Fatal("nil plan fired")
		}
	}
	if p.Fired() {
		t.Fatal("nil plan reports fired")
	}
	if p.Opportunities() != 0 {
		t.Fatal("nil plan counts opportunities")
	}
}

func TestFiresExactlyNth(t *testing.T) {
	p := New(FlipDiffBit, 3)
	fired := 0
	for i := 1; i <= 10; i++ {
		if p.Fire(FlipDiffBit) {
			fired++
			if i != 3 {
				t.Fatalf("fired at opportunity %d, want 3", i)
			}
		}
		// Other kinds never consume or trigger this plan.
		if p.Fire(SkipResim) {
			t.Fatal("fired for mismatched kind")
		}
	}
	if fired != 1 {
		t.Fatalf("fired %d times, want exactly 1", fired)
	}
	if !p.Fired() {
		t.Fatal("plan does not report fired")
	}
	if p.Opportunities() != 10 {
		t.Fatalf("opportunities = %d, want 10", p.Opportunities())
	}
}

func TestNthZeroBehavesLikeFirst(t *testing.T) {
	p := New(SkipMetricCommit, 0)
	if !p.Fire(SkipMetricCommit) {
		t.Fatal("Nth=0 did not fire at the first opportunity")
	}
	if p.Fire(SkipMetricCommit) {
		t.Fatal("fired twice")
	}
}

func TestKindsStable(t *testing.T) {
	a, b := Kinds(), Kinds()
	if len(a) != 8 {
		t.Fatalf("want 8 kinds, got %d", len(a))
	}
	seen := map[Kind]bool{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Kinds order not stable")
		}
		if a[i] == None || seen[a[i]] {
			t.Fatalf("invalid or duplicate kind %q", a[i])
		}
		seen[a[i]] = true
	}
}
