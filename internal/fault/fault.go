// Package fault provides deliberate single-fault injection into the
// synthesis engine's bookkeeping. It exists for one purpose: proving that
// the differential-verification harness (internal/oracle, cmd/alscheck)
// detects real engine bugs. A fault plan names one kind of bookkeeping
// mutation and the single opportunity at which to apply it; the engine
// consults the plan at the matching sites (core.Options.Fault) and mutates
// its state exactly once. A campaign then asserts that the oracle
// cross-checks flag the corrupted run — if a seeded fault escapes every
// check, the harness has a blind spot.
//
// Production code never sets a plan; a nil *Plan is a faithful run.
package fault

// Kind names one bookkeeping mutation the engine can self-inject.
type Kind string

// The seeded fault kinds. Each corresponds to a class of real bug the
// incremental engine could have: stale caches, missed invalidation,
// corrupted simulation or propagation state, and untruthful reporting.
const (
	// None disables injection (the zero value of a plan's kind).
	None Kind = ""
	// SkipCPMInvalidate drops one cpm.Cache.Invalidate call after an
	// applied LAC, leaving stale rows live across a phase-2 iteration —
	// the exact bug class the cache's invalidation rule guards against.
	SkipCPMInvalidate Kind = "skip-cpm-invalidate"
	// FlipDiffBit flips one bit of one CPM row's diff vector right after
	// an analysis builds it, corrupting a single (pattern, PO) propagation
	// entry the LAC evaluation folds over.
	FlipDiffBit Kind = "flip-diff-bit"
	// SkipResim drops one incremental resimulation after an applied LAC,
	// leaving every downstream node value (and the metric state folded
	// from it) stale.
	SkipResim Kind = "skip-resim"
	// SkipMetricCommit drops one fold of the applied LAC's PO changes into
	// the metric state, desynchronising the tracked error from the
	// simulation.
	SkipMetricCommit Kind = "skip-metric-commit"
	// FlipSimBit flips one bit of one resimulated node value vector,
	// corrupting the simulation state that both the similarity index and
	// the CPM region simulation read.
	FlipSimBit Kind = "flip-sim-bit"
	// MisreportError perturbs the final Result.Error, modelling a
	// reporting bug that leaves the circuit itself intact.
	MisreportError Kind = "misreport-error"
	// SkipCutWarmUpdate drops one cut.Set.UpdateAfter repair after an
	// applied LAC while still marking the set as in sync with the graph —
	// the exact bug class the cross-round warm start of the comprehensive
	// analysis would silently trust: a later pass warm-starts from stale
	// cuts instead of falling back to a cold rebuild.
	SkipCutWarmUpdate Kind = "skip-cut-warm-update"
	// SkipWCECert skips one SAT certification of the WCE-constrained flow
	// while still recording the checkpoint as certified — the claimed bound
	// in Result.CertifiedWCE is then an unproven estimate. Detectable when
	// the skipped check would have failed: the emitted circuit's true
	// worst-case error exceeds the certified bound the run reports.
	SkipWCECert Kind = "skip-wce-cert"
)

// Kinds returns every injectable fault kind, in a stable order.
func Kinds() []Kind {
	return []Kind{
		SkipCPMInvalidate,
		FlipDiffBit,
		SkipResim,
		SkipMetricCommit,
		FlipSimBit,
		MisreportError,
		SkipCutWarmUpdate,
		SkipWCECert,
	}
}

// Plan schedules a single fault: the Nth opportunity of the matching kind
// (1-based; Nth ≤ 0 behaves like 1) fires, every other opportunity is a
// faithful no-op. A plan is single-use — it belongs to exactly one
// synthesis run; build a fresh one per run.
type Plan struct {
	Kind Kind
	Nth  int

	hits  int
	fired bool
}

// New returns a plan that faults the nth opportunity of kind k.
func New(k Kind, nth int) *Plan { return &Plan{Kind: k, Nth: nth} }

// Fire records one opportunity of kind k and reports whether the engine
// must inject the fault now. A nil plan never fires.
func (p *Plan) Fire(k Kind) bool {
	if p == nil || k != p.Kind {
		return false
	}
	p.hits++
	n := p.Nth
	if n <= 0 {
		n = 1
	}
	if p.hits == n {
		p.fired = true
		return true
	}
	return false
}

// Fired reports whether the plan's fault was injected.
func (p *Plan) Fired() bool { return p != nil && p.fired }

// Opportunities returns how many injection opportunities of the plan's
// kind the run offered (fired or not) — used by campaigns to stop scanning
// Nth values past the last real site.
func (p *Plan) Opportunities() int {
	if p == nil {
		return 0
	}
	return p.hits
}
