package metric

import (
	"math"
	"math/rand"
	"testing"

	"dpals/internal/bitvec"
	"dpals/internal/cpm"
)

func randVecs(rng *rand.Rand, n, words int) []bitvec.Vec {
	out := make([]bitvec.Vec, n)
	for i := range out {
		out[i] = bitvec.NewWords(words)
		for w := range out[i] {
			out[i][w] = rng.Uint64()
		}
	}
	return out
}

func TestWeights(t *testing.T) {
	u := UnsignedWeights(4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if u[i] != want[i] {
			t.Errorf("unsigned[%d] = %v", i, u[i])
		}
	}
	s := TwosComplementWeights(4)
	if s[3] != -8 || s[0] != 1 {
		t.Errorf("twos complement = %v", s)
	}
}

func TestReferenceError(t *testing.T) {
	if got := ReferenceError(3); math.Abs(got-2) > 1e-12 {
		t.Errorf("R(3) = %v, want 2", got)
	}
	if got := ReferenceError(6); math.Abs(got-4) > 1e-12 {
		t.Errorf("R(6) = %v, want 4", got)
	}
}

func TestErrorInitiallyZero(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	exact := randVecs(rng, 5, 2)
	for _, k := range []Kind{ER, MSE, MED, MHD} {
		st := NewState(k, exact, UnsignedWeights(5), 128)
		if st.Error() != 0 {
			t.Errorf("%v initial error = %v", k, st.Error())
		}
	}
}

func TestCommitPOMatchesCompute(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		nPO, words, patterns := 6, 3, 192
		exact := randVecs(rng, nPO, words)
		for _, k := range []Kind{ER, MSE, MED, MHD} {
			st := NewState(k, exact, TwosComplementWeights(nPO), patterns)
			approx := make([]bitvec.Vec, nPO)
			for o := range approx {
				approx[o] = exact[o].Clone()
			}
			// Apply a sequence of random PO perturbations.
			for step := 0; step < 10; step++ {
				o := rng.Intn(nPO)
				nv := approx[o].Clone()
				for b := 0; b < 8; b++ {
					nv.Set(rng.Intn(patterns), rng.Intn(2) == 1)
				}
				approx[o] = nv
				st.CommitPO(o, nv)
				want := Compute(k, TwosComplementWeights(nPO), exact, approx, patterns)
				if math.Abs(st.Error()-want) > 1e-9*(1+math.Abs(want)) {
					t.Fatalf("%v trial %d step %d: incremental %v vs scratch %v", k, trial, step, st.Error(), want)
				}
			}
		}
	}
}

// applyLACToPOs returns the PO words after flipping, for each row PO, the
// patterns in D ∧ P.
func applyLACToPOs(cur []bitvec.Vec, D bitvec.Vec, row *cpm.Row) []bitvec.Vec {
	out := make([]bitvec.Vec, len(cur))
	for o := range cur {
		out[o] = cur[o].Clone()
	}
	for i, o := range row.POs {
		flips := bitvec.NewWords(len(D))
		flips.And(D, row.Diffs[i])
		out[o].XorWith(flips)
	}
	return out
}

func TestEvalLACMatchesCompute(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		nPO, words, patterns := 7, 2, 128
		exact := randVecs(rng, nPO, words)
		weights := UnsignedWeights(nPO)
		for _, k := range []Kind{ER, MSE, MED, MHD} {
			st := NewState(k, exact, weights, patterns)
			approx := make([]bitvec.Vec, nPO)
			for o := range approx {
				approx[o] = exact[o].Clone()
			}
			// Put the state into a nontrivial position first.
			for step := 0; step < 3; step++ {
				o := rng.Intn(nPO)
				nv := approx[o].Clone()
				for b := 0; b < 5; b++ {
					nv.Set(rng.Intn(patterns), rng.Intn(2) == 1)
				}
				approx[o] = nv
				st.CommitPO(o, nv)
			}
			// Evaluate random candidate LACs; each must match the
			// from-scratch metric of the would-be PO words, and must not
			// disturb the state.
			for cand := 0; cand < 10; cand++ {
				D := bitvec.NewWords(words)
				for w := range D {
					D[w] = rng.Uint64() & rng.Uint64() // sparse-ish
				}
				row := &cpm.Row{}
				for o := 0; o < nPO; o++ {
					if rng.Intn(2) == 0 {
						continue
					}
					p := bitvec.NewWords(words)
					for w := range p {
						p[w] = rng.Uint64()
					}
					row.POs = append(row.POs, int32(o))
					row.Diffs = append(row.Diffs, p)
				}
				before := st.Error()
				got := st.EvalLAC(D, row)
				if st.Error() != before {
					t.Fatalf("%v: EvalLAC modified the state", k)
				}
				would := applyLACToPOs(approx, D, row)
				want := Compute(k, weights, exact, would, patterns)
				if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
					t.Fatalf("%v trial %d cand %d: EvalLAC %v vs scratch %v", k, trial, cand, got, want)
				}
				// Re-evaluating must give the same answer (scratch reset).
				if again := st.EvalLAC(D, row); math.Abs(again-got) > 1e-12 {
					t.Fatalf("%v: EvalLAC not idempotent: %v vs %v", k, again, got)
				}
			}
		}
	}
}

// Zero-effect LACs (empty D or empty row) must report the current error.
func TestEvalLACNoEffect(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	exact := randVecs(rng, 3, 2)
	weights := UnsignedWeights(3)
	for _, k := range []Kind{ER, MSE, MED, MHD} {
		st := NewState(k, exact, weights, 128)
		nv := exact[1].Clone()
		nv.Set(5, !nv.Get(5))
		st.CommitPO(1, nv)
		cur := st.Error()
		if got := st.EvalLAC(bitvec.NewWords(2), &cpm.Row{}); got != cur {
			t.Errorf("%v: empty LAC eval = %v, want current %v", k, got, cur)
		}
		D := bitvec.NewWords(2)
		D.SetAll()
		if got := st.EvalLAC(D, &cpm.Row{}); got != cur {
			t.Errorf("%v: empty-row LAC eval = %v, want current %v", k, got, cur)
		}
	}
}

func BenchmarkEvalLAC(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	nPO, words := 32, 128
	exact := randVecs(rng, nPO, words)
	st := NewState(MSE, exact, UnsignedWeights(nPO), words*64)
	D := bitvec.NewWords(words)
	for w := range D {
		D[w] = rng.Uint64() & rng.Uint64() & rng.Uint64()
	}
	row := &cpm.Row{}
	for o := 0; o < nPO; o++ {
		p := bitvec.NewWords(words)
		for w := range p {
			p[w] = rng.Uint64() & rng.Uint64()
		}
		row.POs = append(row.POs, int32(o))
		row.Diffs = append(row.Diffs, p)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.EvalLAC(D, row)
	}
}
