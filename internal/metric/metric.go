// Package metric implements the statistical error metrics of the paper —
// error rate (ER), mean squared error (MSE) and mean error distance (MED) —
// over a set of simulated input patterns.
//
// A State tracks, per pattern, the deviation of the current approximate
// circuit from the exact reference: a signed numeric deviation for MSE/MED
// and a PO-mismatch count for ER. Candidate LACs are evaluated without
// touching the circuit: given the LAC's value-change mask D and the
// target's CPM row, the new error is folded from only the flipped
// (pattern, PO) pairs, which makes a single-LAC estimate exact with respect
// to the sampled patterns — the property the dual-phase framework relies
// on (papers [19], [20]).
package metric

import (
	"fmt"
	"math"
	"math/bits"

	"dpals/internal/bitvec"
	"dpals/internal/cpm"
)

// Kind selects the error metric.
type Kind int

// Supported metrics.
const (
	ER  Kind = iota // error rate: fraction of patterns with any wrong output
	MSE             // mean squared numeric error
	MED             // mean absolute numeric error (error distance)
	MHD             // mean Hamming distance: average number of wrong output bits
	WCE             // worst-case numeric error: max |approx − exact| over patterns
)

func (k Kind) String() string {
	switch k {
	case ER:
		return "ER"
	case MSE:
		return "MSE"
	case MED:
		return "MED"
	case MHD:
		return "MHD"
	case WCE:
		return "WCE"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Numeric reports whether the metric interprets outputs as a weighted
// number (and therefore requires Weights).
func (k Kind) Numeric() bool { return k == MSE || k == MED || k == WCE }

// Weights assigns a numeric weight to each primary output for MSE/MED.
// ER ignores weights.
type Weights []float64

// UnsignedWeights interprets n outputs as an unsigned binary number,
// LSB first: weight of output i is 2^i.
func UnsignedWeights(n int) Weights {
	w := make(Weights, n)
	for i := range w {
		w[i] = math.Ldexp(1, i)
	}
	return w
}

// TwosComplementWeights interprets n outputs as a two's-complement number,
// LSB first: the MSB carries weight −2^(n−1).
func TwosComplementWeights(n int) Weights {
	w := UnsignedWeights(n)
	if n > 0 {
		w[n-1] = -w[n-1]
	}
	return w
}

// ReferenceError returns the paper's reference error R = 2^(K/3) for a
// circuit with K outputs; MED thresholds are multiples of R and MSE
// thresholds multiples of R².
func ReferenceError(k int) float64 { return math.Pow(2, float64(k)/3) }

// MaxDeviation returns the largest value the per-pattern contribution of
// the metric can take for a circuit with numPOs outputs: 1 for ER (a
// pattern either mismatches or not), numPOs for MHD, Σ|w| for MED, and
// (Σ|w|)² for MSE. This is the range that makes Hoeffding's inequality
// applicable to the Monte-Carlo estimate, which is the mean of n
// independent per-pattern contributions bounded in [0, MaxDeviation].
func MaxDeviation(kind Kind, weights Weights, numPOs int) float64 {
	switch kind {
	case ER:
		return 1
	case MHD:
		return float64(numPOs)
	}
	sum := 0.0
	for _, w := range weights {
		sum += math.Abs(w)
	}
	if kind == MSE {
		return sum * sum
	}
	return sum
}

// HoeffdingDelta returns the deviation t such that a mean of n independent
// samples bounded in [0, rang] differs from its expectation by more than t
// with probability at most alpha: t = rang·√(ln(2/alpha)/(2n)). The oracle
// cross-check uses it to bound how far a Monte-Carlo metric estimate may
// legitimately sit from the exhaustively enumerated exact value; a larger
// gap is a miscounting bug, not sampling noise.
func HoeffdingDelta(rang float64, n int, alpha float64) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	return rang * math.Sqrt(math.Log(2/alpha)/(2*float64(n)))
}

// State tracks the error of an evolving approximate circuit against a fixed
// exact reference.
type State struct {
	kind     Kind
	weights  Weights
	patterns int
	words    int

	exact []bitvec.Vec // reference PO words
	cur   []bitvec.Vec // current approximate PO words

	dev  []float64 // per pattern: approx − exact (MSE/MED)
	mism []int32   // per pattern: number of mismatching POs (ER/MHD)

	errSum   float64 // MSE: Σ dev²; MED: Σ |dev|
	errCount int     // ER: patterns with ≥1 mismatching PO
	mismSum  int64   // MHD: Σ mism

	// wceMax caches max |dev| over all patterns for WCE. CommitPO keeps it
	// current (rescanning when a pattern at the max shrinks), so Error stays
	// a pure read and concurrent Evaluators remain safe.
	wceMax   float64
	wceDirty bool

	def *Evaluator // lazily created default evaluator for EvalLAC
}

// Evaluator holds per-worker scratch for candidate evaluation. Multiple
// evaluators over one State may run concurrently as long as the State is
// not mutated (no CommitPO) during evaluation.
type Evaluator struct {
	st      *State
	delta   []float64
	dMism   []int32
	touched []int32
	onStack []bool
}

// NewEvaluator returns an independent evaluation scratch for this state.
func (st *State) NewEvaluator() *Evaluator {
	return &Evaluator{
		st:      st,
		delta:   make([]float64, st.patterns),
		dMism:   make([]int32, st.patterns),
		onStack: make([]bool, st.patterns),
	}
}

// NewState builds the tracking state. exact are the reference PO value
// vectors (one per PO, in PO order); the approximate circuit is assumed to
// start identical to the reference. weights may be nil for ER.
func NewState(kind Kind, exact []bitvec.Vec, weights Weights, patterns int) *State {
	if kind.Numeric() && len(weights) != len(exact) {
		panic("metric: weights must match PO count for numeric metrics")
	}
	words := 0
	if len(exact) > 0 {
		words = len(exact[0])
	}
	st := &State{
		kind:     kind,
		weights:  weights,
		patterns: patterns,
		words:    words,
		exact:    make([]bitvec.Vec, len(exact)),
		cur:      make([]bitvec.Vec, len(exact)),
		dev:      make([]float64, patterns),
		mism:     make([]int32, patterns),
	}
	for i, e := range exact {
		st.exact[i] = e.Clone()
		st.cur[i] = e.Clone()
	}
	return st
}

// Kind returns the tracked metric.
func (st *State) Kind() Kind { return st.kind }

// Patterns returns the number of tracked patterns.
func (st *State) Patterns() int { return st.patterns }

// Error returns the current error of the approximate circuit. For WCE it
// is the sampled maximum deviation — a lower bound on the true worst case,
// which is why the WCE flow pairs it with SAT certification.
func (st *State) Error() float64 {
	x := float64(st.patterns)
	switch st.kind {
	case ER:
		return float64(st.errCount) / x
	case MHD:
		return float64(st.mismSum) / x
	case WCE:
		return st.wceMax
	default:
		return st.errSum / x
	}
}

// flipDelta returns the deviation delta caused by flipping PO o in a
// pattern whose current bit value is curBit.
func (st *State) flipDelta(o int, curBit bool) float64 {
	if curBit {
		return -st.weights[o]
	}
	return st.weights[o]
}

// EvalLAC returns the error the circuit would have after a LAC whose target
// value-change mask is D (patterns where the target node's value flips) and
// whose change propagation row is row. The circuit state is unchanged.
// Row PO indices must be unique — guaranteed for rows built by package cpm,
// whose cut elements partition the reachable POs. For concurrent
// evaluation, use per-worker Evaluators via NewEvaluator.
func (st *State) EvalLAC(D bitvec.Vec, row *cpm.Row) float64 {
	if st.def == nil {
		st.def = st.NewEvaluator()
	}
	return st.def.EvalLAC(D, row)
}

// EvalLAC is the worker-scratch variant of State.EvalLAC.
func (ev *Evaluator) EvalLAC(D bitvec.Vec, row *cpm.Row) float64 {
	return ev.evalFlips(D, nil, 0, row)
}

// EvalLACXor is EvalLAC with the value-change mask supplied unmaterialised:
// the mask is a ⊕ b ⊕ inv, where inv is a word-level complement mask (zero
// or all-ones), so scoring a candidate needs no scratch diff vector at all.
// A nil b stands for the all-zero vector (constant-0 replacement). Padding
// bits that inv turns on past the logical length never contribute: the CPM
// row vectors they are ANDed with are masked.
func (ev *Evaluator) EvalLACXor(a, b bitvec.Vec, inv uint64, row *cpm.Row) float64 {
	return ev.evalFlips(a, b, inv, row)
}

// evalFlips scores the LAC whose value-change mask is a⊕b⊕inv (nil b = zero
// vector). The per-bit scan visits rows in PO order, words ascending, bits
// ascending — the float fold over ev.touched below inherits that insertion
// order, which is what keeps results bit-identical across thread counts.
// The inner loops are specialised per metric kind (the fused "diff-score"
// half of the resimulate→diff→popcount pipeline): MHD folds whole words
// with popcounts and never touches per-pattern scratch, ER counts mismatch
// deltas, MSE/MED accumulate weighted deviations.
func (ev *Evaluator) evalFlips(a, b bitvec.Vec, inv uint64, row *cpm.Row) float64 {
	st := ev.st
	x := float64(st.patterns)
	if st.kind == MHD {
		// Mean Hamming distance is linear in the per-(pattern, PO) flips:
		// a flip on an agreeing bit adds one mismatch, on a disagreeing
		// bit removes one. Both counts come from word-level popcounts, so
		// the whole evaluation is branch-free per word and exact.
		sum := st.mismSum
		for ri, o := range row.POs {
			p := row.Diffs[ri]
			curW, exW := st.cur[o], st.exact[o]
			plus, minus := 0, 0
			for wi := 0; wi < len(a); wi++ {
				w := a[wi]
				if b != nil {
					w ^= b[wi]
				}
				w = (w ^ inv) & p[wi]
				if w == 0 {
					continue
				}
				agree := ^(curW[wi] ^ exW[wi])
				plus += bits.OnesCount64(w & agree)
				minus += bits.OnesCount64(w &^ agree)
			}
			sum += int64(plus - minus)
		}
		return float64(sum) / x
	}
	ev.touched = ev.touched[:0]
	numeric := st.kind.Numeric()
	for ri, o := range row.POs {
		p := row.Diffs[ri]
		if numeric {
			ev.scanDelta(a, b, p, st.cur[o], inv, st.weights[o])
		} else {
			ev.scanMism(a, b, p, st.cur[o], st.exact[o], inv)
		}
	}
	// Fold.
	var out float64
	switch st.kind {
	case ER:
		cnt := st.errCount
		for _, i := range ev.touched {
			was := st.mism[i] > 0
			now := st.mism[i]+ev.dMism[i] > 0
			if was && !now {
				cnt--
			} else if !was && now {
				cnt++
			}
		}
		out = float64(cnt) / x
	case MSE:
		sum := st.errSum
		for _, i := range ev.touched {
			nd := st.dev[i] + ev.delta[i]
			sum += nd*nd - st.dev[i]*st.dev[i]
		}
		out = sum / x
	case MED:
		sum := st.errSum
		for _, i := range ev.touched {
			nd := st.dev[i] + ev.delta[i]
			sum += math.Abs(nd) - math.Abs(st.dev[i])
		}
		out = sum / x
	case WCE:
		// Upper bound on the post-apply sampled max: touched patterns are
		// scored exactly, untouched ones are bounded by the current max.
		out = st.wceMax
		for _, i := range ev.touched {
			if nd := math.Abs(st.dev[i] + ev.delta[i]); nd > out {
				out = nd
			}
		}
	}
	// Reset scratch.
	for _, i := range ev.touched {
		ev.onStack[i] = false
		if numeric {
			ev.delta[i] = 0
		} else {
			ev.dMism[i] = 0
		}
	}
	ev.touched = ev.touched[:0]
	return out
}

// scanMism is the ER inner loop: record the mismatch-count delta of every
// flipped (pattern, PO) bit.
func (ev *Evaluator) scanMism(a, b, p, curW, exW bitvec.Vec, inv uint64) {
	for wi := 0; wi < len(a); wi++ {
		w := a[wi]
		if b != nil {
			w ^= b[wi]
		}
		w = (w ^ inv) & p[wi]
		if w == 0 {
			continue
		}
		base := wi << 6
		agree := ^(curW[wi] ^ exW[wi])
		for w != 0 {
			bit := trailing(w)
			i := base + bit
			if !ev.onStack[i] {
				ev.onStack[i] = true
				ev.touched = append(ev.touched, int32(i))
			}
			if agree>>uint(bit)&1 != 0 {
				ev.dMism[i]++
			} else {
				ev.dMism[i]--
			}
			w &= w - 1
		}
	}
}

// scanDelta is the MSE/MED inner loop: accumulate the signed deviation
// delta (±wo per flip, sign from the current bit) of every flipped bit.
func (ev *Evaluator) scanDelta(a, b, p, curW bitvec.Vec, inv uint64, wo float64) {
	for wi := 0; wi < len(a); wi++ {
		w := a[wi]
		if b != nil {
			w ^= b[wi]
		}
		w = (w ^ inv) & p[wi]
		if w == 0 {
			continue
		}
		base := wi << 6
		cw := curW[wi]
		for w != 0 {
			bit := trailing(w)
			i := base + bit
			if !ev.onStack[i] {
				ev.onStack[i] = true
				ev.touched = append(ev.touched, int32(i))
			}
			if cw>>uint(bit)&1 != 0 {
				ev.delta[i] -= wo
			} else {
				ev.delta[i] += wo
			}
			w &= w - 1
		}
	}
}

func trailing(b uint64) int { return bits.TrailingZeros64(b) }

// CommitPO records that PO o's value vector is now newVal, updating the
// per-pattern state incrementally from the changed bits.
func (st *State) CommitPO(o int, newVal bitvec.Vec) {
	curW := st.cur[o]
	exW := st.exact[o]
	for wi := 0; wi < st.words; wi++ {
		d := curW[wi] ^ newVal[wi]
		if d == 0 {
			continue
		}
		base := wi << 6
		cw, ew := curW[wi], exW[wi]
		for d != 0 {
			bit := trailing(d & -d)
			i := base + bit
			curBit := cw>>uint(bit)&1 != 0
			exBit := ew>>uint(bit)&1 != 0
			if st.kind == ER || st.kind == MHD {
				was := st.mism[i] > 0
				if curBit == exBit {
					st.mism[i]++
					st.mismSum++
				} else {
					st.mism[i]--
					st.mismSum--
				}
				now := st.mism[i] > 0
				if was && !now {
					st.errCount--
				} else if !was && now {
					st.errCount++
				}
			} else {
				old := st.dev[i]
				st.dev[i] += st.flipDelta(int(o), curBit)
				switch st.kind {
				case MSE:
					st.errSum += st.dev[i]*st.dev[i] - old*old
				case WCE:
					if na := math.Abs(st.dev[i]); na >= st.wceMax {
						st.wceMax = na
					} else if math.Abs(old) == st.wceMax {
						st.wceDirty = true
					}
				default:
					st.errSum += math.Abs(st.dev[i]) - math.Abs(old)
				}
			}
			d &= d - 1
		}
		curW[wi] = newVal[wi]
	}
	if st.wceDirty {
		// A pattern that carried the max shrank; rescan. Done here (not
		// lazily in Error) so Error stays read-only under concurrent
		// evaluation.
		st.wceDirty = false
		m := 0.0
		for _, dv := range st.dev {
			if a := math.Abs(dv); a > m {
				m = a
			}
		}
		st.wceMax = m
	}
}

// Compute evaluates the metric from scratch between two full sets of PO
// words — the reference implementation used for validation and tests.
func Compute(kind Kind, weights Weights, exact, approx []bitvec.Vec, patterns int) float64 {
	if len(exact) != len(approx) {
		panic("metric: PO count mismatch")
	}
	x := float64(patterns)
	switch kind {
	case ER:
		cnt := 0
		for i := 0; i < patterns; i++ {
			for o := range exact {
				if exact[o].Get(i) != approx[o].Get(i) {
					cnt++
					break
				}
			}
		}
		return float64(cnt) / x
	case MHD:
		bits := 0
		for o := range exact {
			bits += bitvec.XorCount(exact[o], approx[o])
		}
		return float64(bits) / x
	default:
		sum := 0.0
		maxAbs := 0.0
		for i := 0; i < patterns; i++ {
			dev := 0.0
			for o := range exact {
				e := exact[o].Get(i)
				a := approx[o].Get(i)
				if e != a {
					if a {
						dev += weights[o]
					} else {
						dev -= weights[o]
					}
				}
			}
			switch kind {
			case MSE:
				sum += dev * dev
			case WCE:
				if a := math.Abs(dev); a > maxAbs {
					maxAbs = a
				}
			default:
				sum += math.Abs(dev)
			}
		}
		if kind == WCE {
			return maxAbs
		}
		return sum / x
	}
}
