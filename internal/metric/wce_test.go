package metric

import (
	"math"
	"math/rand"
	"testing"

	"dpals/internal/bitvec"
	"dpals/internal/cpm"
)

// computeWCEBrute derives the sampled worst case directly from the PO
// words as integers — an independent reference for the folded kernels.
func computeWCEBrute(exact, approx []bitvec.Vec, patterns int) float64 {
	worst := 0.0
	for i := 0; i < patterns; i++ {
		var e, a uint64
		for o := range exact {
			if exact[o].Get(i) {
				e |= 1 << uint(o)
			}
			if approx[o].Get(i) {
				a |= 1 << uint(o)
			}
		}
		d := math.Abs(float64(e) - float64(a))
		if d > worst {
			worst = d
		}
	}
	return worst
}

func TestWCEComputeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		nPO, words, patterns := 6, 2, 128
		exact := randVecs(rng, nPO, words)
		approx := randVecs(rng, nPO, words)
		got := Compute(WCE, UnsignedWeights(nPO), exact, approx, patterns)
		want := computeWCEBrute(exact, approx, patterns)
		if got != want {
			t.Fatalf("trial %d: Compute(WCE) = %v, brute force %v", trial, got, want)
		}
	}
}

// CommitPO must keep the incremental maximum exact, including the rescan
// path where the pattern that held the maximum has its deviation reduced.
func TestWCECommitPOMatchesCompute(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 20; trial++ {
		nPO, words, patterns := 6, 3, 192
		exact := randVecs(rng, nPO, words)
		weights := UnsignedWeights(nPO)
		st := NewState(WCE, exact, weights, patterns)
		approx := make([]bitvec.Vec, nPO)
		for o := range approx {
			approx[o] = exact[o].Clone()
		}
		for step := 0; step < 12; step++ {
			o := rng.Intn(nPO)
			nv := approx[o].Clone()
			for b := 0; b < 8; b++ {
				nv.Set(rng.Intn(patterns), rng.Intn(2) == 1)
			}
			approx[o] = nv
			st.CommitPO(o, nv)
			want := Compute(WCE, weights, exact, approx, patterns)
			if got := st.Error(); got != want {
				t.Fatalf("trial %d step %d: incremental WCE %v, scratch %v", trial, step, got, want)
			}
		}
	}
}

// The WCE candidate evaluation is a deliberate over-approximation: it
// never rescans untouched patterns, so it returns an UPPER bound on the
// post-apply sampled maximum — engine acceptance under it can only be
// conservative. It must (a) dominate the true post-apply value, (b) never
// exceed max(current, touched) by construction, and (c) be exact whenever
// the pre-change maximum survives.
func TestWCEEvalLACUpperBound(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	exactEvery := 0
	for trial := 0; trial < 40; trial++ {
		nPO, words, patterns := 6, 2, 128
		exact := randVecs(rng, nPO, words)
		weights := UnsignedWeights(nPO)
		st := NewState(WCE, exact, weights, patterns)
		approx := make([]bitvec.Vec, nPO)
		for o := range approx {
			approx[o] = exact[o].Clone()
		}
		for step := 0; step < 3; step++ {
			o := rng.Intn(nPO)
			nv := approx[o].Clone()
			for b := 0; b < 5; b++ {
				nv.Set(rng.Intn(patterns), rng.Intn(2) == 1)
			}
			approx[o] = nv
			st.CommitPO(o, nv)
		}
		for cand := 0; cand < 10; cand++ {
			D := bitvec.NewWords(words)
			for w := range D {
				D[w] = rng.Uint64() & rng.Uint64()
			}
			row := &cpm.Row{}
			for o := 0; o < nPO; o++ {
				if rng.Intn(2) == 0 {
					continue
				}
				p := bitvec.NewWords(words)
				for w := range p {
					p[w] = rng.Uint64()
				}
				row.POs = append(row.POs, int32(o))
				row.Diffs = append(row.Diffs, p)
			}
			before := st.Error()
			got := st.EvalLAC(D, row)
			if st.Error() != before {
				t.Fatal("EvalLAC modified the state")
			}
			would := applyLACToPOs(approx, D, row)
			truth := Compute(WCE, weights, exact, would, patterns)
			if got < truth {
				t.Fatalf("trial %d cand %d: estimate %v below true post-apply maximum %v — acceptance would overshoot the bound", trial, cand, got, truth)
			}
			if got == truth {
				exactEvery++
			}
			if got < before {
				t.Fatalf("estimate %v below the untouched-pattern floor %v", got, before)
			}
		}
	}
	if exactEvery == 0 {
		t.Fatal("estimate was never exact — the fold is looser than designed")
	}
}
