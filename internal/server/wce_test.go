package server

import (
	"net/http"
	"testing"

	"dpals"
)

func wceJob(t *testing.T, bound uint64) map[string]any {
	return map[string]any{
		"circuit":             circuitAIGER(t, dpals.NewAdder(4)),
		"flow":                "dp",
		"metric":              "wce",
		"wce_bound":           bound,
		"cert_conflict_limit": 100000,
		"patterns":            512,
	}
}

// The server must refuse WCE jobs whose SAT certification budget is
// uncapped: such a call cannot be cancelled cooperatively, so whether the
// job completes or hits its deadline would depend on wall clock — an
// uncacheable, unboundable job.
func TestServerRejectsUncappedWCECert(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	job := wceJob(t, 2)
	delete(job, "cert_conflict_limit")
	code, _ := submit(t, ts, job)
	if code != http.StatusBadRequest {
		t.Fatalf("WCE job without cert_conflict_limit: status %d, want 400", code)
	}
	job["cert_conflict_limit"] = 0
	if code, _ := submit(t, ts, job); code != http.StatusBadRequest {
		t.Fatalf("WCE job with cert_conflict_limit 0: status %d, want 400", code)
	}
	job["cert_conflict_limit"] = -5
	if code, _ := submit(t, ts, job); code != http.StatusBadRequest {
		t.Fatalf("WCE job with negative cert_conflict_limit: status %d, want 400", code)
	}

	// Weighted WCE and wce_bound on another metric are config errors too.
	wj := wceJob(t, 2)
	wj["weights"] = []float64{1, 2, 4, 8, 16}
	if code, _ := submit(t, ts, wj); code != http.StatusBadRequest {
		t.Fatalf("weighted WCE job: status %d, want 400", code)
	}
	ej := smallJob(t, 1)
	ej["wce_bound"] = 3
	if code, _ := submit(t, ts, ej); code != http.StatusBadRequest {
		t.Fatalf("wce_bound on metric er: status %d, want 400", code)
	}
}

// A completed WCE job answers with a certified bound within budget and is
// served from the cache — certified bound included — on resubmission.
func TestServerWCEJobCertifiedAndCached(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, first := submit(t, ts, wceJob(t, 3))
	if code != http.StatusOK {
		t.Fatalf("WCE job: status %d", code)
	}
	if first.Cache != "miss" {
		t.Fatalf("first WCE submission cache = %q, want miss", first.Cache)
	}
	if first.CertifiedWCE > 3 {
		t.Fatalf("certified_wce %d exceeds wce_bound 3", first.CertifiedWCE)
	}
	if first.Applied > 0 && first.CertCalls == 0 {
		t.Fatal("applied LACs but report zero certification calls")
	}
	code, second := submit(t, ts, wceJob(t, 3))
	if code != http.StatusOK || second.Cache != "hit" {
		t.Fatalf("resubmission: status %d cache %q, want 200/hit", code, second.Cache)
	}
	if second.Circuit != first.Circuit || second.CertifiedWCE != first.CertifiedWCE || second.CertCalls != first.CertCalls {
		t.Fatal("cache hit lost or altered the certified WCE result")
	}
}

// Cache-key regression (the satellite): the key must separate jobs that
// differ only in a WCE certification knob — each knob influences the
// result bits, so a shared entry would poison results.
func TestServerWCEOptionsInCacheKey(t *testing.T) {
	c := dpals.NewAdder(4)
	base := dpals.Options{
		Flow:              dpals.DP,
		Metric:            dpals.WCE,
		WCEBound:          2,
		CertConflictLimit: 100000,
		Patterns:          512,
	}
	k0 := cacheKey(c, base)

	bound := base
	bound.WCEBound = 3
	if cacheKey(c, bound) == k0 {
		t.Fatal("cache key ignores WCEBound")
	}
	every := base
	every.CertEvery = 4 // base resolves to the default 8
	if cacheKey(c, every) == k0 {
		t.Fatal("cache key ignores CertEvery")
	}
	limit := base
	limit.CertConflictLimit = 200000
	if cacheKey(c, limit) == k0 {
		t.Fatal("cache key ignores CertConflictLimit")
	}

	// The documented CertEvery default: 0 and 8 resolve identically, so
	// they must share one entry.
	def := base
	def.CertEvery = 8
	if cacheKey(c, def) != k0 {
		t.Fatal("CertEvery 0 and its resolved default 8 produce different keys")
	}

	// For non-WCE metrics the certification knobs are inert and must not
	// fragment the cache.
	er := dpals.Options{Flow: dpals.DP, Metric: dpals.ER, Threshold: 0.05, Patterns: 512}
	erKnob := er
	erKnob.CertEvery = 4
	erKnob.CertConflictLimit = 7
	if cacheKey(c, erKnob) != cacheKey(c, er) {
		t.Fatal("inert certification knobs fragment the cache for non-WCE metrics")
	}
}
