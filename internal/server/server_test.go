package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dpals"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	if cfg.ThreadsPerJob == 0 {
		cfg.ThreadsPerJob = 1
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		s.Drain()
		ts.Close()
	})
	return s, ts
}

func circuitAIGER(t *testing.T, c *dpals.Circuit) string {
	t.Helper()
	var buf bytes.Buffer
	if err := c.WriteAIGER(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// submit POSTs a job and decodes the JSON response; header keys/values
// are optional trailing pairs.
func submit(t *testing.T, ts *httptest.Server, body map[string]any, kv ...string) (int, *JobResponse) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < len(kv); i += 2 {
		req.Header.Set(kv[i], kv[i+1])
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jr JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatalf("decode response (status %d): %v", resp.StatusCode, err)
	}
	return resp.StatusCode, &jr
}

func smallJob(t *testing.T, seed int64) map[string]any {
	return map[string]any{
		"circuit":   circuitAIGER(t, dpals.NewMultiplier(3, 3, false)),
		"flow":      "dp",
		"metric":    "er",
		"threshold": 0.05,
		"patterns":  512,
		"seed":      seed,
	}
}

// A repeat submission must answer from the cache with a byte-identical
// circuit — the tentpole's core contract.
func TestServerCacheHitByteIdentical(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	code, first := submit(t, ts, smallJob(t, 1))
	if code != http.StatusOK {
		t.Fatalf("first submission: status %d", code)
	}
	if first.Cache != "miss" {
		t.Fatalf("first submission cache = %q, want miss", first.Cache)
	}
	if first.StopReason != string(dpals.StopBudget) {
		t.Fatalf("unexpected stop reason %q", first.StopReason)
	}
	code, second := submit(t, ts, smallJob(t, 1))
	if code != http.StatusOK || second.Cache != "hit" {
		t.Fatalf("second submission: status %d cache %q, want 200/hit", code, second.Cache)
	}
	if second.Circuit != first.Circuit {
		t.Fatal("cache hit returned different circuit bytes than the original run")
	}
	if st := s.Stats(); st.Cache.Hits != 1 || st.Cache.Misses < 1 {
		t.Fatalf("cache stats %+v, want 1 hit", st.Cache)
	}

	// no_cache bypasses both lookup and fill.
	job := smallJob(t, 1)
	job["no_cache"] = true
	if _, r := submit(t, ts, job); r.Cache != "bypass" {
		t.Fatalf("no_cache submission cache = %q, want bypass", r.Cache)
	}
}

// Seed 0 is a documented alias for DefaultSeed, so the two must share one
// cache entry; distinct explicit seeds must never collide (the satellite-2
// regression: pre-fix, seed 0 silently aliased with no way for a cache to
// know).
func TestServerSeedResolutionInCacheKey(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, zero := submit(t, ts, smallJob(t, 0))
	_, one := submit(t, ts, smallJob(t, 1))
	if zero.Cache != "miss" || one.Cache != "hit" {
		t.Fatalf("seed 0 then seed 1: cache %q then %q, want miss then hit (documented alias)", zero.Cache, one.Cache)
	}
	if zero.CacheKey != one.CacheKey {
		t.Fatal("seed 0 and DefaultSeed produced different cache keys")
	}
	_, two := submit(t, ts, smallJob(t, 2))
	_, three := submit(t, ts, smallJob(t, 3))
	if two.Cache != "miss" || three.Cache != "miss" {
		t.Fatalf("distinct seeds 2,3: cache %q,%q — a shared entry would poison results", two.Cache, three.Cache)
	}
	if two.CacheKey == three.CacheKey || two.CacheKey == one.CacheKey {
		t.Fatal("distinct explicit seeds share a cache key")
	}
	if two.Circuit == three.Circuit {
		t.Log("note: seeds 2 and 3 happen to produce identical circuits (keys still distinct)")
	}
}

// The server path must be bit-identical to a direct library call with the
// same resolved options.
func TestServerDifferentialVsLibrary(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, resp := submit(t, ts, smallJob(t, 9))
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	res, err := dpals.Approximate(dpals.NewMultiplier(3, 3, false), dpals.Options{
		Flow: dpals.DP, Metric: dpals.ER, Threshold: 0.05,
		Patterns: 512, Seed: 9, Threads: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var direct bytes.Buffer
	if err := res.Circuit.WriteAIGER(&direct); err != nil {
		t.Fatal(err)
	}
	if resp.Circuit != direct.String() {
		t.Fatal("server-path circuit differs from direct dpals.Approximate with the same resolved options")
	}
	if resp.ErrorValue != res.Error || resp.Applied != res.Stats.Applied {
		t.Fatalf("server stats diverge: error %v vs %v, applied %d vs %d",
			resp.ErrorValue, res.Error, resp.Applied, res.Stats.Applied)
	}
}

// A flood from one tenant is rate-limited without starving other tenants.
func TestServerRateLimitIsolatesTenants(t *testing.T) {
	_, ts := newTestServer(t, Config{RatePerSec: 0.0001, Burst: 2})
	flood := smallJob(t, 1)
	codes := make([]int, 0, 4)
	for i := 0; i < 4; i++ {
		code, _ := submit(t, ts, flood, "X-Tenant", "noisy")
		codes = append(codes, code)
	}
	rejected := 0
	for _, c := range codes {
		if c == http.StatusTooManyRequests {
			rejected++
		}
	}
	if rejected != 2 {
		t.Fatalf("flood codes %v: want exactly 2 rejections after burst 2", codes)
	}
	if code, _ := submit(t, ts, smallJob(t, 1), "X-Tenant", "quiet"); code != http.StatusOK {
		t.Fatalf("quiet tenant got %d during noisy tenant's flood", code)
	}
}

// bigJob is sized to run long enough (seconds on one core) that the test
// can observe it mid-flight.
func bigJob(t *testing.T) map[string]any {
	return map[string]any{
		"circuit":   circuitAIGER(t, dpals.NewMultiplier(6, 6, false)),
		"flow":      "dpsa",
		"metric":    "er",
		"threshold": 0.3,
		"patterns":  2048,
		"seed":      1,
	}
}

// A disconnected client's job must be cancelled cooperatively — within
// one analysis wave — freeing the worker.
func TestServerClientDisconnectCancelsJob(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, ProgressEvery: 5 * time.Millisecond})
	body, err := json.Marshal(bigJob(t))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/jobs?stream=sse", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// Wait for the first progress event: proof the engine is running.
	sc := bufio.NewScanner(resp.Body)
	sawProgress := false
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "event: progress") {
			sawProgress = true
			break
		}
	}
	if !sawProgress {
		t.Fatalf("no progress event before stream end (scan err %v)", sc.Err())
	}
	cancel() // client walks away mid-synthesis
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := s.Stats()
		if st.Cancelled == 1 && st.Running == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job not cancelled after disconnect: stats %+v", st)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// Graceful drain answers every accepted job — running or still queued —
// with a valid best-so-far circuit and a truthful stop reason, then
// rejects new work.
func TestServerGracefulDrainReturnsBestSoFar(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, ProgressEvery: 5 * time.Millisecond})

	type outcome struct {
		code int
		resp *JobResponse
	}
	results := make(chan outcome, 2)
	for i := 0; i < 2; i++ { // one runs, one queues behind it
		go func() {
			code, resp := submit(t, ts, bigJob(t))
			results <- outcome{code, resp}
		}()
	}
	deadline := time.Now().Add(30 * time.Second)
	for st := s.Stats(); st.Accepted < 2 || st.Running < 1; st = s.Stats() {
		if time.Now().After(deadline) {
			t.Fatalf("jobs not in flight before drain: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	s.Drain()

	for i := 0; i < 2; i++ {
		out := <-results
		if out.code != http.StatusOK {
			t.Fatalf("drained job %d: status %d", i, out.code)
		}
		if out.resp.StopReason != string(dpals.StopCancelled) {
			t.Fatalf("drained job %d: stop_reason %q, want %q", i, out.resp.StopReason, dpals.StopCancelled)
		}
		// Best-so-far must be a valid, parseable circuit.
		c, err := dpals.ReadAIGER(strings.NewReader(out.resp.Circuit))
		if err != nil {
			t.Fatalf("drained job %d returned unparseable circuit: %v", i, err)
		}
		if c.NumOutputs() != 12 {
			t.Fatalf("drained job %d circuit has %d outputs, want 12", i, c.NumOutputs())
		}
	}
	if code, _ := submit(t, ts, smallJob(t, 1)); code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submission: status %d, want 503", code)
	}
	if st := s.Stats(); !st.Draining || st.Cancelled != 2 {
		t.Fatalf("post-drain stats %+v, want draining with 2 cancelled", st)
	}
}

// Malformed submissions fail fast with client errors, not worker time.
func TestServerRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []map[string]any{
		{"circuit": "not a circuit", "threshold": 0.05},
		{"circuit": circuitAIGER(t, dpals.NewAdder(3)), "threshold": -1.0},
		{"circuit": circuitAIGER(t, dpals.NewAdder(3)), "threshold": 0.05, "flow": "nope"},
		{"circuit": circuitAIGER(t, dpals.NewAdder(3)), "threshold": 0.05, "metric": "nope"},
		{"circuit": circuitAIGER(t, dpals.NewAdder(3)), "threshold": 0.05, "weights": []float64{1}},
	}
	for i, body := range cases {
		if code, _ := submit(t, ts, body); code != http.StatusBadRequest {
			t.Errorf("case %d: status %d, want 400", i, code)
		}
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/jobs: status %d, want 405", resp.StatusCode)
	}
}

func TestServerHealthAndDebugEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, path := range []string{"/healthz", "/statsz", "/debug/obs", "/debug/pprof/"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
	}
}

// SSE submissions deliver progress frames and exactly one result event
// whose circuit matches the non-streaming (cached) answer.
func TestServerSSEStreamsProgressAndResult(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, ProgressEvery: time.Millisecond})
	body, err := json.Marshal(smallJob(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/jobs?stream=sse", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	var event string
	var result *JobResponse
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: ") && event == "result":
			result = new(JobResponse)
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), result); err != nil {
				t.Fatalf("bad result payload: %v", err)
			}
		}
	}
	if result == nil {
		t.Fatalf("stream ended without a result event (scan err %v)", sc.Err())
	}
	if result.StopReason != string(dpals.StopBudget) {
		t.Fatalf("streamed result stop_reason %q", result.StopReason)
	}
	// The same job again, non-streaming: must hit the cache with identical bytes.
	code, again := submit(t, ts, smallJob(t, 4))
	if code != http.StatusOK || again.Cache != "hit" || again.Circuit != result.Circuit {
		t.Fatalf("cached follow-up: status %d cache %q, identical %v",
			code, again.Cache, again.Circuit == result.Circuit)
	}
}

func TestServerStatszShape(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	submit(t, ts, smallJob(t, 1))
	resp, err := ts.Client().Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st ServerStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Accepted != 1 || st.Completed != 1 {
		t.Fatalf("statsz %+v, want 1 accepted/completed", st)
	}
}

var _ = fmt.Sprintf // keep fmt for quick debugging edits
