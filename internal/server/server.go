// Package server implements alsd, the approximate-logic-synthesis job
// daemon: an HTTP/JSON front end over dpals.ApproximateContext with a
// bounded priority worker queue, per-tenant rate limiting, a
// content-addressed result cache keyed on (structural circuit digest,
// resolved options), SSE progress streaming, and graceful drain — every
// in-flight job is cancelled cooperatively and answers with its valid
// best-so-far circuit and a truthful stop_reason.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dpals"
	"dpals/internal/obs"
)

// Config tunes the daemon; zero values select the documented defaults.
type Config struct {
	Workers      int           // synthesis worker pool size (≤0: GOMAXPROCS)
	QueueDepth   int           // max queued jobs before 503 (≤0: 64)
	CacheEntries int           // result cache entry cap (≤0: 1024)
	CacheBytes   int64         // result cache byte cap (≤0: 256 MiB)
	RatePerSec   float64       // per-tenant sustained submissions/s (≤0: unlimited)
	Burst        int           // per-tenant burst allowance (≤0: 8)
	MaxTimeLimit time.Duration // hard cap applied to every job (≤0: 5m)
	MaxBodyBytes int64         // request body cap (≤0: 32 MiB)
	// ThreadsPerJob is the engine thread count per job (≤0: GOMAXPROCS /
	// Workers, min 1). Requests cannot raise it: results are bit-identical
	// for every value, so this is purely a capacity knob.
	ThreadsPerJob int
	ProgressEvery time.Duration // SSE progress cadence (≤0: 100ms)
	Metrics       *obs.Metrics  // served under /debug/obs; nil allocates one
}

// Server owns the worker pool, queue, cache and limiter. Create with New,
// expose Handler() over an http.Server, stop with Drain (idempotent).
type Server struct {
	cfg     Config
	queue   *jobQueue
	cache   *cache
	limiter *rateLimiter
	metrics *obs.Metrics

	drainCtx    context.Context
	cancelDrain context.CancelFunc
	draining    atomic.Bool
	drainOnce   sync.Once
	wg          sync.WaitGroup

	jobSeq        atomic.Uint64
	jobsAccepted  atomic.Int64
	jobsCompleted atomic.Int64
	jobsCancelled atomic.Int64 // engine stopped by disconnect or drain
	jobsFailed    atomic.Int64
	jobsRunning   atomic.Int64
	rejectedRate  atomic.Int64
	rejectedFull  atomic.Int64
}

// New starts cfg.Workers worker goroutines and returns the server.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxTimeLimit <= 0 {
		cfg.MaxTimeLimit = 5 * time.Minute
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 32 << 20
	}
	if cfg.ThreadsPerJob <= 0 {
		cfg.ThreadsPerJob = runtime.GOMAXPROCS(0) / cfg.Workers
		if cfg.ThreadsPerJob < 1 {
			cfg.ThreadsPerJob = 1
		}
	}
	if cfg.ProgressEvery <= 0 {
		cfg.ProgressEvery = 100 * time.Millisecond
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewMetrics()
	}
	s := &Server{
		cfg:     cfg,
		queue:   newJobQueue(cfg.QueueDepth),
		cache:   newCache(cfg.CacheEntries, cfg.CacheBytes),
		limiter: newRateLimiter(cfg.RatePerSec, cfg.Burst),
		metrics: cfg.Metrics,
	}
	s.drainCtx, s.cancelDrain = context.WithCancel(context.Background())
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Drain gracefully stops the server: new submissions are rejected with
// 503, queued and running jobs are cancelled cooperatively — each returns
// its valid best-so-far circuit with stop_reason "cancelled" — and Drain
// returns once every worker has answered its last job. Idempotent.
func (s *Server) Drain() {
	s.drainOnce.Do(func() {
		s.draining.Store(true)
		s.queue.close()
		s.cancelDrain()
		s.wg.Wait()
	})
}

// Handler returns the daemon's HTTP surface:
//
//	POST /v1/jobs        submit a job (add ?stream=sse for live progress)
//	GET  /healthz        liveness + drain state
//	GET  /statsz         queue/cache/job counters as JSON
//	     /debug/obs      observability snapshot (internal/obs)
//	     /debug/pprof/*  runtime profiles
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/jobs", s.handleJobs)
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/statsz", s.handleStats)
	obsHandler := obs.Handler(nil, s.metrics)
	mux.Handle("/debug/obs", obsHandler)
	mux.Handle("/debug/obs/", obsHandler)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j, ok := s.queue.pop()
		if !ok {
			return
		}
		s.runJob(j)
	}
}

// runJob executes one dequeued job on this worker and delivers exactly
// one jobResult on j.done. The job context is the HTTP request context
// joined with the drain context: a client disconnect or a drain cancels
// the engine cooperatively, which still yields a valid best-so-far
// circuit with StopReason = cancelled.
func (s *Server) runJob(j *job) {
	ctx, cancel := context.WithCancel(j.ctx)
	defer cancel()
	stop := context.AfterFunc(s.drainCtx, cancel)
	defer stop()

	if j.progress != nil {
		prog := obs.NewProgressFunc(func(iter, ands int, errv, budget float64) {
			select { // drop events rather than stall the engine
			case j.progress <- progressEvent{Iter: iter, Ands: ands, Error: errv, Budget: budget}:
			default:
			}
		}, s.cfg.ProgressEvery)
		defer prog.Done()
		ctx = obs.WithProgress(ctx, prog)
	}
	ctx = obs.WithMetrics(ctx, s.metrics)

	s.jobsRunning.Add(1)
	defer s.jobsRunning.Add(-1)
	queueWait := time.Since(j.enqueued)
	start := time.Now()
	res, err := dpals.ApproximateContext(ctx, j.circuit, j.opt)
	runTime := time.Since(start)
	if err != nil {
		s.jobsFailed.Add(1)
		j.done <- &jobResult{err: fmt.Errorf("synthesis: %w", err), status: http.StatusUnprocessableEntity}
		return
	}

	var buf bytes.Buffer
	if werr := res.Circuit.WriteAIGER(&buf); werr != nil {
		s.jobsFailed.Add(1)
		j.done <- &jobResult{err: fmt.Errorf("serialise result: %w", werr), status: http.StatusInternalServerError}
		return
	}
	stored := &cachedResult{
		circuit:    buf.Bytes(),
		gates:      res.Circuit.NumGates(),
		errorValue: res.Error,
		areaRatio:  res.AreaRatio,
		delayRatio: res.DelayRatio,
		adpRatio:   res.ADPRatio,
		applied:    res.Stats.Applied,
		stopReason: string(res.Stats.StopReason),

		certifiedWCE: res.Stats.CertifiedWCE,
		certCalls:    res.Stats.CertCalls,
	}
	// Only deterministic completions are content-addressable: a cancelled
	// or deadline-stopped run reflects wall clock and client behaviour,
	// not the cache key.
	cacheState := "bypass"
	if j.key != "" {
		cacheState = "miss"
		if res.Stats.StopReason == dpals.StopBudget || res.Stats.StopReason == dpals.StopMaxIters {
			s.cache.put(j.key, stored)
		}
	}
	if ctx.Err() != nil {
		s.jobsCancelled.Add(1)
	}
	s.jobsCompleted.Add(1)
	j.done <- &jobResult{resp: s.response(j, stored, cacheState, queueWait, runTime)}
}

func (s *Server) response(j *job, res *cachedResult, cacheState string, queueWait, runTime time.Duration) *JobResponse {
	return &JobResponse{
		JobID:      j.id,
		Cache:      cacheState,
		CacheKey:   j.key,
		Circuit:    string(res.circuit),
		Gates:      res.gates,
		ErrorValue: res.errorValue,
		AreaRatio:  res.areaRatio,
		DelayRatio: res.delayRatio,
		ADPRatio:   res.adpRatio,
		Applied:    res.applied,
		StopReason: res.stopReason,

		CertifiedWCE: res.certifiedWCE,
		CertCalls:    res.certCalls,
		QueueMS:      float64(queueWait) / float64(time.Millisecond),
		RunMS:        float64(runTime) / float64(time.Millisecond),
	}
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	var req JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decode request: "+err.Error())
		return
	}
	if !s.limiter.allow(tenantKey(r), time.Now()) {
		s.rejectedRate.Add(1)
		httpError(w, http.StatusTooManyRequests, "rate limit exceeded for tenant")
		return
	}
	circuit, opt, err := parseJob(&req)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	// The server owns capacity decisions: per-job threads are fixed (the
	// engine is bit-identical for every value) and deadlines are capped.
	opt.Threads = s.cfg.ThreadsPerJob
	if opt.TimeLimit <= 0 || opt.TimeLimit > s.cfg.MaxTimeLimit {
		opt.TimeLimit = s.cfg.MaxTimeLimit
	}
	opt = opt.Resolved()

	stream := r.URL.Query().Get("stream") == "sse"
	seq := s.jobSeq.Add(1)
	j := &job{
		id:       fmt.Sprintf("j%06d", seq),
		seq:      seq,
		circuit:  circuit,
		opt:      opt,
		priority: clamp(req.Priority, 0, 9),
		ctx:      r.Context(),
		done:     make(chan *jobResult, 1),
		enqueued: time.Now(),
	}
	if !req.NoCache {
		// The key is computed from the RESOLVED options, so the documented
		// Seed-0 → DefaultSeed alias shares one entry while distinct
		// explicit seeds never collide.
		j.key = cacheKey(circuit, opt)
		if res, ok := s.cache.get(j.key); ok {
			s.writeResult(w, stream, s.response(j, res, "hit", 0, 0), nil)
			return
		}
	}
	if stream {
		j.progress = make(chan progressEvent, 16)
	}

	if err := s.queue.push(j); err != nil {
		if err == errQueueFull {
			s.rejectedFull.Add(1)
			httpError(w, http.StatusServiceUnavailable, "queue full")
		} else {
			httpError(w, http.StatusServiceUnavailable, err.Error())
		}
		return
	}
	s.jobsAccepted.Add(1)

	if stream {
		s.streamJob(w, r, j)
		return
	}
	select {
	case res := <-j.done:
		s.writeResult(w, false, res.resp, res)
	case <-r.Context().Done():
		// Client gone: nothing to write. The worker observes the same
		// cancellation and retires the job with StopReason cancelled.
	}
}

// streamJob answers ?stream=sse: "progress" events at the configured
// cadence, then exactly one "result" (or "error") event.
func (s *Server) streamJob(w http.ResponseWriter, r *http.Request, j *job) {
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-store")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	for {
		select {
		case ev := <-j.progress:
			writeSSE(w, "progress", ev)
			fl.Flush()
		case res := <-j.done:
			if res.err != nil {
				writeSSE(w, "error", map[string]string{"error": res.err.Error()})
			} else {
				writeSSE(w, "result", res.resp)
			}
			fl.Flush()
			return
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) writeResult(w http.ResponseWriter, stream bool, resp *JobResponse, res *jobResult) {
	if res != nil && res.err != nil {
		httpError(w, res.status, res.err.Error())
		return
	}
	if stream {
		fl, ok := w.(http.Flusher)
		if !ok {
			httpError(w, http.StatusInternalServerError, "streaming unsupported")
			return
		}
		h := w.Header()
		h.Set("Content-Type", "text/event-stream")
		h.Set("Cache-Control", "no-store")
		w.WriteHeader(http.StatusOK)
		writeSSE(w, "result", resp)
		fl.Flush()
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(resp)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"ok\":true,\"draining\":%v}\n", s.draining.Load())
}

// ServerStats is the /statsz payload.
type ServerStats struct {
	Accepted     int64      `json:"jobs_accepted"`
	Completed    int64      `json:"jobs_completed"`
	Cancelled    int64      `json:"jobs_cancelled"`
	Failed       int64      `json:"jobs_failed"`
	Running      int64      `json:"jobs_running"`
	QueueDepth   int        `json:"queue_depth"`
	RejectedRate int64      `json:"rejected_rate_limit"`
	RejectedFull int64      `json:"rejected_queue_full"`
	Draining     bool       `json:"draining"`
	Cache        cacheStats `json:"cache"`
}

// Stats snapshots the server counters (also served at /statsz).
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Accepted:     s.jobsAccepted.Load(),
		Completed:    s.jobsCompleted.Load(),
		Cancelled:    s.jobsCancelled.Load(),
		Failed:       s.jobsFailed.Load(),
		Running:      s.jobsRunning.Load(),
		QueueDepth:   s.queue.depth(),
		RejectedRate: s.rejectedRate.Load(),
		RejectedFull: s.rejectedFull.Load(),
		Draining:     s.draining.Load(),
		Cache:        s.cache.stats(),
	}
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(s.Stats())
}

// tenantKey identifies the submitter for rate limiting: the X-Tenant
// header when present, else the remote host.
func tenantKey(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

func httpError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func writeSSE(w http.ResponseWriter, event string, payload any) {
	data, err := json.Marshal(payload)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
