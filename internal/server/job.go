package server

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"strings"
	"time"

	"dpals"
)

// JobRequest is the JSON body of POST /v1/jobs: a circuit plus the
// synthesis constraints. Field semantics mirror dpals.Options; zero
// values select the library defaults via Options.Resolved.
type JobRequest struct {
	// Circuit is the input netlist, ASCII AIGER ("aag") or BLIF text.
	// Format selects the parser: "aiger", "blif", or "" to sniff.
	Circuit string `json:"circuit"`
	Format  string `json:"format,omitempty"`

	Flow      string    `json:"flow,omitempty"`   // conventional|vecbee|accals|dp|dpsa (default dpsa)
	Metric    string    `json:"metric,omitempty"` // er|mse|med|mhd|wce (default er)
	Threshold float64   `json:"threshold"`
	Weights   []float64 `json:"weights,omitempty"`

	// WCE jobs (metric "wce"): WCEBound is the SAT-certified worst-case
	// error budget, CertEvery the certification amortisation interval (0 =
	// default 8), and CertConflictLimit the per-certification SAT conflict
	// cap. The server REQUIRES CertConflictLimit ≥ 1 for WCE jobs: an
	// uncapped certification call cannot be cancelled cooperatively, so
	// whether such a job completes or hits its deadline would depend on
	// wall clock — which would make the result uncacheable and the worker
	// pool unboundable.
	WCEBound          uint64 `json:"wce_bound,omitempty"`
	CertEvery         int    `json:"cert_every,omitempty"`
	CertConflictLimit int64  `json:"cert_conflict_limit,omitempty"`

	Patterns           int       `json:"patterns,omitempty"`
	Seed               int64     `json:"seed,omitempty"`
	Exhaustive         bool      `json:"exhaustive,omitempty"`
	InputProbabilities []float64 `json:"input_probabilities,omitempty"`

	UseConstLACs   bool `json:"use_const_lacs,omitempty"`
	UseSASIMILACs  bool `json:"use_sasimi_lacs,omitempty"`
	MaxLACsPerNode int  `json:"max_lacs_per_node,omitempty"`

	DepthLimit int `json:"depth_limit,omitempty"`
	M          int `json:"m,omitempty"`
	N          int `json:"n,omitempty"`
	MaxIters   int `json:"max_iters,omitempty"`

	// TimeLimitMS bounds the run's wall clock; the server additionally
	// caps it at its own -max-time-limit. Deadline-stopped results are
	// wall-clock dependent, so they are returned but never cached.
	TimeLimitMS int64 `json:"time_limit_ms,omitempty"`

	// Priority orders the queue: higher runs first, FIFO within a level.
	// Clamped to [0, 9].
	Priority int `json:"priority,omitempty"`

	// NoCache bypasses the result cache for this job (both lookup and
	// fill) — for A/B runs and load tests that want cold latencies.
	NoCache bool `json:"no_cache,omitempty"`
}

// JobResponse is the JSON result of a job. Circuit is the approximate
// netlist in ASCII AIGER — byte-identical to what WriteAIGER of a direct
// library call produces, cached or not.
type JobResponse struct {
	JobID    string `json:"job_id"`
	Cache    string `json:"cache"` // "hit", "miss" or "bypass"
	CacheKey string `json:"cache_key"`

	Circuit string `json:"circuit"`
	Gates   int    `json:"gates"`
	// ErrorValue is the achieved error on the training patterns. (The
	// "error" key is reserved for failure payloads, e.g. {"error": "queue
	// full"}, so clients can decode every response into one shape.)
	ErrorValue float64 `json:"error_value"`
	AreaRatio  float64 `json:"area_ratio"`
	DelayRatio float64 `json:"delay_ratio"`
	ADPRatio   float64 `json:"adp_ratio"`
	Applied    int     `json:"applied"`
	StopReason string  `json:"stop_reason"`

	// WCE jobs only: the SAT-certified worst-case error bound of the
	// returned circuit and the number of certification calls spent.
	CertifiedWCE uint64 `json:"certified_wce,omitempty"`
	CertCalls    int    `json:"cert_calls,omitempty"`

	QueueMS float64 `json:"queue_ms"`
	RunMS   float64 `json:"run_ms"`
}

// progressEvent is one SSE "progress" frame.
type progressEvent struct {
	Iter   int     `json:"iter"`
	Ands   int     `json:"ands"`
	Error  float64 `json:"error"`
	Budget float64 `json:"budget"`
}

// job is a parsed, validated, enqueued unit of work.
type job struct {
	id       string
	circuit  *dpals.Circuit
	opt      dpals.Options // resolved
	key      string        // cache key; "" when NoCache
	priority int
	seq      uint64 // FIFO tiebreak within a priority level

	ctx      context.Context // request context: client disconnect cancels
	progress chan progressEvent
	done     chan *jobResult

	enqueued time.Time
}

type jobResult struct {
	resp   *JobResponse
	err    error // job-level failure (not a stop: those return best-so-far)
	status int   // HTTP status for err
}

// parseJob validates a request and builds the runnable job. The returned
// error is client-facing.
func parseJob(req *JobRequest) (*dpals.Circuit, dpals.Options, error) {
	var c *dpals.Circuit
	var err error
	text := req.Circuit
	format := strings.ToLower(strings.TrimSpace(req.Format))
	if format == "" {
		if strings.HasPrefix(strings.TrimSpace(text), "aag ") {
			format = "aiger"
		} else {
			format = "blif"
		}
	}
	switch format {
	case "aiger", "aag":
		c, err = dpals.ReadAIGER(strings.NewReader(text))
	case "blif":
		c, err = dpals.ReadBLIF(strings.NewReader(text))
	default:
		return nil, dpals.Options{}, fmt.Errorf("unknown circuit format %q (want aiger or blif)", req.Format)
	}
	if err != nil {
		return nil, dpals.Options{}, fmt.Errorf("parse %s circuit: %w", format, err)
	}
	if c.NumOutputs() == 0 {
		return nil, dpals.Options{}, fmt.Errorf("circuit has no outputs")
	}

	flow, err := dpals.ParseFlow(req.Flow)
	if err != nil {
		return nil, dpals.Options{}, err
	}
	metric, err := dpals.ParseMetric(req.Metric)
	if err != nil {
		return nil, dpals.Options{}, err
	}
	if req.Threshold < 0 || math.IsNaN(req.Threshold) || math.IsInf(req.Threshold, 0) {
		return nil, dpals.Options{}, fmt.Errorf("threshold %v out of range (want a finite value ≥ 0)", req.Threshold)
	}
	if req.Weights != nil && len(req.Weights) != c.NumOutputs() {
		return nil, dpals.Options{}, fmt.Errorf("%d weights for a %d-output circuit", len(req.Weights), c.NumOutputs())
	}
	if req.Exhaustive && c.NumInputs() > 24 {
		return nil, dpals.Options{}, fmt.Errorf("exhaustive simulation limited to 24 inputs, circuit has %d", c.NumInputs())
	}
	if metric == dpals.WCE {
		if req.Weights != nil {
			return nil, dpals.Options{}, fmt.Errorf("metric wce uses the unsigned LSB-first output interpretation; weights must be omitted")
		}
		if c.NumOutputs() > 62 {
			return nil, dpals.Options{}, fmt.Errorf("metric wce limited to 62 outputs, circuit has %d", c.NumOutputs())
		}
		if req.CertConflictLimit < 1 {
			return nil, dpals.Options{}, fmt.Errorf("metric wce requires cert_conflict_limit ≥ 1: an uncapped SAT certification call cannot be cancelled, so the job could overrun its deadline unboundedly")
		}
	} else if req.WCEBound != 0 {
		return nil, dpals.Options{}, fmt.Errorf("wce_bound requires metric wce")
	}

	opt := dpals.Options{
		Flow:               flow,
		Metric:             metric,
		Threshold:          req.Threshold,
		Weights:            req.Weights,
		WCEBound:           req.WCEBound,
		CertEvery:          req.CertEvery,
		CertConflictLimit:  req.CertConflictLimit,
		Patterns:           req.Patterns,
		Seed:               req.Seed,
		Exhaustive:         req.Exhaustive,
		InputProbabilities: req.InputProbabilities,
		UseConstLACs:       req.UseConstLACs,
		UseSASIMILACs:      req.UseSASIMILACs,
		MaxLACsPerNode:     req.MaxLACsPerNode,
		DepthLimit:         req.DepthLimit,
		M:                  req.M,
		N:                  req.N,
		MaxIters:           req.MaxIters,
		TimeLimit:          time.Duration(req.TimeLimitMS) * time.Millisecond,
	}
	return c, opt, nil
}

// cacheKey derives the content address of a job's result: a SHA-256 over
// the circuit's structural digest, the effective weight vector, and every
// RESOLVED option that influences the result bits. Threads is excluded
// (results are proven bit-identical across thread counts) and TimeLimit
// is excluded (deadline-stopped results are never cached, and a run that
// completes inside its limit is identical to one without it). Resolving
// first is what keeps Seed 0 and Seed DefaultSeed — a documented alias —
// on one cache entry while distinct explicit seeds never collide.
func cacheKey(c *dpals.Circuit, opt dpals.Options) string {
	opt = opt.Resolved()
	h := sha256.New()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	f64 := func(v float64) { u64(math.Float64bits(v)) }

	h.Write([]byte("alsd-key-v2\x00"))
	d := c.Graph().StructuralDigest()
	h.Write(d[:])

	w := opt.Weights
	if w == nil {
		w = c.Weights()
	}
	u64(uint64(len(w)))
	for _, x := range w {
		f64(x)
	}

	u64(uint64(opt.Flow))
	u64(uint64(opt.Metric))
	f64(opt.Threshold)
	// The WCE certification knobs all influence the result bits: the bound
	// is the budget itself, CertEvery moves the certification checkpoints
	// (and therefore which rollback path a violating batch takes), and the
	// conflict cap decides where a budget-exhausted run halts. Keyed even
	// for non-WCE metrics, where Resolved zeroes them.
	u64(opt.WCEBound)
	u64(uint64(opt.CertEvery))
	u64(uint64(opt.CertConflictLimit))
	u64(uint64(opt.Patterns))
	u64(uint64(opt.Seed))
	if opt.Exhaustive {
		u64(1)
	} else {
		u64(0)
	}
	u64(uint64(len(opt.InputProbabilities)))
	for _, p := range opt.InputProbabilities {
		f64(p)
	}
	lacs := uint64(0)
	if opt.UseConstLACs {
		lacs |= 1
	}
	if opt.UseSASIMILACs {
		lacs |= 2
	}
	u64(lacs)
	u64(uint64(opt.MaxLACsPerNode))
	u64(uint64(opt.DepthLimit))
	u64(uint64(opt.M))
	u64(uint64(opt.N))
	u64(uint64(opt.MaxIters))

	return hex.EncodeToString(h.Sum(nil))
}
