package server

import (
	"container/heap"
	"errors"
	"sync"
)

var (
	errQueueFull = errors.New("queue full")
	errDraining  = errors.New("server draining")
)

// jobQueue is a bounded priority queue: higher priority pops first, FIFO
// (by enqueue sequence) within a level. close() stops accepting pushes;
// pops drain the remaining backlog before reporting closed, so every
// accepted job gets an answer during a graceful drain.
type jobQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	heap   jobHeap
	max    int
	closed bool
}

func newJobQueue(max int) *jobQueue {
	if max <= 0 {
		max = 64
	}
	q := &jobQueue{max: max}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *jobQueue) push(j *job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return errDraining
	}
	if len(q.heap) >= q.max {
		return errQueueFull
	}
	heap.Push(&q.heap, j)
	q.cond.Signal()
	return nil
}

// pop blocks until a job is available or the queue is closed AND empty.
func (q *jobQueue) pop() (*job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.heap) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.heap) == 0 {
		return nil, false
	}
	return heap.Pop(&q.heap).(*job), true
}

func (q *jobQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

func (q *jobQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.heap)
}

type jobHeap []*job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority > h[j].priority
	}
	return h[i].seq < h[j].seq
}
func (h jobHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *jobHeap) Push(x any)        { *h = append(*h, x.(*job)) }
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return j
}
