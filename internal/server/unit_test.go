package server

import (
	"testing"
	"time"
)

func TestCacheLRUEviction(t *testing.T) {
	c := newCache(2, 1<<20)
	r := func(tag string) *cachedResult { return &cachedResult{circuit: []byte(tag)} }
	c.put("a", r("a"))
	c.put("b", r("b"))
	if _, ok := c.get("a"); !ok { // refresh a: b is now LRU
		t.Fatal("miss on fresh entry a")
	}
	c.put("c", r("c"))
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived eviction at capacity 2 despite being LRU")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("recently used entry a was evicted")
	}
	if _, ok := c.get("c"); !ok {
		t.Fatal("newest entry c missing")
	}
	st := c.stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 eviction / 2 entries", st)
	}
}

func TestCacheByteCapEviction(t *testing.T) {
	// Each entry costs len(circuit)+128 bytes; cap admits ~2 of these.
	c := newCache(100, 600)
	big := make([]byte, 150)
	c.put("a", &cachedResult{circuit: big})
	c.put("b", &cachedResult{circuit: big})
	c.put("c", &cachedResult{circuit: big})
	st := c.stats()
	if st.Entries != 2 || st.Bytes > 600 {
		t.Fatalf("stats = %+v, want 2 entries within the 600-byte cap", st)
	}
	if _, ok := c.get("a"); ok {
		t.Fatal("oldest entry survived byte-cap eviction")
	}
}

func TestCacheKeepsIncumbentOnDuplicatePut(t *testing.T) {
	c := newCache(4, 1<<20)
	c.put("k", &cachedResult{circuit: []byte("first")})
	c.put("k", &cachedResult{circuit: []byte("second")})
	got, ok := c.get("k")
	if !ok || string(got.circuit) != "first" {
		t.Fatalf("duplicate put replaced the incumbent: %q", got.circuit)
	}
	if st := c.stats(); st.Entries != 1 {
		t.Fatalf("duplicate put grew the cache: %+v", st)
	}
}

func TestQueuePriorityThenFIFO(t *testing.T) {
	q := newJobQueue(8)
	mk := func(prio int, seq uint64) *job { return &job{priority: prio, seq: seq} }
	for _, j := range []*job{mk(0, 1), mk(5, 2), mk(9, 3), mk(5, 4)} {
		if err := q.push(j); err != nil {
			t.Fatal(err)
		}
	}
	want := []struct {
		prio int
		seq  uint64
	}{{9, 3}, {5, 2}, {5, 4}, {0, 1}}
	for i, w := range want {
		j, ok := q.pop()
		if !ok || j.priority != w.prio || j.seq != w.seq {
			t.Fatalf("pop %d = (%d,%d), want (%d,%d)", i, j.priority, j.seq, w.prio, w.seq)
		}
	}
}

func TestQueueBoundsAndDrain(t *testing.T) {
	q := newJobQueue(2)
	if err := q.push(&job{seq: 1}); err != nil {
		t.Fatal(err)
	}
	if err := q.push(&job{seq: 2}); err != nil {
		t.Fatal(err)
	}
	if err := q.push(&job{seq: 3}); err != errQueueFull {
		t.Fatalf("push beyond cap = %v, want errQueueFull", err)
	}
	q.close()
	if err := q.push(&job{seq: 4}); err != errDraining {
		t.Fatalf("push after close = %v, want errDraining", err)
	}
	// A closed queue still drains its backlog before reporting done, so
	// every accepted job is answered during graceful shutdown.
	for i := 0; i < 2; i++ {
		if _, ok := q.pop(); !ok {
			t.Fatalf("pop %d after close lost a queued job", i)
		}
	}
	if _, ok := q.pop(); ok {
		t.Fatal("pop on drained closed queue returned a job")
	}
}

func TestRateLimiterTokenBucket(t *testing.T) {
	l := newRateLimiter(1, 2) // 1/s sustained, burst 2
	now := time.Unix(1000, 0)
	if !l.allow("a", now) || !l.allow("a", now) {
		t.Fatal("burst of 2 rejected")
	}
	if l.allow("a", now) {
		t.Fatal("third immediate request allowed past burst")
	}
	if !l.allow("b", now) {
		t.Fatal("tenant b throttled by tenant a's flood")
	}
	if !l.allow("a", now.Add(1100*time.Millisecond)) {
		t.Fatal("token did not refill after 1.1s at 1/s")
	}
	unlimited := newRateLimiter(0, 0)
	for i := 0; i < 100; i++ {
		if !unlimited.allow("a", now) {
			t.Fatal("disabled limiter rejected a request")
		}
	}
}
