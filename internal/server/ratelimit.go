package server

import (
	"sync"
	"time"
)

// rateLimiter is a per-tenant token bucket: each key sustains `rate`
// submissions per second with a burst allowance. rate ≤ 0 disables
// limiting entirely.
type rateLimiter struct {
	mu      sync.Mutex
	rate    float64
	burst   float64
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newRateLimiter(rate float64, burst int) *rateLimiter {
	if burst <= 0 {
		burst = 8
	}
	return &rateLimiter{
		rate:    rate,
		burst:   float64(burst),
		buckets: make(map[string]*bucket),
	}
}

func (l *rateLimiter) allow(key string, now time.Time) bool {
	if l.rate <= 0 {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.buckets[key]
	if !ok {
		if len(l.buckets) >= 4096 {
			// Shed tenants that have fully refilled; they lose nothing.
			for k, old := range l.buckets {
				if old.tokens+now.Sub(old.last).Seconds()*l.rate >= l.burst {
					delete(l.buckets, k)
				}
			}
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * l.rate
	if b.tokens > l.burst {
		b.tokens = l.burst
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
