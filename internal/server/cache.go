package server

import (
	"container/list"
	"sync"
)

// cachedResult is the memoised outcome of a completed deterministic run.
// Only StopBudget / StopMaxIters results are stored: those are pure
// functions of the cache key, while cancelled or deadline-stopped runs
// depend on wall clock and client behaviour.
type cachedResult struct {
	circuit    []byte // ASCII AIGER of the approximate circuit
	gates      int
	errorValue float64
	areaRatio  float64
	delayRatio float64
	adpRatio   float64
	applied    int
	stopReason string

	certifiedWCE uint64 // SAT-certified worst-case bound (WCE jobs only)
	certCalls    int
}

func (r *cachedResult) size() int64 { return int64(len(r.circuit)) + 128 }

// cache is a content-addressed LRU over cache keys, bounded both by entry
// count and by total bytes of stored circuits.
type cache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	bytes      int64
	order      *list.List // front = most recent
	entries    map[string]*list.Element

	hits, misses, evictions int64
}

type cacheEntry struct {
	key string
	res *cachedResult
}

func newCache(maxEntries int, maxBytes int64) *cache {
	if maxEntries <= 0 {
		maxEntries = 1024
	}
	if maxBytes <= 0 {
		maxBytes = 256 << 20
	}
	return &cache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		order:      list.New(),
		entries:    make(map[string]*list.Element),
	}
}

func (c *cache) get(key string) (*cachedResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.order.MoveToFront(el)
	c.hits++
	return el.Value.(*cacheEntry).res, true
}

func (c *cache) put(key string, res *cachedResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// A concurrent identical job already filled this key; the results
		// are bit-identical by construction, keep the incumbent.
		c.order.MoveToFront(el)
		return
	}
	el := c.order.PushFront(&cacheEntry{key: key, res: res})
	c.entries[key] = el
	c.bytes += res.size()
	for (c.order.Len() > c.maxEntries || c.bytes > c.maxBytes) && c.order.Len() > 1 {
		c.evictOldest()
	}
}

func (c *cache) evictOldest() {
	el := c.order.Back()
	if el == nil {
		return
	}
	ent := el.Value.(*cacheEntry)
	c.order.Remove(el)
	delete(c.entries, ent.key)
	c.bytes -= ent.res.size()
	c.evictions++
}

type cacheStats struct {
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

func (c *cache) stats() cacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheStats{
		Entries:   c.order.Len(),
		Bytes:     c.bytes,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
