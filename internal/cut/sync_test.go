package cut

import (
	"context"
	"math/rand"
	"testing"

	"dpals/internal/aig"
)

// TestSyncTracking pins the InSync contract the engine's warm start relies
// on: a freshly built set is in sync, any graph change desyncs it,
// UpdateAfter restores sync, and ForceSync (the fault hook) claims sync
// without the repair.
func TestSyncTracking(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := randomGraph(rng, 6, 60, 5)
	s := NewSet(g, 1)
	if !s.InSync() {
		t.Fatal("fresh set not in sync")
	}
	var target int32 = -1
	for v := g.MaxVar(); v >= 1; v-- {
		if g.IsAnd(v) {
			target = v
			break
		}
	}
	cs := g.ReplaceWithLit(target, aig.False)
	if s.InSync() {
		t.Fatal("set still claims sync after a graph change")
	}
	s.UpdateAfter(cs)
	if !s.InSync() {
		t.Fatal("set not in sync after UpdateAfter")
	}

	// The fault hook: sync is claimed, the repair is not performed.
	for v := g.MaxVar(); v >= 1; v-- {
		if g.IsAnd(v) {
			target = v
			break
		}
	}
	g.ReplaceWithLit(target, aig.True)
	if s.InSync() {
		t.Fatal("set claims sync after second change")
	}
	s.ForceSync()
	if !s.InSync() {
		t.Fatal("ForceSync did not mark the set in sync")
	}
}

// TestCancelledBuildNotSynced: a build cancelled mid-way must never claim
// sync — the engine uses InSync as "safe to trust as-is".
func TestCancelledBuildNotSynced(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	g := randomGraph(rng, 7, 80, 6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s, err := NewSetCtx(ctx, g, 1)
	if err == nil {
		t.Fatal("pre-cancelled build reported no error")
	}
	if s.InSync() {
		t.Fatal("cancelled build claims sync")
	}
}

// TestFullBuildWorkMatchesFresh is the charged-work contract behind the
// engine's warm-invariant DP-SA work profile: after any legal update
// sequence, FullBuildWork of the incrementally maintained set must equal
// the total work a cold NewSet over the current graph reports — per-node
// recomputation cost depends only on the node's current environment.
func TestFullBuildWorkMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(rng, 7, 80, 6)
		s := NewSet(g, 1)
		if got, want := s.FullBuildWork(), s.Work(); got != want {
			t.Fatalf("trial %d: fresh set FullBuildWork %d != Work %d", trial, got, want)
		}
		for step := 0; step < 8; step++ {
			var cand []int32
			for v := int32(1); v <= g.MaxVar(); v++ {
				if g.IsAnd(v) {
					cand = append(cand, v)
				}
			}
			if len(cand) == 0 {
				break
			}
			v := cand[rng.Intn(len(cand))]
			var repl aig.Lit
			switch rng.Intn(3) {
			case 0:
				repl = aig.False
			case 1:
				repl = aig.MakeLit(g.PIs()[rng.Intn(g.NumPIs())], rng.Intn(2) == 1)
			default:
				var ok []int32
				for _, w := range cand {
					if w != v && !g.InTFO(v, w) {
						ok = append(ok, w)
					}
				}
				if len(ok) == 0 {
					repl = aig.True
				} else {
					repl = aig.MakeLit(ok[rng.Intn(len(ok))], rng.Intn(2) == 1)
				}
			}
			cs := g.ReplaceWithLit(v, repl)
			s.UpdateAfter(cs)
			fresh := NewSet(g, 1)
			if got, want := s.FullBuildWork(), fresh.Work(); got != want {
				t.Fatalf("trial %d step %d: FullBuildWork %d, fresh cold build %d", trial, step, got, want)
			}
		}
	}
}
