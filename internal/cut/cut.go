// Package cut computes the closest disjoint cuts used for efficient change
// propagation matrix construction (SEALS [20], as adopted by the dual-phase
// framework), and updates them incrementally after a local approximate
// change using the cut preservation condition of paper §III-B.
//
// A disjoint cut of node n is a set of one-cuts — one per primary output
// reachable from n — whose transitive fanout cones are pairwise disjoint.
// Primary outputs are modelled as virtual sink elements so that a node
// directly driving a PO has that sink in its cut.
//
// Construction invariant: in any valid disjoint cut, element t covers
// exactly Reach(t), the POs reachable from t. A set of elements is
// therefore a valid disjoint cut iff their Reach sets partition Reach(n)
// and every n→PO path passes the element covering that PO. The builder
// starts from the immediate successors of n and repeatedly raises any two
// elements with overlapping Reach to their own cut elements until all
// Reach sets are pairwise disjoint; the loop terminates because elements
// only move toward the POs.
package cut

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"

	"dpals/internal/aig"
	"dpals/internal/bitvec"
	"dpals/internal/par"
)

// EncodeSink encodes PO index o as a cut element.
func EncodeSink(o int) int32 { return -1 - int32(o) }

// IsSink reports whether a cut element is a virtual PO sink.
func IsSink(e int32) bool { return e < 0 }

// SinkPO returns the PO index of a sink element.
func SinkPO(e int32) int { return int(-1 - e) }

// Set holds the disjoint cuts and PO-reachability bitsets of every live AND
// node of a graph.
type Set struct {
	g       *aig.Graph
	poWords int

	reach []bitvec.Vec // per var: POs reachable; nil when not computed
	cuts  [][]int32    // per var: disjoint cut elements

	// Sync tracking for the cross-round warm start: the set is in sync
	// with the graph iff every structural change since the last full build
	// was repaired by UpdateAfter. synced is recorded alongside the graph
	// version after an uncancelled build and after every repair; any
	// unrepaired graph edit bumps the version and breaks the match.
	synced      bool
	syncVersion uint64

	// scratch
	tmp        bitvec.Vec
	pos        []int32       // UpdateAfter scratch: topo position per var (-1: not live)
	scr        []*cutScratch // per-worker recompute scratch, indexed by par worker id
	reachArena *bitvec.Arena // slab backing for reach bitsets; never reset

	// Stats of the last update.
	LastRecomputed int

	work     int64   // atomic: cumulated work estimate in bitset word operations
	nodeWork []int64 // per var: work of the node's last recompute (see FullBuildWork)
}

// Work returns the cumulated deterministic work estimate of all cut
// (re)computations on this set, in bitset word operations. Unlike wall-clock
// time it is identical between runs regardless of thread count, machine, or
// load; DP-SA's self-adaption profiles the analysis steps with it.
func (s *Set) Work() int64 { return atomic.LoadInt64(&s.work) }

// InSync reports whether the set reflects the graph's current structure:
// true after an uncancelled full build or an UpdateAfter repair, false once
// the graph changed without a matching repair. A comprehensive pass may
// warm-start from an in-sync set instead of rebuilding; an out-of-sync set
// must be rebuilt (the correctness fallback when the incremental repair
// chain was broken, e.g. by a rollback or a cancelled build).
func (s *Set) InSync() bool { return s.synced && s.g.Version() == s.syncVersion }

// markSynced records that the set matches the graph's current structure.
func (s *Set) markSynced() {
	s.synced = true
	s.syncVersion = s.g.Version()
}

// ForceSync marks the set as in sync without repairing it. This is a fault
// injection hook (internal/fault's skip-cut-warm-update): skipping an
// UpdateAfter would normally break the version match and make the next
// warm start fall back to a cold rebuild, masking the seeded bug — forcing
// the sync marker keeps the stale cuts trusted, which is exactly the bug
// class the differential campaign must detect. Never called in production.
func (s *Set) ForceSync() { s.markSynced() }

// FullBuildWork returns the deterministic work estimate a from-scratch
// build of the current graph's cuts would cost, computed as the sum of the
// recorded per-node recompute costs over the live AND nodes. For an
// in-sync set this equals NewSet's work exactly: a node untouched since
// its last recompute has unchanged successors (else it would lie in some
// repaired S_v cone), so recomputing it would repeat the recorded work.
// Warm-started passes charge this figure to the Stats.Work profile so the
// DP-SA self-adaption trajectory is bit-identical to a cold run's.
func (s *Set) FullBuildWork() int64 {
	var w int64
	for _, v := range s.g.Topo() {
		if s.g.IsAnd(v) {
			w += s.nodeWork[v]
		}
	}
	return w
}

// NewSet computes the disjoint cuts of all nodes of g. threads follows the
// pipeline-wide semantics of package par (≤0: all CPUs, 1: serial); the
// result is identical for every thread count.
func NewSet(g *aig.Graph, threads int) *Set {
	s, _ := NewSetCtx(context.Background(), g, threads)
	return s
}

// NewSetCtx is NewSet with cooperative cancellation: the build checks ctx
// at wave boundaries (and per node in serial mode) and stops early once it
// is cancelled, returning the partial set alongside ctx.Err(). A non-nil
// error means the set is incomplete and must be discarded; an uncancelled
// build is bit-identical to NewSet.
func NewSetCtx(ctx context.Context, g *aig.Graph, threads int) (*Set, error) {
	s := &Set{
		g:       g,
		poWords: bitvec.Words(g.NumPOs()),
	}
	if s.poWords > 0 { // a PO-less graph has empty reach bitsets: nothing to back
		s.reachArena = bitvec.NewArena(s.poWords)
	}
	s.grow()
	s.tmp = bitvec.NewWords(s.poWords)
	if par.Workers(threads) <= 1 {
		order := g.Topo()
		rev := make([]int32, 0, len(order))
		for i := len(order) - 1; i >= 0; i-- {
			if v := order[i]; g.IsAnd(v) {
				rev = append(rev, v)
			}
		}
		sc := s.scratchFor(1)[0]
		err := par.ForCtx(ctx, 1, len(rev), func(_, i int) { s.recompute(sc, rev[i]) })
		if err == nil {
			s.markSynced()
		}
		return s, err
	}
	// recompute(v) only reads state of nodes in v's transitive fanout and
	// only writes v's own entries, so the nodes of one reverse-topological
	// level are independent: fan each level out, with a barrier between
	// levels so fanout-side cuts are complete (and visible) before use.
	// Worker ids are stable per goroutine, so each worker owns its scratch.
	scr := s.scratchFor(par.Workers(threads))
	for _, level := range g.ReverseLevels() {
		if err := par.ForEachCtx(ctx, threads, level, func(w int, v int32) { s.recompute(scr[w], v) }); err != nil {
			return s, err
		}
	}
	s.markSynced()
	return s, nil
}

func (s *Set) grow() {
	n := s.g.NumVars()
	if len(s.reach) < n {
		r := make([]bitvec.Vec, n)
		copy(r, s.reach)
		s.reach = r
		c := make([][]int32, n)
		copy(c, s.cuts)
		s.cuts = c
		w := make([]int64, n)
		copy(w, s.nodeWork)
		s.nodeWork = w
	}
}

// Graph returns the underlying graph.
func (s *Set) Graph() *aig.Graph { return s.g }

// POWords returns the number of words in a PO-reachability bitset.
func (s *Set) POWords() int { return s.poWords }

// Cut returns the disjoint cut elements of node v (vars ≥ 0, encoded sinks
// < 0). The slice is owned by the set.
func (s *Set) Cut(v int32) []int32 { return s.cuts[v] }

// Reach returns the PO-reachability bitset of node v. The vector is owned
// by the set and is nil for nodes that reach no PO.
func (s *Set) Reach(v int32) bitvec.Vec { return s.reach[v] }

// reachOf returns the reachability set of a cut element, using scratch sink
// storage for sinks (the returned vector is only valid until the next call
// with a sink).
func (s *Set) reachOf(e int32, scratch bitvec.Vec) bitvec.Vec {
	if IsSink(e) {
		scratch.Clear()
		scratch.Set(SinkPO(e), true)
		return scratch
	}
	return s.reach[e]
}

// elemsIntersect reports whether two cut elements can reach a common PO.
func (s *Set) elemsIntersect(a, b int32) bool {
	switch {
	case IsSink(a) && IsSink(b):
		return a == b
	case IsSink(a):
		return s.reach[b] != nil && s.reach[b].Get(SinkPO(a))
	case IsSink(b):
		return s.reach[a] != nil && s.reach[a].Get(SinkPO(b))
	default:
		if s.reach[a] == nil || s.reach[b] == nil {
			return false
		}
		return s.reach[a].Intersects(s.reach[b])
	}
}

// cutScratch is the per-worker scratch of recompute: a reused element
// buffer plus epoch-stamped dedup marks for node and sink elements. It
// replaces the per-call maps that dominated cut-update allocations; one
// scratch belongs to exactly one par worker at a time.
type cutScratch struct {
	elems    []int32
	varMark  []uint32 // per var, stamped with epoch
	sinkMark []uint32 // per PO index, stamped with epoch
	epoch    uint32
	one      [1]int32 // backing for a sink's single-element expansion
}

// nextEpoch starts a fresh dedup set (growing the mark arrays as needed).
func (sc *cutScratch) nextEpoch(numVars, numPOs int) {
	if len(sc.varMark) < numVars {
		sc.varMark = append(sc.varMark, make([]uint32, numVars*2-len(sc.varMark))...)
	}
	if len(sc.sinkMark) < numPOs {
		sc.sinkMark = append(sc.sinkMark, make([]uint32, numPOs*2-len(sc.sinkMark))...)
	}
	sc.epoch++
	if sc.epoch == 0 { // wrapped: clear and restart
		for i := range sc.varMark {
			sc.varMark[i] = 0
		}
		for i := range sc.sinkMark {
			sc.sinkMark[i] = 0
		}
		sc.epoch = 1
	}
}

// mark records element e in the current epoch and reports whether it was
// already recorded.
func (sc *cutScratch) mark(e int32) bool {
	m := sc.varMark
	i := e
	if IsSink(e) {
		m = sc.sinkMark
		i = int32(SinkPO(e))
	}
	if m[i] == sc.epoch {
		return true
	}
	m[i] = sc.epoch
	return false
}

// scratchFor returns (growing if needed) the first `workers` recompute
// scratches.
func (s *Set) scratchFor(workers int) []*cutScratch {
	for len(s.scr) < workers {
		s.scr = append(s.scr, &cutScratch{})
	}
	return s.scr[:workers]
}

// successors appends the deduplicated immediate successor elements of v —
// live fanout nodes plus sinks for directly driven POs — to sc.elems.
func (s *Set) successors(sc *cutScratch, v int32) []int32 {
	sc.nextEpoch(s.g.NumVars(), s.g.NumPOs())
	elems := sc.elems[:0]
	for _, f := range s.g.Fanouts(v) {
		if !s.g.IsDead(f) && !sc.mark(f) {
			elems = append(elems, f)
		}
	}
	for o, po := range s.g.POs() {
		if po.Var() == v {
			e := EncodeSink(o)
			if !sc.mark(e) {
				elems = append(elems, e)
			}
		}
	}
	return elems
}

// recompute rebuilds reach and cut of node v from its successors, whose
// cuts must already be valid, using sc as worker-private scratch.
func (s *Set) recompute(sc *cutScratch, v int32) {
	elems := s.successors(sc, v)
	// Work accounting: the reach union costs one poWords pass per
	// successor, each conflict-scan pair one Intersects; counted locally
	// and folded in with a single atomic add at the end (a deferred
	// closure would heap-allocate once per call).
	w := int64(1+len(elems)) * int64(s.poWords)

	// Reachability: union over successors.
	if s.reach[v] == nil {
		if s.reachArena != nil {
			s.reach[v] = s.reachArena.Alloc()
		} else {
			s.reach[v] = bitvec.NewWords(s.poWords)
		}
	}
	s.reach[v].Clear() // arena rows hold garbage; always start from zero
	for _, e := range elems {
		if IsSink(e) {
			s.reach[v].Set(SinkPO(e), true)
		} else if s.reach[e] != nil {
			s.reach[v].OrWith(s.reach[e])
		}
	}

	// Drop successors that reach no PO (dangling side branches).
	kept := elems[:0]
	for _, e := range elems {
		if IsSink(e) || (s.reach[e] != nil && !s.reach[e].IsZero()) {
			kept = append(kept, e)
		}
	}
	elems = kept

	// Conflict resolution: raise overlapping elements to their own cuts
	// until all Reach sets are pairwise disjoint.
	for {
		ci, cj := -1, -1
	scan:
		for i := 0; i < len(elems); i++ {
			for j := i + 1; j < len(elems); j++ {
				w += int64(s.poWords)
				if s.elemsIntersect(elems[i], elems[j]) {
					ci, cj = i, j
					break scan
				}
			}
		}
		if ci < 0 {
			break
		}
		ei, ej := elems[ci], elems[cj]
		// Remove both (cj > ci).
		elems = append(elems[:cj], elems[cj+1:]...)
		elems = append(elems[:ci], elems[ci+1:]...)
		sc.nextEpoch(s.g.NumVars(), s.g.NumPOs())
		for _, e := range elems {
			sc.mark(e)
		}
		for _, raised := range [2]int32{ei, ej} {
			src := sc.one[:0]
			if IsSink(raised) {
				src = append(src, raised) // a sink expands to itself
			} else {
				src = s.cuts[raised]
			}
			for _, e := range src {
				if !sc.mark(e) {
					elems = append(elems, e)
				}
			}
		}
	}
	sc.elems = elems[:0]
	s.cuts[v] = append(s.cuts[v][:0], elems...)
	s.nodeWork[v] = w // single writer per node, like cuts[v]
	atomic.AddInt64(&s.work, w)
}

// UpdateAfter incrementally repairs the cut set after a replacement,
// following paper §III-B: S_c is taken from the ChangeSet, the violating
// set S_v is the union of the live transitive fanin cones of S_c, and only
// those nodes are recomputed (in reverse topological order). It returns the
// recomputed node set.
func (s *Set) UpdateAfter(cs aig.ChangeSet) []int32 {
	s.grow()
	for _, r := range cs.Removed {
		s.cuts[r] = nil
		s.reach[r] = nil
	}
	// S_v: TFI cones of the surviving S_c members. Fanins of removed nodes
	// are themselves in FanoutChanged (their fanout lists shrank), so the
	// cones below removed nodes are covered.
	roots := make([]int32, 0, len(cs.FanoutChanged))
	for _, v := range cs.FanoutChanged {
		if !s.g.IsDead(v) {
			roots = append(roots, v)
		}
	}
	cone := s.g.TFICone(roots)
	// Topo positions in a reused flat slice (-1: not in the live order) —
	// this runs once per applied LAC, and the per-call map it replaces
	// dominated the update's allocations.
	if len(s.pos) < s.g.NumVars() {
		s.pos = make([]int32, s.g.NumVars())
	}
	pos := s.pos
	for i := range pos {
		pos[i] = -1
	}
	for i, v := range s.g.Topo() {
		pos[v] = int32(i)
	}
	var sv []int32
	for _, v := range cone {
		if s.g.IsAnd(v) && pos[v] >= 0 {
			sv = append(sv, v)
		}
	}
	sort.Slice(sv, func(i, j int) bool { return pos[sv[i]] > pos[sv[j]] })
	sc := s.scratchFor(1)[0]
	for _, v := range sv {
		s.recompute(sc, v)
	}
	s.LastRecomputed = len(sv)
	s.markSynced()
	return sv
}

// Validate checks every cut for the three defining properties: the element
// Reach sets partition Reach(n); every element is a one-cut (verified by a
// path search that avoids the element); and reachability bitsets are
// consistent with the graph. Intended for tests; cost is O(Y²·E).
func (s *Set) Validate() error {
	g := s.g
	drivers := map[int32][]int{}
	for o, po := range g.POs() {
		drivers[po.Var()] = append(drivers[po.Var()], o)
	}
	for _, v := range g.Topo() {
		if !g.IsAnd(v) {
			continue
		}
		// Reference reachability by DFS.
		ref := bitvec.NewWords(s.poWords)
		stack := []int32{v}
		seen := map[int32]bool{v: true}
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, o := range drivers[x] {
				ref.Set(o, true)
			}
			for _, f := range g.Fanouts(x) {
				if !g.IsDead(f) && !seen[f] {
					seen[f] = true
					stack = append(stack, f)
				}
			}
		}
		if s.reach[v] == nil {
			if !ref.IsZero() {
				return fmt.Errorf("node %d: reach not computed but POs reachable", v)
			}
			continue
		}
		if !s.reach[v].Equal(ref) {
			return fmt.Errorf("node %d: reach mismatch", v)
		}
		// Partition check.
		union := bitvec.NewWords(s.poWords)
		scratch := bitvec.NewWords(s.poWords)
		for _, e := range s.cuts[v] {
			re := s.reachOf(e, scratch)
			if re == nil {
				return fmt.Errorf("node %d: element %d has no reach", v, e)
			}
			if union.Intersects(re) {
				return fmt.Errorf("node %d: cut elements overlap at element %d", v, e)
			}
			union.OrWith(re)
		}
		if !union.Equal(ref) {
			return fmt.Errorf("node %d: cut covers %v, want %v", v, union, ref)
		}
		// One-cut property: for each node element t, no n→PO path for a PO
		// in Reach(t) may avoid t.
		for _, e := range s.cuts[v] {
			if IsSink(e) {
				continue // trivially a one-cut of its own PO
			}
			avoid := e
			reached := bitvec.NewWords(s.poWords)
			stack := []int32{v}
			seen := map[int32]bool{v: true, avoid: true}
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, o := range drivers[x] {
					reached.Set(o, true)
				}
				for _, f := range g.Fanouts(x) {
					if !g.IsDead(f) && !seen[f] {
						seen[f] = true
						stack = append(stack, f)
					}
				}
			}
			if reached.Intersects(s.reach[avoid]) {
				return fmt.Errorf("node %d: element %d is not a one-cut", v, avoid)
			}
		}
	}
	return nil
}
