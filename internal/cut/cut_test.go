package cut

import (
	"math/rand"
	"sort"
	"testing"

	"dpals/internal/aig"
)

// fig2Graph reproduces the structure of the paper's Fig. 2:
//
//	a → b → d → O1
//	a → c ↘
//	b,c → e → O2
//	    e → f(→O3)  (e also feeds O2 directly; f feeds O3)
//
// We model it with AND nodes; the logic functions are irrelevant for cut
// structure, only the edges matter.
func fig2Graph(t *testing.T) (g *aig.Graph, a, b, c, d, e, f int32) {
	g = aig.New("fig2")
	p := g.AddPI("p")
	q := g.AddPI("q")
	r := g.AddPI("r")
	al := g.And(p, q)
	bl := g.And(al, r)
	cl := g.And(al, r.Not())
	dl := g.And(bl, p.Not())
	el := g.And(bl, cl)
	fl := g.And(el, q.Not())
	g.AddPO(dl, "O1")
	g.AddPO(el, "O2")
	g.AddPO(fl, "O3")
	if err := g.Check(); err != nil {
		t.Fatal(err)
	}
	return g, al.Var(), bl.Var(), cl.Var(), dl.Var(), el.Var(), fl.Var()
}

func sortedCut(s *Set, v int32) []int32 {
	c := append([]int32(nil), s.Cut(v)...)
	sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	return c
}

func TestFig2DisjointCut(t *testing.T) {
	g, a, b, c, d, e, _ := fig2Graph(t)
	s := NewSet(g, 1)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Paper: the closest disjoint cut of a is {d, e}: d covers O1, e covers
	// O2 and O3 (b and c conflict — both reach e).
	got := sortedCut(s, a)
	want := []int32{d, e}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("cut(a) = %v, want {d=%d, e=%d}", got, d, e)
	}
	// b reaches O1 (via d) and O2,O3 (via e): cut {d, e} as well.
	gotB := sortedCut(s, b)
	if len(gotB) != 2 || gotB[0] != want[0] || gotB[1] != want[1] {
		t.Errorf("cut(b) = %v, want {d, e}", gotB)
	}
	// c reaches only O2/O3 through e: cut {e}.
	gotC := s.Cut(c)
	if len(gotC) != 1 || gotC[0] != e {
		t.Errorf("cut(c) = %v, want {e}", gotC)
	}
	// e drives O2 directly and feeds f: cut {sink(O2), f}.
	gotE := sortedCut(s, e)
	if len(gotE) != 2 {
		t.Errorf("cut(e) = %v, want sink(O2) and f", gotE)
	}
	hasSink := false
	for _, el := range gotE {
		if IsSink(el) && SinkPO(el) == 1 {
			hasSink = true
		}
	}
	if !hasSink {
		t.Errorf("cut(e) = %v must contain sink(O2)", gotE)
	}
	// Reachability: a reaches all three POs.
	if s.Reach(a).Count() != 3 {
		t.Errorf("reach(a) = %d POs, want 3", s.Reach(a).Count())
	}
}

func TestSingleFanoutCut(t *testing.T) {
	g := aig.New("chain")
	p, q := g.AddPI("p"), g.AddPI("q")
	x := g.And(p, q)
	y := g.And(x, p.Not())
	z := g.And(y, q.Not())
	g.AddPO(z, "o")
	s := NewSet(g, 1)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if c := s.Cut(x.Var()); len(c) != 1 || c[0] != y.Var() {
		t.Errorf("cut(x) = %v, want {y}", c)
	}
	if c := s.Cut(z.Var()); len(c) != 1 || !IsSink(c[0]) || SinkPO(c[0]) != 0 {
		t.Errorf("cut(z) = %v, want {sink(0)}", c)
	}
}

func TestSinkEncoding(t *testing.T) {
	for o := 0; o < 100; o++ {
		e := EncodeSink(o)
		if !IsSink(e) || SinkPO(e) != o {
			t.Fatalf("sink roundtrip failed for %d: e=%d po=%d", o, e, SinkPO(e))
		}
	}
	if IsSink(0) || IsSink(42) {
		t.Error("non-negative elements must not be sinks")
	}
}

// TestIncrementalMatchesFresh replays the paper's Fig. 5 scenario and richer
// random sequences: after every replacement, UpdateAfter must produce
// exactly the cuts a fresh NewSet computes.
func TestIncrementalFig5(t *testing.T) {
	// Fig. 5: node d replaces node c; the cut of nodes a, b, d must update.
	g := aig.New("fig5")
	p, q, r, w := g.AddPI("p"), g.AddPI("q"), g.AddPI("r"), g.AddPI("w")
	al := g.And(p, q)
	bl := g.And(al, r)
	dl := g.And(al, w)
	cl := g.And(bl, dl) // c reads b and d
	fl := g.And(cl, p.Not())
	gl := g.And(bl, fl)
	hl := g.And(dl, w.Not())
	il := g.And(fl, hl)
	g.AddPO(gl, "O1")
	g.AddPO(il, "O2")
	if err := g.Check(); err != nil {
		t.Fatal(err)
	}
	s := NewSet(g, 1)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	cs := g.ReplaceWithLit(cl.Var(), dl)
	s.UpdateAfter(cs)
	if err := s.Validate(); err != nil {
		t.Fatalf("after incremental update: %v", err)
	}
	fresh := NewSet(g, 1)
	for _, v := range g.Topo() {
		if !g.IsAnd(v) {
			continue
		}
		a1, a2 := sortedCut(s, v), sortedCut(fresh, v)
		if len(a1) != len(a2) {
			t.Fatalf("node %d cut mismatch: %v vs %v", v, a1, a2)
		}
		for i := range a1 {
			if a1[i] != a2[i] {
				t.Fatalf("node %d cut mismatch: %v vs %v", v, a1, a2)
			}
		}
	}
}

func randomGraph(rng *rand.Rand, nPIs, nAnds, nPOs int) *aig.Graph {
	g := aig.New("rand")
	var lits []aig.Lit
	for i := 0; i < nPIs; i++ {
		lits = append(lits, g.AddPI(""))
	}
	for i := 0; i < nAnds; i++ {
		a := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 1)
		b := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 1)
		lits = append(lits, g.And(a, b))
	}
	for i := 0; i < nPOs; i++ {
		g.AddPO(lits[len(lits)-1-rng.Intn(min(10, len(lits)))].NotIf(rng.Intn(2) == 1), "")
	}
	return g.Sweep() // remove dangling nodes so every live node reaches a PO
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestIncrementalRemovedMFFCTransitive is a regression for cuts invalidated
// transitively by a removed MFFC: node c's cut contains m, three edges away;
// replacing t with a constant removes MFFC(t) = {t, m, x, y, k}, and the
// incremental update must repair cut(c) even though c is not adjacent to t.
//
//	c = p∧q ── b = c∧r ──┬─ x = b∧¬p ──┐
//	      │              └─ z = b∧q → O2│
//	      └─ k = c∧¬r ──── y = k∧¬q ──┤
//	                                   m = x∧y ── t = m∧r → O1
func TestIncrementalRemovedMFFCTransitive(t *testing.T) {
	g := aig.New("mffc")
	p, q, r := g.AddPI("p"), g.AddPI("q"), g.AddPI("r")
	cl := g.And(p, q)
	bl := g.And(cl, r)
	kl := g.And(cl, r.Not())
	xl := g.And(bl, p.Not())
	yl := g.And(kl, q.Not())
	ml := g.And(xl, yl)
	tl := g.And(ml, r)
	zl := g.And(bl, q)
	g.AddPO(tl, "O1")
	g.AddPO(zl, "O2")
	if err := g.Check(); err != nil {
		t.Fatal(err)
	}
	s := NewSet(g, 1)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Precondition of the scenario: the merge point m is in cut(c) — the
	// element the MFFC removal is about to delete.
	hasM := false
	for _, e := range s.Cut(cl.Var()) {
		if e == ml.Var() {
			hasM = true
		}
	}
	if !hasM {
		t.Fatalf("precondition: cut(c) = %v does not contain m=%d", s.Cut(cl.Var()), ml.Var())
	}

	cs := g.ReplaceWithLit(tl.Var(), aig.False)
	// The MFFC must actually cover the deep interior nodes.
	removed := map[int32]bool{}
	for _, v := range cs.Removed {
		removed[v] = true
	}
	for _, v := range []int32{tl.Var(), ml.Var(), xl.Var(), yl.Var(), kl.Var()} {
		if !removed[v] {
			t.Fatalf("node %d not removed with MFFC(t); removed = %v", v, cs.Removed)
		}
	}
	sv := s.UpdateAfter(cs)
	if err := s.Validate(); err != nil {
		t.Fatalf("after incremental update: %v", err)
	}
	// c must have been repaired (it is in S_v) and match a fresh build.
	inSv := false
	for _, v := range sv {
		if v == cl.Var() {
			inSv = true
		}
	}
	if !inSv {
		t.Fatalf("c=%d not in recomputed set %v", cl.Var(), sv)
	}
	fresh := NewSet(g, 1)
	for _, w := range g.Topo() {
		if !g.IsAnd(w) {
			continue
		}
		a1, a2 := sortedCut(s, w), sortedCut(fresh, w)
		if len(a1) != len(a2) {
			t.Fatalf("node %d cut mismatch: %v vs %v", w, a1, a2)
		}
		for i := range a1 {
			if a1[i] != a2[i] {
				t.Fatalf("node %d cut mismatch: %v vs %v", w, a1, a2)
			}
		}
	}
}

func TestValidateRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 25; trial++ {
		g := randomGraph(rng, 6, 60, 5)
		s := NewSet(g, 1)
		if err := s.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestIncrementalRandomSequences(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 15; trial++ {
		g := randomGraph(rng, 7, 80, 6)
		s := NewSet(g, 1)
		for step := 0; step < 12; step++ {
			var cand []int32
			for v := int32(1); v <= g.MaxVar(); v++ {
				if g.IsAnd(v) {
					cand = append(cand, v)
				}
			}
			if len(cand) == 0 {
				break
			}
			v := cand[rng.Intn(len(cand))]
			// Random legal replacement: a PI, a constant, or a non-TFO node.
			var repl aig.Lit
			switch rng.Intn(3) {
			case 0:
				repl = aig.False
			case 1:
				repl = aig.MakeLit(g.PIs()[rng.Intn(g.NumPIs())], rng.Intn(2) == 1)
			default:
				var ok []int32
				for _, w := range cand {
					if w != v && !g.InTFO(v, w) {
						ok = append(ok, w)
					}
				}
				if len(ok) == 0 {
					repl = aig.True
				} else {
					repl = aig.MakeLit(ok[rng.Intn(len(ok))], rng.Intn(2) == 1)
				}
			}
			cs := g.ReplaceWithLit(v, repl)
			s.UpdateAfter(cs)
			if err := s.Validate(); err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
			// Cross-check against a fresh computation.
			fresh := NewSet(g, 1)
			for _, w := range g.Topo() {
				if !g.IsAnd(w) {
					continue
				}
				a1, a2 := sortedCut(s, w), sortedCut(fresh, w)
				if len(a1) != len(a2) {
					t.Fatalf("trial %d step %d node %d: %v vs %v", trial, step, w, a1, a2)
				}
				for i := range a1 {
					if a1[i] != a2[i] {
						t.Fatalf("trial %d step %d node %d: %v vs %v", trial, step, w, a1, a2)
					}
				}
			}
		}
	}
}

func BenchmarkNewSet(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng, 24, 2000, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewSet(g, 1)
	}
}

func BenchmarkIncrementalUpdate(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	base := randomGraph(rng, 24, 2000, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g := base.Clone()
		s := NewSet(g, 1)
		var v int32 = -1
		for w := g.MaxVar(); w >= 1; w-- {
			if g.IsAnd(w) {
				v = w
				break
			}
		}
		cs := g.ReplaceWithLit(v, aig.False)
		b.StartTimer()
		s.UpdateAfter(cs)
	}
}

// TestNewSetParallelMatchesSerial checks the bit-identity contract of the
// parallel builder: for any thread count the cuts and reachability sets are
// exactly those of the serial pass, element order included.
func TestNewSetParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(rng, 6, 70, 5)
		serial := NewSet(g, 1)
		for _, threads := range []int{2, 8} {
			par := NewSet(g, threads)
			for v := int32(1); v <= g.MaxVar(); v++ {
				if !g.IsAnd(v) {
					continue
				}
				cs, cp := serial.Cut(v), par.Cut(v)
				if len(cs) != len(cp) {
					t.Fatalf("trial %d threads %d node %d: cut %v vs %v", trial, threads, v, cs, cp)
				}
				for i := range cs {
					if cs[i] != cp[i] {
						t.Fatalf("trial %d threads %d node %d: cut %v vs %v", trial, threads, v, cs, cp)
					}
				}
				rs, rp := serial.Reach(v), par.Reach(v)
				if (rs == nil) != (rp == nil) || (rs != nil && !rs.Equal(rp)) {
					t.Fatalf("trial %d threads %d node %d: reach mismatch", trial, threads, v)
				}
			}
			if err := par.Validate(); err != nil {
				t.Fatalf("trial %d threads %d: %v", trial, threads, err)
			}
		}
	}
}
