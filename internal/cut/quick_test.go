package cut

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dpals/internal/aig"
)

// Property: for any random circuit, the computed cut set validates, and it
// still validates after any legal replacement followed by an incremental
// update.
func TestQuickCutsAlwaysValid(t *testing.T) {
	f := func(seed int64, pick, rpick uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 5, 40, 4)
		s := NewSet(g, 1)
		if err := s.Validate(); err != nil {
			t.Logf("initial: %v", err)
			return false
		}
		var ands []int32
		for v := int32(1); v <= g.MaxVar(); v++ {
			if g.IsAnd(v) {
				ands = append(ands, v)
			}
		}
		if len(ands) == 0 {
			return true
		}
		v := ands[int(pick)%len(ands)]
		repl := []aig.Lit{aig.False, aig.True}
		for _, p := range g.PIs() {
			repl = append(repl, aig.MakeLit(p, true))
		}
		for _, w := range ands {
			if w != v && !g.InTFO(v, w) {
				repl = append(repl, aig.MakeLit(w, false))
			}
		}
		l := repl[int(rpick)%len(repl)]
		cs := g.ReplaceWithLit(v, l)
		s.UpdateAfter(cs)
		if err := s.Validate(); err != nil {
			t.Logf("after update: %v", err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: every cut element lies strictly in the transitive fanout of
// its node (sinks aside), and cut sizes never exceed the number of
// reachable POs.
func TestQuickCutElementsInTFO(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 6, 50, 5)
		s := NewSet(g, 1)
		for _, v := range g.Topo() {
			if !g.IsAnd(v) {
				continue
			}
			reach := s.Reach(v)
			if reach == nil {
				continue
			}
			if len(s.Cut(v)) > reach.Count() {
				return false
			}
			for _, e := range s.Cut(v) {
				if IsSink(e) {
					if !reach.Get(SinkPO(e)) {
						return false
					}
					continue
				}
				if e == v || !g.InTFO(v, e) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
