// Package sat implements a compact CDCL SAT solver — conflict-driven
// clause learning with two-watched literals, first-UIP learning, VSIDS-like
// activity ordering, phase saving and geometric restarts. It exists to
// back formal checks on synthesis results (package equiv): combinational
// equivalence and worst-case-error certification of approximate circuits.
package sat

import "sort"

// Lit is a solver literal: variable<<1 | sign (sign 1 = negated).
// Variables are 0-based.
type Lit int32

// MkLit builds a literal.
func MkLit(v int, neg bool) Lit {
	l := Lit(v) << 1
	if neg {
		l |= 1
	}
	return l
}

// Var returns the literal's variable.
func (l Lit) Var() int { return int(l >> 1) }

// Neg reports whether the literal is negated.
func (l Lit) Neg() bool { return l&1 == 1 }

// Not returns the complement.
func (l Lit) Not() Lit { return l ^ 1 }

const (
	valUnassigned int8 = 0
	valTrue       int8 = 1
	valFalse      int8 = -1
)

type clause struct {
	lits    []Lit
	learnt  bool
	act     float64
	deleted bool
}

// Solver is a CDCL SAT solver. Add variables with NewVar, clauses with
// AddClause, then call Solve.
type Solver struct {
	clauses []*clause
	watches [][]*clause // per literal

	assign  []int8 // per var
	level   []int32
	reason  []*clause
	trail   []Lit
	trailLo []int32 // decision-level boundaries in trail
	qhead   int

	activity []float64
	varInc   float64
	order    []int  // decision order scratch
	phase    []bool // saved phases

	ok        bool
	conflicts int64

	// Limits.
	MaxConflicts int64 // 0: unlimited
}

// New returns an empty solver.
func New() *Solver {
	return &Solver{ok: true, varInc: 1}
}

// NewVar adds a variable and returns its index.
func (s *Solver) NewVar() int {
	v := len(s.assign)
	s.assign = append(s.assign, valUnassigned)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, 0)
	s.phase = append(s.phase, false)
	s.watches = append(s.watches, nil, nil)
	return v
}

// NumVars returns the variable count.
func (s *Solver) NumVars() int { return len(s.assign) }

func (s *Solver) litVal(l Lit) int8 {
	v := s.assign[l.Var()]
	if v == valUnassigned {
		return valUnassigned
	}
	if l.Neg() {
		return -v
	}
	return v
}

// AddClause adds a clause; returns false when the formula became trivially
// unsatisfiable.
func (s *Solver) AddClause(lits ...Lit) bool {
	if !s.ok {
		return false
	}
	// Normalise: sort, dedupe, drop tautologies and false literals at
	// level 0.
	sort.Slice(lits, func(i, j int) bool { return lits[i] < lits[j] })
	out := lits[:0]
	var prev Lit = -1
	for _, l := range lits {
		if l == prev {
			continue
		}
		if prev >= 0 && l == prev.Not() && l.Var() == prev.Var() {
			return true // tautology
		}
		switch s.litVal(l) {
		case valTrue:
			if s.level[l.Var()] == 0 {
				return true // already satisfied forever
			}
		case valFalse:
			if s.level[l.Var()] == 0 {
				prev = l
				continue // drop the literal
			}
		}
		out = append(out, l)
		prev = l
	}
	lits = out
	switch len(lits) {
	case 0:
		s.ok = false
		return false
	case 1:
		if !s.enqueue(lits[0], nil) {
			s.ok = false
			return false
		}
		if conf := s.propagate(); conf != nil {
			s.ok = false
			return false
		}
		return true
	}
	c := &clause{lits: append([]Lit(nil), lits...)}
	s.attach(c)
	s.clauses = append(s.clauses, c)
	return true
}

func (s *Solver) attach(c *clause) {
	s.watches[c.lits[0].Not()] = append(s.watches[c.lits[0].Not()], c)
	s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], c)
}

func (s *Solver) decisionLevel() int32 { return int32(len(s.trailLo)) }

func (s *Solver) enqueue(l Lit, from *clause) bool {
	switch s.litVal(l) {
	case valTrue:
		return true
	case valFalse:
		return false
	}
	v := l.Var()
	if l.Neg() {
		s.assign[v] = valFalse
	} else {
		s.assign[v] = valTrue
	}
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.phase[v] = !l.Neg()
	s.trail = append(s.trail, l)
	return true
}

// propagate performs unit propagation; returns a conflicting clause or nil.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		ws := s.watches[p]
		kept := ws[:0]
		for wi := 0; wi < len(ws); wi++ {
			c := ws[wi]
			if c.deleted {
				continue
			}
			// Ensure c.lits[1] is the false literal (p.Not()).
			if c.lits[0] == p.Not() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			if s.litVal(c.lits[0]) == valTrue {
				kept = append(kept, c)
				continue
			}
			// Find a new watch.
			found := false
			for k := 2; k < len(c.lits); k++ {
				if s.litVal(c.lits[k]) != valFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], c)
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Unit or conflict.
			kept = append(kept, c)
			if !s.enqueue(c.lits[0], c) {
				// Conflict: restore remaining watches and report.
				kept = append(kept, ws[wi+1:]...)
				s.watches[p] = kept
				return c
			}
		}
		s.watches[p] = kept
	}
	return nil
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
}

// analyze derives a first-UIP learnt clause from a conflict; returns the
// clause (asserting literal first) and the backtrack level.
func (s *Solver) analyze(conf *clause) ([]Lit, int32) {
	learnt := []Lit{0} // slot for the asserting literal
	seen := make(map[int]bool)
	counter := 0
	var p Lit = -1
	idx := len(s.trail) - 1
	c := conf
	first := true

	for {
		// For reason clauses, lits[0] is the implied literal and is
		// skipped; the conflict clause contributes every literal.
		start := 1
		if first {
			start = 0
			first = false
		}
		for k := start; k < len(c.lits); k++ {
			q := c.lits[k]
			v := q.Var()
			if seen[v] || s.level[v] == 0 {
				continue
			}
			seen[v] = true
			s.bumpVar(v)
			if s.level[v] == s.decisionLevel() {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Walk back the trail to the next marked literal.
		for !seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx].Not()
		v := s.trail[idx].Var()
		c = s.reason[v]
		seen[v] = false
		counter--
		idx--
		if counter == 0 {
			break
		}
	}
	learnt[0] = p
	// Backtrack level: highest level among the other literals; move one
	// literal of that level to position 1 so both watches are sound after
	// backtracking.
	bt := int32(0)
	btIdx := -1
	for i, q := range learnt[1:] {
		if s.level[q.Var()] > bt {
			bt = s.level[q.Var()]
			btIdx = i + 1
		}
	}
	if btIdx > 1 {
		learnt[1], learnt[btIdx] = learnt[btIdx], learnt[1]
	}
	return learnt, bt
}

func (s *Solver) backtrackTo(lvl int32) {
	if s.decisionLevel() <= lvl {
		return
	}
	lo := s.trailLo[lvl]
	for i := len(s.trail) - 1; i >= int(lo); i-- {
		v := s.trail[i].Var()
		s.assign[v] = valUnassigned
		s.reason[v] = nil
	}
	s.trail = s.trail[:lo]
	s.trailLo = s.trailLo[:lvl]
	s.qhead = len(s.trail)
}

func (s *Solver) pickBranch() Lit {
	best, bestAct := -1, -1.0
	for v := 0; v < len(s.assign); v++ {
		if s.assign[v] == valUnassigned && s.activity[v] > bestAct {
			best, bestAct = v, s.activity[v]
		}
	}
	if best < 0 {
		return -1
	}
	return MkLit(best, !s.phase[best])
}

// Status is the solve outcome.
type Status int

// Outcomes.
const (
	Unsat Status = iota
	Sat
	Unknown // conflict limit reached
)

// Solve runs the solver under the optional assumptions and returns the
// status. After Sat, Model reports variable values.
func (s *Solver) Solve(assumptions ...Lit) Status {
	if !s.ok {
		return Unsat
	}
	if conf := s.propagate(); conf != nil {
		s.ok = false
		return Unsat
	}
	// Assumptions as pseudo-decisions at successive levels.
	for _, a := range assumptions {
		if s.litVal(a) == valTrue {
			continue
		}
		s.trailLo = append(s.trailLo, int32(len(s.trail)))
		if !s.enqueue(a, nil) || s.propagate() != nil {
			s.backtrackTo(0)
			return Unsat
		}
	}
	assumeLevel := s.decisionLevel()

	restartLimit := int64(100)
	confsAtRestart := int64(0)
	for {
		conf := s.propagate()
		if conf != nil {
			s.conflicts++
			confsAtRestart++
			if s.decisionLevel() == assumeLevel {
				s.backtrackTo(0)
				return Unsat
			}
			learnt, bt := s.analyze(conf)
			if bt < assumeLevel {
				bt = assumeLevel
			}
			s.backtrackTo(bt)
			if len(learnt) == 1 {
				if !s.enqueue(learnt[0], nil) {
					s.backtrackTo(0)
					return Unsat
				}
			} else {
				c := &clause{lits: learnt, learnt: true}
				s.attach(c)
				s.clauses = append(s.clauses, c)
				s.enqueue(learnt[0], c)
			}
			s.varInc /= 0.95
			if s.MaxConflicts > 0 && s.conflicts >= s.MaxConflicts {
				s.backtrackTo(0)
				return Unknown
			}
			if confsAtRestart >= restartLimit {
				confsAtRestart = 0
				restartLimit += restartLimit / 2
				s.backtrackTo(assumeLevel)
			}
			continue
		}
		next := s.pickBranch()
		if next < 0 {
			return Sat // full assignment
		}
		s.trailLo = append(s.trailLo, int32(len(s.trail)))
		s.enqueue(next, nil)
	}
}

// Model returns the value of variable v after a Sat result.
func (s *Solver) Model(v int) bool { return s.assign[v] == valTrue }

// VerifyModel checks every original (non-learnt) clause under the current
// assignment — a self-check for tests.
func (s *Solver) VerifyModel() bool {
	for _, c := range s.clauses {
		if c.learnt || c.deleted {
			continue
		}
		ok := false
		for _, l := range c.lits {
			if s.litVal(l) == valTrue {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}
