package sat

import (
	"math/rand"
	"testing"
)

func TestTrivial(t *testing.T) {
	s := New()
	a := s.NewVar()
	if !s.AddClause(MkLit(a, false)) {
		t.Fatal("unit clause rejected")
	}
	if s.Solve() != Sat {
		t.Fatal("single unit must be SAT")
	}
	if !s.Model(a) {
		t.Fatal("model wrong")
	}
}

func TestContradiction(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(MkLit(a, false))
	ok := s.AddClause(MkLit(a, true))
	if ok && s.Solve() != Unsat {
		t.Fatal("x ∧ ¬x must be UNSAT")
	}
}

func TestSimpleImplicationChain(t *testing.T) {
	// (¬x0∨x1)(¬x1∨x2)...(¬x9∨x10), x0 ⇒ all true.
	s := New()
	var vs []int
	for i := 0; i <= 10; i++ {
		vs = append(vs, s.NewVar())
	}
	for i := 0; i < 10; i++ {
		s.AddClause(MkLit(vs[i], true), MkLit(vs[i+1], false))
	}
	s.AddClause(MkLit(vs[0], false))
	if s.Solve() != Sat {
		t.Fatal("chain must be SAT")
	}
	for i := 0; i <= 10; i++ {
		if !s.Model(vs[i]) {
			t.Fatalf("x%d should be true", i)
		}
	}
}

func TestAssumptions(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(MkLit(a, false), MkLit(b, false)) // a ∨ b
	if s.Solve(MkLit(a, true)) != Sat {
		t.Fatal("¬a assumption should leave b")
	}
	if !s.Model(b) {
		t.Fatal("b must be true under ¬a")
	}
	if s.Solve(MkLit(a, true), MkLit(b, true)) != Unsat {
		t.Fatal("¬a ∧ ¬b contradicts a∨b")
	}
	// Solver must remain usable after an UNSAT-under-assumptions call.
	if s.Solve() != Sat {
		t.Fatal("formula itself is satisfiable")
	}
}

// pigeonhole(n): n+1 pigeons in n holes — classically UNSAT and a good
// stress for clause learning.
func pigeonhole(s *Solver, n int) {
	vars := make([][]int, n+1)
	for p := 0; p <= n; p++ {
		vars[p] = make([]int, n)
		for h := 0; h < n; h++ {
			vars[p][h] = s.NewVar()
		}
	}
	for p := 0; p <= n; p++ {
		lits := make([]Lit, n)
		for h := 0; h < n; h++ {
			lits[h] = MkLit(vars[p][h], false)
		}
		s.AddClause(lits...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				s.AddClause(MkLit(vars[p1][h], true), MkLit(vars[p2][h], true))
			}
		}
	}
}

func TestPigeonholeUnsat(t *testing.T) {
	for n := 2; n <= 5; n++ {
		s := New()
		pigeonhole(s, n)
		if got := s.Solve(); got != Unsat {
			t.Fatalf("PHP(%d) = %v, want UNSAT", n, got)
		}
	}
}

// bruteForce checks satisfiability of a small CNF by enumeration.
func bruteForce(nVars int, cnf [][]Lit) bool {
	for m := 0; m < 1<<uint(nVars); m++ {
		ok := true
		for _, c := range cnf {
			sat := false
			for _, l := range c {
				val := m>>uint(l.Var())&1 == 1
				if val != l.Neg() {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func TestRandom3SATAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 300; trial++ {
		nVars := 4 + rng.Intn(9) // 4..12
		nClauses := 3 + rng.Intn(nVars*5)
		var cnf [][]Lit
		s := New()
		for v := 0; v < nVars; v++ {
			s.NewVar()
		}
		valid := true
		for c := 0; c < nClauses; c++ {
			var lits []Lit
			k := 1 + rng.Intn(3)
			for j := 0; j < k; j++ {
				lits = append(lits, MkLit(rng.Intn(nVars), rng.Intn(2) == 1))
			}
			cnf = append(cnf, lits)
			if !s.AddClause(lits...) {
				valid = false
				break
			}
		}
		want := bruteForce(nVars, cnf)
		if !valid {
			if want {
				t.Fatalf("trial %d: solver says trivially UNSAT but brute force SAT", trial)
			}
			continue
		}
		got := s.Solve()
		if (got == Sat) != want {
			t.Fatalf("trial %d: solver %v, brute force %v (%d vars, %d clauses)", trial, got, want, nVars, nClauses)
		}
		if got == Sat && !s.VerifyModel() {
			t.Fatalf("trial %d: reported model does not satisfy the clauses", trial)
		}
	}
}

func TestConflictLimit(t *testing.T) {
	s := New()
	pigeonhole(s, 7)
	s.MaxConflicts = 10
	if got := s.Solve(); got != Unknown && got != Unsat {
		t.Fatalf("limited solve = %v", got)
	}
}
