package verilog

import (
	"bytes"
	"regexp"
	"strings"
	"testing"

	"dpals/internal/aig"
	"dpals/internal/gen"
)

func TestWriteBasicStructure(t *testing.T) {
	g := aig.New("test-mod")
	a, b := g.AddPI("a"), g.AddPI("b")
	x := g.And(a, b.Not())
	g.AddPO(x.Not(), "y")
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"module test_mod(",
		"input  wire a,",
		"input  wire b,",
		"output wire y",
		"endmodule",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
	// The single AND with a complemented fanin and the complemented PO.
	if !regexp.MustCompile(`wire n\d+ = a & ~b;`).MatchString(out) {
		t.Errorf("AND assignment wrong:\n%s", out)
	}
	if !regexp.MustCompile(`assign y = ~n\d+;`).MatchString(out) {
		t.Errorf("PO assignment wrong:\n%s", out)
	}
}

func TestWriteConstants(t *testing.T) {
	g := aig.New("consts")
	g.AddPI("a")
	g.AddPO(aig.False, "zero")
	g.AddPO(aig.True, "one")
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "assign zero = 1'b0;") || !strings.Contains(out, "assign one = 1'b1;") {
		t.Errorf("constants wrong:\n%s", out)
	}
}

func TestNameSanitisation(t *testing.T) {
	g := aig.New("9bad name!")
	a := g.AddPI("a[0]")
	b := g.AddPI("a[1]")
	g.AddPO(g.And(a, b), "out[0]")
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "module _9bad_name_(") {
		t.Errorf("module name not sanitised:\n%s", out)
	}
	if !strings.Contains(out, "a_0_") || !strings.Contains(out, "a_1_") {
		t.Errorf("PI names not sanitised:\n%s", out)
	}
	if strings.Contains(out, "[") {
		t.Errorf("brackets leaked into identifiers:\n%s", out)
	}
}

func TestNameCollisions(t *testing.T) {
	g := aig.New("coll")
	a := g.AddPI("x[0]")
	b := g.AddPI("x_0_") // collides with sanitised a
	g.AddPO(g.And(a, b), "y")
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "input  wire x_0_,") != 1 {
		t.Errorf("collision not resolved:\n%s", out)
	}
	if !strings.Contains(out, "x_0__2") {
		t.Errorf("second signal not renamed:\n%s", out)
	}
}

func TestWholeSuiteEmits(t *testing.T) {
	for _, b := range []*aig.Graph{gen.Adder(8), gen.MultU(4, 4), gen.ALU(4)} {
		var buf bytes.Buffer
		if err := Write(&buf, b); err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		out := buf.String()
		got := len(regexp.MustCompile(`wire n\d+ =`).FindAllString(out, -1))
		if got != b.NumAnds() {
			t.Errorf("%s: %d AND assignments, want %d", b.Name, got, b.NumAnds())
		}
	}
}
