// Package aiger reads and writes the ASCII AIGER format (aag), the
// standard interchange format for AND-inverter graphs. Only combinational
// models are supported (L = 0); the binary "aig" variant is written but
// only the ASCII variant is read.
package aiger

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"dpals/internal/aig"
)

// MaxVars caps the variable count a header may declare before Read
// refuses the file. The reader allocates memory proportional to the
// declared counts before seeing the body, so without a cap a handful of
// header bytes ("aag 2000000000 ...") could demand gigabytes. Exported so
// tools that genuinely handle huge AIGs can raise it.
var MaxVars = 1 << 26

// inputSize reports the number of unread bytes in r when that is knowable
// without consuming it (bytes.Reader, strings.Reader, os.File, …), else -1.
func inputSize(r io.Reader) int64 {
	switch v := r.(type) {
	case interface{ Len() int }:
		return int64(v.Len())
	case io.Seeker:
		cur, err := v.Seek(0, io.SeekCurrent)
		if err != nil {
			return -1
		}
		end, err := v.Seek(0, io.SeekEnd)
		if err != nil {
			return -1
		}
		if _, err := v.Seek(cur, io.SeekStart); err != nil {
			return -1
		}
		return end - cur
	}
	return -1
}

// checkHeader validates the declared counts for mutual consistency and
// plausibility against the input size before anything is allocated from
// them. binary selects the stricter "aig" rules (inputs are implicit).
func checkHeader(m, i, o, a int, size int64, binary bool) error {
	if binary {
		if m != i+a {
			return fmt.Errorf("aiger: binary header maxvar %d != inputs+ands %d", m, i+a)
		}
	} else if m < i+a {
		return fmt.Errorf("aiger: header maxvar %d < inputs+ands %d", m, i+a)
	}
	if m > MaxVars || o > MaxVars {
		return fmt.Errorf("aiger: header declares %d variables, %d outputs (cap %d)", m, o, MaxVars)
	}
	if size < 0 {
		return nil // unknowable (plain stream); MaxVars still bounds allocation
	}
	// Every declared object occupies at least two body bytes: an ASCII
	// input/output/AND line is at least one digit plus a newline, a binary
	// AND is two delta bytes (binary inputs are free). A header whose
	// counts cannot fit in the bytes that follow is malformed — reject it
	// before allocating anything proportional to the counts.
	objs := int64(o) + int64(a)
	if !binary {
		objs += int64(i)
	}
	if need := 2 * objs; need > size {
		return fmt.Errorf("aiger: header declares %d objects but only %d bytes follow", objs, size)
	}
	// Variables beyond I+A are gaps and cost no body bytes, so m is only
	// loosely tied to the size; still refuse headers whose maxvar is out
	// of all proportion to the file (a 30-byte file declaring 2^24 vars).
	if int64(m) > 8*size {
		return fmt.Errorf("aiger: header maxvar %d implausible for %d input bytes", m, size)
	}
	return nil
}

// Read parses an AIGER stream, ASCII ("aag") or binary ("aig"). Malformed
// input — inconsistent or implausible header counts, truncation inside a
// mandatory section, out-of-range literals — yields an error, never a
// panic or an allocation unrelated to the actual input size.
func Read(r io.Reader) (*aig.Graph, error) {
	size := inputSize(r)
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("aiger: missing header: %w", err)
	}
	f := strings.Fields(header)
	if len(f) != 6 || (f[0] != "aag" && f[0] != "aig") {
		return nil, fmt.Errorf("aiger: bad header %q", strings.TrimSpace(header))
	}
	var m, i, l, o, a int
	for idx, dst := range []*int{&m, &i, &l, &o, &a} {
		v, err := strconv.Atoi(f[idx+1])
		if err != nil || v < 0 {
			return nil, fmt.Errorf("aiger: bad header field %q", f[idx+1])
		}
		*dst = v
	}
	if l != 0 {
		return nil, fmt.Errorf("aiger: %d latches present; only combinational models supported", l)
	}
	if size >= 0 {
		size -= int64(len(header)) // body bytes only
	}
	if err := checkHeader(m, i, o, a, size, f[0] == "aig"); err != nil {
		return nil, err
	}
	if f[0] == "aig" {
		return readBinary(br, m, i, o, a)
	}

	// readLine returns the next line with its number. A final line without
	// a trailing newline is accepted; any other read error — including
	// plain EOF, i.e. truncation — is reported, never swallowed.
	line := 1 // the header
	readLine := func() (string, error) {
		line++
		s, err := br.ReadString('\n')
		if err != nil {
			if err == io.EOF && s != "" {
				return strings.TrimSpace(s), nil
			}
			return "", fmt.Errorf("line %d: %w", line, err)
		}
		return strings.TrimSpace(s), nil
	}

	g := aig.New("aiger")
	// Map AIGER variable -> our literal.
	lits := make([]aig.Lit, m+1)
	lits[0] = aig.False
	conv := func(aigerLit uint64) (aig.Lit, error) {
		v := aigerLit >> 1
		if v > uint64(m) {
			return 0, fmt.Errorf("aiger: literal %d exceeds maxvar %d", aigerLit, m)
		}
		base := lits[v]
		if base == 0 && v != 0 {
			return 0, fmt.Errorf("aiger: variable %d used before definition", v)
		}
		return base.NotIf(aigerLit&1 == 1), nil
	}

	for k := 0; k < i; k++ {
		s, err := readLine()
		if err != nil {
			return nil, fmt.Errorf("aiger: truncated inputs: %w", err)
		}
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil || v&1 == 1 || v == 0 {
			return nil, fmt.Errorf("aiger: bad input literal %q (line %d)", s, line)
		}
		if v>>1 > uint64(m) {
			return nil, fmt.Errorf("aiger: input literal %d exceeds maxvar %d (line %d)", v, m, line)
		}
		if lits[v>>1] != 0 {
			return nil, fmt.Errorf("aiger: variable %d defined twice (line %d)", v>>1, line)
		}
		lits[v>>1] = g.AddPI(fmt.Sprintf("i%d", k))
	}
	outLits := make([]uint64, o)
	for k := 0; k < o; k++ {
		s, err := readLine()
		if err != nil {
			return nil, fmt.Errorf("aiger: truncated outputs: %w", err)
		}
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("aiger: bad output literal %q (line %d)", s, line)
		}
		outLits[k] = v
	}
	for k := 0; k < a; k++ {
		s, err := readLine()
		if err != nil {
			return nil, fmt.Errorf("aiger: truncated AND section: %w", err)
		}
		fs := strings.Fields(s)
		if len(fs) != 3 {
			return nil, fmt.Errorf("aiger: bad AND line %q (line %d)", s, line)
		}
		var lhs, rhs0, rhs1 uint64
		for idx, dst := range []*uint64{&lhs, &rhs0, &rhs1} {
			v, err := strconv.ParseUint(fs[idx], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("aiger: bad AND literal %q (line %d)", fs[idx], line)
			}
			*dst = v
		}
		if lhs&1 == 1 || lhs>>1 > uint64(m) {
			return nil, fmt.Errorf("aiger: bad AND lhs %d (line %d)", lhs, line)
		}
		if lits[lhs>>1] != 0 {
			return nil, fmt.Errorf("aiger: variable %d defined twice (line %d)", lhs>>1, line)
		}
		if rhs0 >= lhs || rhs1 >= lhs {
			return nil, fmt.Errorf("aiger: AND %d not in topological order (line %d)", lhs, line)
		}
		a0, err := conv(rhs0)
		if err != nil {
			return nil, err
		}
		a1, err := conv(rhs1)
		if err != nil {
			return nil, err
		}
		lits[lhs>>1] = g.And(a0, a1)
	}

	// Symbol table and comments.
	poNames := make(map[int]string)
	piNames := make(map[int]string)
	for {
		s, err := readLine()
		if err != nil {
			break
		}
		if s == "" {
			continue
		}
		if s == "c" {
			// Write emits the circuit name as the first comment line;
			// recover it so write∘read is an identity on our own files.
			if name, err := readLine(); err == nil && name != "" {
				g.Name = name
			}
			break
		}
		switch s[0] {
		case 'i', 'o':
			parts := strings.SplitN(s[1:], " ", 2)
			if len(parts) != 2 {
				continue
			}
			idx, err := strconv.Atoi(parts[0])
			if err != nil {
				continue
			}
			if s[0] == 'i' {
				piNames[idx] = parts[1]
			} else {
				poNames[idx] = parts[1]
			}
		}
	}
	for k, v := range outLits {
		l, err := conv(v)
		if err != nil {
			return nil, err
		}
		name := poNames[k]
		if name == "" {
			name = fmt.Sprintf("o%d", k)
		}
		g.AddPO(l, name)
	}
	for idx, name := range piNames {
		if idx >= 0 && idx < g.NumPIs() && name != "" {
			g.RenamePI(idx, name)
		}
	}
	return g.Sweep(), nil
}

// Write emits the graph as ASCII AIGER (aag) with a symbol table.
func Write(w io.Writer, g *aig.Graph) error {
	bw := bufio.NewWriter(w)
	// Renumber: inputs first, then AND nodes in topological order.
	index := make(map[int32]uint64, g.NumVars())
	next := uint64(1)
	for _, v := range g.PIs() {
		index[v] = next
		next++
	}
	var ands []int32
	for _, v := range g.Topo() {
		if g.Type(v) == aig.TypeAnd {
			index[v] = next
			next++
			ands = append(ands, v)
		}
	}
	conv := func(l aig.Lit) uint64 {
		if l.Var() == 0 {
			return uint64(l) & 1
		}
		return index[l.Var()]<<1 | uint64(l)&1
	}
	fmt.Fprintf(bw, "aag %d %d 0 %d %d\n", next-1, g.NumPIs(), g.NumPOs(), len(ands))
	for _, v := range g.PIs() {
		fmt.Fprintf(bw, "%d\n", index[v]<<1)
	}
	for _, po := range g.POs() {
		fmt.Fprintf(bw, "%d\n", conv(po))
	}
	for _, v := range ands {
		f0, f1 := g.Fanins(v)
		r0, r1 := conv(f0), conv(f1)
		if r0 < r1 {
			r0, r1 = r1, r0
		}
		fmt.Fprintf(bw, "%d %d %d\n", index[v]<<1, r0, r1)
	}
	for i := range g.PIs() {
		fmt.Fprintf(bw, "i%d %s\n", i, g.PIName(i))
	}
	for o := 0; o < g.NumPOs(); o++ {
		fmt.Fprintf(bw, "o%d %s\n", o, g.POName(o))
	}
	fmt.Fprintf(bw, "c\n%s\n", g.Name)
	return bw.Flush()
}
