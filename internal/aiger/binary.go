package aiger

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"dpals/internal/aig"
)

// WriteBinary emits the graph in the binary AIGER format ("aig" header):
// inputs are implicit, outputs are listed as literals, and each AND gate
// is stored as two LEB128 deltas (lhs−rhs0, rhs0−rhs1) with
// lhs > rhs0 ≥ rhs1, in ascending lhs order.
func WriteBinary(w io.Writer, g *aig.Graph) error {
	bw := bufio.NewWriter(w)
	index := make(map[int32]uint64, g.NumVars())
	next := uint64(1)
	for _, v := range g.PIs() {
		index[v] = next
		next++
	}
	var ands []int32
	for _, v := range g.Topo() {
		if g.Type(v) == aig.TypeAnd {
			index[v] = next
			next++
			ands = append(ands, v)
		}
	}
	conv := func(l aig.Lit) uint64 {
		if l.Var() == 0 {
			return uint64(l) & 1
		}
		return index[l.Var()]<<1 | uint64(l)&1
	}
	fmt.Fprintf(bw, "aig %d %d 0 %d %d\n", next-1, g.NumPIs(), g.NumPOs(), len(ands))
	for _, po := range g.POs() {
		fmt.Fprintf(bw, "%d\n", conv(po))
	}
	for _, v := range ands {
		f0, f1 := g.Fanins(v)
		r0, r1 := conv(f0), conv(f1)
		if r0 < r1 {
			r0, r1 = r1, r0
		}
		lhs := index[v] << 1
		if err := writeVarint(bw, lhs-r0); err != nil {
			return err
		}
		if err := writeVarint(bw, r0-r1); err != nil {
			return err
		}
	}
	for i := range g.PIs() {
		fmt.Fprintf(bw, "i%d %s\n", i, g.PIName(i))
	}
	for o := 0; o < g.NumPOs(); o++ {
		fmt.Fprintf(bw, "o%d %s\n", o, g.POName(o))
	}
	fmt.Fprintf(bw, "c\n%s\n", g.Name)
	return bw.Flush()
}

func writeVarint(w *bufio.Writer, x uint64) error {
	for x >= 0x80 {
		if err := w.WriteByte(byte(x&0x7f | 0x80)); err != nil {
			return err
		}
		x >>= 7
	}
	return w.WriteByte(byte(x))
}

func readVarint(r *bufio.Reader) (uint64, error) {
	var x uint64
	var shift uint
	for {
		b, err := r.ReadByte()
		if err != nil {
			return 0, err
		}
		x |= uint64(b&0x7f) << shift
		if b&0x80 == 0 {
			return x, nil
		}
		shift += 7
		if shift > 63 {
			return 0, fmt.Errorf("aiger: varint overflow")
		}
	}
}

// readBinary parses the body of a binary AIGER stream after the header has
// been consumed.
func readBinary(br *bufio.Reader, m, i, o, a int) (*aig.Graph, error) {
	g := aig.New("aiger")
	lits := make([]aig.Lit, m+1)
	lits[0] = aig.False
	for k := 0; k < i; k++ {
		lits[k+1] = g.AddPI(fmt.Sprintf("i%d", k))
	}
	conv := func(aigerLit uint64) (aig.Lit, error) {
		v := aigerLit >> 1
		if v > uint64(m) {
			return 0, fmt.Errorf("aiger: literal %d exceeds maxvar %d", aigerLit, m)
		}
		base := lits[v]
		if base == 0 && v != 0 {
			return 0, fmt.Errorf("aiger: variable %d used before definition", v)
		}
		return base.NotIf(aigerLit&1 == 1), nil
	}
	outLits := make([]uint64, o)
	for k := 0; k < o; k++ {
		s, err := br.ReadString('\n')
		if err != nil && !(err == io.EOF && s != "") {
			// Truncation inside the mandatory output section is a hard
			// error; only a final line missing its newline is tolerated.
			return nil, fmt.Errorf("aiger: truncated outputs (line %d): %w", k+2, err)
		}
		v, err := strconv.ParseUint(strings.TrimSpace(s), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("aiger: bad output literal %q (line %d)", strings.TrimSpace(s), k+2)
		}
		outLits[k] = v
	}
	for k := 0; k < a; k++ {
		lhs := uint64(i+k+1) << 1
		d0, err := readVarint(br)
		if err != nil {
			return nil, fmt.Errorf("aiger: truncated AND section: %w", err)
		}
		d1, err := readVarint(br)
		if err != nil {
			return nil, fmt.Errorf("aiger: truncated AND section: %w", err)
		}
		if d0 == 0 || d0 > lhs {
			return nil, fmt.Errorf("aiger: invalid delta at AND %d", k)
		}
		r0 := lhs - d0
		if d1 > r0 {
			return nil, fmt.Errorf("aiger: invalid second delta at AND %d", k)
		}
		r1 := r0 - d1
		a0, err := conv(r0)
		if err != nil {
			return nil, err
		}
		a1, err := conv(r1)
		if err != nil {
			return nil, err
		}
		lits[lhs>>1] = g.And(a0, a1)
	}
	// Symbol table (PO names only; PI names are fixed at AddPI time).
	poNames := map[int]string{}
	for {
		s, err := br.ReadString('\n')
		if err != nil {
			break
		}
		s = strings.TrimSpace(s)
		if s == "c" {
			break
		}
		if strings.HasPrefix(s, "o") {
			parts := strings.SplitN(s[1:], " ", 2)
			if len(parts) == 2 {
				if idx, err := strconv.Atoi(parts[0]); err == nil {
					poNames[idx] = parts[1]
				}
			}
		}
	}
	for k, v := range outLits {
		l, err := conv(v)
		if err != nil {
			return nil, err
		}
		name := poNames[k]
		if name == "" {
			name = fmt.Sprintf("o%d", k)
		}
		g.AddPO(l, name)
	}
	return g.Sweep(), nil
}
