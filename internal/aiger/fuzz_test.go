package aiger

import (
	"bytes"
	"testing"

	"dpals/internal/gen"
)

// fuzzSeeds are small real circuits in both encodings, so the fuzzer
// starts from structurally valid inputs and mutates toward the edges.
func fuzzSeeds(f *testing.F, binary bool) {
	f.Helper()
	graphs := []struct{ w func(*bytes.Buffer) error }{
		{func(b *bytes.Buffer) error {
			if binary {
				return WriteBinary(b, gen.Adder(4))
			}
			return Write(b, gen.Adder(4))
		}},
		{func(b *bytes.Buffer) error {
			if binary {
				return WriteBinary(b, gen.MultU(3, 3))
			}
			return Write(b, gen.MultU(3, 3))
		}},
		{func(b *bytes.Buffer) error {
			if binary {
				return WriteBinary(b, gen.Detector(4))
			}
			return Write(b, gen.Detector(4))
		}},
	}
	for _, s := range graphs {
		var b bytes.Buffer
		if err := s.w(&b); err != nil {
			f.Fatal(err)
		}
		f.Add(b.Bytes())
	}
	if binary {
		f.Add([]byte("aig 1 1 0 1 0\n2\n"))
	} else {
		f.Add([]byte("aag 3 2 0 1 1\n2\n4\n6\n6 4 2\ni0 x\no0 y\nc\n"))
		f.Add([]byte("aag 2000000000 1 0 1 0\n2\n2\n"))
	}
}

// fuzzRead is the shared property check: Read never panics, never builds
// a graph out of proportion to the input, and anything it accepts
// round-trips through Write and Read to the same bytes.
func fuzzRead(t *testing.T, data []byte) {
	g, err := Read(bytes.NewReader(data))
	if err != nil {
		return // rejected inputs only need to be rejected cleanly
	}
	if err := g.Check(); err != nil {
		t.Fatalf("accepted graph fails invariants: %v", err)
	}
	// Allocation boundedness: every variable costs input bytes (at least
	// two in ASCII; binary inputs are free but capped by maxvar ≤ 8×size).
	if max := 8*len(data) + 64; g.NumVars() > max {
		t.Fatalf("graph has %d vars from %d input bytes", g.NumVars(), len(data))
	}
	var b1 bytes.Buffer
	if err := Write(&b1, g); err != nil {
		t.Fatalf("write-back failed: %v", err)
	}
	g2, err := Read(bytes.NewReader(b1.Bytes()))
	if err != nil {
		t.Fatalf("re-read of written model failed: %v\nmodel:\n%s", err, b1.String())
	}
	if g2.NumPIs() != g.NumPIs() || g2.NumPOs() != g.NumPOs() || g2.NumAnds() != g.NumAnds() {
		t.Fatalf("round-trip changed shape: %d/%d/%d -> %d/%d/%d",
			g.NumPIs(), g.NumPOs(), g.NumAnds(), g2.NumPIs(), g2.NumPOs(), g2.NumAnds())
	}
	var b2 bytes.Buffer
	if err := Write(&b2, g2); err != nil {
		t.Fatalf("second write failed: %v", err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("write/read/write not stable:\n-- first --\n%s\n-- second --\n%s", b1.String(), b2.String())
	}
}

func FuzzAIGERRead(f *testing.F) {
	fuzzSeeds(f, false)
	f.Fuzz(fuzzRead)
}

func FuzzAIGERBinaryRead(f *testing.F) {
	fuzzSeeds(f, true)
	f.Fuzz(fuzzRead)
}
