package aiger

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"

	"dpals/internal/aig"
	"dpals/internal/bitvec"
	"dpals/internal/gen"
	"dpals/internal/sim"
)

func equivalent(t *testing.T, a, b *aig.Graph, patterns int) bool {
	t.Helper()
	sa := sim.New(a, sim.Options{Patterns: patterns, Seed: 9})
	sb := sim.New(b, sim.Options{Patterns: patterns, Seed: 9})
	va := bitvec.NewWords(sa.Words())
	vb := bitvec.NewWords(sb.Words())
	for o := 0; o < a.NumPOs(); o++ {
		sa.POVal(o, va)
		sb.POVal(o, vb)
		if !va.Equal(vb) {
			return false
		}
	}
	return true
}

func TestRoundTrip(t *testing.T) {
	graphs := []*aig.Graph{
		gen.Adder(8),
		gen.MultS(5, 4),
		gen.Detector(8),
		gen.Sqrt(8),
	}
	for _, g := range graphs {
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		if err := back.Check(); err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		if back.NumPIs() != g.NumPIs() || back.NumPOs() != g.NumPOs() {
			t.Fatalf("%s: interface changed", g.Name)
		}
		if !equivalent(t, g, back, 1024) {
			t.Fatalf("%s: not equivalent after roundtrip", g.Name)
		}
	}
}

func TestReadKnownExample(t *testing.T) {
	// AND of two inputs, plus constant outputs — from the AIGER spec.
	src := "aag 3 2 0 3 1\n2\n4\n6\n0\n1\n6 4 2\ni0 x\ni1 y\no0 and\n"
	g, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumPIs() != 2 || g.NumPOs() != 3 {
		t.Fatalf("interface %d/%d", g.NumPIs(), g.NumPOs())
	}
	s := sim.New(g, sim.Options{Patterns: 4, Dist: sim.Exhaustive{}})
	v := bitvec.NewWords(s.Words())
	s.POVal(0, v)
	for p := 0; p < 4; p++ {
		if v.Get(p) != (p == 3) {
			t.Fatalf("and output wrong at %d", p)
		}
	}
	s.POVal(1, v)
	if v.Get(0) || v.Get(3) {
		t.Error("const0 output wrong")
	}
	s.POVal(2, v)
	if !v.Get(0) || !v.Get(3) {
		t.Error("const1 output wrong")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	graphs := []*aig.Graph{
		gen.Adder(8),
		gen.MultU(5, 5),
		gen.Detector(8),
		gen.ALU(4),
	}
	for _, g := range graphs {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		if err := back.Check(); err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		if !equivalent(t, g, back, 1024) {
			t.Fatalf("%s: binary roundtrip not equivalent", g.Name)
		}
	}
}

// Binary and ASCII encodings of the same circuit must decode to equivalent
// graphs.
func TestBinaryMatchesASCII(t *testing.T) {
	g := gen.Sqrt(10)
	var ba, bb bytes.Buffer
	if err := Write(&ba, g); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&bb, g); err != nil {
		t.Fatal(err)
	}
	ga, err := Read(&ba)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := Read(&bb)
	if err != nil {
		t.Fatal(err)
	}
	if !equivalent(t, ga, gb, 1024) {
		t.Fatal("binary and ASCII decode differ")
	}
}

func TestVarintRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	vals := []uint64{0, 1, 127, 128, 129, 16383, 16384, 1 << 32, 1<<63 - 1}
	for _, v := range vals {
		if err := writeVarint(bw, v); err != nil {
			t.Fatal(err)
		}
	}
	bw.Flush()
	br := bufio.NewReader(&buf)
	for _, want := range vals {
		got, err := readVarint(br)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("varint %d decoded as %d", want, got)
		}
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"binaryTruncated": "aig 3 2 0 1 1\n",
		"binaryBadHeader": "aig 9 2 0 1 1\n",
		"latches":         "aag 3 1 1 1 0\n2\n4 2\n4\n",
		"badHeader":       "aag 3 2 0\n",
		"badInput":        "aag 2 1 0 1 0\n3\n2\n",
		"order":           "aag 3 1 0 1 2\n2\n6\n4 6 2\n6 2 2\n",
		"overflow":        "aag 2 1 0 1 1\n2\n4\n4 2 9\n",
	}
	for name, src := range cases {
		if _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestWriteHeaderCounts(t *testing.T) {
	g := gen.MultU(4, 4)
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	var tag string
	var m, i, l, o, a int
	if _, err := fmt.Sscanf(buf.String(), "%s %d %d %d %d %d", &tag, &m, &i, &l, &o, &a); err != nil {
		t.Fatal(err)
	}
	if i != g.NumPIs() || o != g.NumPOs() || a != g.NumAnds() || l != 0 {
		t.Errorf("header aag %d %d %d %d %d vs graph %d PIs %d POs %d ANDs",
			m, i, l, o, a, g.NumPIs(), g.NumPOs(), g.NumAnds())
	}
	if m != i+a {
		t.Errorf("maxvar %d != inputs+ands %d", m, i+a)
	}
}

// A malformed header must be rejected up front — before any allocation
// proportional to its counts. The pre-hardening reader allocated
// m+1 literal slots straight from the header, so a 30-byte file claiming
// two billion variables demanded gigabytes.
func TestReadRejectsImplausibleHeader(t *testing.T) {
	cases := map[string]string{
		"hugeMaxvar":      "aag 2000000000 1 0 1 0\n2\n2\n",
		"hugeBinary":      "aig 2000000000 1000000000 0 0 1000000000\n",
		"hugeOutputs":     "aag 2 1 0 1000000000 0\n2\n",
		"maxvarTooSmall":  "aag 1 2 0 0 2\n2\n4\n",
		"binaryMismatch":  "aig 9 2 0 1 1\n6\n",
		"countsDontFit":   "aag 100 50 0 25 25\n2\n",
		"negativeField":   "aag 3 -1 0 1 0\n2\n",
		"overCapAndGates": "aag 100000000 50000000 0 0 50000000\n",
	}
	for name, src := range cases {
		if _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

// Truncation inside a mandatory section must be a hard, line-attributed
// error. The pre-hardening readLine returned partial text with a nil
// error, silently mistaking a cut-off file for a complete one.
func TestReadRejectsTruncation(t *testing.T) {
	full := "aag 3 2 0 1 1\n2\n4\n6\n6 4 2\n"
	if _, err := Read(strings.NewReader(full)); err != nil {
		t.Fatalf("intact model rejected: %v", err)
	}
	cases := map[string]string{
		"midInputs":  "aag 3 2 0 1 1\n2\n",
		"midOutputs": "aag 3 2 0 2 1\n2\n4\n6\n",
		"midAnds":    "aag 4 2 0 1 2\n2\n4\n8\n6 4 2\n",
		"emptyBody":  "aag 3 2 0 1 1\n",
	}
	for name, src := range cases {
		_, err := Read(strings.NewReader(src))
		if err == nil {
			t.Errorf("%s: truncated model accepted", name)
			continue
		}
		if !strings.Contains(err.Error(), "truncated") && !strings.Contains(err.Error(), "declares") {
			t.Errorf("%s: error does not mention truncation: %v", name, err)
		}
	}
	// Binary: AND deltas cut off mid-stream.
	g := gen.Adder(4)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	cut := buf.String()
	cut = cut[:strings.Index(cut, "\n")+1+g.NumPOs()*2+3]
	if _, err := Read(strings.NewReader(cut)); err == nil {
		t.Error("truncated binary AND section accepted")
	}
}

// Out-of-range and duplicate definitions must error, not panic. The input
// literal bound is a regression: the pre-hardening reader indexed the
// literal table with v>>1 unchecked.
func TestReadRejectsBadDefinitions(t *testing.T) {
	cases := map[string]string{
		"inputBeyondMaxvar": "aag 3 1 0 1 0\n2000\n2\npadpadpadpadpadpad\n",
		"inputTwice":        "aag 3 2 0 1 1\n2\n2\n6\n6 4 2\n",
		"andTwice":          "aag 4 1 0 1 3\n2\n4\n4 2 2\n4 2 3\n6 4 2\n",
		"outputUndefined":   "aag 3 1 0 1 0\n2\n6\npadpadpad\n",
	}
	for name, src := range cases {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("%s: reader panicked: %v", name, r)
				}
			}()
			if _, err := Read(strings.NewReader(src)); err == nil {
				t.Errorf("%s: expected error", name)
			}
		}()
	}
}

// MaxVars caps header-driven allocation for readers whose size is
// unknowable (plain streams).
func TestReadHonoursMaxVarsOnPlainStream(t *testing.T) {
	src := "aag 100000000 1 0 1 0\n2\n2\n"
	// io.MultiReader hides Len/Seek, so the size heuristic cannot apply.
	if _, err := Read(io.MultiReader(strings.NewReader(src))); err == nil {
		t.Error("over-cap header accepted on a plain stream")
	}
}
