package cpm

import (
	"math/rand"
	"runtime"
	"testing"

	"dpals/internal/cut"
	"dpals/internal/sim"
)

// TestRefreshMatchesRebuild is the round-granularity differential of the
// warm phase-1 path: after a randomized LAC sequence with per-apply
// invalidation, Refresh over all live nodes must produce rows bit-identical
// to a cold Rebuild of a fresh cache over the same cut set, reuse at least
// one row, and report Work + ReusedWork equal to the cold build's
// deterministic work estimate — the amount the engine charges so the DP-SA
// work profile is warm-invariant.
func TestRefreshMatchesRebuild(t *testing.T) {
	for _, threads := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		rng := rand.New(rand.NewSource(53))
		g := randomGraph(rng, 7, 90, 6)
		s := sim.New(g, sim.Options{Patterns: 256, Seed: 53, Threads: threads})
		cuts := cut.NewSet(g, threads)
		cache := NewCache(g, s)
		cache.Rebuild(cuts, threads)
		reused := 0
		for step := 0; step < 6; step++ {
			v, repl, ok := randomLAC(rng, g)
			if !ok {
				break
			}
			cs := g.ReplaceWithLit(v, repl)
			changed := s.ResimulateFrom(cs.Rewired)
			sv := cuts.UpdateAfter(cs)
			cache.Invalidate(cs, changed, sv)

			var live []int32
			for _, u := range g.Topo() {
				if g.IsAnd(u) {
					live = append(live, u)
				}
			}
			if len(live) == 0 {
				break
			}
			upd := cache.Refresh(cuts, live, threads)
			reused += upd.Reused

			fresh := NewCache(g, s)
			ref := fresh.Rebuild(cuts, threads)
			for _, w := range live {
				compareRow(t, "refresh", w, upd.Res.Row(w), ref.Res.Row(w))
			}
			if got, want := upd.Work+upd.ReusedWork, ref.Work; got != want {
				t.Fatalf("threads=%d step %d: Work+ReusedWork = %d, cold rebuild work %d",
					threads, step, got, want)
			}
			if upd.Reused > 0 && upd.ReusedWork == 0 {
				t.Fatalf("threads=%d step %d: %d rows reused but no reused work recorded", threads, step, upd.Reused)
			}
		}
		if reused == 0 {
			t.Fatalf("threads=%d: Refresh never reused a row across the sequence", threads)
		}
	}
}

// TestRefreshForeignCutsFallsBack: handed a cut set other than the one the
// cached rows were built against, Refresh must degrade to a full rebuild —
// row validity is only meaningful relative to the producing set.
func TestRefreshForeignCutsFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	g := randomGraph(rng, 6, 60, 5)
	s := sim.New(g, sim.Options{Patterns: 256, Seed: 59})
	cuts := cut.NewSet(g, 1)
	cache := NewCache(g, s)
	cache.Rebuild(cuts, 1)

	var live []int32
	for _, u := range g.Topo() {
		if g.IsAnd(u) {
			live = append(live, u)
		}
	}
	rebuilt := cut.NewSet(g, 1)
	upd := cache.Refresh(rebuilt, live, 1)
	if upd.Reused != 0 || upd.ReusedWork != 0 {
		t.Fatalf("foreign cut set: %d rows / %d work reused, want full rebuild", upd.Reused, upd.ReusedWork)
	}
	ref := BuildDisjoint(g, s, rebuilt, nil, 1)
	for _, w := range live {
		compareRow(t, "fallback", w, upd.Res.Row(w), ref.Row(w))
	}
}
