// Package cpm builds the change propagation matrix (CPM) of VECBEE [19]:
// P[i,n,o] = 1 iff flipping node n under input pattern i flips primary
// output o. Rows are computed bottom-up in reverse topological order with
// Eq. (1) of the paper, P[i,n,o] = P[i,t,o] ∧ P[i,n,t], where t is the
// disjoint-cut element covering o (SEALS [20]); the local Boolean
// differences P[i,n,t] come from one flip-resimulation of the bounded
// region between n and its cut.
//
// Two builders are provided:
//
//   - BuildDisjoint — the enhanced-VECBEE/SEALS scheme used by the
//     conventional flow and by both phases of the dual-phase framework.
//     With a target set it computes the partial CPM restricted to
//     N(S_cand) exactly as §III-C Example 2 describes.
//   - BuildVECBEE — the original VECBEE baseline with a configurable depth
//     limit l: exact full-TFO flip propagation for l=∞, and the
//     "direct-fanout" approximation of Table II for l=1.
package cpm

import (
	"context"
	"sort"
	"sync/atomic"

	"dpals/internal/aig"
	"dpals/internal/bitvec"
	"dpals/internal/cut"
	"dpals/internal/par"
	"dpals/internal/sim"
)

// Row holds the CPM entries of one node: for each reachable PO index,
// the patterns under which a flip of the node propagates to that PO.
type Row struct {
	POs   []int32
	Diffs []bitvec.Vec
}

// Find returns the diff vector for PO o, or nil.
func (r *Row) Find(o int32) bitvec.Vec {
	for i, p := range r.POs {
		if p == o {
			return r.Diffs[i]
		}
	}
	return nil
}

// Result is a computed (possibly partial) CPM.
type Result struct {
	Words int
	// Work is the deterministic work estimate of the build in bitvec word
	// operations (region simulation plus row assembly). Unlike wall-clock
	// time it is identical between runs regardless of thread count, machine,
	// or load; DP-SA's self-adaption profiles the analysis steps with it.
	Work int64
	rows []Row // per var; empty when not computed/retained
}

// Row returns the row of node v (empty when not computed or freed).
func (r *Result) Row(v int32) *Row { return &r.rows[v] }

// Has reports whether node v has a retained row.
func (r *Result) Has(v int32) bool { return len(r.rows[v].POs) > 0 }

// FlipDiffBit flips one bit of one retained row's diff vector — the row
// selected by site (mod the retained-row count) and, within it, a bit of
// the first diff word cycled by site — and reports whether a bit was
// flipped. It exists solely for the fault-seeding mode of the
// differential-verification campaign (internal/fault, cmd/alscheck): a
// seeded single-bit CPM corruption the oracle cross-checks must detect.
// Indexing by an injection site lets the campaign's Nth-scan explore
// corruption of different rows, not just the first one. Production code
// never calls it.
func (r *Result) FlipDiffBit(site int) bool {
	if site < 0 {
		site = 0
	}
	var retained []int32
	for v := range r.rows {
		row := &r.rows[v]
		if len(row.Diffs) > 0 && len(row.Diffs[0]) > 0 {
			retained = append(retained, int32(v))
		}
	}
	if len(retained) == 0 {
		return false
	}
	row := &r.rows[retained[site%len(retained)]]
	bit := uint(site/len(retained)) % 64
	row.Diffs[0][0] ^= 1 << bit
	return true
}

// Closure computes N(S_cand) per §III-C: starting from the targets, every
// node whose CPM entries are needed to derive the targets' entries — the
// transitive closure of targets under disjoint-cut membership (sinks
// excluded). The result includes the targets and is deduplicated.
func Closure(cuts *cut.Set, targets []int32) []int32 {
	seen := map[int32]bool{}
	var out []int32
	queue := append([]int32(nil), targets...)
	for _, v := range targets {
		seen[v] = true
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		out = append(out, v)
		for _, e := range cuts.Cut(v) {
			if !cut.IsSink(e) && !seen[e] {
				seen[e] = true
				queue = append(queue, e)
			}
		}
	}
	return out
}

// regionSimulator performs flip-resimulation of the bounded region between
// a node and a boundary, reusing scratch vectors across calls.
type regionSimulator struct {
	g     *aig.Graph
	s     *sim.Sim
	words int
	pos   []int32 // topo position per var (for sorting regions)

	inRegion []uint32
	epoch    uint32
	arena    *bitvec.Arena // backs scratch and local; never reset
	scratch  []bitvec.Vec
	region   []int32
	stack    []int32    // region-collection DFS scratch
	local    bitvec.Vec // scratch for one element-local diff at a time
}

// sort.Interface over rs.region by topological position, so propagate can
// sort with zero allocations (sort.Slice allocates its closure per call).
func (rs *regionSimulator) Len() int           { return len(rs.region) }
func (rs *regionSimulator) Less(i, j int) bool { return rs.pos[rs.region[i]] < rs.pos[rs.region[j]] }
func (rs *regionSimulator) Swap(i, j int) {
	rs.region[i], rs.region[j] = rs.region[j], rs.region[i]
}

// localDiff returns the worker-private scratch vector used to hold the
// local Boolean difference at one cut element. Only one element is
// assembled at a time, so a single vector per worker suffices.
func (rs *regionSimulator) localDiff() bitvec.Vec {
	if rs.local == nil {
		rs.local = rs.arena.Alloc()
	}
	return rs.local
}

// topoPositions returns the topological position of every variable,
// shared read-only by all workers' region simulators.
func topoPositions(g *aig.Graph) []int32 {
	pos := make([]int32, g.NumVars())
	for i, v := range g.Topo() {
		pos[v] = int32(i)
	}
	return pos
}

func newRegionSimulator(g *aig.Graph, s *sim.Sim, pos []int32) *regionSimulator {
	return &regionSimulator{
		g:        g,
		s:        s,
		words:    s.Words(),
		pos:      pos,
		inRegion: make([]uint32, g.NumVars()),
		arena:    bitvec.NewArena(s.Words()),
		scratch:  make([]bitvec.Vec, g.NumVars()),
	}
}

// flipVal returns the flipped-simulation value of variable v: its scratch
// value when v is in the current region, its normal value otherwise.
func (rs *regionSimulator) flipVal(v int32) bitvec.Vec {
	if rs.inRegion[v] == rs.epoch {
		return rs.scratch[v]
	}
	return rs.s.Val(v)
}

func (rs *regionSimulator) ensureScratch(v int32) bitvec.Vec {
	if rs.scratch[v] == nil {
		// Arena rows hold garbage; every scratch vector is fully written
		// by propagate before it is read.
		rs.scratch[v] = rs.arena.Alloc()
	}
	return rs.scratch[v]
}

// beginRegion starts a fresh region rooted at n.
func (rs *regionSimulator) beginRegion(n int32) {
	rs.epoch++
	if rs.epoch == 0 {
		for i := range rs.inRegion {
			rs.inRegion[i] = 0
		}
		rs.epoch = 1
	}
	rs.region = rs.region[:0]
	rs.inRegion[n] = rs.epoch
}

// collectBounded gathers the transitive fanout of n, stopping at (but
// including) nodes in boundary.
func (rs *regionSimulator) collectBounded(n int32, boundary map[int32]bool) {
	rs.beginRegion(n)
	g := rs.g
	stack := append(rs.stack[:0], n)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if v != n && boundary[v] {
			continue
		}
		for _, f := range g.Fanouts(v) {
			if rs.inRegion[f] != rs.epoch {
				rs.inRegion[f] = rs.epoch
				rs.region = append(rs.region, f)
				stack = append(stack, f)
			}
		}
	}
	rs.stack = stack[:0]
}

// collectDepth gathers the transitive fanout of n up to l levels (edges);
// l ≤ 0 means unbounded. It returns the frontier: region nodes at exactly
// depth l (never expanded). Depths are min edge distances (BFS).
func (rs *regionSimulator) collectDepth(n int32, l int, depth map[int32]int) (frontier []int32) {
	rs.beginRegion(n)
	g := rs.g
	queue := []int32{n}
	depth[n] = 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if l > 0 && depth[v] >= l {
			frontier = append(frontier, v)
			continue
		}
		for _, f := range g.Fanouts(v) {
			if rs.inRegion[f] != rs.epoch {
				rs.inRegion[f] = rs.epoch
				depth[f] = depth[v] + 1
				rs.region = append(rs.region, f)
				queue = append(queue, f)
			}
		}
	}
	return frontier
}

// propagate flips node n and simulates the collected region in topological
// order. After the call flipVal returns in-region values.
func (rs *regionSimulator) propagate(n int32) {
	sort.Sort(rs) // rs.region by topo position; see the sort.Interface methods
	g := rs.g
	sn := rs.ensureScratch(n)
	sn.Not(rs.s.Val(n))
	sn.Mask(rs.s.Patterns())
	for _, v := range rs.region {
		f0, f1 := g.Fanins(v)
		a, b := rs.flipVal(f0.Var()), rs.flipVal(f1.Var())
		dst := rs.ensureScratch(v)
		m0, m1 := uint64(0), uint64(0)
		if f0.IsCompl() {
			m0 = ^uint64(0)
		}
		if f1.IsCompl() {
			m1 = ^uint64(0)
		}
		for i := range dst {
			dst[i] = (a[i] ^ m0) & (b[i] ^ m1)
		}
		dst.Mask(rs.s.Patterns())
	}
}

// diffAt returns flipVal(v) ⊕ val(v) in dst.
func (rs *regionSimulator) diffAt(v int32, dst bitvec.Vec) {
	dst.Xor(rs.flipVal(v), rs.s.Val(v))
}

// disjointBuilder holds the shared, read-mostly state of one BuildDisjoint
// pass. Workers communicate only through index-addressed rows (each row is
// written by exactly one worker and read only after its dependency wave
// completed) and the atomic reference counts.
type disjointBuilder struct {
	g       *aig.Graph
	s       *sim.Sim
	cuts    *cut.Set
	res     *Result
	keep    []bool
	refs    []int32       // atomic: still-unprocessed consumers per row; nil: keep every row
	pool    *bitvec.Pool  // diff-vector allocator; nil: fall through to arena
	arena   *bitvec.Arena // per-build slab backing when unpooled; nil: plain allocation
	rowWork []int64       // per var: work of the node's row, recorded when non-nil (cache mode)
}

// newVec returns a zero-or-garbage diff vector; every caller fully
// overwrites it before publishing.
func (b *disjointBuilder) newVec() bitvec.Vec {
	if b.pool != nil {
		return b.pool.Get()
	}
	if b.arena != nil {
		return b.arena.Alloc()
	}
	return bitvec.NewWords(b.res.Words)
}

// release frees the row of v, recycling its vectors when pooled.
func (b *disjointBuilder) release(v int32) {
	if b.pool != nil {
		for _, d := range b.res.rows[v].Diffs {
			b.pool.Put(d)
		}
	}
	b.res.rows[v] = Row{}
}

// processNode computes the CPM row of v. All of v's non-sink cut elements
// must already have their rows computed (wave scheduling guarantees this).
func (b *disjointBuilder) processNode(rs *regionSimulator, cutSet map[int32]bool, v int32) {
	elems := b.cuts.Cut(v)
	if len(elems) == 0 {
		if b.rowWork != nil {
			b.rowWork[v] = 0
		}
		return // reaches no PO: a flip can never be observed
	}
	// Flip-simulate the region bounded by the node cut elements. Sink
	// elements leave their whole PO cone inside the region, so the
	// diff at the PO driver is available directly.
	for k := range cutSet {
		delete(cutSet, k)
	}
	for _, e := range elems {
		if !cut.IsSink(e) {
			cutSet[e] = true
		}
	}
	rs.collectBounded(v, cutSet)
	rs.propagate(v)
	// Work accounting: one words-wide pass per region node simulated and
	// per diff vector assembled; folded in with one atomic add per node.
	w := int64(1+len(rs.region)) * int64(b.res.Words)
	// Assemble the row: Eq. (1) per covered PO. The entry count is known
	// up front (one per sink, one per element-row PO), so a fresh or
	// undersized row grows with exactly one allocation per slice instead
	// of doubling its way up — row assembly dominated the builder's
	// allocation profile before this.
	row := &b.res.rows[v]
	total := 0
	for _, e := range elems {
		if cut.IsSink(e) {
			total++
		} else {
			total += len(b.res.rows[e].POs)
		}
	}
	if cap(row.POs) < total {
		row.POs = make([]int32, 0, total)
	}
	if cap(row.Diffs) < total {
		row.Diffs = make([]bitvec.Vec, 0, total)
	}
	for _, e := range elems {
		if cut.IsSink(e) {
			// A sink is a universal one-cut: P[v,o] is the Boolean
			// difference observed at the PO driver (all-ones when v
			// drives o itself).
			o := cut.SinkPO(e)
			d := b.newVec()
			rs.diffAt(b.g.PO(o).Var(), d)
			row.POs = append(row.POs, int32(o))
			row.Diffs = append(row.Diffs, d)
			w += int64(b.res.Words)
			continue
		}
		local := rs.localDiff()
		rs.diffAt(e, local)
		erow := &b.res.rows[e]
		w += int64(1+len(erow.POs)) * int64(b.res.Words)
		for i, o := range erow.POs {
			d := b.newVec()
			d.And(erow.Diffs[i], local)
			row.POs = append(row.POs, o)
			row.Diffs = append(row.Diffs, d)
		}
		// Release the element row once its last consumer is done. The
		// decrement comes after the reads above, so the consumer that
		// drops the count to zero knows every other consumer is done too.
		// A nil refs slice means every row is retained (cache mode).
		if b.refs != nil && atomic.AddInt32(&b.refs[e], -1) == 0 && !b.keep[e] {
			b.release(e)
		}
	}
	// v's own consumers only run in later waves, so a zero count here
	// means the row is needed by nobody (and was not requested).
	if b.refs != nil && atomic.LoadInt32(&b.refs[v]) == 0 && !b.keep[v] {
		b.release(v)
	}
	if b.rowWork != nil {
		b.rowWork[v] = w // single writer per node, like the row itself
	}
	atomic.AddInt64(&b.res.Work, w)
}

// BuildDisjoint computes CPM rows with the disjoint-cut scheme. When
// targets is nil, rows for every live AND node are computed and retained.
// Otherwise only the closure N(targets) is processed and only the targets'
// rows are retained (intermediate rows are reference-counted and freed as
// soon as their last consumer is done).
//
// threads follows the pipeline-wide semantics of package par (≤0: all
// CPUs, 1: serial). Row construction is fanned out over waves of the
// cut-element dependency DAG — a node's row depends only on the rows of
// its non-sink cut elements, read-only simulation values, and the shared
// cut set — and the result is bit-identical for every thread count.
func BuildDisjoint(g *aig.Graph, s *sim.Sim, cuts *cut.Set, targets []int32, threads int) *Result {
	res, _ := BuildDisjointCtx(context.Background(), g, s, cuts, targets, threads)
	return res
}

// BuildDisjointCtx is BuildDisjoint with cooperative cancellation: the
// build checks ctx at every wave boundary and stops early once it is
// cancelled, returning the partial result alongside ctx.Err(). A non-nil
// error means the rows are incomplete and must be discarded; an
// uncancelled build is bit-identical to BuildDisjoint.
func BuildDisjointCtx(ctx context.Context, g *aig.Graph, s *sim.Sim, cuts *cut.Set, targets []int32, threads int) (*Result, error) {
	res := &Result{Words: s.Words(), rows: make([]Row, g.NumVars())}

	var procList []int32
	keep := make([]bool, g.NumVars())
	if targets == nil {
		for _, v := range g.Topo() {
			if g.IsAnd(v) {
				procList = append(procList, v)
				keep[v] = true
			}
		}
	} else {
		procList = Closure(cuts, targets)
		for _, v := range targets {
			keep[v] = true
		}
	}

	// Reference counts: how many still-unprocessed nodes need each row.
	refs := make([]int32, g.NumVars())
	for _, v := range procList {
		for _, e := range cuts.Cut(v) {
			if !cut.IsSink(e) {
				refs[e]++
			}
		}
	}

	pos := topoPositions(g)
	sort.Slice(procList, func(i, j int) bool { return pos[procList[i]] > pos[procList[j]] })

	// Wave schedule over the exact dependency DAG: lvl(v) is one more than
	// the deepest non-sink cut element. Cut elements lie strictly in v's
	// transitive fanout, i.e. earlier in the descending-position procList,
	// so one forward sweep suffices.
	lvl := make([]int32, g.NumVars())
	var numLvl int32
	for _, v := range procList {
		var l int32
		for _, e := range cuts.Cut(v) {
			if !cut.IsSink(e) && lvl[e] >= l {
				l = lvl[e] + 1
			}
		}
		lvl[v] = l
		if l+1 > numLvl {
			numLvl = l + 1
		}
	}
	waves := make([][]int32, numLvl)
	for _, v := range procList {
		waves[lvl[v]] = append(waves[lvl[v]], v)
	}

	// Published diff vectors are carved from one per-build arena (released
	// intermediate rows are dropped, not recycled — their slab memory is
	// reclaimed with everything else when the Result is). The Result's rows
	// keep the slabs reachable, so the arena needs no owner beyond b.
	b := &disjointBuilder{g: g, s: s, cuts: cuts, res: res, keep: keep, refs: refs,
		arena: bitvec.NewArena(res.Words)}
	workers := par.ScratchSlots(threads, len(procList))
	rss := make([]*regionSimulator, workers)
	cutSets := make([]map[int32]bool, workers)
	for w := range rss {
		rss[w] = newRegionSimulator(g, s, pos)
		cutSets[w] = make(map[int32]bool)
	}
	for _, wave := range waves {
		if err := par.ForEachCtx(ctx, threads, wave, func(w int, v int32) {
			b.processNode(rss[w], cutSets[w], v)
		}); err != nil {
			return res, err
		}
	}
	return res, nil
}

// ReachSets computes, for every variable, the bitset of PO indices
// reachable from it (drivers reach their own POs). Used by the VECBEE
// baseline, which does not build disjoint cuts.
func ReachSets(g *aig.Graph) []bitvec.Vec {
	words := bitvec.Words(g.NumPOs())
	reach := make([]bitvec.Vec, g.NumVars())
	order := g.Topo()
	drivers := map[int32][]int{}
	for o, po := range g.POs() {
		drivers[po.Var()] = append(drivers[po.Var()], o)
	}
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		r := bitvec.NewWords(words)
		for _, o := range drivers[v] {
			r.Set(o, true)
		}
		for _, f := range g.Fanouts(v) {
			if !g.IsDead(f) && reach[f] != nil {
				r.OrWith(reach[f])
			}
		}
		reach[v] = r
	}
	return reach
}

// vecbeeBuilder holds the shared state of one BuildVECBEE pass. With a
// finite depth limit, a node's row composes the rows of its frontier
// nodes, which lie strictly in the node's transitive fanout — so waves of
// one reverse-topological level are independent; with l=∞ rows never
// compose and every node is independent.
type vecbeeBuilder struct {
	g        *aig.Graph
	s        *sim.Sim
	res      *Result
	infinite bool
	l        int
	drivers  map[int32][]int
	ones     bitvec.Vec // shared all-ones diff, read-only
}

func (b *vecbeeBuilder) processNode(rs *regionSimulator, depth map[int32]int, v int32) {
	for k := range depth {
		delete(depth, k)
	}
	frontier := rs.collectDepth(v, b.l, depth)
	rs.propagate(v)
	w := int64(1+len(rs.region)) * int64(b.res.Words)

	row := &b.res.rows[v]
	covered := map[int32]bool{}
	// Exact part: POs whose driver lies inside the simulated region
	// (or is v itself).
	for _, os := range b.drivers[v] {
		row.POs = append(row.POs, int32(os))
		row.Diffs = append(row.Diffs, b.ones)
		covered[int32(os)] = true
	}
	for _, u := range rs.region {
		for _, o := range b.drivers[u] {
			if covered[int32(o)] {
				continue
			}
			d := bitvec.NewWords(b.res.Words)
			rs.diffAt(u, d)
			row.POs = append(row.POs, int32(o))
			row.Diffs = append(row.Diffs, d)
			covered[int32(o)] = true
		}
	}
	// Approximate part: POs beyond the frontier, OR-combined over the
	// frontier nodes' own rows (finite l only; with l=∞ the region is
	// the whole cone and nothing remains).
	if !b.infinite {
		acc := map[int32]bitvec.Vec{}
		scratch := bitvec.NewWords(b.res.Words)
		for _, f := range frontier {
			fdiff := bitvec.NewWords(b.res.Words)
			rs.diffAt(f, fdiff)
			frow := &b.res.rows[f]
			w += int64(1+len(frow.POs)) * int64(b.res.Words)
			for j, o := range frow.POs {
				if covered[o] {
					continue
				}
				scratch.And(frow.Diffs[j], fdiff)
				if a, ok := acc[o]; ok {
					a.OrWith(scratch)
				} else {
					nv := bitvec.NewWords(b.res.Words)
					nv.CopyFrom(scratch)
					acc[o] = nv
				}
			}
		}
		oIdx := make([]int32, 0, len(acc))
		for o := range acc {
			oIdx = append(oIdx, o)
		}
		sort.Slice(oIdx, func(a, b int) bool { return oIdx[a] < oIdx[b] })
		for _, o := range oIdx {
			row.POs = append(row.POs, o)
			row.Diffs = append(row.Diffs, acc[o])
		}
	}
	atomic.AddInt64(&b.res.Work, w)
}

// BuildVECBEE computes CPM rows with the original VECBEE scheme at depth
// limit l: each node's flip is propagated exactly through its transitive
// fanout up to l levels; beyond the frontier the effect is approximated by
// OR-combining the frontier nodes' own rows. l ≤ 0 means ∞ (fully exact,
// one whole-cone resimulation per node). When targets is non-nil only the
// targets' rows are retained, but — unlike the disjoint scheme — every
// node must still be processed when l is finite, because frontier
// composition may need any row.
//
// threads follows the pipeline-wide semantics of package par (≤0: all
// CPUs, 1: serial); the result is bit-identical for every thread count.
func BuildVECBEE(g *aig.Graph, s *sim.Sim, l int, targets []int32, threads int) *Result {
	res, _ := BuildVECBEECtx(context.Background(), g, s, l, targets, threads)
	return res
}

// BuildVECBEECtx is BuildVECBEE with cooperative cancellation, with the
// same partial-result contract as BuildDisjointCtx.
func BuildVECBEECtx(ctx context.Context, g *aig.Graph, s *sim.Sim, l int, targets []int32, threads int) (*Result, error) {
	res := &Result{Words: s.Words(), rows: make([]Row, g.NumVars())}
	keep := make([]bool, g.NumVars())
	if targets == nil {
		for i := range keep {
			keep[i] = true
		}
	} else {
		for _, v := range targets {
			keep[v] = true
		}
	}

	infinite := l <= 0

	drivers := map[int32][]int{}
	for o, po := range g.POs() {
		drivers[po.Var()] = append(drivers[po.Var()], o)
	}

	ones := bitvec.NewWords(s.Words())
	ones.SetAll()
	ones.Mask(s.Patterns())

	b := &vecbeeBuilder{g: g, s: s, res: res, infinite: infinite, l: l, drivers: drivers, ones: ones}

	// With l=∞ rows never compose, so every node is one independent unit
	// of work (and non-targets can be skipped entirely). With finite l a
	// node composes rows of frontier nodes in its strict transitive
	// fanout, so reverse-topological levels run as waves with barriers.
	var waves [][]int32
	if infinite {
		var flat []int32
		order := g.Topo()
		for i := len(order) - 1; i >= 0; i-- {
			v := order[i]
			if g.IsAnd(v) && (targets == nil || keep[v]) {
				flat = append(flat, v)
			}
		}
		waves = [][]int32{flat}
	} else {
		waves = g.ReverseLevels()
	}
	var numNodes int
	for _, wave := range waves {
		numNodes += len(wave)
	}
	pos := topoPositions(g)
	workers := par.ScratchSlots(threads, numNodes)
	rss := make([]*regionSimulator, workers)
	depths := make([]map[int32]int, workers)
	for w := range rss {
		rss[w] = newRegionSimulator(g, s, pos)
		depths[w] = make(map[int32]int)
	}
	for _, wave := range waves {
		if err := par.ForEachCtx(ctx, threads, wave, func(w int, v int32) {
			b.processNode(rss[w], depths[w], v)
		}); err != nil {
			return res, err
		}
	}
	return res, nil
}
