// Package cpm builds the change propagation matrix (CPM) of VECBEE [19]:
// P[i,n,o] = 1 iff flipping node n under input pattern i flips primary
// output o. Rows are computed bottom-up in reverse topological order with
// Eq. (1) of the paper, P[i,n,o] = P[i,t,o] ∧ P[i,n,t], where t is the
// disjoint-cut element covering o (SEALS [20]); the local Boolean
// differences P[i,n,t] come from one flip-resimulation of the bounded
// region between n and its cut.
//
// Two builders are provided:
//
//   - BuildDisjoint — the enhanced-VECBEE/SEALS scheme used by the
//     conventional flow and by both phases of the dual-phase framework.
//     With a target set it computes the partial CPM restricted to
//     N(S_cand) exactly as §III-C Example 2 describes.
//   - BuildVECBEE — the original VECBEE baseline with a configurable depth
//     limit l: exact full-TFO flip propagation for l=∞, and the
//     "direct-fanout" approximation of Table II for l=1.
package cpm

import (
	"sort"

	"dpals/internal/aig"
	"dpals/internal/bitvec"
	"dpals/internal/cut"
	"dpals/internal/sim"
)

// Row holds the CPM entries of one node: for each reachable PO index,
// the patterns under which a flip of the node propagates to that PO.
type Row struct {
	POs   []int32
	Diffs []bitvec.Vec
}

// Find returns the diff vector for PO o, or nil.
func (r *Row) Find(o int32) bitvec.Vec {
	for i, p := range r.POs {
		if p == o {
			return r.Diffs[i]
		}
	}
	return nil
}

// Result is a computed (possibly partial) CPM.
type Result struct {
	Words int
	rows  []Row // per var; empty when not computed/retained
}

// Row returns the row of node v (empty when not computed or freed).
func (r *Result) Row(v int32) *Row { return &r.rows[v] }

// Has reports whether node v has a retained row.
func (r *Result) Has(v int32) bool { return len(r.rows[v].POs) > 0 }

// Closure computes N(S_cand) per §III-C: starting from the targets, every
// node whose CPM entries are needed to derive the targets' entries — the
// transitive closure of targets under disjoint-cut membership (sinks
// excluded). The result includes the targets and is deduplicated.
func Closure(cuts *cut.Set, targets []int32) []int32 {
	seen := map[int32]bool{}
	var out []int32
	queue := append([]int32(nil), targets...)
	for _, v := range targets {
		seen[v] = true
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		out = append(out, v)
		for _, e := range cuts.Cut(v) {
			if !cut.IsSink(e) && !seen[e] {
				seen[e] = true
				queue = append(queue, e)
			}
		}
	}
	return out
}

// regionSimulator performs flip-resimulation of the bounded region between
// a node and a boundary, reusing scratch vectors across calls.
type regionSimulator struct {
	g     *aig.Graph
	s     *sim.Sim
	words int
	pos   []int32 // topo position per var (for sorting regions)

	inRegion []uint32
	epoch    uint32
	scratch  []bitvec.Vec
	region   []int32
}

func newRegionSimulator(g *aig.Graph, s *sim.Sim) *regionSimulator {
	rs := &regionSimulator{
		g:        g,
		s:        s,
		words:    s.Words(),
		pos:      make([]int32, g.NumVars()),
		inRegion: make([]uint32, g.NumVars()),
		scratch:  make([]bitvec.Vec, g.NumVars()),
	}
	for i, v := range g.Topo() {
		rs.pos[v] = int32(i)
	}
	return rs
}

// flipVal returns the flipped-simulation value of variable v: its scratch
// value when v is in the current region, its normal value otherwise.
func (rs *regionSimulator) flipVal(v int32) bitvec.Vec {
	if rs.inRegion[v] == rs.epoch {
		return rs.scratch[v]
	}
	return rs.s.Val(v)
}

func (rs *regionSimulator) ensureScratch(v int32) bitvec.Vec {
	if rs.scratch[v] == nil {
		rs.scratch[v] = bitvec.NewWords(rs.words)
	}
	return rs.scratch[v]
}

// beginRegion starts a fresh region rooted at n.
func (rs *regionSimulator) beginRegion(n int32) {
	rs.epoch++
	if rs.epoch == 0 {
		for i := range rs.inRegion {
			rs.inRegion[i] = 0
		}
		rs.epoch = 1
	}
	rs.region = rs.region[:0]
	rs.inRegion[n] = rs.epoch
}

// collectBounded gathers the transitive fanout of n, stopping at (but
// including) nodes in boundary.
func (rs *regionSimulator) collectBounded(n int32, boundary map[int32]bool) {
	rs.beginRegion(n)
	g := rs.g
	stack := []int32{n}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if v != n && boundary[v] {
			continue
		}
		for _, f := range g.Fanouts(v) {
			if rs.inRegion[f] != rs.epoch {
				rs.inRegion[f] = rs.epoch
				rs.region = append(rs.region, f)
				stack = append(stack, f)
			}
		}
	}
}

// collectDepth gathers the transitive fanout of n up to l levels (edges);
// l ≤ 0 means unbounded. It returns the frontier: region nodes at exactly
// depth l (never expanded). Depths are min edge distances (BFS).
func (rs *regionSimulator) collectDepth(n int32, l int, depth map[int32]int) (frontier []int32) {
	rs.beginRegion(n)
	g := rs.g
	queue := []int32{n}
	depth[n] = 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if l > 0 && depth[v] >= l {
			frontier = append(frontier, v)
			continue
		}
		for _, f := range g.Fanouts(v) {
			if rs.inRegion[f] != rs.epoch {
				rs.inRegion[f] = rs.epoch
				depth[f] = depth[v] + 1
				rs.region = append(rs.region, f)
				queue = append(queue, f)
			}
		}
	}
	return frontier
}

// propagate flips node n and simulates the collected region in topological
// order. After the call flipVal returns in-region values.
func (rs *regionSimulator) propagate(n int32) {
	sort.Slice(rs.region, func(i, j int) bool { return rs.pos[rs.region[i]] < rs.pos[rs.region[j]] })
	g := rs.g
	sn := rs.ensureScratch(n)
	sn.Not(rs.s.Val(n))
	sn.Mask(rs.s.Patterns())
	for _, v := range rs.region {
		f0, f1 := g.Fanins(v)
		a, b := rs.flipVal(f0.Var()), rs.flipVal(f1.Var())
		dst := rs.ensureScratch(v)
		m0, m1 := uint64(0), uint64(0)
		if f0.IsCompl() {
			m0 = ^uint64(0)
		}
		if f1.IsCompl() {
			m1 = ^uint64(0)
		}
		for i := range dst {
			dst[i] = (a[i] ^ m0) & (b[i] ^ m1)
		}
		dst.Mask(rs.s.Patterns())
	}
}

// diffAt returns flipVal(v) ⊕ val(v) in dst.
func (rs *regionSimulator) diffAt(v int32, dst bitvec.Vec) {
	dst.Xor(rs.flipVal(v), rs.s.Val(v))
}

// BuildDisjoint computes CPM rows with the disjoint-cut scheme. When
// targets is nil, rows for every live AND node are computed and retained.
// Otherwise only the closure N(targets) is processed and only the targets'
// rows are retained (intermediate rows are reference-counted and freed as
// soon as their last consumer is done).
func BuildDisjoint(g *aig.Graph, s *sim.Sim, cuts *cut.Set, targets []int32) *Result {
	res := &Result{Words: s.Words(), rows: make([]Row, g.NumVars())}

	var procList []int32
	keep := make([]bool, g.NumVars())
	if targets == nil {
		for _, v := range g.Topo() {
			if g.IsAnd(v) {
				procList = append(procList, v)
				keep[v] = true
			}
		}
	} else {
		procList = Closure(cuts, targets)
		for _, v := range targets {
			keep[v] = true
		}
	}

	// Reference counts: how many still-unprocessed nodes need each row.
	refs := make([]int32, g.NumVars())
	inProc := make([]bool, g.NumVars())
	for _, v := range procList {
		inProc[v] = true
	}
	for _, v := range procList {
		for _, e := range cuts.Cut(v) {
			if !cut.IsSink(e) {
				refs[e]++
			}
		}
	}

	rs := newRegionSimulator(g, s)
	pos := rs.pos
	sort.Slice(procList, func(i, j int) bool { return pos[procList[i]] > pos[procList[j]] })

	cutSet := make(map[int32]bool)
	for _, v := range procList {
		elems := cuts.Cut(v)
		if len(elems) == 0 {
			continue // reaches no PO: a flip can never be observed
		}
		// Flip-simulate the region bounded by the node cut elements. Sink
		// elements leave their whole PO cone inside the region, so the
		// diff at the PO driver is available directly.
		for k := range cutSet {
			delete(cutSet, k)
		}
		for _, e := range elems {
			if !cut.IsSink(e) {
				cutSet[e] = true
			}
		}
		rs.collectBounded(v, cutSet)
		rs.propagate(v)
		// Assemble the row: Eq. (1) per covered PO.
		row := &res.rows[v]
		for _, e := range elems {
			if cut.IsSink(e) {
				// A sink is a universal one-cut: P[v,o] is the Boolean
				// difference observed at the PO driver (all-ones when v
				// drives o itself).
				o := cut.SinkPO(e)
				d := bitvec.NewWords(s.Words())
				rs.diffAt(g.PO(o).Var(), d)
				row.POs = append(row.POs, int32(o))
				row.Diffs = append(row.Diffs, d)
				continue
			}
			local := bitvec.NewWords(s.Words())
			rs.diffAt(e, local)
			erow := &res.rows[e]
			for i, o := range erow.POs {
				d := bitvec.NewWords(s.Words())
				d.And(erow.Diffs[i], local)
				row.POs = append(row.POs, o)
				row.Diffs = append(row.Diffs, d)
			}
			// Release the element row once its last consumer is done.
			refs[e]--
			if refs[e] == 0 && !keep[e] {
				res.rows[e] = Row{}
			}
		}
		if refs[v] == 0 && !keep[v] {
			res.rows[v] = Row{}
		}
	}
	return res
}

// ReachSets computes, for every variable, the bitset of PO indices
// reachable from it (drivers reach their own POs). Used by the VECBEE
// baseline, which does not build disjoint cuts.
func ReachSets(g *aig.Graph) []bitvec.Vec {
	words := bitvec.Words(g.NumPOs())
	reach := make([]bitvec.Vec, g.NumVars())
	order := g.Topo()
	drivers := map[int32][]int{}
	for o, po := range g.POs() {
		drivers[po.Var()] = append(drivers[po.Var()], o)
	}
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		r := bitvec.NewWords(words)
		for _, o := range drivers[v] {
			r.Set(o, true)
		}
		for _, f := range g.Fanouts(v) {
			if !g.IsDead(f) && reach[f] != nil {
				r.OrWith(reach[f])
			}
		}
		reach[v] = r
	}
	return reach
}

// BuildVECBEE computes CPM rows with the original VECBEE scheme at depth
// limit l: each node's flip is propagated exactly through its transitive
// fanout up to l levels; beyond the frontier the effect is approximated by
// OR-combining the frontier nodes' own rows. l ≤ 0 means ∞ (fully exact,
// one whole-cone resimulation per node). When targets is non-nil only the
// targets' rows are retained, but — unlike the disjoint scheme — every
// node must still be processed when l is finite, because frontier
// composition may need any row.
func BuildVECBEE(g *aig.Graph, s *sim.Sim, l int, targets []int32) *Result {
	res := &Result{Words: s.Words(), rows: make([]Row, g.NumVars())}
	keep := make([]bool, g.NumVars())
	if targets == nil {
		for i := range keep {
			keep[i] = true
		}
	} else {
		for _, v := range targets {
			keep[v] = true
		}
	}

	infinite := l <= 0

	drivers := map[int32][]int{}
	for o, po := range g.POs() {
		drivers[po.Var()] = append(drivers[po.Var()], o)
	}

	rs := newRegionSimulator(g, s)
	order := g.Topo()
	depth := map[int32]int{}

	ones := bitvec.NewWords(s.Words())
	ones.SetAll()
	ones.Mask(s.Patterns())

	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		if !g.IsAnd(v) {
			continue
		}
		if infinite && targets != nil && !keep[v] {
			// With l=∞ rows never compose; skip non-targets entirely.
			continue
		}
		for k := range depth {
			delete(depth, k)
		}
		frontier := rs.collectDepth(v, l, depth)
		rs.propagate(v)

		row := &res.rows[v]
		covered := map[int32]bool{}
		// Exact part: POs whose driver lies inside the simulated region
		// (or is v itself).
		for _, os := range drivers[v] {
			row.POs = append(row.POs, int32(os))
			row.Diffs = append(row.Diffs, ones)
			covered[int32(os)] = true
		}
		for _, u := range rs.region {
			for _, o := range drivers[u] {
				if covered[int32(o)] {
					continue
				}
				d := bitvec.NewWords(s.Words())
				rs.diffAt(u, d)
				row.POs = append(row.POs, int32(o))
				row.Diffs = append(row.Diffs, d)
				covered[int32(o)] = true
			}
		}
		// Approximate part: POs beyond the frontier, OR-combined over the
		// frontier nodes' own rows (finite l only; with l=∞ the region is
		// the whole cone and nothing remains).
		if !infinite {
			acc := map[int32]bitvec.Vec{}
			scratch := bitvec.NewWords(s.Words())
			for _, f := range frontier {
				fdiff := bitvec.NewWords(s.Words())
				rs.diffAt(f, fdiff)
				frow := &res.rows[f]
				for j, o := range frow.POs {
					if covered[o] {
						continue
					}
					scratch.And(frow.Diffs[j], fdiff)
					if a, ok := acc[o]; ok {
						a.OrWith(scratch)
					} else {
						nv := bitvec.NewWords(s.Words())
						nv.CopyFrom(scratch)
						acc[o] = nv
					}
				}
			}
			oIdx := make([]int32, 0, len(acc))
			for o := range acc {
				oIdx = append(oIdx, o)
			}
			sort.Slice(oIdx, func(a, b int) bool { return oIdx[a] < oIdx[b] })
			for _, o := range oIdx {
				row.POs = append(row.POs, o)
				row.Diffs = append(row.Diffs, acc[o])
			}
		}
	}
	return res
}
