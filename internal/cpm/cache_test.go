package cpm

import (
	"math/rand"
	"runtime"
	"testing"

	"dpals/internal/aig"
	"dpals/internal/cut"
	"dpals/internal/gen"
	"dpals/internal/sim"
)

// compareRow fails unless the cached row of v is bit-identical — same PO
// order, same diff vectors — to the reference row.
func compareRow(t *testing.T, label string, v int32, got, want *Row) {
	t.Helper()
	if len(got.POs) != len(want.POs) {
		t.Fatalf("%s: node %d: %d POs, want %d", label, v, len(got.POs), len(want.POs))
	}
	for i := range want.POs {
		if got.POs[i] != want.POs[i] {
			t.Fatalf("%s: node %d: PO[%d] = %d, want %d", label, v, i, got.POs[i], want.POs[i])
		}
		if !got.Diffs[i].Equal(want.Diffs[i]) {
			t.Fatalf("%s: node %d PO %d: diff vector mismatch", label, v, want.POs[i])
		}
	}
}

// randomLAC picks a random legal replacement on g: constant 0/1, a PI, or a
// non-TFO node substitution (the SASIMI shape). Targets with multi-node
// MFFCs occur naturally, exercising MFFC removal.
func randomLAC(rng *rand.Rand, g *aig.Graph) (int32, aig.Lit, bool) {
	var cand []int32
	for v := int32(1); v <= g.MaxVar(); v++ {
		if g.IsAnd(v) {
			cand = append(cand, v)
		}
	}
	if len(cand) == 0 {
		return 0, aig.False, false
	}
	v := cand[rng.Intn(len(cand))]
	var repl aig.Lit
	switch rng.Intn(4) {
	case 0:
		repl = aig.False
	case 1:
		repl = aig.True
	case 2:
		repl = aig.MakeLit(g.PIs()[rng.Intn(g.NumPIs())], rng.Intn(2) == 1)
	default:
		var ok []int32
		for _, w := range cand {
			if w != v && !g.InTFO(v, w) {
				ok = append(ok, w)
			}
		}
		if len(ok) == 0 {
			repl = aig.True
		} else {
			repl = aig.MakeLit(ok[rng.Intn(len(ok))], rng.Intn(2) == 1)
		}
	}
	return v, repl, true
}

// stepAcct is the per-step accounting a cache run produces; it must be
// identical for every thread count.
type stepAcct struct {
	needed, reused, recomputed int
	work                       int64
}

// runCacheSequence replays a seeded random LAC sequence against the cache
// and cross-checks every analysis bit-for-bit against from-scratch
// BuildDisjoint over the same cut set. It returns the per-step accounting.
func runCacheSequence(t *testing.T, seed int64, threads int) []stepAcct {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := randomGraph(rng, 7, 90, 6)
	s := sim.New(g, sim.Options{Patterns: 256, Seed: seed, Threads: threads})
	cuts := cut.NewSet(g, threads)
	cache := NewCache(g, s)

	var acct []stepAcct

	// Phase-1 equivalent: full build, compared against BuildDisjoint(nil).
	upd := cache.Rebuild(cuts, threads)
	ref := BuildDisjoint(g, s, cuts, nil, threads)
	if upd.Work != ref.Work {
		t.Fatalf("threads=%d: Rebuild work %d, fresh build work %d", threads, upd.Work, ref.Work)
	}
	for _, v := range g.Topo() {
		if g.IsAnd(v) {
			compareRow(t, "rebuild", v, upd.Res.Row(v), ref.Row(v))
		}
	}
	acct = append(acct, stepAcct{upd.Needed, upd.Reused, upd.Recomputed, upd.Work})

	// Phase-2 equivalent: LAC, invalidate, partial analyses.
	for step := 0; step < 12; step++ {
		v, repl, ok := randomLAC(rng, g)
		if !ok {
			break
		}
		cs := g.ReplaceWithLit(v, repl)
		changed := s.ResimulateFrom(cs.Rewired)
		sv := cuts.UpdateAfter(cs)
		cache.Invalidate(cs, changed, sv)

		// Random target set over the live nodes (like S_cand).
		var live []int32
		for _, u := range g.Topo() {
			if g.IsAnd(u) {
				live = append(live, u)
			}
		}
		if len(live) == 0 {
			break
		}
		var targets []int32
		for _, u := range live {
			if rng.Intn(3) != 0 {
				targets = append(targets, u)
			}
		}
		if len(targets) == 0 {
			targets = live[:1]
		}

		u := cache.Rows(targets, threads)
		refPart := BuildDisjoint(g, s, cuts, targets, threads)
		for _, w := range targets {
			compareRow(t, "rows", w, u.Res.Row(w), refPart.Row(w))
		}
		// The whole ensured closure must equal a full fresh build too (the
		// partial reference frees its intermediates, so compare against a
		// full one).
		refFull := BuildDisjoint(g, s, cuts, nil, threads)
		for _, w := range Closure(cuts, targets) {
			compareRow(t, "closure", w, u.Res.Row(w), refFull.Row(w))
		}
		acct = append(acct, stepAcct{u.Needed, u.Reused, u.Recomputed, u.Work})
	}
	return acct
}

// TestCacheMatchesFreshBuild is the differential test of the incremental
// CPM cache: across randomized LAC sequences (constants, PI and SASIMI
// substitutions, MFFC removals) every cache-served analysis must be
// bit-identical to a from-scratch BuildDisjoint on the same cut set, for
// every thread count — and the reuse/recompute accounting must be
// thread-independent.
func TestCacheMatchesFreshBuild(t *testing.T) {
	threadCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for trial := 0; trial < 4; trial++ {
		seed := int64(41 + 13*trial)
		var first []stepAcct
		totalReused := 0
		for _, threads := range threadCounts {
			acct := runCacheSequence(t, seed, threads)
			if first == nil {
				first = acct
				for _, a := range acct {
					totalReused += a.reused
				}
				continue
			}
			if len(acct) != len(first) {
				t.Fatalf("trial %d threads=%d: %d steps, want %d", trial, threads, len(acct), len(first))
			}
			for i := range acct {
				if acct[i] != first[i] {
					t.Fatalf("trial %d threads=%d step %d: accounting %+v, want %+v (thread-dependent cache behaviour)",
						trial, threads, i, acct[i], first[i])
				}
			}
		}
		if totalReused == 0 {
			t.Fatalf("trial %d: the cache never reused a row across the whole sequence", trial)
		}
	}
}

// TestCacheOnGeneratedCircuit runs the differential check on a structured
// arithmetic circuit from internal/gen (a multiplier), where MFFC removals
// and deep reconvergence are common.
func TestCacheOnGeneratedCircuit(t *testing.T) {
	g := gen.MultU(4, 4).Sweep()
	rng := rand.New(rand.NewSource(7))
	s := sim.New(g, sim.Options{Patterns: 256, Seed: 7})
	cuts := cut.NewSet(g, 0)
	cache := NewCache(g, s)
	cache.Rebuild(cuts, 0)
	reused := 0
	for step := 0; step < 8; step++ {
		v, repl, ok := randomLAC(rng, g)
		if !ok {
			break
		}
		cs := g.ReplaceWithLit(v, repl)
		changed := s.ResimulateFrom(cs.Rewired)
		sv := cuts.UpdateAfter(cs)
		cache.Invalidate(cs, changed, sv)
		var targets []int32
		for _, u := range g.Topo() {
			if g.IsAnd(u) {
				targets = append(targets, u)
			}
		}
		if len(targets) == 0 {
			break
		}
		u := cache.Rows(targets, 0)
		reused += u.Reused
		ref := BuildDisjoint(g, s, cuts, nil, 0)
		for _, w := range targets {
			compareRow(t, "mult", w, u.Res.Row(w), ref.Row(w))
		}
	}
	if reused == 0 {
		t.Fatal("no rows reused on the generated circuit")
	}
}

// TestCachePoolRecycles checks the allocation story: after the first full
// build, invalidation/recompute cycles must predominantly serve diff
// vectors from the free-list pool instead of allocating.
func TestCachePoolRecycles(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 7, 120, 6)
	s := sim.New(g, sim.Options{Patterns: 256, Seed: 3})
	cuts := cut.NewSet(g, 1)
	cache := NewCache(g, s)
	cache.Rebuild(cuts, 1)
	ps0 := cache.Pool().Stats()
	for step := 0; step < 6; step++ {
		v, repl, ok := randomLAC(rng, g)
		if !ok {
			break
		}
		cs := g.ReplaceWithLit(v, repl)
		changed := s.ResimulateFrom(cs.Rewired)
		sv := cuts.UpdateAfter(cs)
		cache.Invalidate(cs, changed, sv)
		var targets []int32
		for _, u := range g.Topo() {
			if g.IsAnd(u) {
				targets = append(targets, u)
			}
		}
		cache.Rows(targets, 1)
	}
	ps1 := cache.Pool().Stats()
	if ps1.Gets == ps0.Gets {
		t.Skip("no rows recomputed after rebuild (degenerate sequence)")
	}
	if ps1.Reuses == 0 {
		t.Fatalf("pool never reused a vector (%d gets after rebuild)", ps1.Gets-ps0.Gets)
	}
	if ps1.Gets != ps1.Reuses+ps1.Misses {
		t.Errorf("pool stats inconsistent: gets %d != reuses %d + misses %d", ps1.Gets, ps1.Reuses, ps1.Misses)
	}
	if ps1.Puts == 0 || ps1.HighWater == 0 {
		t.Errorf("pool stats missing recycle accounting: %+v", ps1)
	}
}
