package cpm

import (
	"math/rand"
	"testing"

	"dpals/internal/aig"
	"dpals/internal/bitvec"
	"dpals/internal/cut"
	"dpals/internal/sim"
)

func randomGraph(rng *rand.Rand, nPIs, nAnds, nPOs int) *aig.Graph {
	g := aig.New("rand")
	var lits []aig.Lit
	for i := 0; i < nPIs; i++ {
		lits = append(lits, g.AddPI(""))
	}
	for i := 0; i < nAnds; i++ {
		a := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 1)
		b := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 1)
		lits = append(lits, g.And(a, b))
	}
	for i := 0; i < nPOs; i++ {
		g.AddPO(lits[len(lits)-1-rng.Intn(minInt(10, len(lits)))].NotIf(rng.Intn(2) == 1), "")
	}
	return g.Sweep()
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// bruteForceRow computes the exact Boolean differences of every PO w.r.t.
// node v by flipping v and fully resimulating a scratch copy of the values.
func bruteForceRow(g *aig.Graph, s *sim.Sim, v int32) map[int32]bitvec.Vec {
	words := s.Words()
	val := make(map[int32]bitvec.Vec)
	flipped := bitvec.NewWords(words)
	flipped.Not(s.Val(v))
	flipped.Mask(s.Patterns())
	val[v] = flipped
	get := func(u int32) bitvec.Vec {
		if fv, ok := val[u]; ok {
			return fv
		}
		return s.Val(u)
	}
	for _, u := range g.Topo() {
		if u == v || !g.IsAnd(u) {
			continue
		}
		f0, f1 := g.Fanins(u)
		a, b := get(f0.Var()), get(f1.Var())
		dst := bitvec.NewWords(words)
		dst.AndMaybeNot(a, b, 0)
		m0, m1 := uint64(0), uint64(0)
		if f0.IsCompl() {
			m0 = ^uint64(0)
		}
		if f1.IsCompl() {
			m1 = ^uint64(0)
		}
		for i := range dst {
			dst[i] = (a[i] ^ m0) & (b[i] ^ m1)
		}
		dst.Mask(s.Patterns())
		val[u] = dst
	}
	out := map[int32]bitvec.Vec{}
	for o, po := range g.POs() {
		d := bitvec.NewWords(words)
		d.Xor(get(po.Var()), s.Val(po.Var()))
		if !d.IsZero() {
			out[int32(o)] = d
		}
	}
	return out
}

func checkAgainstBruteForce(t *testing.T, g *aig.Graph, s *sim.Sim, res *Result, v int32) {
	t.Helper()
	want := bruteForceRow(g, s, v)
	row := res.Row(v)
	got := map[int32]bitvec.Vec{}
	for i, o := range row.POs {
		if !row.Diffs[i].IsZero() {
			got[o] = row.Diffs[i]
		}
	}
	for o, w := range want {
		gv, ok := got[o]
		if !ok {
			t.Fatalf("node %d PO %d: missing diff (brute force has %d flips)", v, o, w.Count())
		}
		if !gv.Equal(w) {
			t.Fatalf("node %d PO %d: diff mismatch (%d vs %d flips)", v, o, gv.Count(), w.Count())
		}
	}
	for o := range got {
		if _, ok := want[o]; !ok {
			t.Fatalf("node %d PO %d: spurious nonzero diff", v, o)
		}
	}
}

func TestDisjointCPMMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 12; trial++ {
		g := randomGraph(rng, 6, 70, 6)
		s := sim.New(g, sim.Options{Patterns: 192, Seed: int64(trial)})
		cuts := cut.NewSet(g, 1)
		res := BuildDisjoint(g, s, cuts, nil, 1)
		for _, v := range g.Topo() {
			if g.IsAnd(v) {
				checkAgainstBruteForce(t, g, s, res, v)
			}
		}
	}
}

func TestVECBEEInfiniteMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 8; trial++ {
		g := randomGraph(rng, 6, 60, 5)
		s := sim.New(g, sim.Options{Patterns: 128, Seed: int64(trial)})
		res := BuildVECBEE(g, s, 0, nil, 1)
		for _, v := range g.Topo() {
			if g.IsAnd(v) {
				checkAgainstBruteForce(t, g, s, res, v)
			}
		}
	}
}

// On a fanout-free (tree) circuit every depth limit is exact, so l=1 must
// match brute force there.
func TestVECBEEDepth1ExactOnTree(t *testing.T) {
	g := aig.New("tree")
	var leaves []aig.Lit
	for i := 0; i < 16; i++ {
		leaves = append(leaves, g.AddPI(""))
	}
	// Balanced AND/OR tree.
	level := leaves
	for len(level) > 1 {
		var next []aig.Lit
		for i := 0; i+1 < len(level); i += 2 {
			if i%4 == 0 {
				next = append(next, g.And(level[i], level[i+1]))
			} else {
				next = append(next, g.Or(level[i], level[i+1]))
			}
		}
		level = next
	}
	g.AddPO(level[0], "root")
	gg := g.Sweep()
	s := sim.New(gg, sim.Options{Patterns: 256, Seed: 3})
	res := BuildVECBEE(gg, s, 1, nil, 1)
	for _, v := range gg.Topo() {
		if gg.IsAnd(v) {
			checkAgainstBruteForce(t, gg, s, res, v)
		}
	}
}

// l=1 must be conservative-or-wrong only through reconvergence: on a
// reconvergent circuit it may differ from brute force, but l large enough
// must converge to exact.
func TestVECBEEDepthConvergence(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	g := randomGraph(rng, 5, 40, 4)
	s := sim.New(g, sim.Options{Patterns: 128, Seed: 9})
	deep := int(g.Depth()) + 2
	res := BuildVECBEE(g, s, deep, nil, 1)
	for _, v := range g.Topo() {
		if g.IsAnd(v) {
			checkAgainstBruteForce(t, g, s, res, v)
		}
	}
}

func TestClosureExample2(t *testing.T) {
	// Paper Fig. 6: a,b feed d (their shared disjoint cut), d feeds O1;
	// c,e,f are other nodes not needed. We model the shape:
	//   a = AND(p,q), b = AND(q,r), d = AND(a,b) -> O1
	//   c = AND(p,r) feeding e = AND(c,d) ... but to keep d the only PO
	//   driver, attach e to a second output? The essential property to
	//   check: Closure({a,b}) = {a,b,d} when C(a)=C(b)={d} and C(d)={O1}.
	g := aig.New("ex2")
	p, q, r := g.AddPI("p"), g.AddPI("q"), g.AddPI("r")
	al := g.And(p, q)
	bl := g.And(q, r)
	dl := g.And(al, bl)
	g.AddPO(dl, "O1")
	cuts := cut.NewSet(g, 1)
	got := Closure(cuts, []int32{al.Var(), bl.Var()})
	want := map[int32]bool{al.Var(): true, bl.Var(): true, dl.Var(): true}
	if len(got) != 3 {
		t.Fatalf("Closure = %v, want 3 nodes", got)
	}
	for _, v := range got {
		if !want[v] {
			t.Fatalf("Closure contains unexpected node %d", v)
		}
	}
}

// Partial CPM: rows for targets must match the full computation.
func TestPartialMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 8; trial++ {
		g := randomGraph(rng, 6, 80, 6)
		s := sim.New(g, sim.Options{Patterns: 128, Seed: int64(trial)})
		cuts := cut.NewSet(g, 1)
		full := BuildDisjoint(g, s, cuts, nil, 1)

		// Pick a handful of random targets.
		var ands []int32
		for _, v := range g.Topo() {
			if g.IsAnd(v) {
				ands = append(ands, v)
			}
		}
		if len(ands) < 4 {
			continue
		}
		targets := []int32{ands[0], ands[len(ands)/3], ands[len(ands)/2], ands[len(ands)-1]}
		part := BuildDisjoint(g, s, cuts, targets, 1)
		for _, v := range targets {
			fr, pr := full.Row(v), part.Row(v)
			if len(fr.POs) != len(pr.POs) {
				t.Fatalf("trial %d node %d: PO count %d vs %d", trial, v, len(fr.POs), len(pr.POs))
			}
			for i := range fr.POs {
				if fr.POs[i] != pr.POs[i] || !fr.Diffs[i].Equal(pr.Diffs[i]) {
					t.Fatalf("trial %d node %d PO %d: partial row mismatch", trial, v, fr.POs[i])
				}
			}
		}
		// Rows of nodes outside the closure must not be retained.
		inClosure := map[int32]bool{}
		for _, v := range Closure(cuts, targets) {
			inClosure[v] = true
		}
		isTarget := map[int32]bool{}
		for _, v := range targets {
			isTarget[v] = true
		}
		for _, v := range ands {
			if !inClosure[v] && part.Has(v) {
				t.Fatalf("trial %d: node %d outside closure has a retained row", trial, v)
			}
			if inClosure[v] && !isTarget[v] && part.Has(v) {
				t.Fatalf("trial %d: intermediate node %d row was not freed", trial, v)
			}
		}
	}
}

func BenchmarkBuildDisjointFull(b *testing.B) {
	rng := rand.New(rand.NewSource(47))
	g := randomGraph(rng, 24, 1500, 12)
	s := sim.New(g, sim.Options{Patterns: 4096, Seed: 1})
	cuts := cut.NewSet(g, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildDisjoint(g, s, cuts, nil, 1)
	}
}

func BenchmarkBuildVECBEEInfinite(b *testing.B) {
	rng := rand.New(rand.NewSource(47))
	g := randomGraph(rng, 24, 1500, 12)
	s := sim.New(g, sim.Options{Patterns: 4096, Seed: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildVECBEE(g, s, 0, nil, 1)
	}
}

func BenchmarkBuildPartial(b *testing.B) {
	rng := rand.New(rand.NewSource(47))
	g := randomGraph(rng, 24, 1500, 12)
	s := sim.New(g, sim.Options{Patterns: 4096, Seed: 1})
	cuts := cut.NewSet(g, 1)
	var targets []int32
	for _, v := range g.Topo() {
		if g.IsAnd(v) {
			targets = append(targets, v)
			if len(targets) == 60 {
				break
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildDisjoint(g, s, cuts, targets, 1)
	}
}

// equalResults compares every retained row of two CPM results bit for bit,
// PO order included.
func equalResults(t *testing.T, label string, g *aig.Graph, a, b *Result) {
	t.Helper()
	for v := int32(0); v <= g.MaxVar(); v++ {
		ra, rb := a.Row(v), b.Row(v)
		if len(ra.POs) != len(rb.POs) {
			t.Fatalf("%s node %d: %d vs %d retained POs", label, v, len(ra.POs), len(rb.POs))
		}
		for i := range ra.POs {
			if ra.POs[i] != rb.POs[i] {
				t.Fatalf("%s node %d: PO order %v vs %v", label, v, ra.POs, rb.POs)
			}
			if !ra.Diffs[i].Equal(rb.Diffs[i]) {
				t.Fatalf("%s node %d PO %d: diff vectors differ", label, v, ra.POs[i])
			}
		}
	}
}

// TestBuildDisjointParallelMatchesSerial checks the bit-identity contract of
// the wave-parallel CPM builder, for full and target-restricted builds.
func TestBuildDisjointParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 12; trial++ {
		g := randomGraph(rng, 6, 70, 5)
		s := sim.New(g, sim.Options{Patterns: 256, Seed: int64(trial)})
		cuts := cut.NewSet(g, 1)
		var targets []int32
		for _, v := range g.Topo() {
			if g.IsAnd(v) && rng.Intn(3) == 0 {
				targets = append(targets, v)
			}
		}
		for _, threads := range []int{2, 8} {
			full1 := BuildDisjoint(g, s, cuts, nil, 1)
			fullN := BuildDisjoint(g, s, cuts, nil, threads)
			equalResults(t, "full", g, full1, fullN)
			if len(targets) > 0 {
				part1 := BuildDisjoint(g, s, cuts, targets, 1)
				partN := BuildDisjoint(g, s, cuts, targets, threads)
				equalResults(t, "partial", g, part1, partN)
			}
		}
	}
}

// TestBuildVECBEEParallelMatchesSerial covers both VECBEE schedules: the
// level-waved finite-depth build and the single-wave infinite build.
func TestBuildVECBEEParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 12; trial++ {
		g := randomGraph(rng, 6, 70, 5)
		s := sim.New(g, sim.Options{Patterns: 256, Seed: int64(trial)})
		var targets []int32
		for _, v := range g.Topo() {
			if g.IsAnd(v) && rng.Intn(3) == 0 {
				targets = append(targets, v)
			}
		}
		for _, l := range []int{0, 2, 5} {
			for _, threads := range []int{2, 8} {
				full1 := BuildVECBEE(g, s, l, nil, 1)
				fullN := BuildVECBEE(g, s, l, nil, threads)
				equalResults(t, "full", g, full1, fullN)
				if len(targets) > 0 {
					part1 := BuildVECBEE(g, s, l, targets, 1)
					partN := BuildVECBEE(g, s, l, targets, threads)
					equalResults(t, "partial", g, part1, partN)
				}
			}
		}
	}
}
