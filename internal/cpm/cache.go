package cpm

import (
	"context"
	"sort"

	"dpals/internal/aig"
	"dpals/internal/bitvec"
	"dpals/internal/cut"
	"dpals/internal/par"
	"dpals/internal/sim"
)

// Update summarises one Cache operation: the shared Result the rows live
// in, how many rows the requested closure needed, how many of those were
// served from the cache versus recomputed, and the deterministic work
// estimate of the recomputation (the counterpart of Result.Work for a
// from-scratch build). Reused + Recomputed == Needed. ReusedWork is the
// recompute work the reused rows would have cost: row validity implies
// unchanged construction inputs, so the cost recorded at the row's last
// recompute is exactly what recomputing it now would charge — Work +
// ReusedWork therefore reproduces the deterministic work estimate of a
// from-scratch build of the same closure.
type Update struct {
	Res        *Result
	Needed     int
	Reused     int
	Recomputed int
	Work       int64
	ReusedWork int64
}

// Cache is a persistent incremental CPM: it retains the rows of the last
// comprehensive (phase-1) analysis across the phase-2 iterations of the
// dual-phase framework and recomputes only the rows an applied LAC
// invalidated, instead of rebuilding the closure of S_cand from scratch on
// every iteration (§III-C).
//
// The lifecycle mirrors the dual-phase loop:
//
//	cache := NewCache(g, s)
//	cache.Rebuild(cuts, threads)            // phase 1: full CPM
//	for each phase-2 iteration {
//	    upd := cache.Rows(scand, threads)   // reuse + recompute dirty
//	    … evaluate LACs on upd.Res, apply one …
//	    cache.Invalidate(cs, changed, sv)   // after every apply
//	}
//
// Invalidation rule (change signals → dependency closure → recompute set):
// an applied LAC announces itself through three signals the engine already
// produces — the structural aig.ChangeSet of ReplaceWithLit, the
// changed-value variables returned by sim.ResimulateFrom, and the cut set
// S_v recomputed by cut.Set.UpdateAfter. A cached row of node n is stale
// iff one of the inputs of its construction changed: a simulation value
// inside its flip region or on the region's side inputs, its disjoint cut,
// the region's fanout structure, or the row of one of its cut elements.
// Every one of those inputs lives in the transitive fanout of n (cut
// elements, region members, PO-cone drivers) or is a fanin of a region
// member, so the stale set is covered by the transitive-fanin closure of
//
//	roots = Removed ∪ FanoutChanged ∪ Rewired ∪ S_v
//	      ∪ changed ∪ fanouts(changed)
//
// walked through dead nodes as well (a removed MFFC preserves its fanin
// literals, and pre-change regions reached the removed nodes). Because the
// closure is transitive, it is automatically closed under the reverse of
// the disjoint-cut dependency used by Closure: if a cut element's row is
// stale, every consumer lies in the element's fanin closure too.
//
// All diff vectors are backed by a free-list pool: vectors of invalidated
// rows are recycled, not reallocated, so steady-state phase-2 iterations
// allocate near zero. Results are bit-identical to a from-scratch
// BuildDisjoint over the same cut set for every thread count.
//
// A Cache is not safe for concurrent use; its methods must be called from
// one goroutine (the internal wave fan-out is race-clean).
type Cache struct {
	g    *aig.Graph
	s    *sim.Sim
	cuts *cut.Set
	res  *Result
	pool *bitvec.Pool

	valid   []bool  // per var: row is up to date
	pos     []int32 // topo position per var, refreshed per build
	rowWork []int64 // per var: work of the row's last recompute (Update.ReusedWork)

	rss     []*regionSimulator // persistent per-worker scratch
	cutSets []map[int32]bool

	// epoch-stamped scratch (avoids per-call maps and clears)
	mark      []uint32
	epoch     uint32
	queue     []int32 // Invalidate BFS / Rows closure scratch
	recompute []int32 // Rows recompute-set scratch
	lvl       []int32 // wave levels, meaningful only under inSet
	inSet     []bool  // recompute-set membership during runWaves
}

// NewCache returns an empty cache for g simulated by s. Rebuild must run
// before the first Rows call.
func NewCache(g *aig.Graph, s *sim.Sim) *Cache {
	n := g.NumVars()
	return &Cache{
		g:   g,
		s:   s,
		res: &Result{Words: s.Words(), rows: make([]Row, n)},
		// Pool misses carve rows from a slab arena instead of allocating
		// individually; the arena lives (and is never Reset) as long as the
		// cache, so recycled and carved rows are interchangeable.
		pool:    bitvec.NewArenaPool(s.Words(), bitvec.NewArena(s.Words())),
		valid:   make([]bool, n),
		pos:     make([]int32, n),
		rowWork: make([]int64, n),
		mark:    make([]uint32, n),
		lvl:     make([]int32, n),
		inSet:   make([]bool, n),
	}
}

// Result returns the shared result the cached rows live in. Rows are only
// guaranteed valid for closures ensured by the last Rebuild/Rows call.
func (c *Cache) Result() *Result { return c.res }

// Pool exposes the diff-vector pool (for allocation-reuse introspection).
func (c *Cache) Pool() *bitvec.Pool { return c.pool }

// releaseRow recycles the diff vectors of v's row into the pool and leaves
// an empty row with retained slice capacity.
func (c *Cache) releaseRow(v int32) {
	row := &c.res.rows[v]
	for i, d := range row.Diffs {
		c.pool.Put(d)
		row.Diffs[i] = nil
	}
	row.POs = row.POs[:0]
	row.Diffs = row.Diffs[:0]
	c.valid[v] = false
}

func (c *Cache) nextEpoch() uint32 {
	c.epoch++
	if c.epoch == 0 {
		for i := range c.mark {
			c.mark[i] = 0
		}
		c.epoch = 1
	}
	return c.epoch
}

func (c *Cache) refreshPos() {
	for i, v := range c.g.Topo() {
		c.pos[v] = int32(i)
	}
}

// simulators returns (growing if needed) the first `workers` persistent
// region simulators. They share c.pos, whose contents refreshPos updates in
// place, so they stay consistent after structural edits.
func (c *Cache) simulators(workers int) ([]*regionSimulator, []map[int32]bool) {
	for len(c.rss) < workers {
		c.rss = append(c.rss, newRegionSimulator(c.g, c.s, c.pos))
		c.cutSets = append(c.cutSets, make(map[int32]bool))
	}
	return c.rss[:workers], c.cutSets[:workers]
}

// Rebuild performs the comprehensive (phase-1) build: every live AND row is
// recomputed against cuts and retained. Previously cached vectors are
// recycled through the pool first, so repeated rounds reuse the same
// backing memory. The produced rows are bit-identical to
// BuildDisjoint(g, s, cuts, nil, threads).
func (c *Cache) Rebuild(cuts *cut.Set, threads int) Update {
	upd, _ := c.RebuildCtx(context.Background(), cuts, threads)
	return upd
}

// RebuildCtx is Rebuild with cooperative cancellation: the build checks
// ctx at every wave boundary and stops early once it is cancelled,
// returning ctx.Err(). On cancellation every row touched by this build is
// released again (the cache is left consistent, holding no valid rows),
// so the returned Update must be discarded; an uncancelled build is
// bit-identical to Rebuild.
func (c *Cache) RebuildCtx(ctx context.Context, cuts *cut.Set, threads int) (Update, error) {
	c.cuts = cuts
	for v := range c.res.rows {
		if len(c.res.rows[v].Diffs) > 0 {
			c.releaseRow(int32(v))
		} else {
			c.valid[int32(v)] = false
		}
	}
	c.refreshPos()
	workBefore := c.res.Work
	proc := c.recompute[:0]
	for _, v := range c.g.Topo() {
		if c.g.IsAnd(v) {
			proc = append(proc, v)
		}
	}
	err := c.runWaves(ctx, proc, threads)
	c.recompute = proc[:0]
	return Update{
		Res:        c.res,
		Needed:     len(proc),
		Recomputed: len(proc),
		Work:       c.res.Work - workBefore,
	}, err
}

// Invalidate marks every row the applied LAC may have changed as stale and
// recycles its vectors. cs is the ChangeSet of the replacement, changed the
// variables sim.ResimulateFrom reported as value-changed (the slice is only
// read during the call, so the simulator-owned scratch may be passed
// directly), and cutsRecomputed the node set cut.Set.UpdateAfter repaired
// (S_v). Must be called after the simulator and the cut set have been
// brought up to date.
func (c *Cache) Invalidate(cs aig.ChangeSet, changed, cutsRecomputed []int32) {
	ep := c.nextEpoch()
	q := c.queue[:0]
	push := func(v int32) {
		if c.mark[v] != ep {
			c.mark[v] = ep
			q = append(q, v)
		}
	}
	for _, v := range cs.Removed {
		push(v)
	}
	for _, v := range cs.FanoutChanged {
		push(v)
	}
	for _, v := range cs.Rewired {
		push(v)
	}
	for _, v := range cutsRecomputed {
		push(v)
	}
	for _, v := range changed {
		// A changed value invalidates regions containing v AND regions
		// where v is only a side input — the latter lie in the fanin
		// closure of v's fanouts.
		push(v)
		for _, f := range c.g.Fanouts(v) {
			push(f)
		}
	}
	// Transitive-fanin closure, walked through dead nodes too: a removed
	// node keeps its fanin literals, and the pre-change region of a stale
	// row may have passed through it.
	for i := 0; i < len(q); i++ {
		v := q[i]
		if c.g.Type(v) != aig.TypeAnd {
			continue
		}
		f0, f1 := c.g.Fanins(v)
		push(f0.Var())
		push(f1.Var())
	}
	for _, v := range q {
		if len(c.res.rows[v].Diffs) > 0 {
			c.releaseRow(v)
		} else {
			c.valid[v] = false
		}
	}
	c.queue = q[:0]
}

// Refresh is RefreshCtx without cancellation.
func (c *Cache) Refresh(cuts *cut.Set, targets []int32, threads int) Update {
	upd, _ := c.RefreshCtx(context.Background(), cuts, targets, threads)
	return upd
}

// RefreshCtx is the warm counterpart of RebuildCtx for the cross-round
// reuse of the dual-phase framework: it ensures valid rows for every node
// in targets — the live AND nodes of the graph — recomputing only the rows
// invalidated since the previous build and serving everything else from
// the cache, so a comprehensive pass becomes "recompute stale rows"
// instead of "revalidate everything". The produced rows are bit-identical
// to RebuildCtx over the same cut set (PR 2's cache invariant, applied at
// round granularity), and Update.Work + Update.ReusedWork reproduces the
// cold build's deterministic work estimate.
//
// The warm path requires the same incrementally-maintained cut set the
// cached rows were built against; handed a different (rebuilt) set it
// falls back to a full RebuildCtx, because row validity is only meaningful
// relative to the cuts the rows were constructed with.
func (c *Cache) RefreshCtx(ctx context.Context, cuts *cut.Set, targets []int32, threads int) (Update, error) {
	if cuts != c.cuts {
		return c.RebuildCtx(ctx, cuts, threads)
	}
	return c.RowsCtx(ctx, targets, threads)
}

// Rows ensures valid rows for the disjoint-cut closure of targets (§III-C
// N(S_cand)) and returns the shared Result plus reuse accounting. Only
// stale rows of the closure are recomputed; everything else is served from
// the cache. Row contents are bit-identical to a from-scratch
// BuildDisjoint(g, s, cuts, targets, threads) for every thread count.
func (c *Cache) Rows(targets []int32, threads int) Update {
	upd, _ := c.RowsCtx(context.Background(), targets, threads)
	return upd
}

// RowsCtx is Rows with cooperative cancellation, with the same contract
// as RebuildCtx: on a non-nil error the recomputed rows of this call are
// released again and the Update must be discarded, while previously valid
// cached rows stay valid.
func (c *Cache) RowsCtx(ctx context.Context, targets []int32, threads int) (Update, error) {
	c.refreshPos()
	workBefore := c.res.Work

	// Closure of targets under disjoint-cut membership (sinks excluded) —
	// Closure with epoch-stamped scratch instead of per-call maps.
	ep := c.nextEpoch()
	need := c.queue[:0]
	for _, v := range targets {
		if c.mark[v] != ep {
			c.mark[v] = ep
			need = append(need, v)
		}
	}
	for i := 0; i < len(need); i++ {
		for _, e := range c.cuts.Cut(need[i]) {
			if !cut.IsSink(e) && c.mark[e] != ep {
				c.mark[e] = ep
				need = append(need, e)
			}
		}
	}
	proc := c.recompute[:0]
	var reusedWork int64
	for _, v := range need {
		if !c.valid[v] {
			proc = append(proc, v)
		} else {
			reusedWork += c.rowWork[v]
		}
	}
	err := c.runWaves(ctx, proc, threads)
	upd := Update{
		Res:        c.res,
		Needed:     len(need),
		Reused:     len(need) - len(proc),
		Recomputed: len(proc),
		Work:       c.res.Work - workBefore,
		ReusedWork: reusedWork,
	}
	c.queue = need[:0]
	c.recompute = proc[:0]
	return upd, err
}

// runWaves recomputes the given stale rows over the wave scheduler of
// package par and marks them valid. Rows outside the set are read-only
// dependencies; within the set, a node is scheduled strictly after its
// non-sink cut elements, exactly like BuildDisjoint.
//
// On cancellation it stops at the next wave boundary and releases every
// row of the set again — a cancelled wave leaves some rows complete and
// some untouched, and releasing them all restores the invariant that a
// non-valid row is empty (so a later recompute appends onto a clean row).
func (c *Cache) runWaves(ctx context.Context, proc []int32, threads int) error {
	if len(proc) == 0 {
		return nil
	}
	sort.Slice(proc, func(i, j int) bool { return c.pos[proc[i]] > c.pos[proc[j]] })
	for _, v := range proc {
		c.inSet[v] = true
	}
	// Wave levels over the in-set dependency DAG: cut elements lie in the
	// transitive fanout, i.e. earlier in the descending-position order, so
	// one forward sweep suffices. Valid (out-of-set) elements are done
	// dependencies and contribute no level.
	var numLvl int32
	for _, v := range proc {
		var l int32
		for _, e := range c.cuts.Cut(v) {
			if !cut.IsSink(e) && c.inSet[e] && c.lvl[e] >= l {
				l = c.lvl[e] + 1
			}
		}
		c.lvl[v] = l
		if l+1 > numLvl {
			numLvl = l + 1
		}
	}
	waves := make([][]int32, numLvl)
	for _, v := range proc {
		waves[c.lvl[v]] = append(waves[c.lvl[v]], v)
	}
	b := &disjointBuilder{g: c.g, s: c.s, cuts: c.cuts, res: c.res, pool: c.pool, rowWork: c.rowWork}
	workers := par.ScratchSlots(threads, len(proc))
	rss, cutSets := c.simulators(workers)
	var err error
	for _, wave := range waves {
		if err = par.ForEachCtx(ctx, threads, wave, func(w int, v int32) {
			b.processNode(rss[w], cutSets[w], v)
		}); err != nil {
			break
		}
	}
	for _, v := range proc {
		c.inSet[v] = false
		if err != nil {
			if len(c.res.rows[v].Diffs) > 0 {
				c.releaseRow(v)
			} else {
				c.valid[v] = false
			}
			continue
		}
		c.valid[v] = true
	}
	return err
}
