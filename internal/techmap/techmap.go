// Package techmap maps a swept AIG onto a small generic standard-cell
// library and reports area, critical-path delay and the area-delay product
// (ADP). The paper evaluates synthesis quality as the ADP ratio of the
// approximate circuit over the original; any monotone structural cost
// model preserves that ratio's ordering, so this deterministic mapper
// substitutes for ABC + the proprietary cell library of the paper (see
// DESIGN.md, substitutions).
//
// The mapper recognises the standard 3-node XOR/XNOR and MUX shapes and
// absorbs them into dedicated cells; every other AND node maps to an AND2,
// and each node whose complement is consumed pays one shared inverter.
package techmap

import (
	"fmt"
	"sort"

	"dpals/internal/aig"
)

// Cell is one library cell.
type Cell struct {
	Name  string
	Area  float64 // in gate-equivalents (NAND2 = 1)
	Delay float64 // normalised propagation delay
}

// Library is the cell set used by Map.
type Library struct {
	Inv  Cell
	And2 Cell
	Xor2 Cell
	Mux  Cell
}

// GenericLibrary returns the built-in technology-neutral library.
func GenericLibrary() Library {
	return Library{
		Inv:  Cell{"INV", 0.5, 0.35},
		And2: Cell{"AND2", 1.0, 0.60},
		Xor2: Cell{"XOR2", 2.0, 0.95},
		Mux:  Cell{"MUX2", 2.25, 0.90},
	}
}

// Mapping is the result of technology mapping.
type Mapping struct {
	Area  float64
	Delay float64
	Cells map[string]int
}

// ADP returns the area-delay product.
func (m Mapping) ADP() float64 { return m.Area * m.Delay }

// String formats the mapping summary.
func (m Mapping) String() string {
	names := make([]string, 0, len(m.Cells))
	for n := range m.Cells {
		names = append(names, n)
	}
	sort.Strings(names)
	s := fmt.Sprintf("area=%.2f delay=%.2f adp=%.2f", m.Area, m.Delay, m.ADP())
	for _, n := range names {
		s += fmt.Sprintf(" %s=%d", n, m.Cells[n])
	}
	return s
}

// ADPRatio returns ADP(approx)/ADP(orig) — the paper's quality measure.
func ADPRatio(approx, orig Mapping) float64 {
	if orig.ADP() == 0 {
		return 1
	}
	return approx.ADP() / orig.ADP()
}

// Map maps g (swept internally) onto lib.
func Map(g *aig.Graph, lib Library) Mapping {
	g = g.Sweep()
	m := Mapping{Cells: map[string]int{}}
	if g.NumAnds() == 0 {
		// Wires and inverters only.
		for _, po := range g.POs() {
			if po.IsCompl() && po.Var() != 0 {
				m.Cells[lib.Inv.Name]++
				m.Area += lib.Inv.Area
				if lib.Inv.Delay > m.Delay {
					m.Delay = lib.Inv.Delay
				}
			}
		}
		return m
	}

	type matchKind uint8
	const (
		plainAnd matchKind = iota
		xorRoot
		muxRoot
		absorbed
	)
	kind := make([]matchKind, g.NumVars())

	// Pattern match: node n = AND(¬u, ¬v) with u = AND(a,b), v = AND(c,d),
	// where {c,d} = {¬a,¬b} (XOR of a,b — complemented output gives XNOR)
	// or u,v share a select literal in opposite polarity (MUX). The inner
	// nodes must be single-fanout and not drive POs so the absorption is
	// legal.
	poRef := make([]bool, g.NumVars())
	for _, po := range g.POs() {
		poRef[po.Var()] = true
	}
	for _, v := range g.Topo() {
		if g.Type(v) != aig.TypeAnd {
			continue
		}
		f0, f1 := g.Fanins(v)
		if !f0.IsCompl() || !f1.IsCompl() {
			continue
		}
		u, w := f0.Var(), f1.Var()
		if !g.IsAnd(u) || !g.IsAnd(w) || u == w {
			continue
		}
		if g.NumFanouts(u) != 1 || g.NumFanouts(w) != 1 || poRef[u] || poRef[w] {
			continue
		}
		if kind[u] != plainAnd || kind[w] != plainAnd {
			continue
		}
		a, b := g.Fanins(u)
		c, d := g.Fanins(w)
		// XOR: {c,d} == {¬a,¬b}
		if (c == a.Not() && d == b.Not()) || (c == b.Not() && d == a.Not()) {
			kind[v] = xorRoot
			kind[u], kind[w] = absorbed, absorbed
			continue
		}
		// MUX: u = AND(s,t), w = AND(¬s,e) (any operand position).
		shared := func(x, y aig.Lit) bool { return x == y.Not() }
		if shared(a, c) || shared(a, d) || shared(b, c) || shared(b, d) {
			kind[v] = muxRoot
			kind[u], kind[w] = absorbed, absorbed
		}
	}

	// Which nodes need an inverter on their output? A node pays one shared
	// INV if any reader consumes it complemented (or a PO does) — except
	// that readers which are absorbed pattern inners don't count (their
	// inversions are internal to the matched cell), and pattern roots
	// consume their inner nodes pre-inverted for free.
	needInv := make([]bool, g.NumVars())
	markUse := func(l aig.Lit) {
		if l.IsCompl() && l.Var() != 0 {
			needInv[l.Var()] = true
		}
	}
	for _, v := range g.Topo() {
		if g.Type(v) != aig.TypeAnd {
			continue
		}
		switch kind[v] {
		case plainAnd:
			f0, f1 := g.Fanins(v)
			markUse(f0)
			markUse(f1)
		case xorRoot, muxRoot:
			// Dedicated cells absorb input polarity (XOR(a,b) = XNOR(ā,b);
			// libraries carry both variants): no inverter charge for the
			// grandchildren literals.
		case absorbed:
			// handled by the root
		}
	}
	for _, po := range g.POs() {
		markUse(po)
	}

	// Accumulate area and compute arrival times.
	arr := make([]float64, g.NumVars())
	add := func(c Cell) {
		m.Cells[c.Name]++
		m.Area += c.Area
	}
	litArr := func(l aig.Lit, invFree bool) float64 {
		t := arr[l.Var()]
		if l.IsCompl() && !invFree && l.Var() != 0 {
			t += lib.Inv.Delay
		}
		return t
	}
	for v := range needInv {
		if needInv[v] {
			add(lib.Inv)
		}
	}
	max := func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	}
	for _, v := range g.Topo() {
		if g.Type(v) != aig.TypeAnd {
			continue
		}
		f0, f1 := g.Fanins(v)
		switch kind[v] {
		case plainAnd:
			add(lib.And2)
			arr[v] = max(litArr(f0, false), litArr(f1, false)) + lib.And2.Delay
		case xorRoot:
			add(lib.Xor2)
			in := max4(g, arr, lib, v)
			arr[v] = in + lib.Xor2.Delay
		case muxRoot:
			add(lib.Mux)
			in := max4(g, arr, lib, v)
			arr[v] = in + lib.Mux.Delay
		case absorbed:
			// No cell; arrival recorded for completeness (the root reads
			// grandchildren directly).
			arr[v] = max(litArr(f0, true), litArr(f1, true))
		}
	}
	for _, po := range g.POs() {
		t := arr[po.Var()]
		if po.IsCompl() && po.Var() != 0 {
			t += lib.Inv.Delay
		}
		m.Delay = max(m.Delay, t)
	}
	return m
}

// max4 returns the worst arrival among the (deduplicated) input signals of
// a matched XOR/MUX root; input polarity is absorbed by the cell, so no
// inverter delay applies.
func max4(g *aig.Graph, arr []float64, _ Library, v int32) float64 {
	f0, f1 := g.Fanins(v)
	worst := 0.0
	for _, inner := range []int32{f0.Var(), f1.Var()} {
		a, b := g.Fanins(inner)
		for _, l := range []aig.Lit{a, b} {
			if t := arr[l.Var()]; t > worst {
				worst = t
			}
		}
	}
	return worst
}

// Report bundles mapping results for one circuit, for table printing.
type Report struct {
	Ands  int
	Area  float64
	Delay float64
}

// Summarise maps g and returns the Table-I style summary.
func Summarise(g *aig.Graph) Report {
	m := Map(g, GenericLibrary())
	return Report{Ands: g.Sweep().NumAnds(), Area: m.Area, Delay: m.Delay}
}
