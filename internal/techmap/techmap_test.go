package techmap

import (
	"math"
	"testing"

	"dpals/internal/aig"
	"dpals/internal/gen"
)

func TestEmptyAndWireCircuits(t *testing.T) {
	g := aig.New("wire")
	a := g.AddPI("a")
	g.AddPO(a, "y")
	m := Map(g, GenericLibrary())
	if m.Area != 0 || m.Delay != 0 {
		t.Errorf("wire circuit: %v", m)
	}
	g2 := aig.New("inv")
	b := g2.AddPI("a")
	g2.AddPO(b.Not(), "y")
	m2 := Map(g2, GenericLibrary())
	if m2.Cells["INV"] != 1 {
		t.Errorf("inverter circuit: %v", m2)
	}
}

func TestSingleAnd(t *testing.T) {
	g := aig.New("and")
	a, b := g.AddPI("a"), g.AddPI("b")
	g.AddPO(g.And(a, b), "y")
	m := Map(g, GenericLibrary())
	lib := GenericLibrary()
	if m.Cells["AND2"] != 1 || m.Area != lib.And2.Area {
		t.Errorf("single AND: %v", m)
	}
	if m.Delay != lib.And2.Delay {
		t.Errorf("delay = %v, want %v", m.Delay, lib.And2.Delay)
	}
}

func TestXorDetection(t *testing.T) {
	g := aig.New("xor")
	a, b := g.AddPI("a"), g.AddPI("b")
	g.AddPO(g.Xor(a, b), "y")
	m := Map(g, GenericLibrary())
	if m.Cells["XOR2"] != 1 {
		t.Errorf("XOR not detected: %v", m)
	}
	if m.Cells["AND2"] != 0 {
		t.Errorf("XOR left stray ANDs: %v", m)
	}
}

func TestParityTreeAllXor(t *testing.T) {
	g := gen.Parity(8)
	m := Map(g, GenericLibrary())
	if m.Cells["XOR2"] != 7 {
		t.Errorf("parity(8) should map to 7 XOR2 cells: %v", m)
	}
	if m.Cells["AND2"] != 0 {
		t.Errorf("parity tree has stray AND cells: %v", m)
	}
	// ReduceXor builds a linear chain of 7 XORs; the PO may carry one
	// final inverter depending on the root literal's polarity.
	lib := GenericLibrary()
	lo := 7 * lib.Xor2.Delay
	hi := lo + lib.Inv.Delay
	if m.Delay < lo-1e-9 || m.Delay > hi+1e-9 {
		t.Errorf("parity(8) delay %v, want within [%v, %v]", m.Delay, lo, hi)
	}
}

func TestMuxDetection(t *testing.T) {
	g := aig.New("mux")
	s, a, b := g.AddPI("s"), g.AddPI("a"), g.AddPI("b")
	g.AddPO(g.Mux(s, a, b), "y")
	m := Map(g, GenericLibrary())
	if m.Cells["MUX2"] != 1 {
		t.Errorf("MUX not detected: %v", m)
	}
}

func TestSharedInnerNotAbsorbed(t *testing.T) {
	// If an inner node of an XOR shape has another fanout, absorption is
	// illegal and the mapper must fall back to AND cells.
	g := aig.New("shared")
	a, b := g.AddPI("a"), g.AddPI("b")
	u := g.And(a, b.Not())
	v := g.And(a.Not(), b)
	x := g.And(u.Not(), v.Not()) // ¬xor
	g.AddPO(x.Not(), "xor")
	g.AddPO(u, "side") // extra fanout on u
	m := Map(g, GenericLibrary())
	if m.Cells["XOR2"] != 0 {
		t.Errorf("illegal absorption: %v", m)
	}
	if m.Cells["AND2"] != 3 {
		t.Errorf("want 3 AND2 cells: %v", m)
	}
}

func TestSharedInverterCharging(t *testing.T) {
	// One node consumed complemented by two readers pays a single INV.
	g := aig.New("inv-share")
	a, b, c, d := g.AddPI("a"), g.AddPI("b"), g.AddPI("c"), g.AddPI("d")
	x := g.And(a, b)
	y := g.And(x.Not(), c)
	z := g.And(x.Not(), d)
	g.AddPO(y, "y")
	g.AddPO(z, "z")
	m := Map(g, GenericLibrary())
	if m.Cells["INV"] != 1 {
		t.Errorf("shared inverter not shared: %v", m)
	}
	if m.Cells["AND2"] != 3 {
		t.Errorf("want 3 AND2: %v", m)
	}
}

func TestADPRatioAndMonotonicity(t *testing.T) {
	big := gen.MultU(8, 8)
	small := gen.MultU(6, 6)
	mb := Map(big, GenericLibrary())
	ms := Map(small, GenericLibrary())
	if mb.Area <= ms.Area {
		t.Errorf("area not monotone with size: %v vs %v", mb.Area, ms.Area)
	}
	if r := ADPRatio(ms, mb); r <= 0 || r >= 1 {
		t.Errorf("ADP ratio %v out of (0,1)", r)
	}
	if r := ADPRatio(mb, mb); math.Abs(r-1) > 1e-12 {
		t.Errorf("self ADP ratio %v != 1", r)
	}
}

func TestChainDelay(t *testing.T) {
	g := aig.New("chain")
	a, b := g.AddPI("a"), g.AddPI("b")
	x := g.And(a, b)
	for i := 0; i < 9; i++ {
		x = g.And(x, a)
	}
	g.AddPO(x, "y")
	m := Map(g, GenericLibrary())
	lib := GenericLibrary()
	if math.Abs(m.Delay-10*lib.And2.Delay) > 1e-9 {
		t.Errorf("chain delay %v, want %v", m.Delay, 10*lib.And2.Delay)
	}
}

func TestSummarise(t *testing.T) {
	g := gen.Adder(8)
	r := Summarise(g)
	if r.Ands != g.NumAnds() || r.Area <= 0 || r.Delay <= 0 {
		t.Errorf("summary %+v", r)
	}
}
