package par

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"dpals/internal/obs"
)

// TestLaneSpansUnderRecordingTracer: with a recording span on the context,
// every parallel worker must open exactly one lane child span, closed with
// an item count.
func TestLaneSpansUnderRecordingTracer(t *testing.T) {
	tr := obs.New()
	parent := tr.Start("eval")
	ctx := obs.WithSpan(obs.WithTracer(context.Background(), tr), parent)

	const n = 200
	var count atomic.Int64
	if err := ForCtx(ctx, 4, n, func(_, _ int) { count.Add(1) }); err != nil {
		t.Fatal(err)
	}
	parent.End()
	if count.Load() != n {
		t.Fatalf("%d items processed, want %d", count.Load(), n)
	}

	spans := tr.Snapshot()
	var lanes []obs.SpanData
	items := int64(0)
	for _, sp := range spans {
		if sp.Lane == 0 {
			continue
		}
		lanes = append(lanes, sp)
		if sp.Open {
			t.Fatalf("lane span %d still open", sp.Lane)
		}
		if sp.Name != "eval" {
			t.Fatalf("lane span named %q, want parent's name", sp.Name)
		}
		for _, a := range sp.Attrs {
			if a.Key == "items" {
				items += a.Value.(int64)
			}
		}
	}
	if len(lanes) != 4 {
		t.Fatalf("%d lane spans, want 4", len(lanes))
	}
	seen := map[int]bool{}
	for _, sp := range lanes {
		if seen[sp.Lane] {
			t.Fatalf("duplicate lane %d", sp.Lane)
		}
		seen[sp.Lane] = true
	}
	if items != n {
		t.Fatalf("lane item counts sum to %d, want %d", items, n)
	}
}

// TestLaneSpansClosedOnPanic: when a worker callback panics and par
// re-raises it as *Panic, the worker lane spans must still have been
// closed by their defers — the trace stays well-formed.
func TestLaneSpansClosedOnPanic(t *testing.T) {
	tr := obs.New()
	parent := tr.Start("eval")
	ctx := obs.WithSpan(obs.WithTracer(context.Background(), tr), parent)

	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				p, ok := r.(*Panic)
				if !ok {
					t.Fatalf("re-raised %T, want *Panic", r)
				}
				err = p
			}
		}()
		return ForCtx(ctx, 4, 100, func(_, i int) {
			if i == 13 {
				panic("boom")
			}
		})
	}()
	var p *Panic
	if !errors.As(err, &p) {
		t.Fatalf("err = %v, want *Panic", err)
	}
	parent.End()

	for _, sp := range tr.Snapshot() {
		if sp.Open {
			t.Fatalf("span %q (lane %d) left open after worker panic", sp.Name, sp.Lane)
		}
	}
	if n := len(tr.ActiveSpans()); n != 0 {
		t.Fatalf("%d spans still active after panic", n)
	}
}

// TestNoLaneSpansWithoutRecording: on the default (no-op) path, workers
// must not open spans — the guard that keeps untraced runs overhead-free —
// and the serial path must not open lanes even when recording.
func TestNoLaneSpansWithoutRecording(t *testing.T) {
	// No tracer installed at all.
	if err := ForCtx(context.Background(), 4, 50, func(_, _ int) {}); err != nil {
		t.Fatal(err)
	}

	// Recording tracer, but serial execution: the single inline "worker" is
	// the caller itself, no lane to open.
	tr := obs.New()
	parent := tr.Start("eval")
	ctx := obs.WithSpan(obs.WithTracer(context.Background(), tr), parent)
	if err := ForCtx(ctx, 1, 50, func(_, _ int) {}); err != nil {
		t.Fatal(err)
	}
	parent.End()
	spans := tr.Snapshot()
	if len(spans) != 1 {
		t.Fatalf("serial run recorded %d spans, want just the parent", len(spans))
	}
}
