// Package par is the shared worker-pool helper of the analysis pipeline.
// The simulator (sim), disjoint-cut builder (cut), change-propagation-
// matrix builders (cpm) and LAC evaluator (lac) all fan their independent
// per-item work out through this package instead of hand-rolling
// goroutine and chunking logic, so a thread count means the same thing
// everywhere:
//
//	threads ≤ 0  →  runtime.GOMAXPROCS(0) workers (use every CPU)
//	threads == 1 →  serial, on the calling goroutine
//	threads > 1  →  that many workers
//
// Requesting more workers than CPUs is allowed (they time-share); a pool
// never uses more workers than there are items. Results must be collected
// into index-addressed slots — every fan-out here hands the callback the
// item index, so writing out[i] from the worker that processed item i
// yields output that is bit-identical to a serial pass regardless of the
// worker count or scheduling order.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a Threads option value to an effective worker count:
// ≤ 0 selects runtime.GOMAXPROCS(0), anything else is returned as-is.
// This is the single clamp site for the whole pipeline.
func Workers(threads int) int {
	if threads <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return threads
}

// For runs fn(worker, i) for every i in [0, n), fanned out over
// Workers(threads) workers (never more than n), and returns when all
// calls have finished. Items are handed out dynamically, so callers must
// not rely on any processing order — only on the per-index results they
// write. With an effective worker count of 1 everything runs on the
// calling goroutine in index order, with zero synchronisation.
//
// The worker argument is in [0, effective workers) and is stable for the
// lifetime of one goroutine, making it safe to index per-worker scratch
// allocated with one slot per worker (see ScratchSlots).
func For(threads, n int, fn func(worker, i int)) {
	workers := Workers(threads)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(w)
	}
	wg.Wait()
}

// ForEach is For over a slice: fn(worker, item) for every item.
func ForEach[T any](threads int, items []T, fn func(worker int, item T)) {
	For(threads, len(items), func(w, i int) { fn(w, items[i]) })
}

// ScratchSlots returns the number of per-worker scratch slots a caller
// needs for For/ForEach runs over up to n items: min(Workers(threads), n),
// at least 1.
func ScratchSlots(threads, n int) int {
	workers := Workers(threads)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}
