// Package par is the shared worker-pool helper of the analysis pipeline.
// The simulator (sim), disjoint-cut builder (cut), change-propagation-
// matrix builders (cpm) and LAC evaluator (lac) all fan their independent
// per-item work out through this package instead of hand-rolling
// goroutine and chunking logic, so a thread count means the same thing
// everywhere:
//
//	threads ≤ 0  →  runtime.GOMAXPROCS(0) workers (use every CPU)
//	threads == 1 →  serial, on the calling goroutine
//	threads > 1  →  that many workers
//
// Requesting more workers than CPUs is allowed (they time-share); a pool
// never uses more workers than there are items. Results must be collected
// into index-addressed slots — every fan-out here hands the callback the
// item index, so writing out[i] from the worker that processed item i
// yields output that is bit-identical to a serial pass regardless of the
// worker count or scheduling order.
//
// Two failure paths are handled for every fan-out:
//
//   - A callback panic is recovered inside the worker, the remaining
//     workers drain (no new items are handed out), and the first panic is
//     re-raised on the calling goroutine as an item-attributed *Panic —
//     recoverable by the caller, instead of an unjoined WaitGroup killing
//     the whole process.
//   - ForCtx/ForEachCtx take a context and stop handing out items once it
//     is cancelled, returning ctx.Err(). Per-item results computed before
//     the cancel are valid; the overall output is partial and the caller
//     must discard it (uncancelled runs are bit-identical to For).
//
// When the context carries a recording obs span (obs.WithSpan), every
// worker goroutine additionally opens a child span in its own lane —
// the thread-per-worker tracks of a Perfetto trace — closed by defer even
// when the callback panics. Without a recording span (every production
// run) no span is created and the fan-out is unchanged.
package par

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"dpals/internal/obs"
)

// Workers resolves a Threads option value to an effective worker count:
// ≤ 0 selects runtime.GOMAXPROCS(0), anything else is returned as-is.
// This is the single clamp site for the whole pipeline.
func Workers(threads int) int {
	if threads <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return threads
}

// Panic carries a panic that escaped a For/ForCtx callback: the index of
// the item whose callback panicked, the original panic value, and the
// stack of the panicking goroutine. For re-raises it on the calling
// goroutine, so `recover()` there observes a *Panic and can attribute the
// failure to one item. Panic also implements error for callers that
// prefer to convert it.
type Panic struct {
	Item  int
	Value any
	Stack []byte
}

func (p *Panic) Error() string {
	return fmt.Sprintf("par: callback panicked on item %d: %v", p.Item, p.Value)
}

// Unwrap exposes the original panic value when it was an error.
func (p *Panic) Unwrap() error {
	if err, ok := p.Value.(error); ok {
		return err
	}
	return nil
}

// call invokes fn(worker, i), converting a callback panic into an
// item-attributed *Panic instead of letting it unwind the worker.
func call(fn func(worker, i int), worker, i int) (p *Panic) {
	defer func() {
		if r := recover(); r != nil {
			p = &Panic{Item: i, Value: r, Stack: debug.Stack()}
		}
	}()
	fn(worker, i)
	return nil
}

// For runs fn(worker, i) for every i in [0, n), fanned out over
// Workers(threads) workers (never more than n), and returns when all
// calls have finished. Items are handed out dynamically, so callers must
// not rely on any processing order — only on the per-index results they
// write. With an effective worker count of 1 everything runs on the
// calling goroutine in index order, with zero synchronisation.
//
// The worker argument is in [0, effective workers) and is stable for the
// lifetime of one goroutine, making it safe to index per-worker scratch
// allocated with one slot per worker (see ScratchSlots).
//
// A panicking callback re-raises as a *Panic on the caller; see Panic.
func For(threads, n int, fn func(worker, i int)) {
	forCtx(nil, threads, n, fn)
}

// ForCtx is For with cooperative cancellation: once ctx is cancelled, no
// new items are handed out, in-flight callbacks finish, and ForCtx
// returns ctx.Err(). A non-nil return means the run is partial — callers
// must discard the output. An uncancelled run is bit-identical to For and
// returns nil.
func ForCtx(ctx context.Context, threads, n int, fn func(worker, i int)) error {
	return forCtx(ctx, threads, n, fn)
}

// ForEach is For over a slice: fn(worker, item) for every item.
func ForEach[T any](threads int, items []T, fn func(worker int, item T)) {
	For(threads, len(items), func(w, i int) { fn(w, items[i]) })
}

// ForEachCtx is ForCtx over a slice.
func ForEachCtx[T any](ctx context.Context, threads int, items []T, fn func(worker int, item T)) error {
	return ForCtx(ctx, threads, len(items), func(w, i int) { fn(w, items[i]) })
}

// forCtx is the shared implementation; a nil ctx is never cancelled.
func forCtx(ctx context.Context, threads, n int, fn func(worker, i int)) error {
	done := func() bool { return ctx != nil && ctx.Err() != nil }
	workers := Workers(threads)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if done() {
				return ctx.Err()
			}
			if p := call(fn, 0, i); p != nil {
				panic(p)
			}
		}
		if done() {
			return ctx.Err()
		}
		return nil
	}
	// When a recording span rides on ctx (the engine installs its current
	// analysis-step span there), each worker opens one child span in its
	// own Perfetto lane — the thread-per-worker tracks of the trace. The
	// defer closes the lane even when the callback panics, so a trace
	// flushed after a par.Panic re-raise has no dangling worker spans. On
	// the production no-trace path parent is nil (or non-recording) and no
	// span is created.
	parent := obs.SpanFrom(ctx)
	var (
		next int64
		stop atomic.Bool
		mu   sync.Mutex
		pan  *Panic
		wg   sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			processed := 0
			if parent.Recording() {
				lane := parent.ChildLane(parent.Name(), worker+1)
				defer func() {
					lane.SetInt("items", int64(processed))
					lane.End()
				}()
			}
			for !stop.Load() {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				if done() {
					stop.Store(true)
					return
				}
				if p := call(fn, worker, i); p != nil {
					mu.Lock()
					if pan == nil {
						pan = p
					}
					mu.Unlock()
					stop.Store(true)
					return
				}
				processed++
			}
		}(w)
	}
	wg.Wait()
	if pan != nil {
		panic(pan)
	}
	if done() {
		return ctx.Err()
	}
	return nil
}

// ScratchSlots returns the number of per-worker scratch slots a caller
// needs for For/ForEach runs over up to n items: min(Workers(threads), n),
// at least 1.
func ScratchSlots(threads, n int) int {
	workers := Workers(threads)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}
