package par

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersSemantics(t *testing.T) {
	gmp := runtime.GOMAXPROCS(0)
	for _, tc := range []struct{ in, want int }{
		{-3, gmp}, {0, gmp}, {1, 1}, {2, 2}, {64, 64},
	} {
		if got := Workers(tc.in); got != tc.want {
			t.Errorf("Workers(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, threads := range []int{1, 2, 7, 0} {
		const n = 1000
		hits := make([]int32, n)
		For(threads, n, func(_, i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("threads=%d: index %d processed %d times", threads, i, h)
			}
		}
	}
}

func TestForSerialRunsInOrder(t *testing.T) {
	var order []int
	For(1, 5, func(w, i int) {
		if w != 0 {
			t.Errorf("serial run used worker %d", w)
		}
		order = append(order, i)
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order broken: %v", order)
		}
	}
}

func TestForWorkerIDsAreDistinctSlots(t *testing.T) {
	const threads, n = 4, 256
	slots := ScratchSlots(threads, n)
	if slots != 4 {
		t.Fatalf("ScratchSlots(4, 256) = %d", slots)
	}
	// Each worker increments only its own slot; sums must add up to n and
	// no out-of-range worker id may appear (panic would fail the test).
	counts := make([]int64, slots)
	For(threads, n, func(w, _ int) { atomic.AddInt64(&counts[w], 1) })
	var sum int64
	for _, c := range counts {
		sum += c
	}
	if sum != n {
		t.Fatalf("worker slot counts sum to %d, want %d", sum, n)
	}
}

func TestForMoreWorkersThanItems(t *testing.T) {
	if got := ScratchSlots(16, 3); got != 3 {
		t.Errorf("ScratchSlots(16, 3) = %d, want 3", got)
	}
	hits := make([]int32, 3)
	For(16, 3, func(w, i int) {
		if w < 0 || w >= 3 {
			t.Errorf("worker id %d out of range for 3 items", w)
		}
		atomic.AddInt32(&hits[i], 1)
	})
	for i, h := range hits {
		if h != 1 {
			t.Errorf("index %d processed %d times", i, h)
		}
	}
}

func TestForEmpty(t *testing.T) {
	For(0, 0, func(_, _ int) { t.Error("fn called for n=0") })
	ForEach(4, []int(nil), func(_ int, _ int) { t.Error("fn called for empty slice") })
	if got := ScratchSlots(8, 0); got != 1 {
		t.Errorf("ScratchSlots(8, 0) = %d, want 1", got)
	}
}

func TestForEachPassesItems(t *testing.T) {
	items := []string{"a", "b", "c", "d"}
	seen := make([]int32, len(items))
	ForEach(2, items, func(_ int, it string) {
		atomic.AddInt32(&seen[int(it[0]-'a')], 1)
	})
	for i, c := range seen {
		if c != 1 {
			t.Errorf("item %d seen %d times", i, c)
		}
	}
}

// A panicking callback must surface as a recoverable, item-attributed
// *Panic on the caller — not crash the process from a worker goroutine.
// This is a regression test: the pre-hardening pool let worker panics
// escape on their own goroutine, killing the process mid-WaitGroup.
func TestForCallbackPanicIsRecoverable(t *testing.T) {
	for _, threads := range []int{1, 4, 0} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("threads=%d: panic did not propagate", threads)
				}
				p, ok := r.(*Panic)
				if !ok {
					t.Fatalf("threads=%d: recovered %T, want *par.Panic", threads, r)
				}
				if p.Item != 13 {
					t.Errorf("threads=%d: panic attributed to item %d, want 13", threads, p.Item)
				}
				if p.Value != "boom" {
					t.Errorf("threads=%d: panic value %v, want \"boom\"", threads, p.Value)
				}
				if len(p.Stack) == 0 {
					t.Errorf("threads=%d: panic carries no stack", threads)
				}
			}()
			For(threads, 64, func(_, i int) {
				if i == 13 {
					panic("boom")
				}
			})
		}()
	}
}

// After a worker panics, the pool must drain: no goroutine may be left
// blocked, and the remaining items are simply not processed.
func TestForPanicStopsRemainingWork(t *testing.T) {
	var processed int32
	func() {
		defer func() { recover() }()
		For(4, 10000, func(_, i int) {
			if i == 0 {
				panic("first")
			}
			atomic.AddInt32(&processed, 1)
		})
	}()
	if n := atomic.LoadInt32(&processed); n >= 10000 {
		t.Errorf("pool processed all %d items despite the panic", n)
	}
}

func TestForCtxCancellation(t *testing.T) {
	for _, threads := range []int{1, 4, 0} {
		ctx, cancel := context.WithCancel(context.Background())
		var processed int32
		err := ForCtx(ctx, threads, 100000, func(_, i int) {
			if atomic.AddInt32(&processed, 1) == 50 {
				cancel()
			}
		})
		cancel()
		if err != context.Canceled {
			t.Errorf("threads=%d: ForCtx = %v, want context.Canceled", threads, err)
		}
		if n := atomic.LoadInt32(&processed); n >= 100000 {
			t.Errorf("threads=%d: all items ran despite cancellation", threads)
		}
	}
}

func TestForCtxNilAndUncancelled(t *testing.T) {
	if err := ForCtx(nil, 4, 100, func(_, i int) {}); err != nil {
		t.Errorf("nil ctx: %v", err)
	}
	if err := ForCtx(context.Background(), 4, 100, func(_, i int) {}); err != nil {
		t.Errorf("background ctx: %v", err)
	}
}
