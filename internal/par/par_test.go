package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersSemantics(t *testing.T) {
	gmp := runtime.GOMAXPROCS(0)
	for _, tc := range []struct{ in, want int }{
		{-3, gmp}, {0, gmp}, {1, 1}, {2, 2}, {64, 64},
	} {
		if got := Workers(tc.in); got != tc.want {
			t.Errorf("Workers(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, threads := range []int{1, 2, 7, 0} {
		const n = 1000
		hits := make([]int32, n)
		For(threads, n, func(_, i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("threads=%d: index %d processed %d times", threads, i, h)
			}
		}
	}
}

func TestForSerialRunsInOrder(t *testing.T) {
	var order []int
	For(1, 5, func(w, i int) {
		if w != 0 {
			t.Errorf("serial run used worker %d", w)
		}
		order = append(order, i)
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order broken: %v", order)
		}
	}
}

func TestForWorkerIDsAreDistinctSlots(t *testing.T) {
	const threads, n = 4, 256
	slots := ScratchSlots(threads, n)
	if slots != 4 {
		t.Fatalf("ScratchSlots(4, 256) = %d", slots)
	}
	// Each worker increments only its own slot; sums must add up to n and
	// no out-of-range worker id may appear (panic would fail the test).
	counts := make([]int64, slots)
	For(threads, n, func(w, _ int) { atomic.AddInt64(&counts[w], 1) })
	var sum int64
	for _, c := range counts {
		sum += c
	}
	if sum != n {
		t.Fatalf("worker slot counts sum to %d, want %d", sum, n)
	}
}

func TestForMoreWorkersThanItems(t *testing.T) {
	if got := ScratchSlots(16, 3); got != 3 {
		t.Errorf("ScratchSlots(16, 3) = %d, want 3", got)
	}
	hits := make([]int32, 3)
	For(16, 3, func(w, i int) {
		if w < 0 || w >= 3 {
			t.Errorf("worker id %d out of range for 3 items", w)
		}
		atomic.AddInt32(&hits[i], 1)
	})
	for i, h := range hits {
		if h != 1 {
			t.Errorf("index %d processed %d times", i, h)
		}
	}
}

func TestForEmpty(t *testing.T) {
	For(0, 0, func(_, _ int) { t.Error("fn called for n=0") })
	ForEach(4, []int(nil), func(_ int, _ int) { t.Error("fn called for empty slice") })
	if got := ScratchSlots(8, 0); got != 1 {
		t.Errorf("ScratchSlots(8, 0) = %d, want 1", got)
	}
}

func TestForEachPassesItems(t *testing.T) {
	items := []string{"a", "b", "c", "d"}
	seen := make([]int32, len(items))
	ForEach(2, items, func(_ int, it string) {
		atomic.AddInt32(&seen[int(it[0]-'a')], 1)
	})
	for i, c := range seen {
		if c != 1 {
			t.Errorf("item %d seen %d times", i, c)
		}
	}
}
