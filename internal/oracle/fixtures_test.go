package oracle

import (
	"testing"

	"dpals/internal/fault"
)

// shrunkDir points at the committed fixture set produced by past alscheck
// campaigns (cmd/alscheck -emit-fault-repros). Each fixture is a shrunk
// circuit plus the exact run spec on which a seeded fault was detected.
const shrunkDir = "../../testdata/shrunk"

// TestReplayShrunkFixtures replays every committed shrunk repro and
// requires the original detection to still fire. This is the permanent
// regression net: if an engine change makes any of these faults
// unobservable again (or a harness change weakens a check), the replay
// fails with the fixture name and the signal that used to catch it.
func TestReplayShrunkFixtures(t *testing.T) {
	repros, err := LoadRepros(shrunkDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(repros) == 0 {
		t.Fatalf("no fixtures under %s — the committed campaign output is missing", shrunkDir)
	}
	kinds := map[fault.Kind]bool{}
	small := 0
	for _, r := range repros {
		r := r
		t.Run(r.Name, func(t *testing.T) {
			t.Parallel()
			if got := r.Graph.NumAnds(); got != r.Spec.Ands {
				t.Errorf("fixture has %d ANDs, sidecar says %d", got, r.Spec.Ands)
			}
			if err := r.Graph.Check(); err != nil {
				t.Fatalf("fixture circuit invalid: %v", err)
			}
			det := r.Replay()
			if !det.Detected {
				t.Errorf("fault %s no longer detected (was caught by %s: %s)",
					r.Spec.Run.Fault, r.Spec.Check, r.Spec.Detail)
			}
		})
		kinds[r.Spec.Run.Fault] = true
		if r.Graph.NumAnds() <= 32 {
			small++
		}
	}
	// Acceptance criteria from the harness design: every seeded fault kind
	// has at least one committed repro, and at least one of them is a
	// genuinely small (≤ 32 AND) shrunk circuit.
	for _, k := range fault.Kinds() {
		if !kinds[k] {
			t.Errorf("no committed fixture for fault kind %s", k)
		}
	}
	if small == 0 {
		t.Error("no committed fixture is ≤ 32 ANDs — shrinking regressed")
	}
}
