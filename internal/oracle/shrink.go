package oracle

import (
	"dpals/internal/aig"
)

// Predicate reports whether a candidate circuit still exhibits the
// failure being shrunk. It must be deterministic: the shrinker calls it
// on many variants and keeps any for which it returns true.
type Predicate func(*aig.Graph) bool

// ShrinkOptions bounds a shrink run.
type ShrinkOptions struct {
	// MaxTrials caps predicate evaluations (≤0: 400). Each candidate costs
	// one full campaign run, so the cap is the shrinker's time budget.
	MaxTrials int
}

// Shrink greedily minimises a failing circuit: starting from g (for which
// fails must return true), it repeatedly tries to drop primary outputs,
// replace AND nodes by a constant or one of their own fanins, and drop
// disconnected primary inputs — keeping any simplification under which
// the failure persists, and restarting the pass after every acceptance
// (delta-debugging style: earlier moves often become possible again once
// the circuit changed). It returns the smallest failing circuit found and
// the number of predicate trials spent. The result always keeps at least
// one AND node and one PO so it remains a runnable synthesis input.
func Shrink(g *aig.Graph, fails Predicate, opt ShrinkOptions) (*aig.Graph, int) {
	maxTrials := opt.MaxTrials
	if maxTrials <= 0 {
		maxTrials = 400
	}
	cur := g.Sweep()
	trials := 0
	try := func(cand *aig.Graph) bool {
		if trials >= maxTrials {
			return false
		}
		trials++
		if fails(cand) {
			cur = cand
			return true
		}
		return false
	}
	for pass := true; pass && trials < maxTrials; {
		pass = false
		// Drop primary outputs, largest index first so names stay stable.
		for o := cur.NumPOs() - 1; o >= 0 && cur.NumPOs() > 1; o-- {
			if try(dropPO(cur, o)) {
				pass = true
				break
			}
		}
		if pass {
			continue
		}
		// Replace AND nodes: constants first (removes the whole MFFC), then
		// fanin forwarding (removes one level). Reverse topological order
		// attacks the PO-side logic first, where a single acceptance
		// strands the deepest cones.
		topo := cur.Topo()
		for i := len(topo) - 1; i >= 0 && !pass; i-- {
			v := topo[i]
			if !cur.IsAnd(v) {
				continue
			}
			f0, f1 := cur.Fanins(v)
			for _, rep := range []aig.Lit{aig.False, aig.False.Not(), f0, f1} {
				if rep.Var() == v {
					continue
				}
				cand := replaceAnd(cur, v, rep)
				if cand.NumAnds() < 1 {
					continue // must stay a runnable synthesis input
				}
				if try(cand) {
					pass = true
					break
				}
			}
		}
		if pass {
			continue
		}
		// Drop primary inputs nothing reads any more.
		if cand, changed := dropUnusedPIs(cur); changed && try(cand) {
			pass = true
		}
	}
	return cur, trials
}

// dropPO rebuilds g without output o (g is not modified).
func dropPO(g *aig.Graph, o int) *aig.Graph {
	ng := aig.New(g.Name)
	piLits := make([]aig.Lit, g.NumPIs())
	for i := range piLits {
		piLits[i] = ng.AddPI(g.PIName(i))
	}
	outs := aig.AppendGraph(ng, g, piLits)
	for i, l := range outs {
		if i != o {
			ng.AddPO(l, g.POName(i))
		}
	}
	return ng.Sweep() // drop the logic that only fed the removed PO
}

// replaceAnd returns a swept copy of g with AND node v replaced by
// literal rep (a constant or one of v's fanins — both outside v's
// transitive fanout, so the rewrite cannot create a cycle).
func replaceAnd(g *aig.Graph, v int32, rep aig.Lit) *aig.Graph {
	c := g.Clone()
	c.ReplaceWithLit(v, rep)
	return c.Sweep()
}

// dropUnusedPIs rebuilds g keeping only inputs that feed an AND node or a
// PO, always keeping at least one. Reports whether anything was dropped.
func dropUnusedPIs(g *aig.Graph) (*aig.Graph, bool) {
	used := make([]bool, g.NumPIs())
	kept := 0
	for i, v := range g.PIs() {
		if g.NumFanouts(v) > 0 {
			used[i] = true
		} else {
			for _, po := range g.POs() {
				if po.Var() == v {
					used[i] = true
					break
				}
			}
		}
		if used[i] {
			kept++
		}
	}
	if kept == g.NumPIs() {
		return g, false
	}
	if kept == 0 {
		used[0] = true // a circuit with zero PIs is not a synthesis input
	}
	ng := aig.New(g.Name)
	piLits := make([]aig.Lit, g.NumPIs())
	for i := range piLits {
		if used[i] {
			piLits[i] = ng.AddPI(g.PIName(i))
		} else {
			piLits[i] = aig.False
		}
	}
	outs := aig.AppendGraph(ng, g, piLits)
	for i, l := range outs {
		ng.AddPO(l, g.POName(i))
	}
	return ng.Sweep(), true
}
