package oracle

import (
	"fmt"
	"testing"

	"dpals/internal/aig"
	"dpals/internal/core"
	"dpals/internal/fault"
	"dpals/internal/gen"
	"dpals/internal/metric"
)

// testbeds returns small circuits diverse enough that every fault kind
// has at least one site where its corruption becomes observable.
func testbeds() []*aig.Graph {
	return []*aig.Graph{
		gen.Random(3, 8, 6, 60),
		gen.Random(11, 10, 8, 90),
		gen.Adder(4),
		gen.MultU(3, 3),
	}
}

// baseSpecs are the campaign configurations the fault scan tries, most
// fault-sensitive first: the dual-phase flows exercise every injection
// site (CPM cache invalidation and diff rows only exist there).
func baseSpecs() []RunSpec {
	return []RunSpec{
		{Flow: core.FlowDPSA, Metric: metric.MED, Threshold: 6, Patterns: 256, Seed: 1, Threads: 1, MaxIters: 30},
		// SASIMI wire substitutions grow the substitute's fanout, so a
		// skipped incremental cut repair leaves cuts that miss real
		// propagation paths. Constant-replacement LACs only ever shrink
		// fanout; their stale cuts carry extra dead elements whose region
		// diffs are zero, making skip-cut-warm-update score-equivalent
		// there — this spec is what makes that kind observable.
		{Flow: core.FlowDPSA, Metric: metric.MED, Threshold: 6, Patterns: 256, Seed: 5, Threads: 1, MaxIters: 30, SASIMI: true},
		{Flow: core.FlowDP, Metric: metric.ER, Threshold: 0.3, Patterns: 256, Seed: 2, Threads: 1, MaxIters: 30},
		{Flow: core.FlowConventional, Metric: metric.MED, Threshold: 10, Patterns: 256, Seed: 3, Threads: 1, MaxIters: 30},
		{Flow: core.FlowVECBEE, Metric: metric.ER, Threshold: 0.25, Patterns: 256, Seed: 4, Threads: 1, MaxIters: 20},
	}
}

// wceFaultSpecs are the WCE-constrained configurations for the fault
// scan. The sample is deliberately thin (64 patterns): on these small
// circuits a dense sample nearly always contains the true worst-case
// input, which makes a skipped certification (skip-wce-cert) exactly
// score-equivalent — the sampled maximum already IS the true worst case.
// Only a sample that misses the worst input lets the wce-cert-unsound
// cross-check observe the missing proof. Bound depends on the bed's
// output count, so these are built per circuit.
func wceFaultSpecs(g *aig.Graph) []RunSpec {
	b := uint64(metric.ReferenceError(g.NumPOs()))
	if b == 0 {
		b = 1
	}
	return []RunSpec{
		{Flow: core.FlowDP, Metric: metric.WCE, WCEBound: b, Threshold: float64(b), Patterns: 64, Seed: 2, Threads: 1, MaxIters: 30},
		{Flow: core.FlowConventional, Metric: metric.WCE, WCEBound: b, Threshold: float64(b), Patterns: 64, Seed: 3, Threads: 1, MaxIters: 30},
	}
}

// TestFaultDetectionAllKinds is the harness's self-test: every fault kind
// the engine can seed must be caught by at least one cross-check on at
// least one (circuit, configuration, site) combination. A kind no check
// can see means the oracle has a blind spot for that whole class of bug.
func TestFaultDetectionAllKinds(t *testing.T) {
	beds := testbeds()
	for _, kind := range fault.Kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			for _, g := range beds {
				specs := baseSpecs()
				// skip-wce-cert only fires on the WCE certification path.
				if kind == fault.SkipWCECert {
					specs = wceFaultSpecs(g)
				} else {
					specs = append(specs, wceFaultSpecs(g)...)
				}
				for _, spec := range specs {
					det, nth := ScanFault(g, spec, kind, 25)
					if det.Detected {
						t.Logf("%s detected on %s/%s at site %d via %s", kind, g.Name, spec.Flow, nth, det.How)
						return
					}
				}
			}
			t.Fatalf("fault kind %q escaped every cross-check on every testbed", kind)
		})
	}
}

// TestCleanRunsPassAllChecks is the converse: faithful runs across every
// flow must produce zero violations, or the harness cries wolf.
func TestCleanRunsPassAllChecks(t *testing.T) {
	g := gen.Random(3, 8, 6, 60)
	for _, spec := range append(baseSpecs(), wceFaultSpecs(g)...) {
		res, plan, err := Execute(g, spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Flow, err)
		}
		if plan != nil {
			t.Fatalf("%s: clean run built a fault plan", spec.Flow)
		}
		if vs := Verify(g, spec, res); len(vs) > 0 {
			t.Errorf("%s: clean run flagged: %v", spec.Flow, vs)
		}
	}
}

// TestExhaustiveModeExactCheck runs a flow on exhaustive patterns, where
// the reported error must equal the enumerated truth bit-for-bit (up to
// fold rounding) — the sharpest form of the oracle bound.
func TestExhaustiveModeExactCheck(t *testing.T) {
	g := gen.Random(5, 7, 5, 50)
	spec := RunSpec{Flow: core.FlowDPSA, Metric: metric.MED, Threshold: 3,
		Patterns: 1, Seed: 1, Threads: 1, Exhaustive: true, MaxIters: 20}
	res, _, err := Execute(g, spec)
	if err != nil {
		t.Fatal(err)
	}
	if vs := Verify(g, spec, res); len(vs) > 0 {
		t.Errorf("exhaustive run flagged: %v", vs)
	}
}

// TestDeterminismAcrossIrrelevantKnobs checks the metamorphic properties
// that thread count and the CPM cache must not change any result bit.
func TestDeterminismAcrossIrrelevantKnobs(t *testing.T) {
	g := gen.Random(7, 9, 7, 80)
	base := RunSpec{Flow: core.FlowDPSA, Metric: metric.MED, Threshold: 8,
		Patterns: 512, Seed: 6, Threads: 1, MaxIters: 25}
	ref, _, err := Execute(g, base)
	if err != nil {
		t.Fatal(err)
	}
	variants := []struct {
		name string
		mut  func(*RunSpec)
	}{
		{"threads-4", func(s *RunSpec) { s.Threads = 4 }},
		{"threads-all", func(s *RunSpec) { s.Threads = 0 }},
		{"no-cpm-cache", func(s *RunSpec) { s.NoCPMCache = true }},
	}
	for _, v := range variants {
		spec := base
		v.mut(&spec)
		res, _, err := Execute(g, spec)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		if d := Diverges(ref, res); d != "" {
			t.Errorf("%s diverges from reference: %s", v.name, d)
		}
	}
}

// TestCancelledRunStillValid checks the best-so-far metamorphic property:
// a run cancelled mid-flight must still satisfy every invariant a
// completed run does (valid graph, truthful error, budget respected).
func TestCancelledRunStillValid(t *testing.T) {
	g := gen.Random(9, 9, 7, 80)
	for _, cancelAfter := range []int{1, 3} {
		spec := RunSpec{Flow: core.FlowDPSA, Metric: metric.MED, Threshold: 8,
			Patterns: 512, Seed: 6, Threads: 1, MaxIters: 40, CancelAfter: cancelAfter}
		res, _, err := Execute(g, spec)
		if err != nil {
			t.Fatalf("cancel@%d: %v", cancelAfter, err)
		}
		if vs := Verify(g, spec, res); len(vs) > 0 {
			t.Errorf("cancel@%d: best-so-far result flagged: %v", cancelAfter, vs)
		}
	}
}

// TestBudgetMonotonicConventional checks the applied-LAC prefix property
// of the conventional flow across a threshold ladder.
func TestBudgetMonotonicConventional(t *testing.T) {
	g := gen.Random(3, 8, 6, 60)
	spec := RunSpec{Flow: core.FlowConventional, Metric: metric.MED,
		Patterns: 256, Seed: 1, Threads: 1, MaxIters: 40}
	if vs := CheckBudgetMonotonic(g, spec, []float64{0.5, 2, 8, 32}); len(vs) > 0 {
		t.Errorf("budget monotonicity violated: %v", vs)
	}
	// Misuse guard: the property is not claimed for threshold-adaptive flows.
	bad := spec
	bad.Flow = core.FlowDPSA
	if vs := CheckBudgetMonotonic(g, bad, []float64{1, 2}); len(vs) != 1 || vs[0].Check != "monotonic-misuse" {
		t.Errorf("DP-SA monotonicity misuse not rejected: %v", vs)
	}
}

// TestVerifyCatchesHandMadeLies feeds Verify deliberately wrong results
// to pin down which check fires for which lie.
func TestVerifyCatchesHandMadeLies(t *testing.T) {
	g := gen.Random(3, 8, 6, 60)
	spec := RunSpec{Flow: core.FlowConventional, Metric: metric.MED, Threshold: 6,
		Patterns: 256, Seed: 1, Threads: 1, MaxIters: 20}
	res, _, err := Execute(g, spec)
	if err != nil {
		t.Fatal(err)
	}
	if vs := Verify(g, spec, res); len(vs) > 0 {
		t.Fatalf("honest result flagged: %v", vs)
	}
	lied := *res
	lied.Error = res.Error + 0.5
	vs := Verify(g, spec, &lied)
	if len(vs) == 0 {
		t.Fatal("misreported error not flagged")
	}
	if vs[0].Check != "reported-vs-recomputed" {
		t.Errorf("misreported error flagged as %s, want reported-vs-recomputed", vs[0].Check)
	}
	// A result circuit that is not an approximation of orig at all.
	swapped := *res
	swapped.Graph = gen.Random(99, g.NumPIs(), g.NumPOs(), 30)
	if vs := Verify(g, spec, &swapped); len(vs) == 0 {
		t.Error("foreign result circuit not flagged")
	}
	if vs := Verify(g, spec, nil); len(vs) != 1 || vs[0].Check != "no-result" {
		t.Errorf("nil result: %v", vs)
	}
}

func ExampleDiverges() {
	g := gen.Random(3, 6, 4, 30)
	spec := RunSpec{Flow: core.FlowConventional, Metric: metric.ER, Threshold: 0.2,
		Patterns: 256, Seed: 1, Threads: 1, MaxIters: 10}
	a, _, _ := Execute(g, spec)
	b, _, _ := Execute(g, spec)
	fmt.Println(Diverges(a, b))
	// Output:
}
