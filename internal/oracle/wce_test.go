package oracle

import (
	"testing"

	"dpals/internal/core"
	"dpals/internal/equiv"
	"dpals/internal/gen"
	"dpals/internal/metric"
)

// wceSuite selects every benchmark circuit the exhaustive WCE oracle can
// handle: ≤ MaxPIs inputs (for Exact) and ≤ 62 outputs (for the integer
// interpretation).
func wceSuite(t *testing.T) []gen.Benchmark {
	t.Helper()
	var out []gen.Benchmark
	for _, b := range gen.Suite(true) {
		if b.Graph.NumPIs() <= MaxPIs && b.Graph.NumPOs() <= 62 {
			out = append(out, b)
		}
	}
	if len(out) == 0 {
		t.Fatal("no suite circuit fits the exhaustive WCE limits")
	}
	return out
}

func wceRunSpec(bound uint64) RunSpec {
	return RunSpec{
		Flow:      core.FlowDP,
		Metric:    metric.WCE,
		WCEBound:  bound,
		Threshold: float64(bound),
		Patterns:  512,
		Seed:      1,
		Threads:   1,
		MaxIters:  20,
	}
}

// suiteBound picks a budget in the same spirit as the campaign: the
// paper's reference error, floored at 1 so every circuit has headroom.
func suiteBound(pos int) uint64 {
	b := uint64(metric.ReferenceError(pos))
	if b == 0 {
		b = 1
	}
	return b
}

// TestWCEDifferentialGenSuite is the oracle-backed sweep of the
// WCE-constrained flow (the tentpole's acceptance check): on every
// exhaustively checkable suite circuit, the emitted circuit's SAT-certified
// bound must dominate the TRUE worst-case error from exhaustive
// enumeration, and equiv.WCEAtMost must agree with the enumeration at the
// boundary from both sides — satisfiable at the true WCE, refuted one
// below it.
func TestWCEDifferentialGenSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("SAT-certified sweep over the generator suite")
	}
	for _, b := range wceSuite(t) {
		b := b
		t.Run(b.PaperName, func(t *testing.T) {
			t.Parallel()
			g := b.Graph
			spec := wceRunSpec(suiteBound(g.NumPOs()))
			// Multi-thousand-gate miters (sin, log2) can cost minutes per
			// unlimited SAT call. Capping the conflict budget keeps the sweep
			// fast WITHOUT weakening the test: an exhausted budget counts as
			// a failed certification and rolls back, so the unsoundness check
			// below still applies in full.
			big := g.NumAnds() > 2000
			if big {
				spec.CertConflictLimit = 5000
				spec.MaxIters = 8
			}
			res, _, err := Execute(g, spec)
			if err != nil {
				t.Fatalf("WCE run: %v", err)
			}
			if vs := Verify(g, spec, res); len(vs) > 0 {
				t.Fatalf("verify: %v", vs[0])
			}
			if res.Stats.CertifiedWCE > spec.WCEBound {
				t.Fatalf("certified WCE %d exceeds bound %d", res.Stats.CertifiedWCE, spec.WCEBound)
			}
			ex, err := Exact(g, res.Graph, nil)
			if err != nil {
				t.Fatalf("exhaustive oracle: %v", err)
			}
			if !ex.WCEOK {
				t.Fatalf("oracle cannot enumerate WCE for %d POs", g.NumPOs())
			}
			if ex.WCE > res.Stats.CertifiedWCE {
				t.Fatalf("true WCE %d exceeds the certified bound %d — the certificate is unsound",
					ex.WCE, res.Stats.CertifiedWCE)
			}

			if big {
				// The boundary probes below are unlimited SAT calls; the small
				// circuits cover that agreement, the big ones only need the
				// soundness check above.
				return
			}
			// Boundary agreement, both sides: the SAT certifier and the
			// exhaustive enumeration are independent derivations of the same
			// integer, so WCEAtMost must accept the true WCE and reject one
			// below it.
			ok, _, err := equiv.WCEAtMost(g, res.Graph, ex.WCE)
			if err != nil {
				t.Fatalf("WCEAtMost(%d): %v", ex.WCE, err)
			}
			if !ok {
				t.Fatalf("WCEAtMost rejects the true WCE %d", ex.WCE)
			}
			if ex.WCE > 0 {
				ok, cex, err := equiv.WCEAtMost(g, res.Graph, ex.WCE-1)
				if err != nil {
					t.Fatalf("WCEAtMost(%d): %v", ex.WCE-1, err)
				}
				if ok {
					t.Fatalf("WCEAtMost accepts %d but enumeration says the worst case is %d",
						ex.WCE-1, ex.WCE)
				}
				if cex == nil {
					t.Fatal("refutation returned no counterexample")
				}
			}
		})
	}
}

// TestWCEBoundMonotonicSuite is the metamorphic satellite: tightening the
// certified bound is monotone in achievable savings under the conventional
// flow (applied LACs non-decreasing, gates non-increasing in the bound).
func TestWCEBoundMonotonicSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("SAT-certified metamorphic ladder")
	}
	g := gen.Adder(4)
	spec := wceRunSpec(0)
	spec.Flow = core.FlowConventional
	b := suiteBound(g.NumPOs())
	bounds := []uint64{1, b, 2 * b, 4 * b}
	if vs := CheckWCEBoundMonotonic(g, spec, bounds); len(vs) > 0 {
		t.Fatalf("monotonicity violated: %v", vs[0])
	}
}

// TestWCECancelledRunStillCertified: a mid-run-cancelled WCE run performs
// no further SAT work, yet the circuit it returns must still carry a TRUE
// certified bound — the uncertified tail is rolled back, never emitted.
func TestWCECancelledRunStillCertified(t *testing.T) {
	g := gen.Adder(4)
	spec := wceRunSpec(suiteBound(g.NumPOs()))
	// CertEvery 1 makes every accepted LAC a certification checkpoint, so
	// the cancelled run has certified progress to keep.
	spec.CertEvery = 1
	spec.CancelAfter = 2
	res, _, err := Execute(g, spec)
	if err != nil {
		t.Fatalf("cancelled WCE run: %v", err)
	}
	if res.Stats.StopReason != core.StopCancelled {
		t.Fatalf("stop reason %s, want %s", res.Stats.StopReason, core.StopCancelled)
	}
	if vs := Verify(g, spec, res); len(vs) > 0 {
		t.Fatalf("verify: %v", vs[0])
	}
	ex, err := Exact(g, res.Graph, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ex.WCE > res.Stats.CertifiedWCE {
		t.Fatalf("cancelled run emitted true WCE %d above its certified bound %d",
			ex.WCE, res.Stats.CertifiedWCE)
	}
}

// TestWCEConflictBudgetSound: exhausting the certification conflict budget
// must degrade to a smaller circuit, never to an unsound bound.
func TestWCEConflictBudgetSound(t *testing.T) {
	g := gen.MultU(3, 3)
	spec := wceRunSpec(suiteBound(g.NumPOs()))
	spec.CertConflictLimit = 1 // starve every SAT call
	res, _, err := Execute(g, spec)
	if err != nil {
		t.Fatalf("budget-starved WCE run: %v", err)
	}
	if vs := Verify(g, spec, res); len(vs) > 0 {
		t.Fatalf("verify: %v", vs[0])
	}
	ex, err := Exact(g, res.Graph, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ex.WCE > res.Stats.CertifiedWCE {
		t.Fatalf("budget-starved run emitted true WCE %d above its certified bound %d",
			ex.WCE, res.Stats.CertifiedWCE)
	}
}
