package oracle

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"dpals/internal/aig"
	"dpals/internal/aiger"
)

// ReproSpec is the JSON sidecar of a shrunk repro: the circuit lives in
// <name>.aag, everything needed to replay the failing run lives here.
type ReproSpec struct {
	Run RunSpec `json:"run"`
	// Check names the cross-check (or "panic"/"divergence" signal) that
	// originally flagged the run; Detail is its message at capture time.
	Check  string `json:"check"`
	Detail string `json:"detail,omitempty"`
	// Ands records the shrunk circuit's AND count at capture time —
	// informational, the .aag file is authoritative.
	Ands int `json:"ands"`
}

// Repro is a loaded fixture: a shrunk circuit plus its replay spec.
type Repro struct {
	Name  string
	Spec  ReproSpec
	Graph *aig.Graph
}

// SaveRepro writes <dir>/<name>.aag and <dir>/<name>.json, creating dir
// if needed. Names should be stable and descriptive (the campaign uses
// "<fault>-s<seed>" style); an existing fixture of the same name is
// overwritten.
func SaveRepro(dir, name string, spec ReproSpec, g *aig.Graph) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	spec.Ands = g.NumAnds()
	f, err := os.Create(filepath.Join(dir, name+".aag"))
	if err != nil {
		return err
	}
	if err := aiger.Write(f, g); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	js, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, name+".json"), append(js, '\n'), 0o644)
}

// LoadRepros reads every <name>.aag + <name>.json pair under dir, sorted
// by name. A missing directory yields an empty slice (a fresh checkout
// before the first campaign has no fixtures); an .aag without its sidecar
// (or vice versa) is an error — fixtures are only meaningful as pairs.
func LoadRepros(dir string) ([]Repro, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []Repro
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".aag") {
			continue
		}
		name := strings.TrimSuffix(e.Name(), ".aag")
		f, err := os.Open(filepath.Join(dir, name+".aag"))
		if err != nil {
			return nil, err
		}
		g, err := aiger.Read(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("oracle: repro %s: %w", name, err)
		}
		js, err := os.ReadFile(filepath.Join(dir, name+".json"))
		if err != nil {
			return nil, fmt.Errorf("oracle: repro %s has no sidecar: %w", name, err)
		}
		var spec ReproSpec
		if err := json.Unmarshal(js, &spec); err != nil {
			return nil, fmt.Errorf("oracle: repro %s sidecar: %w", name, err)
		}
		out = append(out, Repro{Name: name, Spec: spec, Graph: g})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Replay re-executes a fixture and reports the detection outcome. A
// fixture captured from a fault-seeded failure replays the fault and must
// be detected again; a fixture capturing a genuine (unseeded) failure
// must still produce violations.
func (r Repro) Replay() Detection {
	if r.Spec.Run.Fault != "" {
		clean := CleanOutcome(r.Graph, r.Spec.Run)
		if clean.Err != nil {
			return Detection{Detected: true, Fired: true, How: "panic", Detail: clean.Err.Error()}
		}
		return DetectFault(r.Graph, r.Spec.Run, &clean)
	}
	res, _, err := Execute(r.Graph, r.Spec.Run)
	if err != nil {
		return Detection{Detected: true, Fired: true, How: "panic", Detail: err.Error()}
	}
	if vs := Verify(r.Graph, r.Spec.Run, res); len(vs) > 0 {
		return Detection{Detected: true, Fired: true, How: vs[0].Check, Detail: vs[0].Detail}
	}
	return Detection{}
}
