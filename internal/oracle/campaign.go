package oracle

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"runtime/debug"

	"dpals/internal/aig"
	"dpals/internal/aiger"
	"dpals/internal/core"
	"dpals/internal/equiv"
	"dpals/internal/fault"
	"dpals/internal/lac"
	"dpals/internal/metric"
)

// RunSpec is one reproducible campaign run: everything needed to rebuild
// the core.Options and re-execute the exact same synthesis, including an
// optional mid-run cancellation point and an optional seeded fault. It is
// JSON-serialisable so repro sidecars can carry it verbatim.
type RunSpec struct {
	Flow       core.Flow   `json:"flow"`
	Metric     metric.Kind `json:"metric"`
	Threshold  float64     `json:"threshold"`
	Patterns   int         `json:"patterns"`
	Seed       int64       `json:"seed"`
	Threads    int         `json:"threads"`
	Exhaustive bool        `json:"exhaustive,omitempty"`
	SASIMI     bool        `json:"sasimi,omitempty"`
	MaxIters   int         `json:"maxIters,omitempty"`
	NoCPMCache bool        `json:"noCPMCache,omitempty"`
	// NoWarmStart disables the cross-round phase-1 reuse (incremental cut
	// carry-over, CPM row refresh, eval memo) and forces every
	// comprehensive pass to rebuild cold. Warm and cold runs of the same
	// spec must be bit-identical, so pairing a spec with its NoWarmStart
	// twin is a differential check on the whole reuse layer.
	NoWarmStart bool `json:"noWarmStart,omitempty"`

	// WCE-constrained flow (Metric == metric.WCE): the certified bound,
	// the certification amortization interval, and the per-call SAT
	// conflict cap (0 = unlimited). Threshold is derived from WCEBound by
	// the engine; keep spec.Threshold = float64(WCEBound) for readability.
	WCEBound          uint64 `json:"wceBound,omitempty"`
	CertEvery         int    `json:"certEvery,omitempty"`
	CertConflictLimit int64  `json:"certConflictLimit,omitempty"`

	// CancelAfter > 0 cancels the run's context right after the N-th
	// applied LAC, exercising the best-so-far exit paths.
	CancelAfter int `json:"cancelAfter,omitempty"`

	// Fault/FaultNth seed one bookkeeping mutation (internal/fault) at the
	// Nth opportunity. Empty Fault is a clean run.
	Fault    fault.Kind `json:"fault,omitempty"`
	FaultNth int        `json:"faultNth,omitempty"`
}

// Options builds the core.Options for this spec. The returned Options
// carries a fresh single-use fault plan when the spec seeds one.
func (s RunSpec) Options() core.Options {
	opt := core.DefaultOptions(s.Flow, s.Metric, s.Threshold)
	opt.Patterns = s.Patterns
	opt.Seed = s.Seed
	opt.Threads = s.Threads
	opt.Exhaustive = s.Exhaustive
	opt.LACs = lac.Options{Constants: true, SASIMI: s.SASIMI}
	opt.MaxIters = s.MaxIters
	opt.NoCPMCache = s.NoCPMCache
	opt.NoWarmStart = s.NoWarmStart
	opt.WCEBound = s.WCEBound
	opt.CertEvery = s.CertEvery
	opt.CertConflictLimit = s.CertConflictLimit
	if s.Fault != fault.None && s.Fault != "" {
		opt.Fault = fault.New(s.Fault, s.FaultNth)
	}
	return opt
}

// Outcome bundles a run's result with its per-iteration evaluation
// trace: one hash per applied LAC folding the chosen candidate and the
// full sorted evaluation of that iteration. Two runs of the same spec
// must produce identical traces; a corrupted error ESTIMATE shows up here
// even when it never changes which LAC wins — the final circuits agree
// but some iteration's evaluation does not.
type Outcome struct {
	Result *core.Result
	Plan   *fault.Plan // the consumed fault plan (nil for clean runs)
	Trace  []uint64
	Err    error // invalid spec, or a recovered engine panic
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fold(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * fnvPrime
		v >>= 8
	}
	return h
}

// ExecuteTraced runs the spec on g, recording the evaluation trace. A
// panic inside the engine — possible when a seeded fault leaves internal
// state inconsistent — is recovered into Outcome.Err; for fault-seeded
// runs the campaign counts that as a detection.
func ExecuteTraced(g *aig.Graph, spec RunSpec) (out Outcome) {
	opt := spec.Options()
	out.Plan = opt.Fault
	ctx := context.Background()
	var cancel context.CancelFunc
	if spec.CancelAfter > 0 {
		ctx, cancel = context.WithCancel(ctx)
		defer cancel()
	}
	opt.OnIteration = func(iter int, chosen lac.NodeBest, bests []lac.NodeBest) {
		h := fold(fold(fnvOffset, uint64(iter)), uint64(chosen.Node))
		h = fold(h, math.Float64bits(chosen.Best.Err))
		h = fold(h, uint64(chosen.Best.NewLit))
		for _, b := range bests {
			h = fold(fold(fold(h, uint64(b.Node)), math.Float64bits(b.Best.Err)), uint64(b.Best.NewLit))
		}
		out.Trace = append(out.Trace, h)
		if cancel != nil && iter >= spec.CancelAfter {
			cancel()
		}
	}
	defer func() {
		if r := recover(); r != nil {
			out.Result = nil
			out.Err = fmt.Errorf("oracle: engine panic: %v\n%s", r, debug.Stack())
		}
	}()
	out.Result, out.Err = core.RunContext(ctx, g, opt)
	return out
}

// Execute is ExecuteTraced without the trace, for callers that only need
// the result.
func Execute(g *aig.Graph, spec RunSpec) (*core.Result, *fault.Plan, error) {
	o := ExecuteTraced(g, spec)
	return o.Result, o.Plan, o.Err
}

// Violation is one failed cross-check.
type Violation struct {
	Check  string // short stable identifier, e.g. "reported-vs-recomputed"
	Detail string
}

func (v Violation) String() string { return v.Check + ": " + v.Detail }

// tol is the float comparison tolerance between the engine's incremental
// error bookkeeping and the oracle's from-scratch recompute: both fold the
// same per-pattern contributions, but in different orders, so they may
// differ by accumulated rounding — never by more than a few ulps scaled by
// the magnitude. Any genuine bookkeeping bug shifts the result by at least
// one whole pattern contribution, far above this.
func tol(a, b float64) float64 {
	m := math.Abs(a)
	if mb := math.Abs(b); mb > m {
		m = mb
	}
	return 1e-9 + 1e-6*m
}

// Verify cross-checks a run's result against orig, the circuit it
// approximated. The checks, in order:
//
//	graph-invariant        res.Graph passes aig.Graph.Check
//	reported-vs-recomputed res.Error equals the error recomputed from
//	                       scratch (metric.Compute) on the run's own
//	                       training patterns        — catches bookkeeping
//	                       desyncs (P1)
//	budget                 the recomputed error respects the threshold,
//	                       even for cancelled best-so-far results (P2)
//	exact-bound            for ≤ MaxPIs inputs, the exhaustively
//	                       enumerated true error: equal to the reported
//	                       one in exhaustive mode; within the Hoeffding
//	                       bound of it for Monte-Carlo runs (P3)
//	stop-reason            every run ends with a recorded stop reason
func Verify(orig *aig.Graph, spec RunSpec, res *core.Result) []Violation {
	var out []Violation
	if res == nil || res.Graph == nil {
		return []Violation{{Check: "no-result", Detail: "run returned no result"}}
	}
	if err := res.Graph.Check(); err != nil {
		out = append(out, Violation{Check: "graph-invariant", Detail: err.Error()})
	}
	if res.Graph.NumPIs() != orig.NumPIs() || res.Graph.NumPOs() != orig.NumPOs() {
		out = append(out, Violation{Check: "interface", Detail: fmt.Sprintf(
			"result has %d PIs / %d POs, original %d / %d",
			res.Graph.NumPIs(), res.Graph.NumPOs(), orig.NumPIs(), orig.NumPOs())})
		return out // every later check needs matching interfaces
	}
	opt := spec.Options()
	simOpt, err := core.SimOptions(orig, opt)
	if err != nil {
		return append(out, Violation{Check: "sim-options", Detail: err.Error()})
	}
	recomputed, err := SampledError(orig, res.Graph, spec.Metric, opt.Weights, simOpt)
	if err != nil {
		return append(out, Violation{Check: "recompute", Detail: err.Error()})
	}
	if d := math.Abs(res.Error - recomputed); d > tol(res.Error, recomputed) {
		out = append(out, Violation{Check: "reported-vs-recomputed", Detail: fmt.Sprintf(
			"run reported %v but recomputing on its own patterns gives %v (Δ=%v)",
			res.Error, recomputed, d)})
	}
	// For WCE specs the budget is the certified bound; Threshold is derived.
	thr := spec.Threshold
	if spec.Metric == metric.WCE {
		thr = float64(spec.WCEBound)
		if res.Stats.CertifiedWCE > spec.WCEBound {
			out = append(out, Violation{Check: "wce-cert-bound", Detail: fmt.Sprintf(
				"certified WCE %d exceeds the requested bound %d", res.Stats.CertifiedWCE, spec.WCEBound)})
		}
		// The sampled max is a lower bound on the true worst case, which
		// the certificate claims to upper-bound: sampled > certified means
		// the certificate is provably false on the training patterns alone.
		if recomputed > float64(res.Stats.CertifiedWCE)+tol(recomputed, float64(res.Stats.CertifiedWCE)) {
			out = append(out, Violation{Check: "wce-sampled-vs-certified", Detail: fmt.Sprintf(
				"sampled worst case %v exceeds the certified bound %d", recomputed, res.Stats.CertifiedWCE)})
		}
	}
	if recomputed > thr+tol(recomputed, thr) {
		out = append(out, Violation{Check: "budget", Detail: fmt.Sprintf(
			"sampled error %v exceeds threshold %v (stop=%s)",
			recomputed, thr, res.Stats.StopReason)})
	}
	if orig.NumPIs() <= MaxPIs {
		ex, err := Exact(orig, res.Graph, opt.Weights)
		if err != nil {
			out = append(out, Violation{Check: "exact", Detail: err.Error()})
		} else if spec.Metric == metric.WCE {
			// The certificate must hold against the exhaustive truth: a run
			// that claims CertifiedWCE but emits a circuit whose true worst
			// case exceeds it skipped (or botched) its certification — the
			// skip-wce-cert detection signal.
			if ex.WCEOK && ex.WCE > res.Stats.CertifiedWCE {
				out = append(out, Violation{Check: "wce-cert-unsound", Detail: fmt.Sprintf(
					"true worst-case error %d exceeds the certified bound %d", ex.WCE, res.Stats.CertifiedWCE)})
			}
			if spec.Exhaustive && ex.WCEOK {
				if d := math.Abs(res.Error - float64(ex.WCE)); d > tol(res.Error, float64(ex.WCE)) {
					out = append(out, Violation{Check: "exact-bound", Detail: fmt.Sprintf(
						"exhaustive run reported WCE %v but enumeration gives %d", res.Error, ex.WCE)})
				}
			}
			// No Hoeffding check: a sampled maximum is not a mean, so the
			// concentration bound does not apply — the certificate checks
			// above are strictly stronger anyway.
		} else {
			truth := ex.Get(spec.Metric)
			if spec.Exhaustive {
				// Exhaustive training: the sampled error IS the true error.
				if d := math.Abs(res.Error - truth); d > tol(res.Error, truth) {
					out = append(out, Violation{Check: "exact-bound", Detail: fmt.Sprintf(
						"exhaustive run reported %v but enumeration gives %v (Δ=%v)",
						res.Error, truth, d)})
				}
			} else {
				// Monte-Carlo: the estimate must sit within the Hoeffding
				// bound of the truth (alpha = 1e-9: a false alarm is
				// essentially impossible; real miscounting bugs overshoot
				// this by orders of magnitude).
				rang := metric.MaxDeviation(spec.Metric, weightsFor(opt, orig), orig.NumPOs())
				delta := metric.HoeffdingDelta(rang, spec.Patterns, 1e-9)
				if d := math.Abs(res.Error - truth); d > delta+tol(res.Error, truth) {
					out = append(out, Violation{Check: "mc-bound", Detail: fmt.Sprintf(
						"estimate %v vs exact %v: Δ=%v exceeds Hoeffding bound %v (n=%d)",
						res.Error, truth, d, delta, spec.Patterns)})
				}
			}
		}
	}
	if res.Stats.StopReason == "" {
		out = append(out, Violation{Check: "stop-reason", Detail: "run ended without a stop reason"})
	}
	return out
}

func weightsFor(opt core.Options, g *aig.Graph) metric.Weights {
	if opt.Weights != nil {
		return opt.Weights
	}
	if opt.Metric.Numeric() {
		return metric.UnsignedWeights(g.NumPOs())
	}
	return nil
}

// Diverges compares two results of supposedly identical runs — same spec
// up to an irrelevant knob (thread count, CPM cache on/off) — and returns
// "" when they are bit-identical, or a description of the first
// difference. Graphs are compared by their serialised AIGER bytes, the
// strictest structural equality available.
func Diverges(a, b *core.Result) string {
	if (a == nil) != (b == nil) {
		return "one run returned a result, the other none"
	}
	if a == nil {
		return ""
	}
	if math.Float64bits(a.Error) != math.Float64bits(b.Error) {
		return fmt.Sprintf("final errors differ: %v vs %v", a.Error, b.Error)
	}
	if a.Stats.Applied != b.Stats.Applied {
		return fmt.Sprintf("applied-LAC counts differ: %d vs %d", a.Stats.Applied, b.Stats.Applied)
	}
	ab, bb := aigerBytes(a.Graph), aigerBytes(b.Graph)
	if !bytes.Equal(ab, bb) {
		return fmt.Sprintf("result circuits differ structurally (%d vs %d AIGER bytes)", len(ab), len(bb))
	}
	return ""
}

func aigerBytes(g *aig.Graph) []byte {
	var buf bytes.Buffer
	if err := aiger.Write(&buf, g); err != nil {
		return []byte("unserialisable: " + err.Error())
	}
	return buf.Bytes()
}

// DivergesOutcome is Diverges extended to the evaluation traces: it
// catches corruption of intermediate error estimates (a wrong number in
// one iteration's candidate ranking) even when the run still picks the
// same LACs and lands on the same final circuit.
func DivergesOutcome(a, b Outcome) string {
	if len(a.Trace) != len(b.Trace) {
		return fmt.Sprintf("iteration counts differ: %d vs %d applied LACs traced", len(a.Trace), len(b.Trace))
	}
	for i := range a.Trace {
		if a.Trace[i] != b.Trace[i] {
			return fmt.Sprintf("evaluation traces diverge at applied LAC %d", i+1)
		}
	}
	return Diverges(a.Result, b.Result)
}

// Detection is the outcome of one fault-seeded run.
type Detection struct {
	Detected bool
	Fired    bool   // the plan reached its Nth opportunity
	How      string // which signal caught it: a Violation check, "panic", or "divergence"
	Detail   string
}

// DetectFault runs spec (which must seed a fault) on g and reports
// whether any cross-check catches the corruption. clean is the traced
// outcome of the same spec without the fault, used for the divergence
// signal; pass nil to skip it. A fault whose plan never fired (the run
// had fewer opportunities than FaultNth) returns Fired=false — the
// caller should move on to another site rather than count it as a miss.
func DetectFault(g *aig.Graph, spec RunSpec, clean *Outcome) Detection {
	o := ExecuteTraced(g, spec)
	if o.Err != nil {
		// A seeded fault crashing the engine is the loudest detection.
		return Detection{Detected: true, Fired: true, How: "panic", Detail: o.Err.Error()}
	}
	fired := o.Plan.Fired()
	if !fired {
		return Detection{Fired: false}
	}
	if vs := Verify(g, spec, o.Result); len(vs) > 0 {
		return Detection{Detected: true, Fired: true, How: vs[0].Check, Detail: vs[0].Detail}
	}
	if clean != nil {
		if d := DivergesOutcome(*clean, o); d != "" {
			return Detection{Detected: true, Fired: true, How: "divergence", Detail: d}
		}
	}
	return Detection{Fired: true}
}

// CleanOutcome runs spec with any seeded fault stripped, as the reference
// for divergence checks.
func CleanOutcome(g *aig.Graph, spec RunSpec) Outcome {
	spec.Fault = fault.None
	spec.FaultNth = 0
	return ExecuteTraced(g, spec)
}

// ScanFault scans injection sites nth = 1, 2, ... (up to maxNth) for the
// given fault kind until one seeded run is detected. Some sites are
// "equivalent mutants" — the corruption never becomes observable (e.g. a
// skipped invalidation of a row nothing reads again) — so the campaign
// asserts each KIND is detectable at some site, not at every site. The
// clean reference outcome is computed once.
func ScanFault(g *aig.Graph, spec RunSpec, kind fault.Kind, maxNth int) (Detection, int) {
	clean := CleanOutcome(g, spec)
	if clean.Err != nil {
		return Detection{Detail: "clean run failed: " + clean.Err.Error()}, 0
	}
	for nth := 1; nth <= maxNth; nth++ {
		s := spec
		s.Fault = kind
		s.FaultNth = nth
		det := DetectFault(g, s, &clean)
		if det.Detected {
			return det, nth
		}
		if !det.Fired {
			// No run will have more opportunities than this one did; stop.
			return det, nth
		}
	}
	return Detection{Fired: true}, maxNth
}

// CrossCheckWCE compares the SAT-certified worst-case error
// (equiv.WorstCaseError, binary search over a miter) against the
// exhaustively enumerated one. Two completely independent derivations —
// CDCL over a Tseitin encoding vs bit-parallel truth tables — agreeing on
// an exact integer is strong evidence both are right. Restricted to
// MaxPIs inputs and ≤ 16 outputs to keep the binary search cheap.
func CrossCheckWCE(orig, approx *aig.Graph) *Violation {
	if orig.NumPIs() > MaxPIs || orig.NumPOs() > 16 || orig.NumPOs() == 0 {
		return nil
	}
	ex, err := Exact(orig, approx, nil)
	if err != nil {
		return &Violation{Check: "wce-exact", Detail: err.Error()}
	}
	sat, err := equiv.WorstCaseError(orig, approx)
	if err != nil {
		return &Violation{Check: "wce-sat", Detail: err.Error()}
	}
	if sat != ex.WCE {
		return &Violation{Check: "wce-cross", Detail: fmt.Sprintf(
			"SAT binary search says WCE=%d, exhaustive enumeration says %d", sat, ex.WCE)}
	}
	return nil
}

// CheckBudgetMonotonic runs the conventional flow at each threshold (must
// be sorted ascending) and checks the metamorphic property that a larger
// budget can only extend the applied-LAC sequence: the greedy conventional
// flow picks LACs in a threshold-independent order, so the applied count
// is non-decreasing in the threshold. (The dual-phase and AccALS flows
// take threshold-DEPENDENT trajectories — bound ratios and validation
// scale with the budget — so this is a theorem only for FlowConventional.)
func CheckBudgetMonotonic(g *aig.Graph, spec RunSpec, thresholds []float64) []Violation {
	if spec.Flow != core.FlowConventional {
		return []Violation{{Check: "monotonic-misuse", Detail: "budget monotonicity only holds for the conventional flow"}}
	}
	var out []Violation
	prevApplied := -1
	prevThr := math.Inf(-1)
	for _, t := range thresholds {
		if t < prevThr {
			return append(out, Violation{Check: "monotonic-misuse", Detail: "thresholds must be ascending"})
		}
		s := spec
		s.Threshold = t
		res, _, err := Execute(g, s)
		if err != nil {
			return append(out, Violation{Check: "monotonic-run", Detail: err.Error()})
		}
		if vs := Verify(g, s, res); len(vs) > 0 {
			out = append(out, vs...)
		}
		if res.Stats.Applied < prevApplied {
			out = append(out, Violation{Check: "budget-monotonic", Detail: fmt.Sprintf(
				"threshold %v applied %d LACs, smaller threshold %v applied %d",
				t, res.Stats.Applied, prevThr, prevApplied)})
		}
		prevApplied = res.Stats.Applied
		prevThr = t
	}
	return out
}

// CheckWCEBoundMonotonic runs the WCE-constrained conventional flow at each
// bound (must be sorted ascending) and checks the metamorphic property that
// loosening the bound is monotone in achievable area savings: the greedy
// candidate ranking is bound-independent and a certification that fails at
// bound B fails at every smaller bound, so a run at a larger bound applies
// a superset prefix — its applied count is non-decreasing and its emitted
// gate count non-increasing. Like CheckBudgetMonotonic this is a theorem
// only for FlowConventional (dual-phase trajectories are
// threshold-dependent), and only with an unlimited certification conflict
// budget (an exhausted budget at one bound says nothing about another).
func CheckWCEBoundMonotonic(g *aig.Graph, spec RunSpec, bounds []uint64) []Violation {
	if spec.Flow != core.FlowConventional {
		return []Violation{{Check: "wce-monotonic-misuse", Detail: "WCE-bound monotonicity only holds for the conventional flow"}}
	}
	if spec.CertConflictLimit != 0 {
		return []Violation{{Check: "wce-monotonic-misuse", Detail: "conflict-limited certification is not monotone in the bound"}}
	}
	var out []Violation
	prevApplied := -1
	prevGates := -1
	var prevBound uint64
	first := true
	for _, b := range bounds {
		if !first && b < prevBound {
			return append(out, Violation{Check: "wce-monotonic-misuse", Detail: "bounds must be ascending"})
		}
		s := spec
		s.Metric = metric.WCE
		s.WCEBound = b
		s.Threshold = float64(b)
		res, _, err := Execute(g, s)
		if err != nil {
			return append(out, Violation{Check: "wce-monotonic-run", Detail: err.Error()})
		}
		if vs := Verify(g, s, res); len(vs) > 0 {
			out = append(out, vs...)
		}
		if res.Stats.Applied < prevApplied {
			out = append(out, Violation{Check: "wce-bound-monotonic", Detail: fmt.Sprintf(
				"bound %d applied %d LACs, tighter bound %d applied %d",
				b, res.Stats.Applied, prevBound, prevApplied)})
		}
		gates := res.Graph.NumAnds()
		if prevGates >= 0 && gates > prevGates {
			out = append(out, Violation{Check: "wce-area-monotonic", Detail: fmt.Sprintf(
				"bound %d emitted %d gates, tighter bound %d emitted %d",
				b, gates, prevBound, prevGates)})
		}
		prevApplied = res.Stats.Applied
		prevGates = gates
		prevBound = b
		first = false
	}
	return out
}
