package oracle

import (
	"testing"

	"dpals/internal/aig"
	"dpals/internal/core"
	"dpals/internal/fault"
	"dpals/internal/gen"
	"dpals/internal/metric"
)

// TestShrinkStructuralPredicate drives the shrinker with a pure
// structural predicate — no synthesis runs — so the minimisation
// machinery itself is tested deterministically.
func TestShrinkStructuralPredicate(t *testing.T) {
	g := gen.Random(11, 10, 8, 90)
	start := g.NumAnds()
	if start < 40 {
		t.Fatalf("testbed too small: %d ANDs", start)
	}
	// "Fails" = still has at least 5 AND nodes: the greedy minimum is 5.
	small, trials := Shrink(g, func(c *aig.Graph) bool { return c.NumAnds() >= 5 }, ShrinkOptions{MaxTrials: 2000})
	if small.NumAnds() != 5 {
		t.Errorf("shrunk to %d ANDs, want the predicate minimum 5 (trials %d)", small.NumAnds(), trials)
	}
	if small.NumPOs() < 1 || small.NumPIs() < 1 {
		t.Errorf("shrunk circuit lost its interface: %d PIs, %d POs", small.NumPIs(), small.NumPOs())
	}
	if err := small.Check(); err != nil {
		t.Errorf("shrunk circuit invalid: %v", err)
	}
}

// TestShrinkRespectsTrialBudget checks that MaxTrials truly bounds the
// number of predicate calls.
func TestShrinkRespectsTrialBudget(t *testing.T) {
	g := gen.Random(11, 10, 8, 90)
	calls := 0
	_, trials := Shrink(g, func(c *aig.Graph) bool { calls++; return true }, ShrinkOptions{MaxTrials: 25})
	if calls != trials {
		t.Errorf("reported %d trials but predicate ran %d times", trials, calls)
	}
	if calls > 25 {
		t.Errorf("predicate ran %d times, budget 25", calls)
	}
}

// faultPredicate builds the real campaign predicate: the candidate still
// makes the seeded fault detectable (via violations, panic, or divergence
// from its own clean run).
func faultPredicate(spec RunSpec) Predicate {
	return func(c *aig.Graph) bool {
		clean := CleanOutcome(c, spec)
		if clean.Err != nil {
			return false
		}
		return DetectFault(c, spec, &clean).Detected
	}
}

// TestShrinkSeededFailure is the acceptance-criteria test: seed a fault,
// confirm the harness detects it, then shrink the failing circuit to a
// small repro (≤ 32 AND nodes) on which the failure still reproduces.
func TestShrinkSeededFailure(t *testing.T) {
	g := gen.Random(11, 10, 8, 90)
	base := RunSpec{Flow: core.FlowConventional, Metric: metric.MED, Threshold: 10,
		Patterns: 256, Seed: 3, Threads: 1, MaxIters: 30}
	det, nth := ScanFault(g, base, fault.FlipSimBit, 25)
	if !det.Detected {
		t.Fatalf("flip-sim-bit not detectable on the shrink testbed")
	}
	spec := base
	spec.Fault = fault.FlipSimBit
	spec.FaultNth = nth
	pred := faultPredicate(spec)
	if !pred(g) {
		t.Fatal("predicate does not hold on the unshrunk circuit")
	}
	small, trials := Shrink(g, pred, ShrinkOptions{MaxTrials: 300})
	t.Logf("shrunk %d → %d ANDs, %d PIs, %d POs in %d trials",
		g.NumAnds(), small.NumAnds(), small.NumPIs(), small.NumPOs(), trials)
	if small.NumAnds() > 32 {
		t.Errorf("shrunk repro has %d ANDs, want ≤ 32", small.NumAnds())
	}
	if small.NumAnds() >= g.NumAnds() {
		t.Errorf("shrinker made no progress: %d → %d ANDs", g.NumAnds(), small.NumAnds())
	}
	if !pred(small) {
		t.Error("failure does not reproduce on the shrunk circuit")
	}
	if err := small.Check(); err != nil {
		t.Errorf("shrunk circuit invalid: %v", err)
	}
}

// TestReproRoundTrip saves a shrunk repro and replays it from disk.
func TestReproRoundTrip(t *testing.T) {
	dir := t.TempDir()
	g := gen.Random(3, 8, 6, 60)
	spec := RunSpec{Flow: core.FlowDPSA, Metric: metric.MED, Threshold: 6,
		Patterns: 256, Seed: 1, Threads: 1, MaxIters: 30}
	det, nth := ScanFault(g, spec, fault.MisreportError, 5)
	if !det.Detected {
		t.Fatal("misreport-error not detectable")
	}
	spec.Fault = fault.MisreportError
	spec.FaultNth = nth
	rs := ReproSpec{Run: spec, Check: det.How, Detail: det.Detail}
	if err := SaveRepro(dir, "misreport-s1", rs, g); err != nil {
		t.Fatal(err)
	}
	repros, err := LoadRepros(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(repros) != 1 || repros[0].Name != "misreport-s1" {
		t.Fatalf("loaded %d repros, want [misreport-s1]", len(repros))
	}
	r := repros[0]
	if r.Spec.Run.Fault != fault.MisreportError || r.Spec.Ands != g.NumAnds() {
		t.Errorf("sidecar did not round-trip: %+v", r.Spec)
	}
	if r.Graph.NumPIs() != g.NumPIs() || r.Graph.NumPOs() != g.NumPOs() {
		t.Errorf("circuit did not round-trip: %d PIs %d POs", r.Graph.NumPIs(), r.Graph.NumPOs())
	}
	replay := r.Replay()
	if !replay.Detected {
		t.Error("replayed repro no longer detected")
	}
	// A missing directory is an empty fixture set, not an error.
	none, err := LoadRepros(dir + "/does-not-exist")
	if err != nil || len(none) != 0 {
		t.Errorf("missing dir: %v, %d repros", err, len(none))
	}
}
