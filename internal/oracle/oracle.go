// Package oracle is the differential-verification subsystem behind the
// alscheck campaign (cmd/alscheck): exact ground-truth error metrics by
// exhaustive bit-parallel enumeration, cross-checks of every figure a
// synthesis run reports, randomized+metamorphic campaign execution with
// fault seeding (internal/fault), and greedy shrinking of failing cases
// into small AIGER repros.
//
// The oracle deliberately re-derives everything through an independent
// code path: Exact folds truth tables directly from simulator output and
// never touches metric.State's incremental bookkeeping, so a bug in the
// engine's bookkeeping cannot hide itself in the check.
package oracle

import (
	"fmt"
	"math"

	"dpals/internal/aig"
	"dpals/internal/bitvec"
	"dpals/internal/metric"
	"dpals/internal/sim"
)

// MaxPIs bounds exhaustive enumeration: 2^20 patterns ≈ 16k words per
// node vector — still fast bit-parallel work, while 2^24 would already
// cost seconds per circuit across a campaign.
const MaxPIs = 20

// Metrics holds the exactly enumerated error figures of an approximate
// circuit against its exact reference, over all 2^PIs input patterns.
type Metrics struct {
	Patterns int // 2^PIs

	ER  float64 // fraction of patterns with ≥1 wrong output
	MED float64 // mean |weighted deviation|
	MSE float64 // mean squared weighted deviation
	MHD float64 // mean number of wrong output bits

	// WCE is the worst-case error under the unsigned LSB-first output
	// interpretation — max over all inputs of |int(orig) − int(approx)|.
	// Valid only when WCEOK (≤ 62 outputs, so the integer fits int64).
	WCE   uint64
	WCEOK bool
}

// Get returns the enumerated value of kind k.
func (m Metrics) Get(k metric.Kind) float64 {
	switch k {
	case metric.ER:
		return m.ER
	case metric.MED:
		return m.MED
	case metric.MSE:
		return m.MSE
	case metric.MHD:
		return m.MHD
	case metric.WCE:
		// Meaningful only when WCEOK; callers on the WCE path guard on it.
		return float64(m.WCE)
	}
	panic("oracle: unknown metric kind")
}

// Exact enumerates all 2^PIs input patterns of orig and approx (same
// PI/PO interface, at most MaxPIs inputs) and returns every error metric
// exactly. weights may be nil, selecting the unsigned LSB-first default —
// the same default core.Run applies.
func Exact(orig, approx *aig.Graph, weights metric.Weights) (Metrics, error) {
	if orig.NumPIs() != approx.NumPIs() || orig.NumPOs() != approx.NumPOs() {
		return Metrics{}, fmt.Errorf("oracle: interface mismatch: %d/%d PIs, %d/%d POs",
			orig.NumPIs(), approx.NumPIs(), orig.NumPOs(), approx.NumPOs())
	}
	if orig.NumPIs() > MaxPIs {
		return Metrics{}, fmt.Errorf("oracle: %d PIs exceeds exhaustive limit %d", orig.NumPIs(), MaxPIs)
	}
	k := orig.NumPOs()
	if weights == nil {
		weights = metric.UnsignedWeights(k)
	}
	if len(weights) != k {
		return Metrics{}, fmt.Errorf("oracle: %d weights for %d POs", len(weights), k)
	}
	patterns := 1 << uint(orig.NumPIs())
	so := sim.Options{Patterns: patterns, Dist: sim.Exhaustive{}}
	se := sim.New(orig, so)
	sa := sim.New(approx, so)

	m := Metrics{Patterns: patterns, WCEOK: k <= 62}
	words := se.Words()
	ev, av, diff, any := bitvec.NewWords(words), bitvec.NewWords(words), bitvec.NewWords(words), bitvec.NewWords(words)
	// dev is the signed weighted deviation per pattern; dval the signed
	// integer deviation for WCE. Folding per-PO over only the set bits of
	// the xor keeps this O(#mismatches), like the engine's own bookkeeping
	// — but from scratch, with no shared state to inherit a bug from.
	dev := make([]float64, patterns)
	var dval []int64
	if m.WCEOK {
		dval = make([]int64, patterns)
	}
	mhdBits := 0
	for o := 0; o < k; o++ {
		se.POVal(o, ev)
		sa.POVal(o, av)
		diff.Xor(ev, av)
		mhdBits += diff.Count()
		any.OrWith(diff)
		w := weights[o]
		var unit int64
		if m.WCEOK {
			unit = int64(1) << uint(o)
		}
		avo := av
		diff.ForEach(func(i int) {
			if avo.Get(i) { // approx=1, exact=0
				dev[i] += w
				if dval != nil {
					dval[i] += unit
				}
			} else {
				dev[i] -= w
				if dval != nil {
					dval[i] -= unit
				}
			}
		})
	}
	x := float64(patterns)
	m.ER = float64(any.Count()) / x
	m.MHD = float64(mhdBits) / x
	sumAbs, sumSq := 0.0, 0.0
	for _, d := range dev {
		sumAbs += math.Abs(d)
		sumSq += d * d
	}
	m.MED = sumAbs / x
	m.MSE = sumSq / x
	if m.WCEOK {
		for _, d := range dval {
			if d < 0 {
				d = -d
			}
			if uint64(d) > m.WCE {
				m.WCE = uint64(d)
			}
		}
	}
	return m, nil
}

// SampledError recomputes, through metric.Compute (the from-scratch
// reference implementation), the error of approx against orig on exactly
// the patterns a core run with simOpt would train on. Both graphs must
// share the PI interface: the simulator draws PI patterns per input index
// from one seeded stream, so equal PI counts and equal options give both
// simulations bit-identical inputs.
func SampledError(orig, approx *aig.Graph, kind metric.Kind, weights metric.Weights, simOpt sim.Options) (float64, error) {
	if orig.NumPIs() != approx.NumPIs() || orig.NumPOs() != approx.NumPOs() {
		return 0, fmt.Errorf("oracle: interface mismatch: %d/%d PIs, %d/%d POs",
			orig.NumPIs(), approx.NumPIs(), orig.NumPOs(), approx.NumPOs())
	}
	if weights == nil && kind.Numeric() {
		weights = metric.UnsignedWeights(orig.NumPOs())
	}
	se := sim.New(orig, simOpt)
	sa := sim.New(approx, simOpt)
	exact := make([]bitvec.Vec, orig.NumPOs())
	approxV := make([]bitvec.Vec, orig.NumPOs())
	for o := range exact {
		exact[o] = bitvec.NewWords(se.Words())
		approxV[o] = bitvec.NewWords(sa.Words())
		se.POVal(o, exact[o])
		sa.POVal(o, approxV[o])
	}
	return metric.Compute(kind, weights, exact, approxV, se.Patterns()), nil
}
