package oracle

import (
	"math"
	"testing"

	"dpals/internal/aig"
	"dpals/internal/bitvec"
	"dpals/internal/equiv"
	"dpals/internal/gen"
	"dpals/internal/metric"
	"dpals/internal/sim"
)

// approximateOf builds a deliberately wrong variant of g by replacing one
// mid-topological AND node with constant false.
func approximateOf(t *testing.T, g *aig.Graph) *aig.Graph {
	t.Helper()
	c := g.Sweep()
	var ands []int32
	for _, v := range c.Topo() {
		if c.IsAnd(v) {
			ands = append(ands, v)
		}
	}
	if len(ands) == 0 {
		t.Fatal("test circuit has no AND nodes")
	}
	c.ReplaceWithLit(ands[len(ands)/2], aig.False)
	return c.Sweep()
}

// exhaustiveCompute is an independent reference: simulate both circuits
// over all patterns and feed the raw PO vectors to metric.Compute.
func exhaustiveCompute(t *testing.T, orig, approx *aig.Graph, kind metric.Kind, w metric.Weights) float64 {
	t.Helper()
	patterns := 1 << uint(orig.NumPIs())
	so := sim.Options{Patterns: patterns, Dist: sim.Exhaustive{}}
	se, sa := sim.New(orig, so), sim.New(approx, so)
	exact := make([]bitvec.Vec, orig.NumPOs())
	av := make([]bitvec.Vec, orig.NumPOs())
	for o := range exact {
		exact[o] = bitvec.NewWords(se.Words())
		av[o] = bitvec.NewWords(sa.Words())
		se.POVal(o, exact[o])
		sa.POVal(o, av[o])
	}
	if kind.Numeric() && w == nil {
		w = metric.UnsignedWeights(orig.NumPOs())
	}
	return metric.Compute(kind, w, exact, av, patterns)
}

func TestExactMatchesMetricCompute(t *testing.T) {
	circuits := []*aig.Graph{
		gen.Adder(4),
		gen.MultU(3, 3),
		gen.Comparator(4),
		gen.Parity(6),
		Randomish(t),
	}
	kinds := []metric.Kind{metric.ER, metric.MED, metric.MSE, metric.MHD}
	for _, g := range circuits {
		approx := approximateOf(t, g)
		m, err := Exact(g, approx, nil)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		if m.Patterns != 1<<uint(g.NumPIs()) {
			t.Fatalf("%s: %d patterns, want 2^%d", g.Name, m.Patterns, g.NumPIs())
		}
		for _, k := range kinds {
			want := exhaustiveCompute(t, g, approx, k, nil)
			got := m.Get(k)
			if d := math.Abs(got - want); d > 1e-9+1e-9*math.Abs(want) {
				t.Errorf("%s %s: oracle %v, metric.Compute %v", g.Name, k, got, want)
			}
		}
	}
}

func Randomish(t *testing.T) *aig.Graph {
	t.Helper()
	g := gen.Random(7, 6, 3, 40)
	if g.NumAnds() == 0 {
		t.Fatal("gen.Random returned an empty circuit")
	}
	return g
}

func TestExactIdenticalCircuitsZero(t *testing.T) {
	g := gen.Adder(3)
	m, err := Exact(g, g.Sweep(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.ER != 0 || m.MED != 0 || m.MSE != 0 || m.MHD != 0 || m.WCE != 0 {
		t.Fatalf("identical circuits have nonzero error: %+v", m)
	}
}

func TestExactWCEMatchesSAT(t *testing.T) {
	for _, g := range []*aig.Graph{gen.Adder(3), gen.MultU(3, 2), gen.Comparator(3)} {
		approx := approximateOf(t, g)
		m, err := Exact(g, approx, nil)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		if !m.WCEOK {
			t.Fatalf("%s: WCE not computed for %d POs", g.Name, g.NumPOs())
		}
		sat, err := equiv.WorstCaseError(g, approx)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		if sat != m.WCE {
			t.Errorf("%s: SAT WCE %d, exhaustive WCE %d", g.Name, sat, m.WCE)
		}
		if v := CrossCheckWCE(g, approx); v != nil {
			t.Errorf("%s: CrossCheckWCE: %v", g.Name, v)
		}
	}
}

func TestExactCustomWeights(t *testing.T) {
	g := gen.Adder(3)
	approx := approximateOf(t, g)
	w := metric.TwosComplementWeights(g.NumPOs())
	m, err := Exact(g, approx, w)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []metric.Kind{metric.MED, metric.MSE} {
		want := exhaustiveCompute(t, g, approx, k, w)
		if d := math.Abs(m.Get(k) - want); d > 1e-9+1e-9*math.Abs(want) {
			t.Errorf("%s with two's-complement weights: oracle %v, metric.Compute %v", k, m.Get(k), want)
		}
	}
}

func TestExactRejectsBadInputs(t *testing.T) {
	g := gen.Adder(3)
	if _, err := Exact(g, gen.Adder(4), nil); err == nil {
		t.Error("interface mismatch not rejected")
	}
	big := gen.Adder(12) // 24 PIs
	if _, err := Exact(big, big, nil); err == nil {
		t.Error("oversized circuit not rejected")
	}
	if _, err := Exact(g, g, metric.Weights{1}); err == nil {
		t.Error("short weight vector not rejected")
	}
}

func TestSampledErrorMatchesEngineReference(t *testing.T) {
	g := gen.Adder(4)
	approx := approximateOf(t, g)
	so := sim.Options{Patterns: 2048, Seed: 5}
	got, err := SampledError(g, approx, metric.MED, nil, so)
	if err != nil {
		t.Fatal(err)
	}
	// The sampled estimate of a 256-pattern universe drawn 2048 times
	// should be near the exact value (sanity, not a tight bound).
	m, err := Exact(g, approx, nil)
	if err != nil {
		t.Fatal(err)
	}
	rang := metric.MaxDeviation(metric.MED, metric.UnsignedWeights(g.NumPOs()), g.NumPOs())
	if d := math.Abs(got - m.MED); d > metric.HoeffdingDelta(rang, 2048, 1e-9) {
		t.Errorf("sampled %v vs exact %v: outside Hoeffding bound", got, m.MED)
	}
	// Identical circuits sample to exactly zero under any seed.
	zero, err := SampledError(g, g.Sweep(), metric.ER, nil, sim.Options{Patterns: 512, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if zero != 0 {
		t.Errorf("identical circuits sampled error %v, want 0", zero)
	}
}
