// Package lac generates and evaluates local approximate changes (LACs).
// Two LAC families are supported, matching the paper's experiments:
//
//   - constant LACs: replace a node by constant 0 or 1;
//   - SASIMI LACs [13]: replace a node by another existing signal, possibly
//     complemented ("substitute and simplify").
//
// Every LAC has a single-output affected region whose output is the target
// node (§III-A), so applying one is exactly aig.Graph.ReplaceWithLit.
// Candidate errors are evaluated in batch against the CPM (package cpm)
// and the metric state (package metric); with a single LAC per iteration
// the estimate is exact w.r.t. the sampled patterns.
package lac

import (
	"context"
	"math/bits"
	"sort"
	"sync/atomic"

	"dpals/internal/aig"
	"dpals/internal/bitvec"
	"dpals/internal/cpm"
	"dpals/internal/metric"
	"dpals/internal/par"
	"dpals/internal/sim"
)

// LAC is one candidate local approximate change: replace Target by NewLit.
type LAC struct {
	Target int32
	NewLit aig.Lit
	Gain   int // estimated AND nodes saved (MFFC of the target)
}

// IsConst reports whether the LAC replaces its target by a constant.
func (l LAC) IsConst() bool { return l.NewLit.Var() == 0 }

// DiffOperands returns the unmaterialised form of DiffMask: the target's
// value flips exactly on the set bits of tv ⊕ nv ⊕ inv, where inv is a
// word-level complement mask (all-ones when NewLit is complemented). For
// constant LACs nv is the simulator's all-zero constant vector. Feeding
// the operands straight into metric.Evaluator.EvalLACXor scores the
// candidate without writing a diff vector; padding bits that inv sets
// past the pattern count are harmless because CPM rows are masked.
func (l LAC) DiffOperands(s *sim.Sim) (tv, nv bitvec.Vec, inv uint64) {
	tv = s.Val(l.Target)
	nv = s.Val(l.NewLit.Var())
	if l.NewLit.IsCompl() {
		inv = ^uint64(0)
	}
	return tv, nv, inv
}

// DiffMask writes into dst the patterns under which the target's value
// changes when the LAC is applied: val(target) ⊕ val(NewLit).
func (l LAC) DiffMask(s *sim.Sim, dst bitvec.Vec) {
	tv := s.Val(l.Target)
	nv := s.Val(l.NewLit.Var())
	if l.NewLit.IsCompl() {
		for i := range dst {
			dst[i] = tv[i] ^ ^nv[i]
		}
		dst.Mask(s.Patterns())
	} else {
		dst.Xor(tv, nv)
	}
}

// Options configures candidate generation.
type Options struct {
	Constants bool // generate constant-0/1 LACs
	SASIMI    bool // generate signal-substitution LACs
	// MaxPerNode bounds the number of SASIMI substitution candidates per
	// target node. The paper's third self-adaption knob ("reduce the number
	// of LACs for each target node") lowers this value when step 3
	// dominates the runtime. Default 8.
	MaxPerNode int
	// SampleWords bounds the number of 64-bit words used for the
	// similarity ranking scan (the exact diff mask is still computed over
	// all patterns during evaluation). Default 8 (512 patterns).
	SampleWords int
	// WindowSize is the half-width of the popcount-sorted neighbourhood
	// scanned for similar signals. Default 32.
	WindowSize int
}

func (o Options) withDefaults() Options {
	if o.MaxPerNode <= 0 {
		o.MaxPerNode = 8
	}
	if o.SampleWords <= 0 {
		o.SampleWords = 8
	}
	if o.WindowSize <= 0 {
		o.WindowSize = 32
	}
	return o
}

// Generator produces candidate LACs for target nodes of one graph.
// The SASIMI similarity index must be refreshed (Reindex) after the
// simulation values change; flows refresh it once per iteration.
type Generator struct {
	g   *aig.Graph
	s   *sim.Sim
	opt Options

	// popcount-sorted signal index for SASIMI similarity search
	signals []int32 // PIs and live AND nodes, sorted by sampled popcount
	pops    []int   // parallel: sampled popcount
	rank    map[int32]int

	// Reused scratch. Candidate generation is serial by contract (it walks
	// shared graph traversal state), so these need no locking; the
	// per-worker evaluators are indexed by stable par worker ids.
	evs      []*metric.Evaluator // per-worker metric scratch
	evState  *metric.State       // state the evaluators are bound to
	lacBuf   []LAC               // all candidates of one EvaluateTargets call
	offs     [][2]int            // per target: [start, end) into lacBuf
	tfoMark  []bool              // sasimi: TFO membership of the current target
	tfoList  []int32             // sasimi: marked nodes, for O(cone) reset
	tfoStack []int32             // sasimi: DFS stack
	scored   []scoredCand        // sasimi: similarity-ranked neighbourhood
}

type scoredCand struct {
	node  int32
	compl bool
	dist  int
}

// NewGenerator builds a generator and its signal index.
func NewGenerator(g *aig.Graph, s *sim.Sim, opt Options) *Generator {
	gen := &Generator{g: g, s: s, opt: opt.withDefaults()}
	gen.Reindex()
	return gen
}

// MaxPerNode returns the current SASIMI candidate bound per target.
func (gen *Generator) MaxPerNode() int { return gen.opt.MaxPerNode }

// SetMaxPerNode adjusts the SASIMI candidate bound per target (the paper's
// third self-adaption knob). Values below 1 are clamped to 1.
func (gen *Generator) SetMaxPerNode(n int) {
	if n < 1 {
		n = 1
	}
	gen.opt.MaxPerNode = n
}

// Reindex rebuilds the similarity index from the current simulation values.
// Cheap (one popcount per signal); call after every applied LAC or once per
// iteration.
func (gen *Generator) Reindex() {
	if !gen.opt.SASIMI {
		return
	}
	g := gen.g
	gen.signals = gen.signals[:0]
	for _, v := range g.PIs() {
		gen.signals = append(gen.signals, v)
	}
	for _, v := range g.Topo() {
		if g.IsAnd(v) {
			gen.signals = append(gen.signals, v)
		}
	}
	sw := gen.sampleWords()
	gen.pops = gen.pops[:0]
	for _, v := range gen.signals {
		gen.pops = append(gen.pops, samplePop(gen.s.Val(v), sw))
	}
	idx := make([]int, len(gen.signals))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return gen.pops[idx[a]] < gen.pops[idx[b]] })
	sigs := make([]int32, len(idx))
	pops := make([]int, len(idx))
	gen.rank = make(map[int32]int, len(idx))
	for i, j := range idx {
		sigs[i] = gen.signals[j]
		pops[i] = gen.pops[j]
		gen.rank[sigs[i]] = i
	}
	gen.signals, gen.pops = sigs, pops
}

func (gen *Generator) sampleWords() int {
	sw := gen.opt.SampleWords
	if sw > gen.s.Words() {
		sw = gen.s.Words()
	}
	return sw
}

func samplePop(v bitvec.Vec, words int) int {
	n := 0
	for i := 0; i < words; i++ {
		n += popcount(v[i])
	}
	return n
}

func popcount(x uint64) int { return bits.OnesCount64(x) }

// CandidatesFor returns the candidate LACs targeting node v. The target's
// MFFC size is attached as the gain of every candidate. Not safe for
// concurrent use (shares graph traversal state and generator scratch).
func (gen *Generator) CandidatesFor(v int32) []LAC {
	return gen.appendCandidates(nil, v)
}

// appendCandidates appends v's candidate LACs to out. The batch evaluator
// routes every target through one shared buffer, so steady-state candidate
// generation allocates nothing.
func (gen *Generator) appendCandidates(out []LAC, v int32) []LAC {
	g := gen.g
	if !g.IsAnd(v) {
		return out
	}
	gain := g.MFFCSize(v)
	if gen.opt.Constants {
		out = append(out,
			LAC{Target: v, NewLit: aig.False, Gain: gain},
			LAC{Target: v, NewLit: aig.True, Gain: gain},
		)
	}
	if gen.opt.SASIMI {
		out = gen.sasimiAppend(out, v, gain)
	}
	return out
}

// markTFO marks v's transitive-fanout cone (v included) in gen.tfoMark,
// resetting the marks of the previous call first — substituting a signal
// from the cone would create a cycle.
func (gen *Generator) markTFO(v int32) {
	g := gen.g
	for _, u := range gen.tfoList {
		gen.tfoMark[u] = false
	}
	gen.tfoList = gen.tfoList[:0]
	if n := g.NumVars(); len(gen.tfoMark) < n {
		gen.tfoMark = make([]bool, n*2)
	}
	gen.tfoMark[v] = true
	gen.tfoList = append(gen.tfoList, v)
	stack := append(gen.tfoStack[:0], v)
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.Fanouts(x) {
			if !gen.tfoMark[w] && !g.IsDead(w) {
				gen.tfoMark[w] = true
				gen.tfoList = append(gen.tfoList, w)
				stack = append(stack, w)
			}
		}
	}
	gen.tfoStack = stack[:0]
}

// sasimiAppend scans the popcount-sorted neighbourhood of v for the most
// similar signals (direct or complemented) outside v's transitive fanout
// and appends them to out.
func (gen *Generator) sasimiAppend(out []LAC, v int32, gain int) []LAC {
	g := gen.g
	s := gen.s
	sw := gen.sampleWords()
	sampleBits := sw * 64
	if p := s.Patterns(); sampleBits > p {
		sampleBits = p
	}

	r, ok := gen.rank[v]
	if !ok {
		return out
	}
	gen.markTFO(v)
	cands := gen.scored[:0]
	vv := s.Val(v)
	consider := func(i int) {
		if i < 0 || i >= len(gen.signals) {
			return
		}
		u := gen.signals[i]
		if u == v || gen.tfoMark[u] || g.IsDead(u) {
			return
		}
		d := 0
		uv := s.Val(u)
		for w := 0; w < sw; w++ {
			d += popcount(vv[w] ^ uv[w])
		}
		if d <= sampleBits-d {
			cands = append(cands, scoredCand{u, false, d})
		} else {
			cands = append(cands, scoredCand{u, true, sampleBits - d})
		}
	}
	// Same-polarity neighbourhood: similar popcount.
	for off := 1; off <= gen.opt.WindowSize; off++ {
		consider(r - off)
		consider(r + off)
	}
	// Complemented candidates live near popcount  (sampleBits - pop(v)):
	// scan that neighbourhood too.
	cpop := sampleBits - gen.pops[r]
	ci := sort.SearchInts(gen.pops, cpop)
	for off := 0; off <= gen.opt.WindowSize; off++ {
		consider(ci - off - 1)
		consider(ci + off)
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].dist < cands[b].dist })
	gen.scored = cands[:0]
	base := len(out)
	for _, c := range cands {
		dup := false
		for _, prev := range out[base:] { // ≤ MaxPerNode entries: linear dedup
			if prev.NewLit.Var() == c.node {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		out = append(out, LAC{Target: v, NewLit: aig.MakeLit(c.node, c.compl), Gain: gain})
		if len(out)-base >= gen.opt.MaxPerNode {
			break
		}
	}
	return out
}

// Memo carries per-node evaluation results across EvaluateTargetsMemoCtx
// calls of one synthesis run, keyed by an explicit epoch. A candidate's
// evaluated error depends on the *global* metric state — the error of the
// whole circuit after applying it — so any applied LAC invalidates every
// memoized evaluation, not just the ones near the change: the owner must
// bump the epoch (Invalidate) after every state change that can affect
// generation or evaluation — an applied LAC (graph, simulation, metric
// state, similarity index), a rollback, or a MaxPerNode adjustment. A node
// is served from the memo only when its entry was stored in the current
// epoch, i.e. when nothing at all changed since it was evaluated; the
// reused NodeBest is then trivially bit-identical to a re-evaluation.
//
// The real reuse window is a dual-phase round boundary that applies
// nothing: when phase 2 exits on its error-budget or self-adaption check
// (rather than by applying its last candidate), the following
// comprehensive pass runs under the exact state of the last phase-2
// evaluation and reuses its S_cand evaluations — including the serial
// candidate generation, which no parallelism can hide.
type Memo struct {
	epoch uint64
	stamp []uint64 // per var: epoch of the node's stored evaluation
	best  []NodeBest
	work  []int64 // per var: work estimate of the stored evaluation
}

// NewMemo returns an empty memo for graphs with numVars variables.
func NewMemo(numVars int) *Memo {
	return &Memo{
		epoch: 1,
		stamp: make([]uint64, numVars),
		best:  make([]NodeBest, numVars),
		work:  make([]int64, numVars),
	}
}

// Invalidate starts a new epoch, atomically dropping every memoized
// evaluation. Cheap: entries age out by stamp mismatch.
func (m *Memo) Invalidate() { m.epoch++ }

// fresh reports whether v's stored evaluation is from the current epoch.
func (m *Memo) fresh(v int32) bool { return m != nil && m.stamp[v] == m.epoch }

// Eval is the evaluated error of one candidate LAC.
type Eval struct {
	LAC
	Err float64 // error of the circuit after applying the LAC (estimated, exact w.r.t. samples)
}

// NodeBest summarises the best LAC of one target node: the paper's E(n) is
// Best.Err − currentError.
type NodeBest struct {
	Node int32
	Best Eval
	N    int // number of candidates evaluated
}

// EvaluateTargets evaluates every candidate LAC for every target that has a
// CPM row and returns per-node bests, sorted by ascending error (ties:
// larger gain first), plus a deterministic work estimate of the evaluation
// in bitvec word operations (the counterpart of cut.Set.Work and
// cpm.Result.Work, used by DP-SA's self-adaption). Candidate generation
// runs serially (it walks shared graph traversal state); evaluation fans
// out over `threads` workers with the pipeline-wide semantics of package
// par (≤0: all CPUs, 1: serial). Results are bit-identical for every
// thread count: each worker evaluates whole targets with private scratch
// and writes only its target's slot.
func EvaluateTargets(gen *Generator, res *cpm.Result, st *metric.State, targets []int32, threads int) ([]NodeBest, int64) {
	bests, work, _ := EvaluateTargetsCtx(context.Background(), gen, res, st, targets, threads)
	return bests, work
}

// EvaluateTargetsCtx is EvaluateTargets with cooperative cancellation: it
// stops handing out targets once ctx is cancelled and returns ctx.Err()
// alongside the partial (unsorted, incomplete) bests, which the caller
// must discard. An uncancelled run is bit-identical to EvaluateTargets.
func EvaluateTargetsCtx(ctx context.Context, gen *Generator, res *cpm.Result, st *metric.State, targets []int32, threads int) ([]NodeBest, int64, error) {
	bests, work, _, _, err := EvaluateTargetsMemoCtx(ctx, gen, res, st, targets, threads, nil)
	return bests, work, err
}

// EvaluateTargetsMemoCtx is EvaluateTargetsCtx with cross-call
// memoization: targets whose memo entry is from the current epoch skip
// both candidate generation and evaluation and reuse the stored NodeBest —
// bit-identical by the Memo epoch contract — while every freshly evaluated
// target is stored back. A nil memo disables memoization.
//
// The returned work includes reusedWork, the recorded work estimate of the
// reused evaluations: an unchanged state implies an identical re-evaluation
// cost, so charging it keeps the deterministic work profile — and with it
// DP-SA's self-adaption trajectory — bit-identical to a memo-less run.
// hits counts the targets served from the memo.
func EvaluateTargetsMemoCtx(ctx context.Context, gen *Generator, res *cpm.Result, st *metric.State, targets []int32, threads int, memo *Memo) (bests []NodeBest, work, reusedWork int64, hits int, err error) {
	// Candidate generation is serial (shared graph traversal state); all
	// targets share one reused buffer, addressed by [start, end) offsets so
	// growth during generation cannot invalidate earlier targets' slices.
	// Memo-fresh targets keep an empty slot: their generation is skipped.
	gen.lacBuf = gen.lacBuf[:0]
	gen.offs = gen.offs[:0]
	for _, v := range targets {
		start := len(gen.lacBuf)
		if res.Has(v) && !memo.fresh(v) {
			gen.lacBuf = gen.appendCandidates(gen.lacBuf, v)
		}
		gen.offs = append(gen.offs, [2]int{start, len(gen.lacBuf)})
	}
	var hits64 int64
	out := make([]NodeBest, len(targets))
	workers := par.ScratchSlots(threads, len(targets))
	if gen.evState != st {
		gen.evs = gen.evs[:0]
		gen.evState = st
	}
	for len(gen.evs) < workers {
		gen.evs = append(gen.evs, nil)
	}
	evs := gen.evs[:workers]
	err = par.ForCtx(ctx, threads, len(targets), func(w, i int) {
		v := targets[i]
		// Serve memo-fresh targets without touching the evaluator. The
		// res.Has guard is belt-and-braces: a fresh stamp implies an
		// unchanged state, under which every analysis produces a row for v.
		if memo.fresh(v) && res.Has(v) {
			out[i] = memo.best[v]
			atomic.AddInt64(&work, memo.work[v])
			atomic.AddInt64(&reusedWork, memo.work[v])
			atomic.AddInt64(&hits64, 1)
			return
		}
		if evs[w] == nil {
			evs[w] = st.NewEvaluator()
		}
		ev := evs[w]
		cl := gen.lacBuf[gen.offs[i][0]:gen.offs[i][1]]
		nb := NodeBest{Node: v, Best: Eval{Err: -1}}
		row := res.Row(v)
		// One words-wide fused diff–score pass per row entry, per candidate.
		wk := int64(len(cl)) * int64(len(row.POs)) * int64(gen.s.Words())
		for _, cand := range cl {
			tv, nv, inv := cand.DiffOperands(gen.s)
			e := ev.EvalLACXor(tv, nv, inv, row)
			nb.N++
			if nb.Best.Err < 0 || e < nb.Best.Err ||
				(e == nb.Best.Err && cand.Gain > nb.Best.Gain) {
				nb.Best = Eval{LAC: cand, Err: e}
			}
		}
		out[i] = nb
		atomic.AddInt64(&work, wk)
		if memo != nil && nb.N > 0 {
			// Distinct targets → distinct slots; race-clean like out[i].
			memo.best[v] = nb
			memo.work[v] = wk
			memo.stamp[v] = memo.epoch
		}
	})
	hits = int(atomic.LoadInt64(&hits64))
	if err != nil {
		return out, work, reusedWork, hits, err
	}
	// Drop targets with no evaluated candidate, sort by error.
	kept := out[:0]
	for _, nb := range out {
		if nb.N > 0 {
			kept = append(kept, nb)
		}
	}
	sort.Slice(kept, func(a, b int) bool {
		if kept[a].Best.Err != kept[b].Best.Err {
			return kept[a].Best.Err < kept[b].Best.Err
		}
		if kept[a].Best.Gain != kept[b].Best.Gain {
			return kept[a].Best.Gain > kept[b].Best.Gain
		}
		return kept[a].Node < kept[b].Node
	})
	return kept, work, reusedWork, hits, nil
}
