package lac

import (
	"context"
	"math/rand"
	"testing"

	"dpals/internal/bitvec"
	"dpals/internal/cpm"
	"dpals/internal/cut"
	"dpals/internal/metric"
	"dpals/internal/sim"
)

// memoBed builds the evaluation environment the memo tests share.
func memoBed(t *testing.T, seed int64) (gen *Generator, res *cpm.Result, st *metric.State, targets []int32) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := randomGraph(rng, 6, 60, 5)
	s := sim.New(g, sim.Options{Patterns: 256, Seed: seed})
	exact := make([]bitvec.Vec, g.NumPOs())
	for o := range exact {
		exact[o] = bitvec.NewWords(s.Words())
		s.POVal(o, exact[o])
	}
	st = metric.NewState(metric.MED, exact, metric.UnsignedWeights(g.NumPOs()), s.Patterns())
	cuts := cut.NewSet(g, 1)
	res = cpm.BuildDisjoint(g, s, cuts, nil, 1)
	gen = NewGenerator(g, s, Options{Constants: true, SASIMI: true})
	for _, v := range g.Topo() {
		if g.IsAnd(v) {
			targets = append(targets, v)
		}
	}
	return gen, res, st, targets
}

// TestMemoHitsAreBitIdentical: under an unchanged state, a memoized second
// evaluation must serve every target from the memo and return exactly the
// memo-less result — bests, order, and the charged work estimate.
func TestMemoHitsAreBitIdentical(t *testing.T) {
	gen, res, st, targets := memoBed(t, 67)
	ctx := context.Background()
	plain, pwork, _, _, err := EvaluateTargetsMemoCtx(ctx, gen, res, st, targets, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	memo := NewMemo(int(gen.g.NumVars()))
	first, fwork, frw, fhits, err := EvaluateTargetsMemoCtx(ctx, gen, res, st, targets, 1, memo)
	if err != nil {
		t.Fatal(err)
	}
	if fhits != 0 || frw != 0 {
		t.Fatalf("cold memo pass reported %d hits / %d reused work", fhits, frw)
	}
	if fwork != pwork {
		t.Fatalf("memo pass work %d, memo-less %d", fwork, pwork)
	}
	for _, threads := range []int{1, 4} {
		second, swork, srw, shits, err := EvaluateTargetsMemoCtx(ctx, gen, res, st, targets, threads, memo)
		if err != nil {
			t.Fatal(err)
		}
		if shits != len(first) {
			t.Fatalf("threads=%d: %d hits, want every kept target (%d)", threads, shits, len(first))
		}
		if swork != pwork || srw != pwork {
			t.Fatalf("threads=%d: charged work %d (reused %d), want cold-equivalent %d", threads, swork, srw, pwork)
		}
		if len(second) != len(plain) {
			t.Fatalf("threads=%d: %d bests, want %d", threads, len(second), len(plain))
		}
		for i := range plain {
			if second[i].Node != plain[i].Node ||
				second[i].Best.Err != plain[i].Best.Err ||
				second[i].Best.LAC != plain[i].Best.LAC ||
				second[i].N != plain[i].N {
				t.Fatalf("threads=%d: best[%d] = %+v, want %+v", threads, i, second[i], plain[i])
			}
		}
	}
}

// TestMemoInvalidateDropsEverything: after Invalidate no target may be
// served from the memo.
func TestMemoInvalidateDropsEverything(t *testing.T) {
	gen, res, st, targets := memoBed(t, 71)
	ctx := context.Background()
	memo := NewMemo(int(gen.g.NumVars()))
	if _, _, _, _, err := EvaluateTargetsMemoCtx(ctx, gen, res, st, targets, 1, memo); err != nil {
		t.Fatal(err)
	}
	memo.Invalidate()
	_, _, rw, hits, err := EvaluateTargetsMemoCtx(ctx, gen, res, st, targets, 1, memo)
	if err != nil {
		t.Fatal(err)
	}
	if hits != 0 || rw != 0 {
		t.Fatalf("post-Invalidate pass served %d hits / %d reused work", hits, rw)
	}
}

// TestNilMemoMatchesEvaluateTargets: the nil-memo path is the plain
// evaluator — same bests, same work.
func TestNilMemoMatchesEvaluateTargets(t *testing.T) {
	gen, res, st, targets := memoBed(t, 73)
	plain, pwork := EvaluateTargets(gen, res, st, targets, 1)
	viaMemo, mwork, rw, hits, err := EvaluateTargetsMemoCtx(context.Background(), gen, res, st, targets, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if hits != 0 || rw != 0 {
		t.Fatalf("nil memo reported %d hits / %d reused work", hits, rw)
	}
	if mwork != pwork || len(viaMemo) != len(plain) {
		t.Fatalf("nil-memo pass diverges: work %d vs %d, %d vs %d bests", mwork, pwork, len(viaMemo), len(plain))
	}
	for i := range plain {
		if viaMemo[i] != plain[i] {
			t.Fatalf("best[%d] = %+v, want %+v", i, viaMemo[i], plain[i])
		}
	}
}
