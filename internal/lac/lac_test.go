package lac

import (
	"math"
	"math/rand"
	"testing"

	"dpals/internal/aig"
	"dpals/internal/bitvec"
	"dpals/internal/cpm"
	"dpals/internal/cut"
	"dpals/internal/metric"
	"dpals/internal/sim"
)

func randomGraph(rng *rand.Rand, nPIs, nAnds, nPOs int) *aig.Graph {
	g := aig.New("rand")
	var lits []aig.Lit
	for i := 0; i < nPIs; i++ {
		lits = append(lits, g.AddPI(""))
	}
	for i := 0; i < nAnds; i++ {
		a := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 1)
		b := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 1)
		lits = append(lits, g.And(a, b))
	}
	for i := 0; i < nPOs; i++ {
		g.AddPO(lits[len(lits)-1-rng.Intn(8)].NotIf(rng.Intn(2) == 1), "")
	}
	return g.Sweep()
}

func TestDiffMask(t *testing.T) {
	g := aig.New("t")
	a, b := g.AddPI("a"), g.AddPI("b")
	x := g.And(a, b)
	g.AddPO(x, "x")
	s := sim.New(g, sim.Options{Patterns: 256, Seed: 1})
	D := bitvec.NewWords(s.Words())

	// Const-0: D = val(x).
	LAC{Target: x.Var(), NewLit: aig.False}.DiffMask(s, D)
	if !D.Equal(s.Val(x.Var())) {
		t.Error("const-0 diff mask must equal the node value")
	}
	// Const-1: D = ¬val(x).
	LAC{Target: x.Var(), NewLit: aig.True}.DiffMask(s, D)
	want := bitvec.NewWords(s.Words())
	want.Not(s.Val(x.Var()))
	want.Mask(s.Patterns())
	if !D.Equal(want) {
		t.Error("const-1 diff mask must equal the complemented node value")
	}
	// Substitute by a: D = val(x) ⊕ val(a).
	LAC{Target: x.Var(), NewLit: a}.DiffMask(s, D)
	want.Xor(s.Val(x.Var()), s.Val(a.Var()))
	if !D.Equal(want) {
		t.Error("substitution diff mask wrong")
	}
	// Substitute by ¬a.
	LAC{Target: x.Var(), NewLit: a.Not()}.DiffMask(s, D)
	want.Not(want)
	want.Mask(s.Patterns())
	if !D.Equal(want) {
		t.Error("complemented substitution diff mask wrong")
	}
}

func TestConstCandidates(t *testing.T) {
	g := aig.New("t")
	a, b, c := g.AddPI("a"), g.AddPI("b"), g.AddPI("c")
	x := g.And(a, b)
	y := g.And(x, c)
	g.AddPO(y, "y")
	s := sim.New(g, sim.Options{Patterns: 64, Seed: 1})
	gen := NewGenerator(g, s, Options{Constants: true})
	cands := gen.CandidatesFor(y.Var())
	if len(cands) != 2 {
		t.Fatalf("want 2 constant candidates, got %d", len(cands))
	}
	for _, c := range cands {
		if !c.IsConst() {
			t.Errorf("candidate %v not constant", c)
		}
		if c.Gain != 2 { // y and x are y's MFFC
			t.Errorf("gain = %d, want 2", c.Gain)
		}
	}
}

func TestSASIMICandidatesAcyclic(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(rng, 6, 60, 5)
		s := sim.New(g, sim.Options{Patterns: 512, Seed: int64(trial)})
		gen := NewGenerator(g, s, Options{SASIMI: true, MaxPerNode: 6})
		for _, v := range g.Topo() {
			if !g.IsAnd(v) {
				continue
			}
			for _, c := range gen.CandidatesFor(v) {
				if c.IsConst() {
					continue
				}
				if g.InTFO(v, c.NewLit.Var()) {
					t.Fatalf("trial %d: candidate %v for node %d is in its TFO", trial, c.NewLit, v)
				}
				if c.NewLit.Var() == v {
					t.Fatalf("self-substitution offered")
				}
			}
		}
	}
}

// Applying a SASIMI LAC must keep the graph valid and the estimated error
// must match the real error measured after application.
func TestEstimatedErrorMatchesRealAfterApply(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for trial := 0; trial < 12; trial++ {
		g := randomGraph(rng, 7, 70, 6)
		patterns := 256
		orig := sim.New(g, sim.Options{Patterns: patterns, Seed: int64(trial)})
		exact := make([]bitvec.Vec, g.NumPOs())
		for o := range exact {
			exact[o] = bitvec.NewWords(orig.Words())
			orig.POVal(o, exact[o])
		}
		for _, kind := range []metric.Kind{metric.ER, metric.MSE, metric.MED} {
			gg := g.Clone()
			s := sim.New(gg, sim.Options{Patterns: patterns, Seed: int64(trial)})
			st := metric.NewState(kind, exact, metric.UnsignedWeights(gg.NumPOs()), s.Patterns())
			cuts := cut.NewSet(gg, 1)
			res := cpm.BuildDisjoint(gg, s, cuts, nil, 1)
			gen := NewGenerator(gg, s, Options{Constants: true, SASIMI: true, MaxPerNode: 4})

			var targets []int32
			for _, v := range gg.Topo() {
				if gg.IsAnd(v) {
					targets = append(targets, v)
				}
			}
			bests, _ := EvaluateTargets(gen, res, st, targets, 2)
			if len(bests) == 0 {
				continue
			}
			// Apply the best LAC of the median-ranked node and verify.
			nb := bests[len(bests)/2]
			cs := gg.ReplaceWithLit(nb.Best.Target, nb.Best.NewLit)
			if err := gg.Check(); err != nil {
				t.Fatalf("trial %d %v: %v", trial, kind, err)
			}
			s.ResimulateFrom(cs.Rewired)
			approx := make([]bitvec.Vec, gg.NumPOs())
			for o := range approx {
				approx[o] = bitvec.NewWords(s.Words())
				s.POVal(o, approx[o])
			}
			real := metric.Compute(kind, metric.UnsignedWeights(gg.NumPOs()), exact, approx, s.Patterns())
			if math.Abs(real-nb.Best.Err) > 1e-9*(1+math.Abs(real)) {
				t.Fatalf("trial %d %v: estimated %v, real %v", trial, kind, nb.Best.Err, real)
			}
		}
	}
}

func TestEvaluateTargetsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	g := randomGraph(rng, 6, 50, 4)
	s := sim.New(g, sim.Options{Patterns: 256, Seed: 7})
	exact := make([]bitvec.Vec, g.NumPOs())
	for o := range exact {
		exact[o] = bitvec.NewWords(s.Words())
		s.POVal(o, exact[o])
	}
	st := metric.NewState(metric.MED, exact, metric.UnsignedWeights(g.NumPOs()), s.Patterns())
	cuts := cut.NewSet(g, 1)
	res := cpm.BuildDisjoint(g, s, cuts, nil, 1)
	gen := NewGenerator(g, s, Options{Constants: true})
	var targets []int32
	for _, v := range g.Topo() {
		if g.IsAnd(v) {
			targets = append(targets, v)
		}
	}
	bests, pwork := EvaluateTargets(gen, res, st, targets, 4)
	for i := 1; i < len(bests); i++ {
		if bests[i-1].Best.Err > bests[i].Best.Err {
			t.Fatalf("results not sorted at %d: %v > %v", i, bests[i-1].Best.Err, bests[i].Best.Err)
		}
	}
	// Serial and parallel must agree, including the work estimate.
	serial, swork := EvaluateTargets(gen, res, st, targets, 1)
	if len(serial) != len(bests) {
		t.Fatalf("serial/parallel length mismatch")
	}
	if swork != pwork || swork <= 0 {
		t.Fatalf("work estimate not scheduling-independent: serial %d, parallel %d", swork, pwork)
	}
	for i := range serial {
		if serial[i].Node != bests[i].Node || serial[i].Best.Err != bests[i].Best.Err {
			t.Fatalf("serial/parallel mismatch at %d", i)
		}
	}
}
