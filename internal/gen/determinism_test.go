package gen

import (
	"bytes"
	"testing"

	"dpals/internal/aig"
	"dpals/internal/aiger"
)

func aigerBytes(t *testing.T, g *aig.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := aiger.Write(&buf, g); err != nil {
		t.Fatalf("%s: %v", g.Name, err)
	}
	return buf.Bytes()
}

// TestSuiteByteIdentical rebuilds the full scaled benchmark suite and
// requires every circuit to serialise to byte-identical AIGER — the
// reproducibility guarantee all campaign seeds and recorded experiment
// numbers rest on. Any map-iteration or pointer-ordering dependence in a
// generator shows up here as a one-bit diff.
func TestSuiteByteIdentical(t *testing.T) {
	a, b := Suite(true), Suite(true)
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("suite sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].PaperName != b[i].PaperName {
			t.Fatalf("suite order differs at %d: %s vs %s", i, a[i].PaperName, b[i].PaperName)
		}
		ab, bb := aigerBytes(t, a[i].Graph), aigerBytes(t, b[i].Graph)
		if !bytes.Equal(ab, bb) {
			t.Errorf("%s: two builds serialise differently (%d vs %d bytes)",
				a[i].PaperName, len(ab), len(bb))
		}
	}
}

// TestSuiteFunctionalSample spot-checks, through the Suite construction
// path, that the generated circuits still compute their arithmetic model:
// byte-identical garbage would pass the determinism test alone.
func TestSuiteFunctionalSample(t *testing.T) {
	byName := map[string]Benchmark{}
	for _, b := range Suite(true) {
		byName[b.PaperName] = b
	}
	ad, ok := byName["adder"]
	if !ok {
		t.Fatal("scaled suite has no adder")
	}
	mu, ok := byName["mult16"]
	if !ok {
		t.Fatal("scaled suite has no mult16")
	}
	r := rng(0x5eed)
	for i := 0; i < 32; i++ {
		x, y := r.bits(48), r.bits(48)
		out := evalOne(t, ad.Graph, map[string]uint64{"a": x, "b": y})
		// Scaled 48-bit adder: 49-bit sum s (x+y fits uint64 here).
		if got, want := out["s"], x+y; got != want {
			t.Fatalf("adder(%d, %d) = %d, want %d", x, y, got, want)
		}
		a, b := r.bits(12), r.bits(12)
		out = evalOne(t, mu.Graph, map[string]uint64{"a": a, "b": b})
		if got, want := out["p"], a*b; got != want {
			t.Fatalf("mult16(%d, %d) = %d, want %d", a, b, got, want)
		}
	}
}

// TestRandomDeterministic: gen.Random is the campaign's circuit source —
// the same seed must reproduce the same circuit byte for byte, and
// distinct seeds must actually vary.
func TestRandomDeterministic(t *testing.T) {
	for _, seed := range []int64{0, 1, 3, 42, -7} {
		g1 := Random(seed, 8, 6, 60)
		g2 := Random(seed, 8, 6, 60)
		if !bytes.Equal(aigerBytes(t, g1), aigerBytes(t, g2)) {
			t.Errorf("seed %d: two builds differ", seed)
		}
		if err := g1.Check(); err != nil {
			t.Errorf("seed %d: invalid graph: %v", seed, err)
		}
		if g1.NumPIs() != 8 || g1.NumPOs() != 6 {
			t.Errorf("seed %d: interface %d PIs / %d POs, want 8 / 6", seed, g1.NumPIs(), g1.NumPOs())
		}
		if g1.NumAnds() == 0 {
			t.Errorf("seed %d: no AND nodes", seed)
		}
	}
	if bytes.Equal(aigerBytes(t, Random(1, 8, 6, 60)), aigerBytes(t, Random(2, 8, 6, 60))) {
		t.Error("seeds 1 and 2 generated identical circuits")
	}
}

// TestRandomSurvivesRoundTrip: campaign repros are stored as AIGER, so
// the generated circuits must read back structurally identical.
func TestRandomSurvivesRoundTrip(t *testing.T) {
	g := Random(5, 7, 5, 50)
	var buf bytes.Buffer
	if err := aiger.Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := aiger.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumPIs() != g.NumPIs() || back.NumPOs() != g.NumPOs() || back.NumAnds() != g.NumAnds() {
		t.Fatalf("round trip changed shape: %d/%d/%d vs %d/%d/%d",
			back.NumPIs(), back.NumPOs(), back.NumAnds(), g.NumPIs(), g.NumPOs(), g.NumAnds())
	}
	if !bytes.Equal(aigerBytes(t, g), aigerBytes(t, back)) {
		t.Error("round trip changed serialisation")
	}
}
