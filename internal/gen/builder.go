// Package gen builds the benchmark circuits of the paper's Table I (or
// functional stand-ins for the proprietary/ISCAS ones) directly as AIGs,
// via a small word-level construction API. All generators are parametric
// in bit-width so experiments can be scaled.
package gen

import (
	"fmt"

	"dpals/internal/aig"
)

// Word is a little-endian vector of literals: w[0] is the LSB.
type Word []aig.Lit

// Builder wraps a graph with word-level operators.
type Builder struct {
	G *aig.Graph
}

// NewBuilder returns a builder over a fresh graph.
func NewBuilder(name string) *Builder { return &Builder{G: aig.New(name)} }

// Input declares width primary inputs named name[i] and returns them.
func (b *Builder) Input(name string, width int) Word {
	w := make(Word, width)
	for i := range w {
		w[i] = b.G.AddPI(fmt.Sprintf("%s[%d]", name, i))
	}
	return w
}

// InputBit declares a single primary input.
func (b *Builder) InputBit(name string) aig.Lit { return b.G.AddPI(name) }

// Output declares the bits of w as primary outputs named name[i].
func (b *Builder) Output(name string, w Word) {
	for i, l := range w {
		b.G.AddPO(l, fmt.Sprintf("%s[%d]", name, i))
	}
}

// OutputBit declares a single primary output.
func (b *Builder) OutputBit(name string, l aig.Lit) { b.G.AddPO(l, name) }

// Const returns a width-bit constant word.
func (b *Builder) Const(val uint64, width int) Word {
	w := make(Word, width)
	for i := range w {
		if val>>uint(i)&1 == 1 {
			w[i] = aig.True
		} else {
			w[i] = aig.False
		}
	}
	return w
}

// Lit helpers ---------------------------------------------------------------

// Not returns the bitwise complement of x.
func (b *Builder) Not(x Word) Word {
	y := make(Word, len(x))
	for i := range x {
		y[i] = x[i].Not()
	}
	return y
}

// And returns the bitwise AND of equal-width words.
func (b *Builder) And(x, y Word) Word { return b.zip(x, y, b.G.And) }

// Or returns the bitwise OR of equal-width words.
func (b *Builder) Or(x, y Word) Word { return b.zip(x, y, b.G.Or) }

// Xor returns the bitwise XOR of equal-width words.
func (b *Builder) Xor(x, y Word) Word { return b.zip(x, y, b.G.Xor) }

func (b *Builder) zip(x, y Word, f func(a, c aig.Lit) aig.Lit) Word {
	if len(x) != len(y) {
		panic("gen: word width mismatch")
	}
	z := make(Word, len(x))
	for i := range x {
		z[i] = f(x[i], y[i])
	}
	return z
}

// ZeroExtend pads x with zeros to width n (or truncates).
func (b *Builder) ZeroExtend(x Word, n int) Word {
	y := make(Word, n)
	for i := range y {
		if i < len(x) {
			y[i] = x[i]
		} else {
			y[i] = aig.False
		}
	}
	return y
}

// SignExtend pads x with its MSB to width n (or truncates).
func (b *Builder) SignExtend(x Word, n int) Word {
	y := make(Word, n)
	for i := range y {
		switch {
		case i < len(x):
			y[i] = x[i]
		case len(x) > 0:
			y[i] = x[len(x)-1]
		default:
			y[i] = aig.False
		}
	}
	return y
}

// ShiftLeft returns x << k (constant shift), keeping the width.
func (b *Builder) ShiftLeft(x Word, k int) Word {
	y := make(Word, len(x))
	for i := range y {
		if i-k >= 0 && i-k < len(x) {
			y[i] = x[i-k]
		} else {
			y[i] = aig.False
		}
	}
	return y
}

// ShiftRight returns x >> k (constant logical shift), keeping the width.
func (b *Builder) ShiftRight(x Word, k int) Word {
	y := make(Word, len(x))
	for i := range y {
		if i+k < len(x) {
			y[i] = x[i+k]
		} else {
			y[i] = aig.False
		}
	}
	return y
}

// ShiftRightArith returns x >> k with sign fill, keeping the width.
func (b *Builder) ShiftRightArith(x Word, k int) Word {
	y := make(Word, len(x))
	msb := aig.False
	if len(x) > 0 {
		msb = x[len(x)-1]
	}
	for i := range y {
		if i+k < len(x) {
			y[i] = x[i+k]
		} else {
			y[i] = msb
		}
	}
	return y
}

// Mux returns sel ? t : e bitwise (equal widths).
func (b *Builder) Mux(sel aig.Lit, t, e Word) Word {
	if len(t) != len(e) {
		panic("gen: mux width mismatch")
	}
	z := make(Word, len(t))
	for i := range t {
		z[i] = b.G.Mux(sel, t[i], e[i])
	}
	return z
}

// Arithmetic ----------------------------------------------------------------

// AddCarry returns x+y+cin as a same-width sum plus carry-out
// (ripple-carry; x and y must have equal width).
func (b *Builder) AddCarry(x, y Word, cin aig.Lit) (Word, aig.Lit) {
	if len(x) != len(y) {
		panic("gen: add width mismatch")
	}
	sum := make(Word, len(x))
	c := cin
	for i := range x {
		sum[i] = b.G.Xor(b.G.Xor(x[i], y[i]), c)
		c = b.G.Maj(x[i], y[i], c)
	}
	return sum, c
}

// Add returns x+y with the carry-out appended (width+1 result).
func (b *Builder) Add(x, y Word) Word {
	s, c := b.AddCarry(x, y, aig.False)
	return append(s, c)
}

// AddTrunc returns (x+y) mod 2^width.
func (b *Builder) AddTrunc(x, y Word) Word {
	s, _ := b.AddCarry(x, y, aig.False)
	return s
}

// Sub returns x−y (same width) and a borrow-out that is 1 when x < y
// (unsigned).
func (b *Builder) Sub(x, y Word) (Word, aig.Lit) {
	d, c := b.AddCarry(x, b.Not(y), aig.True)
	return d, c.Not() // carry-out 0 ⇔ borrow
}

// Neg returns the two's-complement negation of x.
func (b *Builder) Neg(x Word) Word {
	z, _ := b.AddCarry(b.Not(x), b.Const(1, len(x)), aig.False)
	return z
}

// MulU returns the unsigned product of x and y (width len(x)+len(y)),
// built as a carry-save array multiplier with a ripple final stage.
func (b *Builder) MulU(x, y Word) Word {
	n, m := len(x), len(y)
	out := make(Word, n+m)
	for i := range out {
		out[i] = aig.False
	}
	acc := make(Word, 0) // running sum, little-endian from bit i
	for i := 0; i < m; i++ {
		// Partial product x * y[i], aligned at bit i.
		pp := make(Word, n)
		for j := 0; j < n; j++ {
			pp[j] = b.G.And(x[j], y[i])
		}
		if i == 0 {
			out[0] = pp[0]
			acc = pp[1:]
			continue
		}
		// acc (aligned at bit i) + pp.
		accExt := b.ZeroExtend(acc, n)
		sum, c := b.AddCarry(accExt, pp, aig.False)
		out[i] = sum[0]
		acc = append(Word{}, sum[1:]...)
		acc = append(acc, c)
	}
	for k := range acc {
		if m+k < len(out) {
			out[m+k] = acc[k]
		}
	}
	return out
}

// MulS returns the signed (two's-complement) product of x and y
// (width len(x)+len(y)), implemented sign-magnitude around the unsigned
// array: |x|·|y| conditionally negated. The n-bit negation of the most
// negative value wraps to the correct unsigned magnitude 2^(n−1), so the
// construction is exact for all inputs.
func (b *Builder) MulS(x, y Word) Word {
	sx, sy := x[len(x)-1], y[len(y)-1]
	ax := b.Mux(sx, b.Neg(x), x)
	ay := b.Mux(sy, b.Neg(y), y)
	prod := b.MulU(ax, ay)
	neg := b.G.Xor(sx, sy)
	return b.Mux(neg, b.Neg(prod), prod)
}

// LtU returns 1 iff x < y, unsigned.
func (b *Builder) LtU(x, y Word) aig.Lit {
	_, bo := b.Sub(x, y)
	return bo
}

// Eq returns 1 iff x == y.
func (b *Builder) Eq(x, y Word) aig.Lit {
	if len(x) != len(y) {
		panic("gen: eq width mismatch")
	}
	r := aig.True
	for i := range x {
		r = b.G.And(r, b.G.Xnor(x[i], y[i]))
	}
	return r
}

// IsZero returns 1 iff every bit of x is 0.
func (b *Builder) IsZero(x Word) aig.Lit {
	r := aig.True
	for i := range x {
		r = b.G.And(r, x[i].Not())
	}
	return r
}

// ReduceXor returns the parity of x.
func (b *Builder) ReduceXor(x Word) aig.Lit {
	r := aig.False
	for i := range x {
		r = b.G.Xor(r, x[i])
	}
	return r
}
