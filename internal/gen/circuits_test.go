package gen

import (
	"math"
	"testing"
)

func signExtendVal(v uint64, bits int) int64 {
	if v>>uint(bits-1)&1 == 1 {
		return int64(v) - int64(1)<<uint(bits)
	}
	return int64(v)
}

func TestAdderExhaustiveSmall(t *testing.T) {
	g := Adder(4)
	if err := g.Check(); err != nil {
		t.Fatal(err)
	}
	for a := uint64(0); a < 16; a++ {
		for b := uint64(0); b < 16; b++ {
			out := evalOne(t, g, map[string]uint64{"a": a, "b": b})
			if out["s"] != a+b {
				t.Fatalf("adder(%d,%d) = %d, want %d", a, b, out["s"], a+b)
			}
		}
	}
}

func TestAdderRandomWide(t *testing.T) {
	g := Adder(48)
	r := rng(99)
	for i := 0; i < 200; i++ {
		a, b := r.bits(48), r.bits(48)
		out := evalOne(t, g, map[string]uint64{"a": a, "b": b})
		if out["s"] != a+b {
			t.Fatalf("adder48(%d,%d) = %d, want %d", a, b, out["s"], a+b)
		}
	}
}

func TestMultUExhaustive(t *testing.T) {
	g := MultU(5, 4)
	for a := uint64(0); a < 32; a++ {
		for b := uint64(0); b < 16; b++ {
			out := evalOne(t, g, map[string]uint64{"a": a, "b": b})
			if out["p"] != a*b {
				t.Fatalf("multu(%d,%d) = %d, want %d", a, b, out["p"], a*b)
			}
		}
	}
}

func TestMultSExhaustive(t *testing.T) {
	g := MultS(5, 4)
	for a := uint64(0); a < 32; a++ {
		for b := uint64(0); b < 16; b++ {
			sa, sb := signExtendVal(a, 5), signExtendVal(b, 4)
			want := uint64(sa*sb) & (1<<9 - 1)
			out := evalOne(t, g, map[string]uint64{"a": a, "b": b})
			if out["p"] != want {
				t.Fatalf("mults(%d,%d) = %d, want %d (signed %d*%d)", a, b, out["p"], want, sa, sb)
			}
		}
	}
}

func TestSquareExhaustive(t *testing.T) {
	g := Square(6)
	for a := uint64(0); a < 64; a++ {
		out := evalOne(t, g, map[string]uint64{"a": a})
		if out["q"] != a*a {
			t.Fatalf("square(%d) = %d, want %d", a, out["q"], a*a)
		}
	}
}

func TestSqrtExhaustive(t *testing.T) {
	g := Sqrt(10)
	for a := uint64(0); a < 1024; a++ {
		want := uint64(math.Sqrt(float64(a)))
		for want*want > a {
			want--
		}
		for (want+1)*(want+1) <= a {
			want++
		}
		out := evalOne(t, g, map[string]uint64{"a": a})
		if out["r"] != want {
			t.Fatalf("sqrt(%d) = %d, want %d", a, out["r"], want)
		}
	}
}

func TestALUExhaustive(t *testing.T) {
	g := ALU(4)
	for a := uint64(0); a < 16; a++ {
		for b := uint64(0); b < 16; b++ {
			for op := uint64(0); op < 8; op++ {
				for cin := uint64(0); cin < 2; cin++ {
					out := evalOne(t, g, map[string]uint64{"a": a, "b": b, "op": op, "cin": cin})
					var want uint64
					switch op {
					case 0:
						want = (a + b + cin) & 15
					case 1:
						want = (a - b) & 15
					case 2:
						want = a & b
					case 3:
						want = a | b
					case 4:
						want = a ^ b
					case 5:
						want = (a << 1) & 15
					case 6:
						want = a >> 1
					case 7:
						want = b
					}
					if out["y"] != want {
						t.Fatalf("alu op=%d a=%d b=%d cin=%d: y=%d want %d", op, a, b, cin, out["y"], want)
					}
					if op == 0 {
						if got := out["cout"]; got != (a+b+cin)>>4 {
							t.Fatalf("alu add cout=%d a=%d b=%d cin=%d", got, a, b, cin)
						}
					}
					if op == 1 {
						wantB := uint64(0)
						if a < b {
							wantB = 1
						}
						if out["cout"] != wantB {
							t.Fatalf("alu sub borrow=%d a=%d b=%d", out["cout"], a, b)
						}
					}
					wantZero := uint64(0)
					if want == 0 {
						wantZero = 1
					}
					if out["zero"] != wantZero {
						t.Fatalf("alu zero flag wrong: op=%d a=%d b=%d", op, a, b)
					}
				}
			}
		}
	}
}

func TestALUXSpot(t *testing.T) {
	g := ALUX(8)
	r := rng(7)
	for i := 0; i < 400; i++ {
		a, b := r.bits(8), r.bits(8)
		op := r.bits(3)
		out := evalOne(t, g, map[string]uint64{"a": a, "b": b, "op": op})
		var want uint64
		switch op {
		case 0:
			want = (a + b) & 255
		case 1:
			want = (a - b) & 255
		case 2:
			want = (a & 15) * (b & 15)
		case 3:
			want = ((a & b) + (a ^ b)) & 255
		case 4: // majority of a[i], b[i], a[i+1 mod 8]
			want = 0
			for k := 0; k < 8; k++ {
				x := a >> uint(k) & 1
				y := b >> uint(k) & 1
				z := a >> uint((k+1)%8) & 1
				if x+y+z >= 2 {
					want |= 1 << uint(k)
				}
			}
		case 5: // rotate left 1
			want = ((a << 1) | (a >> 7)) & 255
		case 6:
			want = ^(a & b) & 255
		case 7:
			want = ^(a ^ b) & 255
		}
		if out["y"] != want {
			t.Fatalf("alux op=%d a=%d b=%d: y=%d want %d", op, a, b, out["y"], want)
		}
		// Flags.
		wantLt := uint64(0)
		if a < b {
			wantLt = 1
		}
		if out["ltu"] != wantLt {
			t.Fatalf("alux ltu wrong: a=%d b=%d", a, b)
		}
	}
}

// hammingCheckBits computes the check bits the Detector circuit expects for
// a data word, by the same position convention.
func hammingCheckBits(n, k int, data uint64) (check uint64, overall uint64) {
	positions := make([]int, 0, n)
	for pos := 1; len(positions) < n; pos++ {
		if pos&(pos-1) != 0 {
			positions = append(positions, pos)
		}
	}
	for bit := 0; bit < k; bit++ {
		x := uint64(0)
		for i, pos := range positions {
			if pos>>uint(bit)&1 == 1 {
				x ^= data >> uint(i) & 1
			}
		}
		check |= x << uint(bit)
	}
	// Overall parity of data+check so that the circuit's total is even.
	p := uint64(0)
	for i := 0; i < n; i++ {
		p ^= data >> uint(i) & 1
	}
	for i := 0; i < k; i++ {
		p ^= check >> uint(i) & 1
	}
	return check, p
}

func TestDetectorSECDED(t *testing.T) {
	n, k := 16, 5
	g := Detector(n)
	if g.NumPIs() != n+k+1 {
		t.Fatalf("detector PI count = %d, want %d", g.NumPIs(), n+k+1)
	}
	r := rng(13)
	for trial := 0; trial < 100; trial++ {
		data := r.bits(n)
		check, p := hammingCheckBits(n, k, data)
		// Clean word: no errors, corrected output equals data.
		out := evalOne(t, g, map[string]uint64{"d": data, "c": check, "p": p})
		if out["serr"] != 0 || out["derr"] != 0 || out["q"] != data {
			t.Fatalf("clean word flagged: serr=%d derr=%d q=%x data=%x", out["serr"], out["derr"], out["q"], data)
		}
		// Single data-bit error: must be corrected.
		flip := int(r.bits(4)) % n
		bad := data ^ 1<<uint(flip)
		out = evalOne(t, g, map[string]uint64{"d": bad, "c": check, "p": p})
		if out["serr"] != 1 || out["q"] != data {
			t.Fatalf("single error not corrected: q=%x data=%x serr=%d", out["q"], data, out["serr"])
		}
		// Double error: must be flagged, not correctable.
		f2 := (flip + 1 + int(r.bits(3))%(n-1)) % n
		bad2 := bad ^ 1<<uint(f2)
		out = evalOne(t, g, map[string]uint64{"d": bad2, "c": check, "p": p})
		if out["derr"] != 1 {
			t.Fatalf("double error not flagged (flips %d,%d)", flip, f2)
		}
	}
}

func TestVecMulRandom(t *testing.T) {
	g := VecMul(3, 5)
	r := rng(21)
	for i := 0; i < 200; i++ {
		ins := map[string]uint64{}
		want := uint64(0)
		for d := 0; d < 3; d++ {
			x, y := r.bits(5), r.bits(5)
			ins["x"+string(rune('0'+d))] = x
			ins["y"+string(rune('0'+d))] = y
			want += x * y
		}
		out := evalOne(t, g, ins)
		if out["s"] != want {
			t.Fatalf("vecmul = %d, want %d", out["s"], want)
		}
	}
}

func TestButterflyRandom(t *testing.T) {
	w := 6
	g := Butterfly(w)
	r := rng(31)
	mask := uint64(1)<<uint(2*w+1) - 1
	for i := 0; i < 200; i++ {
		ar, ai := r.bits(w), r.bits(w)
		br, bi := r.bits(w), r.bits(w)
		tr, ti := r.bits(w), r.bits(w)
		sar, sai := signExtendVal(ar, w), signExtendVal(ai, w)
		sbr, sbi := signExtendVal(br, w), signExtendVal(bi, w)
		str, sti := signExtendVal(tr, w), signExtendVal(ti, w)
		pr := sbr*str - sbi*sti
		pi := sbr*sti + sbi*str
		want0r := uint64(sar+pr) & mask
		want0i := uint64(sai+pi) & mask
		want1r := uint64(sar-pr) & mask
		want1i := uint64(sai-pi) & mask
		out := evalOne(t, g, map[string]uint64{"ar": ar, "ai": ai, "br": br, "bi": bi, "tr": tr, "ti": ti})
		if out["o0r"] != want0r || out["o0i"] != want0i || out["o1r"] != want1r || out["o1i"] != want1i {
			t.Fatalf("butterfly mismatch at trial %d", i)
		}
	}
}

func TestSinApproximation(t *testing.T) {
	w := 10
	g := Sin(w)
	scale := float64(uint64(1) << uint(w))
	worst := 0.0
	for a := uint64(0); a < 1<<uint(w); a += 7 {
		angle := float64(a) / scale * math.Pi / 2
		want := math.Sin(angle)
		out := evalOne(t, g, map[string]uint64{"a": a})
		got := float64(out["s"]) / scale
		if d := math.Abs(got - want); d > worst {
			worst = d
		}
	}
	// CORDIC with w iterations and truncation: allow a few LSBs.
	if worst > 8/scale {
		t.Fatalf("sin worst-case error %v exceeds 8 LSB (%v)", worst, 8/scale)
	}
}

func TestLog2Approximation(t *testing.T) {
	n, f := 10, 6
	g := Log2(n, f)
	worst := 0.0
	for a := uint64(1); a < 1<<uint(n); a += 3 {
		want := math.Log2(float64(a))
		out := evalOne(t, g, map[string]uint64{"a": a})
		got := float64(out["i"]) + float64(out["f"])/float64(uint64(1)<<uint(f))
		if d := math.Abs(got - want); d > worst {
			worst = d
		}
	}
	if worst > 2.5/float64(uint64(1)<<uint(f)) {
		t.Fatalf("log2 worst-case error %v exceeds tolerance", worst)
	}
}

func TestParityComparatorMAC(t *testing.T) {
	p := Parity(9)
	r := rng(41)
	for i := 0; i < 100; i++ {
		a := r.bits(9)
		want := uint64(0)
		for k := 0; k < 9; k++ {
			want ^= a >> uint(k) & 1
		}
		if out := evalOne(t, p, map[string]uint64{"a": a}); out["p"] != want {
			t.Fatalf("parity(%b) = %d", a, out["p"])
		}
	}
	c := Comparator(6)
	for i := 0; i < 100; i++ {
		a, b := r.bits(6), r.bits(6)
		out := evalOne(t, c, map[string]uint64{"a": a, "b": b})
		if (out["lt"] == 1) != (a < b) || (out["eq"] == 1) != (a == b) || (out["gt"] == 1) != (a > b) {
			t.Fatalf("comparator(%d,%d) = %v", a, b, out)
		}
	}
	m := MAC(5)
	for i := 0; i < 100; i++ {
		a, b, cc := r.bits(5), r.bits(5), r.bits(10)
		out := evalOne(t, m, map[string]uint64{"a": a, "b": b, "c": cc})
		if out["s"] != a*b+cc {
			t.Fatalf("mac(%d,%d,%d) = %d, want %d", a, b, cc, out["s"], a*b+cc)
		}
	}
}

func TestSuiteBuilds(t *testing.T) {
	for _, b := range Suite(true) {
		if err := b.Graph.Check(); err != nil {
			t.Errorf("%s: %v", b.PaperName, err)
		}
		if b.Graph.NumAnds() == 0 {
			t.Errorf("%s: empty circuit", b.PaperName)
		}
		if b.Weights != nil && len(b.Weights) != b.Graph.NumPOs() {
			t.Errorf("%s: weights length %d vs %d POs", b.PaperName, len(b.Weights), b.Graph.NumPOs())
		}
		t.Logf("%-10s %4d PIs %4d POs %6d ANDs depth %d", b.PaperName,
			b.Graph.NumPIs(), b.Graph.NumPOs(), b.Graph.NumAnds(), b.Graph.Depth())
	}
}
