package gen

import (
	"fmt"
	"math"

	"dpals/internal/aig"
)

// Adder returns an n-bit + n-bit ripple adder with an (n+1)-bit sum —
// the paper's EPFL "adder" (128-bit: 256 PIs, 129 POs) at width n.
func Adder(n int) *aig.Graph {
	b := NewBuilder(fmt.Sprintf("adder%d", n))
	x := b.Input("a", n)
	y := b.Input("b", n)
	b.Output("s", b.Add(x, y))
	return b.G.Sweep()
}

// MultU returns an n×m unsigned array multiplier — the paper's "mult16"
// family (16×16: 32 PIs, 32 POs) at width n=m.
func MultU(n, m int) *aig.Graph {
	b := NewBuilder(fmt.Sprintf("mult%dx%du", n, m))
	x := b.Input("a", n)
	y := b.Input("b", m)
	b.Output("p", b.MulU(x, y))
	return b.G.Sweep()
}

// MultS returns an n×m signed multiplier — the paper's sm9×8 / sm18×14.
func MultS(n, m int) *aig.Graph {
	b := NewBuilder(fmt.Sprintf("sm%dx%d", n, m))
	x := b.Input("a", n)
	y := b.Input("b", m)
	b.Output("p", b.MulS(x, y))
	return b.G.Sweep()
}

// Square returns the x² unit (n-bit input, 2n-bit output) — the paper's
// EPFL "square" at width n.
func Square(n int) *aig.Graph {
	b := NewBuilder(fmt.Sprintf("square%d", n))
	x := b.Input("a", n)
	b.Output("q", b.MulU(x, x))
	return b.G.Sweep()
}

// ALU8 is the c880 stand-in: an 8-bit ALU (add, sub, and, or, xor, shifted
// pass, compares) with carry/zero/overflow flags.
func ALU8() *aig.Graph { return ALU(8) }

// ALU returns a w-bit ALU with a 3-bit opcode:
//
//	000 add   001 sub   010 and   011 or
//	100 xor   101 shl1  110 shr1  111 pass-b
//
// Outputs: result, carry-out, zero, negative, overflow.
func ALU(w int) *aig.Graph {
	b := NewBuilder(fmt.Sprintf("alu%d", w))
	a := b.Input("a", w)
	c := b.Input("b", w)
	op := b.Input("op", 3)
	cin := b.InputBit("cin")

	sum, cAdd := b.AddCarry(a, c, cin)
	diff, borrow := b.Sub(a, c)
	andW := b.And(a, c)
	orW := b.Or(a, c)
	xorW := b.Xor(a, c)
	shl := b.ShiftLeft(a, 1)
	shr := b.ShiftRight(a, 1)

	// 8:1 mux tree on op.
	m0 := b.Mux(op[0], diff, sum)  // 00x
	m1 := b.Mux(op[0], orW, andW)  // 01x
	m2 := b.Mux(op[0], shl, xorW)  // 10x
	m3 := b.Mux(op[0], c, shr)     // 11x
	lo := b.Mux(op[1], m1, m0)
	hi := b.Mux(op[1], m3, m2)
	res := b.Mux(op[2], hi, lo)

	cout := b.G.Mux(op[2], aig.False, b.G.Mux(op[1], aig.False, b.G.Mux(op[0], borrow, cAdd)))
	zero := b.IsZero(res)
	neg := res[len(res)-1]
	// Signed overflow for add/sub.
	ovfAdd := b.G.And(b.G.Xnor(a[w-1], c[w-1]), b.G.Xor(a[w-1], sum[w-1]))
	ovfSub := b.G.And(b.G.Xor(a[w-1], c[w-1]), b.G.Xor(a[w-1], diff[w-1]))
	ovf := b.G.Mux(op[0], ovfSub, ovfAdd)

	b.Output("y", res)
	b.OutputBit("cout", cout)
	b.OutputBit("zero", zero)
	b.OutputBit("neg", neg)
	b.OutputBit("ovf", ovf)
	return b.G.Sweep()
}

// ALUX is the c3540 stand-in: a richer w-bit ALU that adds a w/2×w/2
// multiply, a masked-add and a majority-vote op to the base ALU mix.
func ALUX(w int) *aig.Graph {
	b := NewBuilder(fmt.Sprintf("alux%d", w))
	a := b.Input("a", w)
	c := b.Input("b", w)
	op := b.Input("op", 3)

	sum := b.AddTrunc(a, c)
	diff, _ := b.Sub(a, c)
	mul := b.MulU(a[:w/2], c[:w/2]) // w bits
	maskAdd := b.AddTrunc(b.And(a, c), b.Xor(a, c))
	maj := make(Word, w)
	for i := 0; i < w; i++ {
		maj[i] = b.G.Maj(a[i], c[i], a[(i+1)%w])
	}
	rot := append(Word{a[w-1]}, a[:w-1]...) // rotate left 1
	nand := b.Not(b.And(a, c))
	xnor := b.Not(b.Xor(a, c))

	m0 := b.Mux(op[0], diff, sum)
	m1 := b.Mux(op[0], maskAdd, mul)
	m2 := b.Mux(op[0], rot, maj)
	m3 := b.Mux(op[0], xnor, nand)
	lo := b.Mux(op[1], m1, m0)
	hi := b.Mux(op[1], m3, m2)
	res := b.Mux(op[2], hi, lo)

	b.Output("y", res)
	b.OutputBit("parity", b.ReduceXor(res))
	b.OutputBit("ltu", b.LtU(a, c))
	b.OutputBit("eq", b.Eq(a, c))
	return b.G.Sweep()
}

// Detector16 is the c1908 stand-in: a 16-bit SECDED (Hamming) error
// detector/corrector. Inputs: 16 data bits + 6 check bits; outputs: 16
// corrected data bits plus single-error, double-error and syndrome-zero
// flags.
func Detector16() *aig.Graph { return Detector(16) }

// Detector returns the n-bit SECDED detector (n must make ceil(log2(n))+1
// check bits meaningful; any n ≥ 4 works).
func Detector(n int) *aig.Graph {
	b := NewBuilder(fmt.Sprintf("det%d", n))
	d := b.Input("d", n)
	// Check-bit count: positions 1..n+k in Hamming space.
	k := 1
	for (1 << k) < n+k+1 {
		k++
	}
	c := b.Input("c", k)
	pAll := b.InputBit("p") // overall parity bit

	// Compute syndrome: parity over Hamming positions. Data bit i of the
	// codeword occupies the i-th non-power-of-two position.
	positions := make([]int, 0, n)
	for pos := 1; len(positions) < n; pos++ {
		if pos&(pos-1) != 0 { // not a power of two
			positions = append(positions, pos)
		}
	}
	synd := make(Word, k)
	for bit := 0; bit < k; bit++ {
		x := c[bit]
		for i, pos := range positions {
			if pos>>uint(bit)&1 == 1 {
				x = b.G.Xor(x, d[i])
			}
		}
		synd[bit] = x
	}
	// Overall parity across data, check and parity bits.
	all := pAll
	for _, l := range d {
		all = b.G.Xor(all, l)
	}
	for _, l := range c {
		all = b.G.Xor(all, l)
	}

	syndZero := b.IsZero(synd)
	single := b.G.And(syndZero.Not(), all)       // nonzero syndrome, odd parity
	double := b.G.And(syndZero.Not(), all.Not()) // nonzero syndrome, even parity
	perr := b.G.And(syndZero, all)               // parity bit itself flipped

	// Correct single-bit errors: flip data bit i when syndrome == its
	// position and a single error is indicated.
	corrected := make(Word, n)
	for i, pos := range positions {
		match := aig.True
		for bit := 0; bit < k; bit++ {
			sb := synd[bit]
			if pos>>uint(bit)&1 == 1 {
				match = b.G.And(match, sb)
			} else {
				match = b.G.And(match, sb.Not())
			}
		}
		corrected[i] = b.G.Xor(d[i], b.G.And(match, single))
	}
	b.Output("q", corrected)
	b.OutputBit("serr", single)
	b.OutputBit("derr", double)
	b.OutputBit("perr", perr)
	return b.G.Sweep()
}

// Butterfly returns a radix-2 DIT FFT butterfly on w-bit fixed-point
// complex operands: out0 = a + b·t, out1 = a − b·t, where a, b, t are
// complex (re/im) w-bit signed values. Products are truncated back to
// w+2 bits. The paper's "butterfly" (100 PIs, 72 POs) corresponds to
// w ≈ 16; default experiments use a scaled width.
func Butterfly(w int) *aig.Graph {
	b := NewBuilder(fmt.Sprintf("butterfly%d", w))
	ar := b.Input("ar", w)
	ai := b.Input("ai", w)
	br := b.Input("br", w)
	bi := b.Input("bi", w)
	tr := b.Input("tr", w)
	ti := b.Input("ti", w)

	// Complex product p = b·t (2w bits, signed), keep top-aligned slice.
	rr := b.MulS(br, tr)
	ii := b.MulS(bi, ti)
	ri := b.MulS(br, ti)
	ir := b.MulS(bi, tr)
	pr, _ := b.Sub(rr, ii) // 2w bits
	pi := b.AddTrunc(ri, ir)

	ext := func(x Word) Word { return b.SignExtend(x, 2*w+1) }
	o0r := b.AddTrunc(ext(ar), ext(pr))
	o0i := b.AddTrunc(ext(ai), ext(pi))
	o1r, _ := b.Sub(ext(ar), ext(pr))
	o1i, _ := b.Sub(ext(ai), ext(pi))

	b.Output("o0r", o0r)
	b.Output("o0i", o0i)
	b.Output("o1r", o1r)
	b.Output("o1i", o1i)
	return b.G.Sweep()
}

// VecMul returns the d-dimensional dot product of w-bit unsigned vectors —
// the paper's "vecmul8" (8 dimensions × 16 bits: 256 PIs, 35 POs) at
// configurable scale.
func VecMul(d, w int) *aig.Graph {
	b := NewBuilder(fmt.Sprintf("vecmul%dx%d", d, w))
	outW := 2*w + bitsFor(d)
	acc := b.Const(0, outW)
	for i := 0; i < d; i++ {
		x := b.Input(fmt.Sprintf("x%d", i), w)
		y := b.Input(fmt.Sprintf("y%d", i), w)
		p := b.MulU(x, y)
		acc = b.AddTrunc(acc, b.ZeroExtend(p, outW))
	}
	b.Output("s", acc)
	return b.G.Sweep()
}

func bitsFor(n int) int {
	k := 0
	for (1 << k) < n {
		k++
	}
	return k
}

// Sqrt returns an n-bit integer square root unit (restoring digit
// recurrence, unrolled): output has ⌈n/2⌉ bits — the paper's EPFL "sqrt"
// at width n.
func Sqrt(n int) *aig.Graph {
	if n%2 != 0 {
		n++
	}
	m := n / 2
	b := NewBuilder(fmt.Sprintf("sqrt%d", n))
	x := b.Input("a", n)
	w := m + 2 // remainder width
	rem := b.Const(0, w)
	root := b.Const(0, w)
	for i := m - 1; i >= 0; i-- {
		// rem = rem<<2 | x[2i+1..2i]
		rem = b.ShiftLeft(rem, 2)
		rem[0] = x[2*i]
		rem[1] = x[2*i+1]
		// trial = root<<2 | 01
		trial := b.ShiftLeft(root, 2)
		trial[0] = aig.True
		diff, borrow := b.Sub(rem, trial)
		bit := borrow.Not()
		rem = b.Mux(bit, diff, rem)
		// root = root<<1 | bit
		root = b.ShiftLeft(root, 1)
		root[0] = bit
	}
	b.Output("r", root[:m])
	return b.G.Sweep()
}

// Log2 returns a fixed-point log2 unit: for an n-bit input x ≥ 1 it
// produces ⌈log2(n)⌉ integer bits and f fractional bits of log2(x) by
// normalisation plus the squaring digit recurrence — the paper's EPFL
// "log2" at configurable precision (f squarings, each a multiplier).
func Log2(n, f int) *aig.Graph {
	b := NewBuilder(fmt.Sprintf("log2_%d_%d", n, f))
	x := b.Input("a", n)
	ib := bitsFor(n)

	// Integer part: index of the MSB (priority encoder).
	msb := b.Const(0, ib)
	found := aig.False
	for i := n - 1; i >= 0; i-- {
		hit := b.G.And(x[i], found.Not())
		for k := 0; k < ib; k++ {
			if i>>uint(k)&1 == 1 {
				msb[k] = b.G.Or(msb[k], hit)
			}
		}
		found = b.G.Or(found, x[i])
	}

	// Normalise x to [1, 2): left-shift so the MSB lands at position n−1.
	// Barrel shifter over the ib shift bits of (n−1−msbIndex).
	shiftAmt, _ := b.Sub(b.Const(uint64(n-1), ib), msb)
	norm := x
	for k := 0; k < ib; k++ {
		shifted := b.ShiftLeft(norm, 1<<uint(k))
		norm = b.Mux(shiftAmt[k], shifted, norm)
	}
	// Mantissa m in [1,2) with n−1 fraction bits; keep the top p bits.
	p := n
	mant := norm // implicit leading one at norm[n-1]

	// Fraction bits: repeatedly square the mantissa; each square ≥ 2
	// yields a 1 bit and renormalises.
	frac := make(Word, f)
	for i := f - 1; i >= 0; i-- {
		sq := b.MulU(mant, mant) // 2p bits, value in [1,4)
		bit := sq[2*p-1]         // ≥ 2 ?
		hi := sq[p : 2*p]        // sq / 2^p  (when ≥2: [1,2))
		lo := append(Word{}, sq[p-1:2*p-1]...)
		mant = b.Mux(bit, hi, lo)
		frac[i] = bit
	}
	b.Output("f", frac)
	b.Output("i", msb)
	return b.G.Sweep()
}

// Sin returns a w-bit fixed-point sine unit built from an unrolled CORDIC
// rotation (w iterations) — the paper's EPFL "sin" (24-bit) at width w.
// The input is an angle in [0, π/2) as a w-bit fraction of π/2; the output
// is sin(angle) as a w-bit fraction, plus the final cosine word.
func Sin(w int) *aig.Graph {
	b := NewBuilder(fmt.Sprintf("sin%d", w))
	z := b.Input("a", w)

	g := w + 2 // guard bits width
	// CORDIC gain-compensated start vector: x = K, y = 0 with
	// K = ∏ 1/sqrt(1+2^-2i) ≈ 0.60725...
	kVal := uint64(math.Round(0.6072529350088813 * float64(uint64(1)<<uint(w))))
	x := b.ZeroExtend(b.Const(kVal, w+1), g)
	y := b.Const(0, g)
	// Angle accumulator in units of (π/2)/2^w, signed, g bits.
	zt := b.ZeroExtend(z, g)

	iters := w
	if iters > 24 {
		iters = 24
	}
	for i := 0; i < iters; i++ {
		// atan(2^-i) in the same angle units.
		at := uint64(math.Round(math.Atan(math.Ldexp(1, -i)) / (math.Pi / 2) * float64(uint64(1)<<uint(w))))
		atW := b.Const(at, g)
		neg := zt[g-1] // rotate direction: sign of residual angle
		xs := b.ShiftRightArith(x, i)
		ys := b.ShiftRightArith(y, i)
		xAdd := b.AddTrunc(x, ys)
		xSub, _ := b.Sub(x, ys)
		yAdd := b.AddTrunc(y, xs)
		ySub, _ := b.Sub(y, xs)
		zAdd := b.AddTrunc(zt, atW)
		zSub, _ := b.Sub(zt, atW)
		x = b.Mux(neg, xAdd, xSub)
		y = b.Mux(neg, ySub, yAdd)
		zt = b.Mux(neg, zAdd, zSub)
	}
	// Saturate at 1.0: sin(θ)→1 makes y reach 2^w, one past the top code.
	sat := y[w]
	sOut := make(Word, w)
	cOut := make(Word, w)
	for i := 0; i < w; i++ {
		sOut[i] = b.G.Or(y[i], sat)
		cOut[i] = b.G.Or(x[i], x[w])
	}
	b.Output("s", sOut)
	b.Output("c", cOut)
	return b.G.Sweep()
}

// Parity returns the n-input odd-parity tree (a classic single-output
// stress case: every input affects the output).
func Parity(n int) *aig.Graph {
	b := NewBuilder(fmt.Sprintf("parity%d", n))
	x := b.Input("a", n)
	b.OutputBit("p", b.ReduceXor(x))
	return b.G.Sweep()
}

// Comparator returns an n-bit unsigned comparator with lt/eq/gt outputs.
func Comparator(n int) *aig.Graph {
	b := NewBuilder(fmt.Sprintf("cmp%d", n))
	x := b.Input("a", n)
	y := b.Input("b", n)
	lt := b.LtU(x, y)
	eq := b.Eq(x, y)
	b.OutputBit("lt", lt)
	b.OutputBit("eq", eq)
	b.OutputBit("gt", b.G.And(lt.Not(), eq.Not()))
	return b.G.Sweep()
}

// MAC returns a multiply-accumulate unit: a·b + c with w-bit a, b and
// 2w-bit c, producing 2w+1 bits.
func MAC(w int) *aig.Graph {
	b := NewBuilder(fmt.Sprintf("mac%d", w))
	x := b.Input("a", w)
	y := b.Input("b", w)
	c := b.Input("c", 2*w)
	p := b.MulU(x, y)
	b.Output("s", b.Add(p, c))
	return b.G.Sweep()
}
