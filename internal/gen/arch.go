package gen

import (
	"fmt"

	"dpals/internal/aig"
)

// Alternative arithmetic architectures. ALS papers routinely contrast
// architectures of the same function (ripple vs parallel-prefix adders,
// array vs Wallace multipliers) because approximation opportunities differ
// with structure; these generators extend the suite accordingly.

// KoggeStoneAdder returns an n-bit parallel-prefix (Kogge-Stone) adder
// with an (n+1)-bit sum: same function as Adder(n), logarithmic depth.
func KoggeStoneAdder(n int) *aig.Graph {
	b := NewBuilder(fmt.Sprintf("ksadder%d", n))
	x := b.Input("a", n)
	y := b.Input("b", n)

	g := make(Word, n) // generate
	p := make(Word, n) // propagate
	for i := 0; i < n; i++ {
		g[i] = b.G.And(x[i], y[i])
		p[i] = b.G.Xor(x[i], y[i])
	}
	// Prefix combination: (G, P) pairs with span doubling each level.
	G := append(Word{}, g...)
	P := append(Word{}, p...)
	for span := 1; span < n; span <<= 1 {
		nextG := append(Word{}, G...)
		nextP := append(Word{}, P...)
		for i := span; i < n; i++ {
			nextG[i] = b.G.Or(G[i], b.G.And(P[i], G[i-span]))
			nextP[i] = b.G.And(P[i], P[i-span])
		}
		G, P = nextG, nextP
	}
	// Sum bits: s[i] = p[i] ⊕ carry-in[i], carry-in[i] = G[i-1].
	s := make(Word, n+1)
	s[0] = p[0]
	for i := 1; i < n; i++ {
		s[i] = b.G.Xor(p[i], G[i-1])
	}
	s[n] = G[n-1]
	b.Output("s", s)
	return b.G.Sweep()
}

// WallaceMultiplier returns an n×m unsigned multiplier with a Wallace-tree
// partial-product reduction (3:2 counters) and a ripple final adder: same
// function as MultU(n, m), shallower carry chains.
func WallaceMultiplier(n, m int) *aig.Graph {
	b := NewBuilder(fmt.Sprintf("wallace%dx%d", n, m))
	x := b.Input("a", n)
	y := b.Input("b", m)
	w := n + m

	// Partial-product bit columns.
	cols := make([][]aig.Lit, w)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			cols[i+j] = append(cols[i+j], b.G.And(x[j], y[i]))
		}
	}
	// Reduce columns with full/half adders until each has ≤ 2 bits.
	for {
		again := false
		next := make([][]aig.Lit, w)
		for c := 0; c < w; c++ {
			col := cols[c]
			for len(col) >= 3 {
				a0, a1, a2 := col[0], col[1], col[2]
				col = col[3:]
				sum := b.G.Xor(b.G.Xor(a0, a1), a2)
				carry := b.G.Maj(a0, a1, a2)
				next[c] = append(next[c], sum)
				if c+1 < w {
					next[c+1] = append(next[c+1], carry)
				}
				again = true
			}
			if len(col) == 2 && len(next[c]) > 0 {
				// Half adder to keep columns shrinking.
				s := b.G.Xor(col[0], col[1])
				cr := b.G.And(col[0], col[1])
				next[c] = append(next[c], s)
				if c+1 < w {
					next[c+1] = append(next[c+1], cr)
				}
				col = nil
				again = true
			}
			next[c] = append(next[c], col...)
		}
		cols = next
		if !again {
			break
		}
	}
	// Final carry-propagate addition of the two remaining rows.
	r0 := make(Word, w)
	r1 := make(Word, w)
	for c := 0; c < w; c++ {
		r0[c], r1[c] = aig.False, aig.False
		if len(cols[c]) > 0 {
			r0[c] = cols[c][0]
		}
		if len(cols[c]) > 1 {
			r1[c] = cols[c][1]
		}
	}
	sum, _ := b.AddCarry(r0, r1, aig.False)
	b.Output("p", sum)
	return b.G.Sweep()
}

// Divider returns an n-by-n unsigned restoring divider producing an n-bit
// quotient and an n-bit remainder. Division by zero yields an all-ones
// quotient and remainder == dividend, as the restoring recurrence does
// naturally... the quotient bits saturate because every trial subtraction
// succeeds against a zero divisor; the outputs remain well-defined.
func Divider(n int) *aig.Graph {
	b := NewBuilder(fmt.Sprintf("div%d", n))
	num := b.Input("a", n)
	den := b.Input("b", n)

	rem := b.Const(0, n+1)
	denE := b.ZeroExtend(den, n+1)
	q := make(Word, n)
	for i := n - 1; i >= 0; i-- {
		rem = b.ShiftLeft(rem, 1)
		rem[0] = num[i]
		diff, borrow := b.Sub(rem, denE)
		fits := borrow.Not()
		rem = b.Mux(fits, diff, rem)
		q[i] = fits
	}
	b.Output("q", q)
	b.Output("r", rem[:n])
	return b.G.Sweep()
}

// MinMax returns an n-bit two-input sorter: min and max of two unsigned
// words (the building block of median/sorting networks in image kernels).
func MinMax(n int) *aig.Graph {
	b := NewBuilder(fmt.Sprintf("minmax%d", n))
	x := b.Input("a", n)
	y := b.Input("b", n)
	lt := b.LtU(x, y)
	b.Output("min", b.Mux(lt, x, y))
	b.Output("max", b.Mux(lt, y, x))
	return b.G.Sweep()
}

// FIR returns a taps-point FIR filter with constant coefficients: the dot
// product of the last `taps` w-bit unsigned samples with small constant
// weights 1, 2, 3, … (shift-add structure typical of filter datapaths).
func FIR(taps, w int) *aig.Graph {
	b := NewBuilder(fmt.Sprintf("fir%dx%d", taps, w))
	outW := w + 2*bitsFor(taps) + 2
	acc := b.Const(0, outW)
	for i := 0; i < taps; i++ {
		s := b.Input(fmt.Sprintf("x%d", i), w)
		se := b.ZeroExtend(s, outW)
		coef := i + 1
		term := b.Const(0, outW)
		for bit := 0; coef>>bit != 0; bit++ {
			if coef>>bit&1 == 1 {
				term = b.AddTrunc(term, b.ShiftLeft(se, bit))
			}
		}
		acc = b.AddTrunc(acc, term)
	}
	b.Output("y", acc)
	return b.G.Sweep()
}
