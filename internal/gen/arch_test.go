package gen

import (
	"testing"
)

func TestKoggeStoneExhaustive(t *testing.T) {
	g := KoggeStoneAdder(5)
	if err := g.Check(); err != nil {
		t.Fatal(err)
	}
	for a := uint64(0); a < 32; a++ {
		for b := uint64(0); b < 32; b++ {
			out := evalOne(t, g, map[string]uint64{"a": a, "b": b})
			if out["s"] != a+b {
				t.Fatalf("ks(%d,%d) = %d, want %d", a, b, out["s"], a+b)
			}
		}
	}
}

func TestKoggeStoneShallowerThanRipple(t *testing.T) {
	ks := KoggeStoneAdder(32)
	rc := Adder(32)
	if ks.Depth() >= rc.Depth() {
		t.Errorf("Kogge-Stone depth %d not shallower than ripple %d", ks.Depth(), rc.Depth())
	}
}

func TestWallaceExhaustive(t *testing.T) {
	g := WallaceMultiplier(5, 4)
	if err := g.Check(); err != nil {
		t.Fatal(err)
	}
	for a := uint64(0); a < 32; a++ {
		for b := uint64(0); b < 16; b++ {
			out := evalOne(t, g, map[string]uint64{"a": a, "b": b})
			if out["p"] != a*b {
				t.Fatalf("wallace(%d,%d) = %d, want %d", a, b, out["p"], a*b)
			}
		}
	}
}

func TestWallaceMatchesArrayRandom(t *testing.T) {
	wal := WallaceMultiplier(9, 9)
	arr := MultU(9, 9)
	r := rng(77)
	for i := 0; i < 300; i++ {
		a, b := r.bits(9), r.bits(9)
		ow := evalOne(t, wal, map[string]uint64{"a": a, "b": b})
		oa := evalOne(t, arr, map[string]uint64{"a": a, "b": b})
		if ow["p"] != oa["p"] {
			t.Fatalf("wallace(%d,%d)=%d but array=%d", a, b, ow["p"], oa["p"])
		}
	}
}

func TestDividerExhaustive(t *testing.T) {
	g := Divider(5)
	if err := g.Check(); err != nil {
		t.Fatal(err)
	}
	for a := uint64(0); a < 32; a++ {
		for b := uint64(1); b < 32; b++ {
			out := evalOne(t, g, map[string]uint64{"a": a, "b": b})
			if out["q"] != a/b || out["r"] != a%b {
				t.Fatalf("div(%d,%d) = %d rem %d, want %d rem %d", a, b, out["q"], out["r"], a/b, a%b)
			}
		}
	}
	// Division by zero: saturated quotient, remainder == dividend.
	for a := uint64(0); a < 32; a += 7 {
		out := evalOne(t, g, map[string]uint64{"a": a, "b": 0})
		if out["q"] != 31 || out["r"] != a {
			t.Fatalf("div(%d,0) = %d rem %d", a, out["q"], out["r"])
		}
	}
}

func TestMinMaxExhaustive(t *testing.T) {
	g := MinMax(4)
	for a := uint64(0); a < 16; a++ {
		for b := uint64(0); b < 16; b++ {
			out := evalOne(t, g, map[string]uint64{"a": a, "b": b})
			wmin, wmax := a, b
			if b < a {
				wmin, wmax = b, a
			}
			if out["min"] != wmin || out["max"] != wmax {
				t.Fatalf("minmax(%d,%d) = %d/%d", a, b, out["min"], out["max"])
			}
		}
	}
}

func TestFIRRandom(t *testing.T) {
	g := FIR(4, 6)
	if err := g.Check(); err != nil {
		t.Fatal(err)
	}
	r := rng(91)
	for i := 0; i < 200; i++ {
		ins := map[string]uint64{}
		want := uint64(0)
		for tap := 0; tap < 4; tap++ {
			v := r.bits(6)
			ins[fmtTap(tap)] = v
			want += v * uint64(tap+1)
		}
		out := evalOne(t, g, ins)
		if out["y"] != want {
			t.Fatalf("fir = %d, want %d", out["y"], want)
		}
	}
}

func fmtTap(i int) string { return "x" + string(rune('0'+i)) }
