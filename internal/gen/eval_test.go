package gen

import (
	"strconv"
	"strings"
	"testing"

	"dpals/internal/aig"
)

// evalOne evaluates a generated circuit on one input assignment given as
// word values keyed by input name (multi-bit inputs named name[i] take the
// bit i of the value; single-bit inputs take bit 0). It returns the output
// words assembled the same way.
func evalOne(t *testing.T, g *aig.Graph, ins map[string]uint64) map[string]uint64 {
	t.Helper()
	val := make([]bool, g.NumVars())
	for i, v := range g.PIs() {
		name, bit := splitName(g.PIName(i))
		w, ok := ins[name]
		if !ok {
			t.Fatalf("missing input %q", name)
		}
		val[v] = w>>uint(bit)&1 == 1
	}
	litVal := func(l aig.Lit) bool { return val[l.Var()] != l.IsCompl() }
	for _, v := range g.Topo() {
		if g.Type(v) != aig.TypeAnd {
			continue
		}
		f0, f1 := g.Fanins(v)
		val[v] = litVal(f0) && litVal(f1)
	}
	out := map[string]uint64{}
	for i, po := range g.POs() {
		name, bit := splitName(g.POName(i))
		if litVal(po) {
			out[name] |= 1 << uint(bit)
		}
	}
	return out
}

func splitName(s string) (string, int) {
	if i := strings.IndexByte(s, '['); i >= 0 {
		n, _ := strconv.Atoi(strings.TrimSuffix(s[i+1:], "]"))
		return s[:i], n
	}
	return s, 0
}

// rng is a tiny deterministic generator (xorshift) so the tests do not
// depend on math/rand ordering.
type rng uint64

func (r *rng) next() uint64 {
	x := uint64(*r)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*r = rng(x)
	return x
}

func (r *rng) bits(n int) uint64 { return r.next() & (1<<uint(n) - 1) }
