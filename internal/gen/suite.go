package gen

import (
	"dpals/internal/aig"
)

// Benchmark describes one row of the paper's Table I: the paper's circuit
// name, the generated stand-in, and the recommended PO weighting for the
// numeric error metrics.
type Benchmark struct {
	PaperName string // row name in the paper's tables
	Function  string // description, as in Table I
	Graph     *aig.Graph
	Weights   []float64 // nil: unsigned LSB-first over all POs
	Small     bool      // paper's grouping (small < 4000 AIG nodes)
}

// signedWeights returns two's-complement weights for one n-bit word.
func signedWeights(n int) []float64 {
	w := make([]float64, n)
	v := 1.0
	for i := 0; i < n; i++ {
		w[i] = v
		v *= 2
	}
	w[n-1] = -w[n-1]
	return w
}

// concatWeights concatenates per-word weights (each word restarts at 2^0),
// matching circuits whose POs are several independent numeric words.
func concatWeights(groups ...[]float64) []float64 {
	var out []float64
	for _, g := range groups {
		out = append(out, g...)
	}
	return out
}

// unsignedW returns the weights 1,2,4,… for an n-bit unsigned word.
func unsignedW(n int) []float64 {
	w := make([]float64, n)
	v := 1.0
	for i := range w {
		w[i] = v
		v *= 2
	}
	return w
}

// SmallSuite returns the small-circuit group. With scaled=false the
// generators use the paper's bit-widths; with scaled=true they are reduced
// so the whole experiment suite runs on a laptop in minutes while keeping
// every circuit in the same role (see EXPERIMENTS.md).
func SmallSuite(scaled bool) []Benchmark {
	type cfg struct {
		paper, fn string
		build     func() *aig.Graph
		weights   func(g *aig.Graph) []float64
	}
	var cs []cfg
	if scaled {
		cs = []cfg{
			{"c880", "8-bit ALU", func() *aig.Graph { return ALU(8) }, nil},
			{"c1908", "16-bit detector", func() *aig.Graph { return Detector(16) }, nil},
			{"c3540", "8-bit ALU", func() *aig.Graph { return ALUX(8) }, nil},
			{"sm9x8", "9bit×8bit signed multiplier", func() *aig.Graph { return MultS(9, 8) },
				func(g *aig.Graph) []float64 { return signedWeights(g.NumPOs()) }},
			{"sm18x14", "12bit×10bit signed multiplier (scaled)", func() *aig.Graph { return MultS(12, 10) },
				func(g *aig.Graph) []float64 { return signedWeights(g.NumPOs()) }},
			{"mult16", "12-bit unsigned multiplier (scaled)", func() *aig.Graph { return MultU(12, 12) }, nil},
			{"adder", "48-bit adder (scaled)", func() *aig.Graph { return Adder(48) }, nil},
		}
	} else {
		cs = []cfg{
			{"c880", "8-bit ALU", func() *aig.Graph { return ALU(8) }, nil},
			{"c1908", "16-bit detector", func() *aig.Graph { return Detector(16) }, nil},
			{"c3540", "8-bit ALU", func() *aig.Graph { return ALUX(8) }, nil},
			{"sm9x8", "9bit×8bit signed multiplier", func() *aig.Graph { return MultS(9, 8) },
				func(g *aig.Graph) []float64 { return signedWeights(g.NumPOs()) }},
			{"sm18x14", "18bit×14bit signed multiplier", func() *aig.Graph { return MultS(18, 14) },
				func(g *aig.Graph) []float64 { return signedWeights(g.NumPOs()) }},
			{"mult16", "16-bit unsigned multiplier", func() *aig.Graph { return MultU(16, 16) }, nil},
			{"adder", "128-bit adder", func() *aig.Graph { return Adder(128) }, nil},
		}
	}
	out := make([]Benchmark, 0, len(cs))
	for _, c := range cs {
		g := c.build()
		b := Benchmark{PaperName: c.paper, Function: c.fn, Graph: g, Small: true}
		if c.weights != nil {
			b.Weights = c.weights(g)
		}
		out = append(out, b)
	}
	return out
}

// LargeSuite returns the large-circuit group (constant LACs in the paper's
// experiments).
func LargeSuite(scaled bool) []Benchmark {
	type cfg struct {
		paper, fn string
		build     func() *aig.Graph
		weights   func(g *aig.Graph) []float64
	}
	var cs []cfg
	if scaled {
		cs = []cfg{
			{"sin", "12-bit sin unit (scaled)", func() *aig.Graph { return Sin(12) }, nil},
			{"square", "24-bit square unit (scaled)", func() *aig.Graph { return Square(24) }, nil},
			{"sqrt", "48-bit square root unit (scaled)", func() *aig.Graph { return Sqrt(48) }, nil},
			{"log2", "12-bit log2 unit (scaled)", func() *aig.Graph { return Log2(12, 6) }, nil},
			{"butterfly", "Radix-2 butterfly (w=10, scaled)", func() *aig.Graph { return Butterfly(10) },
				func(g *aig.Graph) []float64 { return butterflyWeights(10) }},
			{"vecmul8", "4-dim vector multiplier (w=10, scaled)", func() *aig.Graph { return VecMul(4, 10) }, nil},
		}
	} else {
		cs = []cfg{
			{"sin", "24-bit sin unit", func() *aig.Graph { return Sin(24) }, nil},
			{"square", "64-bit square unit", func() *aig.Graph { return Square(64) }, nil},
			{"sqrt", "128-bit square root unit", func() *aig.Graph { return Sqrt(128) }, nil},
			{"log2", "32-bit log2 unit", func() *aig.Graph { return Log2(32, 16) }, nil},
			{"butterfly", "Radix-2 butterfly (w=16)", func() *aig.Graph { return Butterfly(16) },
				func(g *aig.Graph) []float64 { return butterflyWeights(16) }},
			{"vecmul8", "8-dim vector multiplier (w=16)", func() *aig.Graph { return VecMul(8, 16) }, nil},
		}
	}
	out := make([]Benchmark, 0, len(cs))
	for _, c := range cs {
		g := c.build()
		b := Benchmark{PaperName: c.paper, Function: c.fn, Graph: g, Small: false}
		if c.weights != nil {
			b.Weights = c.weights(g)
		}
		out = append(out, b)
	}
	return out
}

// butterflyWeights weights the four (2w+1)-bit output words independently,
// each as a two's-complement number.
func butterflyWeights(w int) []float64 {
	word := signedWeights(2*w + 1)
	return concatWeights(word, word, word, word)
}

// Suite returns the full benchmark set, small group first.
func Suite(scaled bool) []Benchmark {
	return append(SmallSuite(scaled), LargeSuite(scaled)...)
}
