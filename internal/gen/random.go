package gen

import (
	"fmt"
	"math/rand"

	"dpals/internal/aig"
)

// Random returns a reproducible pseudo-random AIG: pis primary inputs,
// up to pos primary outputs and roughly ands AND nodes (structural hashing
// and the final sweep may merge or drop some). The same seed always yields
// a byte-identical circuit, which is what lets the alscheck campaign
// replay any failing case from its seed alone.
//
// The construction biases AND operands and PO drivers toward recently
// created nodes, so the graphs have real depth and shared logic instead of
// degenerating into a flat forest of independent gates.
func Random(seed int64, pis, pos, ands int) *aig.Graph {
	if pis < 1 {
		pis = 1
	}
	if pos < 1 {
		pos = 1
	}
	if ands < 1 {
		ands = 1
	}
	for attempt := 0; ; attempt++ {
		g := randomOnce(seed+int64(attempt)*0x9e3779b9, pis, pos, ands)
		// Flows need at least one live AND node; an unlucky draw whose POs
		// all collapse to constants or PIs is redrawn deterministically.
		if g.NumAnds() > 0 || attempt >= 16 {
			g.Name = fmt.Sprintf("rand-s%d-i%d-o%d-a%d", seed, pis, pos, ands)
			return g
		}
	}
}

func randomOnce(seed int64, pis, pos, ands int) *aig.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder("rand")
	lits := make([]aig.Lit, 0, pis+ands)
	for i := 0; i < pis; i++ {
		lits = append(lits, b.InputBit(fmt.Sprintf("x%d", i)))
	}
	// pick draws an operand, favouring the tail of the creation order.
	pick := func() aig.Lit {
		n := len(lits)
		var idx int
		if rng.Intn(2) == 0 {
			w := 8
			if w > n {
				w = n
			}
			idx = n - 1 - rng.Intn(w)
		} else {
			idx = rng.Intn(n)
		}
		return lits[idx].NotIf(rng.Intn(2) == 1)
	}
	made := 0
	for tries := 0; made < ands && tries < 8*ands; tries++ {
		before := b.G.NumAnds()
		l := b.G.And(pick(), pick())
		if b.G.NumAnds() > before {
			lits = append(lits, aig.MakeLit(l.Var(), false))
			made++
		}
	}
	// POs read from the recent tail so most of the logic stays live; the
	// first PO pins the newest node, anchoring the deepest cone.
	tail := 2*pos + 4
	if tail > len(lits) {
		tail = len(lits)
	}
	for o := 0; o < pos; o++ {
		var l aig.Lit
		if o == 0 {
			l = lits[len(lits)-1]
		} else {
			l = lits[len(lits)-1-rng.Intn(tail)]
		}
		b.G.AddPO(l.NotIf(rng.Intn(2) == 1), fmt.Sprintf("y%d", o))
	}
	return b.G.Sweep()
}
