package aig

import (
	"crypto/sha256"
	"encoding/binary"
)

// StructuralDigest returns a canonical SHA-256 digest of the graph's
// function-relevant structure: the PI and PO counts, the live AND nodes
// of the PO cone in topological order with fanin literals renumbered to
// dense topological indices, and the PO literals. Node names, variable-id
// gaps left by dead nodes, and logic dangling outside the PO cone are all
// excluded — the synthesis engine sweeps before it runs and the
// technology mapper walks the PO cone, so two graphs with equal digests
// produce identical synthesis results and identical area/delay baselines.
// Two files that merely format the same structure differently (comments,
// names, node numbering) therefore digest equal, which is exactly what a
// content-addressed result cache wants.
//
// Like every traversal, the digest memoises the topological order inside
// the graph it runs on; do not call it concurrently with other operations
// on the same graph.
func (g *Graph) StructuralDigest() [sha256.Size]byte {
	h := sha256.New()
	var buf [4]byte
	u32 := func(v uint32) {
		binary.LittleEndian.PutUint32(buf[:], v)
		h.Write(buf[:])
	}
	h.Write([]byte("dpals-aig-digest-v1\x00"))
	u32(uint32(len(g.pis)))
	u32(uint32(len(g.pos)))

	// Topo orders constant and PIs first in stable order, then the AND
	// cone of the POs; renumbering every literal to its topological index
	// makes the encoding independent of variable-id assignment.
	order := g.Topo()
	dense := make([]uint32, len(g.nodes))
	for i, v := range order {
		dense[v] = uint32(i)
	}
	lit := func(l Lit) uint32 {
		x := dense[l.Var()] << 1
		if l.IsCompl() {
			x |= 1
		}
		return x
	}
	for _, v := range order {
		if !g.IsAnd(v) {
			continue
		}
		n := &g.nodes[v]
		u32(lit(n.fan0))
		u32(lit(n.fan1))
	}
	for _, po := range g.pos {
		u32(lit(po))
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}
