package aig

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// buildFromScript interprets a byte script as graph-construction and
// mutation commands, so testing/quick can explore the operation space.
func buildFromScript(script []byte) *Graph {
	g := New("quick")
	var lits []Lit
	for i := 0; i < 4; i++ {
		lits = append(lits, g.AddPI(""))
	}
	rd := func(i int) Lit {
		l := lits[int(script[i%len(script)])%len(lits)]
		if script[(i+1)%len(script)]&1 == 1 {
			l = l.Not()
		}
		return l
	}
	for i := 0; i+2 < len(script); i += 3 {
		switch script[i] % 4 {
		case 0, 1: // and
			lits = append(lits, g.And(rd(i+1), rd(i+2)))
		case 2: // xor
			lits = append(lits, g.Xor(rd(i+1), rd(i+2)))
		case 3: // mux
			lits = append(lits, g.Mux(rd(i+1), rd(i+2), rd(i)))
		}
	}
	for i := 0; i < 3 && i < len(lits); i++ {
		g.AddPO(lits[len(lits)-1-i], "")
	}
	return g
}

// Property: any construction script yields a structurally valid graph, and
// sweeping it preserves the function on all 16 input combinations.
func TestQuickScriptedConstruction(t *testing.T) {
	f := func(script []byte) bool {
		if len(script) < 3 {
			return true
		}
		if len(script) > 300 {
			script = script[:300]
		}
		g := buildFromScript(script)
		if err := g.Check(); err != nil {
			t.Logf("check: %v", err)
			return false
		}
		if g.NumPOs() == 0 {
			return true
		}
		sw := g.Sweep()
		if err := sw.Check(); err != nil {
			t.Logf("sweep check: %v", err)
			return false
		}
		ev1, ev2 := evalAll(g), evalAll(sw)
		for in := 0; in < 16; in++ {
			pi := []bool{in&1 != 0, in&2 != 0, in&4 != 0, in&8 != 0}
			o1, o2 := ev1(pi), ev2(pi)
			for k := range o1 {
				if o1[k] != o2[k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: replacing any node by any legal literal keeps invariants and
// the replaced node's readers see exactly the substituted function.
func TestQuickReplaceKeepsInvariants(t *testing.T) {
	f := func(script []byte, pick, rpick uint8) bool {
		if len(script) < 6 {
			return true
		}
		if len(script) > 200 {
			script = script[:200]
		}
		g := buildFromScript(script)
		var ands []int32
		for v := int32(1); v <= g.MaxVar(); v++ {
			if g.IsAnd(v) {
				ands = append(ands, v)
			}
		}
		if len(ands) == 0 {
			return true
		}
		v := ands[int(pick)%len(ands)]
		// Candidate replacements: constants, PIs, non-TFO nodes.
		repl := []Lit{False, True}
		for _, p := range g.PIs() {
			repl = append(repl, MakeLit(p, false))
		}
		for _, w := range ands {
			if w != v && !g.InTFO(v, w) {
				repl = append(repl, MakeLit(w, true))
			}
		}
		l := repl[int(rpick)%len(repl)]
		g.ReplaceWithLit(v, l)
		return g.Check() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: MFFC sizes are consistent — the MFFC of a node contains the
// node, only live AND nodes, and no node that has a reader outside the
// MFFC.
func TestQuickMFFCWellFormed(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := func(seed int64) bool {
		g := randomGraph(rand.New(rand.NewSource(seed^rng.Int63())), 5, 50, 4)
		for v := int32(1); v <= g.MaxVar(); v++ {
			if !g.IsAnd(v) {
				continue
			}
			mffc := g.MFFC(v)
			in := map[int32]bool{}
			for _, m := range mffc {
				in[m] = true
			}
			if !in[v] {
				return false
			}
			for _, m := range mffc {
				if !g.IsAnd(m) {
					return false
				}
				if m == v {
					continue
				}
				// Every reader of an inner MFFC node must be in the MFFC.
				for _, r := range g.Fanouts(m) {
					if !in[r] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
