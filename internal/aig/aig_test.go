package aig

import (
	"math/rand"
	"testing"
)

func TestLit(t *testing.T) {
	l := MakeLit(5, false)
	if l.Var() != 5 || l.IsCompl() {
		t.Fatalf("MakeLit(5,false) = %v", l)
	}
	n := l.Not()
	if n.Var() != 5 || !n.IsCompl() {
		t.Fatalf("Not() = %v", n)
	}
	if l.NotIf(false) != l || l.NotIf(true) != n {
		t.Fatal("NotIf wrong")
	}
	if False.Not() != True || True.Not() != False {
		t.Fatal("const complement wrong")
	}
	if l.String() != "5" || n.String() != "!5" {
		t.Fatalf("String: %s %s", l, n)
	}
}

func TestAndSimplifications(t *testing.T) {
	g := New("t")
	a := g.AddPI("a")
	b := g.AddPI("b")
	if g.And(a, False) != False || g.And(False, b) != False {
		t.Error("x∧0 must be 0")
	}
	if g.And(a, True) != a || g.And(True, b) != b {
		t.Error("x∧1 must be x")
	}
	if g.And(a, a) != a {
		t.Error("x∧x must be x")
	}
	if g.And(a, a.Not()) != False {
		t.Error("x∧¬x must be 0")
	}
	if g.NumAnds() != 0 {
		t.Errorf("trivial cases must not create nodes, have %d", g.NumAnds())
	}
	ab := g.And(a, b)
	if g.NumAnds() != 1 {
		t.Fatalf("NumAnds = %d", g.NumAnds())
	}
	if g.And(b, a) != ab {
		t.Error("structural hashing must canonicalise operand order")
	}
	if g.NumAnds() != 1 {
		t.Errorf("strash failed: NumAnds = %d", g.NumAnds())
	}
}

func TestDerivedGates(t *testing.T) {
	g := New("t")
	a, b, c := g.AddPI("a"), g.AddPI("b"), g.AddPI("c")
	g.AddPO(g.Or(a, b), "or")
	g.AddPO(g.Xor(a, b), "xor")
	g.AddPO(g.Xnor(a, b), "xnor")
	g.AddPO(g.Mux(a, b, c), "mux")
	g.AddPO(g.Maj(a, b, c), "maj")
	if err := g.Check(); err != nil {
		t.Fatal(err)
	}
	// Exhaustive functional check via direct evaluation.
	eval := evalAll(g)
	for in := 0; in < 8; in++ {
		av, bv, cv := in&1 != 0, in&2 != 0, in&4 != 0
		want := []bool{
			av || bv,
			av != bv,
			av == bv,
			(av && bv) || (!av && cv),
			(av && bv) || (av && cv) || (bv && cv),
		}
		got := eval([]bool{av, bv, cv})
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("input %03b output %s = %v, want %v", in, g.POName(i), got[i], want[i])
			}
		}
	}
}

// evalAll returns an evaluator computing PO values for a PI assignment.
func evalAll(g *Graph) func(pi []bool) []bool {
	return func(pi []bool) []bool {
		val := make([]bool, g.NumVars())
		for i, v := range g.PIs() {
			val[v] = pi[i]
		}
		litVal := func(l Lit) bool { return val[l.Var()] != l.IsCompl() }
		for _, v := range g.Topo() {
			if g.Type(v) != TypeAnd {
				continue
			}
			f0, f1 := g.Fanins(v)
			val[v] = litVal(f0) && litVal(f1)
		}
		out := make([]bool, g.NumPOs())
		for i, po := range g.POs() {
			out[i] = litVal(po)
		}
		return out
	}
}

func TestTopoOrder(t *testing.T) {
	g := New("t")
	a, b, c := g.AddPI("a"), g.AddPI("b"), g.AddPI("c")
	x := g.And(a, b)
	y := g.And(x, c)
	z := g.And(x, y.Not())
	g.AddPO(z, "z")
	order := g.Topo()
	pos := map[int32]int{}
	for i, v := range order {
		pos[v] = i
	}
	for _, v := range order {
		if g.Type(v) != TypeAnd {
			continue
		}
		f0, f1 := g.Fanins(v)
		if pos[f0.Var()] >= pos[v] || pos[f1.Var()] >= pos[v] {
			t.Fatalf("topo violation at node %d", v)
		}
	}
	if len(order) != 1+3+3 {
		t.Errorf("topo order has %d entries, want 7", len(order))
	}
	_ = y
}

func TestLevelsDepth(t *testing.T) {
	g := New("t")
	a, b := g.AddPI("a"), g.AddPI("b")
	x := g.And(a, b)
	y := g.And(x, a)
	z := g.And(y, b)
	g.AddPO(z, "z")
	lv := g.Levels()
	if lv[x.Var()] != 1 || lv[y.Var()] != 2 || lv[z.Var()] != 3 {
		t.Errorf("levels: %d %d %d", lv[x.Var()], lv[y.Var()], lv[z.Var()])
	}
	if g.Depth() != 3 {
		t.Errorf("Depth = %d", g.Depth())
	}
}

func TestCones(t *testing.T) {
	g := New("t")
	a, b, c := g.AddPI("a"), g.AddPI("b"), g.AddPI("c")
	x := g.And(a, b)
	y := g.And(x, c)
	z := g.And(x, a)
	g.AddPO(y, "y")
	g.AddPO(z, "z")

	tfi := map[int32]bool{}
	for _, v := range g.TFICone([]int32{y.Var()}) {
		tfi[v] = true
	}
	for _, v := range []int32{y.Var(), x.Var(), a.Var(), b.Var(), c.Var()} {
		if !tfi[v] {
			t.Errorf("TFI(y) missing %d", v)
		}
	}
	if tfi[z.Var()] {
		t.Error("TFI(y) must not contain z")
	}

	tfo := map[int32]bool{}
	for _, v := range g.TFOCone([]int32{x.Var()}) {
		tfo[v] = true
	}
	for _, v := range []int32{x.Var(), y.Var(), z.Var()} {
		if !tfo[v] {
			t.Errorf("TFO(x) missing %d", v)
		}
	}
	if !g.InTFO(x.Var(), y.Var()) || g.InTFO(y.Var(), x.Var()) {
		t.Error("InTFO wrong")
	}
	if !g.InTFO(x.Var(), x.Var()) {
		t.Error("InTFO must include the node itself")
	}
}

func TestMFFC(t *testing.T) {
	g := New("t")
	a, b, c := g.AddPI("a"), g.AddPI("b"), g.AddPI("c")
	x := g.And(a, b)   // shared: feeds y and external PO
	y := g.And(x, c)   // in MFFC of z
	z := g.And(y, b)   // root
	g.AddPO(z, "z")
	g.AddPO(x, "xo") // x referenced by PO: not in MFFC of z
	mffc := g.MFFC(z.Var())
	in := map[int32]bool{}
	for _, v := range mffc {
		in[v] = true
	}
	if !in[z.Var()] || !in[y.Var()] {
		t.Errorf("MFFC(z) = %v, want z and y", mffc)
	}
	if in[x.Var()] {
		t.Error("x must not be in MFFC(z): it drives a PO")
	}
	if len(mffc) != 2 {
		t.Errorf("MFFC size = %d, want 2", len(mffc))
	}
}

func TestReplaceWithLitConst(t *testing.T) {
	g := New("t")
	a, b, c := g.AddPI("a"), g.AddPI("b"), g.AddPI("c")
	x := g.And(a, b)
	y := g.And(x, c)
	g.AddPO(y, "y")
	cs := g.ReplaceWithLit(x.Var(), False)
	if err := g.Check(); err != nil {
		t.Fatal(err)
	}
	// x is removed (its only reader was rewired), y now reads const.
	if !g.IsDead(x.Var()) {
		t.Error("x should be dead after replacement")
	}
	found := false
	for _, v := range cs.Removed {
		if v == x.Var() {
			found = true
		}
	}
	if !found {
		t.Errorf("ChangeSet.Removed = %v, want to contain x", cs.Removed)
	}
	f0, f1 := g.Fanins(y.Var())
	if f0 != False && f1 != False {
		t.Error("y must now read constant false")
	}
	out := evalAll(g)([]bool{true, true, true})
	if out[0] {
		t.Error("output must be 0 after replacing x with const 0")
	}
}

func TestReplaceWithLitSASIMI(t *testing.T) {
	// Replace node x with PI c (complemented), keeping edge polarities.
	g := New("t")
	a, b, c := g.AddPI("a"), g.AddPI("b"), g.AddPI("c")
	x := g.And(a, b)
	y := g.And(x.Not(), c)
	g.AddPO(y, "y")
	g.AddPO(x, "xo")
	cs := g.ReplaceWithLit(x.Var(), c.Not())
	if err := g.Check(); err != nil {
		t.Fatal(err)
	}
	if len(cs.Removed) != 1 || cs.Removed[0] != x.Var() {
		t.Errorf("Removed = %v", cs.Removed)
	}
	// y = ¬x ∧ c with x := ¬c  →  y = c ∧ c = c ; PO xo = ¬c.
	for in := 0; in < 8; in++ {
		av, bv, cv := in&1 != 0, in&2 != 0, in&4 != 0
		out := evalAll(g)([]bool{av, bv, cv})
		if out[0] != cv {
			t.Errorf("y(%v) = %v, want %v", in, out[0], cv)
		}
		if out[1] != !cv {
			t.Errorf("xo(%v) = %v, want %v", in, out[1], !cv)
		}
	}
	// The replacement literal's variable gained fanouts → in S_c.
	inFc := false
	for _, v := range cs.FanoutChanged {
		if v == c.Var() {
			inFc = true
		}
	}
	if !inFc {
		t.Errorf("FanoutChanged = %v, want to contain c", cs.FanoutChanged)
	}
}

func TestReplaceRemovesMFFC(t *testing.T) {
	g := New("t")
	a, b, c, d := g.AddPI("a"), g.AddPI("b"), g.AddPI("c"), g.AddPI("d")
	x := g.And(a, b)
	y := g.And(x, c)
	z := g.And(y, d)
	g.AddPO(z, "z")
	before := g.NumAnds()
	cs := g.ReplaceWithLit(z.Var(), a)
	if err := g.Check(); err != nil {
		t.Fatal(err)
	}
	if g.NumAnds() != before-3 {
		t.Errorf("NumAnds = %d, want %d", g.NumAnds(), before-3)
	}
	if len(cs.Removed) != 3 {
		t.Errorf("Removed = %v, want 3 nodes", cs.Removed)
	}
	if g.PO(0) != a {
		t.Errorf("PO should be rewired to a, got %v", g.PO(0))
	}
}

func TestStrashConsistencyAfterReplace(t *testing.T) {
	g := New("t")
	a, b, c := g.AddPI("a"), g.AddPI("b"), g.AddPI("c")
	x := g.And(a, b)
	y := g.And(x, c)
	g.AddPO(y, "y")
	g.ReplaceWithLit(x.Var(), a)
	// y is now AND(a, c); requesting AND(a, c) must reuse y, and the stale
	// AND(x, c) key must not resolve to anything live.
	l := g.And(a, c)
	if l.Var() != y.Var() {
		t.Errorf("And(a,c) = %v, want reuse of y = %v", l, y)
	}
	if err := g.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestClone(t *testing.T) {
	g := New("t")
	a, b := g.AddPI("a"), g.AddPI("b")
	x := g.And(a, b)
	g.AddPO(x, "x")
	c := g.Clone()
	// Mutate the clone; the original must be untouched.
	c.ReplaceWithLit(x.Var(), False)
	if g.IsDead(x.Var()) {
		t.Error("mutating clone affected original")
	}
	if err := g.Check(); err != nil {
		t.Fatal(err)
	}
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestSweepConstProp(t *testing.T) {
	g := New("t")
	a, b, c := g.AddPI("a"), g.AddPI("b"), g.AddPI("c")
	x := g.And(a, b)
	y := g.And(x, c)
	g.AddPO(y, "y")
	g.ReplaceWithLit(x.Var(), True) // y becomes AND(1, c) ≡ c
	ng := g.Sweep()
	if err := ng.Check(); err != nil {
		t.Fatal(err)
	}
	if ng.NumAnds() != 0 {
		t.Errorf("sweep should remove buffer AND, have %d", ng.NumAnds())
	}
	out := evalAll(ng)([]bool{false, false, true})
	if !out[0] {
		t.Error("swept circuit must compute y = c")
	}
}

// randomGraph builds a random acyclic AIG for property tests.
func randomGraph(rng *rand.Rand, nPIs, nAnds, nPOs int) *Graph {
	g := New("rand")
	lits := []Lit{}
	for i := 0; i < nPIs; i++ {
		lits = append(lits, g.AddPI(""))
	}
	for i := 0; i < nAnds; i++ {
		a := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 1)
		b := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 1)
		lits = append(lits, g.And(a, b))
	}
	for i := 0; i < nPOs; i++ {
		g.AddPO(lits[len(lits)-1-rng.Intn(min(8, len(lits)))].NotIf(rng.Intn(2) == 1), "")
	}
	return g
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Property: random replacement sequences keep every structural invariant.
func TestQuickRandomReplacements(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		g := randomGraph(rng, 5, 40, 4)
		if err := g.Check(); err != nil {
			t.Fatalf("trial %d initial: %v", trial, err)
		}
		for step := 0; step < 10; step++ {
			// Pick a random live AND node.
			var cand []int32
			for v := int32(1); v <= g.MaxVar(); v++ {
				if g.IsAnd(v) {
					cand = append(cand, v)
				}
			}
			if len(cand) == 0 {
				break
			}
			v := cand[rng.Intn(len(cand))]
			// Pick a replacement not in TFO(v).
			var repl []Lit
			for _, w := range g.PIs() {
				repl = append(repl, MakeLit(w, rng.Intn(2) == 1))
			}
			for _, w := range cand {
				if w != v && !g.InTFO(v, w) {
					repl = append(repl, MakeLit(w, rng.Intn(2) == 1))
				}
			}
			repl = append(repl, False, True)
			l := repl[rng.Intn(len(repl))]
			mffc := g.MFFC(v)
			inMFFC := map[int32]bool{}
			for _, m := range mffc {
				inMFFC[m] = true
			}
			cs := g.ReplaceWithLit(v, l)
			if err := g.Check(); err != nil {
				t.Fatalf("trial %d step %d after replace %d<-%v: %v", trial, step, v, l, err)
			}
			if len(cs.Removed) < 1 {
				t.Fatalf("replacement must remove at least the target")
			}
			if inMFFC[l.Var()] {
				// The replacement keeps part of the MFFC alive.
				if len(cs.Removed) > len(mffc) {
					t.Fatalf("removed %d nodes, MFFC bound %d", len(cs.Removed), len(mffc))
				}
			} else if len(cs.Removed) != len(mffc) {
				t.Fatalf("removed %d nodes, MFFC predicted %d", len(cs.Removed), len(mffc))
			}
		}
	}
}

// Property: Sweep preserves functionality on random graphs.
func TestQuickSweepPreservesFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(rng, 6, 30, 5)
		ng := g.Sweep()
		if err := ng.Check(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ev1, ev2 := evalAll(g), evalAll(ng)
		for in := 0; in < 64; in++ {
			pi := make([]bool, 6)
			for i := range pi {
				pi[i] = in>>i&1 != 0
			}
			o1, o2 := ev1(pi), ev2(pi)
			for i := range o1 {
				if o1[i] != o2[i] {
					t.Fatalf("trial %d input %06b PO %d: %v vs %v", trial, in, i, o1[i], o2[i])
				}
			}
		}
	}
}
