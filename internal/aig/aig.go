// Package aig implements an AND-inverter graph (AIG), the circuit substrate
// used by the whole ALS engine. Nodes are either the constant, primary
// inputs, or two-input AND gates; inversion lives on edges as literal
// complement bits (AIGER convention).
//
// Beyond construction, the package maintains fanout lists and supports the
// structural operations the dual-phase framework needs: TFI/TFO cones,
// maximum fanout-free cones (MFFC), node replacement with precise reporting
// of the changed set S_c (paper §III-B), cloning for rollback, and a sweep
// pass that propagates constants and removes dangling logic.
package aig

import (
	"fmt"
	"sort"
)

// Lit is an AIG literal: 2*variable + complement. Literal 0 is constant
// false and literal 1 is constant true (variable 0 is the constant node).
type Lit uint32

// Constant literals.
const (
	False Lit = 0
	True  Lit = 1
)

// MakeLit builds a literal from a variable id and a complement flag.
func MakeLit(v int32, compl bool) Lit {
	l := Lit(v) << 1
	if compl {
		l |= 1
	}
	return l
}

// Var returns the variable id of the literal.
func (l Lit) Var() int32 { return int32(l >> 1) }

// IsCompl reports whether the literal is complemented.
func (l Lit) IsCompl() bool { return l&1 != 0 }

// Not returns the complemented literal.
func (l Lit) Not() Lit { return l ^ 1 }

// NotIf complements the literal when c is true.
func (l Lit) NotIf(c bool) Lit {
	if c {
		return l ^ 1
	}
	return l
}

// String renders the literal as the variable id, prefixed with '!' when
// complemented.
func (l Lit) String() string {
	if l.IsCompl() {
		return fmt.Sprintf("!%d", l.Var())
	}
	return fmt.Sprintf("%d", l.Var())
}

// NodeType distinguishes the three kinds of AIG nodes.
type NodeType uint8

// Node kinds.
const (
	TypeConst NodeType = iota // variable 0 only
	TypePI                    // primary input
	TypeAnd                   // two-input AND gate
)

type node struct {
	fan0, fan1 Lit
	fanouts    []int32 // AND nodes reading this node (duplicates when both fanins)
	typ        NodeType
	dead       bool
}

// Graph is a mutable AIG.
//
// The zero value is not usable; call New.
type Graph struct {
	Name string

	nodes   []node
	pis     []int32
	piNames []string
	pos     []Lit
	poNames []string

	strash map[uint64]int32

	numAnds int // live AND count

	// traversal bookkeeping
	mark   []uint32
	travID uint32

	// MFFCSize scratch (epoch-stamped deficits + FIFO queue), reused across
	// calls so the hot candidate-generation loop allocates nothing. Shares
	// the newTrav epoch with g.mark, which makes MFFC walks — like every
	// mark-based traversal — unsafe for concurrent use.
	mffcDef   []int32
	mffcDefID []uint32
	mffcQueue []int32

	// caches, invalidated on structural edits
	topo    []int32
	levels  []int32
	version uint64
}

// New returns an empty graph containing only the constant node.
func New(name string) *Graph {
	g := &Graph{
		Name:   name,
		nodes:  make([]node, 1), // var 0: constant
		strash: make(map[uint64]int32),
	}
	g.nodes[0].typ = TypeConst
	return g
}

// MaxVar returns the largest variable id in use (dead nodes included).
func (g *Graph) MaxVar() int32 { return int32(len(g.nodes) - 1) }

// NumVars returns the number of variable slots, i.e. MaxVar()+1. Slices
// indexed by variable id should have this length.
func (g *Graph) NumVars() int { return len(g.nodes) }

// NumPIs returns the number of primary inputs.
func (g *Graph) NumPIs() int { return len(g.pis) }

// NumPOs returns the number of primary outputs.
func (g *Graph) NumPOs() int { return len(g.pos) }

// NumAnds returns the number of live AND nodes — the circuit "size" used
// throughout the paper (#Nd).
func (g *Graph) NumAnds() int { return g.numAnds }

// Version is incremented by every structural edit; callers use it to
// invalidate derived data.
func (g *Graph) Version() uint64 { return g.version }

// PIs returns the variable ids of the primary inputs, in declaration order.
// The returned slice is owned by the graph and must not be modified.
func (g *Graph) PIs() []int32 { return g.pis }

// POs returns the primary output literals in declaration order. The returned
// slice is owned by the graph and must not be modified.
func (g *Graph) POs() []Lit { return g.pos }

// PO returns the i-th primary output literal.
func (g *Graph) PO(i int) Lit { return g.pos[i] }

// SetPO redirects the i-th primary output to drive literal l.
func (g *Graph) SetPO(i int, l Lit) {
	g.pos[i] = l
	g.version++
	g.topo, g.levels = nil, nil
}

// PIName returns the name of the i-th primary input.
func (g *Graph) PIName(i int) string { return g.piNames[i] }

// RenamePI sets the name of the i-th primary input. Names are cosmetic —
// only symbol tables and word-level evaluation helpers read them — so a
// rename never invalidates derived state.
func (g *Graph) RenamePI(i int, name string) { g.piNames[i] = name }

// POName returns the name of the i-th primary output.
func (g *Graph) POName(i int) string { return g.poNames[i] }

// Type returns the kind of variable v.
func (g *Graph) Type(v int32) NodeType { return g.nodes[v].typ }

// IsAnd reports whether v is a live AND node.
func (g *Graph) IsAnd(v int32) bool { return g.nodes[v].typ == TypeAnd && !g.nodes[v].dead }

// IsPI reports whether v is a primary input.
func (g *Graph) IsPI(v int32) bool { return g.nodes[v].typ == TypePI }

// IsDead reports whether v has been removed from the circuit.
func (g *Graph) IsDead(v int32) bool { return g.nodes[v].dead }

// Fanins returns the two fanin literals of AND node v.
func (g *Graph) Fanins(v int32) (Lit, Lit) { return g.nodes[v].fan0, g.nodes[v].fan1 }

// Fanouts returns the AND nodes reading v. A reader appears twice when both
// of its fanins are v. The slice is owned by the graph; do not modify.
func (g *Graph) Fanouts(v int32) []int32 { return g.nodes[v].fanouts }

// NumFanouts returns the number of fanout edges of v (PO references not
// included).
func (g *Graph) NumFanouts(v int32) int { return len(g.nodes[v].fanouts) }

// AddPI appends a primary input with the given name and returns its literal.
func (g *Graph) AddPI(name string) Lit {
	v := int32(len(g.nodes))
	g.nodes = append(g.nodes, node{typ: TypePI})
	g.pis = append(g.pis, v)
	if name == "" {
		name = fmt.Sprintf("pi%d", len(g.pis)-1)
	}
	g.piNames = append(g.piNames, name)
	g.version++
	g.topo, g.levels = nil, nil
	return MakeLit(v, false)
}

// AddPO appends a primary output driven by literal l.
func (g *Graph) AddPO(l Lit, name string) int {
	if name == "" {
		name = fmt.Sprintf("po%d", len(g.pos))
	}
	g.pos = append(g.pos, l)
	g.poNames = append(g.poNames, name)
	g.version++
	g.topo, g.levels = nil, nil
	return len(g.pos) - 1
}

func strashKey(a, b Lit) uint64 { return uint64(a)<<32 | uint64(b) }

// normKey returns the strash key for an unordered fanin pair.
func normKey(a, b Lit) uint64 {
	if a > b {
		a, b = b, a
	}
	return strashKey(a, b)
}

// And returns a literal for a∧b, creating a structurally hashed AND node
// unless a trivial simplification applies.
func (g *Graph) And(a, b Lit) Lit {
	// Trivial cases.
	switch {
	case a == False || b == False:
		return False
	case a == True:
		return b
	case b == True:
		return a
	case a == b:
		return a
	case a == b.Not():
		return False
	}
	if a > b {
		a, b = b, a
	}
	key := strashKey(a, b)
	if v, ok := g.strash[key]; ok && !g.nodes[v].dead {
		return MakeLit(v, false)
	}
	v := int32(len(g.nodes))
	g.nodes = append(g.nodes, node{fan0: a, fan1: b, typ: TypeAnd})
	g.nodes[a.Var()].fanouts = append(g.nodes[a.Var()].fanouts, v)
	g.nodes[b.Var()].fanouts = append(g.nodes[b.Var()].fanouts, v)
	g.strash[key] = v
	g.numAnds++
	g.version++
	g.topo, g.levels = nil, nil
	return MakeLit(v, false)
}

// Or returns a literal for a∨b.
func (g *Graph) Or(a, b Lit) Lit { return g.And(a.Not(), b.Not()).Not() }

// Xor returns a literal for a⊕b using the standard 3-AND construction.
func (g *Graph) Xor(a, b Lit) Lit {
	return g.And(g.And(a, b.Not()).Not(), g.And(a.Not(), b).Not()).Not()
}

// Xnor returns a literal for ¬(a⊕b).
func (g *Graph) Xnor(a, b Lit) Lit { return g.Xor(a, b).Not() }

// Mux returns a literal for s ? t : e.
func (g *Graph) Mux(s, t, e Lit) Lit {
	return g.And(g.And(s, t).Not(), g.And(s.Not(), e).Not()).Not()
}

// Maj returns the majority of three literals (the full-adder carry).
func (g *Graph) Maj(a, b, c Lit) Lit {
	return g.Or(g.And(a, b), g.Or(g.And(a, c), g.And(b, c)))
}

// newTrav starts a fresh traversal and returns the mark value to use.
func (g *Graph) newTrav() uint32 {
	if len(g.mark) < len(g.nodes) {
		grown := make([]uint32, len(g.nodes)*2)
		copy(grown, g.mark)
		g.mark = grown
	}
	g.travID++
	if g.travID == 0 { // wrapped: clear and restart
		for i := range g.mark {
			g.mark[i] = 0
		}
		for i := range g.mffcDefID { // shares the epoch counter
			g.mffcDefID[i] = 0
		}
		g.travID = 1
	}
	return g.travID
}

// Topo returns the variable ids of all live nodes (constant, PIs, ANDs) in
// a topological order: every node appears after its fanins. The slice is
// cached until the next structural edit and must not be modified.
func (g *Graph) Topo() []int32 {
	if g.topo != nil {
		return g.topo
	}
	id := g.newTrav()
	order := make([]int32, 0, len(g.nodes))
	// Constant and PIs first, in stable order.
	g.mark[0] = id
	order = append(order, 0)
	for _, v := range g.pis {
		g.mark[v] = id
		order = append(order, v)
	}
	// Iterative post-order DFS from the POs.
	type frame struct {
		v     int32
		stage int8
	}
	stack := make([]frame, 0, 64)
	for _, po := range g.pos {
		v := po.Var()
		if g.mark[v] == id {
			continue
		}
		stack = append(stack, frame{v, 0})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			n := &g.nodes[f.v]
			switch f.stage {
			case 0:
				f.stage = 1
				if w := n.fan0.Var(); g.mark[w] != id {
					g.mark[w] = id
					stack = append(stack, frame{w, 0})
					if g.nodes[w].typ != TypeAnd {
						stack[len(stack)-1].stage = 2
					}
				}
			case 1:
				f.stage = 2
				if w := n.fan1.Var(); g.mark[w] != id {
					g.mark[w] = id
					stack = append(stack, frame{w, 0})
					if g.nodes[w].typ != TypeAnd {
						stack[len(stack)-1].stage = 2
					}
				}
			default:
				order = append(order, f.v)
				stack = stack[:len(stack)-1]
			}
		}
		if g.mark[v] != id {
			g.mark[v] = id
		}
	}
	g.topo = order
	return order
}

// Levels returns the level (longest distance from a PI, in AND gates) of
// every variable; dead/unreached nodes have level 0. Cached with Topo.
func (g *Graph) Levels() []int32 {
	if g.levels != nil {
		return g.levels
	}
	lv := make([]int32, len(g.nodes))
	for _, v := range g.Topo() {
		n := &g.nodes[v]
		if n.typ != TypeAnd {
			continue
		}
		l0, l1 := lv[n.fan0.Var()], lv[n.fan1.Var()]
		if l1 > l0 {
			l0 = l1
		}
		lv[v] = l0 + 1
	}
	g.levels = lv
	return lv
}

// ReverseLevels groups the live AND nodes reachable from the POs by
// reverse-topological level: group 0 holds nodes with no live AND fanout,
// and a node's level is one more than the maximum level of its live
// fanouts. Every node's transitive fanout therefore lies entirely in
// earlier groups, so output-side analyses whose per-node work depends only
// on fanout-side results (disjoint cuts, CPM rows) can process one group
// in parallel with a barrier between groups. Within a group, nodes appear
// in topological order. The result is not cached.
func (g *Graph) ReverseLevels() [][]int32 {
	rl := make([]int32, len(g.nodes))
	order := g.Topo()
	var max int32 = -1
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		if !g.IsAnd(v) {
			continue
		}
		var l int32
		for _, f := range g.nodes[v].fanouts {
			if g.IsAnd(f) && rl[f] >= l {
				l = rl[f] + 1
			}
		}
		rl[v] = l
		if l > max {
			max = l
		}
	}
	groups := make([][]int32, max+1)
	for _, v := range order {
		if g.IsAnd(v) {
			groups[rl[v]] = append(groups[rl[v]], v)
		}
	}
	return groups
}

// Depth returns the maximum PO level.
func (g *Graph) Depth() int32 {
	lv := g.Levels()
	var d int32
	for _, po := range g.pos {
		if l := lv[po.Var()]; l > d {
			d = l
		}
	}
	return d
}

// TFICone returns the variable ids of all nodes in the union of the
// transitive-fanin cones of roots (roots included; constant and PIs
// included when reached). The order is unspecified.
func (g *Graph) TFICone(roots []int32) []int32 {
	id := g.newTrav()
	var cone []int32
	var stack []int32
	for _, r := range roots {
		if g.mark[r] == id || g.nodes[r].dead {
			continue
		}
		g.mark[r] = id
		stack = append(stack, r)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			cone = append(cone, v)
			if g.nodes[v].typ != TypeAnd {
				continue
			}
			for _, w := range [2]int32{g.nodes[v].fan0.Var(), g.nodes[v].fan1.Var()} {
				if g.mark[w] != id {
					g.mark[w] = id
					stack = append(stack, w)
				}
			}
		}
	}
	return cone
}

// TFOCone returns the variable ids of all nodes in the union of the
// transitive-fanout cones of roots (roots included). The order is
// unspecified.
func (g *Graph) TFOCone(roots []int32) []int32 {
	id := g.newTrav()
	var cone []int32
	var stack []int32
	for _, r := range roots {
		if g.mark[r] == id || g.nodes[r].dead {
			continue
		}
		g.mark[r] = id
		stack = append(stack, r)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			cone = append(cone, v)
			for _, w := range g.nodes[v].fanouts {
				if g.mark[w] != id && !g.nodes[w].dead {
					g.mark[w] = id
					stack = append(stack, w)
				}
			}
		}
	}
	return cone
}

// InTFO reports whether target is in the transitive-fanout cone of v
// (v itself counts).
func (g *Graph) InTFO(v, target int32) bool {
	if v == target {
		return true
	}
	id := g.newTrav()
	g.mark[v] = id
	stack := []int32{v}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.nodes[x].fanouts {
			if g.nodes[w].dead {
				continue
			}
			if w == target {
				return true
			}
			if g.mark[w] != id {
				g.mark[w] = id
				stack = append(stack, w)
			}
		}
	}
	return false
}

// poRefs counts how many primary outputs reference variable v.
func (g *Graph) poRefs(v int32) int {
	n := 0
	for _, po := range g.pos {
		if po.Var() == v {
			n++
		}
	}
	return n
}

// MFFC returns the nodes of the maximum fanout-free cone of AND node v:
// v plus every AND node that becomes dangling when v is removed. PIs and
// the constant are never part of an MFFC.
func (g *Graph) MFFC(v int32) []int32 {
	if g.nodes[v].typ != TypeAnd || g.nodes[v].dead {
		return nil
	}
	// Simulated deref walk using a local deficit map: a fanin joins the
	// MFFC when all of its fanout edges and PO refs come from inside.
	deficit := map[int32]int{}
	mffc := []int32{v}
	queue := []int32{v}
	inMFFC := map[int32]bool{v: true}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		n := &g.nodes[x]
		for _, fl := range [2]Lit{n.fan0, n.fan1} {
			w := fl.Var()
			if g.nodes[w].typ != TypeAnd || inMFFC[w] {
				continue
			}
			if _, ok := deficit[w]; !ok {
				deficit[w] = len(g.nodes[w].fanouts) + g.poRefs(w)
			}
			deficit[w]--
			if deficit[w] == 0 {
				inMFFC[w] = true
				mffc = append(mffc, w)
				queue = append(queue, w)
			}
		}
	}
	// The walk above decrements once per (x,fanin-literal) pair; a node
	// reading w twice contributes two fanout-list entries and two
	// decrements, so the accounting matches.
	return mffc
}

// MFFCSize returns len(MFFC(v)) without materialising the cone. It runs
// the same deficit walk as MFFC on reused epoch-stamped scratch — the
// candidate generator calls it once per target per iteration, so the
// map-free version keeps that loop allocation-free. The MFFC set (and
// hence its size) is independent of visit order, so the two walks always
// agree.
func (g *Graph) MFFCSize(v int32) int {
	if g.nodes[v].typ != TypeAnd || g.nodes[v].dead {
		return 0
	}
	id := g.newTrav()
	if len(g.mffcDef) < len(g.nodes) {
		g.mffcDef = make([]int32, len(g.nodes)*2)
		g.mffcDefID = make([]uint32, len(g.nodes)*2)
	}
	g.mark[v] = id // mark = in MFFC
	count := 1
	queue := append(g.mffcQueue[:0], v)
	for qi := 0; qi < len(queue); qi++ {
		n := &g.nodes[queue[qi]]
		for _, fl := range [2]Lit{n.fan0, n.fan1} {
			w := fl.Var()
			if g.nodes[w].typ != TypeAnd || g.mark[w] == id {
				continue
			}
			if g.mffcDefID[w] != id {
				g.mffcDefID[w] = id
				g.mffcDef[w] = int32(len(g.nodes[w].fanouts) + g.poRefs(w))
			}
			g.mffcDef[w]--
			if g.mffcDef[w] == 0 {
				g.mark[w] = id
				count++
				queue = append(queue, w)
			}
		}
	}
	g.mffcQueue = queue[:0]
	return count
}

// ChangeSet reports the structural consequences of a replacement, in the
// terms of paper §III-B: Removed nodes, and surviving nodes whose fanout
// list changed. S_c = Removed ∪ FanoutChanged.
type ChangeSet struct {
	Target        int32   // the replaced node
	Removed       []int32 // target plus its MFFC (all removed)
	FanoutChanged []int32 // surviving nodes that gained or lost fanout edges
	Rewired       []int32 // surviving readers whose fanin literal changed
}

// All returns Removed ∪ FanoutChanged (the paper's S_c).
func (cs *ChangeSet) All() []int32 {
	out := make([]int32, 0, len(cs.Removed)+len(cs.FanoutChanged))
	out = append(out, cs.Removed...)
	out = append(out, cs.FanoutChanged...)
	return out
}

func removeOneFanout(fo []int32, v int32) []int32 {
	for i, x := range fo {
		if x == v {
			fo[i] = fo[len(fo)-1]
			return fo[:len(fo)-1]
		}
	}
	return fo
}

// ReplaceWithLit applies a LAC: every reader of AND node v (fanouts and
// POs) is rewired to read literal l instead (edge complements preserved),
// then v and its newly dangling cone are removed. The caller must ensure
// l.Var() is not in the TFO cone of v — otherwise the graph would become
// cyclic. The returned ChangeSet is the paper's S_c.
func (g *Graph) ReplaceWithLit(v int32, l Lit) ChangeSet {
	if g.nodes[v].typ != TypeAnd {
		panic("aig: ReplaceWithLit target must be an AND node")
	}
	if l.Var() == v {
		panic("aig: ReplaceWithLit target cannot be its own replacement")
	}
	cs := ChangeSet{Target: v}
	fanoutTouched := map[int32]bool{}

	// Rewire fanout ANDs, keeping the structural hash consistent: the old
	// key of every rewired reader becomes stale and its new shape is
	// registered unless an equivalent node already owns that key.
	readers := append([]int32(nil), g.nodes[v].fanouts...)
	seen := map[int32]bool{}
	for _, f := range readers {
		if !seen[f] {
			seen[f] = true
			cs.Rewired = append(cs.Rewired, f)
		}
		fn := &g.nodes[f]
		if ok := g.strash[normKey(fn.fan0, fn.fan1)]; ok == f {
			delete(g.strash, normKey(fn.fan0, fn.fan1))
		}
		if fn.fan0.Var() == v {
			fn.fan0 = l.NotIf(fn.fan0.IsCompl())
			g.nodes[l.Var()].fanouts = append(g.nodes[l.Var()].fanouts, f)
		} else if fn.fan1.Var() == v {
			fn.fan1 = l.NotIf(fn.fan1.IsCompl())
			g.nodes[l.Var()].fanouts = append(g.nodes[l.Var()].fanouts, f)
		}
		if _, exists := g.strash[normKey(fn.fan0, fn.fan1)]; !exists {
			g.strash[normKey(fn.fan0, fn.fan1)] = f
		}
	}
	g.nodes[v].fanouts = g.nodes[v].fanouts[:0]
	if len(readers) > 0 {
		fanoutTouched[l.Var()] = true
	}

	// Rewire POs. Gaining a PO reference changes the reachability of the
	// replacement node just like gaining a fanout edge does, so it counts
	// toward S_c as well.
	for i, po := range g.pos {
		if po.Var() == v {
			g.pos[i] = l.NotIf(po.IsCompl())
			fanoutTouched[l.Var()] = true
		}
	}

	// Recursively remove the dangling cone (v's MFFC, by construction).
	var removeRec func(x int32)
	removeRec = func(x int32) {
		n := &g.nodes[x]
		if n.typ != TypeAnd || n.dead || len(n.fanouts) > 0 || g.poRefs(x) > 0 {
			return
		}
		n.dead = true
		g.numAnds--
		if g.strash[normKey(n.fan0, n.fan1)] == x {
			delete(g.strash, normKey(n.fan0, n.fan1))
		}
		cs.Removed = append(cs.Removed, x)
		for _, fl := range []Lit{n.fan0, n.fan1} {
			w := fl.Var()
			g.nodes[w].fanouts = removeOneFanout(g.nodes[w].fanouts, x)
			fanoutTouched[w] = true
			removeRec(w)
		}
	}
	removeRec(v)

	for w := range fanoutTouched {
		if !g.nodes[w].dead {
			cs.FanoutChanged = append(cs.FanoutChanged, w)
		}
	}
	sort.Slice(cs.FanoutChanged, func(i, j int) bool { return cs.FanoutChanged[i] < cs.FanoutChanged[j] })
	g.version++
	g.topo, g.levels = nil, nil
	return cs
}

// AppendGraph instantiates src inside dst: src's primary inputs are bound
// to piLits (one literal per src PI, in order) and the returned slice holds
// dst literals equivalent to src's primary outputs. src is not modified.
func AppendGraph(dst, src *Graph, piLits []Lit) []Lit {
	if len(piLits) != src.NumPIs() {
		panic("aig: AppendGraph input binding width mismatch")
	}
	lmap := make([]Lit, src.NumVars())
	lmap[0] = False
	for i, v := range src.PIs() {
		lmap[v] = piLits[i]
	}
	for _, v := range src.Topo() {
		n := &src.nodes[v]
		if n.typ != TypeAnd {
			continue
		}
		a := lmap[n.fan0.Var()].NotIf(n.fan0.IsCompl())
		b := lmap[n.fan1.Var()].NotIf(n.fan1.IsCompl())
		lmap[v] = dst.And(a, b)
	}
	outs := make([]Lit, src.NumPOs())
	for o, po := range src.pos {
		outs[o] = lmap[po.Var()].NotIf(po.IsCompl())
	}
	return outs
}

// Clone returns a deep copy of the graph (caches are not copied).
func (g *Graph) Clone() *Graph {
	c := &Graph{
		Name:    g.Name,
		nodes:   make([]node, len(g.nodes)),
		pis:     append([]int32(nil), g.pis...),
		piNames: append([]string(nil), g.piNames...),
		pos:     append([]Lit(nil), g.pos...),
		poNames: append([]string(nil), g.poNames...),
		strash:  make(map[uint64]int32, len(g.strash)),
		numAnds: g.numAnds,
		version: g.version,
	}
	for i := range g.nodes {
		c.nodes[i] = g.nodes[i]
		c.nodes[i].fanouts = append([]int32(nil), g.nodes[i].fanouts...)
	}
	for k, v := range g.strash {
		c.strash[k] = v
	}
	return c
}

// Sweep rebuilds the graph from its POs with constant propagation,
// simplification, and structural hashing, returning a fresh compact graph.
// Node identities are not preserved; use it before technology mapping or
// export, never in the middle of an incremental flow.
func (g *Graph) Sweep() *Graph {
	ng := New(g.Name)
	lmap := make([]Lit, len(g.nodes)) // old var -> new literal (uncomplemented sense)
	lmap[0] = False
	for i, v := range g.pis {
		lmap[v] = ng.AddPI(g.piNames[i])
	}
	for _, v := range g.Topo() {
		n := &g.nodes[v]
		if n.typ != TypeAnd {
			continue
		}
		a := lmap[n.fan0.Var()].NotIf(n.fan0.IsCompl())
		b := lmap[n.fan1.Var()].NotIf(n.fan1.IsCompl())
		lmap[v] = ng.And(a, b)
	}
	for i, po := range g.pos {
		ng.AddPO(lmap[po.Var()].NotIf(po.IsCompl()), g.poNames[i])
	}
	return ng
}

// Check validates the structural invariants of the graph and returns the
// first violation found, or nil. Intended for tests.
func (g *Graph) Check() error {
	// Fanin/fanout consistency.
	for v := int32(0); v < int32(len(g.nodes)); v++ {
		n := &g.nodes[v]
		if n.dead {
			if len(n.fanouts) != 0 {
				return fmt.Errorf("dead node %d has fanouts", v)
			}
			continue
		}
		if n.typ == TypeAnd {
			want := map[int32]int{}
			want[n.fan0.Var()]++
			want[n.fan1.Var()]++
			for w, wn := range want {
				if g.nodes[w].dead {
					return fmt.Errorf("node %d reads dead node %d", v, w)
				}
				found := 0
				for _, x := range g.nodes[w].fanouts {
					if x == v {
						found++
					}
				}
				if found != wn {
					return fmt.Errorf("node %d: fanout list of %d lists it %d times, want %d", v, w, found, wn)
				}
			}
		}
		for _, x := range n.fanouts {
			xn := &g.nodes[x]
			if xn.dead {
				return fmt.Errorf("node %d has dead fanout %d", v, x)
			}
			if xn.fan0.Var() != v && xn.fan1.Var() != v {
				return fmt.Errorf("node %d lists fanout %d which does not read it", v, x)
			}
		}
	}
	for i, po := range g.pos {
		if g.nodes[po.Var()].dead {
			return fmt.Errorf("PO %d references dead node %d", i, po.Var())
		}
	}
	// Acyclicity via the topological order: every fanin must appear before
	// its reader.
	pos := make(map[int32]int, len(g.nodes))
	for i, v := range g.Topo() {
		pos[v] = i
	}
	for v := range g.nodes {
		n := &g.nodes[v]
		if n.dead || n.typ != TypeAnd {
			continue
		}
		pv, ok := pos[int32(v)]
		if !ok {
			continue // dangling-but-live should not happen after replaces, but tolerated here
		}
		for _, fl := range []Lit{n.fan0, n.fan1} {
			pw, ok := pos[fl.Var()]
			if !ok {
				return fmt.Errorf("node %d fanin %d missing from topo order", v, fl.Var())
			}
			if pw >= pv {
				return fmt.Errorf("topological violation: %d (pos %d) reads %d (pos %d)", v, pv, fl.Var(), pw)
			}
		}
	}
	// Live AND count.
	cnt := 0
	for v := range g.nodes {
		if g.nodes[v].typ == TypeAnd && !g.nodes[v].dead {
			cnt++
		}
	}
	if cnt != g.numAnds {
		return fmt.Errorf("numAnds = %d, counted %d", g.numAnds, cnt)
	}
	return nil
}

// Stats summarises a graph for reports.
type Stats struct {
	PIs, POs, Ands int
	Depth          int32
}

// Stat returns summary statistics.
func (g *Graph) Stat() Stats {
	return Stats{PIs: len(g.pis), POs: len(g.pos), Ands: g.numAnds, Depth: g.Depth()}
}

func (g *Graph) String() string {
	s := g.Stat()
	return fmt.Sprintf("%s: pi=%d po=%d and=%d depth=%d", g.Name, s.PIs, s.POs, s.Ands, s.Depth)
}
