package aig

import "testing"

// buildFA constructs a one-bit full adder; names parameterised so tests
// can prove the digest is name-blind.
func buildFA(name, prefix string) *Graph {
	g := New(name)
	a := g.AddPI(prefix + "a")
	b := g.AddPI(prefix + "b")
	cin := g.AddPI(prefix + "cin")
	s := g.Xor(g.Xor(a, b), cin)
	cout := g.Or(g.And(a, b), g.And(cin, g.Xor(a, b)))
	g.AddPO(s, prefix+"sum")
	g.AddPO(cout, prefix+"cout")
	return g
}

func TestStructuralDigestNameBlind(t *testing.T) {
	d1 := buildFA("fa", "x_").StructuralDigest()
	d2 := buildFA("other", "y_").StructuralDigest()
	if d1 != d2 {
		t.Fatal("digest depends on circuit/PI/PO names")
	}
}

func TestStructuralDigestSeesStructure(t *testing.T) {
	base := buildFA("fa", "").StructuralDigest()

	// Complementing a PO changes the function.
	g := buildFA("fa", "")
	g.SetPO(1, g.PO(1).Not())
	if g.StructuralDigest() == base {
		t.Fatal("digest blind to PO complementation")
	}

	// A different gate in the cone changes the structure.
	h := New("fa")
	a, b, cin := h.AddPI("a"), h.AddPI("b"), h.AddPI("cin")
	h.AddPO(h.Xor(h.Xor(a, b), cin), "sum")
	h.AddPO(h.And(h.And(a, b), cin), "cout") // AND where the adder has MAJ
	if h.StructuralDigest() == base {
		t.Fatal("digest blind to gate structure")
	}

	// An extra (unused) PI changes the interface.
	i := buildFA("fa", "")
	i.AddPI("spare")
	if i.StructuralDigest() == base {
		t.Fatal("digest blind to PI count")
	}
}

func TestStructuralDigestIgnoresDanglingLogic(t *testing.T) {
	g := buildFA("fa", "")
	pis := g.PIs()
	// Dangling logic outside the PO cone: present in the node table but
	// invisible to synthesis (which sweeps) and mapping (PO-cone walk).
	g.And(MakeLit(pis[0], true), MakeLit(pis[2], true))
	if g.StructuralDigest() != buildFA("fa", "").StructuralDigest() {
		t.Fatal("digest includes logic outside the PO cone")
	}
}

func TestStructuralDigestCloneStable(t *testing.T) {
	g := buildFA("fa", "")
	d := g.StructuralDigest()
	if c := g.Clone(); c.StructuralDigest() != d {
		t.Fatal("clone digests differently from its source")
	}
	if g.StructuralDigest() != d {
		t.Fatal("digest not deterministic on repeat calls")
	}
}
