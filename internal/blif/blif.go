// Package blif reads and writes combinational circuits in the Berkeley
// Logic Interchange Format (BLIF). Reading builds an AIG by synthesising
// each .names cover as a sum of products; writing emits one two-input
// .names per AND node. Latches and hierarchies are not supported — the ALS
// engine is purely combinational, matching the paper's benchmarks.
package blif

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"dpals/internal/aig"
)

// Read parses a BLIF model into an AIG.
func Read(r io.Reader) (*aig.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)

	var lines []string
	cont := ""
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := sc.Text()
		if i := strings.IndexByte(raw, '#'); i >= 0 {
			raw = raw[:i]
		}
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		if strings.HasSuffix(raw, "\\") {
			cont += strings.TrimSuffix(raw, "\\") + " "
			continue
		}
		lines = append(lines, cont+raw)
		cont = ""
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("blif: %w", err)
	}
	if cont != "" {
		return nil, fmt.Errorf("blif: dangling line continuation")
	}

	g := aig.New("blif")
	sig := map[string]aig.Lit{}
	var inputs, outputs []string

	type names struct {
		out    string
		ins    []string
		covers []string // "<input-bits> <out-bit>"
	}
	var tables []*names
	var cur *names

	flush := func() {
		if cur != nil {
			tables = append(tables, cur)
			cur = nil
		}
	}

	for _, ln := range lines {
		f := strings.Fields(ln)
		switch f[0] {
		case ".model":
			if len(f) > 1 {
				g.Name = f[1]
			}
		case ".inputs":
			flush()
			inputs = append(inputs, f[1:]...)
		case ".outputs":
			flush()
			outputs = append(outputs, f[1:]...)
		case ".names":
			flush()
			if len(f) < 2 {
				return nil, fmt.Errorf("blif: .names without signals")
			}
			cur = &names{out: f[len(f)-1], ins: f[1 : len(f)-1]}
		case ".end":
			flush()
		case ".latch", ".subckt", ".gate":
			return nil, fmt.Errorf("blif: %s not supported (combinational models only)", f[0])
		default:
			if strings.HasPrefix(f[0], ".") {
				// Ignore unknown dot-directives (e.g. .default_input_arrival).
				flush()
				continue
			}
			if cur == nil {
				return nil, fmt.Errorf("blif: cover line %q outside .names", ln)
			}
			cur.covers = append(cur.covers, ln)
		}
	}
	flush()

	for _, in := range inputs {
		if _, dup := sig[in]; dup {
			return nil, fmt.Errorf("blif: duplicate input %q", in)
		}
		sig[in] = g.AddPI(in)
	}

	// Synthesise .names tables in dependency order. BLIF does not require
	// topological order in the file, so resolve with a worklist over the
	// signal-dependency graph — linear in the total table size, where the
	// old iterate-until-settled loop was quadratic in the table count and
	// took seconds on a few hundred kilobytes of reverse-ordered tables.
	waiting := map[string][]*names{} // undefined signal -> tables blocked on it
	missing := make(map[*names]int, len(tables))
	var ready []*names
	for _, t := range tables {
		n := 0
		for _, in := range t.ins {
			if _, ok := sig[in]; !ok {
				waiting[in] = append(waiting[in], t)
				n++
			}
		}
		missing[t] = n
		if n == 0 {
			ready = append(ready, t)
		}
	}
	done := 0
	for len(ready) > 0 {
		t := ready[0]
		ready = ready[1:]
		l, err := synthCover(g, sig, t.ins, t.covers)
		if err != nil {
			return nil, fmt.Errorf("blif: table for %q: %w", t.out, err)
		}
		if _, dup := sig[t.out]; dup {
			return nil, fmt.Errorf("blif: signal %q defined twice", t.out)
		}
		sig[t.out] = l
		done++
		for _, w := range waiting[t.out] {
			missing[w]--
			if missing[w] == 0 {
				ready = append(ready, w)
			}
		}
		delete(waiting, t.out)
	}
	if done != len(tables) {
		for _, t := range tables {
			if missing[t] > 0 {
				return nil, fmt.Errorf("blif: cyclic or undefined signals (e.g. %q)", t.out)
			}
		}
	}

	seenOut := map[string]bool{}
	for _, out := range outputs {
		if seenOut[out] {
			return nil, fmt.Errorf("blif: duplicate output %q", out)
		}
		seenOut[out] = true
		l, ok := sig[out]
		if !ok {
			return nil, fmt.Errorf("blif: output %q undefined", out)
		}
		g.AddPO(l, out)
	}
	return g.Sweep(), nil
}

// synthCover builds the SOP function of one .names table.
func synthCover(g *aig.Graph, sig map[string]aig.Lit, ins []string, covers []string) (aig.Lit, error) {
	if len(ins) == 0 {
		// Constant: a single "1" line means const-1; empty cover is const-0.
		for _, c := range covers {
			if strings.TrimSpace(c) == "1" {
				return aig.True, nil
			}
			return aig.False, fmt.Errorf("invalid constant cover %q", c)
		}
		return aig.False, nil
	}
	onSet := aig.False
	sawOff := false
	sawOn := false
	var offTerms []aig.Lit
	for _, c := range covers {
		f := strings.Fields(c)
		if len(f) != 2 {
			return aig.False, fmt.Errorf("cover line %q must have input and output parts", c)
		}
		pat, outBit := f[0], f[1]
		if len(pat) != len(ins) {
			return aig.False, fmt.Errorf("cover %q width %d, want %d", pat, len(pat), len(ins))
		}
		term := aig.True
		for i, ch := range pat {
			in := sig[ins[i]]
			switch ch {
			case '1':
				term = g.And(term, in)
			case '0':
				term = g.And(term, in.Not())
			case '-':
			default:
				return aig.False, fmt.Errorf("bad cover character %q", string(ch))
			}
		}
		switch outBit {
		case "1":
			sawOn = true
			onSet = g.Or(onSet, term)
		case "0":
			sawOff = true
			offTerms = append(offTerms, term)
		default:
			return aig.False, fmt.Errorf("bad output bit %q", outBit)
		}
	}
	if sawOn && sawOff {
		return aig.False, fmt.Errorf("mixed on-set and off-set covers")
	}
	if sawOff {
		off := aig.False
		for _, t := range offTerms {
			off = g.Or(off, t)
		}
		return off.Not(), nil
	}
	return onSet, nil
}

// Write emits the graph as a BLIF model: one 2-input .names per AND node,
// plus buffers/inverters for outputs. Every emitted signal name is unique
// — user names that collide after sanitisation, or that clash with the
// generated internal names, are suffixed — so the model always reads back
// (Read rejects redefinitions and duplicate outputs).
func Write(w io.Writer, g *aig.Graph) error {
	bw := bufio.NewWriter(w)
	name := g.Name
	if name == "" {
		name = "top"
	}
	fmt.Fprintf(bw, ".model %s\n", name)

	used := map[string]bool{}
	uniq := func(base string) string {
		if !used[base] {
			used[base] = true
			return base
		}
		for n := 2; ; n++ {
			c := fmt.Sprintf("%s_%d", base, n)
			if !used[c] {
				used[c] = true
				return c
			}
		}
	}

	piName := make(map[int32]string, g.NumPIs())
	fmt.Fprint(bw, ".inputs")
	for i, v := range g.PIs() {
		piName[v] = uniq(sanitize(g.PIName(i)))
		fmt.Fprintf(bw, " %s", piName[v])
	}
	fmt.Fprintln(bw)

	// Output names are reserved before the internal node names so user PO
	// names survive unchanged. A PO that is exactly an uncomplemented PI
	// of the same name references the input directly, with no buffer.
	poName := make([]string, g.NumPOs())
	poDirect := make([]bool, g.NumPOs())
	directUsed := map[string]bool{}
	fmt.Fprint(bw, ".outputs")
	for o, po := range g.POs() {
		n := sanitize(g.POName(o))
		if v := po.Var(); !po.IsCompl() && g.IsPI(v) && piName[v] == n && !directUsed[n] {
			poName[o] = n
			poDirect[o] = true
			directUsed[n] = true
		} else {
			poName[o] = uniq(n)
		}
		fmt.Fprintf(bw, " %s", poName[o])
	}
	fmt.Fprintln(bw)

	nodeName := map[int32]string{}
	sigName := func(v int32) string {
		if n, ok := piName[v]; ok {
			return n
		}
		n, ok := nodeName[v]
		if !ok {
			n = uniq(fmt.Sprintf("n%d", v))
			nodeName[v] = n
		}
		return n
	}
	constName := ""
	litName := func(l aig.Lit) (string, bool) { // name, complemented
		if l.Var() == 0 {
			if constName == "" {
				constName = uniq("const1")
			}
			return constName, l == aig.False
		}
		return sigName(l.Var()), l.IsCompl()
	}

	for _, v := range g.Topo() {
		if g.Type(v) != aig.TypeAnd {
			continue
		}
		f0, f1 := g.Fanins(v)
		n0, c0 := litName(f0)
		n1, c1 := litName(f1)
		fmt.Fprintf(bw, ".names %s %s %s\n", n0, n1, sigName(v))
		b0, b1 := "1", "1"
		if c0 {
			b0 = "0"
		}
		if c1 {
			b1 = "0"
		}
		fmt.Fprintf(bw, "%s%s 1\n", b0, b1)
	}
	for o, po := range g.POs() {
		if poDirect[o] {
			continue
		}
		n, c := litName(po)
		fmt.Fprintf(bw, ".names %s %s\n", n, poName[o])
		if c {
			fmt.Fprintln(bw, "0 1")
		} else {
			fmt.Fprintln(bw, "1 1")
		}
	}
	if constName != "" {
		fmt.Fprintf(bw, ".names %s\n", constName)
		fmt.Fprintln(bw, "1")
	}
	fmt.Fprintln(bw, ".end")
	return bw.Flush()
}

func sanitize(s string) string {
	if s == "" {
		return "_"
	}
	return strings.Map(func(r rune) rune {
		switch r {
		case ' ', '\t', '\\', '#':
			return '_'
		}
		return r
	}, s)
}
