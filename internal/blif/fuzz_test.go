package blif

import (
	"bytes"
	"testing"

	"dpals/internal/gen"
)

// FuzzBLIFRead checks that Read never panics, and that every model it
// accepts round-trips: Write emits a model that reads back to the same
// shape, and a second Write reproduces the same bytes (names stabilise
// after one pass through the uniquifier).
func FuzzBLIFRead(f *testing.F) {
	for _, mk := range []func() *bytes.Buffer{
		func() *bytes.Buffer { b := &bytes.Buffer{}; _ = Write(b, gen.Adder(4)); return b },
		func() *bytes.Buffer { b := &bytes.Buffer{}; _ = Write(b, gen.MultU(3, 3)); return b },
		func() *bytes.Buffer { b := &bytes.Buffer{}; _ = Write(b, gen.Detector(4)); return b },
	} {
		f.Add(mk().Bytes())
	}
	f.Add([]byte(".model m\n.inputs a b\n.outputs y\n.names a b y\n11 1\n.end\n"))
	f.Add([]byte(".model m\n.inputs a\n.outputs a\n.end\n"))
	f.Add([]byte(".model m\n.outputs k\n.names k\n1\n.end\n"))
	f.Add([]byte(".model m\n.inputs a\n.outputs y y\n.names a y\n0 1\n.end\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := Read(bytes.NewReader(data))
		if err != nil {
			return // malformed input only needs a clean rejection
		}
		if err := g.Check(); err != nil {
			t.Fatalf("accepted graph fails invariants: %v", err)
		}
		var b1 bytes.Buffer
		if err := Write(&b1, g); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		g2, err := Read(bytes.NewReader(b1.Bytes()))
		if err != nil {
			t.Fatalf("re-read of written model failed: %v\nmodel:\n%s", err, b1.String())
		}
		if g2.NumPIs() != g.NumPIs() || g2.NumPOs() != g.NumPOs() || g2.NumAnds() != g.NumAnds() {
			t.Fatalf("round-trip changed shape: %d/%d/%d -> %d/%d/%d",
				g.NumPIs(), g.NumPOs(), g.NumAnds(), g2.NumPIs(), g2.NumPOs(), g2.NumAnds())
		}
		var b2 bytes.Buffer
		if err := Write(&b2, g2); err != nil {
			t.Fatalf("second write failed: %v", err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatalf("write/read/write not stable:\n-- first --\n%s\n-- second --\n%s", b1.String(), b2.String())
		}
	})
}
