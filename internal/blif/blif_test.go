package blif

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"dpals/internal/aig"
	"dpals/internal/bitvec"
	"dpals/internal/gen"
	"dpals/internal/sim"
)

// equivalent checks functional equivalence of two graphs with identical
// PI/PO interfaces by bit-parallel simulation.
func equivalent(t *testing.T, a, b *aig.Graph, patterns int) bool {
	t.Helper()
	if a.NumPIs() != b.NumPIs() || a.NumPOs() != b.NumPOs() {
		t.Fatalf("interface mismatch: %d/%d PIs, %d/%d POs", a.NumPIs(), b.NumPIs(), a.NumPOs(), b.NumPOs())
	}
	sa := sim.New(a, sim.Options{Patterns: patterns, Seed: 5})
	sb := sim.New(b, sim.Options{Patterns: patterns, Seed: 5})
	va := bitvec.NewWords(sa.Words())
	vb := bitvec.NewWords(sb.Words())
	for o := 0; o < a.NumPOs(); o++ {
		sa.POVal(o, va)
		sb.POVal(o, vb)
		if !va.Equal(vb) {
			return false
		}
	}
	return true
}

func TestRoundTripCircuits(t *testing.T) {
	graphs := []*aig.Graph{
		gen.Adder(8),
		gen.MultU(5, 4),
		gen.ALU(4),
		gen.Comparator(6),
		gen.Parity(7),
	}
	for _, g := range graphs {
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatalf("%s: write: %v", g.Name, err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("%s: read: %v", g.Name, err)
		}
		if err := back.Check(); err != nil {
			t.Fatalf("%s: invalid graph after roundtrip: %v", g.Name, err)
		}
		if !equivalent(t, g, back, 1024) {
			t.Fatalf("%s: roundtrip not equivalent", g.Name)
		}
	}
}

func TestReadSOP(t *testing.T) {
	src := `
# a 2:1 mux in classic BLIF
.model mux
.inputs s a b
.outputs y
.names s a b y
11- 1
0-1 1
.end
`
	g, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumPIs() != 3 || g.NumPOs() != 1 {
		t.Fatalf("mux interface wrong: %d/%d", g.NumPIs(), g.NumPOs())
	}
	// Verify the function exhaustively.
	s := sim.New(g, sim.Options{Patterns: 8, Dist: sim.Exhaustive{}})
	out := bitvec.NewWords(s.Words())
	s.POVal(0, out)
	for p := 0; p < 8; p++ {
		sv := p&1 != 0
		av := p&2 != 0
		bv := p&4 != 0
		want := bv
		if sv {
			want = av
		}
		if out.Get(p) != want {
			t.Fatalf("mux pattern %d: got %v want %v", p, out.Get(p), want)
		}
	}
}

func TestReadOffsetCover(t *testing.T) {
	src := `
.model nor2
.inputs a b
.outputs y
.names a b y
1- 0
-1 0
.end
`
	g, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(g, sim.Options{Patterns: 4, Dist: sim.Exhaustive{}})
	out := bitvec.NewWords(s.Words())
	s.POVal(0, out)
	for p := 0; p < 4; p++ {
		want := p == 0
		if out.Get(p) != want {
			t.Fatalf("nor2 pattern %d: got %v want %v", p, out.Get(p), want)
		}
	}
}

func TestReadConstantsAndOrder(t *testing.T) {
	// Tables out of topological order plus constant drivers.
	src := `
.model weird
.inputs a
.outputs y z one
.names t a y
11 1
.names t
1
.names a t z
10 1
.names one
1
.end
`
	g, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(g, sim.Options{Patterns: 2, Dist: sim.Exhaustive{}})
	y := bitvec.NewWords(s.Words())
	z := bitvec.NewWords(s.Words())
	one := bitvec.NewWords(s.Words())
	s.POVal(0, y)
	s.POVal(1, z)
	s.POVal(2, one)
	// y = t∧a = a; z = a∧¬t = 0; one = 1.
	if y.Get(0) != false || y.Get(1) != true {
		t.Error("y should equal a")
	}
	if z.Get(0) || z.Get(1) {
		t.Error("z should be constant 0")
	}
	if !one.Get(0) || !one.Get(1) {
		t.Error("one should be constant 1")
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"latch":      ".model m\n.inputs a\n.outputs q\n.latch a q\n.end",
		"mixedCover": ".model m\n.inputs a b\n.outputs y\n.names a b y\n11 1\n00 0\n.end",
		"badChar":    ".model m\n.inputs a\n.outputs y\n.names a y\nx 1\n.end",
		"undefOut":   ".model m\n.inputs a\n.outputs nope\n.end",
		"cycle":      ".model m\n.inputs a\n.outputs y\n.names y a y\n11 1\n.end",
		"dupSignal":  ".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n.names a y\n0 1\n.end",
		"width":      ".model m\n.inputs a b\n.outputs y\n.names a b y\n1 1\n.end",
	}
	for name, src := range cases {
		if _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error, got none", name)
		}
	}
}

func TestRoundTripConstantPOs(t *testing.T) {
	g := aig.New("constpo")
	a, b := g.AddPI("a"), g.AddPI("b")
	g.AddPO(g.And(a, b), "y")
	g.AddPO(aig.False, "zero")
	g.AddPO(aig.True, "one")
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !equivalent(t, g, back, 256) {
		t.Fatal("constant-PO circuit roundtrip not equivalent")
	}
}

func TestWriteStable(t *testing.T) {
	g := gen.Adder(4)
	var b1, b2 bytes.Buffer
	if err := Write(&b1, g); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b2, g); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Error("BLIF writer is not deterministic")
	}
	if !strings.Contains(b1.String(), ".model adder4") {
		t.Error("model name missing")
	}
}

// Tables listed in reverse dependency order must resolve in linear time.
// Regression: the old iterate-until-settled loop was quadratic in the
// table count and needed seconds for a few hundred kilobytes.
func TestReverseOrderedTablesResolveFast(t *testing.T) {
	const n = 16000
	var b bytes.Buffer
	b.WriteString(".model chain\n.inputs a\n.outputs s0\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, ".names s%d s%d\n1 1\n", i+1, i)
	}
	fmt.Fprintf(&b, ".names a s%d\n1 1\n.end\n", n)
	start := time.Now()
	g, err := Read(bytes.NewReader(b.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("reverse chain of %d tables took %v", n, d)
	}
	if g.NumPIs() != 1 || g.NumPOs() != 1 {
		t.Errorf("interface %d/%d", g.NumPIs(), g.NumPOs())
	}
}
