package core

import (
	"context"
	"math"
	"testing"
	"time"

	"dpals/internal/gen"
	"dpals/internal/lac"
	"dpals/internal/metric"
)

// bigOpts is the DPSA configuration used by the cancellation tests on the
// 4730-AND vector multiplier — large enough that a run has many analysis
// waves to interrupt, small enough for CI.
func bigOpts(numPOs int) Options {
	R := metric.ReferenceError(numPOs)
	opt := DefaultOptions(FlowDPSA, metric.MSE, R*R)
	opt.Patterns = 1024
	opt.Seed = 7
	return opt
}

// Cancelling mid-synthesis must return promptly with the valid best-so-far
// circuit: swept, within budget, its reported error matching an
// independent measurement, and StopReason = cancelled.
func TestCancelMidSynthesisReturnsBestSoFar(t *testing.T) {
	g := gen.VecMul(4, 10)
	if n := g.NumAnds(); n < 4000 {
		t.Fatalf("benchmark shrank: %d ANDs", n)
	}
	opt := bigOpts(g.NumPOs())

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var cancelledAt time.Time
	start := time.Now()
	var firstIter time.Duration
	opt.OnIteration = func(iter int, _ lac.NodeBest, _ []lac.NodeBest) {
		if iter == 1 {
			firstIter = time.Since(start)
		}
		if iter == 3 {
			cancelledAt = time.Now()
			cancel()
		}
	}
	res, err := RunContext(ctx, g, opt)
	latency := time.Since(cancelledAt)
	if err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	if cancelledAt.IsZero() {
		t.Fatal("run finished before reaching iteration 3; circuit too easy for the test")
	}
	// The run must stop within about one analysis wave. One full
	// comprehensive pass (the time to the first applied LAC) is a lenient
	// upper bound for that — without cooperative cancellation the run
	// would continue for its full remaining duration, many passes.
	bound := firstIter
	if bound < 200*time.Millisecond {
		bound = 200 * time.Millisecond
	}
	if latency > bound {
		t.Errorf("cancel-to-return latency %v exceeds one comprehensive pass (%v)", latency, firstIter)
	}
	if res.Stats.StopReason != StopCancelled {
		t.Errorf("StopReason = %q, want %q", res.Stats.StopReason, StopCancelled)
	}
	if res.Stats.Applied < 3 {
		t.Errorf("best-so-far lost progress: %d LACs applied", res.Stats.Applied)
	}
	if err := res.Graph.Check(); err != nil {
		t.Errorf("best-so-far graph invalid: %v", err)
	}
	if res.Graph.NumAnds() >= g.Sweep().NumAnds() {
		t.Errorf("no area reduction in best-so-far: %d vs %d ANDs", res.Graph.NumAnds(), g.Sweep().NumAnds())
	}
	if res.Error > opt.Threshold+1e-12 {
		t.Errorf("best-so-far error %v exceeds budget %v", res.Error, opt.Threshold)
	}
	real := measure(t, g, res.Graph, metric.MSE, nil, 1024, 7)
	if math.Abs(real-res.Error) > 1e-9*(1+math.Abs(real)) {
		t.Errorf("reported error %v but independent measurement %v", res.Error, real)
	}
}

// A context cancelled before the run starts must yield the original
// (swept) circuit untouched, zero error, and StopReason = cancelled.
func TestCancelBeforeStart(t *testing.T) {
	g := gen.MultU(6, 6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := DefaultOptions(FlowDPSA, metric.MSE, 100)
	opt.Patterns = 512
	res, err := RunContext(ctx, g, opt)
	if err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	if res.Stats.StopReason != StopCancelled {
		t.Errorf("StopReason = %q, want %q", res.Stats.StopReason, StopCancelled)
	}
	if res.Stats.Applied != 0 {
		t.Errorf("%d LACs applied under a dead context", res.Stats.Applied)
	}
	if res.Error != 0 {
		t.Errorf("error %v for an untouched circuit", res.Error)
	}
	if res.Graph.NumAnds() != g.Sweep().NumAnds() {
		t.Errorf("graph changed: %d vs %d ANDs", res.Graph.NumAnds(), g.Sweep().NumAnds())
	}
}

// Options.TimeLimit must stop the run with StopReason = deadline and a
// valid best-so-far result, for every flow.
func TestTimeLimitStopsEveryFlow(t *testing.T) {
	g := gen.VecMul(4, 10)
	for _, flow := range []Flow{FlowConventional, FlowVECBEE, FlowAccALS, FlowDP, FlowDPSA} {
		opt := bigOpts(g.NumPOs())
		opt.Flow = flow
		opt.TimeLimit = 50 * time.Millisecond
		start := time.Now()
		res, err := RunContext(context.Background(), g, opt)
		elapsed := time.Since(start)
		if err != nil {
			t.Fatalf("%v: %v", flow, err)
		}
		if res.Stats.StopReason != StopDeadline {
			t.Errorf("%v: StopReason = %q, want %q", flow, res.Stats.StopReason, StopDeadline)
		}
		if err := res.Graph.Check(); err != nil {
			t.Errorf("%v: graph invalid after deadline: %v", flow, err)
		}
		real := measure(t, g, res.Graph, metric.MSE, nil, 1024, 7)
		if math.Abs(real-res.Error) > 1e-9*(1+math.Abs(real)) {
			t.Errorf("%v: reported error %v but independent measurement %v", flow, res.Error, real)
		}
		// Generous CI bound: the engine still has to finish the wave and
		// sweep, but a 50ms limit must not run for many seconds.
		if elapsed > 30*time.Second {
			t.Errorf("%v: run with 50ms limit took %v", flow, elapsed)
		}
	}
}

// The remaining stop reasons: natural completion reports budget, the
// MaxIters cap reports max-iters — through Run as well as RunContext.
func TestStopReasonBudgetAndMaxIters(t *testing.T) {
	g := gen.MultU(5, 5)
	R := metric.ReferenceError(g.NumPOs())
	opt := DefaultOptions(FlowDPSA, metric.MSE, R*R)
	opt.Patterns = 512
	res, err := Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.StopReason != StopBudget {
		t.Errorf("completed run: StopReason = %q, want %q", res.Stats.StopReason, StopBudget)
	}

	opt.MaxIters = 2
	res, err = Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.StopReason != StopMaxIters {
		t.Errorf("capped run: StopReason = %q, want %q", res.Stats.StopReason, StopMaxIters)
	}
	if res.Stats.Applied != 2 {
		t.Errorf("capped run applied %d LACs, want 2", res.Stats.Applied)
	}
}

// An uncancelled RunContext must be bit-identical to Run at every thread
// count — the context checks may not perturb the synthesis trajectory.
func TestRunContextUncancelledBitIdentical(t *testing.T) {
	g := gen.MultU(6, 6)
	R := metric.ReferenceError(g.NumPOs())
	for _, threads := range []int{1, 4, 0} {
		opt := DefaultOptions(FlowDPSA, metric.MSE, R*R)
		opt.Patterns = 1024
		opt.Seed = 7
		opt.Threads = threads
		opt.LACs = lac.Options{Constants: true, SASIMI: true}
		plain, err := Run(g, opt)
		if err != nil {
			t.Fatalf("Run(threads=%d): %v", threads, err)
		}
		ctxed, err := RunContext(context.Background(), g, opt)
		if err != nil {
			t.Fatalf("RunContext(threads=%d): %v", threads, err)
		}
		if plain.Error != ctxed.Error {
			t.Errorf("threads=%d: Error %v vs %v", threads, plain.Error, ctxed.Error)
		}
		if plain.Stats.Applied != ctxed.Stats.Applied ||
			plain.Stats.Phase1 != ctxed.Stats.Phase1 ||
			plain.Stats.Phase2 != ctxed.Stats.Phase2 {
			t.Errorf("threads=%d: trajectory differs: %d/%d/%d vs %d/%d/%d", threads,
				plain.Stats.Applied, plain.Stats.Phase1, plain.Stats.Phase2,
				ctxed.Stats.Applied, ctxed.Stats.Phase1, ctxed.Stats.Phase2)
		}
		if plain.Stats.Work != ctxed.Stats.Work {
			t.Errorf("threads=%d: StepWork differs: %+v vs %+v", threads, plain.Stats.Work, ctxed.Stats.Work)
		}
		if plain.Graph.NumAnds() != ctxed.Graph.NumAnds() {
			t.Errorf("threads=%d: NumAnds %d vs %d", threads, plain.Graph.NumAnds(), ctxed.Graph.NumAnds())
		}
		if plain.Stats.StopReason != ctxed.Stats.StopReason {
			t.Errorf("threads=%d: StopReason %q vs %q", threads, plain.Stats.StopReason, ctxed.Stats.StopReason)
		}
	}
}
