package core

import (
	"testing"

	"dpals/internal/gen"
	"dpals/internal/lac"
	"dpals/internal/metric"
)

// TestFlowsDeterministicAcrossThreads is the contract behind the parallel
// analysis pipeline: every flow must produce bit-identical results for every
// Threads value. Threads=8 on a smaller GOMAXPROCS still exercises the
// concurrent code paths (package par never reduces the worker count to the
// CPU count), so the comparison is meaningful on any machine.
func TestFlowsDeterministicAcrossThreads(t *testing.T) {
	g := gen.MultU(6, 6)
	R := metric.ReferenceError(g.NumPOs())

	flows := []struct {
		name  string
		flow  Flow
		tweak func(*Options)
	}{
		{"Conventional", FlowConventional, nil},
		{"VECBEE", FlowVECBEE, func(o *Options) { o.DepthLimit = 3 }},
		{"AccALS", FlowAccALS, func(o *Options) { o.AccTol = 0.5 }},
		{"DP", FlowDP, nil},
		{"DP-SA", FlowDPSA, nil},
	}
	for _, tc := range flows {
		t.Run(tc.name, func(t *testing.T) {
			run := func(threads int) *Result {
				opt := DefaultOptions(tc.flow, metric.MSE, R*R)
				opt.Patterns = 1024
				opt.Seed = 7
				opt.Threads = threads
				opt.MaxIters = 25
				opt.LACs = lac.Options{Constants: true, SASIMI: true}
				if tc.tweak != nil {
					tc.tweak(&opt)
				}
				res, err := Run(g, opt)
				if err != nil {
					t.Fatalf("Run(threads=%d): %v", threads, err)
				}
				return res
			}
			serial := run(1)
			parallel := run(8)
			if serial.Error != parallel.Error {
				t.Errorf("Error: serial %v, parallel %v", serial.Error, parallel.Error)
			}
			if serial.Stats.Applied != parallel.Stats.Applied {
				t.Errorf("Applied: serial %d, parallel %d", serial.Stats.Applied, parallel.Stats.Applied)
			}
			// DP-SA's §III-D parameter tuning profiles the steps with
			// the deterministic StepWork estimate (not wall-clock), so
			// even its phase partition and work counters must agree.
			if serial.Stats.Phase1 != parallel.Stats.Phase1 || serial.Stats.Phase2 != parallel.Stats.Phase2 {
				t.Errorf("analyses: serial %d+%d, parallel %d+%d",
					serial.Stats.Phase1, serial.Stats.Phase2, parallel.Stats.Phase1, parallel.Stats.Phase2)
			}
			if serial.Stats.Rollbacks != parallel.Stats.Rollbacks {
				t.Errorf("Rollbacks: serial %d, parallel %d", serial.Stats.Rollbacks, parallel.Stats.Rollbacks)
			}
			if serial.Stats.Work != parallel.Stats.Work {
				t.Errorf("StepWork: serial %+v, parallel %+v", serial.Stats.Work, parallel.Stats.Work)
			}
			if sn, pn := serial.Graph.NumAnds(), parallel.Graph.NumAnds(); sn != pn {
				t.Errorf("NumAnds: serial %d, parallel %d", sn, pn)
			}
		})
	}
}
