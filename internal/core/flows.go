package core

import (
	"context"
	"math"

	"dpals/internal/cpm"
	"dpals/internal/cut"
	"dpals/internal/fault"
	"dpals/internal/lac"
	"dpals/internal/obs"
)

// useCache reports whether the persistent incremental CPM cache is active:
// dual-phase flows only (the other flows have no phase-2 rows to reuse),
// unless disabled for A/B comparison.
func (e *engine) useCache() bool {
	return (e.opt.Flow == FlowDP || e.opt.Flow == FlowDPSA) && !e.opt.NoCPMCache
}

// comprehensive performs the full error analysis of Fig. 3(b): disjoint
// cuts of every node, full CPM, evaluation of every candidate LAC. It
// returns the per-node bests sorted by ascending error.
//
// Cross-round warm start (the paper's §III-B/§III-C reuse applied at round
// granularity): in dual-phase flows the engine repairs the cut set and
// invalidates the CPM cache after *every* apply, so when the set is still
// in sync at the next round boundary the pass reuses that state instead of
// discarding it — the cuts are taken as-is (charged at their recorded
// cold-equivalent cost), the CPM recomputes only the rows the
// accumulated changes invalidated, and the evaluation memo serves targets
// whose state did not change since their last evaluation. Every reuse is
// bit-identical to the cold computation; when the repair chain was broken
// (first round, rollback, cancelled build, Options.NoWarmStart) the pass
// falls back to the cold rebuild below.
//
// Cancellation makes every step return early at a wave boundary; the
// partial analysis is discarded (nil bests, half-built state dropped) and
// the caller must check e.cancelled() before interpreting nil as "no
// candidates".
func (e *engine) comprehensive(parent *obs.Span) []lac.NodeBest {
	p1 := parent.Child("phase1")
	warm := e.warmStart()
	defer func() {
		p1.End()
		e.stats.PhaseTime.Phase1 += p1.Duration()
		if warm {
			e.stats.PhaseTime.Phase1Warm += p1.Duration()
		}
	}()
	if warm {
		// The cuts are already exact for the current graph; charge the
		// deterministic cost a cold build would have reported so the DP-SA
		// work profile is warm-invariant.
		sp, _ := e.step(p1, "cuts.warm")
		charged := e.cuts.FullBuildWork()
		sp.SetInt("charged_work", charged)
		sp.End()
		e.stats.Step.Cuts += sp.Duration()
		e.stats.Work.Cuts += charged
		e.stats.Work.CutsSkipped += charged
		e.stats.Phase1Warm++
	} else {
		sp, ctx := e.step(p1, "cuts")
		cuts, err := cut.NewSetCtx(ctx, e.g, e.opt.Threads)
		sp.SetInt("work", cuts.Work())
		sp.End()
		e.stats.Step.Cuts += sp.Duration()
		e.stats.Work.Cuts += cuts.Work()
		if err != nil {
			// Cancelled mid-build: the set is incomplete and must not be
			// stored — a later warm start or phase-2 closure would trust
			// half-built cuts. e.cuts keeps its previous value (nil, or a
			// complete set the unchanged graph still matches).
			return nil
		}
		e.cuts = cuts
	}
	targets := e.liveTargets()
	var res *cpm.Result
	var err error
	var sp *obs.Span
	var ctx context.Context
	if e.useCache() {
		if e.cache == nil {
			e.cache = cpm.NewCache(e.g, e.s)
		}
		var upd cpm.Update
		if warm {
			sp, ctx = e.step(p1, "cpm.warm")
			upd, err = e.cache.RefreshCtx(ctx, e.cuts, targets, e.opt.Threads)
			sp.SetInt("rows_reused", int64(upd.Reused))
			if upd.Needed > 0 {
				sp.SetFloat("reuse_rate", float64(upd.Reused)/float64(upd.Needed))
			}
			e.stats.Work.CPMSkipped += upd.ReusedWork
			e.stats.Work.CPMRowsReused += int64(upd.Reused)
			e.stats.Work.CPMRowsReusedPhase1 += int64(upd.Reused)
		} else {
			sp, ctx = e.step(p1, "cpm")
			upd, err = e.cache.RebuildCtx(ctx, e.cuts, e.opt.Threads)
		}
		res = upd.Res
		// Work + ReusedWork == the cold build's deterministic estimate.
		e.stats.Work.CPM += upd.Work + upd.ReusedWork
		e.stats.Work.CPMRowsRecomputed += int64(upd.Recomputed)
		e.stats.Work.CPMRowsRecomputedPhase1 += int64(upd.Recomputed)
		sp.SetInt("rows_recomputed", int64(upd.Recomputed))
		sp.SetInt("work", upd.Work)
	} else {
		sp, ctx = e.step(p1, "cpm")
		res, err = cpm.BuildDisjointCtx(ctx, e.g, e.s, e.cuts, nil, e.opt.Threads)
		e.stats.Work.CPM += res.Work
		sp.SetInt("work", res.Work)
	}
	sp.End()
	e.stats.Step.CPM += sp.Duration()
	if err != nil {
		return nil
	}
	if e.fire(fault.FlipDiffBit) {
		res.FlipDiffBit(e.opt.Fault.Opportunities())
	}
	sp, ctx = e.step(p1, "eval")
	bests, ew, rw, hits, err := lac.EvaluateTargetsMemoCtx(ctx, e.gen, res, e.st, targets, e.opt.Threads, e.memo)
	sp.SetInt("targets", int64(len(targets)))
	sp.SetInt("lacs_best", int64(len(bests)))
	sp.SetInt("work", ew)
	sp.SetInt("memo_hits", int64(hits))
	sp.End()
	e.stats.Step.Eval += sp.Duration()
	e.stats.Work.Eval += ew // includes rw: charged cold-equivalent
	e.stats.Work.EvalSkipped += rw
	e.stats.Work.EvalMemoHits += int64(hits)
	if err != nil {
		return nil
	}
	e.stats.Phase1++
	return bests
}

// runConventional is the flow of Fig. 3(a): every iteration performs a
// comprehensive analysis and applies the single LAC with the smallest
// error, until no candidate fits the threshold.
func (e *engine) runConventional() {
	for {
		if e.stopped() {
			return
		}
		bests := e.comprehensive(e.root)
		if e.cancelled() {
			return
		}
		if len(bests) == 0 || bests[0].Best.Err > e.opt.Threshold {
			e.stats.StopReason = StopBudget
			return
		}
		chosen := bests[0]
		e.apply(chosen.Best.LAC)
		if e.opt.OnIteration != nil {
			e.opt.OnIteration(e.iter, chosen, bests)
		}
		if e.wceCheckpoint(false) {
			// Certification failed: the engine kept the longest certified
			// prefix; re-proposing the violator would loop forever.
			e.stats.StopReason = StopBudget
			return
		}
	}
}

// runVECBEE is the original VECBEE baseline: one-cut CPM with depth limit
// l. With l=∞ the estimate is exact and the loop mirrors the conventional
// flow; with finite l the estimate can be wrong, so every application is
// validated against the real (sampled) error and rolled back on violation.
func (e *engine) runVECBEE() {
	exactMode := e.opt.DepthLimit <= 0
	for {
		if e.stopped() {
			return
		}
		bests, ok := e.vecbeeAnalysis()
		if !ok {
			return
		}
		if len(bests) == 0 || bests[0].Best.Err > e.opt.Threshold {
			e.stats.StopReason = StopBudget
			return
		}
		chosen := bests[0]
		if exactMode {
			e.apply(chosen.Best.LAC)
		} else {
			sn := e.snapshot()
			e.apply(chosen.Best.LAC)
			if e.st.Error() > e.opt.Threshold {
				e.restore(sn)
				e.stats.StopReason = StopBudget
				return
			}
		}
		if e.opt.OnIteration != nil {
			e.opt.OnIteration(e.iter, chosen, bests)
		}
		if e.wceCheckpoint(false) {
			e.stats.StopReason = StopBudget
			return
		}
	}
}

// vecbeeAnalysis is one analysis of the original VECBEE baseline: the
// one-cut depth-limited CPM plus LAC evaluation, recorded as a phase-1
// span like every other full analysis. ok is false when the run was
// cancelled mid-analysis (the partial result must be discarded).
func (e *engine) vecbeeAnalysis() (bests []lac.NodeBest, ok bool) {
	p1 := e.root.Child("phase1")
	defer func() {
		p1.End()
		e.stats.PhaseTime.Phase1 += p1.Duration()
	}()
	sp, ctx := e.step(p1, "cpm")
	res, err := cpm.BuildVECBEECtx(ctx, e.g, e.s, e.opt.DepthLimit, nil, e.opt.Threads)
	sp.SetInt("work", res.Work)
	sp.End()
	e.stats.Step.CPM += sp.Duration()
	e.stats.Work.CPM += res.Work
	if err != nil {
		e.cancelled()
		return nil, false
	}
	if e.fire(fault.FlipDiffBit) {
		res.FlipDiffBit(e.opt.Fault.Opportunities())
	}
	sp, ctx = e.step(p1, "eval")
	targets := e.liveTargets()
	bests, ew, err := lac.EvaluateTargetsCtx(ctx, e.gen, res, e.st, targets, e.opt.Threads)
	sp.SetInt("targets", int64(len(targets)))
	sp.SetInt("work", ew)
	sp.End()
	e.stats.Step.Eval += sp.Duration()
	e.stats.Work.Eval += ew
	if err != nil {
		e.cancelled()
		return nil, false
	}
	e.stats.Phase1++
	return bests, true
}

// runAccALS re-implements AccALS [14]: each iteration selects multiple
// LACs greedily on the estimated error, applies them in a batch, and
// validates against the real (sampled) error. When the batch violates the
// bound or deviates too much from the estimate, it rolls back and applies
// only the single best LAC — the SEALS fallback the paper describes.
func (e *engine) runAccALS() {
	maxMulti := e.opt.MaxMulti
	if maxMulti <= 0 {
		maxMulti = 10
	}
	accTol := e.opt.AccTol
	if accTol <= 0 {
		accTol = 0.05
	}
	for {
		if e.stopped() {
			return
		}
		bests := e.comprehensive(e.root)
		if e.cancelled() {
			return
		}
		if len(bests) == 0 || bests[0].Best.Err > e.opt.Threshold {
			e.stats.StopReason = StopBudget
			return
		}
		cur := e.st.Error()
		// Greedy multi-selection on estimated combined error.
		var sel []lac.NodeBest
		est := cur
		for _, nb := range bests {
			inc := nb.Best.Err - cur
			if inc < 0 {
				inc = 0
			}
			if est+inc > e.opt.Threshold {
				break // sorted by error: later candidates are no better
			}
			sel = append(sel, nb)
			est += inc
			if len(sel) == maxMulti {
				break
			}
		}
		if len(sel) <= 1 {
			chosen := bests[0]
			e.apply(chosen.Best.LAC)
			if e.opt.OnIteration != nil {
				e.opt.OnIteration(e.iter, chosen, bests)
			}
			if e.wceCheckpoint(false) {
				e.stats.StopReason = StopBudget
				return
			}
			continue
		}
		sn := e.snapshot()
		// Apply the batch but hold the OnIteration callbacks until it
		// validates: a rolled-back batch must not be observed, and its
		// iteration numbers must not be consumed (the fallback single LAC
		// reuses the first of them).
		type appliedRec struct {
			nb   lac.NodeBest
			iter int
		}
		var recs []appliedRec
		for _, nb := range sel {
			l := nb.Best.LAC
			if !e.g.IsAnd(l.Target) || e.g.IsDead(l.NewLit.Var()) {
				continue // consumed by an earlier LAC of this batch
			}
			if !l.IsConst() && e.g.InTFO(l.Target, l.NewLit.Var()) {
				continue // earlier rewiring made this substitution cyclic
			}
			e.apply(l)
			recs = append(recs, appliedRec{nb: nb, iter: e.iter})
		}
		real := e.st.Error()
		dev := math.Abs(real - est)
		if real > e.opt.Threshold || dev > accTol*math.Max(est, 1e-12) {
			// Estimate was unreliable: fall back to a single LAC (SEALS).
			e.restore(sn)
			e.stats.Applied -= len(recs)
			e.iter -= len(recs)
			chosen := bests[0]
			e.apply(chosen.Best.LAC)
			if e.opt.OnIteration != nil {
				e.opt.OnIteration(e.iter, chosen, bests)
			}
		} else if e.opt.OnIteration != nil {
			for _, r := range recs {
				e.opt.OnIteration(r.iter, r.nb, bests)
			}
		}
		if e.wceCheckpoint(false) {
			e.stats.StopReason = StopBudget
			return
		}
	}
}

// runDualPhase is the paper's contribution (Fig. 3(c)): dual-phase rounds
// of one comprehensive analysis followed by up to N incremental
// iterations restricted to the candidate set S_cand. With selfAdapt the
// two §III-D techniques are enabled: parameter tuning from the step-work
// profile of the last dual phase, and the adaptive early stop of phase 2.
func (e *engine) runDualPhase(selfAdapt bool) {
	e.incCuts = true
	if !e.opt.NoWarmStart {
		// Cross-round evaluation memo: phase-2 evaluations not followed by
		// an apply stay valid into the next comprehensive pass.
		e.memo = lac.NewMemo(e.g.NumVars())
	}
	M := e.opt.M
	if M <= 0 {
		if e.stats.NodesBefore < 4000 {
			M = 60
		} else {
			M = 150
		}
	}
	N := e.opt.N
	if N <= 0 {
		N = M / 3
	}
	if N < 1 {
		N = 1
	}

	for {
		if e.stopped() {
			return
		}
		workBefore := e.stats.Work
		round := e.root.Child("round")
		round.SetInt("M", int64(M))
		round.SetInt("N", int64(N))
		stop := e.dualPhaseRound(round, M, N, selfAdapt)
		round.End()
		if stop {
			return
		}

		// ---------- Self-adaption: tune parameters from the last phase ----------
		// The paper profiles the steps by runtime; here the profile is the
		// deterministic StepWork estimate (word operations), which tracks
		// serial runtime but is identical between runs regardless of
		// Threads, machine, or load — so the tuned trajectory, and with it
		// the whole DP-SA flow, stays bit-reproducible.
		if selfAdapt {
			d := StepWork{
				Cuts: e.stats.Work.Cuts - workBefore.Cuts,
				CPM:  e.stats.Work.CPM - workBefore.CPM,
				Eval: e.stats.Work.Eval - workBefore.Eval,
			}
			total := d.Total()
			if total > 0 {
				switch {
				case d.Cuts*2 > total:
					// Step 1 dominates: growing M amortises the
					// comprehensive pass over more phase-2 iterations
					// without increasing the incremental cut work.
					M = growInt(M, 1+e.opt.RInc)
				case d.CPM*2 > total:
					// Step 2 dominates: shrink the candidate set so fewer
					// CPM entries are rebuilt per iteration.
					M = shrinkInt(M, 1-e.opt.RInc, 6)
				case d.Eval*2 > total:
					// Step 3 dominates: fewer LACs per target node. With
					// constant LACs there are only two per node and nothing
					// to reduce; shrinking M instead would buy more
					// comprehensive passes, so leave the parameters alone.
					if e.opt.LACs.SASIMI && e.gen.MaxPerNode() > 1 {
						e.gen.SetMaxPerNode(e.gen.MaxPerNode() / 2)
						if e.memo != nil {
							// Fewer candidates per node: memoized bests
							// were picked from a larger candidate set.
							e.memo.Invalidate()
						}
					}
				}
				N = M / 3
				if N < 1 {
					N = 1
				}
			}
			e.stats.MTrace = append(e.stats.MTrace, M)
		}
	}
}

// dualPhaseRound runs one round of the dual-phase framework under the given
// round span: a comprehensive phase-1 analysis, the phase-1 apply, and up to
// N incremental phase-2 iterations restricted to the candidate set S_cand of
// the M best remaining nodes. It reports whether the whole flow should stop
// (error budget exhausted, iteration cap reached, or run cancelled).
func (e *engine) dualPhaseRound(round *obs.Span, M, N int, selfAdapt bool) (stop bool) {
	// Applies of this round nest their spans under the round.
	e.cur = round
	defer func() { e.cur = e.root }()

	// ---------- Phase 1: comprehensive analysis ----------
	bests := e.comprehensive(round)
	if e.cancelled() {
		return true
	}
	if len(bests) == 0 || bests[0].Best.Err > e.opt.Threshold {
		e.stats.StopReason = StopBudget
		return true
	}
	E0 := e.st.Error() // error at the start of this dual-phase iteration
	chosen := bests[0]
	cs := e.apply(chosen.Best.LAC)
	if e.opt.OnIteration != nil {
		e.opt.OnIteration(e.iter, chosen, bests)
	}
	if e.wceCheckpoint(false) {
		e.stats.StopReason = StopBudget
		return true
	}
	// Candidate set: the M remaining nodes with the smallest errors,
	// excluding anything the applied LAC removed.
	removed := map[int32]bool{}
	for _, r := range cs.Removed {
		removed[r] = true
	}
	var scand []int32
	for _, nb := range bests[1:] {
		if removed[nb.Node] {
			continue
		}
		scand = append(scand, nb.Node)
		if len(scand) == M {
			break
		}
	}

	// ---------- Phase 2: incremental analysis ----------
	p2 := round.Child("phase2")
	e.cur = p2
	iters0 := e.stats.Phase2
	defer func() {
		p2.SetInt("iters", int64(e.stats.Phase2-iters0))
		p2.End()
		e.stats.PhaseTime.Phase2 += p2.Duration()
	}()
	sumEr := 0.0
	for it := 0; it < N && !e.reachedCap(); it++ {
		if e.cancelled() {
			return true
		}
		// Keep only still-live candidates.
		live := scand[:0]
		for _, v := range scand {
			if e.g.IsAnd(v) {
				live = append(live, v)
			}
		}
		scand = live
		if len(scand) == 0 {
			break
		}
		// Incremental analysis: serve the closure of S_cand from the
		// cache, recomputing only rows invalidated since the last
		// analysis — §III-C's reuse, bit-identical to a full rebuild.
		sp, ctx := e.step(p2, "cpm")
		sp.SetInt("scand", int64(len(scand)))
		var res *cpm.Result
		var err error
		if e.cache != nil {
			upd, rerr := e.cache.RowsCtx(ctx, scand, e.opt.Threads)
			err = rerr
			res = upd.Res
			e.stats.Work.CPM += upd.Work
			e.stats.Work.CPMRowsReused += int64(upd.Reused)
			e.stats.Work.CPMRowsRecomputed += int64(upd.Recomputed)
			sp.SetInt("rows_reused", int64(upd.Reused))
			sp.SetInt("rows_recomputed", int64(upd.Recomputed))
			sp.SetInt("work", upd.Work)
		} else {
			res, err = cpm.BuildDisjointCtx(ctx, e.g, e.s, e.cuts, scand, e.opt.Threads)
			e.stats.Work.CPM += res.Work
			sp.SetInt("work", res.Work)
		}
		sp.End()
		e.stats.Step.CPM += sp.Duration()
		if err != nil {
			e.cancelled()
			return true
		}
		if e.fire(fault.FlipDiffBit) {
			res.FlipDiffBit(e.opt.Fault.Opportunities())
		}
		// The memo is write-mostly here (an apply separates consecutive
		// phase-2 evaluations, bumping the epoch): its value is that the
		// final evaluation of a round that exits *without* applying stays
		// fresh into the next comprehensive pass.
		sp, ctx = e.step(p2, "eval")
		bests2, ew, rw, hits, err := lac.EvaluateTargetsMemoCtx(ctx, e.gen, res, e.st, scand, e.opt.Threads, e.memo)
		sp.SetInt("targets", int64(len(scand)))
		sp.SetInt("work", ew)
		sp.End()
		e.stats.Step.Eval += sp.Duration()
		e.stats.Work.Eval += ew
		e.stats.Work.EvalSkipped += rw
		e.stats.Work.EvalMemoHits += int64(hits)
		if err != nil {
			e.cancelled()
			return true
		}
		if len(bests2) == 0 || bests2[0].Best.Err > e.opt.Threshold {
			break
		}
		cand := bests2[0]
		er := 0.0
		if selfAdapt {
			E := e.st.Error()
			if einc := cand.Best.Err - E; einc > 0 {
				if E0 > 0 {
					er = einc / E0
				} else {
					er = math.Inf(1)
				}
			}
			Eb := e.opt.Threshold
			halt := false
			switch {
			case E <= e.opt.Br*Eb:
				// Far from the bound: unconstrained.
			case E <= e.opt.Bs*Eb:
				halt = er > e.opt.Et
			default:
				halt = sumEr+er > e.opt.Et
			}
			if halt {
				break
			}
		}
		cs2 := e.apply(cand.Best.LAC)
		e.stats.Phase2++
		sumEr += er
		if e.opt.OnIteration != nil {
			e.opt.OnIteration(e.iter, cand, bests2)
		}
		// Remove the target and its removed MFFC from S_cand.
		gone := map[int32]bool{cand.Node: true}
		for _, r := range cs2.Removed {
			gone[r] = true
		}
		kept := scand[:0]
		for _, v := range scand {
			if !gone[v] {
				kept = append(kept, v)
			}
		}
		scand = kept
		if e.wceCheckpoint(false) {
			e.stats.StopReason = StopBudget
			return true
		}
	}
	return false
}

func growInt(v int, f float64) int {
	n := int(float64(v) * f)
	if n <= v {
		n = v + 1
	}
	return n
}

func shrinkInt(v int, f float64, floor int) int {
	n := int(float64(v) * f)
	if n < floor {
		n = floor
	}
	return n
}
