// Package core implements the iterative approximate logic synthesis flows
// of the paper: the conventional single-LAC flow with comprehensive error
// analysis (enhanced VECBEE: disjoint cuts + CPM), the original VECBEE
// baseline with a configurable depth limit, the AccALS multi-LAC baseline,
// and the dual-phase framework DP and its self-adaptive variant DP-SA —
// the paper's contribution.
package core

import (
	"runtime"
	"time"

	"dpals/internal/bitvec"
	"dpals/internal/fault"
	"dpals/internal/lac"
	"dpals/internal/metric"
)

// Flow selects the synthesis algorithm.
type Flow int

// Supported flows.
const (
	// FlowConventional is Fig. 3(a): one LAC per iteration, comprehensive
	// error analysis with disjoint cuts — the "enhanced VECBEE" the paper
	// compares against and the first phase of the dual-phase framework.
	FlowConventional Flow = iota
	// FlowVECBEE is the original VECBEE [19] with one-cut depth limit
	// Options.DepthLimit (0 = ∞, fully accurate; 1 = direct fanout).
	FlowVECBEE
	// FlowAccALS is AccALS [14]: multiple LACs per iteration with
	// post-apply validation and single-LAC (SEALS) fallback.
	FlowAccALS
	// FlowDP is the dual-phase framework without self-adaption.
	FlowDP
	// FlowDPSA is the dual-phase framework with the two self-adaption
	// techniques of §III-D.
	FlowDPSA
)

func (f Flow) String() string {
	switch f {
	case FlowConventional:
		return "Conventional"
	case FlowVECBEE:
		return "VECBEE"
	case FlowAccALS:
		return "AccALS"
	case FlowDP:
		return "DP"
	case FlowDPSA:
		return "DP-SA"
	}
	return "Flow(?)"
}

// Options configures a synthesis run. The zero value is not usable; start
// from DefaultOptions.
type Options struct {
	Flow      Flow
	Metric    metric.Kind
	Threshold float64        // error upper bound E_b (ER: fraction; MSE/MED: absolute)
	Weights   metric.Weights // PO weights; nil = unsigned binary, LSB-first

	Patterns int   // Monte-Carlo patterns
	Seed     int64 // pattern RNG seed
	// Threads is the worker count for the parallel analysis pipeline
	// (simulation, disjoint cuts, CPM construction, LAC evaluation), with
	// the pipeline-wide semantics of package par: ≤0 selects all CPUs
	// (runtime.GOMAXPROCS), 1 runs serially. Results are bit-identical for
	// every value.
	Threads int

	// Exhaustive simulates all 2^PIs input patterns instead of Monte-Carlo
	// sampling, making every error figure exact. Only allowed for circuits
	// with at most 24 primary inputs.
	Exhaustive bool

	// InputProbabilities biases the Monte-Carlo input distribution: entry
	// i is the probability that input i reads 1 (missing entries: 0.5).
	// Ignored in exhaustive mode.
	InputProbabilities []float64

	LACs lac.Options // which LAC kinds to generate

	// VECBEE baseline.
	DepthLimit int // l: 0 = ∞

	// Dual-phase parameters. M ≤ 0 selects the paper defaults (60 for
	// circuits under 4000 AND nodes, 150 otherwise); N ≤ 0 selects M/3.
	M, N int

	// Self-adaption parameters (§III-D), used by FlowDPSA. Values ≤ 0 are
	// normalised to the paper defaults by Run, so the zero value behaves
	// like DefaultOptions.
	RInc float64 // candidate-set growth factor (≤0: 0.25)
	Br   float64 // relaxed bound ratio (≤0: 0.025)
	Bs   float64 // strict bound ratio (≤0: 0.25)
	Et   float64 // relative-error-increase threshold (≤0: 0.5)

	// AccALS parameters.
	MaxMulti int     // max LACs per iteration (≤0: 10)
	AccTol   float64 // allowed relative deviation estimate vs real (≤0: 0.05)

	// WCE-constrained flow (Metric == metric.WCE). WCEBound is the
	// worst-case error bound to certify: phase-1 analyses prune candidates
	// by a sampled worst-case upper-bound estimate, and a SAT certification
	// (equiv.WCEAtMost against the input circuit) amortized over every
	// CertEvery accepted LACs — and always before emit — proves the bound,
	// rolling back to the last certified state on violation. For WCE the
	// error budget is WCEBound (Threshold is derived from it) and the
	// outputs are read as an unsigned LSB-first number (Weights must be
	// nil, ≤ 62 outputs).
	WCEBound uint64
	// CertEvery is the certification amortization interval K: a SAT check
	// runs after every K accepted LACs (≤0: 8). Smaller K certifies more
	// often and rolls back less work per violation.
	CertEvery int
	// CertConflictLimit caps the SAT conflicts of each certification call
	// (0 = unlimited). An exhausted budget counts as a failed certification
	// — the engine rolls back — so limited runs stay deterministic.
	CertConflictLimit int64

	// MaxIters caps the number of applied LACs (safety; ≤0 = unlimited).
	MaxIters int

	// TimeLimit bounds the wall-clock time of a run (0 = unlimited).
	// RunContext derives a deadline-carrying context from it; when the
	// limit expires the run stops cooperatively at the next checkpoint and
	// returns the best-so-far result with Stats.StopReason = StopDeadline.
	TimeLimit time.Duration

	// NoCPMCache disables the persistent incremental CPM cache of the
	// dual-phase flows and rebuilds the phase-2 CPM from scratch every
	// iteration (the pre-cache behaviour). Results are bit-identical either
	// way; the switch exists for A/B benchmarking and differential tests.
	NoCPMCache bool

	// NoWarmStart disables the cross-round warm start of the comprehensive
	// analysis in the dual-phase flows: every phase-1 pass rebuilds the
	// disjoint cuts from scratch, revalidates every CPM row, and
	// re-evaluates every target (the pre-warm-start behaviour). Results —
	// including the deterministic Stats.Work profile DP-SA tunes from, and
	// with it the whole self-adaption trajectory — are bit-identical either
	// way, because warm passes charge the cold-equivalent work (see
	// StepWork); the switch exists for A/B benchmarking and differential
	// tests.
	NoWarmStart bool

	// OnIteration, when non-nil, observes every applied LAC: the 1-based
	// iteration number, the chosen candidate, and the full sorted
	// evaluation of the iteration (phase-2 iterations only see the
	// candidate set S_cand). Used by the Fig. 4 experiment.
	OnIteration func(iter int, chosen lac.NodeBest, bests []lac.NodeBest)

	// Fault, when non-nil, injects one deliberate bookkeeping mutation
	// into the run (see internal/fault): the engine consults the plan at
	// its bookkeeping sites and corrupts its state exactly once. Used only
	// by the alscheck differential-verification campaign to prove the
	// oracle cross-checks detect real engine bugs; nil — the default and
	// the only production value — is a faithful run. Plans are single-use:
	// never share one across runs.
	Fault *fault.Plan
}

// DefaultOptions returns the paper's experimental configuration for the
// given flow and metric.
func DefaultOptions(flow Flow, kind metric.Kind, threshold float64) Options {
	return Options{
		Flow:      flow,
		Metric:    kind,
		Threshold: threshold,
		Patterns:  8192,
		Seed:      1,
		Threads:   runtime.GOMAXPROCS(0),
		LACs:      lac.Options{Constants: true},
		RInc:      0.25,
		Br:        0.025,
		Bs:        0.25,
		Et:        0.5,
	}
}

// StopReason tells why a synthesis run ended. Every run ends for exactly
// one of these reasons; callers that impose deadlines use it to tell a
// completed result from a best-so-far one.
type StopReason string

const (
	// StopBudget: natural completion — no remaining LAC fits the error
	// budget (or the circuit ran out of approximable nodes).
	StopBudget StopReason = "budget"
	// StopMaxIters: the Options.MaxIters safety cap was reached.
	StopMaxIters StopReason = "max-iters"
	// StopCancelled: the caller's context was cancelled; the result is the
	// valid best-so-far circuit at the last checkpoint.
	StopCancelled StopReason = "cancelled"
	// StopDeadline: Options.TimeLimit (or a context deadline) expired; the
	// result is the valid best-so-far circuit at the last checkpoint.
	StopDeadline StopReason = "deadline"
)

// StepTimes records the cumulated runtime of the three error-analysis steps
// of Fig. 3: (1) obtaining/updating disjoint cuts, (2) calculating the CPM,
// (3) calculating the error increases of the LACs. Each figure is the
// summed duration of the matching obs spans ("cuts"/"cuts.update", "cpm",
// "eval") — the single timing code path shared with trace exports, so a
// -stats dump and a trace summary can never disagree.
type StepTimes struct {
	Cuts time.Duration
	CPM  time.Duration
	Eval time.Duration
}

// Total returns the summed step time.
func (t StepTimes) Total() time.Duration { return t.Cuts + t.CPM + t.Eval }

// PhaseTimes records the cumulated wall-clock time of the two phases of
// the dual-phase framework, derived from the durations of the "phase1"
// and "phase2" obs spans. Phase1 covers every comprehensive analysis
// (including the per-iteration analyses of the conventional, VECBEE and
// AccALS baselines, which are all phase-1-style); Phase2 covers the
// incremental phase-2 loops of the dual-phase flows, applies included.
// Because both the exported trace and these fields read the same span
// durations, the per-phase spans of a trace sum exactly to PhaseTimes.
// Phase1Warm is the slice of Phase1 spent in warm-started passes (rounds
// that reused the previous round's cuts and CPM rows; see
// Stats.Phase1Warm) — the step-function drop of the cross-round reuse
// shows as Phase1Warm per pass being far below (Phase1−Phase1Warm) per
// cold pass.
type PhaseTimes struct {
	Phase1     time.Duration
	Phase2     time.Duration
	Phase1Warm time.Duration
}

// Total returns the summed phase time.
func (t PhaseTimes) Total() time.Duration { return t.Phase1 + t.Phase2 }

// StepWork is the deterministic analogue of StepTimes: cumulated work
// estimates of the three analysis steps in bitvec word operations, as
// self-reported by cut.Set.Work, cpm.Result.Work and lac.EvaluateTargets.
// Unlike wall-clock times these are identical between runs regardless of
// Threads, machine, or load, so DP-SA's self-adaption (§III-D) profiles
// the steps with StepWork — keeping the whole flow bit-deterministic —
// while StepTimes keeps reporting real runtimes.
type StepWork struct {
	Cuts int64
	CPM  int64
	Eval int64

	// CPM cache row accounting (dual-phase flows with the incremental
	// cache): how many of the rows needed by the analyses were served from
	// the cache versus recomputed. Cold comprehensive passes recompute
	// every row; warm passes and phase-2 iterations reuse whatever the
	// applied LACs did not invalidate. The reuse rate is CPMRowsReused /
	// (CPMRowsReused + CPMRowsRecomputed). Deterministic like the work
	// counters; not part of Total.
	CPMRowsReused     int64
	CPMRowsRecomputed int64

	// Cross-round warm-start accounting (dual-phase flows unless
	// Options.NoWarmStart). Warm comprehensive passes charge Cuts, CPM and
	// Eval with the cold-equivalent work — reused cuts, rows and
	// evaluations charge the cost recorded at their last computation, which
	// unchanged inputs make exactly the cost of recomputing them — so the
	// profile DP-SA tunes from, and with it the whole trajectory, is
	// bit-identical between warm and cold runs. The *Skipped fields report
	// how much of that charged work was served from the previous round
	// instead of performed (0 in cold runs); EvalMemoHits counts the
	// targets whose generation+evaluation was reused whole; the Phase1 row
	// counters are the comprehensive-pass slice of the row accounting
	// above, from which the phase-1 reuse rate is derived.
	CutsSkipped             int64
	CPMSkipped              int64
	EvalSkipped             int64
	EvalMemoHits            int64
	CPMRowsReusedPhase1     int64
	CPMRowsRecomputedPhase1 int64
}

// Phase1ReuseRate returns the fraction of phase-1 CPM rows served from the
// previous round by warm-started comprehensive passes (0 when no phase-1
// rows were accounted, e.g. cold-only runs without the cache).
func (w StepWork) Phase1ReuseRate() float64 {
	total := w.CPMRowsReusedPhase1 + w.CPMRowsRecomputedPhase1
	if total == 0 {
		return 0
	}
	return float64(w.CPMRowsReusedPhase1) / float64(total)
}

// Total returns the summed step work.
func (w StepWork) Total() int64 { return w.Cuts + w.CPM + w.Eval }

// Stats reports what a run did.
type Stats struct {
	Applied     int // LACs applied in total
	Phase1      int // comprehensive iterations (= dual-phase rounds for DP)
	Phase1Warm  int // comprehensive passes warm-started from the previous round
	Phase2      int // incremental iterations
	CutUpdates  int // incremental cut repairs performed after applies
	Rollbacks   int // AccALS/VECBEE reverted iterations
	NodesBefore int
	NodesAfter  int
	Runtime     time.Duration
	Step        StepTimes
	PhaseTime   PhaseTimes
	Work        StepWork

	// Pool is the final snapshot of the CPM cache's diff-vector free list
	// (dual-phase flows with the cache enabled; zero otherwise) —
	// deterministic like Work, see bitvec.PoolStats.
	Pool bitvec.PoolStats

	// WCE-constrained flow accounting (Metric == metric.WCE; zero
	// otherwise). CertifiedWCE is the SAT-proven worst-case error bound of
	// the returned circuit — every emitted circuit is certified, even on
	// cancellation (the uncertified tail is rolled back instead of running
	// new SAT work). CertCalls counts SAT certification calls, CertCexHits
	// the certifications refuted by a cached counterexample without solver
	// work, CertRollbacks the checkpoint failures that triggered the
	// rollback-and-replay path, and CertTime the summed duration of the
	// "cert" obs spans.
	CertifiedWCE  uint64
	CertCalls     int
	CertCexHits   int
	CertRollbacks int
	CertTime      time.Duration

	// StopReason tells why the run ended (budget, max-iters, cancelled,
	// deadline). Always set by Run/RunContext.
	StopReason StopReason

	// Self-adaption trajectory (DP-SA): the M value after each dual phase.
	MTrace []int
}
