package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"dpals/internal/aig"
	"dpals/internal/bitvec"
	"dpals/internal/cpm"
	"dpals/internal/cut"
	"dpals/internal/equiv"
	"dpals/internal/fault"
	"dpals/internal/lac"
	"dpals/internal/metric"
	"dpals/internal/obs"
	"dpals/internal/sim"
)

// Result of a synthesis run.
type Result struct {
	Graph *aig.Graph // approximate circuit, swept
	Error float64    // final error on the training patterns
	Stats Stats
}

// Run synthesises an approximate version of g under opt and returns the
// result. g itself is never modified.
func Run(g *aig.Graph, opt Options) (*Result, error) {
	return RunContext(context.Background(), g, opt)
}

// RunContext is Run with cooperative cancellation and an optional
// deadline: when ctx is cancelled (or opt.TimeLimit expires) the run stops
// at the next checkpoint — an iteration boundary of the flow, or a wave
// boundary inside a running analysis — and returns the valid best-so-far
// result instead of an error. The returned circuit is swept, its Error is
// the genuine sampled error of that circuit, and it never exceeds the
// budget; Stats.StopReason tells whether the run completed (budget,
// max-iters) or was stopped (cancelled, deadline). An uncancelled run is
// bit-identical to Run for every thread count. Errors are returned only
// for invalid configurations, never for cancellation.
func RunContext(ctx context.Context, g *aig.Graph, opt Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opt.TimeLimit > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.TimeLimit)
		defer cancel()
	}
	if opt.Threshold < 0 {
		return nil, errors.New("core: negative error threshold")
	}
	if !opt.LACs.Constants && !opt.LACs.SASIMI {
		return nil, errors.New("core: no LAC kind enabled")
	}
	if opt.Metric == metric.WCE {
		// The certification miter reads the outputs as one unsigned
		// LSB-first number; arbitrary weights have no SAT counterpart here.
		if opt.Weights != nil {
			return nil, errors.New("core: WCE uses the unsigned LSB-first output interpretation; Weights must be nil")
		}
		if g.NumPOs() > 62 {
			return nil, fmt.Errorf("core: WCE flow limited to 62 outputs, circuit has %d", g.NumPOs())
		}
		// The sampled metric and the candidate pruning share the budget
		// machinery of every other flow: the threshold is the bound.
		opt.Threshold = float64(opt.WCEBound)
		if opt.CertEvery <= 0 {
			opt.CertEvery = 8
		}
	} else if opt.WCEBound != 0 {
		return nil, errors.New("core: WCEBound requires Metric == metric.WCE")
	}
	if opt.Patterns <= 0 {
		opt.Patterns = 8192
	}
	// Self-adaption parameters (§III-D): the zero value silently degenerates
	// DP-SA (Br=Bs=Et=0 makes every phase-2 check "strict" and stops it on
	// the first error increase; RInc=0 freezes M). Normalise to the paper
	// defaults, exactly like Patterns above.
	if opt.RInc <= 0 {
		opt.RInc = 0.25
	}
	if opt.Br <= 0 {
		opt.Br = 0.025
	}
	if opt.Bs <= 0 {
		opt.Bs = 0.25
	}
	if opt.Et <= 0 {
		opt.Et = 0.5
	}
	// The observability layer rides on the context: a recording tracer,
	// metrics registry, or progress renderer installed by the caller is
	// picked up here; otherwise the shared no-op tracer provides the span
	// timestamps Stats.Step/PhaseTime are derived from. Either way the
	// code path is the same and tracing never writes engine state, so a
	// traced run is bit-identical to an untraced one.
	tr := obs.FromContext(ctx)
	run := tr.Start("run")
	run.SetStr("flow", opt.Flow.String())
	run.SetStr("metric", opt.Metric.String())
	run.SetFloat("threshold", opt.Threshold)
	run.SetInt("patterns", int64(opt.Patterns))
	run.SetInt("threads", int64(opt.Threads))
	init := run.Child("init")
	e, err := newEngine(g, opt)
	if err != nil {
		init.End()
		run.End()
		return nil, err
	}
	init.SetInt("ands", int64(e.stats.NodesBefore))
	init.SetInt("words", int64(e.s.Words()))
	init.End()
	e.ctx = ctx
	e.root, e.cur = run, run
	e.metrics = obs.MetricsFrom(ctx)
	e.prog = obs.ProgressFrom(ctx)
	start := time.Now()
	switch opt.Flow {
	case FlowConventional:
		e.runConventional()
	case FlowVECBEE:
		e.runVECBEE()
	case FlowAccALS:
		e.runAccALS()
	case FlowDP, FlowDPSA:
		e.runDualPhase(opt.Flow == FlowDPSA)
	default:
		run.End()
		return nil, fmt.Errorf("core: unknown flow %d", int(opt.Flow))
	}
	if e.stats.StopReason == "" {
		// Flows record the reason at their exit checkpoint; a flow that
		// returned without one completed naturally.
		e.stats.StopReason = StopBudget
	}
	e.finalizeWCE()
	e.stats.Runtime = time.Since(start)
	e.stats.NodesAfter = e.g.NumAnds()
	if e.cache != nil {
		e.stats.Pool = e.cache.Pool().Stats()
	}
	sw := run.Child("sweep")
	out := e.g.Sweep()
	sw.End()
	finalErr := e.st.Error()
	if opt.Fault.Fire(fault.MisreportError) {
		// Seeded reporting bug: the circuit is faithful but the reported
		// error is not — the oracle's recompute-on-the-returned-circuit
		// cross-check must catch exactly this.
		finalErr += 1e-3 * (1 + math.Abs(finalErr))
	}
	run.SetInt("applied", int64(e.stats.Applied))
	run.SetInt("ands_after", int64(out.NumAnds()))
	run.SetFloat("error", finalErr)
	run.SetStr("stop_reason", string(e.stats.StopReason))
	run.End()
	if e.metrics != nil {
		if !e.cancelAt.IsZero() {
			// Cancellation latency: first observation of the dead context
			// to the end of the best-so-far wind-down.
			e.metrics.Gauge("cancel_latency_s").Set(time.Since(e.cancelAt).Seconds())
		}
		e.sampleMetrics()
	}
	e.prog.Done()
	return &Result{Graph: out, Error: finalErr, Stats: e.stats}, nil
}

// engine holds the mutable synthesis state shared by all flows.
type engine struct {
	opt   Options
	ctx   context.Context // run-scoped; checked at iteration and wave boundaries
	g     *aig.Graph
	s     *sim.Sim
	st    *metric.State
	cuts  *cut.Set   // nil for VECBEE flows
	cache *cpm.Cache // persistent incremental CPM (dual-phase flows; nil when disabled)
	gen   *lac.Generator
	memo  *lac.Memo // cross-round evaluation memo (dual-phase flows; nil when disabled)
	exact []bitvec.Vec
	stats Stats

	poScratch  bitvec.Vec
	targetsBuf []int32 // liveTargets scratch, reused across iterations
	iter       int     // applied-LAC counter (1-based in callbacks)
	incCuts    bool    // maintain cuts incrementally on apply (dual-phase flows)

	// WCE-constrained flow state (Metric == metric.WCE; cert is nil
	// otherwise). lastGood is the most recent SAT-certified state (the
	// pristine input, trivially certified at 0, until the first checkpoint
	// passes); pending records every LAC applied since it, in order, for
	// the rollback-and-replay path of wceCheckpoint; certWCE is the bound
	// lastGood is proven to satisfy.
	cert     *equiv.Certifier
	lastGood snapshot
	pending  []pendingLAC
	certWCE  uint64

	// Observability (see internal/obs). root is the run-level span — never
	// nil, since the no-op tracer still hands out timestamp-only spans the
	// Step/PhaseTime stats are derived from. cur is the span new apply
	// spans nest under; flows point it at their current phase. metrics and
	// prog are nil unless the caller installed them in the context.
	root     *obs.Span
	cur      *obs.Span
	metrics  *obs.Metrics
	prog     *obs.Progress
	cancelAt time.Time // first observation of a cancelled/expired context
}

// step opens a child span named name under parent and returns it together
// with the context analysis calls should run under: when the span records,
// the context carries it so par workers open their lane spans beneath it;
// otherwise the run context passes through untouched.
func (e *engine) step(parent *obs.Span, name string) (*obs.Span, context.Context) {
	sp := parent.Child(name)
	if sp.Recording() {
		return sp, obs.WithSpan(e.ctx, sp)
	}
	return sp, e.ctx
}

// sampleMetrics publishes the engine's iteration-boundary gauges and takes
// one metrics sample. Reads engine state only; called with e.metrics
// non-nil.
func (e *engine) sampleMetrics() {
	m := e.metrics
	m.Gauge("error").Set(e.st.Error())
	m.Gauge("ands").Set(float64(e.g.NumAnds()))
	m.Gauge("applied").Set(float64(e.stats.Applied))
	m.Gauge("phase1_analyses").Set(float64(e.stats.Phase1))
	m.Gauge("phase1_warm").Set(float64(e.stats.Phase1Warm))
	m.Gauge("phase1_reuse_rate").Set(e.stats.Work.Phase1ReuseRate())
	m.Gauge("phase2_iters").Set(float64(e.stats.Phase2))
	m.Gauge("cpm_rows_reused").Set(float64(e.stats.Work.CPMRowsReused))
	m.Gauge("cpm_rows_recomputed").Set(float64(e.stats.Work.CPMRowsRecomputed))
	m.Gauge("eval_memo_hits").Set(float64(e.stats.Work.EvalMemoHits))
	if e.cache != nil {
		ps := e.cache.Pool().Stats()
		m.Gauge("pool_gets").Set(float64(ps.Gets))
		m.Gauge("pool_puts").Set(float64(ps.Puts))
		m.Gauge("pool_misses").Set(float64(ps.Misses))
		m.Gauge("pool_high_water").Set(float64(ps.HighWater))
		m.Gauge("pool_hit_rate").Set(ps.HitRate())
	}
	m.TakeSample(e.iter)
}

// observe is the engine's iteration-boundary observation hook: metrics
// sample plus live progress line. Nil-safe on both, so apply calls it
// unconditionally.
func (e *engine) observe() {
	if e.metrics != nil {
		e.sampleMetrics()
	}
	e.prog.Update(e.iter, e.g.NumAnds(), e.st.Error(), e.opt.Threshold)
}

// SimOptions builds the simulator configuration a run of g under opt uses
// to draw its Monte-Carlo (or exhaustive) patterns. Exported so the
// verification oracle (internal/oracle) can recompute the sampled error of
// a returned circuit on exactly the patterns the run trained on.
func SimOptions(g *aig.Graph, opt Options) (sim.Options, error) {
	so := sim.Options{Patterns: opt.Patterns, Seed: opt.Seed, Threads: opt.Threads}
	if opt.Exhaustive {
		if g.NumPIs() > 24 {
			return so, fmt.Errorf("core: exhaustive simulation infeasible for %d inputs (max 24)", g.NumPIs())
		}
		so.Patterns = 1 << g.NumPIs()
		so.Dist = sim.Exhaustive{}
		return so, nil
	}
	if len(opt.InputProbabilities) > 0 {
		for _, p := range opt.InputProbabilities {
			if p < 0 || p > 1 {
				return so, fmt.Errorf("core: input probability %v out of [0,1]", p)
			}
		}
		so.Dist = sim.Biased{P: opt.InputProbabilities}
	}
	return so, nil
}

func newEngine(orig *aig.Graph, opt Options) (*engine, error) {
	g := orig.Sweep() // private, compact working copy
	if g.NumAnds() == 0 {
		return nil, errors.New("core: circuit has no AND nodes to approximate")
	}
	simOpt, err := SimOptions(g, opt)
	if err != nil {
		return nil, err
	}
	s := sim.New(g, simOpt)
	exact := make([]bitvec.Vec, g.NumPOs())
	for o := range exact {
		exact[o] = bitvec.NewWords(s.Words())
		s.POVal(o, exact[o])
	}
	weights := opt.Weights
	if weights == nil && opt.Metric.Numeric() {
		weights = metric.UnsignedWeights(g.NumPOs())
	}
	st := metric.NewState(opt.Metric, exact, weights, s.Patterns())
	e := &engine{
		opt:       opt,
		g:         g,
		s:         s,
		st:        st,
		exact:     exact,
		gen:       lac.NewGenerator(g, s, opt.LACs),
		poScratch: bitvec.NewWords(s.Words()),
	}
	e.stats.NodesBefore = g.NumAnds()
	if opt.Metric == metric.WCE {
		// Certify against a frozen copy of the (swept) input — sweeping
		// preserves the function, so a proof against the copy is a proof
		// against the caller's circuit.
		e.cert = equiv.NewCertifier(g.Clone())
		e.cert.Limit = opt.CertConflictLimit
		e.lastGood = snapshot{g: g.Clone()}
	}
	return e, nil
}

// liveTargets returns all live AND nodes in topological order. The slice
// is engine-owned scratch, valid until the next call — every caller hands
// it straight to the evaluator and drops it.
func (e *engine) liveTargets() []int32 {
	out := e.targetsBuf[:0]
	for _, v := range e.g.Topo() {
		if e.g.IsAnd(v) {
			out = append(out, v)
		}
	}
	e.targetsBuf = out
	return out
}

// fire consults the run's fault plan (nil in every production run) at one
// injection opportunity; see internal/fault.
func (e *engine) fire(k fault.Kind) bool { return e.opt.Fault.Fire(k) }

// apply commits a LAC: rewires the graph, incrementally resimulates, folds
// the PO changes into the metric state, repairs the cuts and the SASIMI
// index. It returns the change set.
func (e *engine) apply(l lac.LAC) aig.ChangeSet {
	sp := e.cur.Child("apply")
	cs := e.g.ReplaceWithLit(l.Target, l.NewLit)
	// changed is simulator-owned scratch, valid only until the next
	// ResimulateFrom call — consumed below before anything resimulates.
	var changed []int32
	if !e.fire(fault.SkipResim) {
		rs := sp.Child("resim")
		changed = e.s.ResimulateFrom(cs.Rewired)
		rs.SetInt("changed_vars", int64(len(changed)))
		rs.SetInt("words", int64(e.s.Words()))
		rs.End()
	}
	if len(changed) > 0 && e.fire(fault.FlipSimBit) {
		e.s.Val(changed[0])[0] ^= 1
	}
	if !e.fire(fault.SkipMetricCommit) {
		for o := 0; o < e.g.NumPOs(); o++ {
			e.s.POVal(o, e.poScratch)
			e.st.CommitPO(o, e.poScratch)
		}
	}
	if e.cuts != nil && e.incCuts {
		cu := sp.Child("cuts.update")
		w0 := e.cuts.Work()
		var sv []int32
		if e.fire(fault.SkipCutWarmUpdate) {
			// Seeded warm-path bug: the incremental repair is skipped but
			// the set still claims to be in sync, so later analyses (and
			// the next round's warm start) trust stale cuts. Invalidate
			// below still sees the full fanin closure — sv is subsumed by
			// the TFI cones of cs.FanoutChanged — so the corruption is
			// isolated to the cut structure itself.
			e.cuts.ForceSync()
		} else {
			sv = e.cuts.UpdateAfter(cs)
			e.stats.CutUpdates++
		}
		cu.End()
		e.stats.Step.Cuts += cu.Duration()
		e.stats.Work.Cuts += e.cuts.Work() - w0
		if e.cache != nil && !e.fire(fault.SkipCPMInvalidate) {
			e.cache.Invalidate(cs, changed, sv)
		}
	}
	e.gen.Reindex()
	if e.memo != nil {
		// Any applied LAC moves the global metric state every evaluation is
		// scored against: every memoized evaluation is stale now.
		e.memo.Invalidate()
	}
	e.stats.Applied++
	e.iter++
	if e.cert != nil {
		e.pending = append(e.pending, pendingLAC{l: l, iter: e.iter})
	}
	sp.SetInt("target", int64(l.Target))
	sp.SetFloat("error", e.st.Error())
	sp.SetInt("ands", int64(e.g.NumAnds()))
	sp.End()
	e.observe()
	return cs
}

// reachedCap reports whether the safety iteration cap has been hit.
func (e *engine) reachedCap() bool {
	return e.opt.MaxIters > 0 && e.stats.Applied >= e.opt.MaxIters
}

// cancelled reports whether the run's context is done, recording the
// matching stop reason (deadline vs cancelled) on the first hit. Flows
// call it at iteration boundaries and after every analysis step, and must
// return best-so-far without further graph edits once it fires.
func (e *engine) cancelled() bool {
	if e.ctx == nil {
		return false
	}
	err := e.ctx.Err()
	if err == nil {
		return false
	}
	if e.stats.StopReason == "" {
		if errors.Is(err, context.DeadlineExceeded) {
			e.stats.StopReason = StopDeadline
		} else {
			e.stats.StopReason = StopCancelled
		}
		e.cancelAt = time.Now() // cancel-latency metric origin
	}
	return true
}

// stopped reports whether a flow must stop before starting another
// iteration — context cancelled/deadline expired, or the MaxIters cap
// reached — recording the stop reason. The natural "no LAC fits the
// budget" exit records StopBudget at its own site.
func (e *engine) stopped() bool {
	if e.cancelled() {
		return true
	}
	if e.reachedCap() {
		e.stats.StopReason = StopMaxIters
		return true
	}
	return false
}

// snapshot captures the full synthesis state for rollback (used by the
// baselines whose estimates can be wrong — AccALS and depth-limited VECBEE —
// and by the WCE certification checkpoints). iter is the applied-LAC
// counter at capture time; restore drops the pending-certification records
// of everything applied after it.
type snapshot struct {
	g    *aig.Graph
	iter int
}

func (e *engine) snapshot() snapshot { return snapshot{g: e.g.Clone(), iter: e.iter} }

// restore rolls the engine back to a snapshot, rebuilding the derived
// state (simulation, metric, cuts, generator) from scratch.
func (e *engine) restore(sn snapshot) {
	sp := e.cur.Child("rollback")
	defer sp.End()
	e.g = sn.g
	simOpt, _ := SimOptions(e.g, e.opt) // validated at construction
	e.s = sim.New(e.g, simOpt)
	weights := e.opt.Weights
	if weights == nil && e.opt.Metric.Numeric() {
		weights = metric.UnsignedWeights(e.g.NumPOs())
	}
	e.st = metric.NewState(e.opt.Metric, e.exact, weights, e.s.Patterns())
	for o := 0; o < e.g.NumPOs(); o++ {
		e.s.POVal(o, e.poScratch)
		e.st.CommitPO(o, e.poScratch)
	}
	e.cuts = nil  // next comprehensive pass rebuilds the cuts
	e.cache = nil // the cache is bound to the replaced graph/simulator
	if e.memo != nil {
		e.memo.Invalidate() // evaluations reference the replaced state
	}
	e.gen = lac.NewGenerator(e.g, e.s, e.opt.LACs)
	if e.cert != nil {
		keep := e.pending[:0]
		for _, p := range e.pending {
			if p.iter <= sn.iter {
				keep = append(keep, p)
			}
		}
		e.pending = keep
	}
	e.stats.Rollbacks++
}

// pendingLAC is one LAC applied since the last certified checkpoint of the
// WCE flow, with the iter it was applied at (for snapshot truncation).
type pendingLAC struct {
	l    lac.LAC
	iter int
}

// certifyAt runs one SAT certification of the current circuit at bound t,
// recording the "cert" span and the certification counters. A
// conflict-budget exhaustion (or any solver error) counts as a failed
// certification, keeping limited runs deterministic. This is also the
// skip-wce-cert fault site: the seeded bug claims success without proving
// anything.
func (e *engine) certifyAt(t uint64) bool {
	if e.fire(fault.SkipWCECert) {
		return true
	}
	sp := e.cur.Child("cert")
	sp.SetInt("bound", int64(t))
	ok, err := e.cert.CheckAt(e.g, t)
	sp.SetInt("sat_calls", int64(e.cert.Calls))
	sp.End()
	e.stats.CertTime += sp.Duration()
	e.stats.CertCalls = e.cert.Calls
	e.stats.CertCexHits = e.cert.CexHits
	return err == nil && ok
}

// markCertified records the current state as proven at bound t: it becomes
// the rollback anchor and the pending records are cleared.
func (e *engine) markCertified(t uint64) {
	e.lastGood = snapshot{g: e.g.Clone(), iter: e.iter}
	e.pending = e.pending[:0]
	e.certWCE = t
}

// restoreCertified rolls the engine back to the last certified state,
// uncounting everything applied since it.
func (e *engine) restoreCertified() {
	n := len(e.pending)
	e.restore(snapshot{g: e.lastGood.g.Clone(), iter: e.lastGood.iter})
	e.stats.Applied -= n
	e.iter -= n
}

// wceCheckpoint is the amortized certification step of the WCE-constrained
// flow. Flows call it after every accepted LAC; every CertEvery accepted
// LACs (or when forced, before emit) the running circuit is certified at
// the bound. On success the state becomes the new rollback anchor; on
// violation the engine rolls back to the last certified state and replays
// the pending LACs one by one, certifying each, keeping the longest
// certified prefix — and reports true, upon which the flow must stop
// (re-proposing the violating LAC would loop forever: the sampled estimate
// that admitted it cannot see the violating input).
func (e *engine) wceCheckpoint(force bool) bool {
	if e.cert == nil || len(e.pending) == 0 {
		return false
	}
	if !force && len(e.pending) < e.opt.CertEvery {
		return false
	}
	if e.certifyAt(e.opt.WCEBound) {
		e.markCertified(e.opt.WCEBound)
		return false
	}
	e.wceReplay()
	return true
}

// wceReplay is the violation path of wceCheckpoint: back to the last
// certified state, then re-apply the recorded LACs in order with a
// certification after each, stopping at (and undoing) the first violator.
// The cached counterexample that refuted the checkpoint screens the
// replayed candidates by plain simulation, so the replay typically costs
// one extra SAT call, not len(pending).
func (e *engine) wceReplay() {
	e.stats.CertRollbacks++
	recs := make([]pendingLAC, len(e.pending))
	copy(recs, e.pending)
	e.restoreCertified()
	for _, r := range recs {
		l := r.l
		if !e.g.IsAnd(l.Target) || e.g.IsDead(l.NewLit.Var()) {
			continue // consumed by an earlier replayed LAC
		}
		if !l.IsConst() && e.g.InTFO(l.Target, l.NewLit.Var()) {
			continue // earlier rewiring made this substitution cyclic
		}
		e.apply(l)
		if e.certifyAt(e.opt.WCEBound) {
			e.markCertified(e.opt.WCEBound)
			continue
		}
		e.restoreCertified()
		break
	}
}

// finalizeWCE closes out a WCE-constrained run before the final sweep, so
// that the emitted circuit always carries a proven bound. Cancelled or
// deadline-stopped runs do no new SAT work: the uncertified tail is rolled
// back and the last certified state is emitted. Completed runs force a
// final checkpoint, then tighten CertifiedWCE by binary search between the
// sampled maximum (a genuine lower bound on the true worst case) and the
// proven bound — with an unlimited conflict budget the result is the exact
// worst-case error; with a limited one, inconclusive probes keep the
// current proven bound.
func (e *engine) finalizeWCE() {
	if e.cert == nil {
		return
	}
	if e.stats.StopReason == StopCancelled || e.stats.StopReason == StopDeadline {
		if len(e.pending) > 0 {
			e.restoreCertified()
		}
		e.stats.CertifiedWCE = e.certWCE
		return
	}
	if len(e.pending) > 0 {
		e.wceCheckpoint(true)
	}
	lo, hi := uint64(0), e.certWCE
	if sm := e.st.Error(); sm > 0 && hi > 0 {
		lo = uint64(sm)
		if lo > hi {
			lo = hi
		}
	}
	for lo < hi {
		mid := lo + (hi-lo)/2
		if e.certifyAt(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	e.stats.CertifiedWCE = hi
}

// warmStart reports whether the next comprehensive pass may reuse the
// incrementally-maintained analysis state instead of rebuilding cold: the
// dual-phase flow repairs the cuts after every apply (incCuts), the set
// exists and is in sync with the graph — the §III-B cut preservation
// condition held through every change since the last pass — and the A/B
// switch did not force cold passes. A first round (no cuts yet), a
// rollback (cuts dropped), or a cancelled build (set never marked synced)
// all fall back to the cold rebuild.
func (e *engine) warmStart() bool {
	return e.incCuts && !e.opt.NoWarmStart && e.cuts != nil && e.cuts.InSync()
}
