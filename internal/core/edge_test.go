package core

import (
	"testing"

	"dpals/internal/aig"
	"dpals/internal/gen"
	"dpals/internal/lac"
	"dpals/internal/metric"
)

// Determinism: identical options must give byte-identical outcomes.
func TestDeterminism(t *testing.T) {
	g := gen.MultU(6, 6)
	R := metric.ReferenceError(g.NumPOs())
	opt := DefaultOptions(FlowDPSA, metric.MSE, R*R)
	opt.Patterns = 1024
	opt.LACs = lac.Options{Constants: true, SASIMI: true, MaxPerNode: 4}
	r1, err := Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Error != r2.Error || r1.Graph.NumAnds() != r2.Graph.NumAnds() ||
		r1.Stats.Applied != r2.Stats.Applied {
		t.Errorf("nondeterministic: (%v,%d,%d) vs (%v,%d,%d)",
			r1.Error, r1.Graph.NumAnds(), r1.Stats.Applied,
			r2.Error, r2.Graph.NumAnds(), r2.Stats.Applied)
	}
}

// Seeds change the sampled patterns but the bound must hold for each seed
// on its own patterns.
func TestSeedsIndependentlyBounded(t *testing.T) {
	g := gen.MultU(6, 6)
	R := metric.ReferenceError(g.NumPOs())
	for seed := int64(1); seed <= 3; seed++ {
		opt := DefaultOptions(FlowDP, metric.MED, R)
		opt.Patterns = 512
		opt.Seed = seed
		res, err := Run(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		if res.Error > R {
			t.Errorf("seed %d: error %v exceeds bound %v", seed, res.Error, R)
		}
	}
}

// A SASIMI-only configuration (no constant LACs) must work.
func TestSASIMIOnly(t *testing.T) {
	g := gen.MultU(6, 6)
	R := metric.ReferenceError(g.NumPOs())
	opt := DefaultOptions(FlowDPSA, metric.MSE, R*R)
	opt.Patterns = 512
	opt.LACs = lac.Options{SASIMI: true, MaxPerNode: 6}
	res, err := Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Graph.Check(); err != nil {
		t.Fatal(err)
	}
	if res.Error > R*R {
		t.Errorf("error %v over bound", res.Error)
	}
}

// A circuit with constant outputs must not confuse the metric state.
func TestConstantOutputCircuit(t *testing.T) {
	g := aig.New("constout")
	a, b := g.AddPI("a"), g.AddPI("b")
	x := g.And(a, b)
	g.AddPO(x, "y")
	g.AddPO(aig.False, "zero")
	g.AddPO(aig.True, "one")
	opt := DefaultOptions(FlowConventional, metric.ER, 1.0) // everything allowed
	opt.Patterns = 256
	res, err := Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Graph.Check(); err != nil {
		t.Fatal(err)
	}
	// With ER ≤ 1.0 the single AND may be replaced; outputs stay 3.
	if res.Graph.NumPOs() != 3 {
		t.Errorf("PO count changed: %d", res.Graph.NumPOs())
	}
}

// A circuit that is all MFFC (single output chain): replacing the root
// empties the circuit in one step and the flow must stop cleanly.
func TestSingleChainCollapse(t *testing.T) {
	g := aig.New("chain")
	a, b := g.AddPI("a"), g.AddPI("b")
	x := g.And(a, b)
	for i := 0; i < 10; i++ {
		x = g.And(x, a)
	}
	g.AddPO(x, "y")
	opt := DefaultOptions(FlowDP, metric.ER, 1.0)
	opt.Patterns = 128
	res, err := Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.NumAnds() != 0 {
		t.Errorf("chain should collapse fully under ER ≤ 1: %d ands left", res.Graph.NumAnds())
	}
}

// Thresholds between the discrete achievable errors: the flow must stop
// at the last safe point, never overshoot.
func TestTightThresholdNoOvershoot(t *testing.T) {
	g := gen.Adder(8)
	for _, thr := range []float64{1e-6, 1e-3, 0.005} {
		opt := DefaultOptions(FlowDPSA, metric.ER, thr)
		opt.Patterns = 2048
		res, err := Run(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		if res.Error > thr {
			t.Errorf("thr=%v: error %v overshoots", thr, res.Error)
		}
	}
}
