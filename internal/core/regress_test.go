package core

import (
	"testing"

	"dpals/internal/gen"
	"dpals/internal/lac"
	"dpals/internal/metric"
)

// A hand-built Options with zero self-adaption parameters must behave
// exactly like DefaultOptions: the zero values are normalized to the paper
// defaults inside Run (like Patterns), not silently degenerate. Without
// normalization, Et=0 stops phase 2 after the first error increase and
// RInc=0 only ever grows M by +1 — a different (and much weaker) flow.
func TestZeroValueDPSAMatchesDefaults(t *testing.T) {
	g := gen.MultU(7, 7)
	R := metric.ReferenceError(g.NumPOs())
	thr := R * R

	def := DefaultOptions(FlowDPSA, metric.MSE, thr)
	def.Patterns = 1024
	def.Seed = 11

	zero := Options{
		Flow:      FlowDPSA,
		Metric:    metric.MSE,
		Threshold: thr,
		Patterns:  1024,
		Seed:      11,
		Threads:   def.Threads,
		LACs:      lac.Options{Constants: true},
	}

	rd, err := Run(g, def)
	if err != nil {
		t.Fatal(err)
	}
	rz, err := Run(g, zero)
	if err != nil {
		t.Fatal(err)
	}
	// The phase partition is the sharp signal: un-normalized Et=0 stops
	// phase 2 on the first error increase, trading cheap phase-2 iterations
	// for full comprehensive analyses (on the seed: 30+36 instead of 9+57).
	if rz.Error != rd.Error || rz.Stats.Applied != rd.Stats.Applied ||
		rz.Stats.Phase1 != rd.Stats.Phase1 || rz.Stats.Phase2 != rd.Stats.Phase2 ||
		rz.Graph.NumAnds() != rd.Graph.NumAnds() {
		t.Errorf("zero-value DP-SA degenerates: zero {err=%v applied=%d phases=%d+%d ands=%d}, defaults {err=%v applied=%d phases=%d+%d ands=%d}",
			rz.Error, rz.Stats.Applied, rz.Stats.Phase1, rz.Stats.Phase2, rz.Graph.NumAnds(),
			rd.Error, rd.Stats.Applied, rd.Stats.Phase1, rd.Stats.Phase2, rd.Graph.NumAnds())
	}
	// Self-adaption profiles the steps with the deterministic StepWork
	// estimate, so even the tuned M trajectory must match exactly.
	if len(rz.Stats.MTrace) != len(rd.Stats.MTrace) {
		t.Errorf("M traces diverge: zero %v, defaults %v", rz.Stats.MTrace, rd.Stats.MTrace)
	} else {
		for i := range rz.Stats.MTrace {
			if rz.Stats.MTrace[i] != rd.Stats.MTrace[i] {
				t.Errorf("M traces diverge: zero %v, defaults %v", rz.Stats.MTrace, rd.Stats.MTrace)
				break
			}
		}
	}
}

// OnIteration must observe exactly the LACs that survive in the result:
// when an AccALS batch is rolled back, the undone applications must be
// invisible to the callback, and the SEALS fallback must not re-report an
// already-used iteration number. The sequence of reported iteration
// numbers has to be 1, 2, ..., Stats.Applied with no gaps or repeats.
func TestAccALSRollbackIterationNumbering(t *testing.T) {
	g := gen.MultU(6, 6)
	R := metric.ReferenceError(g.NumPOs())
	opt := DefaultOptions(FlowAccALS, metric.MSE, 4*R*R)
	opt.Patterns = 1024
	opt.Seed = 11
	// A vanishing estimate-deviation tolerance forces every multi-LAC batch
	// to roll back to the single-LAC fallback.
	opt.AccTol = 1e-15
	opt.MaxIters = 30

	var iters []int
	opt.OnIteration = func(iter int, chosen lac.NodeBest, bests []lac.NodeBest) {
		iters = append(iters, iter)
	}
	res, err := Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rollbacks == 0 {
		t.Fatal("test did not force a rollback; tighten AccTol or loosen the threshold")
	}
	if len(iters) != res.Stats.Applied {
		t.Errorf("callback fired %d times for %d applied LACs: %v", len(iters), res.Stats.Applied, iters)
	}
	for i, it := range iters {
		if it != i+1 {
			t.Errorf("iteration numbers not gap-free and strictly increasing: %v", iters)
			break
		}
	}
}
