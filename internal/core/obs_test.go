package core

import (
	"bytes"
	"context"
	"io"
	"reflect"
	"testing"
	"time"

	"dpals/internal/aiger"
	"dpals/internal/gen"
	"dpals/internal/lac"
	"dpals/internal/metric"
	"dpals/internal/obs"
)

// normalizeStats strips the wall-clock fields, which legitimately differ
// between runs; everything else must be bit-identical.
func normalizeStats(s Stats) Stats {
	s.Runtime = 0
	s.Step = StepTimes{}
	s.PhaseTime = PhaseTimes{}
	return s
}

// TestTracingDoesNotPerturbResults is the central guarantee of the
// observability layer: attaching a recording tracer, a metrics registry
// and a progress renderer must leave the synthesis result — circuit bytes
// and deterministic Stats — bit-identical to an unobserved run, for every
// flow, every metric, and every thread count.
func TestTracingDoesNotPerturbResults(t *testing.T) {
	g := gen.MultU(5, 5)
	R := metric.ReferenceError(g.NumPOs())

	flows := []struct {
		name  string
		flow  Flow
		tweak func(*Options)
	}{
		{"Conventional", FlowConventional, nil},
		{"VECBEE", FlowVECBEE, func(o *Options) { o.DepthLimit = 3 }},
		{"AccALS", FlowAccALS, func(o *Options) { o.AccTol = 0.5 }},
		{"DP", FlowDP, nil},
		{"DP-SA", FlowDPSA, nil},
	}
	metricCases := []struct {
		name      string
		kind      metric.Kind
		threshold float64
	}{
		{"ER", metric.ER, 0.05},
		{"MSE", metric.MSE, R * R},
		{"MED", metric.MED, R},
		{"MHD", metric.MHD, 0.5},
	}

	for _, fc := range flows {
		for _, mc := range metricCases {
			t.Run(fc.name+"/"+mc.name, func(t *testing.T) {
				run := func(threads int, traced bool) (*Result, []byte) {
					opt := DefaultOptions(fc.flow, mc.kind, mc.threshold)
					opt.Patterns = 512
					opt.Seed = 7
					opt.Threads = threads
					opt.MaxIters = 10
					opt.LACs = lac.Options{Constants: true, SASIMI: true}
					if fc.tweak != nil {
						fc.tweak(&opt)
					}
					ctx := context.Background()
					if traced {
						ctx = obs.WithTracer(ctx, obs.New())
						ctx = obs.WithMetrics(ctx, obs.NewMetrics())
						ctx = obs.WithProgress(ctx, obs.NewProgress(io.Discard, time.Millisecond))
					}
					res, err := RunContext(ctx, g, opt)
					if err != nil {
						t.Fatalf("RunContext(threads=%d traced=%v): %v", threads, traced, err)
					}
					var buf bytes.Buffer
					if err := aiger.Write(&buf, res.Graph); err != nil {
						t.Fatal(err)
					}
					return res, buf.Bytes()
				}

				base, baseAIG := run(1, false)
				want := normalizeStats(base.Stats)
				for _, threads := range []int{1, 4, 0} {
					got, gotAIG := run(threads, true)
					if !bytes.Equal(baseAIG, gotAIG) {
						t.Errorf("threads=%d: traced circuit differs from untraced baseline", threads)
					}
					if got.Error != base.Error {
						t.Errorf("threads=%d: Error %v, want %v", threads, got.Error, base.Error)
					}
					if ns := normalizeStats(got.Stats); !reflect.DeepEqual(ns, want) {
						t.Errorf("threads=%d: Stats diverge\n traced: %+v\n  plain: %+v", threads, ns, want)
					}
				}
			})
		}
	}
}

// sumSpans returns the summed duration of all main-lane spans with one of
// the names. Worker lane spans share their parent step's name and run
// concurrently inside it, so they are excluded from wall-clock sums.
func sumSpans(spans []obs.SpanData, names ...string) time.Duration {
	var total time.Duration
	for _, sp := range spans {
		if sp.Lane != 0 {
			continue
		}
		for _, n := range names {
			if sp.Name == n {
				total += sp.Dur
			}
		}
	}
	return total
}

// TestSpanTreeMatchesStats: the trace and the Stats must be two views of
// the same measurements — per-step span durations sum exactly to
// Stats.Step, per-phase spans exactly to Stats.PhaseTime (single timing
// code path) — and the tree must be well-formed: no dangling parents, no
// spans left open.
func TestSpanTreeMatchesStats(t *testing.T) {
	g := gen.MultU(6, 6)
	R := metric.ReferenceError(g.NumPOs())
	for _, tc := range []struct {
		name string
		flow Flow
	}{
		{"DP-SA", FlowDPSA},
		{"Conventional", FlowConventional},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opt := DefaultOptions(tc.flow, metric.MSE, R*R)
			opt.Patterns = 512
			opt.Seed = 3
			opt.Threads = 4
			opt.MaxIters = 15
			tr := obs.New()
			res, err := RunContext(obs.WithTracer(context.Background(), tr), g, opt)
			if err != nil {
				t.Fatal(err)
			}
			spans := tr.Snapshot()
			if len(spans) == 0 {
				t.Fatal("no spans recorded")
			}

			ids := map[uint64]bool{}
			roots := 0
			for _, sp := range spans {
				if sp.Open {
					t.Errorf("span %q left open after the run", sp.Name)
				}
				ids[sp.ID] = true
				if sp.Parent == 0 {
					roots++
					if sp.Name != "run" {
						t.Errorf("root span named %q, want run", sp.Name)
					}
				}
			}
			if roots != 1 {
				t.Fatalf("%d root spans, want 1", roots)
			}
			for _, sp := range spans {
				if sp.Parent != 0 && !ids[sp.Parent] {
					t.Errorf("span %q has dangling parent %d", sp.Name, sp.Parent)
				}
			}

			// Exact, not approximate: Stats.Step and Stats.PhaseTime are
			// accumulated from these same span durations.
			if got, want := sumSpans(spans, "cuts", "cuts.update", "cuts.warm"), res.Stats.Step.Cuts; got != want {
				t.Errorf("cut spans sum %v, Stats.Step.Cuts %v", got, want)
			}
			if got, want := sumSpans(spans, "cpm", "cpm.warm"), res.Stats.Step.CPM; got != want {
				t.Errorf("cpm spans sum %v, Stats.Step.CPM %v", got, want)
			}
			if got, want := sumSpans(spans, "eval"), res.Stats.Step.Eval; got != want {
				t.Errorf("eval spans sum %v, Stats.Step.Eval %v", got, want)
			}
			if got, want := sumSpans(spans, "phase1"), res.Stats.PhaseTime.Phase1; got != want {
				t.Errorf("phase1 spans sum %v, Stats.PhaseTime.Phase1 %v", got, want)
			}
			if got, want := sumSpans(spans, "phase2"), res.Stats.PhaseTime.Phase2; got != want {
				t.Errorf("phase2 spans sum %v, Stats.PhaseTime.Phase2 %v", got, want)
			}
			if res.Stats.PhaseTime.Phase1 == 0 {
				t.Error("PhaseTime.Phase1 is zero on a completed run")
			}
			if tc.flow == FlowDPSA && res.Stats.Phase2 > 0 && res.Stats.PhaseTime.Phase2 == 0 {
				t.Error("PhaseTime.Phase2 is zero despite phase-2 iterations")
			}

			// Worker lane spans from the parallel pipeline appear under
			// recorded steps and are all closed (covered above); at
			// Threads=4 at least one should exist.
			lanes := 0
			for _, sp := range spans {
				if sp.Lane > 0 {
					lanes++
				}
			}
			if lanes == 0 {
				t.Error("no worker lane spans recorded at Threads=4")
			}
		})
	}
}

// TestUntracedRunStillTimesSteps: without any tracer the engine must still
// produce non-zero Step and PhaseTime figures via the no-op tracer's
// timestamps — the one-code-path property that fixed the -stats drift.
func TestUntracedRunStillTimesSteps(t *testing.T) {
	g := gen.MultU(6, 6)
	R := metric.ReferenceError(g.NumPOs())
	opt := DefaultOptions(FlowDPSA, metric.MSE, R*R)
	opt.Patterns = 512
	opt.MaxIters = 10
	res, err := Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Step.Total() == 0 {
		t.Error("Step times all zero on an untraced run")
	}
	if res.Stats.PhaseTime.Total() == 0 {
		t.Error("PhaseTime zero on an untraced run")
	}
	if res.Stats.PhaseTime.Phase1 == 0 {
		t.Error("PhaseTime.Phase1 zero on an untraced run")
	}
}
