package core

import (
	"math"
	"testing"

	"dpals/internal/aig"
	"dpals/internal/bitvec"
	"dpals/internal/gen"
	"dpals/internal/lac"
	"dpals/internal/metric"
	"dpals/internal/sim"
)

// measure computes the metric between orig and approx from scratch on the
// given patterns — the independent end-to-end check for every flow.
func measure(t *testing.T, orig, approx *aig.Graph, kind metric.Kind, weights metric.Weights, patterns int, seed int64) float64 {
	t.Helper()
	so := sim.New(orig, sim.Options{Patterns: patterns, Seed: seed})
	sa := sim.New(approx, sim.Options{Patterns: patterns, Seed: seed})
	if orig.NumPOs() != approx.NumPOs() || orig.NumPIs() != approx.NumPIs() {
		t.Fatal("interface mismatch between original and approximate circuit")
	}
	eo := make([]bitvec.Vec, orig.NumPOs())
	ea := make([]bitvec.Vec, orig.NumPOs())
	for o := range eo {
		eo[o] = bitvec.NewWords(so.Words())
		so.POVal(o, eo[o])
		ea[o] = bitvec.NewWords(sa.Words())
		sa.POVal(o, ea[o])
	}
	if weights == nil && kind != metric.ER {
		weights = metric.UnsignedWeights(orig.NumPOs())
	}
	return metric.Compute(kind, weights, eo, ea, so.Patterns())
}

func runFlow(t *testing.T, g *aig.Graph, flow Flow, kind metric.Kind, thr float64, tweak func(*Options)) *Result {
	t.Helper()
	opt := DefaultOptions(flow, kind, thr)
	opt.Patterns = 1024
	opt.Seed = 11
	if tweak != nil {
		tweak(&opt)
	}
	res, err := Run(g, opt)
	if err != nil {
		t.Fatalf("%v/%v: %v", flow, kind, err)
	}
	if err := res.Graph.Check(); err != nil {
		t.Fatalf("%v/%v: result graph invalid: %v", flow, kind, err)
	}
	// The reported error must match an independent from-scratch measurement
	// on the same patterns.
	real := measure(t, g, res.Graph, kind, opt.Weights, 1024, 11)
	if math.Abs(real-res.Error) > 1e-9*(1+math.Abs(real)) {
		t.Fatalf("%v/%v: reported error %v but independent measurement %v", flow, kind, res.Error, real)
	}
	if res.Error > thr+1e-12 {
		t.Fatalf("%v/%v: error %v exceeds threshold %v", flow, kind, res.Error, thr)
	}
	return res
}

func TestAllFlowsRespectBoundMSE(t *testing.T) {
	g := gen.MultU(6, 6)
	R := metric.ReferenceError(g.NumPOs())
	thr := R * R
	for _, flow := range []Flow{FlowConventional, FlowVECBEE, FlowAccALS, FlowDP, FlowDPSA} {
		flow := flow
		res := runFlow(t, g, flow, metric.MSE, thr, func(o *Options) {
			if flow == FlowVECBEE {
				o.DepthLimit = 0
			}
		})
		if res.Stats.Applied == 0 {
			t.Errorf("%v: no LAC applied at threshold %v", flow, thr)
		}
		if res.Graph.NumAnds() >= g.Sweep().NumAnds() && res.Stats.Applied > 0 {
			t.Errorf("%v: applied %d LACs but no area reduction (%d vs %d)",
				flow, res.Stats.Applied, res.Graph.NumAnds(), g.Sweep().NumAnds())
		}
		t.Logf("%-12v applied=%3d ands %4d→%4d err=%.4g", flow, res.Stats.Applied,
			res.Stats.NodesBefore, res.Graph.NumAnds(), res.Error)
	}
}

func TestAllFlowsRespectBoundER(t *testing.T) {
	g := gen.MultU(6, 6)
	for _, flow := range []Flow{FlowConventional, FlowDP, FlowDPSA, FlowAccALS} {
		res := runFlow(t, g, flow, metric.ER, 0.05, func(o *Options) {
			o.LACs = lac.Options{Constants: true, SASIMI: true, MaxPerNode: 4}
		})
		if res.Stats.Applied == 0 {
			t.Errorf("%v: applied no LACs under 5%% ER with SASIMI", flow)
		}
		t.Logf("%-12v applied=%3d err=%.4g", flow, res.Stats.Applied, res.Error)
	}
}

func TestAllFlowsRespectBoundMED(t *testing.T) {
	g := gen.MultS(5, 5)
	w := metric.TwosComplementWeights(g.NumPOs())
	R := metric.ReferenceError(g.NumPOs())
	for _, flow := range []Flow{FlowConventional, FlowDP, FlowDPSA} {
		res := runFlow(t, g, flow, metric.MED, R, func(o *Options) {
			o.Weights = w
			o.LACs = lac.Options{Constants: true, SASIMI: true, MaxPerNode: 4}
		})
		t.Logf("%-12v applied=%3d err=%.4g (R=%.4g)", flow, res.Stats.Applied, res.Error, R)
	}
}

func TestVECBEEDepth1RunsAndRespectsBound(t *testing.T) {
	g := gen.MultU(5, 5)
	R := metric.ReferenceError(g.NumPOs())
	res := runFlow(t, g, FlowVECBEE, metric.MSE, R*R, func(o *Options) { o.DepthLimit = 1 })
	t.Logf("VECBEE(l=1) applied=%d err=%.4g rollbacks=%d", res.Stats.Applied, res.Error, res.Stats.Rollbacks)
}

// DP must achieve quality comparable to the conventional flow: same error
// bound, and a final size within a modest factor.
func TestDPQualityMatchesConventional(t *testing.T) {
	g := gen.MultU(7, 7)
	R := metric.ReferenceError(g.NumPOs())
	thr := R * R
	conv := runFlow(t, g, FlowConventional, metric.MSE, thr, nil)
	dp := runFlow(t, g, FlowDP, metric.MSE, thr, nil)
	if conv.Stats.Applied == 0 {
		t.Skip("conventional applied nothing; threshold too tight for this seed")
	}
	ratio := float64(dp.Graph.NumAnds()) / float64(conv.Graph.NumAnds())
	t.Logf("conventional: %d ands (%d LACs); DP: %d ands (%d LACs, %d phase-2); ratio %.3f",
		conv.Graph.NumAnds(), conv.Stats.Applied, dp.Graph.NumAnds(), dp.Stats.Applied, dp.Stats.Phase2, ratio)
	if ratio > 1.10 {
		t.Errorf("DP quality degraded: %.3f× conventional size", ratio)
	}
	if dp.Stats.Phase2 == 0 {
		t.Error("DP applied no phase-2 LACs — incremental path untested")
	}
	// The acceleration claim: DP must do far fewer comprehensive passes.
	if dp.Stats.Phase1 >= conv.Stats.Phase1 {
		t.Errorf("DP ran %d comprehensive passes, conventional %d", dp.Stats.Phase1, conv.Stats.Phase1)
	}
}

func TestDPSASelfAdaption(t *testing.T) {
	g := gen.MultU(7, 7)
	R := metric.ReferenceError(g.NumPOs())
	res := runFlow(t, g, FlowDPSA, metric.MSE, R*R, func(o *Options) {
		o.LACs = lac.Options{Constants: true, SASIMI: true, MaxPerNode: 8}
	})
	if len(res.Stats.MTrace) == 0 {
		t.Error("DP-SA recorded no self-adaption trace")
	}
	t.Logf("DP-SA M trace: %v", res.Stats.MTrace)
}

func TestOnIterationCallback(t *testing.T) {
	g := gen.Adder(10)
	var iters []int
	opt := DefaultOptions(FlowConventional, metric.ER, 0.05)
	opt.Patterns = 512
	opt.OnIteration = func(iter int, chosen lac.NodeBest, bests []lac.NodeBest) {
		iters = append(iters, iter)
		if len(bests) == 0 {
			t.Error("callback with empty bests")
		}
		if chosen.Best.Err > 0.05 {
			t.Errorf("callback chosen err %v exceeds bound", chosen.Best.Err)
		}
	}
	res, err := Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(iters) != res.Stats.Applied {
		t.Errorf("callback fired %d times, %d LACs applied", len(iters), res.Stats.Applied)
	}
	for i := range iters {
		if iters[i] != i+1 {
			t.Errorf("iteration numbering wrong: %v", iters)
			break
		}
	}
}

func TestZeroThresholdAppliesNothingHarmful(t *testing.T) {
	g := gen.MultU(4, 4)
	res := runFlow(t, g, FlowConventional, metric.ER, 0, nil)
	if res.Error != 0 {
		t.Errorf("zero threshold produced error %v", res.Error)
	}
}

func TestMaxItersCap(t *testing.T) {
	g := gen.MultU(6, 6)
	R := metric.ReferenceError(g.NumPOs())
	res := runFlow(t, g, FlowDP, metric.MSE, R*R*4, func(o *Options) { o.MaxIters = 5 })
	if res.Stats.Applied > 5 {
		t.Errorf("MaxIters=5 but %d LACs applied", res.Stats.Applied)
	}
}

func TestErrorsOnBadOptions(t *testing.T) {
	g := gen.Adder(4)
	if _, err := Run(g, Options{Flow: FlowDP, Metric: metric.ER, Threshold: -1, LACs: lac.Options{Constants: true}}); err == nil {
		t.Error("negative threshold accepted")
	}
	if _, err := Run(g, Options{Flow: FlowDP, Metric: metric.ER, Threshold: 0.1}); err == nil {
		t.Error("no LAC kinds accepted")
	}
	empty := aig.New("empty")
	empty.AddPO(empty.AddPI("a"), "o")
	if _, err := Run(empty, DefaultOptions(FlowDP, metric.ER, 0.1)); err == nil {
		t.Error("AND-free circuit accepted")
	}
}

// SASIMI LACs on the signed multiplier with MED: the classic ALS showcase.
func TestSASIMISignedMultiplierMED(t *testing.T) {
	g := gen.MultS(6, 5)
	w := metric.TwosComplementWeights(g.NumPOs())
	R := metric.ReferenceError(g.NumPOs())
	res := runFlow(t, g, FlowDPSA, metric.MED, 2*R, func(o *Options) {
		o.Weights = w
		o.LACs = lac.Options{Constants: true, SASIMI: true, MaxPerNode: 6}
	})
	before := g.Sweep().NumAnds()
	t.Logf("sm6x5 MED≤%.3g: %d→%d ands (%.1f%%), %d LACs", 2*R, before, res.Graph.NumAnds(),
		100*float64(res.Graph.NumAnds())/float64(before), res.Stats.Applied)
	if res.Graph.NumAnds() >= before {
		t.Error("no area reduction on the showcase circuit")
	}
}
