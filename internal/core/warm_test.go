package core

import (
	"bytes"
	"context"
	"runtime"
	"testing"

	"dpals/internal/aiger"
	"dpals/internal/gen"
	"dpals/internal/lac"
	"dpals/internal/metric"
	"dpals/internal/obs"
)

// aagBytes serialises a result graph so two runs can be compared for
// bit-identity, not just size.
func aagBytes(t *testing.T, res *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := aiger.Write(&buf, res.Graph); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestWarmComprehensiveMatchesCold is the differential contract of the
// cross-round phase-1 reuse: a dual-phase run with warm starts enabled must
// be bit-identical to the same run with Options.NoWarmStart — same circuit,
// same error, same trajectory, and (because reused work is charged at its
// recorded cold-equivalent cost) the same deterministic Work profile that
// DP-SA's self-adaption tunes from, at every thread count. Small M forces
// several rounds so the warm path actually runs; SASIMI LACs are enabled so
// the candidate space includes the fanout-growing substitutions whose cut
// repairs are the hardest to keep in sync.
func TestWarmComprehensiveMatchesCold(t *testing.T) {
	g := gen.MultU(6, 6)
	R := metric.ReferenceError(g.NumPOs())
	flows := []struct {
		name string
		flow Flow
	}{
		{"DP", FlowDP},
		{"DP-SA", FlowDPSA},
	}
	threadCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, tc := range flows {
		t.Run(tc.name, func(t *testing.T) {
			for _, threads := range threadCounts {
				run := func(noWarm bool) *Result {
					opt := DefaultOptions(tc.flow, metric.MSE, R*R)
					opt.Patterns = 1024
					opt.Seed = 7
					opt.Threads = threads
					opt.MaxIters = 25
					opt.M = 8 // several dual-phase rounds within MaxIters
					opt.LACs = lac.Options{Constants: true, SASIMI: true}
					opt.NoWarmStart = noWarm
					res, err := Run(g, opt)
					if err != nil {
						t.Fatalf("Run(threads=%d, noWarm=%v): %v", threads, noWarm, err)
					}
					return res
				}
				warm := run(false)
				cold := run(true)
				if warm.Stats.Phase1Warm == 0 {
					t.Fatalf("threads=%d: no warm-started pass in %d comprehensive passes; the differential is vacuous",
						threads, warm.Stats.Phase1)
				}
				if cold.Stats.Phase1Warm != 0 {
					t.Errorf("threads=%d: NoWarmStart run reports %d warm passes", threads, cold.Stats.Phase1Warm)
				}
				if warm.Error != cold.Error {
					t.Errorf("threads=%d: Error warm %v, cold %v", threads, warm.Error, cold.Error)
				}
				if warm.Stats.Applied != cold.Stats.Applied ||
					warm.Stats.Phase1 != cold.Stats.Phase1 ||
					warm.Stats.Phase2 != cold.Stats.Phase2 {
					t.Errorf("threads=%d: trajectory warm %d/%d/%d, cold %d/%d/%d", threads,
						warm.Stats.Applied, warm.Stats.Phase1, warm.Stats.Phase2,
						cold.Stats.Applied, cold.Stats.Phase1, cold.Stats.Phase2)
				}
				if warm.Stats.StopReason != cold.Stats.StopReason {
					t.Errorf("threads=%d: StopReason warm %q, cold %q", threads, warm.Stats.StopReason, cold.Stats.StopReason)
				}
				// The charged cold-equivalent work: the fields DP-SA's
				// self-adaption profiles must be invariant under reuse. The
				// *Skipped/memo counters legitimately differ (zero cold).
				if warm.Stats.Work.Cuts != cold.Stats.Work.Cuts ||
					warm.Stats.Work.CPM != cold.Stats.Work.CPM ||
					warm.Stats.Work.Eval != cold.Stats.Work.Eval {
					t.Errorf("threads=%d: charged work warm %d/%d/%d, cold %d/%d/%d", threads,
						warm.Stats.Work.Cuts, warm.Stats.Work.CPM, warm.Stats.Work.Eval,
						cold.Stats.Work.Cuts, cold.Stats.Work.CPM, cold.Stats.Work.Eval)
				}
				if tc.flow == FlowDPSA {
					wm, cm := warm.Stats.MTrace, cold.Stats.MTrace
					if len(wm) != len(cm) {
						t.Fatalf("threads=%d: MTrace length warm %d, cold %d", threads, len(wm), len(cm))
					}
					for i := range wm {
						if wm[i] != cm[i] {
							t.Errorf("threads=%d: MTrace[%d] warm %d, cold %d", threads, i, wm[i], cm[i])
						}
					}
				}
				if !bytes.Equal(aagBytes(t, warm), aagBytes(t, cold)) {
					t.Errorf("threads=%d: result circuits differ", threads)
				}
			}
		})
	}
}

// TestWarmReuseReportsNonzeroCounters pins the observability side of the
// reuse: a multi-round dual-phase run must reuse CPM rows in its warm
// phase-1 passes and report the skipped work it charged.
func TestWarmReuseReportsNonzeroCounters(t *testing.T) {
	g := gen.MultU(6, 6)
	R := metric.ReferenceError(g.NumPOs())
	opt := DefaultOptions(FlowDPSA, metric.MSE, R*R)
	opt.Patterns = 1024
	opt.Seed = 7
	opt.MaxIters = 25
	opt.M = 8
	opt.LACs = lac.Options{Constants: true, SASIMI: true}
	res, err := Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	w := res.Stats.Work
	if res.Stats.Phase1Warm == 0 {
		t.Fatal("no warm pass; M too large for the iteration budget?")
	}
	if w.CPMRowsReusedPhase1 == 0 {
		t.Error("warm passes reused no CPM rows")
	}
	if w.CutsSkipped == 0 || w.CPMSkipped == 0 {
		t.Errorf("no skipped work charged: cuts %d, cpm %d", w.CutsSkipped, w.CPMSkipped)
	}
	if r := w.Phase1ReuseRate(); r <= 0 || r > 1 {
		t.Errorf("Phase1ReuseRate = %v, want in (0,1]", r)
	}
	if res.Stats.PhaseTime.Phase1Warm <= 0 {
		t.Error("PhaseTime.Phase1Warm not recorded")
	}
	if res.Stats.PhaseTime.Phase1Warm > res.Stats.PhaseTime.Phase1 {
		t.Errorf("Phase1Warm time %v exceeds total Phase1 time %v",
			res.Stats.PhaseTime.Phase1Warm, res.Stats.PhaseTime.Phase1)
	}
}

// TestComprehensiveCancelKeepsPreviousCuts is the regression test for the
// half-built-cut-set bug: a comprehensive pass whose cut construction is
// cancelled must leave e.cuts exactly as it found it — nil on a fresh
// engine, or the previous complete set — never a partially built one that a
// later warm start or phase-2 closure would trust.
func TestComprehensiveCancelKeepsPreviousCuts(t *testing.T) {
	g := gen.MultU(6, 6)
	R := metric.ReferenceError(g.NumPOs())
	opt := DefaultOptions(FlowDPSA, metric.MSE, R*R)
	opt.Patterns = 512
	opt.Seed = 3
	mk := func() (*engine, context.CancelFunc) {
		e, err := newEngine(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		run := obs.FromContext(ctx).Start("run")
		e.ctx = ctx
		e.root, e.cur = run, run
		e.incCuts = true
		return e, cancel
	}

	// Fresh engine, pre-cancelled context: no cuts may appear.
	e, cancel := mk()
	cancel()
	if bests := e.comprehensive(e.root); bests != nil {
		t.Fatalf("cancelled pass returned %d bests", len(bests))
	}
	if e.cuts != nil {
		t.Fatal("cancelled first pass stored a (half-built) cut set")
	}

	// Established engine: a complete pass, an applied LAC keeping the set in
	// sync, then a cancelled pass — the previous set must survive untouched
	// and still count as warm for the next attempt.
	e, cancel = mk()
	bests := e.comprehensive(e.root)
	if len(bests) == 0 {
		t.Fatal("no candidates on the seed circuit")
	}
	e.apply(bests[0].Best.LAC)
	prev := e.cuts
	if prev == nil || !prev.InSync() {
		t.Fatal("setup: expected a complete, in-sync cut set after apply")
	}
	e.opt.NoWarmStart = true // force the cold path, where the bug lived
	cancel()
	if bests := e.comprehensive(e.root); bests != nil {
		t.Fatalf("cancelled pass returned %d bests", len(bests))
	}
	if e.cuts != prev {
		t.Fatal("cancelled rebuild replaced the previous complete cut set")
	}
	if !e.cuts.InSync() {
		t.Fatal("previous set lost sync without any graph change")
	}
}

// TestRollbackThenComprehensiveRebuildsCold: restore() drops the analysis
// state, so the pass after a rollback must run cold and produce the same
// evaluation a fresh engine over the same circuit produces.
func TestRollbackThenComprehensiveRebuildsCold(t *testing.T) {
	g := gen.MultU(6, 6)
	R := metric.ReferenceError(g.NumPOs())
	opt := DefaultOptions(FlowDPSA, metric.MSE, R*R)
	opt.Patterns = 512
	opt.Seed = 3
	e, err := newEngine(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	run := obs.FromContext(context.Background()).Start("run")
	e.ctx = context.Background()
	e.root, e.cur = run, run
	e.incCuts = true
	e.memo = lac.NewMemo(e.g.NumVars())

	ref := e.comprehensive(e.root)
	if len(ref) == 0 {
		t.Fatal("no candidates on the seed circuit")
	}
	sn := e.snapshot()
	e.apply(ref[0].Best.LAC)
	if !e.warmStart() {
		t.Fatal("setup: engine not warm after an in-sync apply")
	}
	e.restore(sn)
	if e.warmStart() {
		t.Fatal("rollback left the engine claiming a warm start")
	}
	warmAfter := e.stats.Phase1Warm
	again := e.comprehensive(e.root)
	if e.stats.Phase1Warm != warmAfter {
		t.Fatal("pass after rollback counted as warm")
	}
	if len(again) != len(ref) {
		t.Fatalf("post-rollback pass found %d bests, fresh pass found %d", len(again), len(ref))
	}
	for i := range ref {
		if again[i].Node != ref[i].Node || again[i].Best.Err != ref[i].Best.Err {
			t.Fatalf("best[%d]: post-rollback {%d %v}, fresh {%d %v}",
				i, again[i].Node, again[i].Best.Err, ref[i].Node, ref[i].Best.Err)
		}
	}
}
