package core

import (
	"testing"

	"dpals/internal/equiv"
	"dpals/internal/gen"
	"dpals/internal/metric"
)

func wceOptions(flow Flow, bound uint64) Options {
	opt := DefaultOptions(flow, metric.WCE, float64(bound))
	opt.WCEBound = bound
	opt.Patterns = 512
	opt.Threads = 1
	opt.MaxIters = 20
	return opt
}

func TestWCERejectsBadOptions(t *testing.T) {
	g := gen.Adder(4)

	opt := wceOptions(FlowDP, 3)
	opt.Weights = metric.UnsignedWeights(g.NumPOs())
	if _, err := Run(g, opt); err == nil {
		t.Error("explicit weights accepted on the WCE path")
	}

	wide := gen.Adder(63) // 64 POs
	if _, err := Run(wide, wceOptions(FlowDP, 3)); err == nil {
		t.Error("a 64-output circuit accepted on the WCE path")
	}

	med := DefaultOptions(FlowDP, metric.MED, 2)
	med.WCEBound = 3
	if _, err := Run(gen.Adder(4), med); err == nil {
		t.Error("WCEBound accepted for a non-WCE metric")
	}
}

// Every flow under the WCE metric must emit a circuit whose worst case —
// proven by an independent SAT query, not the engine's own certifier — is
// within the requested bound, with a consistent certificate in Stats.
func TestWCEAllFlowsCertifiedWithinBound(t *testing.T) {
	g := gen.MultU(4, 3)
	const bound = 6
	for _, flow := range []Flow{FlowConventional, FlowVECBEE, FlowAccALS, FlowDP, FlowDPSA} {
		res, err := Run(g, wceOptions(flow, bound))
		if err != nil {
			t.Fatalf("%v: %v", flow, err)
		}
		if res.Stats.CertifiedWCE > bound {
			t.Errorf("%v: certified WCE %d exceeds bound %d", flow, res.Stats.CertifiedWCE, bound)
		}
		if res.Stats.Applied > 0 && res.Stats.CertCalls == 0 {
			t.Errorf("%v: applied %d LACs with zero certification calls", flow, res.Stats.Applied)
		}
		ok, cex, err := equiv.WCEAtMost(g, res.Graph, res.Stats.CertifiedWCE)
		if err != nil {
			t.Fatalf("%v: recheck: %v", flow, err)
		}
		if !ok {
			t.Errorf("%v: independent SAT query refutes the certificate %d (cex %v)",
				flow, res.Stats.CertifiedWCE, cex)
		}
	}
}

// CertEvery only moves the amortisation points, never the soundness: with
// per-LAC certification (CertEvery 1) and with the default batching the
// certificate must hold either way, and per-LAC certification can never
// certify less than it applied.
func TestWCECertEveryAmortisation(t *testing.T) {
	g := gen.MultU(4, 3)
	for _, every := range []int{1, 3, 8} {
		opt := wceOptions(FlowDP, 6)
		opt.CertEvery = every
		res, err := Run(g, opt)
		if err != nil {
			t.Fatalf("CertEvery %d: %v", every, err)
		}
		ok, _, err := equiv.WCEAtMost(g, res.Graph, res.Stats.CertifiedWCE)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("CertEvery %d: unsound certificate %d", every, res.Stats.CertifiedWCE)
		}
		if every == 1 && res.Stats.Applied > 0 && res.Stats.CertCalls < res.Stats.Applied {
			t.Errorf("CertEvery 1: %d applied but only %d certification calls",
				res.Stats.Applied, res.Stats.CertCalls)
		}
	}
}
