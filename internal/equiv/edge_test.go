package equiv

import (
	"testing"

	"dpals/internal/aig"
)

// mkGraph builds a graph whose POs are the literals build returns,
// exercising the WCE machinery on hand-crafted edge shapes.
func mkGraph(name string, pis int, build func(g *aig.Graph, in []aig.Lit) []aig.Lit) *aig.Graph {
	g := aig.New(name)
	in := make([]aig.Lit, pis)
	for i := range in {
		in[i] = g.AddPI("x" + string(rune('0'+i)))
	}
	for o, l := range build(g, in) {
		g.AddPO(l, "y"+string(rune('0'+o)))
	}
	return g
}

// TestWCEConstantOutputs: circuits whose outputs are constants stress the
// miter's subtractor with degenerate words.
func TestWCEConstantOutputs(t *testing.T) {
	// orig ≡ 0b11 (=3), approx ≡ 0b00 (=0): WCE is exactly 3.
	orig := mkGraph("const3", 1, func(g *aig.Graph, in []aig.Lit) []aig.Lit {
		return []aig.Lit{aig.False.Not(), aig.False.Not()}
	})
	approx := mkGraph("const0", 1, func(g *aig.Graph, in []aig.Lit) []aig.Lit {
		return []aig.Lit{aig.False, aig.False}
	})
	wce, err := WorstCaseError(orig, approx)
	if err != nil {
		t.Fatal(err)
	}
	if wce != 3 {
		t.Errorf("constant 3 vs constant 0: WCE %d, want 3", wce)
	}
	for t0 := uint64(0); t0 <= 4; t0++ {
		ok, cex, err := WCEAtMost(orig, approx, t0)
		if err != nil {
			t.Fatal(err)
		}
		if want := t0 >= 3; ok != want {
			t.Errorf("WCEAtMost(const3, const0, %d) = %v, want %v (cex %v)", t0, ok, want, cex)
		}
	}
}

// TestWCEComplementedOutputEdges: POs that read a node through a
// complemented edge must not confuse the miter's literal conversion.
func TestWCEComplementedOutputEdges(t *testing.T) {
	// orig: y0 = a∧b, y1 = ¬(a∧b); approx: both complemented.
	orig := mkGraph("pos", 2, func(g *aig.Graph, in []aig.Lit) []aig.Lit {
		n := g.And(in[0], in[1])
		return []aig.Lit{n, n.Not()}
	})
	approx := mkGraph("neg", 2, func(g *aig.Graph, in []aig.Lit) []aig.Lit {
		n := g.And(in[0], in[1])
		return []aig.Lit{n.Not(), n}
	})
	// orig value ∈ {2 (ab=0), 1 (ab=1)}; approx is the bit-swap: {1, 2}.
	// |diff| = 1 on every input.
	wce, err := WorstCaseError(orig, approx)
	if err != nil {
		t.Fatal(err)
	}
	if wce != 1 {
		t.Errorf("complemented-edge pair: WCE %d, want 1", wce)
	}
	// A circuit is WCE-0 against itself even with complemented PO edges.
	self, err := WorstCaseError(orig, orig.Sweep())
	if err != nil {
		t.Fatal(err)
	}
	if self != 0 {
		t.Errorf("self WCE %d, want 0", self)
	}
}

// TestWCESingleOutput: one-output circuits make |diff| ∈ {0,1} and the
// binary search range [0,1].
func TestWCESingleOutput(t *testing.T) {
	orig := mkGraph("and", 2, func(g *aig.Graph, in []aig.Lit) []aig.Lit {
		return []aig.Lit{g.And(in[0], in[1])}
	})
	approx := mkGraph("zero", 2, func(g *aig.Graph, in []aig.Lit) []aig.Lit {
		return []aig.Lit{aig.False}
	})
	wce, err := WorstCaseError(orig, approx)
	if err != nil {
		t.Fatal(err)
	}
	if wce != 1 {
		t.Errorf("AND vs 0: WCE %d, want 1", wce)
	}
	ok, _, err := WCEAtMost(orig, approx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("WCEAtMost(…, 0) certified a circuit with WCE 1")
	}
	// Equal single-output circuits certify at threshold 0.
	ok, _, err = WCEAtMost(orig, orig.Sweep(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("identical single-output circuits not certified at t=0")
	}
}

// TestWCEAtMostLargeThreshold is the regression test for the threshold
// truncation bug: the miter encodes t in a K-bit word (K = number of
// outputs), so t ≥ 2^K used to wrap around mod 2^K and report a spurious
// violation — e.g. K=2, t=4 compared against threshold 0. Any t at or
// above the maximum possible |diff| = 2^K − 1 must certify trivially.
func TestWCEAtMostLargeThreshold(t *testing.T) {
	orig := mkGraph("const3", 1, func(g *aig.Graph, in []aig.Lit) []aig.Lit {
		return []aig.Lit{aig.False.Not(), aig.False.Not()}
	})
	approx := mkGraph("const0", 1, func(g *aig.Graph, in []aig.Lit) []aig.Lit {
		return []aig.Lit{aig.False, aig.False}
	})
	for _, thr := range []uint64{3, 4, 5, 100, 1 << 40} {
		ok, cex, err := WCEAtMost(orig, approx, thr)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("WCEAtMost(const3, const0, %d) = false (cex %v); |diff| can never exceed 3", thr, cex)
		}
	}
}

// TestWCEIdenticalConstantCircuits: both sides constant and equal — the
// miter must be unsatisfiable at every threshold including 0.
func TestWCEIdenticalConstantCircuits(t *testing.T) {
	c := mkGraph("const2", 1, func(g *aig.Graph, in []aig.Lit) []aig.Lit {
		return []aig.Lit{aig.False, aig.False.Not()}
	})
	wce, err := WorstCaseError(c, c.Sweep())
	if err != nil {
		t.Fatal(err)
	}
	if wce != 0 {
		t.Errorf("identical constant circuits: WCE %d, want 0", wce)
	}
}
