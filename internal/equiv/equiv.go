// Package equiv provides formal (SAT-based) checks on synthesis results:
// combinational equivalence of two circuits, and worst-case-error
// certification of an approximate circuit — "for every input, the numeric
// output deviation is at most T" — via a miter construction and the CDCL
// solver in package sat. Monte-Carlo metrics (package metric) bound the
// average case; these checks bound the worst case, completing the
// verification story an approximate-synthesis release needs.
package equiv

import (
	"errors"
	"fmt"

	"dpals/internal/aig"
	"dpals/internal/gen"
	"dpals/internal/sat"
)

// tseitin encodes graph g into s. piVars[i] is the solver variable of the
// i-th primary input; the returned slice holds one solver literal per
// primary output.
func tseitin(s *sat.Solver, g *aig.Graph, piVars []int) []sat.Lit {
	lits := make([]sat.Lit, g.NumVars())
	// Constant false: a dedicated variable forced to 0.
	cf := s.NewVar()
	s.AddClause(sat.MkLit(cf, true))
	lits[0] = sat.MkLit(cf, false)
	for i, v := range g.PIs() {
		lits[v] = sat.MkLit(piVars[i], false)
	}
	conv := func(l aig.Lit) sat.Lit {
		out := lits[l.Var()]
		if l.IsCompl() {
			out = out.Not()
		}
		return out
	}
	for _, v := range g.Topo() {
		if g.Type(v) != aig.TypeAnd {
			continue
		}
		f0, f1 := g.Fanins(v)
		a, b := conv(f0), conv(f1)
		y := s.NewVar()
		yl := sat.MkLit(y, false)
		// y ↔ a∧b
		s.AddClause(yl.Not(), a)
		s.AddClause(yl.Not(), b)
		s.AddClause(yl, a.Not(), b.Not())
		lits[v] = yl
	}
	outs := make([]sat.Lit, g.NumPOs())
	for o, po := range g.POs() {
		outs[o] = conv(po)
	}
	return outs
}

// Equivalent checks combinational equivalence of a and b (identical PI/PO
// interfaces). On inequivalence it returns a counterexample input
// assignment (indexed like the PIs).
func Equivalent(a, b *aig.Graph) (bool, []bool, error) {
	if a.NumPIs() != b.NumPIs() || a.NumPOs() != b.NumPOs() {
		return false, nil, errors.New("equiv: interface mismatch")
	}
	s := sat.New()
	piVars := make([]int, a.NumPIs())
	for i := range piVars {
		piVars[i] = s.NewVar()
	}
	oa := tseitin(s, a, piVars)
	ob := tseitin(s, b, piVars)
	// Miter: OR of output XORs must be satisfiable for inequivalence.
	var diffs []sat.Lit
	for o := range oa {
		x := s.NewVar()
		xl := sat.MkLit(x, false)
		// x ↔ (oa ⊕ ob)
		s.AddClause(xl.Not(), oa[o], ob[o])
		s.AddClause(xl.Not(), oa[o].Not(), ob[o].Not())
		s.AddClause(xl, oa[o].Not(), ob[o])
		s.AddClause(xl, oa[o], ob[o].Not())
		diffs = append(diffs, xl)
	}
	if !s.AddClause(diffs...) {
		return true, nil, nil // no satisfiable difference
	}
	switch s.Solve() {
	case sat.Unsat:
		return true, nil, nil
	case sat.Sat:
		cex := make([]bool, len(piVars))
		for i, v := range piVars {
			cex[i] = s.Model(v)
		}
		return false, cex, nil
	}
	return false, nil, errors.New("equiv: solver limit reached")
}

// buildWCEMiter constructs a single-output circuit that is 1 exactly when
// |orig(x) − approx(x)| > t, reading both output vectors as unsigned
// LSB-first integers.
func buildWCEMiter(orig, approx *aig.Graph, t uint64) *aig.Graph {
	g := aig.New("wce-miter")
	b := &gen.Builder{G: g}
	pis := make([]aig.Lit, orig.NumPIs())
	for i := range pis {
		pis[i] = g.AddPI(fmt.Sprintf("x%d", i))
	}
	ao := gen.Word(aig.AppendGraph(g, orig, pis))
	aa := gen.Word(aig.AppendGraph(g, approx, pis))
	d0, borrow := b.Sub(ao, aa) // orig − approx (mod 2^K), borrow ⇒ approx > orig
	d1, _ := b.Sub(aa, ao)
	abs := b.Mux(borrow, d1, d0)
	thr := b.Const(t, len(abs))
	viol := b.LtU(thr, abs) // t < |diff|
	g.AddPO(viol, "violation")
	return g
}

// WCEAtMost reports whether the worst-case numeric error of approx against
// orig (unsigned LSB-first output interpretation) is at most t for every
// input. On failure it returns a violating input assignment.
func WCEAtMost(orig, approx *aig.Graph, t uint64) (bool, []bool, error) {
	return wceAtMost(orig, approx, t, 0)
}

// ErrBudget reports that a conflict-limited certification call ran out of
// budget before reaching a verdict. The WCE flow treats it as a failed
// certification (roll back), which keeps runs deterministic.
var ErrBudget = errors.New("equiv: certification conflict budget exhausted")

// wceAtMost is WCEAtMost with a conflict budget (0 = unlimited); hitting
// the budget returns ErrBudget.
func wceAtMost(orig, approx *aig.Graph, t uint64, limit int64) (bool, []bool, error) {
	if orig.NumPIs() != approx.NumPIs() || orig.NumPOs() != approx.NumPOs() {
		return false, nil, errors.New("equiv: interface mismatch")
	}
	if orig.NumPOs() > 63 {
		return false, nil, errors.New("equiv: WCE certification limited to ≤ 63 outputs")
	}
	// |orig − approx| ≤ 2^K − 1 always; a threshold at or above that is
	// trivially satisfied. This also guards the miter construction, whose
	// threshold word is only K bits wide — encoding a larger t there would
	// silently truncate it mod 2^K and report a spurious violation.
	if maxDiff := uint64(1)<<uint(orig.NumPOs()) - 1; t >= maxDiff {
		return true, nil, nil
	}
	m := buildWCEMiter(orig, approx, t)
	s := sat.New()
	s.MaxConflicts = limit
	piVars := make([]int, m.NumPIs())
	for i := range piVars {
		piVars[i] = s.NewVar()
	}
	outs := tseitin(s, m, piVars)
	if !s.AddClause(outs[0]) {
		return true, nil, nil
	}
	switch s.Solve() {
	case sat.Unsat:
		return true, nil, nil
	case sat.Sat:
		cex := make([]bool, len(piVars))
		for i, v := range piVars {
			cex[i] = s.Model(v)
		}
		return false, cex, nil
	}
	if limit > 0 {
		return false, nil, ErrBudget
	}
	return false, nil, errors.New("equiv: solver limit reached")
}

// evalOutputs evaluates g on one input assignment and returns the PO
// vector read as an unsigned LSB-first integer (≤ 63 POs).
func evalOutputs(g *aig.Graph, pi []bool) uint64 {
	vals := make([]bool, g.NumVars())
	for i, v := range g.PIs() {
		vals[v] = pi[i]
	}
	lit := func(l aig.Lit) bool {
		v := vals[l.Var()]
		if l.IsCompl() {
			return !v
		}
		return v
	}
	for _, v := range g.Topo() {
		if g.Type(v) != aig.TypeAnd {
			continue
		}
		f0, f1 := g.Fanins(v)
		vals[v] = lit(f0) && lit(f1)
	}
	var out uint64
	for o, po := range g.POs() {
		if lit(po) {
			out |= 1 << uint(o)
		}
	}
	return out
}

func absDiff(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return b - a
}

// maxCertCexs bounds the Certifier's counterexample cache; beyond it the
// oldest entries are dropped (newer cexs track the current circuit best).
const maxCertCexs = 64

// certCex is one cached violating input with the reference circuit's
// output value on it (the reference never changes, the approximation does).
type certCex struct {
	pi      []bool
	origVal uint64
}

// Certifier is the incremental certification entry point of the
// WCE-constrained flow: repeated bound checks of an evolving approximate
// circuit against one fixed reference. Counterexamples from failed calls
// are cached and replayed by direct simulation before any SAT work — a
// LAC batch that re-violates an already-seen input is refuted without
// touching the solver, which is what keeps the amortized certification
// cheap across rollback/re-apply cycles.
//
// The reference graph is captured by reference; the caller must not
// mutate it. A Certifier is not safe for concurrent use.
type Certifier struct {
	orig *aig.Graph

	// Limit caps the SAT conflicts of each certification call; 0 means
	// unlimited. An exhausted budget surfaces as ErrBudget.
	Limit int64

	// Calls counts SAT solver invocations; CexHits counts certifications
	// refuted by a cached counterexample with no solver work.
	Calls   int
	CexHits int

	cexs []certCex
}

// NewCertifier builds a certifier against the reference circuit orig.
func NewCertifier(orig *aig.Graph) *Certifier { return &Certifier{orig: orig} }

// CheckAt reports whether approx's worst-case error against the reference
// is at most t. Cached counterexamples are screened by simulation first;
// only then does a (conflict-limited) SAT call decide.
func (c *Certifier) CheckAt(approx *aig.Graph, t uint64) (bool, error) {
	for i := range c.cexs {
		av := evalOutputs(approx, c.cexs[i].pi)
		if absDiff(c.cexs[i].origVal, av) > t {
			c.CexHits++
			return false, nil
		}
	}
	ok, cex, err := wceAtMost(c.orig, approx, t, c.Limit)
	c.Calls++
	if err != nil {
		return false, err
	}
	if !ok && cex != nil {
		if len(c.cexs) >= maxCertCexs {
			c.cexs = append(c.cexs[:0], c.cexs[1:]...)
		}
		c.cexs = append(c.cexs, certCex{pi: cex, origVal: evalOutputs(c.orig, cex)})
	}
	return ok, nil
}

// WorstCaseError computes the exact worst-case numeric error by binary
// search over WCEAtMost. The search range is [0, 2^POs − 1].
func WorstCaseError(orig, approx *aig.Graph) (uint64, error) {
	if orig.NumPOs() > 62 {
		return 0, errors.New("equiv: too many outputs for exact WCE")
	}
	lo, hi := uint64(0), uint64(1)<<uint(orig.NumPOs())-1
	// Invariant: WCE > lo−1 (i.e. not certified at lo−1), WCE ≤ hi.
	for lo < hi {
		mid := lo + (hi-lo)/2
		ok, _, err := WCEAtMost(orig, approx, mid)
		if err != nil {
			return 0, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, nil
}
