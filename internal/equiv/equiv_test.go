package equiv_test

import (
	"testing"

	"dpals/internal/aig"
	"dpals/internal/core"
	"dpals/internal/equiv"
	"dpals/internal/gen"
	"dpals/internal/metric"
)

// evalPO evaluates graph g on one input assignment (indexed like the PIs).
func evalPO(g *aig.Graph, in []bool) []bool {
	val := make([]bool, g.NumVars())
	for i, v := range g.PIs() {
		val[v] = in[i]
	}
	lv := func(l aig.Lit) bool { return val[l.Var()] != l.IsCompl() }
	for _, v := range g.Topo() {
		if g.Type(v) != aig.TypeAnd {
			continue
		}
		f0, f1 := g.Fanins(v)
		val[v] = lv(f0) && lv(f1)
	}
	out := make([]bool, g.NumPOs())
	for o, po := range g.POs() {
		out[o] = lv(po)
	}
	return out
}

func TestEquivalentArchitectures(t *testing.T) {
	// Ripple and Kogge-Stone adders compute the same function; so do the
	// array and Wallace multipliers.
	eq, _, err := equiv.Equivalent(gen.Adder(8), gen.KoggeStoneAdder(8))
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("adder architectures not proven equivalent")
	}
	eq, _, err = equiv.Equivalent(gen.MultU(5, 5), gen.WallaceMultiplier(5, 5))
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("multiplier architectures not proven equivalent")
	}
}

func TestInequivalentWithCounterexample(t *testing.T) {
	a := gen.Adder(6)
	// Break one output: complement the LSB.
	b := a.Clone()
	b.SetPO(0, b.PO(0).Not())
	eq, cex, err := equiv.Equivalent(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Fatal("broken adder proven equivalent")
	}
	if cex == nil {
		t.Fatal("no counterexample returned")
	}
	oa, ob := evalPO(a, cex), evalPO(b, cex)
	same := true
	for i := range oa {
		if oa[i] != ob[i] {
			same = false
		}
	}
	if same {
		t.Fatal("counterexample does not distinguish the circuits")
	}
}

func TestSelfEquivalenceAfterRoundtrips(t *testing.T) {
	g := gen.ALU(4)
	eq, _, err := equiv.Equivalent(g, g.Sweep())
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("sweep broke equivalence")
	}
}

func TestWCEAtMostExactOnSmall(t *testing.T) {
	// Approximate a 5×4 multiplier, then compare the SAT-certified WCE
	// with the exhaustively measured one.
	orig := gen.MultU(5, 4)
	R := metric.ReferenceError(orig.NumPOs())
	opt := core.DefaultOptions(core.FlowDPSA, metric.MED, R)
	opt.Patterns = 1 << 9
	opt.Exhaustive = true
	res, err := core.Run(orig, opt)
	if err != nil {
		t.Fatal(err)
	}
	approx := res.Graph

	// Exhaustive ground truth.
	var wceTruth uint64
	nIn := orig.NumPIs()
	for in := 0; in < 1<<uint(nIn); in++ {
		bits := make([]bool, nIn)
		for i := range bits {
			bits[i] = in>>uint(i)&1 == 1
		}
		vo := toUint(evalPO(orig, bits))
		va := toUint(evalPO(approx, bits))
		d := vo - va
		if va > vo {
			d = va - vo
		}
		if d > wceTruth {
			wceTruth = d
		}
	}

	got, err := equiv.WorstCaseError(orig, approx)
	if err != nil {
		t.Fatal(err)
	}
	if got != wceTruth {
		t.Fatalf("SAT WCE %d, exhaustive %d", got, wceTruth)
	}
	// Certification must agree on both sides of the exact value.
	if wceTruth > 0 {
		ok, _, err := equiv.WCEAtMost(orig, approx, wceTruth-1)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Error("certified below the true WCE")
		}
	}
	ok, cex, err := equiv.WCEAtMost(orig, approx, wceTruth)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("not certified at the true WCE (cex %v)", cex)
	}
}

func TestWCEZeroForIdenticalCircuits(t *testing.T) {
	g := gen.Adder(6)
	wce, err := equiv.WorstCaseError(g, g.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if wce != 0 {
		t.Errorf("identical circuits have WCE %d", wce)
	}
}

func toUint(bits []bool) uint64 {
	var v uint64
	for i, b := range bits {
		if b {
			v |= 1 << uint(i)
		}
	}
	return v
}
