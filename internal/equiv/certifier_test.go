package equiv_test

import (
	"testing"

	"dpals/internal/core"
	"dpals/internal/equiv"
	"dpals/internal/gen"
	"dpals/internal/metric"
)

func TestCertifierCexScreening(t *testing.T) {
	orig := gen.MultU(4, 3)
	opt := core.DefaultOptions(core.FlowDPSA, metric.MED, metric.ReferenceError(orig.NumPOs()))
	opt.Patterns = 1 << 7
	res, err := core.Run(orig, opt)
	if err != nil {
		t.Fatal(err)
	}
	approx := res.Graph
	w, err := equiv.WorstCaseError(orig, approx)
	if err != nil {
		t.Fatal(err)
	}
	if w < 2 {
		t.Fatalf("approximation too faithful for the test (WCE %d)", w)
	}

	cert := equiv.NewCertifier(orig)

	// A genuine refutation burns one SAT call and caches its witness.
	ok, err := cert.CheckAt(approx, w-1)
	if err != nil || ok {
		t.Fatalf("CheckAt(%d) = %v, %v; want refuted", w-1, ok, err)
	}
	if cert.Calls != 1 || cert.CexHits != 0 {
		t.Fatalf("after first refutation: %d calls, %d cex hits", cert.Calls, cert.CexHits)
	}

	// The same question again must be answered by the cached witness
	// without touching the solver.
	ok, err = cert.CheckAt(approx, w-1)
	if err != nil || ok {
		t.Fatalf("cached CheckAt(%d) = %v, %v; want refuted", w-1, ok, err)
	}
	if cert.Calls != 1 || cert.CexHits != 1 {
		t.Fatalf("after cached refutation: %d calls, %d cex hits (want 1, 1)", cert.Calls, cert.CexHits)
	}

	// A tighter bound is refuted by the SAME witness: its deviation is at
	// least w, which violates every threshold below w.
	ok, err = cert.CheckAt(approx, w-2)
	if err != nil || ok {
		t.Fatalf("cached CheckAt(%d) = %v, %v; want refuted", w-2, ok, err)
	}
	if cert.Calls != 1 || cert.CexHits != 2 {
		t.Fatalf("after second cached refutation: %d calls, %d cex hits (want 1, 2)", cert.Calls, cert.CexHits)
	}

	// At the true WCE the witness does not violate, so the certifier must
	// fall through to a real SAT call and certify.
	ok, err = cert.CheckAt(approx, w)
	if err != nil || !ok {
		t.Fatalf("CheckAt(%d) = %v, %v; want certified", w, ok, err)
	}
	if cert.Calls != 2 {
		t.Fatalf("certification did not reach the solver: %d calls", cert.Calls)
	}
}

func TestCertifierBudgetExhaustion(t *testing.T) {
	orig := gen.MultU(4, 3)
	opt := core.DefaultOptions(core.FlowDPSA, metric.MED, metric.ReferenceError(orig.NumPOs()))
	opt.Patterns = 1 << 7
	res, err := core.Run(orig, opt)
	if err != nil {
		t.Fatal(err)
	}
	approx := res.Graph
	w, err := equiv.WorstCaseError(orig, approx)
	if err != nil {
		t.Fatal(err)
	}

	cert := equiv.NewCertifier(orig)
	cert.Limit = 1
	// Proving the bound holds at the exact WCE is an UNSAT instance that
	// needs conflict analysis; one conflict cannot finish it.
	if _, err := cert.CheckAt(approx, w); err != equiv.ErrBudget {
		t.Fatalf("starved certification returned %v, want ErrBudget", err)
	}
	// Lifting the limit on the same certifier must succeed.
	cert.Limit = 0
	ok, err := cert.CheckAt(approx, w)
	if err != nil || !ok {
		t.Fatalf("unlimited retry = %v, %v; want certified", ok, err)
	}
}
