package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilSafety: every method of every type must be a no-op on nil — the
// property that lets the engine instrument unconditionally.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if tr.Recording() {
		t.Error("nil tracer recording")
	}
	sp := tr.Start("x")
	if sp != nil {
		t.Fatal("span from nil tracer not nil")
	}
	// All span methods on nil.
	sp.SetInt("a", 1)
	sp.SetFloat("b", 2)
	sp.SetStr("c", "d")
	sp.End()
	if sp.Duration() != 0 || sp.Name() != "" || sp.Recording() {
		t.Error("nil span not inert")
	}
	if c := sp.Child("y"); c != nil {
		t.Error("child of nil span not nil")
	}
	if c := sp.ChildLane("y", 3); c != nil {
		t.Error("lane child of nil span not nil")
	}
	if tr.Snapshot() != nil || tr.ActiveSpans() != nil {
		t.Error("nil tracer snapshot not nil")
	}

	var m *Metrics
	m.Counter("c").Add(1)
	m.Gauge("g").Set(1)
	m.TakeSample(0)
	if m.Samples() != nil {
		t.Error("nil metrics samples not nil")
	}
	if _, ok := m.LastSample(); ok {
		t.Error("nil metrics has a last sample")
	}

	var p *Progress
	p.Update(1, 2, 0.5, 1)
	p.Done()
	if p.Renders() != 0 {
		t.Error("nil progress rendered")
	}
}

// TestNopTracerTimestamps: the shared no-op tracer must still produce
// usable durations (the engine derives Stats.Step from them) while
// retaining nothing.
func TestNopTracerTimestamps(t *testing.T) {
	tr := FromContext(context.Background())
	if tr == nil {
		t.Fatal("FromContext returned nil")
	}
	if tr.Recording() {
		t.Fatal("default tracer is recording")
	}
	sp := tr.Start("work")
	time.Sleep(2 * time.Millisecond)
	sp.SetInt("ignored", 1)
	sp.End()
	if sp.Duration() < time.Millisecond {
		t.Fatalf("no-op span duration %v, want >= 1ms", sp.Duration())
	}
	sp.End() // idempotent
	if got := tr.Snapshot(); got != nil {
		t.Fatalf("no-op tracer retained %d spans", len(got))
	}
}

// TestSpanTree: parent/child identity, lanes, attributes, and snapshot
// ordering by start time.
func TestSpanTree(t *testing.T) {
	tr := New()
	root := tr.Start("run")
	a := root.Child("phase1")
	a.SetInt("targets", 42)
	a.SetInt("targets", 43) // overwrite, not append
	a.SetFloat("err", 0.5)
	a.SetStr("kind", "full")
	a.End()
	b := root.Child("phase2")
	w := b.ChildLane(b.Name(), 2)
	w.End()
	b.End()
	root.End()

	spans := tr.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("%d spans, want 4", len(spans))
	}
	byName := map[string]SpanData{}
	for _, sp := range spans {
		if sp.Name == "phase2" && sp.Lane == 2 {
			byName["lane"] = sp
			continue
		}
		byName[sp.Name] = sp
	}
	run := byName["run"]
	if run.Parent != 0 {
		t.Fatalf("root parent %d", run.Parent)
	}
	p1 := byName["phase1"]
	if p1.Parent != run.ID {
		t.Fatalf("phase1 parent %d, want %d", p1.Parent, run.ID)
	}
	if len(p1.Attrs) != 3 {
		t.Fatalf("phase1 attrs %v, want 3 (overwrite must not append)", p1.Attrs)
	}
	if p1.Attrs[0].Key != "targets" || p1.Attrs[0].Value != int64(43) {
		t.Fatalf("attr[0] = %+v", p1.Attrs[0])
	}
	lane := byName["lane"]
	if lane.Parent != byName["phase2"].ID || lane.Lane != 2 {
		t.Fatalf("lane span %+v", lane)
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].Start < spans[i-1].Start {
			t.Fatal("snapshot not sorted by start")
		}
	}
	for _, sp := range spans {
		if sp.Open {
			t.Fatalf("span %s still open after End", sp.Name)
		}
	}
}

// TestOpenSpansInSnapshot: a snapshot taken mid-run must include the
// still-open spans, truncated and marked — the abort-flush guarantee.
func TestOpenSpansInSnapshot(t *testing.T) {
	tr := New()
	root := tr.Start("run")
	inner := root.Child("phase1")
	_ = inner

	spans := tr.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("%d spans, want 2", len(spans))
	}
	for _, sp := range spans {
		if !sp.Open {
			t.Fatalf("span %s not marked open", sp.Name)
		}
	}
	act := tr.ActiveSpans()
	if len(act) != 2 {
		t.Fatalf("%d active spans, want 2", len(act))
	}
	inner.End()
	if n := len(tr.ActiveSpans()); n != 1 {
		t.Fatalf("%d active after ending inner, want 1", n)
	}
}

// TestConcurrentLaneSpans: children opened and closed from many goroutines
// must all be retained without racing (run under -race).
func TestConcurrentLaneSpans(t *testing.T) {
	tr := New()
	root := tr.Start("run")
	var wg sync.WaitGroup
	for w := 1; w <= 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sp := root.ChildLane("work", w)
				sp.SetInt("i", int64(i))
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	root.End()
	spans := tr.Snapshot()
	if len(spans) != 1+8*50 {
		t.Fatalf("%d spans, want %d", len(spans), 1+8*50)
	}
}

// TestPerfettoParsesBack: the trace.json output must be valid JSON in the
// Chrome trace-event schema — metadata for every lane, one X event per
// span, open spans flagged in args.
func TestPerfettoParsesBack(t *testing.T) {
	tr := New()
	root := tr.Start("run")
	c := root.Child("phase1")
	c.SetInt("targets", 7)
	c.End()
	root.ChildLane("work", 1).End()
	open := root.Child("phase2") // left open deliberately
	_ = open
	root.End()

	var buf bytes.Buffer
	if err := tr.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("trace.json does not parse: %v", err)
	}
	var xs, meta int
	lanes := map[int]string{}
	var sawOpen, sawAttr bool
	for _, e := range parsed.TraceEvents {
		switch e.Ph {
		case "X":
			xs++
			if e.TS < 0 || e.Dur < 0 {
				t.Fatalf("negative ts/dur in %s", e.Name)
			}
			if e.Name == "phase2" && e.Args["open"] == true {
				sawOpen = true
			}
			if e.Name == "phase1" && e.Args["targets"] == float64(7) {
				sawAttr = true
			}
		case "M":
			meta++
			if e.Name == "thread_name" {
				lanes[e.TID] = e.Args["name"].(string)
			}
		default:
			t.Fatalf("unexpected event phase %q", e.Ph)
		}
	}
	if xs != 4 {
		t.Fatalf("%d X events, want 4", xs)
	}
	if lanes[0] != "main" || lanes[1] != "worker-1" {
		t.Fatalf("lane names %v", lanes)
	}
	if !sawOpen {
		t.Fatal("open span not flagged in args")
	}
	if !sawAttr {
		t.Fatal("span attribute missing from args")
	}
}

// TestJSONLParsesBack: every line of the event log must decode into
// SpanData.
func TestJSONLParsesBack(t *testing.T) {
	tr := New()
	root := tr.Start("run")
	root.Child("a").End()
	root.End()
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	n := 0
	for sc.Scan() {
		var sp SpanData
		if err := json.Unmarshal(sc.Bytes(), &sp); err != nil {
			t.Fatalf("line %d: %v", n, err)
		}
		if sp.Name == "" || sp.ID == 0 {
			t.Fatalf("line %d incomplete: %+v", n, sp)
		}
		n++
	}
	if n != 2 {
		t.Fatalf("%d lines, want 2", n)
	}
}

// TestMetricsSampling: counters, gauges and the runtime metrics must all
// appear in samples; the JSONL log must parse back.
func TestMetricsSampling(t *testing.T) {
	m := NewMetrics()
	m.Counter("iters").Add(3)
	m.Counter("iters").Add(2)
	m.Gauge("error").Set(0.25)
	m.TakeSample(1)
	m.Gauge("error").Set(0.5)
	m.TakeSample(2)

	ss := m.Samples()
	if len(ss) != 2 {
		t.Fatalf("%d samples, want 2", len(ss))
	}
	if ss[0].Values["iters"] != 5 || ss[0].Values["error"] != 0.25 {
		t.Fatalf("sample 0 = %v", ss[0].Values)
	}
	if ss[1].Values["error"] != 0.5 {
		t.Fatalf("sample 1 error = %v", ss[1].Values["error"])
	}
	for _, key := range []string{"heap_objects_bytes", "gc_cycles", "goroutines", "gc_pause_total_s", "heap_allocs_total_bytes"} {
		if _, ok := ss[0].Values[key]; !ok {
			t.Fatalf("runtime metric %s missing from sample", key)
		}
	}
	if ss[0].Values["heap_objects_bytes"] <= 0 {
		t.Fatal("heap_objects_bytes not positive")
	}
	if ss[1].AtNS < ss[0].AtNS {
		t.Fatal("sample timestamps not monotonic")
	}
	last, ok := m.LastSample()
	if !ok || last.Iter != 2 {
		t.Fatalf("last sample = %+v ok=%v", last, ok)
	}

	var buf bytes.Buffer
	if err := m.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	n := 0
	for sc.Scan() {
		var s Sample
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatalf("metrics line %d: %v", n, err)
		}
		n++
	}
	if n != 2 {
		t.Fatalf("%d metric lines, want 2", n)
	}
	var sum bytes.Buffer
	if err := m.WriteSummary(&sum); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sum.String(), "error") || !strings.Contains(sum.String(), "iter 2") {
		t.Fatalf("summary missing fields:\n%s", sum.String())
	}
}

// TestWriteSummaryTable: the per-span-name aggregation must include every
// name with its count.
func TestWriteSummaryTable(t *testing.T) {
	tr := New()
	root := tr.Start("run")
	for i := 0; i < 3; i++ {
		root.Child("eval").End()
	}
	root.End()
	var buf bytes.Buffer
	if err := tr.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "run") || !strings.Contains(out, "eval") {
		t.Fatalf("summary missing span names:\n%s", out)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "eval") && !strings.Contains(line, "3") {
			t.Fatalf("eval count not 3: %q", line)
		}
	}

	empty := New()
	buf.Reset()
	if err := empty.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no spans") {
		t.Fatalf("empty summary = %q", buf.String())
	}
}

// TestProgressLine pins the pure formatting, including the ETA model
// remaining = elapsed*(1-f)/f and its fallbacks.
func TestProgressLine(t *testing.T) {
	got := progressLine(12, 4000, 0.5, 1.0, 10*time.Second)
	if !strings.Contains(got, "iter 12") || !strings.Contains(got, "ANDs 4000") {
		t.Fatalf("line = %q", got)
	}
	if !strings.Contains(got, "(50.0%)") {
		t.Fatalf("budget fraction missing: %q", got)
	}
	if !strings.Contains(got, "eta ~10s") { // half the budget used in 10s
		t.Fatalf("eta wrong: %q", got)
	}
	if got := progressLine(0, 10, 0, 1.0, time.Second); !strings.Contains(got, "eta --") {
		t.Fatalf("zero error must give no eta: %q", got)
	}
	if got := progressLine(0, 10, 2.0, 1.0, time.Second); !strings.Contains(got, "eta --") {
		t.Fatalf("over-budget must give no eta: %q", got)
	}
	if got := progressLine(0, 10, 1.0, 0, time.Second); !strings.Contains(got, "eta --") {
		t.Fatalf("zero budget must give no eta: %q", got)
	}
}

// TestProgressRendering: rate limiting, in-place rewrite with padding, and
// the Done() newline.
func TestProgressRendering(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, time.Hour) // rate limit blocks every update after the first
	p.Update(1, 100, 0.1, 1)
	p.Update(2, 99, 0.2, 1)
	p.Update(3, 98, 0.3, 1)
	if p.Renders() != 1 {
		t.Fatalf("%d renders under rate limit, want 1", p.Renders())
	}
	p.Done()
	p.Done() // idempotent
	out := buf.String()
	if !strings.HasPrefix(out, "\r") {
		t.Fatalf("line does not rewrite in place: %q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Fatalf("Done did not terminate the line: %q", out)
	}
	if strings.Count(out, "\n") != 1 {
		t.Fatalf("multiple newlines: %q", out)
	}
	// Updates after Done must not render.
	p.Update(4, 97, 0.4, 1)
	if p.Renders() != 1 {
		t.Fatal("update after Done rendered")
	}

	// A progress that never rendered writes nothing, not even a newline.
	var empty bytes.Buffer
	q := NewProgress(&empty, 0)
	q.Done()
	if empty.Len() != 0 {
		t.Fatalf("silent progress wrote %q", empty.String())
	}
}

// TestContextPlumbing: With*/From* round-trips, and absent values come
// back as the documented defaults.
func TestContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if got := FromContext(ctx); got != nop {
		t.Fatal("missing tracer is not the shared nop")
	}
	if SpanFrom(ctx) != nil || MetricsFrom(ctx) != nil || ProgressFrom(ctx) != nil {
		t.Fatal("absent values not nil")
	}

	tr := New()
	m := NewMetrics()
	p := NewProgress(&bytes.Buffer{}, 0)
	sp := tr.Start("run")
	ctx = WithTracer(ctx, tr)
	ctx = WithSpan(ctx, sp)
	ctx = WithMetrics(ctx, m)
	ctx = WithProgress(ctx, p)
	if FromContext(ctx) != tr || SpanFrom(ctx) != sp || MetricsFrom(ctx) != m || ProgressFrom(ctx) != p {
		t.Fatal("context round-trip failed")
	}
	// Installing nil keeps the previous value.
	if FromContext(WithTracer(ctx, nil)) != tr {
		t.Fatal("WithTracer(nil) clobbered the tracer")
	}
	if SpanFrom(WithSpan(ctx, nil)) != sp {
		t.Fatal("WithSpan(nil) clobbered the span")
	}
}
