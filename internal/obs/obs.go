// Package obs is the observability layer of the synthesis engine: a
// hierarchical span tracer, a metrics registry sampled at iteration
// boundaries, a live progress renderer, and exporters that render one run
// as a Chrome/Perfetto trace, a JSONL event log, or a human summary table.
//
// The engine is instrumented unconditionally, but observation is opt-in
// and must never perturb results:
//
//   - Every API is nil-safe. Methods on a nil *Tracer, *Span, *Metrics or
//     *Progress are no-ops, so instrumentation sites never branch.
//   - FromContext returns a shared no-op tracer when none is installed.
//     Its spans carry timestamps (the engine derives Stats.Step and
//     Stats.PhaseTime from span durations — one code path whether or not
//     anyone is watching) but record nothing: no attribute storage, no
//     span retention, no locking.
//   - Tracing reads engine state; it never writes it. The synthesis
//     trajectory is driven exclusively by deterministic quantities
//     (pattern bits, StepWork estimates), so a traced run is bit-identical
//     to an untraced one at every thread count — asserted by
//     core.TestTracingDoesNotPerturbResults.
//
// Everything rides on the context the engine already threads through the
// analysis pipeline: WithTracer/WithSpan install the tracer and the
// current parent span, and package par picks the span up to open one
// child span per worker goroutine (the Perfetto "thread lanes"), closed
// by defer even when a worker callback panics.
package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one typed span attribute. Value is an int64, float64, or string
// — the three types the exporters know how to render.
type Attr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// SpanData is the immutable record of one span, as exported.
type SpanData struct {
	ID     uint64        `json:"id"`
	Parent uint64        `json:"parent,omitempty"` // 0 = root
	Name   string        `json:"name"`
	Lane   int           `json:"lane"` // Perfetto thread lane; 0 = main
	Start  time.Duration `json:"start_ns"`
	Dur    time.Duration `json:"dur_ns"`
	Attrs  []Attr        `json:"attrs,omitempty"`
	// Open marks a span that was still running when the snapshot was
	// taken (e.g. a trace flushed on abort): Dur is the duration up to the
	// snapshot, and the span has no end event of its own — truncated but
	// parseable.
	Open bool `json:"open,omitempty"`
}

// Tracer records a span tree with monotonic timestamps. A Tracer is safe
// for concurrent use: child spans may be opened and closed from any
// goroutine (package par does, one per worker).
//
// New returns a recording tracer; the no-op tracer handed out by
// FromContext when none is installed timestamps spans (so callers can
// derive step durations from them) but retains nothing.
type Tracer struct {
	epoch  time.Time // monotonic origin; span offsets are relative to it
	record bool

	nextID atomic.Uint64

	mu     sync.Mutex
	done   []SpanData
	active map[uint64]*Span
}

// New returns a recording tracer whose clock starts now.
func New() *Tracer {
	return &Tracer{epoch: time.Now(), record: true, active: make(map[uint64]*Span)}
}

// nop is the shared non-recording tracer: spans are timestamped but
// nothing is retained. FromContext hands it out when no tracer is
// installed, so instrumented code has exactly one code path.
var nop = &Tracer{epoch: time.Now()}

// Recording reports whether spans of this tracer are retained.
func (t *Tracer) Recording() bool { return t != nil && t.record }

// Span is one live node of the span tree. Create children with Child (or
// ChildLane for worker lanes), set typed attributes, and End exactly once
// — End is idempotent, so a defer-close on a panic path is always safe.
type Span struct {
	t      *Tracer
	id     uint64
	parent uint64
	name   string
	lane   int
	t0     time.Time

	ended atomic.Bool
	dur   time.Duration

	mu    sync.Mutex
	attrs []Attr
}

// Start opens a root span.
func (t *Tracer) Start(name string) *Span { return t.newSpan(name, 0, 0) }

func (t *Tracer) newSpan(name string, parent uint64, lane int) *Span {
	if t == nil {
		return nil
	}
	sp := &Span{t: t, id: t.nextID.Add(1), parent: parent, lane: lane, name: name, t0: time.Now()}
	if t.record {
		t.mu.Lock()
		t.active[sp.id] = sp
		t.mu.Unlock()
	}
	return sp
}

// Child opens a child span in the same lane. Child of a nil span is nil
// (and every method of a nil span is a no-op).
func (sp *Span) Child(name string) *Span {
	if sp == nil {
		return nil
	}
	return sp.t.newSpan(name, sp.id, sp.lane)
}

// ChildLane opens a child span in an explicit Perfetto lane — one lane
// per par worker, so concurrent workers render as parallel tracks.
func (sp *Span) ChildLane(name string, lane int) *Span {
	if sp == nil {
		return nil
	}
	return sp.t.newSpan(name, sp.id, lane)
}

// Recording reports whether attributes and the span itself are retained —
// the guard par uses to skip per-worker spans entirely on the no-op path.
func (sp *Span) Recording() bool { return sp != nil && sp.t.Recording() }

// Name returns the span's name ("" for nil).
func (sp *Span) Name() string {
	if sp == nil {
		return ""
	}
	return sp.name
}

// SetInt attaches an integer attribute. No-op unless recording.
func (sp *Span) SetInt(key string, v int64) { sp.setAttr(key, v) }

// SetFloat attaches a float attribute. No-op unless recording.
func (sp *Span) SetFloat(key string, v float64) { sp.setAttr(key, v) }

// SetStr attaches a string attribute. No-op unless recording.
func (sp *Span) SetStr(key, v string) { sp.setAttr(key, v) }

func (sp *Span) setAttr(key string, v any) {
	if !sp.Recording() {
		return
	}
	sp.mu.Lock()
	for i := range sp.attrs {
		if sp.attrs[i].Key == key {
			sp.attrs[i].Value = v
			sp.mu.Unlock()
			return
		}
	}
	sp.attrs = append(sp.attrs, Attr{Key: key, Value: v})
	sp.mu.Unlock()
}

// End closes the span, fixing its duration. Idempotent: only the first
// call records; later calls (e.g. a defer behind an explicit End) no-op.
func (sp *Span) End() {
	if sp == nil || !sp.ended.CompareAndSwap(false, true) {
		return
	}
	sp.dur = time.Since(sp.t0)
	t := sp.t
	if !t.record {
		return
	}
	t.mu.Lock()
	delete(t.active, sp.id)
	t.done = append(t.done, sp.data(sp.dur, false))
	t.mu.Unlock()
}

// Duration returns the span's duration: final after End, running before.
func (sp *Span) Duration() time.Duration {
	if sp == nil {
		return 0
	}
	if sp.ended.Load() {
		return sp.dur
	}
	return time.Since(sp.t0)
}

// data snapshots the span; callers hold no tracer lock, sp.mu guards attrs.
func (sp *Span) data(dur time.Duration, open bool) SpanData {
	sp.mu.Lock()
	attrs := make([]Attr, len(sp.attrs))
	copy(attrs, sp.attrs)
	sp.mu.Unlock()
	return SpanData{
		ID:     sp.id,
		Parent: sp.parent,
		Name:   sp.name,
		Lane:   sp.lane,
		Start:  sp.t0.Sub(sp.t.epoch),
		Dur:    dur,
		Attrs:  attrs,
		Open:   open,
	}
}

// Snapshot returns every span recorded so far, sorted by start time:
// finished spans as-is, still-open spans truncated at the snapshot instant
// and marked Open. Safe to call at any time, including mid-run from a
// signal handler — that is how an aborted alsrun still writes a valid
// (truncated-but-parseable) trace.
func (t *Tracer) Snapshot() []SpanData {
	if t == nil || !t.record {
		return nil
	}
	now := time.Now()
	t.mu.Lock()
	out := make([]SpanData, 0, len(t.done)+len(t.active))
	out = append(out, t.done...)
	open := make([]*Span, 0, len(t.active))
	for _, sp := range t.active {
		open = append(open, sp)
	}
	t.mu.Unlock()
	for _, sp := range open {
		out = append(out, sp.data(now.Sub(sp.t0), true))
	}
	sortSpans(out)
	return out
}

// ActiveSpans returns the currently open spans sorted by start time — the
// "span stack" streamed by the /debug/obs endpoint. With parallel workers
// it is a forest rather than a stack; sorting by start keeps ancestors
// before their descendants.
func (t *Tracer) ActiveSpans() []SpanData {
	if t == nil || !t.record {
		return nil
	}
	now := time.Now()
	t.mu.Lock()
	open := make([]*Span, 0, len(t.active))
	for _, sp := range t.active {
		open = append(open, sp)
	}
	t.mu.Unlock()
	out := make([]SpanData, 0, len(open))
	for _, sp := range open {
		out = append(out, sp.data(now.Sub(sp.t0), true))
	}
	sortSpans(out)
	return out
}

func sortSpans(spans []SpanData) {
	// Insertion-stable ordering by (start, id): ids are allocation-ordered,
	// which breaks ties between spans opened within one clock granule.
	for i := 1; i < len(spans); i++ {
		for j := i; j > 0 && (spans[j].Start < spans[j-1].Start ||
			(spans[j].Start == spans[j-1].Start && spans[j].ID < spans[j-1].ID)); j-- {
			spans[j], spans[j-1] = spans[j-1], spans[j]
		}
	}
}

// Context plumbing -----------------------------------------------------------

type ctxKey int

const (
	tracerKey ctxKey = iota
	spanKey
	metricsKey
	progressKey
)

// WithTracer installs a tracer into ctx. Installing nil is a no-op.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey, t)
}

// FromContext returns the tracer installed in ctx, or the shared no-op
// tracer — never nil, so instrumented code has a single code path and
// span durations exist whether or not anyone is recording.
func FromContext(ctx context.Context) *Tracer {
	if ctx != nil {
		if t, ok := ctx.Value(tracerKey).(*Tracer); ok {
			return t
		}
	}
	return nop
}

// WithSpan installs sp as the current parent span: package par opens its
// per-worker lane spans under it. Installing nil is a no-op.
func WithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey, sp)
}

// SpanFrom returns the current parent span installed in ctx, or nil.
func SpanFrom(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanKey).(*Span)
	return sp
}

// WithMetrics installs a metrics registry. Installing nil is a no-op.
func WithMetrics(ctx context.Context, m *Metrics) context.Context {
	if m == nil {
		return ctx
	}
	return context.WithValue(ctx, metricsKey, m)
}

// MetricsFrom returns the metrics registry installed in ctx, or nil (all
// *Metrics methods are nil-safe).
func MetricsFrom(ctx context.Context) *Metrics {
	if ctx == nil {
		return nil
	}
	m, _ := ctx.Value(metricsKey).(*Metrics)
	return m
}

// WithProgress installs a live progress renderer. Installing nil is a
// no-op.
func WithProgress(ctx context.Context, p *Progress) context.Context {
	if p == nil {
		return ctx
	}
	return context.WithValue(ctx, progressKey, p)
}

// ProgressFrom returns the progress renderer installed in ctx, or nil.
func ProgressFrom(ctx context.Context) *Progress {
	if ctx == nil {
		return nil
	}
	p, _ := ctx.Value(progressKey).(*Progress)
	return p
}
