package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime/metrics"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// The runtime/metrics the registry samples alongside its own counters and
// gauges. Read as one batch per Sample call (a few microseconds).
var runtimeMetricNames = []struct {
	name string // runtime/metrics key
	key  string // sample key
}{
	{"/memory/classes/heap/objects:bytes", "heap_objects_bytes"},
	{"/gc/heap/allocs:bytes", "heap_allocs_total_bytes"},
	{"/gc/cycles/total:gc-cycles", "gc_cycles"},
	{"/gc/pauses:seconds", "gc_pause_total_s"},
	{"/sched/goroutines:goroutines", "goroutines"},
}

// Counter is a monotonically increasing named value. Safe for concurrent
// use; all methods are nil-safe.
type Counter struct{ v atomic.Int64 }

// Add increments the counter.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a named instantaneous value. Safe for concurrent use; all
// methods are nil-safe.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the last stored value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Sample is one snapshot row: every counter, gauge, and runtime metric at
// one iteration boundary.
type Sample struct {
	Iter   int                `json:"iter"`
	AtNS   int64              `json:"at_ns"` // monotonic offset from NewMetrics
	Values map[string]float64 `json:"values"`
}

// Metrics is a registry of named counters and gauges, plus a sampler that
// snapshots them — together with a fixed set of runtime/metrics values
// (heap bytes, GC cycles and pause totals, goroutines) — at iteration
// boundaries. All methods are nil-safe and goroutine-safe; sampling reads
// engine state but never writes it, so metrics cannot perturb results.
type Metrics struct {
	epoch time.Time

	mu       sync.Mutex
	names    []string // registration order, counters then gauges interleaved
	counters map[string]*Counter
	gauges   map[string]*Gauge
	samples  []Sample
	rt       []metrics.Sample
}

// NewMetrics returns an empty registry whose clock starts now.
func NewMetrics() *Metrics {
	m := &Metrics{
		epoch:    time.Now(),
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		rt:       make([]metrics.Sample, len(runtimeMetricNames)),
	}
	for i, rm := range runtimeMetricNames {
		m.rt[i].Name = rm.name
	}
	return m
}

// Counter returns (registering on first use) the named counter, or nil on
// a nil registry.
func (m *Metrics) Counter(name string) *Counter {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.counters[name]
	if c == nil {
		c = &Counter{}
		m.counters[name] = c
		m.names = append(m.names, name)
	}
	return c
}

// Gauge returns (registering on first use) the named gauge, or nil on a
// nil registry.
func (m *Metrics) Gauge(name string) *Gauge {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	g := m.gauges[name]
	if g == nil {
		g = &Gauge{}
		m.gauges[name] = g
		m.names = append(m.names, name)
	}
	return g
}

// TakeSample snapshots every registered counter and gauge plus the
// runtime metrics into a new Sample row tagged with the iteration number.
// Nil-safe: the engine calls it unconditionally at iteration boundaries.
func (m *Metrics) TakeSample(iter int) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	vals := make(map[string]float64, len(m.names)+len(m.rt))
	for name, c := range m.counters {
		vals[name] = float64(c.Value())
	}
	for name, g := range m.gauges {
		vals[name] = g.Value()
	}
	metrics.Read(m.rt)
	for i, rm := range runtimeMetricNames {
		switch m.rt[i].Value.Kind() {
		case metrics.KindUint64:
			vals[rm.key] = float64(m.rt[i].Value.Uint64())
		case metrics.KindFloat64:
			vals[rm.key] = m.rt[i].Value.Float64()
		case metrics.KindFloat64Histogram:
			vals[rm.key] = histogramTotal(m.rt[i].Value.Float64Histogram())
		}
	}
	m.samples = append(m.samples, Sample{
		Iter:   iter,
		AtNS:   time.Since(m.epoch).Nanoseconds(),
		Values: vals,
	})
}

// histogramTotal approximates the cumulative sum of a runtime histogram
// (e.g. total GC pause seconds) by bucket midpoints; the unbounded edge
// buckets fall back to their finite boundary.
func histogramTotal(h *metrics.Float64Histogram) float64 {
	var total float64
	for i, n := range h.Counts {
		if n == 0 {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		mid := (lo + hi) / 2
		if math.IsInf(lo, -1) {
			mid = hi
		} else if math.IsInf(hi, 1) {
			mid = lo
		}
		total += float64(n) * mid
	}
	return total
}

// Samples returns a copy of every sample taken so far.
func (m *Metrics) Samples() []Sample {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Sample, len(m.samples))
	copy(out, m.samples)
	return out
}

// LastSample returns the most recent sample, if any.
func (m *Metrics) LastSample() (Sample, bool) {
	if m == nil {
		return Sample{}, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.samples) == 0 {
		return Sample{}, false
	}
	return m.samples[len(m.samples)-1], true
}

// WriteJSONL writes one JSON object per sample — the machine-diffable
// metrics log (alsrun -metrics).
func (m *Metrics) WriteJSONL(w io.Writer) error {
	for _, s := range m.Samples() {
		line, err := json.Marshal(s)
		if err != nil {
			return err
		}
		line = append(line, '\n')
		if _, err := w.Write(line); err != nil {
			return err
		}
	}
	return nil
}

// WriteSummary renders the last sample as an aligned key/value table.
func (m *Metrics) WriteSummary(w io.Writer) error {
	last, ok := m.LastSample()
	if !ok {
		_, err := fmt.Fprintln(w, "metrics: no samples")
		return err
	}
	keys := make([]string, 0, len(last.Values))
	width := 0
	for k := range last.Values {
		keys = append(keys, k)
		if len(k) > width {
			width = len(k)
		}
	}
	sort.Strings(keys)
	if _, err := fmt.Fprintf(w, "metrics at iter %d (t=%s):\n", last.Iter, time.Duration(last.AtNS)); err != nil {
		return err
	}
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "  %-*s  %g\n", width, k, last.Values[k]); err != nil {
			return err
		}
	}
	return nil
}
