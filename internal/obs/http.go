package obs

import (
	"encoding/json"
	"net/http"
	"time"
)

// DebugState is one snapshot served by Handler: the currently open spans
// (the live "span stack" — a forest when par workers are running, sorted
// ancestors-first) and the most recent metrics sample, if any.
type DebugState struct {
	AtNS    int64      `json:"at_ns"` // monotonic offset from the tracer epoch
	Active  []SpanData `json:"active"`
	Metrics *Sample    `json:"metrics,omitempty"`
}

// Handler serves the live observability state of a run — the /debug/obs
// endpoint of alsrun's -pprof-http server. A plain GET returns one
// DebugState as JSON; with ?stream=<duration> it streams one JSON line
// per interval (minimum 50ms) until the client disconnects, so `curl
// -N :6060/debug/obs?stream=250ms` tails the span stack of a running
// synthesis. Both t and m may be nil; the matching fields are then empty.
func Handler(t *Tracer, m *Metrics) http.Handler {
	state := func() DebugState {
		st := DebugState{Active: t.ActiveSpans()}
		if t != nil {
			st.AtNS = time.Since(t.epoch).Nanoseconds()
		}
		if s, ok := m.LastSample(); ok {
			st.Metrics = &s
		}
		return st
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		stream := r.URL.Query().Get("stream")
		if stream == "" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(state())
			return
		}
		every, err := time.ParseDuration(stream)
		if err != nil {
			http.Error(w, "bad stream interval: "+err.Error(), http.StatusBadRequest)
			return
		}
		if every < 50*time.Millisecond {
			every = 50 * time.Millisecond
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		flusher, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)
		ticker := time.NewTicker(every)
		defer ticker.Stop()
		for {
			if err := enc.Encode(state()); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
			select {
			case <-r.Context().Done():
				return
			case <-ticker.C:
			}
		}
	})
}
