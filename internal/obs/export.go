package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// perfettoEvent is one entry of the Chrome/Perfetto "traceEvents" array.
// Complete spans use ph "X" with microsecond ts/dur; lane names use the
// "M" (metadata) thread_name convention.
type perfettoEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type perfettoTrace struct {
	DisplayTimeUnit string          `json:"displayTimeUnit"`
	TraceEvents     []perfettoEvent `json:"traceEvents"`
}

// WritePerfetto renders the tracer's snapshot as a Chrome/Perfetto
// trace.json: one "X" (complete) event per span, spans from par worker w
// in thread lane w (tid w, lane 0 = the main synthesis thread), span
// attributes in args. Open (truncated) spans are emitted with their
// duration up to the snapshot and args.open=true, so a trace flushed from
// an interrupted run still loads. Load via chrome://tracing or
// https://ui.perfetto.dev.
func (t *Tracer) WritePerfetto(w io.Writer) error {
	spans := t.Snapshot()
	lanes := map[int]bool{}
	for _, sp := range spans {
		lanes[sp.Lane] = true
	}
	laneIDs := make([]int, 0, len(lanes))
	for l := range lanes {
		laneIDs = append(laneIDs, l)
	}
	sort.Ints(laneIDs)

	events := make([]perfettoEvent, 0, len(spans)+len(laneIDs)+1)
	events = append(events, perfettoEvent{
		Name: "process_name", Ph: "M", PID: 1,
		Args: map[string]any{"name": "dpals"},
	})
	for _, l := range laneIDs {
		name := "main"
		if l > 0 {
			name = fmt.Sprintf("worker-%d", l)
		}
		events = append(events, perfettoEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: l,
			Args: map[string]any{"name": name},
		})
	}
	for _, sp := range spans {
		args := make(map[string]any, len(sp.Attrs)+3)
		args["span_id"] = sp.ID
		if sp.Parent != 0 {
			args["parent"] = sp.Parent
		}
		if sp.Open {
			args["open"] = true
		}
		for _, a := range sp.Attrs {
			args[a.Key] = a.Value
		}
		events = append(events, perfettoEvent{
			Name: sp.Name,
			Ph:   "X",
			TS:   float64(sp.Start.Nanoseconds()) / 1e3,
			Dur:  float64(sp.Dur.Nanoseconds()) / 1e3,
			PID:  1,
			TID:  sp.Lane,
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(perfettoTrace{DisplayTimeUnit: "ms", TraceEvents: events})
}

// WriteJSONL writes one JSON object per span of the snapshot, sorted by
// start time — the machine-diffable event log.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	for _, sp := range t.Snapshot() {
		line, err := json.Marshal(sp)
		if err != nil {
			return err
		}
		line = append(line, '\n')
		if _, err := w.Write(line); err != nil {
			return err
		}
	}
	return nil
}

// WriteSummary renders the snapshot as a human table: per span name, the
// call count, total and mean duration, and the share of the run span
// (the earliest root span; wall-clock share can exceed 100% for spans
// running concurrently in worker lanes).
func (t *Tracer) WriteSummary(w io.Writer) error {
	spans := t.Snapshot()
	if len(spans) == 0 {
		_, err := fmt.Fprintln(w, "trace: no spans recorded")
		return err
	}
	var run time.Duration
	for _, sp := range spans {
		if sp.Parent == 0 {
			run = sp.Dur
			break
		}
	}
	type agg struct {
		name  string
		count int
		total time.Duration
	}
	byName := map[string]*agg{}
	var order []string
	for _, sp := range spans {
		a := byName[sp.Name]
		if a == nil {
			a = &agg{name: sp.Name}
			byName[sp.Name] = a
			order = append(order, sp.Name)
		}
		a.count++
		a.total += sp.Dur
	}
	sort.SliceStable(order, func(i, j int) bool {
		return byName[order[i]].total > byName[order[j]].total
	})
	width := len("span")
	for _, n := range order {
		if len(n) > width {
			width = len(n)
		}
	}
	if _, err := fmt.Fprintf(w, "%-*s  %7s  %12s  %12s  %6s\n", width, "span", "count", "total", "mean", "run%"); err != nil {
		return err
	}
	for _, n := range order {
		a := byName[n]
		pct := 0.0
		if run > 0 {
			pct = 100 * float64(a.total) / float64(run)
		}
		if _, err := fmt.Fprintf(w, "%-*s  %7d  %12v  %12v  %5.1f%%\n",
			width, a.name, a.count, a.total.Round(time.Microsecond),
			(a.total / time.Duration(a.count)).Round(time.Microsecond), pct); err != nil {
			return err
		}
	}
	return nil
}
