package obs

import (
	"bufio"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestHandlerSnapshot: a plain GET returns the open spans and the last
// metrics sample as JSON.
func TestHandlerSnapshot(t *testing.T) {
	tr := New()
	root := tr.Start("run")
	root.Child("phase1") // left open: must show in the live state
	m := NewMetrics()
	m.Gauge("error").Set(0.5)
	m.TakeSample(3)

	srv := httptest.NewServer(Handler(tr, m))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st DebugState
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if len(st.Active) != 2 {
		t.Fatalf("%d active spans, want 2", len(st.Active))
	}
	if st.Active[0].Name != "run" || !st.Active[0].Open {
		t.Fatalf("first active span %+v, want open run", st.Active[0])
	}
	if st.Metrics == nil || st.Metrics.Iter != 3 || st.Metrics.Values["error"] != 0.5 {
		t.Fatalf("metrics in state = %+v", st.Metrics)
	}
	if st.AtNS <= 0 {
		t.Fatal("missing timestamp")
	}
}

// TestHandlerNilTolerant: the endpoint must work with no tracer and no
// metrics installed (alsrun -pprof-http without -trace/-metrics).
func TestHandlerNilTolerant(t *testing.T) {
	srv := httptest.NewServer(Handler(nil, nil))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st DebugState
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if len(st.Active) != 0 || st.Metrics != nil {
		t.Fatalf("nil state not empty: %+v", st)
	}
}

// TestHandlerStream: ?stream=... yields NDJSON lines until the client
// disconnects.
func TestHandlerStream(t *testing.T) {
	tr := New()
	tr.Start("run")
	srv := httptest.NewServer(Handler(tr, nil))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "?stream=50ms")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "ndjson") {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	lines := 0
	for sc.Scan() && lines < 3 {
		var st DebugState
		if err := json.Unmarshal(sc.Bytes(), &st); err != nil {
			t.Fatalf("stream line %d: %v", lines, err)
		}
		if len(st.Active) != 1 {
			t.Fatalf("stream line %d: %d active spans", lines, len(st.Active))
		}
		lines++
	}
	resp.Body.Close() // disconnect ends the stream server-side
	if lines != 3 {
		t.Fatalf("read %d stream lines, want 3", lines)
	}

	// Bad interval is a 400, not a hang.
	resp2, err := srv.Client().Get(srv.URL + "?stream=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != 400 {
		t.Fatalf("bad interval status %d", resp2.StatusCode)
	}
}
