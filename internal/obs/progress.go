package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress renders a live single-line status of a running synthesis to a
// terminal: the applied-LAC iteration count, the current AND-node count,
// the error against its budget, and a time-to-completion estimate. The
// engine calls Update at every iteration boundary; rendering is
// rate-limited so the callback cost stays negligible and the terminal is
// not flooded.
//
// The estimate leans on the quantity the dual-phase self-adaption
// (§III-D) itself steers by: the consumed fraction f = E/E_b of the error
// budget. Iterative ALS flows stop when the budget is exhausted, and the
// budget is consumed roughly linearly in wall-clock time once the run is
// under way, so remaining ≈ elapsed·(1−f)/f. The estimate is display-only
// — Progress reads engine state and never influences it.
//
// All methods are nil-safe, so the engine can call them unconditionally.
type Progress struct {
	w     io.Writer
	fn    func(iter, ands int, err, budget float64)
	every time.Duration

	mu      sync.Mutex
	start   time.Time
	last    time.Time
	width   int  // widest line rendered, for \r overwrite padding
	wrote   bool // anything rendered yet (Done emits the final newline)
	done    bool
	renders int64
}

// NewProgress returns a renderer writing to w at most once per `every`
// (≤ 0 selects 100ms). Pass the terminal's stderr; the line is rewritten
// in place with a leading carriage return.
func NewProgress(w io.Writer, every time.Duration) *Progress {
	if every <= 0 {
		every = 100 * time.Millisecond
	}
	return &Progress{w: w, every: every, start: time.Now()}
}

// NewProgressFunc returns a renderer that forwards each rate-limited
// update to fn instead of drawing a terminal line — the hook the alsd
// server uses to fan progress out to SSE subscribers. fn runs on the
// engine's goroutine under the Progress mutex and must not block; hand
// the event to a channel or drop it. `every` ≤ 0 selects 100ms.
func NewProgressFunc(fn func(iter, ands int, err, budget float64), every time.Duration) *Progress {
	if every <= 0 {
		every = 100 * time.Millisecond
	}
	return &Progress{fn: fn, every: every, start: time.Now()}
}

// Update renders the current state if the rate limit allows. iter is the
// applied-LAC count, ands the current AND-node count, err the current
// error and budget the bound E_b it is allowed to reach.
func (p *Progress) Update(iter, ands int, err, budget float64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.done {
		return
	}
	now := time.Now()
	if p.wrote && now.Sub(p.last) < p.every {
		return
	}
	p.render(iter, ands, err, budget, now)
}

// Done finalises the line: renders nothing new, but terminates the
// in-place line with a newline so subsequent output starts clean.
// Idempotent; a Progress that never rendered writes nothing.
func (p *Progress) Done() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.done {
		return
	}
	p.done = true
	if p.wrote {
		fmt.Fprintln(p.w)
	}
}

// Renders returns how many lines were rendered (for tests).
func (p *Progress) Renders() int64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.renders
}

func (p *Progress) render(iter, ands int, err, budget float64, now time.Time) {
	if p.fn != nil {
		p.fn(iter, ands, err, budget)
		p.last = now
		p.renders++
		return
	}
	line := progressLine(iter, ands, err, budget, now.Sub(p.start))
	pad := ""
	if n := p.width - len(line); n > 0 {
		for i := 0; i < n; i++ {
			pad += " "
		}
	}
	if len(line) > p.width {
		p.width = len(line)
	}
	fmt.Fprintf(p.w, "\r%s%s", line, pad)
	p.last = now
	p.wrote = true
	p.renders++
}

// progressLine formats one status line. Pure so tests can pin the format.
func progressLine(iter, ands int, err, budget float64, elapsed time.Duration) string {
	frac := 0.0
	if budget > 0 {
		frac = err / budget
	}
	eta := "eta --"
	if frac > 0 && frac <= 1 {
		left := time.Duration(float64(elapsed) * (1 - frac) / frac)
		eta = "eta ~" + left.Round(100*time.Millisecond).String()
	}
	return fmt.Sprintf("iter %d  ANDs %d  err %.3g/%.3g (%.1f%%)  %s  %s",
		iter, ands, err, budget, 100*frac, elapsed.Round(100*time.Millisecond), eta)
}
