package sim

import (
	"math/rand"
	"testing"

	"dpals/internal/aig"
	"dpals/internal/bitvec"
)

// buildXorChain returns a graph computing a chain of XORs plus some sharing.
func buildSmall() (*aig.Graph, []aig.Lit) {
	g := aig.New("small")
	a, b, c := g.AddPI("a"), g.AddPI("b"), g.AddPI("c")
	x := g.Xor(a, b)
	y := g.And(x, c)
	z := g.Or(y, a)
	g.AddPO(z, "z")
	g.AddPO(x.Not(), "nx")
	return g, []aig.Lit{a, b, c, x, y, z}
}

// refEval computes node values for one pattern by direct interpretation.
func refEval(g *aig.Graph, piVals map[int32]bool) map[int32]bool {
	val := map[int32]bool{0: false}
	for _, v := range g.PIs() {
		val[v] = piVals[v]
	}
	for _, v := range g.Topo() {
		if g.Type(v) != aig.TypeAnd {
			continue
		}
		f0, f1 := g.Fanins(v)
		val[v] = (val[f0.Var()] != f0.IsCompl()) && (val[f1.Var()] != f1.IsCompl())
	}
	return val
}

func TestSimMatchesReference(t *testing.T) {
	g, _ := buildSmall()
	s := New(g, Options{Patterns: 256, Seed: 42})
	for p := 0; p < s.Patterns(); p++ {
		piVals := map[int32]bool{}
		for _, v := range g.PIs() {
			piVals[v] = s.Val(v).Get(p)
		}
		ref := refEval(g, piVals)
		for _, v := range g.Topo() {
			if g.Type(v) == aig.TypeAnd && s.Val(v).Get(p) != ref[v] {
				t.Fatalf("pattern %d node %d: sim=%v ref=%v", p, v, s.Val(v).Get(p), ref[v])
			}
		}
	}
}

func TestExhaustiveDistribution(t *testing.T) {
	g := aig.New("ex")
	var pis []aig.Lit
	for i := 0; i < 8; i++ {
		pis = append(pis, g.AddPI(""))
	}
	all := pis[0]
	for _, p := range pis[1:] {
		all = g.And(all, p)
	}
	g.AddPO(all, "and8")
	s := New(g, Options{Patterns: 256, Dist: Exhaustive{}})
	if s.Patterns() != 256 {
		t.Fatalf("Patterns = %d", s.Patterns())
	}
	// Input j of pattern i must equal bit j of i.
	for p := 0; p < 256; p++ {
		for j, l := range pis {
			want := p>>uint(j)&1 == 1
			if s.Val(l.Var()).Get(p) != want {
				t.Fatalf("pattern %d input %d: got %v want %v", p, j, s.Val(l.Var()).Get(p), want)
			}
		}
	}
	// AND of all inputs true only for pattern 255.
	out := bitvec.NewWords(s.Words())
	s.POVal(0, out)
	if out.Count() != 1 || !out.Get(255) {
		t.Fatalf("and8 wrong: count=%d", out.Count())
	}
}

func TestLitValComplement(t *testing.T) {
	g, _ := buildSmall()
	s := New(g, Options{Patterns: 128, Seed: 1})
	a := g.PIs()[0]
	dst := bitvec.NewWords(s.Words())
	s.LitVal(aig.MakeLit(a, true), dst)
	x := bitvec.NewWords(s.Words())
	x.Xor(dst, s.Val(a))
	if x.Count() != s.Patterns() {
		t.Errorf("complemented literal must differ on every pattern: %d/%d", x.Count(), s.Patterns())
	}
}

func TestThreadedMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := aig.New("rand")
	var lits []aig.Lit
	for i := 0; i < 12; i++ {
		lits = append(lits, g.AddPI(""))
	}
	for i := 0; i < 400; i++ {
		a := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 1)
		b := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 1)
		lits = append(lits, g.And(a, b))
	}
	for i := 0; i < 8; i++ {
		g.AddPO(lits[len(lits)-1-i], "")
	}
	s1 := New(g, Options{Patterns: 4096, Seed: 9, Threads: 1})
	s4 := New(g, Options{Patterns: 4096, Seed: 9, Threads: 4})
	for v := int32(0); v <= g.MaxVar(); v++ {
		if g.IsAnd(v) && !s1.Val(v).Equal(s4.Val(v)) {
			t.Fatalf("node %d differs between serial and threaded", v)
		}
	}
}

func TestIncrementalResim(t *testing.T) {
	g, _ := buildSmall()
	s := New(g, Options{Patterns: 512, Seed: 5})

	// Replace the XOR root x with constant true and resimulate incrementally.
	var xVar int32 = -1
	for v := int32(1); v <= g.MaxVar(); v++ {
		if g.IsAnd(v) && g.NumFanouts(v) >= 1 {
			// find the node driving PO "nx" (the xor output)
			if g.PO(1).Var() == v {
				xVar = v
			}
		}
	}
	if xVar < 0 {
		t.Fatal("could not locate xor node")
	}
	cs := g.ReplaceWithLit(xVar, aig.True)
	s.ResimulateFrom(cs.Rewired)

	// Compare against a fresh full simulation with identical PI values.
	ref := &Sim{}
	_ = ref
	full := New(g, Options{Patterns: 512, Seed: 5})
	for v := int32(0); v <= g.MaxVar(); v++ {
		if g.IsAnd(v) && !s.Val(v).Equal(full.Val(v)) {
			t.Fatalf("incremental resim diverges at node %d", v)
		}
	}
}

// Property-style test: a long random sequence of replacements with
// incremental resimulation always matches full resimulation.
func TestIncrementalResimRandomSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		g := aig.New("rand")
		var lits []aig.Lit
		for i := 0; i < 8; i++ {
			lits = append(lits, g.AddPI(""))
		}
		for i := 0; i < 120; i++ {
			a := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 1)
			b := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 1)
			lits = append(lits, g.And(a, b))
		}
		for i := 0; i < 6; i++ {
			g.AddPO(lits[len(lits)-1-rng.Intn(5)], "")
		}
		s := New(g, Options{Patterns: 256, Seed: int64(trial)})
		for step := 0; step < 15; step++ {
			var cand []int32
			for v := int32(1); v <= g.MaxVar(); v++ {
				if g.IsAnd(v) {
					cand = append(cand, v)
				}
			}
			if len(cand) == 0 {
				break
			}
			v := cand[rng.Intn(len(cand))]
			var repl aig.Lit
			switch rng.Intn(3) {
			case 0:
				repl = aig.False
			case 1:
				repl = aig.True
			default:
				w := g.PIs()[rng.Intn(g.NumPIs())]
				repl = aig.MakeLit(w, rng.Intn(2) == 1)
			}
			cs := g.ReplaceWithLit(v, repl)
			s.ResimulateFrom(cs.Rewired)
			full := New(g, Options{Patterns: 256, Seed: int64(trial)})
			// Compare only PO-reachable nodes: dangling-but-live nodes
			// (possible in this synthetic graph) carry no defined value.
			for _, w := range g.Topo() {
				if g.IsAnd(w) && !s.Val(w).Equal(full.Val(w)) {
					t.Fatalf("trial %d step %d: node %d diverged", trial, step, w)
				}
			}
		}
	}
}

func BenchmarkFullResim(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g := aig.New("bench")
	var lits []aig.Lit
	for i := 0; i < 32; i++ {
		lits = append(lits, g.AddPI(""))
	}
	for i := 0; i < 2000; i++ {
		a := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 1)
		bb := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 1)
		lits = append(lits, g.And(a, bb))
	}
	for i := 0; i < 16; i++ {
		g.AddPO(lits[len(lits)-1-i], "")
	}
	s := New(g, Options{Patterns: 8192, Seed: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Resimulate()
	}
}
