// Package sim provides bit-parallel Monte-Carlo simulation of AIGs: every
// node holds one bit per input pattern, packed 64 patterns per word, so one
// word-level AND evaluates 64 patterns at once. The simulator supports full
// resimulation (optionally multi-threaded across word ranges) and the
// incremental TFO-only resimulation the dual-phase framework relies on after
// applying a LAC.
package sim

import (
	"math/rand"

	"dpals/internal/aig"
	"dpals/internal/bitvec"
	"dpals/internal/par"
)

// Distribution fills the pattern words of one primary input. Implementations
// must be deterministic given the rng. Bits past the pattern count need not
// be masked; the simulator masks them.
type Distribution interface {
	Fill(pi int, v bitvec.Vec, rng *rand.Rand)
}

// Uniform is the default input distribution: every input bit is an
// independent fair coin.
type Uniform struct{}

// Fill implements Distribution.
func (Uniform) Fill(_ int, v bitvec.Vec, rng *rand.Rand) {
	for i := range v {
		v[i] = rng.Uint64()
	}
}

// Biased draws each input bit independently with a per-input probability
// of being 1 (inputs beyond len(P) use 0.5). Models non-uniform workload
// distributions — the framework's error estimation is distribution-
// agnostic (paper §I).
type Biased struct {
	P []float64
}

// Fill implements Distribution.
func (b Biased) Fill(pi int, v bitvec.Vec, rng *rand.Rand) {
	p := 0.5
	if pi < len(b.P) {
		p = b.P[pi]
	}
	for i := range v {
		var w uint64
		for bit := 0; bit < 64; bit++ {
			if rng.Float64() < p {
				w |= 1 << uint(bit)
			}
		}
		v[i] = w
	}
}

// Exhaustive enumerates all input combinations: pattern i assigns bit j of i
// to input j. Use with Patterns == 1<<NumPIs for exact error measurement on
// small circuits.
type Exhaustive struct{}

// Fill implements Distribution.
func (Exhaustive) Fill(pi int, v bitvec.Vec, _ *rand.Rand) {
	if pi < 6 {
		// Within a word the pattern index varies in the low 6 bits.
		var w uint64
		period := uint(1) << uint(pi)
		// Build the repeating pattern for this input: period zeros then
		// period ones.
		for b := uint(0); b < 64; b++ {
			if b/period%2 == 1 {
				w |= 1 << b
			}
		}
		for i := range v {
			v[i] = w
		}
		return
	}
	// Across words: word index w covers patterns [64w, 64w+63]; input pi
	// is bit pi of the pattern index, constant within a word.
	shift := uint(pi - 6)
	for i := range v {
		if uint64(i)>>shift&1 == 1 {
			v[i] = ^uint64(0)
		} else {
			v[i] = 0
		}
	}
}

// Options configures a simulator.
type Options struct {
	Patterns int   // number of Monte-Carlo patterns (rounded up to 64)
	Seed     int64 // RNG seed for reproducibility
	// Threads is the worker count for full resimulation, with the
	// pipeline-wide semantics of package par: ≤0 selects all CPUs
	// (runtime.GOMAXPROCS), 1 runs serially. Resolved once, here; results
	// are bit-identical for every value.
	Threads int
	Dist    Distribution // input distribution; nil means Uniform
}

// Sim holds simulation state for one graph. The value vectors track the
// graph incrementally: after a structural edit, call ResimulateFrom with the
// dirty nodes (or Resimulate for a full pass).
type Sim struct {
	g        *aig.Graph
	patterns int
	words    int
	threads  int
	lastMask uint64        // final-word mask of the pattern count
	arena    *bitvec.Arena // backs every value vector; never reset
	val      []bitvec.Vec  // per variable id
	dirty    []bool        // scratch for incremental resim
	touched  []int32       // ResimulateFrom scratch: dirtied nodes
	changed  []int32       // ResimulateFrom scratch: the returned slice
}

// New builds a simulator, draws the input patterns, and runs a full
// simulation.
func New(g *aig.Graph, opt Options) *Sim {
	if opt.Patterns <= 0 {
		opt.Patterns = 1024
	}
	words := bitvec.Words(opt.Patterns)
	patterns := words * 64 // use every drawn bit: keeps masking trivial
	if _, ok := opt.Dist.(Exhaustive); ok {
		patterns = opt.Patterns // exact count matters; mask below
	}
	s := &Sim{
		g:        g,
		patterns: patterns,
		words:    words,
		threads:  par.Workers(opt.Threads),
		lastMask: bitvec.MaskWord(patterns),
		arena:    bitvec.NewArena(words),
		val:      make([]bitvec.Vec, g.NumVars()),
		dirty:    make([]bool, g.NumVars()),
	}
	dist := opt.Dist
	if dist == nil {
		dist = Uniform{}
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	s.val[0] = s.arena.Alloc()
	s.val[0].Clear() // constant node: all zero
	for i, v := range g.PIs() {
		s.val[v] = s.arena.Alloc()
		dist.Fill(i, s.val[v], rng)
		s.val[v].Mask(s.patterns)
	}
	s.Resimulate()
	return s
}

// Patterns returns the number of simulated patterns.
func (s *Sim) Patterns() int { return s.patterns }

// Words returns the number of 64-bit words per value vector.
func (s *Sim) Words() int { return s.words }

// Graph returns the simulated graph.
func (s *Sim) Graph() *aig.Graph { return s.g }

// Val returns the value vector of variable v. The vector is owned by the
// simulator; callers must not modify it.
func (s *Sim) Val(v int32) bitvec.Vec { return s.val[v] }

// LitVal writes the value of literal l into dst.
func (s *Sim) LitVal(l aig.Lit, dst bitvec.Vec) {
	src := s.val[l.Var()]
	if l.IsCompl() {
		dst.Not(src)
		dst.Mask(s.patterns)
	} else {
		dst.CopyFrom(src)
	}
}

// POVal writes the value of the i-th primary output into dst.
func (s *Sim) POVal(i int, dst bitvec.Vec) { s.LitVal(s.g.PO(i), dst) }

func complMask(c bool) uint64 {
	if c {
		return ^uint64(0)
	}
	return 0
}

// ensure guarantees a value vector exists for v (new nodes appear when the
// graph grows after the simulator was created).
func (s *Sim) ensure(v int32) {
	if int(v) >= len(s.val) {
		grown := make([]bitvec.Vec, s.g.NumVars())
		copy(grown, s.val)
		s.val = grown
		gd := make([]bool, s.g.NumVars())
		copy(gd, s.dirty)
		s.dirty = gd
	}
	if s.val[v] == nil {
		s.val[v] = s.arena.Alloc()
		s.val[v].Clear() // arena rows hold garbage; new nodes must read 0
	}
}

func (s *Sim) evalNode(v int32, lo, hi int) {
	f0, f1 := s.g.Fanins(v)
	a, b := s.val[f0.Var()], s.val[f1.Var()]
	m0, m1 := complMask(f0.IsCompl()), complMask(f1.IsCompl())
	dst := s.val[v]
	for i := lo; i < hi; i++ {
		dst[i] = (a[i] ^ m0) & (b[i] ^ m1)
	}
	if hi == s.words {
		dst.Mask(s.patterns)
	}
}

// Resimulate recomputes every node value from the PIs. With more than one
// worker the word range is split across workers (node values are
// independent per word), yielding bit-identical results to a serial pass.
func (s *Sim) Resimulate() {
	order := s.g.Topo()
	for _, v := range order {
		if s.g.Type(v) == aig.TypeAnd {
			s.ensure(v)
		}
	}
	nw := s.threads
	if nw > s.words {
		nw = s.words
	}
	if nw <= 1 {
		for _, v := range order {
			if s.g.Type(v) == aig.TypeAnd {
				s.evalNode(v, 0, s.words)
			}
		}
		return
	}
	chunk := (s.words + nw - 1) / nw
	par.For(nw, nw, func(_, w int) {
		lo := w * chunk
		hi := lo + chunk
		if hi > s.words {
			hi = s.words
		}
		if lo >= hi {
			return
		}
		for _, v := range order {
			if s.g.Type(v) == aig.TypeAnd {
				s.evalNode(v, lo, hi)
			}
		}
	})
}

// ResimulateFrom incrementally recomputes values after a structural change.
// roots are the nodes whose fanins were rewired (aig.ChangeSet.Rewired);
// only their transitive fanout is revisited, and propagation stops early at
// nodes whose value did not actually change. It returns the variables whose
// value vector changed.
//
// The returned slice is simulator-owned scratch, valid only until the next
// ResimulateFrom call — callers that need it longer must copy it.
func (s *Sim) ResimulateFrom(roots []int32) []int32 {
	order := s.g.Topo()
	touched := s.touched[:0]
	setDirty := func(v int32) {
		if int(v) >= len(s.dirty) {
			s.ensure(v)
		}
		if !s.dirty[v] {
			s.dirty[v] = true
			touched = append(touched, v)
		}
	}
	for _, r := range roots {
		setDirty(r)
	}
	changed := s.changed[:0]
	for _, v := range order {
		if int(v) >= len(s.dirty) {
			s.ensure(v)
		}
		if !s.dirty[v] || s.g.Type(v) != aig.TypeAnd {
			continue
		}
		s.ensure(v)
		// Fused save–evaluate–compare: one pass over the words, no
		// scratch vector, identical result to the unfused sequence.
		f0, f1 := s.g.Fanins(v)
		a, b := s.val[f0.Var()], s.val[f1.Var()]
		m0, m1 := complMask(f0.IsCompl()), complMask(f1.IsCompl())
		if s.val[v].AndMaybeNotDiff(a, b, m0, m1, s.lastMask) != 0 {
			changed = append(changed, v)
			for _, f := range s.g.Fanouts(v) {
				setDirty(f)
			}
		}
	}
	for _, v := range touched {
		s.dirty[v] = false
	}
	s.touched = touched[:0]
	s.changed = changed
	return changed
}
