package dpals_test

// Regression tests for the public-API correctness sweep of the alsd PR:
// weight-vector validation at the boundary, well-defined Seed-0 semantics,
// and the "c is not modified" contract under concurrent use of one
// Circuit — the synthesis server's steady state.

import (
	"bytes"
	"reflect"
	"strings"
	"sync"
	"testing"

	"dpals"
)

// Pre-fix, SetWeights accepted a slice of any length and a mismatched
// vector silently mis-scored MED/MSE (or panicked inside metric).
func TestSetWeightsValidatesLength(t *testing.T) {
	c := dpals.NewAdder(4) // 8 inputs, 5 outputs
	if err := c.SetWeights([]float64{1, 2}); err == nil {
		t.Fatalf("SetWeights accepted 2 weights for %d outputs", c.NumOutputs())
	}
	if err := c.SetWeights(make([]float64, c.NumOutputs()+1)); err == nil {
		t.Fatalf("SetWeights accepted %d weights for %d outputs", c.NumOutputs()+1, c.NumOutputs())
	}
	w := []float64{1, 2, 4, 8, 16}
	if err := c.SetWeights(w); err != nil {
		t.Fatalf("SetWeights rejected a matching vector: %v", err)
	}
	// The slice is copied: caller-side mutation must not leak in.
	w[0] = 1e9
	if got := c.Weights()[0]; got != 1 {
		t.Fatalf("SetWeights aliased the caller's slice: weight[0] = %v", got)
	}
	if err := c.SetWeights(nil); err != nil || c.Weights() != nil {
		t.Fatalf("SetWeights(nil) = %v, weights %v; want reset to nil", err, c.Weights())
	}
}

func TestApproximateRejectsMismatchedWeights(t *testing.T) {
	c := dpals.NewAdder(4)
	_, err := dpals.Approximate(c, dpals.Options{
		Metric:    dpals.MED,
		Threshold: 1,
		Patterns:  256,
		Weights:   []float64{1, 2, 4}, // 5 outputs
	})
	if err == nil {
		t.Fatal("Approximate accepted a 3-entry weight vector for a 5-output circuit")
	}
	if !strings.Contains(err.Error(), "weights") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

// Pre-fix, ApproximateContext mapped "Seed != 0" to the internal default,
// so an explicit Seed: 0 silently aliased to seed 1 with nothing a caller
// (or a result cache keyed on the seed) could observe. The fix makes the
// alias part of the contract: Seed 0 IS DefaultSeed, resolved once at the
// boundary and visible through Options.Resolved.
func TestSeedZeroResolvesToDefaultSeed(t *testing.T) {
	if got := (dpals.Options{}).Resolved().Seed; got != dpals.DefaultSeed {
		t.Fatalf("zero Options resolve to seed %d, want DefaultSeed (%d)", got, dpals.DefaultSeed)
	}
	if got := (dpals.Options{Seed: 7}).Resolved().Seed; got != 7 {
		t.Fatalf("explicit seed 7 resolved to %d", got)
	}

	run := func(seed int64) []byte {
		t.Helper()
		c := dpals.NewMultiplier(3, 3, false)
		res, err := dpals.Approximate(c, dpals.Options{
			Flow: dpals.DP, Metric: dpals.ER, Threshold: 0.05,
			Patterns: 512, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.Circuit.WriteAIGER(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	zero, def := run(dpals.UseDefaultSeed), run(dpals.DefaultSeed)
	if !bytes.Equal(zero, def) {
		t.Fatal("Seed 0 is documented as an alias for DefaultSeed but produced a different circuit")
	}
}

// Resolving must be idempotent and must never merge distinct explicit
// seeds — the property the server's cache key construction leans on.
func TestResolvedIdempotentAndSeedPreserving(t *testing.T) {
	o := dpals.Options{Seed: 3, Patterns: 100, Threads: 2, M: -1, MaxIters: -5}
	r := o.Resolved()
	if rr := r.Resolved(); !reflect.DeepEqual(r, rr) {
		t.Fatalf("Resolved not idempotent: %+v vs %+v", r, rr)
	}
	if r.Seed != 3 || r.Patterns != 100 || r.M != 0 || r.MaxIters != 0 {
		t.Fatalf("Resolved mangled explicit values: %+v", r)
	}
	a := dpals.Options{Seed: 2}.Resolved()
	b := dpals.Options{Seed: 3}.Resolved()
	if a.Seed == b.Seed {
		t.Fatal("two distinct explicit seeds resolved to the same seed")
	}
}

// The "c is not modified" contract of Approximate must hold under
// concurrency: N goroutines sharing one *Circuit is the server's steady
// state. Pre-fix, every call swept and technology-mapped the SHARED
// graph, racing on its lazily cached traversal state (topo order, levels,
// mark scratch) — under -race on a multi-core machine this test fails on
// that code (see TestConcurrentReadersDuringApproximate for the variant
// that fails even on one core). It also pins that concurrent runs return
// bit-identical circuits.
func TestConcurrentApproximateSharedCircuit(t *testing.T) {
	shared := dpals.NewMultiplier(4, 4, false)
	opt := dpals.Options{
		Flow: dpals.DPSA, Metric: dpals.ER, Threshold: 0.02,
		Patterns: 1024, Seed: 5, Threads: 1,
	}

	const workers = 8
	results := make([][]byte, workers)
	errs := make([]error, workers)
	start := make(chan struct{}) // barrier: all workers hit the cold graph at once
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			res, err := dpals.Approximate(shared, opt)
			if err != nil {
				errs[i] = err
				return
			}
			var buf bytes.Buffer
			if err := res.Circuit.WriteAIGER(&buf); err != nil {
				errs[i] = err
				return
			}
			results[i] = buf.Bytes()
		}(i)
	}
	close(start)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	for i := 1; i < workers; i++ {
		if !bytes.Equal(results[0], results[i]) {
			t.Fatalf("concurrent runs with identical options diverged (worker 0 vs %d)", i)
		}
	}

	// The shared circuit itself must be untouched: a fresh identical
	// circuit still writes the same bytes.
	var before, after bytes.Buffer
	if err := dpals.NewMultiplier(4, 4, false).WriteAIGER(&before); err != nil {
		t.Fatal(err)
	}
	if err := shared.WriteAIGER(&after); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Fatal("shared input circuit was modified by concurrent Approximate calls")
	}
}

// Readers hammering a shared Circuit while a synthesis runs against it —
// a server answering metadata queries for a circuit that is also being
// approximated. This is the seed-failing shape of the shared-graph race:
// on the pre-fix code the cold traversal caches (Topo/Levels/mark) are
// written by Depth/Area/WriteAIGER/Approximate with no synchronisation,
// and -race reports it reliably even on a single-core machine, where the
// all-Approximate test above can be serialised into accidental
// happens-before chains by the engine's internal locks.
func TestConcurrentReadersDuringApproximate(t *testing.T) {
	shared := dpals.NewMultiplier(4, 4, false)
	opt := dpals.Options{
		Flow: dpals.DP, Metric: dpals.ER, Threshold: 0.02,
		Patterns: 1024, Seed: 5, Threads: 1,
	}

	const readers = 8
	errs := make([]error, readers+1)
	start := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		_, errs[readers] = dpals.Approximate(shared, opt)
	}()
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			_ = shared.Depth()
			_ = shared.Area()
			var buf bytes.Buffer
			errs[i] = shared.WriteAIGER(&buf)
		}(i)
	}
	close(start)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
	}
}
