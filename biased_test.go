package dpals

import (
	"math"
	"testing"
)

// Biased input distributions: the synthesised circuit must respect the
// bound under its own training distribution, and that figure must match
// an independent measurement under the same distribution.
func TestBiasedDistributionFlow(t *testing.T) {
	c := NewMultiplier(6, 6, false)
	// Skew: operand a mostly small (high bits rarely set).
	probs := []float64{0.5, 0.5, 0.3, 0.2, 0.1, 0.05, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5}
	R := ReferenceError(c)
	res, err := Approximate(c, Options{
		Flow: DPSA, Metric: MED, Threshold: R,
		Patterns: 2048, InputProbabilities: probs,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := MeasureErrorBiased(c, res.Circuit, MED, nil, 2048, 1, probs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-res.Error) > 1e-9*(1+got) {
		t.Fatalf("reported %v, measured %v under the training distribution", res.Error, got)
	}
	if res.Error > R {
		t.Fatalf("error %v exceeds bound", res.Error)
	}
	if res.Stats.Applied == 0 {
		t.Error("nothing applied")
	}
	// Under the skewed distribution, the synthesiser should cut more than
	// under uniform for the same bound more often than not — at minimum,
	// the uniform-world error of this circuit will typically exceed the
	// biased-world error. Just sanity-check both are measurable.
	uni, err := MeasureError(c, res.Circuit, MED, nil, 2048, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("biased-trained circuit: %d gates; MED biased %.2f vs uniform %.2f (R=%.2f)",
		res.Circuit.NumGates(), got, uni, R)
}

func TestBiasedProbabilityValidation(t *testing.T) {
	c := NewAdder(6)
	if _, err := Approximate(c, Options{
		Flow: DP, Metric: ER, Threshold: 0.1,
		InputProbabilities: []float64{1.5},
	}); err == nil {
		t.Error("out-of-range probability accepted")
	}
}
