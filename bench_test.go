// Benchmarks regenerating the paper's tables and figures. Each benchmark
// is a full (smoke-scale) rerun of one experiment of §IV; custom metrics
// report the quantities the paper's claims are about (speedups, ADP
// deltas, candidate-set hit rates). For the complete experiments, use
// cmd/repro; EXPERIMENTS.md records the paper-vs-measured comparison.
package dpals_test

import (
	"context"
	"encoding/json"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"dpals"
	"dpals/internal/bitvec"
	"dpals/internal/cpm"
	"dpals/internal/cut"
	"dpals/internal/gen"
	"dpals/internal/lac"
	"dpals/internal/metric"
	"dpals/internal/obs"
	"dpals/internal/repro"
	"dpals/internal/sim"
	"dpals/internal/techmap"
)

// writeArtifact renders one observability artifact of the benchmark run;
// best-effort (a read-only checkout only costs the artifact, not the
// benchmark).
func writeArtifact(b *testing.B, path string, write func(io.Writer) error) {
	b.Helper()
	f, err := os.Create(path)
	if err != nil {
		b.Logf("could not write %s: %v", path, err)
		return
	}
	defer f.Close()
	if err := write(f); err != nil {
		b.Logf("could not write %s: %v", path, err)
	}
}

// smokeCfg keeps `go test -bench=.` tractable on one core: subset of
// circuits, single (median) thresholds, 512 patterns, 40-LAC cap on large
// circuits.
func smokeCfg() repro.Config {
	return repro.Config{Out: io.Discard, Scaled: true, Quick: true, Patterns: 512, CapIters: 40}
}

// BenchmarkTableI regenerates the benchmark-information table: circuit
// construction plus technology mapping for the whole suite.
func BenchmarkTableI(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, bench := range gen.Suite(true) {
			_ = techmap.Summarise(bench.Graph)
		}
	}
}

// BenchmarkFig4 regenerates the candidate-node-set experiment. The
// reported metric hit_k30 is the average T_30/30 across circuits — the
// paper's claim is that it exceeds 80%.
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := repro.Fig4(smokeCfg())
		sum := 0.0
		for _, r := range rows {
			sum += r.Rate[2] // k = 30
		}
		if len(rows) > 0 {
			b.ReportMetric(100*sum/float64(len(rows)), "hit_k30_%")
		}
	}
}

// BenchmarkTableII_Small regenerates the small-circuit MSE comparison.
// speedup_dpsa is mean-runtime(VECBEE l=∞) / mean-runtime(DP-SA) — the
// paper reports 9.0×.
func BenchmarkTableII_Small(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := repro.TableII(smokeCfg(), true)
		reportTableII(b, rows)
	}
}

// BenchmarkTableII_Large regenerates the large-circuit MSE comparison.
// The paper reports DP 21.8× faster than VECBEE(l=∞) without quality loss.
func BenchmarkTableII_Large(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := repro.TableII(smokeCfg(), false)
		reportTableII(b, rows)
	}
}

func reportTableII(b *testing.B, rows []repro.TableIIRow) {
	b.Helper()
	var rtInf, rtDP, rtDPSA time.Duration
	var adpInf, adpDP float64
	for _, r := range rows {
		rtInf += r.Runtime[0]
		rtDP += r.Runtime[2]
		rtDPSA += r.Runtime[3]
		adpInf += r.ADP[0]
		adpDP += r.ADP[2]
	}
	if rtDP > 0 {
		b.ReportMetric(float64(rtInf)/float64(rtDP), "speedup_dp")
	}
	if rtDPSA > 0 {
		b.ReportMetric(float64(rtInf)/float64(rtDPSA), "speedup_dpsa")
	}
	if n := float64(len(rows)); n > 0 {
		b.ReportMetric(100*(adpDP-adpInf)/n, "adp_dp_minus_inf_pp")
	}
}

// BenchmarkAblationCutUpdate isolates §III-B: incremental disjoint-cut
// repair vs full recomputation over a sequence of LACs. The reported
// speedup_x is fresh/incremental time.
func BenchmarkAblationCutUpdate(b *testing.B) {
	g := gen.MultU(10, 10)
	for i := 0; i < b.N; i++ {
		inc, fresh, avgSv := repro.AblationCutUpdate(g, 20, 1)
		if inc > 0 {
			b.ReportMetric(float64(fresh)/float64(inc), "speedup_x")
		}
		b.ReportMetric(avgSv, "avg_Sv_nodes")
	}
}

// BenchmarkAblationPartialCPM isolates §III-C: the partial CPM over
// N(S_cand) for M=60 vs the full CPM.
func BenchmarkAblationPartialCPM(b *testing.B) {
	g := gen.MultU(10, 10)
	for i := 0; i < b.N; i++ {
		partial, full, closure := repro.AblationPartialCPM(g, 60, 2048, 1)
		if partial > 0 {
			b.ReportMetric(float64(full)/float64(partial), "speedup_x")
		}
		b.ReportMetric(float64(closure), "closure_nodes")
	}
}

// BenchmarkAblationMSweep quantifies the candidate-set-size trade-off
// behind the §III-D self-adaption: DP runtime at M=15 vs M=120.
func BenchmarkAblationMSweep(b *testing.B) {
	bench := gen.SmallSuite(true)[3] // sm9x8
	for i := 0; i < b.N; i++ {
		rows := repro.AblationMSweep(bench, []int{15, 60, 120}, repro.Config{Out: io.Discard, Patterns: 1024})
		if len(rows) == 3 && rows[2].Runtime > 0 {
			b.ReportMetric(float64(rows[0].Runtime)/float64(rows[2].Runtime), "t_M15_over_M120")
		}
	}
}

// BenchmarkComprehensiveAnalysis measures the tentpole of the parallel
// pipeline: one comprehensive error-analysis pass (step 1 disjoint cuts,
// step 2 CPM, step 3 LAC evaluation) on a ≥4000-AND circuit, serial vs all
// CPUs. The parallel result is verified bit-identical to the serial one
// every iteration; speedup_x reports serial/parallel wall-clock (≈1.0 on a
// single-core machine, where the parallel path still runs but cannot win).
func BenchmarkComprehensiveAnalysis(b *testing.B) {
	g := gen.VecMul(4, 10) // 4730 AND nodes
	if n := g.NumAnds(); n < 4000 {
		b.Fatalf("benchmark circuit too small: %d ANDs", n)
	}
	s := sim.New(g, sim.Options{Patterns: 2048, Seed: 1})
	exact := make([]bitvec.Vec, g.NumPOs())
	for o := range exact {
		exact[o] = bitvec.NewWords(s.Words())
		s.POVal(o, exact[o])
	}
	st := metric.NewState(metric.MSE, exact, metric.UnsignedWeights(g.NumPOs()), s.Patterns())
	generator := lac.NewGenerator(g, s, lac.Options{Constants: true})
	var targets []int32
	for _, v := range g.Topo() {
		if g.IsAnd(v) {
			targets = append(targets, v)
		}
	}
	pass := func(threads int) ([]lac.NodeBest, [3]time.Duration) {
		var tm [3]time.Duration
		t0 := time.Now()
		cuts := cut.NewSet(g, threads)
		tm[0] = time.Since(t0)
		t1 := time.Now()
		res := cpm.BuildDisjoint(g, s, cuts, nil, threads)
		tm[1] = time.Since(t1)
		t2 := time.Now()
		bests, _ := lac.EvaluateTargets(generator, res, st, targets, threads)
		tm[2] = time.Since(t2)
		return bests, tm
	}
	var serialTotal, parTotal time.Duration
	for i := 0; i < b.N; i++ {
		sBests, sTm := pass(1)
		pBests, pTm := pass(runtime.GOMAXPROCS(0))
		if len(sBests) != len(pBests) {
			b.Fatalf("parallel pass diverged: %d vs %d bests", len(sBests), len(pBests))
		}
		for j := range sBests {
			if sBests[j] != pBests[j] {
				b.Fatalf("parallel pass diverged at best %d: %+v vs %+v", j, sBests[j], pBests[j])
			}
		}
		serialTotal += sTm[0] + sTm[1] + sTm[2]
		parTotal += pTm[0] + pTm[1] + pTm[2]
		b.ReportMetric(float64(pTm[0].Microseconds()), "cuts_us")
		b.ReportMetric(float64(pTm[1].Microseconds()), "cpm_us")
		b.ReportMetric(float64(pTm[2].Microseconds()), "eval_us")
	}
	if parTotal > 0 {
		b.ReportMetric(float64(serialTotal)/float64(parTotal), "speedup_x")
	}
}

// BenchmarkDualPhase measures a full multi-round dual-phase run (several
// comprehensive analyses plus the phase-2 incremental iterations) on a
// ~5k-AND circuit, with the persistent incremental CPM cache and the
// cross-round phase-1 warm start ("cache") and with the pre-reuse
// from-scratch rebuild of everything ("rebuild": NoCPMCache +
// NoWarmStart). Both modes are verified to produce identical results
// before timing starts, and the warm run must reuse phase-1 state and
// make warm comprehensive passes ≥1.4× faster per pass than cold ones.
// After the run the measurements are written to results/BENCH_phase2.json
// (ns/op, allocs/op, phase-1 time and reuse rate, rows recomputed per
// phase-2 iteration) so the perf trajectory is machine-readable.
func BenchmarkDualPhase(b *testing.B) {
	c := dpals.NewVecMul(4, 10) // 4730 AND nodes
	if n := c.NumGates(); n < 4000 {
		b.Fatalf("benchmark circuit too small: %d ANDs", n)
	}
	opts := func(rebuild bool) dpals.Options {
		return dpals.Options{
			Flow: dpals.DP, Metric: dpals.MSE,
			Threshold: dpals.ReferenceError(c) * dpals.ReferenceError(c),
			Patterns:  1024, Seed: 1, Threads: 1,
			UseConstLACs: true, MaxIters: 24,
			// Small fixed round shape: 1 phase-1 apply + N phase-2 applies
			// per round, so MaxIters 24 spans eight rounds and the
			// cross-round warm start fires seven times. N is kept small —
			// every apply invalidates the TFI cones of its fanout, so fewer
			// applies per round leave more phase-1 rows reusable.
			M: 18, N: 2,
			NoCPMCache: rebuild, NoWarmStart: rebuild,
		}
	}
	// Self-check: the cache must not change the synthesis result. The cache
	// run is traced and metered; besides proving observation does not
	// perturb the benchmark workload, its artifacts (trace + metrics, for
	// the CI upload and the Fig. 4-style time-breakdown recipe in
	// EXPERIMENTS.md) are written next to BENCH_phase2.json.
	tracer := obs.New()
	mets := obs.NewMetrics()
	ctx := obs.WithMetrics(obs.WithTracer(context.Background(), tracer), mets)
	withCache, err := dpals.ApproximateContext(ctx, c, opts(false))
	if err != nil {
		b.Fatal(err)
	}
	withoutCache, err := dpals.Approximate(c, opts(true))
	if err != nil {
		b.Fatal(err)
	}
	if withCache.Error != withoutCache.Error ||
		withCache.Stats.Applied != withoutCache.Stats.Applied ||
		withCache.Circuit.NumGates() != withoutCache.Circuit.NumGates() {
		b.Fatalf("cache changed the result: error %g vs %g, applied %d vs %d, gates %d vs %d",
			withCache.Error, withoutCache.Error,
			withCache.Stats.Applied, withoutCache.Stats.Applied,
			withCache.Circuit.NumGates(), withoutCache.Circuit.NumGates())
	}
	// The whole point of the pooled cache is allocation reuse: a dual-phase
	// run on this circuit must recycle diff vectors, or the free list is
	// broken.
	if withCache.Stats.Pool.Reuses == 0 {
		b.Fatalf("CPM pool never reused a vector: %+v", withCache.Stats.Pool)
	}
	// The point of the cross-round warm start is cheaper rounds ≥2: the warm
	// run must actually warm-start passes, reuse phase-1 CPM rows, and spend
	// substantially less wall-clock per warm comprehensive pass than per
	// cold one. The ≥1.4× floor is deliberately conservative — the observed
	// ratio is far higher — so the gate survives machine noise.
	warmPasses := withCache.Stats.WarmComprehensive
	coldPasses := withCache.Stats.Comprehensive - warmPasses
	if warmPasses == 0 || coldPasses == 0 {
		b.Fatalf("degenerate round split: %d warm / %d cold comprehensive passes",
			warmPasses, coldPasses)
	}
	if r := withCache.Stats.Phase1ReuseRate(); r <= 0 {
		b.Fatalf("warm run reused no phase-1 CPM rows (reuse rate %v)", r)
	}
	warmPer := withCache.Stats.Phase1WarmTime / time.Duration(warmPasses)
	coldPer := (withCache.Stats.Phase1Time - withCache.Stats.Phase1WarmTime) / time.Duration(coldPasses)
	if warmPer <= 0 || coldPer < warmPer*14/10 {
		b.Fatalf("warm phase-1 pass not ≥1.4× faster: warm %v/pass, cold %v/pass", warmPer, coldPer)
	}
	writeArtifact(b, "results/BENCH_trace.json", tracer.WritePerfetto)
	writeArtifact(b, "results/BENCH_metrics.jsonl", mets.WriteJSONL)

	type modeResult struct {
		NsPerOp     int64   `json:"ns_per_op"`
		AllocsPerOp int64   `json:"allocs_per_op"`
		BytesPerOp  int64   `json:"bytes_per_op"`
		RowsReused  int64   `json:"cpm_rows_reused"`
		RowsRecomp  int64   `json:"cpm_rows_recomputed"`
		RowsPerIter float64 `json:"rows_recomputed_per_phase2_iter"`
		ReuseRate   float64 `json:"reuse_rate"`
		Phase2Iters int     `json:"phase2_iters"`
		AppliedLACs int     `json:"applied_lacs"`
		// Phase-1 (comprehensive-analysis) slice of the run: its wall-clock
		// time per op, the fraction of its CPM rows served by the
		// cross-round warm start, and how many applied LACs repaired the
		// cut set incrementally instead of forcing a rebuild. The latter
		// two are deterministic; zero reuse in "rebuild" mode is by design.
		Phase1Ns        int64   `json:"phase1_ns"`
		Phase1ReuseRate float64 `json:"phase1_reuse_rate"`
		CutUpdates      int64   `json:"cut_updates_incremental"`
	}
	results := map[string]*modeResult{}
	var warmSpeedup float64

	for _, mode := range []struct {
		name    string
		rebuild bool
	}{{"cache", false}, {"rebuild", true}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			var ms0, ms1 runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&ms0)
			start := time.Now()
			var last *dpals.Result
			for i := 0; i < b.N; i++ {
				res, err := dpals.Approximate(c, opts(mode.rebuild))
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			elapsed := time.Since(start)
			runtime.ReadMemStats(&ms1)
			mr := &modeResult{
				NsPerOp:         elapsed.Nanoseconds() / int64(b.N),
				AllocsPerOp:     int64(ms1.Mallocs-ms0.Mallocs) / int64(b.N),
				BytesPerOp:      int64(ms1.TotalAlloc-ms0.TotalAlloc) / int64(b.N),
				RowsReused:      last.Stats.CPMRowsReused,
				RowsRecomp:      last.Stats.CPMRowsRecomputed,
				ReuseRate:       last.Stats.ReuseRate(),
				Phase2Iters:     last.Stats.Incremental,
				AppliedLACs:     last.Stats.Applied,
				Phase1Ns:        last.Stats.Phase1Time.Nanoseconds(),
				Phase1ReuseRate: last.Stats.Phase1ReuseRate(),
				CutUpdates:      int64(last.Stats.CutUpdates),
			}
			if mode.name == "cache" {
				// Per-pass phase-1 speedup of rounds ≥2, from the untraced
				// timed run: warm passes vs the cold ones of the same run.
				if w, c := last.Stats.WarmComprehensive, last.Stats.Comprehensive-last.Stats.WarmComprehensive; w > 0 && c > 0 {
					warm := float64(last.Stats.Phase1WarmTime) / float64(w)
					cold := float64(last.Stats.Phase1Time-last.Stats.Phase1WarmTime) / float64(c)
					if warm > 0 {
						warmSpeedup = cold / warm
					}
				}
				b.ReportMetric(100*mr.Phase1ReuseRate, "phase1_reuse_%")
			}
			if last.Stats.Incremental > 0 {
				// Phase-2 recompute volume: total recomputed minus the
				// comprehensive passes' full rebuilds is not separable from
				// Stats alone in rebuild mode, so report the overall mean.
				mr.RowsPerIter = float64(mr.RowsRecomp) / float64(last.Stats.Incremental+last.Stats.Comprehensive)
			}
			b.ReportMetric(100*mr.ReuseRate, "reuse_%")
			b.ReportMetric(mr.RowsPerIter, "rows_recomputed/analysis")
			results[mode.name] = mr
		})
	}

	if results["cache"] != nil && results["rebuild"] != nil {
		if warmSpeedup < 1.4 {
			b.Fatalf("phase-1 warm speedup %.2fx below the 1.4x floor", warmSpeedup)
		}
		payload := struct {
			Circuit     string                 `json:"circuit"`
			Gates       int                    `json:"gates"`
			Patterns    int                    `json:"patterns"`
			MaxIters    int                    `json:"max_iters"`
			Modes       map[string]*modeResult `json:"modes"`
			SpeedupX    float64                `json:"speedup_x"`
			AllocsRatio float64                `json:"allocs_ratio"`
			// Per-pass phase-1 speedup of the warm rounds (≥2) over the
			// cold first round, within the "cache" mode's timed run.
			Phase1WarmSpeedupX float64 `json:"phase1_warm_speedup_x"`
		}{
			Circuit: "vecmul4x10", Gates: c.NumGates(), Patterns: 1024, MaxIters: 24,
			Modes: results, Phase1WarmSpeedupX: warmSpeedup,
		}
		if ns := results["cache"].NsPerOp; ns > 0 {
			payload.SpeedupX = float64(results["rebuild"].NsPerOp) / float64(ns)
		}
		if a := results["cache"].AllocsPerOp; a > 0 {
			payload.AllocsRatio = float64(results["rebuild"].AllocsPerOp) / float64(a)
		}
		data, err := json.MarshalIndent(payload, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile("results/BENCH_phase2.json", append(data, '\n'), 0o644); err != nil {
			b.Logf("could not write results/BENCH_phase2.json: %v", err)
		}
	}
}

// BenchmarkTableIII regenerates the AccALS vs DP-SA comparison under ER
// and MED (single-threaded, as in the paper). speedup_med is
// runtime(AccALS)/runtime(DP-SA) under MED — the paper reports 2.1×.
func BenchmarkTableIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := smokeCfg()
		rows := repro.TableIII(cfg)
		var rtAccER, rtDPER, rtAccMED, rtDPMED time.Duration
		for _, r := range rows {
			rtAccER += r.RTER[0]
			rtDPER += r.RTER[1]
			rtAccMED += r.RTMED[0]
			rtDPMED += r.RTMED[1]
		}
		if rtDPER > 0 {
			b.ReportMetric(float64(rtAccER)/float64(rtDPER), "speedup_er")
		}
		if rtDPMED > 0 {
			b.ReportMetric(float64(rtAccMED)/float64(rtDPMED), "speedup_med")
		}
	}
}
