// Benchmarks regenerating the paper's tables and figures. Each benchmark
// is a full (smoke-scale) rerun of one experiment of §IV; custom metrics
// report the quantities the paper's claims are about (speedups, ADP
// deltas, candidate-set hit rates). For the complete experiments, use
// cmd/repro; EXPERIMENTS.md records the paper-vs-measured comparison.
package dpals_test

import (
	"io"
	"testing"
	"time"

	"dpals/internal/gen"
	"dpals/internal/repro"
	"dpals/internal/techmap"
)

// smokeCfg keeps `go test -bench=.` tractable on one core: subset of
// circuits, single (median) thresholds, 512 patterns, 40-LAC cap on large
// circuits.
func smokeCfg() repro.Config {
	return repro.Config{Out: io.Discard, Scaled: true, Quick: true, Patterns: 512, CapIters: 40}
}

// BenchmarkTableI regenerates the benchmark-information table: circuit
// construction plus technology mapping for the whole suite.
func BenchmarkTableI(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, bench := range gen.Suite(true) {
			_ = techmap.Summarise(bench.Graph)
		}
	}
}

// BenchmarkFig4 regenerates the candidate-node-set experiment. The
// reported metric hit_k30 is the average T_30/30 across circuits — the
// paper's claim is that it exceeds 80%.
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := repro.Fig4(smokeCfg())
		sum := 0.0
		for _, r := range rows {
			sum += r.Rate[2] // k = 30
		}
		if len(rows) > 0 {
			b.ReportMetric(100*sum/float64(len(rows)), "hit_k30_%")
		}
	}
}

// BenchmarkTableII_Small regenerates the small-circuit MSE comparison.
// speedup_dpsa is mean-runtime(VECBEE l=∞) / mean-runtime(DP-SA) — the
// paper reports 9.0×.
func BenchmarkTableII_Small(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := repro.TableII(smokeCfg(), true)
		reportTableII(b, rows)
	}
}

// BenchmarkTableII_Large regenerates the large-circuit MSE comparison.
// The paper reports DP 21.8× faster than VECBEE(l=∞) without quality loss.
func BenchmarkTableII_Large(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := repro.TableII(smokeCfg(), false)
		reportTableII(b, rows)
	}
}

func reportTableII(b *testing.B, rows []repro.TableIIRow) {
	b.Helper()
	var rtInf, rtDP, rtDPSA time.Duration
	var adpInf, adpDP float64
	for _, r := range rows {
		rtInf += r.Runtime[0]
		rtDP += r.Runtime[2]
		rtDPSA += r.Runtime[3]
		adpInf += r.ADP[0]
		adpDP += r.ADP[2]
	}
	if rtDP > 0 {
		b.ReportMetric(float64(rtInf)/float64(rtDP), "speedup_dp")
	}
	if rtDPSA > 0 {
		b.ReportMetric(float64(rtInf)/float64(rtDPSA), "speedup_dpsa")
	}
	if n := float64(len(rows)); n > 0 {
		b.ReportMetric(100*(adpDP-adpInf)/n, "adp_dp_minus_inf_pp")
	}
}

// BenchmarkAblationCutUpdate isolates §III-B: incremental disjoint-cut
// repair vs full recomputation over a sequence of LACs. The reported
// speedup_x is fresh/incremental time.
func BenchmarkAblationCutUpdate(b *testing.B) {
	g := gen.MultU(10, 10)
	for i := 0; i < b.N; i++ {
		inc, fresh, avgSv := repro.AblationCutUpdate(g, 20, 1)
		if inc > 0 {
			b.ReportMetric(float64(fresh)/float64(inc), "speedup_x")
		}
		b.ReportMetric(avgSv, "avg_Sv_nodes")
	}
}

// BenchmarkAblationPartialCPM isolates §III-C: the partial CPM over
// N(S_cand) for M=60 vs the full CPM.
func BenchmarkAblationPartialCPM(b *testing.B) {
	g := gen.MultU(10, 10)
	for i := 0; i < b.N; i++ {
		partial, full, closure := repro.AblationPartialCPM(g, 60, 2048, 1)
		if partial > 0 {
			b.ReportMetric(float64(full)/float64(partial), "speedup_x")
		}
		b.ReportMetric(float64(closure), "closure_nodes")
	}
}

// BenchmarkAblationMSweep quantifies the candidate-set-size trade-off
// behind the §III-D self-adaption: DP runtime at M=15 vs M=120.
func BenchmarkAblationMSweep(b *testing.B) {
	bench := gen.SmallSuite(true)[3] // sm9x8
	for i := 0; i < b.N; i++ {
		rows := repro.AblationMSweep(bench, []int{15, 60, 120}, repro.Config{Out: io.Discard, Patterns: 1024})
		if len(rows) == 3 && rows[2].Runtime > 0 {
			b.ReportMetric(float64(rows[0].Runtime)/float64(rows[2].Runtime), "t_M15_over_M120")
		}
	}
}

// BenchmarkTableIII regenerates the AccALS vs DP-SA comparison under ER
// and MED (single-threaded, as in the paper). speedup_med is
// runtime(AccALS)/runtime(DP-SA) under MED — the paper reports 2.1×.
func BenchmarkTableIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := smokeCfg()
		rows := repro.TableIII(cfg)
		var rtAccER, rtDPER, rtAccMED, rtDPMED time.Duration
		for _, r := range rows {
			rtAccER += r.RTER[0]
			rtDPER += r.RTER[1]
			rtAccMED += r.RTMED[0]
			rtDPMED += r.RTMED[1]
		}
		if rtDPER > 0 {
			b.ReportMetric(float64(rtAccER)/float64(rtDPER), "speedup_er")
		}
		if rtDPMED > 0 {
			b.ReportMetric(float64(rtAccMED)/float64(rtDPMED), "speedup_med")
		}
	}
}
