// Benchmarks regenerating the paper's tables and figures. Each benchmark
// is a full (smoke-scale) rerun of one experiment of §IV; custom metrics
// report the quantities the paper's claims are about (speedups, ADP
// deltas, candidate-set hit rates). For the complete experiments, use
// cmd/repro; EXPERIMENTS.md records the paper-vs-measured comparison.
package dpals_test

import (
	"io"
	"runtime"
	"testing"
	"time"

	"dpals/internal/bitvec"
	"dpals/internal/cpm"
	"dpals/internal/cut"
	"dpals/internal/gen"
	"dpals/internal/lac"
	"dpals/internal/metric"
	"dpals/internal/repro"
	"dpals/internal/sim"
	"dpals/internal/techmap"
)

// smokeCfg keeps `go test -bench=.` tractable on one core: subset of
// circuits, single (median) thresholds, 512 patterns, 40-LAC cap on large
// circuits.
func smokeCfg() repro.Config {
	return repro.Config{Out: io.Discard, Scaled: true, Quick: true, Patterns: 512, CapIters: 40}
}

// BenchmarkTableI regenerates the benchmark-information table: circuit
// construction plus technology mapping for the whole suite.
func BenchmarkTableI(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, bench := range gen.Suite(true) {
			_ = techmap.Summarise(bench.Graph)
		}
	}
}

// BenchmarkFig4 regenerates the candidate-node-set experiment. The
// reported metric hit_k30 is the average T_30/30 across circuits — the
// paper's claim is that it exceeds 80%.
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := repro.Fig4(smokeCfg())
		sum := 0.0
		for _, r := range rows {
			sum += r.Rate[2] // k = 30
		}
		if len(rows) > 0 {
			b.ReportMetric(100*sum/float64(len(rows)), "hit_k30_%")
		}
	}
}

// BenchmarkTableII_Small regenerates the small-circuit MSE comparison.
// speedup_dpsa is mean-runtime(VECBEE l=∞) / mean-runtime(DP-SA) — the
// paper reports 9.0×.
func BenchmarkTableII_Small(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := repro.TableII(smokeCfg(), true)
		reportTableII(b, rows)
	}
}

// BenchmarkTableII_Large regenerates the large-circuit MSE comparison.
// The paper reports DP 21.8× faster than VECBEE(l=∞) without quality loss.
func BenchmarkTableII_Large(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := repro.TableII(smokeCfg(), false)
		reportTableII(b, rows)
	}
}

func reportTableII(b *testing.B, rows []repro.TableIIRow) {
	b.Helper()
	var rtInf, rtDP, rtDPSA time.Duration
	var adpInf, adpDP float64
	for _, r := range rows {
		rtInf += r.Runtime[0]
		rtDP += r.Runtime[2]
		rtDPSA += r.Runtime[3]
		adpInf += r.ADP[0]
		adpDP += r.ADP[2]
	}
	if rtDP > 0 {
		b.ReportMetric(float64(rtInf)/float64(rtDP), "speedup_dp")
	}
	if rtDPSA > 0 {
		b.ReportMetric(float64(rtInf)/float64(rtDPSA), "speedup_dpsa")
	}
	if n := float64(len(rows)); n > 0 {
		b.ReportMetric(100*(adpDP-adpInf)/n, "adp_dp_minus_inf_pp")
	}
}

// BenchmarkAblationCutUpdate isolates §III-B: incremental disjoint-cut
// repair vs full recomputation over a sequence of LACs. The reported
// speedup_x is fresh/incremental time.
func BenchmarkAblationCutUpdate(b *testing.B) {
	g := gen.MultU(10, 10)
	for i := 0; i < b.N; i++ {
		inc, fresh, avgSv := repro.AblationCutUpdate(g, 20, 1)
		if inc > 0 {
			b.ReportMetric(float64(fresh)/float64(inc), "speedup_x")
		}
		b.ReportMetric(avgSv, "avg_Sv_nodes")
	}
}

// BenchmarkAblationPartialCPM isolates §III-C: the partial CPM over
// N(S_cand) for M=60 vs the full CPM.
func BenchmarkAblationPartialCPM(b *testing.B) {
	g := gen.MultU(10, 10)
	for i := 0; i < b.N; i++ {
		partial, full, closure := repro.AblationPartialCPM(g, 60, 2048, 1)
		if partial > 0 {
			b.ReportMetric(float64(full)/float64(partial), "speedup_x")
		}
		b.ReportMetric(float64(closure), "closure_nodes")
	}
}

// BenchmarkAblationMSweep quantifies the candidate-set-size trade-off
// behind the §III-D self-adaption: DP runtime at M=15 vs M=120.
func BenchmarkAblationMSweep(b *testing.B) {
	bench := gen.SmallSuite(true)[3] // sm9x8
	for i := 0; i < b.N; i++ {
		rows := repro.AblationMSweep(bench, []int{15, 60, 120}, repro.Config{Out: io.Discard, Patterns: 1024})
		if len(rows) == 3 && rows[2].Runtime > 0 {
			b.ReportMetric(float64(rows[0].Runtime)/float64(rows[2].Runtime), "t_M15_over_M120")
		}
	}
}

// BenchmarkComprehensiveAnalysis measures the tentpole of the parallel
// pipeline: one comprehensive error-analysis pass (step 1 disjoint cuts,
// step 2 CPM, step 3 LAC evaluation) on a ≥4000-AND circuit, serial vs all
// CPUs. The parallel result is verified bit-identical to the serial one
// every iteration; speedup_x reports serial/parallel wall-clock (≈1.0 on a
// single-core machine, where the parallel path still runs but cannot win).
func BenchmarkComprehensiveAnalysis(b *testing.B) {
	g := gen.VecMul(4, 10) // 4730 AND nodes
	if n := g.NumAnds(); n < 4000 {
		b.Fatalf("benchmark circuit too small: %d ANDs", n)
	}
	s := sim.New(g, sim.Options{Patterns: 2048, Seed: 1})
	exact := make([]bitvec.Vec, g.NumPOs())
	for o := range exact {
		exact[o] = bitvec.NewWords(s.Words())
		s.POVal(o, exact[o])
	}
	st := metric.NewState(metric.MSE, exact, metric.UnsignedWeights(g.NumPOs()), s.Patterns())
	generator := lac.NewGenerator(g, s, lac.Options{Constants: true})
	var targets []int32
	for _, v := range g.Topo() {
		if g.IsAnd(v) {
			targets = append(targets, v)
		}
	}
	pass := func(threads int) ([]lac.NodeBest, [3]time.Duration) {
		var tm [3]time.Duration
		t0 := time.Now()
		cuts := cut.NewSet(g, threads)
		tm[0] = time.Since(t0)
		t1 := time.Now()
		res := cpm.BuildDisjoint(g, s, cuts, nil, threads)
		tm[1] = time.Since(t1)
		t2 := time.Now()
		bests, _ := lac.EvaluateTargets(generator, res, st, targets, threads)
		tm[2] = time.Since(t2)
		return bests, tm
	}
	var serialTotal, parTotal time.Duration
	for i := 0; i < b.N; i++ {
		sBests, sTm := pass(1)
		pBests, pTm := pass(runtime.GOMAXPROCS(0))
		if len(sBests) != len(pBests) {
			b.Fatalf("parallel pass diverged: %d vs %d bests", len(sBests), len(pBests))
		}
		for j := range sBests {
			if sBests[j] != pBests[j] {
				b.Fatalf("parallel pass diverged at best %d: %+v vs %+v", j, sBests[j], pBests[j])
			}
		}
		serialTotal += sTm[0] + sTm[1] + sTm[2]
		parTotal += pTm[0] + pTm[1] + pTm[2]
		b.ReportMetric(float64(pTm[0].Microseconds()), "cuts_us")
		b.ReportMetric(float64(pTm[1].Microseconds()), "cpm_us")
		b.ReportMetric(float64(pTm[2].Microseconds()), "eval_us")
	}
	if parTotal > 0 {
		b.ReportMetric(float64(serialTotal)/float64(parTotal), "speedup_x")
	}
}

// BenchmarkTableIII regenerates the AccALS vs DP-SA comparison under ER
// and MED (single-threaded, as in the paper). speedup_med is
// runtime(AccALS)/runtime(DP-SA) under MED — the paper reports 2.1×.
func BenchmarkTableIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := smokeCfg()
		rows := repro.TableIII(cfg)
		var rtAccER, rtDPER, rtAccMED, rtDPMED time.Duration
		for _, r := range rows {
			rtAccER += r.RTER[0]
			rtDPER += r.RTER[1]
			rtAccMED += r.RTMED[0]
			rtDPMED += r.RTMED[1]
		}
		if rtDPER > 0 {
			b.ReportMetric(float64(rtAccER)/float64(rtDPER), "speedup_er")
		}
		if rtDPMED > 0 {
			b.ReportMetric(float64(rtAccMED)/float64(rtDPMED), "speedup_med")
		}
	}
}
