module dpals

go 1.22
